(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section VI) through the machine models, and micro-
   benchmarks the compiler passes themselves with Bechamel.

   Usage:
     bench/main.exe                 run everything
     bench/main.exe table1 fig8 ... run selected experiments
     bench/main.exe passes          Bechamel micro-benchmarks of the
                                    compilation flows
     bench/main.exe profile         per-workload/flow pass-counter
                                    breakdown (lib/obs instrumentation)
     bench/main.exe verify          semantic cross-check of all versions *)

let bechamel_passes () =
  let open Bechamel in
  let open Toolkit in
  let make_test name f = Test.make ~name (Staged.stage f) in
  let tests =
    [ make_test "compile:conv2d" (fun () ->
          ignore (Core.Pipeline.run ~target:Core.Pipeline.Cpu (Conv2d.build ())));
      make_test "compile:unsharp_mask" (fun () ->
          ignore
            (Core.Pipeline.run ~target:Core.Pipeline.Cpu
               (Polymage.unsharp_mask ~h:64 ~w:64 ())));
      make_test "compile:harris" (fun () ->
          ignore
            (Core.Pipeline.run ~target:Core.Pipeline.Cpu
               (Polymage.harris ~h:64 ~w:64 ())));
      make_test "deps:camera_pipeline" (fun () ->
          ignore (Deps.compute (Polymage.camera_pipeline ~h2:32 ~w2:32 ())));
      make_test "codegen:conv2d" (fun () ->
          let p = Conv2d.build () in
          let c = Core.Pipeline.run ~target:Core.Pipeline.Cpu p in
          ignore (Gen.generate p c.Core.Pipeline.tree));
      make_test "presburger:card" (fun () ->
          ignore
            (Presburger.Bset.card
               (Presburger.Parse.bset
                  "{ S[i, j] : 0 <= i < 100 and 0 <= j <= i }")))
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let test = Test.make_grouped ~name:"passes" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances test in
  let results =
    List.map
      (fun i ->
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          i raw)
      instances
  in
  Exp_util.section "Bechamel: compiler-pass micro-benchmarks";
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-28s %12.0f ns/run\n" name est
          | _ -> Printf.printf "  %-28s (no estimate)\n" name)
        tbl)
    results

(* Per-workload/flow counter breakdown through the lib/obs
   instrumentation: compile every registered workload (reduced size)
   with the start-up heuristic flow and the paper's full flow, and
   print the dominant pass counters so a regression in pass cost shows
   up as a diff between benchmark runs. *)
let profile () =
  let counters =
    [ ("fm.elim", "fm.eliminate");
      ("fm.empty", "fm.is_empty");
      ("bmap.apply", "bmap.apply_range");
      ("deps", "deps.edges");
      ("steps", "fusion.search_steps");
      ("fuse+", "fusion.fuse_accept");
      ("exts", "tile_shapes.extensions")
    ]
  in
  let header =
    [ "workload"; "flow"; "compile ms" ] @ List.map fst counters
  in
  let rows = ref [] in
  List.iter
    (fun (e : Registry.entry) ->
      let run_flow flow_name compile =
        Obs.reset ();
        Obs.enable ();
        let p = e.Registry.small () in
        let t0 = Unix.gettimeofday () in
        (try compile p
         with exn ->
           Printf.eprintf "profile: %s/%s failed: %s\n" e.Registry.reg_name
             flow_name (Printexc.to_string exn));
        let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
        let row =
          [ e.Registry.reg_name; flow_name; Printf.sprintf "%.1f" ms ]
          @ List.map
              (fun (_, c) -> string_of_int (Obs.counter_value c))
              counters
        in
        Obs.disable ();
        rows := row :: !rows
      in
      run_flow "smartfuse" (fun p ->
          ignore
            (Core.Pipeline.run_heuristic ~target:Core.Pipeline.Cpu
               Fusion.Smartfuse p));
      run_flow "ours" (fun p ->
          ignore (Core.Pipeline.run ~target:Core.Pipeline.Cpu p)))
    Registry.all;
  Exp_util.section "Pass profile: counters per workload/flow (small sizes)";
  Exp_util.print_table ~header (List.rev !rows)

let experiments =
  [ ("table1", Paper_experiments.table1);
    ("fig8", Paper_experiments.fig8);
    ("fig9", Paper_experiments.fig9);
    ("fig10", Paper_experiments.fig10);
    ("table2", Paper_experiments.table2);
    ("table3", Paper_experiments.table3);
    ("compile_time", Paper_experiments.compile_time);
    ("ablations", Ablations.run_all);
    ("verify", Paper_experiments.verify);
    ("passes", bechamel_passes);
    ("profile", profile)
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
      print_endline
        "Reproduction of 'Optimizing the Memory Hierarchy by Compositing\n\
         Automatic Transformations on Computations and Data' (MICRO 2020)";
      Paper_experiments.run_all ()
  | names ->
      List.iter
        (fun n ->
          match List.assoc_opt n experiments with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown experiment %s (available: %s)\n" n
                (String.concat ", " (List.map fst experiments));
              exit 1)
        names
