(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section VI) through the machine models, and micro-
   benchmarks the compiler passes themselves with Bechamel.

   Usage:
     bench/main.exe                 run everything
     bench/main.exe table1 fig8 ... run selected experiments
     bench/main.exe passes          Bechamel micro-benchmarks of the
                                    compilation flows
     bench/main.exe profile         per-workload/flow pass-counter
                                    breakdown (lib/obs instrumentation)
     bench/main.exe verify          semantic cross-check of all versions
     bench/main.exe snapshot --out FILE [--workloads a,b,c] [--small]
                             [--seed N] [--label L]
                                    write a BENCH_*.json perf snapshot
                                    (one record per workload x flow)
     bench/main.exe regress --base FILE --cand FILE [--max-time-ratio R]
                            [--time-floor S] [--json]
                                    diff two snapshots; exit 1 on
                                    regression (the CI gate), 2 on error
     bench/main.exe report --base FILE --cand FILE
                                    per-array traffic-attribution diff
                                    between two snapshots (informational,
                                    never gates)
     bench/main.exe parallel [--small] [--workloads a,b] [--jobs N]
                             [--tile N] [--repeat R] [--warmup W]
                             [--out FILE] [--label L]
                                    jobs sweep of the parallel tile-graph
                                    runtime (lib/runtime): trimmed-mean
                                    wall times, speedup vs --jobs 1, and
                                    a race-checked equivalence run *)

let bechamel_passes () =
  let open Bechamel in
  let open Toolkit in
  let make_test name f = Test.make ~name (Staged.stage f) in
  let tests =
    [ make_test "compile:conv2d" (fun () ->
          ignore (Core.Pipeline.run ~target:Core.Pipeline.Cpu (Conv2d.build ())));
      make_test "compile:unsharp_mask" (fun () ->
          ignore
            (Core.Pipeline.run ~target:Core.Pipeline.Cpu
               (Polymage.unsharp_mask ~h:64 ~w:64 ())));
      make_test "compile:harris" (fun () ->
          ignore
            (Core.Pipeline.run ~target:Core.Pipeline.Cpu
               (Polymage.harris ~h:64 ~w:64 ())));
      make_test "deps:camera_pipeline" (fun () ->
          ignore (Deps.compute (Polymage.camera_pipeline ~h2:32 ~w2:32 ())));
      make_test "codegen:conv2d" (fun () ->
          let p = Conv2d.build () in
          let c = Core.Pipeline.run ~target:Core.Pipeline.Cpu p in
          ignore (Gen.generate p c.Core.Pipeline.tree));
      make_test "presburger:card" (fun () ->
          ignore
            (Presburger.Bset.card
               (Presburger.Parse.bset
                  "{ S[i, j] : 0 <= i < 100 and 0 <= j <= i }")))
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let test = Test.make_grouped ~name:"passes" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances test in
  let results =
    List.map
      (fun i ->
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          i raw)
      instances
  in
  Exp_util.section "Bechamel: compiler-pass micro-benchmarks";
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-28s %12.0f ns/run\n" name est
          | _ -> Printf.printf "  %-28s (no estimate)\n" name)
        tbl)
    results

(* Per-workload/flow counter breakdown through the lib/obs
   instrumentation: compile every registered workload (reduced size)
   with the start-up heuristic flow and the paper's full flow, and
   print the dominant pass counters so a regression in pass cost shows
   up as a diff between benchmark runs. *)
let profile () =
  let counters =
    [ ("fm.elim", "fm.eliminate");
      ("fm.empty", "fm.is_empty");
      ("bmap.apply", "bmap.apply_range");
      ("deps", "deps.edges");
      ("steps", "fusion.search_steps");
      ("fuse+", "fusion.fuse_accept");
      ("exts", "tile_shapes.extensions")
    ]
  in
  let header =
    [ "workload"; "flow"; "compile ms" ] @ List.map fst counters
  in
  let rows = ref [] in
  List.iter
    (fun (e : Registry.entry) ->
      let run_flow flow_name compile =
        Obs.reset ();
        Presburger.Fm_cache.reset ();
        Obs.enable ();
        let p = e.Registry.small () in
        let t0 = Unix.gettimeofday () in
        (try compile p
         with exn ->
           Printf.eprintf "profile: %s/%s failed: %s\n" e.Registry.reg_name
             flow_name (Printexc.to_string exn));
        let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
        let row =
          [ e.Registry.reg_name; flow_name; Printf.sprintf "%.1f" ms ]
          @ List.map
              (fun (_, c) -> string_of_int (Obs.counter_value c))
              counters
        in
        Obs.disable ();
        rows := row :: !rows
      in
      run_flow "smartfuse" (fun p ->
          ignore
            (Core.Pipeline.run_heuristic ~target:Core.Pipeline.Cpu
               Fusion.Smartfuse p));
      run_flow "ours" (fun p ->
          ignore (Core.Pipeline.run ~target:Core.Pipeline.Cpu p)))
    Registry.all;
  Exp_util.section "Pass profile: counters per workload/flow (small sizes)";
  Exp_util.print_table ~header (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* snapshot / regress: the perf-snapshot and regression-gate commands  *)
(* ------------------------------------------------------------------ *)

let usage_error msg =
  Printf.eprintf "bench: %s\n" msg;
  exit 2

(* The two compilation flows every snapshot covers: the start-up
   heuristic alone, and the paper's full post-tiling-fusion flow. *)
let snapshot_flows =
  [ ( "smartfuse",
      fun p ->
        Exp_util.heuristic ~target:Core.Pipeline.Cpu Fusion.Smartfuse p );
    ("ours", fun p -> Exp_util.ours ~target:Core.Pipeline.Cpu p)
  ]

(* Compile one workload with one flow under full instrumentation and
   freeze the result. The cache/interp counters come from the trace-
   driven CPU profile, the traffic volumes from the polyhedral
   footprint model, so a snapshot captures compile-side and machine-
   side behaviour at once. *)
let deps_of_version p (v : Exp_util.version) =
  match v.Exp_util.flavor with
  | Exp_util.Ours c -> c.Core.Pipeline.deps
  | Exp_util.Naive | Exp_util.Baseline _ -> Deps.compute p

let collect_one ~small (e : Registry.entry) (flow_name, compile) =
  Obs.reset ();
  Presburger.Fm_cache.reset ();
  Obs.enable ();
  let finish () = Obs.disable () in
  match
    let p = if small then e.Registry.small () else e.Registry.build () in
    let v = compile p in
    let report = Exp_util.cpu_profile p v in
    let clusters = Exp_util.clusters p v in
    let traffic = Footprints.program_traffic p clusters in
    let attribution =
      List.map
        (fun (a, (tr : Footprints.traffic)) ->
          (a, tr.Footprints.read_bytes, tr.Footprints.write_bytes))
        (Footprints.program_traffic_by_array p clusters)
    in
    (* parallel runtime: one sequential and one 2-worker execution, so
       the runtime.* counters land in the counters map and the
       wall-clock ratio becomes the snapshot's (noisy, non-gating)
       speedup field *)
    let deps = deps_of_version p v in
    let seq =
      Runtime.run ~jobs:1 ~mode:Executor.Seq p ~deps v.Exp_util.ast
    in
    let par = Runtime.run ~jobs:2 p ~deps v.Exp_util.ast in
    let speedup =
      if par.Runtime.wall_s > 0.0 then
        Some (seq.Runtime.wall_s /. par.Runtime.wall_s)
      else None
    in
    let cache_levels =
      List.map
        (fun (l : Cache.level_stats) ->
          { Snapshot.cl_name = l.Cache.level;
            cl_hits = l.Cache.hits;
            cl_misses = l.Cache.misses
          })
        report.Cpu_model.cache
    in
    Snapshot.capture ?speedup ~attribution ~workload:e.Registry.reg_name
      ~flow:flow_name
      ~compile_s:v.Exp_util.compile_s ~cache_levels
      ~dram_accesses:report.Cpu_model.dram
      ~traffic:
        { Snapshot.tr_read_bytes = traffic.Footprints.read_bytes;
          tr_write_bytes = traffic.Footprints.write_bytes;
          tr_staged_bytes = Footprints.max_staged_bytes p clusters
        }
      ~ast:
        { Snapshot.ast_loops = Ast.count_loops v.Exp_util.ast;
          ast_kernels = List.length (Ast.kernels v.Exp_util.ast);
          ast_nodes = Ast.count_nodes v.Exp_util.ast
        }
      ()
  with
  | snap ->
      finish ();
      Some snap
  | exception exn ->
      finish ();
      Printf.eprintf "snapshot: %s/%s failed: %s\n%!" e.Registry.reg_name
        flow_name (Printexc.to_string exn);
      None

let snapshot_cmd args =
  let out = ref None in
  let workloads = ref None in
  let small = ref false in
  let label = ref None in
  let seed = ref None in
  let rec parse = function
    | [] -> ()
    | "--out" :: f :: rest ->
        out := Some f;
        parse rest
    | "--workloads" :: ws :: rest ->
        workloads := Some (String.split_on_char ',' ws);
        parse rest
    | "--small" :: rest ->
        small := true;
        parse rest
    | "--seed" :: n :: rest ->
        (match int_of_string_opt n with
        | Some s -> seed := Some s
        | None -> usage_error (Printf.sprintf "--seed expects an integer, got %S" n));
        parse rest
    | "--label" :: l :: rest ->
        label := Some l;
        parse rest
    | a :: _ -> usage_error (Printf.sprintf "snapshot: unknown argument %s" a)
  in
  parse args;
  (* flag > FUZZ_SEED, shared precedence with the fuzz harness; the
     registry seed only moves when one of them is given *)
  (match !seed with
  | Some s -> Random_pipeline.set_registry_seed s
  | None ->
      if Sys.getenv_opt "FUZZ_SEED" <> None then
        Random_pipeline.set_registry_seed (Cli_util.seed_env_default ()));
  let out =
    match !out with
    | Some f -> f
    | None -> usage_error "snapshot: --out FILE is required"
  in
  let entries =
    match !workloads with
    | None -> Registry.all
    | Some names -> List.map Registry.find names
  in
  let label =
    match !label with
    | Some l -> l
    | None ->
        (* BENCH_<label>.json -> <label>; otherwise the basename *)
        let base = Filename.remove_extension (Filename.basename out) in
        if String.length base > 6 && String.sub base 0 6 = "BENCH_" then
          String.sub base 6 (String.length base - 6)
        else base
  in
  let snapshots =
    List.concat_map
      (fun e -> List.filter_map (collect_one ~small:!small e) snapshot_flows)
      entries
  in
  let expected = List.length entries * List.length snapshot_flows in
  Bench_db.save out (Bench_db.make ~label snapshots);
  Printf.printf "wrote %d/%d snapshots (%d workloads x %d flows%s) to %s\n"
    (List.length snapshots) expected (List.length entries)
    (List.length snapshot_flows)
    (if !small then ", small sizes" else "")
    out;
  if List.length snapshots < expected then exit 1

let regress_cmd args =
  let base = ref None in
  let cand = ref None in
  let thresholds = ref Bench_db.default_thresholds in
  let json = ref false in
  let float_arg name v =
    match float_of_string_opt v with
    | Some f -> f
    | None -> usage_error (Printf.sprintf "%s expects a number, got %S" name v)
  in
  let rec parse = function
    | [] -> ()
    | "--base" :: f :: rest ->
        base := Some f;
        parse rest
    | "--cand" :: f :: rest ->
        cand := Some f;
        parse rest
    | "--max-time-ratio" :: r :: rest ->
        thresholds :=
          { !thresholds with
            Bench_db.max_time_ratio = float_arg "--max-time-ratio" r
          };
        parse rest
    | "--time-floor" :: s :: rest ->
        thresholds :=
          { !thresholds with Bench_db.time_floor_s = float_arg "--time-floor" s };
        parse rest
    | "--json" :: rest ->
        json := true;
        parse rest
    | a :: _ -> usage_error (Printf.sprintf "regress: unknown argument %s" a)
  in
  parse args;
  let required name r =
    match !r with
    | Some f -> f
    | None -> usage_error (Printf.sprintf "regress: %s FILE is required" name)
  in
  let base_file = required "--base" base in
  let cand_file = required "--cand" cand in
  let load name file =
    match Bench_db.load file with
    | Ok db -> db
    | Error msg -> usage_error (Printf.sprintf "%s: %s" name msg)
  in
  let base_db = load "--base" base_file in
  let cand_db = load "--cand" cand_file in
  let deltas =
    Bench_db.diff ~thresholds:!thresholds ~base:base_db ~cand:cand_db ()
  in
  if !json then print_endline (Bench_db.deltas_json ~thresholds:!thresholds deltas)
  else begin
    Printf.printf "regress: %s (%s) -> %s (%s)\n" base_db.Bench_db.label
      base_db.Bench_db.created cand_db.Bench_db.label cand_db.Bench_db.created;
    print_string (Bench_db.summary_table deltas)
  end;
  exit (Bench_db.gate deltas)

(* ------------------------------------------------------------------ *)
(* report: per-array traffic-attribution diff between two snapshots    *)
(* ------------------------------------------------------------------ *)

(* Informational (never gates): shows where the traffic moved when the
   totals changed, array by array. Pairs snapshots by workload x flow
   like regress does; snapshots without attribution (pre-v3 files, the
   naive flow) are skipped with a note. *)
let report_cmd args =
  let base = ref None in
  let cand = ref None in
  let rec parse = function
    | [] -> ()
    | "--base" :: f :: rest ->
        base := Some f;
        parse rest
    | "--cand" :: f :: rest ->
        cand := Some f;
        parse rest
    | a :: _ -> usage_error (Printf.sprintf "report: unknown argument %s" a)
  in
  parse args;
  let required name r =
    match !r with
    | Some f -> f
    | None -> usage_error (Printf.sprintf "report: %s FILE is required" name)
  in
  let load name file =
    match Bench_db.load file with
    | Ok db -> db
    | Error msg -> usage_error (Printf.sprintf "%s: %s" name msg)
  in
  let base_db = load "--base" (required "--base" base) in
  let cand_db = load "--cand" (required "--cand" cand) in
  Printf.printf "attribution report: %s (%s) -> %s (%s)\n" base_db.Bench_db.label
    base_db.Bench_db.created cand_db.Bench_db.label cand_db.Bench_db.created;
  let key (s : Snapshot.t) = (s.Snapshot.workload, s.Snapshot.flow) in
  let find db k =
    List.find_opt (fun s -> key s = k) db.Bench_db.snapshots
  in
  let changed = ref 0 in
  List.iter
    (fun (b : Snapshot.t) ->
      let w, f = key b in
      match find cand_db (w, f) with
      | None -> Printf.printf "  %s/%s: missing from candidate\n" w f
      | Some c -> (
          match (b.Snapshot.attribution, c.Snapshot.attribution) with
          | None, _ | _, None ->
              Printf.printf "  %s/%s: no attribution recorded (pre-v3 \
                             snapshot or naive flow)\n" w f
          | Some ba, Some ca ->
              let arrays =
                List.sort_uniq compare
                  (List.map (fun (a, _, _) -> a) (ba @ ca))
              in
              let lookup rows a =
                match List.find_opt (fun (n, _, _) -> n = a) rows with
                | Some (_, r, wr) -> (r, wr)
                | None -> (0, 0)
              in
              let rows =
                List.filter_map
                  (fun a ->
                    let br, bw = lookup ba a in
                    let cr, cw = lookup ca a in
                    if br = cr && bw = cw then None
                    else
                      Some
                        [ a;
                          string_of_int br; string_of_int cr;
                          Printf.sprintf "%+d" (cr - br);
                          string_of_int bw; string_of_int cw;
                          Printf.sprintf "%+d" (cw - bw)
                        ])
                  arrays
              in
              if rows = [] then
                Printf.printf "  %s/%s: attribution unchanged (%d arrays)\n" w
                  f (List.length arrays)
              else begin
                incr changed;
                Printf.printf "  %s/%s:\n" w f;
                Exp_util.print_table
                  ~header:
                    [ "array"; "read"; "read'"; "dread"; "write"; "write'";
                      "dwrite" ]
                  rows
              end))
    base_db.Bench_db.snapshots;
  Printf.printf "%d workload/flow pair(s) with attribution changes\n" !changed

(* ------------------------------------------------------------------ *)
(* parallel: jobs sweep over the tile-graph execution runtime          *)
(* ------------------------------------------------------------------ *)

let default_parallel_workloads =
  [ "conv2d"; "unsharp_mask"; "harris"; "jacobi_unrolled" ]

(* Trimmed mean: drop the min and max sample when we have at least
   three, otherwise plain mean (see EXPERIMENTS.md, speedup
   methodology). The streaming Digest tracks min/max/sum exactly, so
   this matches the former sort-based computation; test_digest pins
   the agreement. *)
let trimmed_mean xs = Digest.trimmed_mean (Digest.of_list xs)

let parallel_cmd args =
  let small = ref false in
  let workloads = ref None in
  let jobs_flag = ref None in
  let tile = ref 8 in
  let repeat = ref 5 in
  let warmup = ref 1 in
  let out = ref None in
  let label = ref None in
  let int_arg name v =
    match int_of_string_opt v with
    | Some i when i > 0 -> i
    | _ -> usage_error (Printf.sprintf "%s expects a positive integer, got %S" name v)
  in
  let rec parse = function
    | [] -> ()
    | "--small" :: rest ->
        small := true;
        parse rest
    | "--workloads" :: ws :: rest ->
        workloads := Some (String.split_on_char ',' ws);
        parse rest
    | "--jobs" :: n :: rest ->
        jobs_flag := Some (int_arg "--jobs" n);
        parse rest
    | "--tile" :: n :: rest ->
        tile := int_arg "--tile" n;
        parse rest
    | "--repeat" :: n :: rest ->
        repeat := int_arg "--repeat" n;
        parse rest
    | "--warmup" :: n :: rest ->
        warmup := int_arg "--warmup" n;
        parse rest
    | "--out" :: f :: rest ->
        out := Some f;
        parse rest
    | "--label" :: l :: rest ->
        label := Some l;
        parse rest
    | a :: _ -> usage_error (Printf.sprintf "parallel: unknown argument %s" a)
  in
  parse args;
  (* flag > MEMCOMP_JOBS > the sweep's historical default of 4 *)
  let jobs = ref (Cli_util.resolve_jobs ~default:4 !jobs_flag) in
  let entries =
    match !workloads with
    | Some names -> List.map Registry.find names
    | None -> List.map Registry.find default_parallel_workloads
  in
  (* powers of two up to --jobs, always ending at --jobs itself *)
  let sweep =
    let rec build j acc =
      if j >= !jobs then List.rev (!jobs :: acc) else build (j * 2) (j :: acc)
    in
    build 1 []
  in
  Exp_util.section
    (Printf.sprintf
       "Parallel tile-graph runtime: jobs sweep (tile %d, %d repeats, %d \
        warmup, host exposes %d cores)"
       !tile !repeat !warmup
       (Domain.recommended_domain_count ()));
  let header =
    [ "workload"; "tiles"; "edges"; "mode" ]
    @ List.map (fun j -> Printf.sprintf "j=%d ms" j) sweep
    @ [ "speedup"; "semantics"; "races" ]
  in
  let rows = ref [] in
  let measured = ref [] in
  List.iter
    (fun (e : Registry.entry) ->
      let p = if !small then e.Registry.small () else e.Registry.build () in
      let v = Exp_util.ours ~tile:!tile ~target:Core.Pipeline.Cpu p in
      let deps = deps_of_version p v in
      let measure j =
        for _ = 1 to !warmup do
          ignore (Runtime.run ~jobs:j p ~deps v.Exp_util.ast)
        done;
        let samples =
          List.init !repeat (fun _ ->
              (Runtime.run ~jobs:j p ~deps v.Exp_util.ast).Runtime.wall_s)
        in
        trimmed_mean samples
      in
      let times = List.map (fun j -> (j, measure j)) sweep in
      let t1 = List.assoc 1 times in
      let tn = List.assoc !jobs times in
      let speedup = if tn > 0.0 then t1 /. tn else 1.0 in
      (* correctness: one race-checked run at max jobs vs the
         sequential interpreter *)
      let par = Runtime.run ~jobs:!jobs ~race_check:true p ~deps v.Exp_util.ast in
      let oracle = Cpu_model.run_to_memory p v.Exp_util.ast in
      let ok =
        List.for_all
          (fun a -> Interp.arrays_equal par.Runtime.mem oracle a)
          p.Prog.live_out
      in
      let races = par.Runtime.metrics.Executor.m_violations in
      measured := (e, speedup) :: !measured;
      rows :=
        ([ e.Registry.reg_name;
           string_of_int (Array.length par.Runtime.graph.Tile_graph.items);
           string_of_int par.Runtime.graph.Tile_graph.n_edges;
           Executor.mode_name par.Runtime.metrics.Executor.m_mode
         ]
        @ List.map (fun (_, t) -> Printf.sprintf "%.2f" (t *. 1000.0)) times
        @ [ Printf.sprintf "%.2fx" speedup;
            (if ok then "ok" else "MISMATCH");
            string_of_int (List.length races)
          ])
        :: !rows;
      if not ok then Printf.eprintf "parallel: %s diverges from Interp.run\n%!" e.Registry.reg_name)
    entries;
  Exp_util.print_table ~header (List.rev !rows);
  print_endline
    "  (speedup = trimmed-mean j=1 wall / trimmed-mean j=max wall; noisy,\n\
    \   never gates regress. On a 1-core host expect <= 1.0x.)";
  match !out with
  | None -> ()
  | Some file ->
      let label =
        match !label with
        | Some l -> l
        | None -> Filename.remove_extension (Filename.basename file)
      in
      let flow =
        ("ours", fun p -> Exp_util.ours ~tile:!tile ~target:Core.Pipeline.Cpu p)
      in
      let snaps =
        List.filter_map
          (fun (e, sp) ->
            Option.map
              (fun s -> { s with Snapshot.speedup = Some sp })
              (collect_one ~small:!small e flow))
          (List.rev !measured)
      in
      Bench_db.save file (Bench_db.make ~label snaps);
      Printf.printf "wrote %d parallel snapshots to %s\n" (List.length snaps)
        file

(* ------------------------------------------------------------------ *)
(* tune: autotuner sweep across workloads                              *)
(* ------------------------------------------------------------------ *)

(* Run the model-guided autotuner over a set of registry workloads and
   print one row per workload: search-space size, evaluation counts,
   modeled default vs tuned cost and the chosen configuration. Shares
   the knob precedence of `memcomp tune` (--jobs/MEMCOMP_JOBS,
   --seed/FUZZ_SEED) and the same tuning database format. *)
let tune_cmd args =
  let small = ref false in
  let workloads = ref None in
  let strategy = ref Tuner.Greedy in
  let budget = ref 48 in
  let jobs_flag = ref None in
  let seed_flag = ref None in
  let db = ref None in
  let int_arg name v =
    match int_of_string_opt v with
    | Some i when i > 0 -> i
    | _ -> usage_error (Printf.sprintf "%s expects a positive integer, got %S" name v)
  in
  let rec parse = function
    | [] -> ()
    | "--small" :: rest ->
        small := true;
        parse rest
    | "--workloads" :: ws :: rest ->
        workloads := Some (String.split_on_char ',' ws);
        parse rest
    | "--strategy" :: s :: rest ->
        (match Tuner.strategy_of_string s with
        | Some st -> strategy := st
        | None -> usage_error (Printf.sprintf "unknown strategy %s" s));
        parse rest
    | "--budget" :: n :: rest ->
        budget := int_arg "--budget" n;
        parse rest
    | "--jobs" :: n :: rest ->
        jobs_flag := Some (int_arg "--jobs" n);
        parse rest
    | "--seed" :: n :: rest ->
        (match int_of_string_opt n with
        | Some s -> seed_flag := Some s
        | None -> usage_error (Printf.sprintf "--seed expects an integer, got %S" n));
        parse rest
    | "--db" :: f :: rest ->
        db := Some f;
        parse rest
    | a :: _ -> usage_error (Printf.sprintf "tune: unknown argument %s" a)
  in
  parse args;
  let jobs = Cli_util.resolve_jobs !jobs_flag in
  let seed =
    match !seed_flag with Some s -> s | None -> Cli_util.seed_env_default ()
  in
  let entries =
    match !workloads with
    | Some names -> List.map Registry.find names
    | None -> Registry.all
  in
  Exp_util.section
    (Printf.sprintf "Autotuner sweep: %s strategy, budget %d, %d jobs, seed %d"
       (Tuner.strategy_name !strategy) !budget jobs seed);
  let header =
    [ "workload"; "space"; "eval"; "illegal"; "default cost"; "tuned cost";
      "delta"; "best config"
    ]
  in
  let failures = ref [] in
  let rows =
    List.map
      (fun (e : Registry.entry) ->
        let p = if !small then e.Registry.small () else e.Registry.build () in
        match
          Tuner.tune ~strategy:!strategy ~budget:!budget ~jobs ~seed
            ?db_path:!db p
        with
        | Error msg ->
            failures := (e.Registry.reg_name, msg) :: !failures;
            [ e.Registry.reg_name; "-"; "-"; "-"; "-"; "-"; "-"; "error" ]
        | Ok r ->
            let en = r.Tuner.r_entry in
            let dc = Evaluator.cost en.Tune_db.en_default_score in
            let bc = Evaluator.cost en.Tune_db.en_best_score in
            [ e.Registry.reg_name;
              string_of_int r.Tuner.r_space;
              (string_of_int en.Tune_db.en_evaluated
              ^ if r.Tuner.r_cached then " (db)" else "");
              string_of_int en.Tune_db.en_illegal;
              Printf.sprintf "%.0f" dc;
              Printf.sprintf "%.0f" bc;
              Printf.sprintf "%+.1f%%"
                (if dc = 0.0 then 0.0 else (bc -. dc) /. dc *. 100.0);
              Search_space.candidate_name en.Tune_db.en_best
            ])
      entries
  in
  Exp_util.print_table ~header rows;
  print_endline
    "  (cost = modeled DRAM + staged bytes; tuned <= default by construction,\n\
    \   and the tuned config never models more DRAM traffic than the default)";
  List.iter
    (fun (w, msg) -> Printf.eprintf "tune: %s failed: %s\n%!" w msg)
    (List.rev !failures);
  if !failures <> [] then exit 1

(* ------------------------------------------------------------------ *)
(* serve: load generator + end-to-end checker for the compile daemon   *)
(* ------------------------------------------------------------------ *)

(* Drives a running `memcomp serve` daemon: fires --requests compile
   POSTs from --concurrency client domains, then verifies the whole
   telemetry surface end to end —
     . every request returns 200 and its req id resolves at /trace/<id>
     . /metrics parses as OpenMetrics (terminated by "# EOF") and its
       memcomp_* counter samples exactly equal the daemon's internal
       Obs counters (GET /counters), modulo the two deterministic
       increments the scrape itself causes (http.requests,
       http.metrics — see the server's instrumentation contract)
     . counters are monotone across the two scrapes and
       memcomp_pipeline_runs_total advanced by at least --requests
   Prints p50/p95/p99 compile latency; exits 1 on any failure. *)
let serve_cmd args =
  let port = ref 8080 in
  let requests = ref 50 in
  let concurrency = ref 4 in
  let workload = ref "conv2d" in
  let flow = ref "ours" in
  let tile = ref 32 in
  let metrics_out = ref None in
  let int_arg name v =
    match int_of_string_opt v with
    | Some i when i > 0 -> i
    | _ -> usage_error (Printf.sprintf "%s expects a positive integer, got %S" name v)
  in
  let rec parse = function
    | [] -> ()
    | "--port" :: n :: rest ->
        port := int_arg "--port" n;
        parse rest
    | "--requests" :: n :: rest ->
        requests := int_arg "--requests" n;
        parse rest
    | "--concurrency" :: n :: rest ->
        concurrency := int_arg "--concurrency" n;
        parse rest
    | "--workload" :: w :: rest ->
        workload := w;
        parse rest
    | "--flow" :: f :: rest ->
        flow := f;
        parse rest
    | "--tile" :: n :: rest ->
        tile := int_arg "--tile" n;
        parse rest
    | "--metrics-out" :: f :: rest ->
        metrics_out := Some f;
        parse rest
    | a :: _ -> usage_error (Printf.sprintf "serve: unknown argument %s" a)
  in
  parse args;
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let get path =
    match Httpd.request ~port:!port path with
    | Ok (status, body) -> (status, body)
    | Error msg ->
        fail "GET %s: %s" path msg;
        (0, "")
  in
  (* 1. readiness: the daemon may still be binding its socket *)
  let rec wait_ready tries =
    if tries = 0 then begin
      Printf.eprintf "serve: daemon on port %d not ready, giving up\n%!" !port;
      exit 1
    end
    else
      match Httpd.request ~port:!port "/healthz" with
      | Ok (200, _) -> ()
      | _ ->
          Unix.sleepf 0.25;
          wait_ready (tries - 1)
  in
  wait_ready 40;
  (* 2. first scrape *)
  let s1_status, scrape1 = get "/metrics" in
  if s1_status <> 200 then fail "first /metrics scrape: status %d" s1_status;
  let has_eof s =
    let t = String.trim s in
    String.length t >= 5 && String.sub t (String.length t - 5) 5 = "# EOF"
  in
  if not (has_eof scrape1) then fail "first /metrics scrape lacks the # EOF terminator";
  let counters1 = Openmetrics.parse_counters scrape1 in
  (* 3. the load: N compile POSTs across K client domains *)
  let body =
    Printf.sprintf
      "{\"workload\":\"%s\",\"flow\":\"%s\",\"tile\":%d,\"small\":true}"
      !workload !flow !tile
  in
  let next = Atomic.make 0 in
  let client () =
    let rec go acc =
      let i = Atomic.fetch_and_add next 1 in
      if i >= !requests then acc
      else begin
        let t0 = Unix.gettimeofday () in
        let outcome = Httpd.request ~meth:"POST" ~body ~port:!port "/compile" in
        let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
        go ((outcome, ms) :: acc)
      end
    in
    go []
  in
  let doms = List.init (max 1 !concurrency) (fun _ -> Domain.spawn client) in
  let results = List.concat_map Domain.join doms in
  (* 4. every request 200, with a req id that resolves at /trace/<id> *)
  let latencies = ref [] in
  List.iter
    (fun (outcome, ms) ->
      match outcome with
      | Error msg -> fail "POST /compile: %s" msg
      | Ok (status, body) ->
          if status <> 200 then fail "POST /compile: status %d (%s)" status (String.trim body)
          else begin
            latencies := ms :: !latencies;
            match Json_util.Json.parse body with
            | Error msg -> fail "POST /compile: unparseable response: %s" msg
            | Ok j -> (
                match Json_util.Json.member "req" j with
                | Some (Json_util.Json.Str id) -> (
                    match get ("/trace/" ^ id) with
                    | 200, trace when String.length trace > 0 && trace.[0] = '{' -> ()
                    | st, _ -> fail "GET /trace/%s: status %d" id st)
                | _ -> fail "POST /compile: response carries no req id")
          end)
    results;
  (* 5. internal counters, then second scrape (order matters: between
     the /counters snapshot and the /metrics render exactly one request
     — the scrape itself — arrives) *)
  let c_status, counters_body = get "/counters" in
  if c_status <> 200 then fail "GET /counters: status %d" c_status;
  let internal =
    match Json_util.Json.parse counters_body with
    | Ok (Json_util.Json.Obj fields) ->
        List.filter_map
          (fun (k, v) ->
            match v with
            | Json_util.Json.Num f when Float.is_integer f -> Some (k, int_of_float f)
            | _ -> None)
          fields
    | _ ->
        fail "GET /counters: unparseable body";
        []
  in
  let s2_status, scrape2 = get "/metrics" in
  if s2_status <> 200 then fail "second /metrics scrape: status %d" s2_status;
  if not (has_eof scrape2) then fail "second /metrics scrape lacks the # EOF terminator";
  let counters2 = Openmetrics.parse_counters scrape2 in
  (* exactness: scraped counters == internal counters + the scrape's
     own deterministic increments *)
  let expected =
    List.map
      (fun (name, v) ->
        let bump = match name with "http.requests" | "http.metrics" -> 1 | _ -> 0 in
        ("memcomp_" ^ Openmetrics.sanitize name, v + bump))
      internal
    |> List.sort compare
  in
  let scraped = List.sort compare counters2 in
  if expected <> scraped then begin
    let show l =
      String.concat ", " (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) l)
    in
    fail "scraped counters diverge from internal Obs state\n  expected: %s\n  scraped:  %s"
      (show expected) (show scraped)
  end;
  (* monotonicity across the two scrapes + pipeline.runs advanced *)
  List.iter
    (fun (name, v1) ->
      match List.assoc_opt name counters2 with
      | Some v2 when v2 < v1 -> fail "counter %s went backwards: %d -> %d" name v1 v2
      | Some _ -> ()
      | None -> fail "counter %s disappeared between scrapes" name)
    counters1;
  let runs_of cs = match List.assoc_opt "memcomp_pipeline_runs" cs with Some v -> v | None -> 0 in
  let d_runs = runs_of counters2 - runs_of counters1 in
  if !flow <> "naive" && d_runs < !requests then
    fail "memcomp_pipeline_runs_total advanced by %d, expected >= %d" d_runs !requests;
  (match !metrics_out with
  | Some file ->
      let oc = open_out file in
      output_string oc scrape2;
      close_out oc
  | None -> ());
  (* 6. report (shared streaming-quantile digest; exact at these n) *)
  let dg = Digest.of_list !latencies in
  let pct p = match Digest.quantile dg p with Some v -> v | None -> 0.0 in
  Printf.printf
    "serve: %d requests (%s/%s, tile %d) at concurrency %d against port %d\n"
    !requests !workload !flow !tile !concurrency !port;
  Printf.printf "  completed   %d ok, %d failed\n" (List.length !latencies)
    (!requests - List.length !latencies);
  if Digest.count dg > 0 then
    Printf.printf "  latency ms  p50 %.1f   p95 %.1f   p99 %.1f   max %.1f\n"
      (pct 0.5) (pct 0.95) (pct 0.99)
      (match Digest.maximum dg with Some v -> v | None -> 0.0);
  Printf.printf "  pipeline    runs +%d across load\n" d_runs;
  if !failures <> [] then begin
    Printf.eprintf "serve: %d check(s) failed:\n" (List.length !failures);
    List.iter (fun m -> Printf.eprintf "  - %s\n" m) (List.rev !failures);
    exit 1
  end;
  Printf.printf "  checks      all passed (traces resolve, counters exact & monotone)\n"

(* ------------------------------------------------------------------ *)
(* soak: flight-recorder end-to-end proof against a live daemon.       *)
(* Drives normal load, injects an error/latency burst until the        *)
(* watchdog fires (degraded /healthz + /alerts), then recovers and     *)
(* checks the alert clears, the /history series are monotone with      *)
(* level-partitioned sums conserved, and /sketch quantiles are         *)
(* ordered. Exits 1 on any failed check.                               *)
(* ------------------------------------------------------------------ *)

let soak_cmd args =
  let port = ref 8080 in
  let requests = ref 40 in
  let timeout = ref 30.0 in
  let expect_compacted = ref false in
  let int_arg name v =
    match int_of_string_opt v with
    | Some i when i > 0 -> i
    | _ -> usage_error (Printf.sprintf "%s expects a positive integer, got %S" name v)
  in
  let rec parse = function
    | [] -> ()
    | "--port" :: n :: rest ->
        port := int_arg "--port" n;
        parse rest
    | "--requests" :: n :: rest ->
        requests := int_arg "--requests" n;
        parse rest
    | "--timeout" :: s :: rest ->
        (match float_of_string_opt s with
        | Some f when f > 0. -> timeout := f
        | _ -> usage_error (Printf.sprintf "--timeout expects seconds, got %S" s));
        parse rest
    | "--small" :: rest ->
        (* lighter load for CI: fewer normal-phase requests *)
        requests := min !requests 20;
        parse rest
    | "--expect-compacted" :: rest ->
        expect_compacted := true;
        parse rest
    | a :: _ -> usage_error (Printf.sprintf "soak: unknown argument %s" a)
  in
  parse args;
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let get path = Httpd.request ~port:!port path in
  let rec wait_ready tries =
    if tries = 0 then begin
      Printf.eprintf "soak: daemon on port %d not ready, giving up\n%!" !port;
      exit 1
    end
    else
      match get "/healthz" with
      | Ok (200, _) -> ()
      | _ ->
          Unix.sleepf 0.25;
          wait_ready (tries - 1)
  in
  wait_ready 40;
  let compile_posts = ref 0 in
  let post_compile workload =
    incr compile_posts;
    let body =
      Printf.sprintf "{\"workload\":%S,\"flow\":\"ours\",\"tile\":32,\"small\":true}"
        workload
    in
    let t0 = Unix.gettimeofday () in
    let r = Httpd.request ~meth:"POST" ~body ~port:!port "/compile" in
    ((Unix.gettimeofday () -. t0) *. 1e3, r)
  in
  (* 1. normal phase: paced good traffic *)
  let latencies = ref [] in
  for _ = 1 to !requests do
    (match post_compile "conv2d" with
    | ms, Ok (200, _) -> latencies := ms :: !latencies
    | _, Ok (status, body) ->
        fail "normal phase: POST /compile status %d (%s)" status (String.trim body)
    | _, Error msg -> fail "normal phase: POST /compile: %s" msg);
    Unix.sleepf 0.01
  done;
  (* 2. burst: unknown-workload errors (plus their latency) until the
     watchdog degrades /healthz, or the timeout expires *)
  let t_burst = Unix.gettimeofday () in
  let fired = ref false in
  while (not !fired) && Unix.gettimeofday () -. t_burst < !timeout do
    for _ = 1 to 5 do
      ignore (post_compile "no_such_workload")
    done;
    (match get "/healthz" with Ok (503, _) -> fired := true | _ -> ());
    if not !fired then Unix.sleepf 0.05
  done;
  let t_fire = Unix.gettimeofday () -. t_burst in
  if not !fired then fail "watchdog did not degrade /healthz within %.1fs" !timeout;
  (* firing rules visible at /alerts, and the counter moved *)
  let jnum k j =
    match Json_util.Json.member k j with
    | Some (Json_util.Json.Num f) -> Some f
    | _ -> None
  in
  let firing_rules () =
    match get "/alerts" with
    | Ok (200, body) -> (
        match Json_util.Json.parse body with
        | Ok j -> (
            match Json_util.Json.member "firing" j with
            | Some (Json_util.Json.Arr al) ->
                List.filter_map
                  (fun a ->
                    match Json_util.Json.member "rule" a with
                    | Some (Json_util.Json.Str r) -> Some r
                    | _ -> None)
                  al
            | _ -> [])
        | Error msg ->
            fail "GET /alerts: bad JSON: %s" msg;
            [])
    | Ok (status, _) ->
        fail "GET /alerts: status %d" status;
        []
    | Error msg ->
        fail "GET /alerts: %s" msg;
        []
  in
  if !fired && not (List.mem "slo-error-rate" (firing_rules ())) then
    fail "degraded /healthz without slo-error-rate in /alerts firing list";
  (match get "/counters" with
  | Ok (200, body) -> (
      match Json_util.Json.parse body with
      | Ok j -> (
          match jnum "watchdog.alerts_fired" j with
          | Some v when v >= 1. -> ()
          | Some v -> fail "watchdog.alerts_fired = %.0f, expected >= 1" v
          | None -> fail "watchdog.alerts_fired missing from /counters")
      | Error msg -> fail "GET /counters: bad JSON: %s" msg)
  | Ok (status, _) -> fail "GET /counters: status %d" status
  | Error msg -> fail "GET /counters: %s" msg);
  (* 3. recovery: healthy traffic until the alert clears *)
  let t_rec = Unix.gettimeofday () in
  let cleared = ref false in
  while (not !cleared) && Unix.gettimeofday () -. t_rec < !timeout do
    for _ = 1 to 3 do
      ignore (post_compile "conv2d")
    done;
    (match get "/healthz" with Ok (200, _) -> cleared := true | _ -> ());
    if not !cleared then Unix.sleepf 0.1
  done;
  let t_clear = Unix.gettimeofday () -. t_rec in
  if not !cleared then fail "watchdog did not clear within %.1fs of recovery" !timeout;
  if !cleared && firing_rules () <> [] then
    fail "/healthz recovered but /alerts still lists firing rules";
  (* 4. history: monotone series; the auto union's sums sandwich the
     per-level sums exactly (every point lives in exactly one level) *)
  let points metric res =
    match get (Printf.sprintf "/history/%s?res=%s" metric res) with
    | Ok (200, body) -> (
        match Json_util.Json.parse body with
        | Ok j -> (
            match Json_util.Json.member "points" j with
            | Some (Json_util.Json.Arr ps) ->
                List.filter_map
                  (fun p ->
                    match (jnum "ts" p, jnum "sum" p) with
                    | Some ts, Some sum -> Some (ts, sum)
                    | _ -> None)
                  ps
            | _ -> [])
        | Error msg ->
            fail "GET /history/%s: bad JSON: %s" metric msg;
            [])
    | Ok (status, _) ->
        fail "GET /history/%s?res=%s: status %d" metric res status;
        []
    | Error msg ->
        fail "GET /history/%s: %s" metric msg;
        []
  in
  let sum_of ps = List.fold_left (fun acc (_, s) -> acc +. s) 0. ps in
  let metric = "delta.http.requests" in
  (* compaction only moves segments once they have sealed and aged past
     the retention window; under --expect-compacted wait (bounded) for
     the first downsampled points while the recorder keeps ticking *)
  if !expect_compacted then begin
    let t0 = Unix.gettimeofday () in
    while
      points metric "10s" = [] && points metric "60s" = []
      && Unix.gettimeofday () -. t0 < !timeout
    do
      Unix.sleepf 0.3
    done
  end;
  let auto1 = points metric "auto" in
  if auto1 = [] then fail "/history/%s?res=auto returned no points" metric;
  (let rec mono = function
     | (t1, _) :: ((t2, _) :: _ as rest) ->
         if t2 < t1 then fail "/history/%s: non-monotone ts %.3f -> %.3f" metric t1 t2
         else mono rest
     | _ -> ()
   in
   mono auto1);
  let lvl = sum_of (points metric "raw") +. sum_of (points metric "10s")
            +. sum_of (points metric "60s") in
  let auto2 = points metric "auto" in
  if not (sum_of auto1 <= lvl && lvl <= sum_of auto2) then
    fail
      "level sums not conserved: auto %.0f .. %.0f should sandwich raw+10s+60s %.0f"
      (sum_of auto1) (sum_of auto2) lvl;
  if !expect_compacted && points metric "10s" = [] && points metric "60s" = []
  then fail "no downsampled points despite --expect-compacted";
  (* 5. sketch: ordered quantiles, exact request count *)
  (match get "/sketch/compile" with
  | Ok (200, body) -> (
      match Json_util.Json.parse body with
      | Ok j -> (
          match (jnum "p50" j, jnum "p90" j, jnum "p95" j, jnum "p99" j) with
          | Some p50, Some p90, Some p95, Some p99 ->
              if not (p50 <= p90 && p90 <= p95 && p95 <= p99) then
                fail "sketch quantiles not ordered: %.2f %.2f %.2f %.2f" p50 p90
                  p95 p99;
              (match jnum "count" j with
              | Some c when int_of_float c = !compile_posts -> ()
              | Some c ->
                  fail "sketch count %.0f, expected %d compile posts" c
                    !compile_posts
              | None -> fail "sketch lacks a count field");
              (match jnum "rank_error" j with
              | Some e when e >= 0. -> ()
              | _ -> fail "sketch lacks a rank_error bound")
          | _ -> fail "/sketch/compile lacks quantile fields")
      | Error msg -> fail "GET /sketch/compile: bad JSON: %s" msg)
  | Ok (status, _) -> fail "GET /sketch/compile: status %d" status
  | Error msg -> fail "GET /sketch/compile: %s" msg);
  (* report *)
  let dg = Digest.of_list !latencies in
  let pct p = match Digest.quantile dg p with Some v -> v | None -> 0.0 in
  Printf.printf "soak: %d normal + burst/recovery against port %d\n" !requests
    !port;
  Printf.printf "  watchdog    fired after %.2fs of burst, cleared %.2fs into \
                 recovery\n"
    t_fire t_clear;
  if Digest.count dg > 0 then
    Printf.printf "  latency ms  p50 %.1f   p95 %.1f   p99 %.1f\n" (pct 0.5)
      (pct 0.95) (pct 0.99);
  if !failures <> [] then begin
    Printf.eprintf "soak: %d check(s) failed:\n" (List.length !failures);
    List.iter (fun m -> Printf.eprintf "  - %s\n" m) (List.rev !failures);
    exit 1
  end;
  Printf.printf
    "  checks      all passed (fire/clear, history conserved, sketch ordered)\n"

let experiments =
  [ ("table1", Paper_experiments.table1);
    ("fig8", Paper_experiments.fig8);
    ("fig9", Paper_experiments.fig9);
    ("fig10", Paper_experiments.fig10);
    ("table2", Paper_experiments.table2);
    ("table3", Paper_experiments.table3);
    ("compile_time", Paper_experiments.compile_time);
    ("ablations", Ablations.run_all);
    ("verify", Paper_experiments.verify);
    ("passes", bechamel_passes);
    ("profile", profile)
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
      print_endline
        "Reproduction of 'Optimizing the Memory Hierarchy by Compositing\n\
         Automatic Transformations on Computations and Data' (MICRO 2020)";
      Paper_experiments.run_all ()
  | "snapshot" :: rest -> snapshot_cmd rest
  | "regress" :: rest -> regress_cmd rest
  | "report" :: rest -> report_cmd rest
  | "parallel" :: rest -> parallel_cmd rest
  | "tune" :: rest -> tune_cmd rest
  | "serve" :: rest -> serve_cmd rest
  | "soak" :: rest -> soak_cmd rest
  | names ->
      List.iter
        (fun n ->
          match List.assoc_opt n experiments with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown experiment %s (available: %s)\n" n
                (String.concat ", " (List.map fst experiments));
              exit 1)
        names
