(* Independent schedule-legality verifier: every registry workload must
   verify clean through all 8 flows (the static checker re-derives the
   instance order from the final tree alone), mutated known-good trees
   must be rejected (the checker is not vacuously true), and the fuzz
   shrinker must reduce an injected failure to a fraction of the
   original spec. *)

let check = Alcotest.check
let bool = Alcotest.bool

let flows_of p =
  [ ("naive", Exp_util.naive p);
    ("minfuse", Exp_util.heuristic ~tile:5 ~target:Core.Pipeline.Cpu Fusion.Minfuse p);
    ("smartfuse", Exp_util.heuristic ~tile:5 ~target:Core.Pipeline.Cpu Fusion.Smartfuse p);
    ("maxfuse", Exp_util.heuristic ~tile:5 ~target:Core.Pipeline.Cpu Fusion.Maxfuse p);
    ("hybridfuse", Exp_util.heuristic ~tile:5 ~target:Core.Pipeline.Cpu Fusion.Hybridfuse p);
    ("ours", Exp_util.ours ~tile:5 ~target:Core.Pipeline.Cpu p);
    ("polymage", Exp_util.polymage_version ~tile:5 ~target:Core.Pipeline.Cpu p);
    ("halide", Exp_util.halide_version ~tile:5 ~target:Core.Pipeline.Cpu p)
  ]

let verify_workload reg_name =
  let e = Registry.find reg_name in
  let p = e.Registry.small () in
  List.iter
    (fun (fname, v) ->
      let tree = Exp_util.tree_of p v in
      let rep = Legality.check p tree in
      check Alcotest.(list string)
        (Printf.sprintf "%s/%s statically legal" reg_name fname)
        []
        (List.map Legality.violation_string rep.Legality.rep_violations))
    (flows_of p)

let registry_cases =
  List.map
    (fun name ->
      Alcotest.test_case (name ^ " x 8 flows") `Slow (fun () ->
          verify_workload name))
    Registry.names

(* ------------------------------------------------------------------ *)
(* Mutation tests: tamper with known-good trees and demand that the
   checker rejects each mutation with a named dependence — the checker
   must not be vacuously true. *)

(* A single statement with a loop-carried dependence of distance
   (1,-1): s(i,j) writes A[i][j] and reads A[i-1][j+1]. The textual
   (i,j) order is legal; interchanging or reversing the i dimension
   makes the source instance run after its consumer. *)
let antidiagonal_prog () =
  let open Wl in
  let domain = box "s" [ ("i", cst 1, cst 5); ("j", cst 0, cst 4) ] in
  let write =
    access ~stmt:"s" ~dims:[ "i"; "j" ] "A" [ idx (dim 0); idx (dim 1) ]
  in
  let read =
    access ~stmt:"s" ~dims:[ "i"; "j" ] "A"
      [ idx (dim 0 -$ cst 1); idx (dim 1 +$ cst 1) ]
  in
  Prog.make ~name:"antidiag" ~params:[]
    ~arrays:[ arr "A" [ cst 7; cst 7 ] ]
    ~stmts:
      [ Prog.mk_stmt ~name:"s" ~domain ~write ~reads:[ read ]
          ~compute:(fun v -> v.(0) +. 1.0)
          ~ops:1 ()
      ]
    ~live_out:[ "A" ]

(* Rewrite every band piece's constraint list; space and flags are kept
   so the mutation is purely about which instance order the band maps
   to. *)
let map_band_pieces f tree =
  Schedule_tree.map_tree
    (function
      | Schedule_tree.Band (b, child) ->
          let pieces =
            List.map f (Presburger.Imap.pieces b.Schedule_tree.partial)
          in
          Some
            (Schedule_tree.Band
               ( { b with Schedule_tree.partial = Presburger.Imap.of_bmaps pieces },
                 child ))
      | _ -> None)
    tree

let swap_first_two_out_dims (bm : Presburger.Bmap.t) =
  let open Presburger in
  let np = Bmap.n_params bm and ni = Bmap.n_in bm in
  if Bmap.n_out bm < 2 then bm
  else
    Bmap.make bm.Bmap.space
      (List.map
         (fun c ->
           Cstr.swap_blocks c ~pos1:(np + ni) ~len1:1 ~pos2:(np + ni + 1)
             ~len2:1)
         bm.Bmap.cstrs)

let negate_out_dim j (bm : Presburger.Bmap.t) =
  let open Presburger in
  let np = Bmap.n_params bm and ni = Bmap.n_in bm in
  if Bmap.n_out bm <= j then bm
  else
    Bmap.make bm.Bmap.space
      (List.map
         (fun (c : Cstr.t) ->
           let coef = Array.copy c.Cstr.coef in
           coef.(np + ni + j) <- -coef.(np + ni + j);
           { c with Cstr.coef })
         bm.Bmap.cstrs)

let reverse_sequences tree =
  Schedule_tree.map_tree
    (function
      | Schedule_tree.Sequence l -> Some (Schedule_tree.Sequence (List.rev l))
      | _ -> None)
    tree

let drop_one_extension tree =
  let dropped = ref false in
  let t =
    Schedule_tree.map_tree
      (function
        | Schedule_tree.Extension (_, child) when not !dropped ->
            dropped := true;
            Some child
        | _ -> None)
      tree
  in
  (!dropped, t)

let assert_rejected what (rep : Legality.report) =
  if rep.Legality.rep_violations = [] then
    Alcotest.failf "%s: mutation not rejected by the checker" what;
  (* every rejection must name the violated dependence (or the live-out
     array whose coverage broke), not just signal "something is off" *)
  if
    not
      (List.exists
         (fun (v : Legality.violation) ->
           v.Legality.vl_array <> ""
           && (v.Legality.vl_src <> "" || v.Legality.vl_kind = "liveout"))
         rep.Legality.rep_violations)
  then
    Alcotest.failf "%s: no violation names a dependence: %s" what
      (String.concat "; "
         (List.map Legality.violation_string rep.Legality.rep_violations))

let mutation_swap_band () =
  let p = antidiagonal_prog () in
  let good = Legality.naive_tree p in
  check Alcotest.(list string) "antidiag baseline legal" []
    (List.map Legality.violation_string
       (Legality.check p good).Legality.rep_violations);
  let bad = map_band_pieces swap_first_two_out_dims good in
  assert_rejected "swap band members" (Legality.check p bad)

let mutation_negate_dim () =
  let p = antidiagonal_prog () in
  let bad = map_band_pieces (negate_out_dim 0) (Legality.naive_tree p) in
  assert_rejected "reverse band dimension" (Legality.check p bad)

let mutation_reverse_sequence () =
  let p = (Registry.find "conv2d").Registry.small () in
  let good = Legality.naive_tree p in
  check Alcotest.(list string) "conv2d naive baseline legal" []
    (List.map Legality.violation_string
       (Legality.check p good).Legality.rep_violations);
  let bad = reverse_sequences good in
  let rep = Legality.check p bad in
  assert_rejected "reverse sequence" rep;
  if
    not
      (List.exists
         (fun (v : Legality.violation) -> v.Legality.vl_kind = "raw")
         rep.Legality.rep_violations)
  then Alcotest.fail "reversed producer/consumer must surface a raw violation"

let mutation_drop_extension () =
  (* find a flow whose tree actually carries an extension node (the
     paper's recompute instances); dropping it must break coverage *)
  let candidates =
    List.concat_map
      (fun wname ->
        let p = (Registry.find wname).Registry.small () in
        [ (wname, p, Exp_util.ours ~tile:5 ~target:Core.Pipeline.Cpu p);
          (wname, p, Exp_util.polymage_version ~tile:5 ~target:Core.Pipeline.Cpu p)
        ])
      [ "harris"; "conv2d" ]
  in
  let found =
    List.find_map
      (fun (wname, p, v) ->
        let tree = Exp_util.tree_of p v in
        let dropped, bad = drop_one_extension tree in
        if dropped then Some (wname, v.Exp_util.ver_name, p, bad) else None)
      candidates
  in
  match found with
  | None -> Alcotest.fail "no flow produced an extension node to drop"
  | Some (wname, vname, p, bad) ->
      assert_rejected
        (Printf.sprintf "drop extension (%s/%s)" wname vname)
        (Legality.check p bad)

(* ------------------------------------------------------------------ *)
(* Dynamic shadow validator: clean on an honest flow, loud on a
   tampered execution order even before values diverge. *)

let shadow_clean () =
  let p = (Registry.find "conv2d").Registry.small () in
  let ast = Gen.generate p (Legality.naive_tree p) in
  let rep = Shadow.validate p ~ref_ast:ast ~ast in
  check Alcotest.(list string) "naive vs naive shadow-clean" []
    (List.map Shadow.violation_string rep.Shadow.sh_violations);
  if rep.Shadow.sh_reads = 0 || rep.Shadow.sh_writes = 0 then
    Alcotest.fail "shadow validator observed no memory traffic"

let shadow_rejects_reversed () =
  let p = (Registry.find "conv2d").Registry.small () in
  let good = Legality.naive_tree p in
  let ref_ast = Gen.generate p good in
  let bad_ast = Gen.generate p (reverse_sequences good) in
  let rep = Shadow.validate p ~ref_ast ~ast:bad_ast in
  if rep.Shadow.sh_violations = [] then
    Alcotest.fail "reversed execution order passed the shadow validator";
  if
    not
      (List.exists
         (fun (v : Shadow.violation) ->
           v.Shadow.sv_kind = "read-before-write")
         rep.Shadow.sh_violations)
  then
    Alcotest.failf "expected a read-before-write violation, got: %s"
      (String.concat "; "
         (List.map Shadow.violation_string rep.Shadow.sh_violations))

(* ------------------------------------------------------------------ *)
(* Fuzz shrinker: an injected failure predicate must reduce to a small
   fraction of the original spec (the acceptance bound is <= half the
   stage count). *)

let shrink_halves () =
  let open Random_pipeline in
  (* pick a seed whose generated spec is big enough to be worth
     shrinking and contains a stencil stage the predicate can anchor *)
  let has_stencil sp =
    List.exists
      (fun st -> match st.sg_kind with Stencil _ -> true | _ -> false)
      sp.sp_stages
  in
  let rec pick seed =
    if seed > 200 then Alcotest.fail "no seed with >= 4 stages and a stencil"
    else
      let sp = spec_of_seed default_config ~seed in
      if List.length sp.sp_stages >= 4 && has_stencil sp then (seed, sp)
      else pick (seed + 1)
  in
  let seed, spec = pick 0 in
  (* the predicate lowers every candidate, as the fuzz harness does *)
  let predicate sp =
    let p = build_spec sp in
    List.exists (fun (s : Prog.stmt) -> List.length s.Prog.reads >= 3) p.Prog.stmts
  in
  let o = Shrink.shrink spec ~predicate in
  let n0 = List.length spec.sp_stages in
  let n1 = List.length o.Shrink.shrunk.sp_stages in
  if not (spec_valid o.Shrink.shrunk) then
    Alcotest.fail "shrunk spec is not feasible";
  if not (predicate o.Shrink.shrunk) then
    Alcotest.fail "shrunk spec no longer reproduces the failure";
  if 2 * n1 > n0 then
    Alcotest.failf "seed %d: shrink left %d of %d stages (> half)" seed n1 n0;
  let repro = Shrink.repro_ml ~seed ~note:"unit test" o.Shrink.shrunk in
  check bool "repro file is self-contained" true
    (let contains hay needle =
       let lh = String.length hay and ln = String.length needle in
       let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
       go 0
     in
     contains repro "Random_pipeline.build_spec")

let () =
  Harness.run "verify"
    [ ("registry-static", registry_cases);
      ( "mutations",
        [ Alcotest.test_case "swap band members" `Quick mutation_swap_band;
          Alcotest.test_case "reverse band dimension" `Quick mutation_negate_dim;
          Alcotest.test_case "reverse sequence" `Quick mutation_reverse_sequence;
          Alcotest.test_case "drop extension node" `Slow mutation_drop_extension
        ] );
      ( "shadow",
        [ Alcotest.test_case "naive is shadow-clean" `Quick shadow_clean;
          Alcotest.test_case "reversed order rejected" `Quick
            shadow_rejects_reversed
        ] );
      ("shrink", [ Alcotest.test_case "halves an injected failure" `Quick shrink_halves ])
    ]
