(* Property-based differential tests for the presburger substrate.

   Unlike the QCheck properties in test_presburger.ml (which compare
   single operations against brute-force membership), these properties
   check *algebraic laws across operations* on randomly generated
   systems — the places where the memoization and canonicalization
   layers could silently disagree with the uncached semantics:

   - subtract/intersect satisfy the De Morgan dualities over unions;
   - project_dims agrees with the Fm.iter_points_by_enum ground truth;
   - apply_range of two functional maps equals the pointwise image;
   - remove_redundant is idempotent (bit-identical second pass) and
     semantics-preserving;
   - every derived result is bit-identical with the Fm memo caches
     enabled (cold and hot) and disabled.

   Seeds thread exactly as in test_fuzz: `--seed N` (stripped before
   Alcotest parses argv) or FUZZ_SEED offsets every generator seed, and
   each failure message prints the seed that reproduces it alone:
     dune exec test/test_props.exe -- --seed 1000 *)

open Presburger

let base_seed, argv = Harness.seed_from_argv ()

(* ------------------------------------------------------------------ *)
(* Generators (hand-rolled over Random.State so a single int seed      *)
(* reproduces a case without QCheck's shrinking machinery)             *)
(* ------------------------------------------------------------------ *)

let space2 = Space.set_space "S" [ "i"; "j" ]

(* Random basic set over 2 dims: a small bounding box plus 0-2 general
   constraints with coefficients in -2..2. Same shape family as the
   QCheck generator in test_presburger.ml. *)
let gen_bset st =
  let lo () = Random.State.int st 9 - 3 in
  let len () = Random.State.int st 6 in
  let lo0 = lo () and lo1 = lo () in
  let box =
    [ Cstr.ge [| 1; 0 |] (-lo0);
      Cstr.ge [| -1; 0 |] (lo0 + len ());
      Cstr.ge [| 0; 1 |] (-lo1);
      Cstr.ge [| 0; -1 |] (lo1 + len ())
    ]
  in
  let extra =
    List.init (Random.State.int st 3) (fun _ ->
        let a = Random.State.int st 5 - 2
        and b = Random.State.int st 5 - 2
        and c = Random.State.int st 9 - 4 in
        Cstr.ge [| a; b |] c)
  in
  Bset.make space2 (box @ extra)

(* Random separable functional map in_tuple[i,j] -> out_tuple[±i + c,
   ±j + f], domain-restricted to a random set. Returns the map and the
   point function it denotes. *)
let gen_fmap st ~in_tuple ~out_tuple =
  let sign () = if Random.State.bool st then 1 else -1 in
  let shift () = Random.State.int st 7 - 3 in
  let a = sign () and c = shift () and e = sign () and f = shift () in
  let m =
    Bmap.from_affs ~in_tuple ~in_dims:[ "i"; "j" ] ~out_tuple
      [ ("x", Aff.add (Aff.dim ~coef:a 0) (Aff.const c));
        ("y", Aff.add (Aff.dim ~coef:e 1) (Aff.const f))
      ]
  in
  let dom = Bset.set_tuple (gen_bset st) in_tuple in
  let fn pt = [| (a * pt.(0)) + c; (e * pt.(1)) + f |] in
  (Bmap.intersect_domain m dom, dom, fn)

let enumerate_box f =
  for i = -8 to 12 do
    for j = -8 to 12 do
      f [| i; j |]
    done
  done

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* a \ (b ∩ c) = (a \ b) ∪ (a \ c)  and  a \ (b ∪ c) = (a \ b) ∩ (a \ c) *)
let prop_de_morgan st =
  let a = Iset.of_bset (gen_bset st)
  and b = Iset.of_bset (gen_bset st)
  and c = Iset.of_bset (gen_bset st) in
  Iset.is_equal
    (Iset.subtract a (Iset.intersect b c))
    (Iset.union (Iset.subtract a b) (Iset.subtract a c))
  && Iset.is_equal
       (Iset.subtract a (Iset.union b c))
       (Iset.intersect (Iset.subtract a b) (Iset.subtract a c))

(* project_dims against the enumerated ground truth: the projection
   onto i contains exactly the i-values of the enumerated points. *)
let prop_project_vs_enum st =
  let s = gen_bset st in
  match Bset.project_dims s ~first:1 ~count:1 with
  | exception Fm.Inexact _ -> true (* nothing to check; exactness declined *)
  | proj ->
      if Bset.is_empty s then Bset.is_empty proj
      else begin
        let truth = Hashtbl.create 16 in
        Fm.iter_points_by_enum ~nvars:2 s.Bset.cstrs (fun pt ->
            Hashtbl.replace truth pt.(0) ());
        let ok = ref true in
        for i = -8 to 12 do
          if Bset.contains proj [| i |] <> Hashtbl.mem truth i then ok := false
        done;
        !ok
      end

(* apply_range of two functional maps is the pointwise composition:
   the composed relation holds exactly the pairs ((i,j), g(f(i,j)))
   with (i,j) in dom f and f(i,j) in dom g. *)
let prop_apply_range_pointwise st =
  let m1, dom1, f = gen_fmap st ~in_tuple:"S" ~out_tuple:"T" in
  let m2, dom2, g = gen_fmap st ~in_tuple:"T" ~out_tuple:"U" in
  match Bmap.apply_range m1 m2 with
  | exception Fm.Inexact _ -> true
  | composed ->
      let view = Bmap.to_set_view composed in
      let expected = ref 0 in
      let ok = ref true in
      enumerate_box (fun pt ->
          let mid = f pt in
          if Bset.contains dom1 pt && Bset.contains dom2 mid then begin
            incr expected;
            let out = g mid in
            if not (Bset.contains view [| pt.(0); pt.(1); out.(0); out.(1) |])
            then ok := false
          end);
      (* membership of every expected pair, and nothing else: the map is
         functional, so the view has exactly one point per domain point *)
      !ok && Bset.card view = !expected

(* remove_redundant: running it twice returns the identical constraint
   list (canonical order makes this byte-comparable), and the pruned
   system has the same points as the original. *)
let prop_remove_redundant_idempotent st =
  let s = gen_bset st in
  match Fm.remove_redundant ~nvars:2 s.Bset.cstrs with
  | exception Fm.Inexact _ -> true
  | r1 ->
      let r2 = Fm.remove_redundant ~nvars:2 r1 in
      let pruned = Bset.make space2 r1 in
      List.equal Cstr.equal r1 r2
      && Bset.is_subset s pruned && Bset.is_subset pruned s

(* The memo caches are invisible: a battery of derived results is
   bit-identical computed cold (empty caches), hot (second run over
   warm caches) and with caching disabled entirely. *)
let prop_cached_equals_uncached st =
  let a = gen_bset st and b = gen_bset st in
  let battery () =
    let i = Bset.intersect a b in
    let proj =
      try Bset.to_string (Bset.project_dims a ~first:0 ~count:1)
      with Fm.Inexact _ -> "<inexact>"
    in
    ( Bset.to_string i,
      Bset.is_empty i,
      Bset.is_subset a b,
      proj,
      Bset.to_string (Bset.gist_simplify a),
      Iset.to_string (Iset.subtract (Iset.of_bset a) (Iset.of_bset b)) )
  in
  let was_enabled = Fm_cache.is_enabled () in
  Fm_cache.set_enabled true;
  Fm_cache.reset ();
  let cold = battery () in
  let hot = battery () in
  Fm_cache.set_enabled false;
  Fm_cache.reset ();
  let uncached = battery () in
  Fm_cache.set_enabled was_enabled;
  cold = hot && cold = uncached

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let iterate name count prop =
  Alcotest.test_case name `Quick (fun () ->
      for k = 0 to count - 1 do
        let seed = base_seed + k in
        let st = Random.State.make [| 0x5eed; seed |] in
        if not (prop st) then
          Alcotest.failf "%s violated (reproduce with --seed %d)" name seed
      done)

let () =
  if base_seed <> 0 then
    Printf.printf "props: seed offset %d (reproduce with --seed %d)\n%!"
      base_seed base_seed;
  Harness.run ~argv "props"
    [ ( "laws",
        [ iterate "de morgan over subtract/intersect" 150 prop_de_morgan;
          iterate "project_dims vs enumeration" 200 prop_project_vs_enum;
          iterate "apply_range vs pointwise image" 150 prop_apply_range_pointwise;
          iterate "remove_redundant idempotent" 200 prop_remove_redundant_idempotent
        ] );
      ( "caching",
        [ iterate "cached results bit-identical to uncached" 100
            prop_cached_equals_uncached
        ] )
    ]
