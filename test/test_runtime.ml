(* Parallel tile-graph runtime tests: the sequential interpreter
   ([Interp.run] via [Cpu_model.run_to_memory], same deterministic
   fill) is the oracle for every executor mode -- a correct tile graph
   makes the parallel result bit-identical because every conflicting
   tile pair stays ordered by a sequence-order edge.

   Covers: differential parallel-vs-sequential over registry workloads
   and fuzz seeds, tile-graph extraction invariants and exact edge
   counts on conv2d/jacobi, the conservative wavefront fallback, and
   the race checker itself (which must fire on a deliberately reversed
   execution order and stay silent on a valid one). *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let compile ?(tile = 8) p = Exp_util.ours ~tile ~target:Core.Pipeline.Cpu p

let deps_of p (v : Exp_util.version) =
  match v.Exp_util.flavor with
  | Exp_util.Ours c -> c.Core.Pipeline.deps
  | Exp_util.Naive | Exp_util.Baseline _ -> Deps.compute p

let live_out_equal p m1 m2 =
  List.for_all (fun a -> Interp.arrays_equal m1 m2 a) p.Prog.live_out

(* Run one workload through the runtime in [mode] with [jobs] workers
   (race-checked) and compare its live-out arrays against the
   sequential interpreter. *)
let differential ?mode ~jobs p (v : Exp_util.version) =
  let deps = deps_of p v in
  let r = Runtime.run ~jobs ?mode ~race_check:true p ~deps v.Exp_util.ast in
  let oracle = Cpu_model.run_to_memory p v.Exp_util.ast in
  check bool
    (Printf.sprintf "%s: no race violations" p.Prog.prog_name)
    true
    (r.Runtime.metrics.Executor.m_violations = []);
  check bool
    (Printf.sprintf "%s: parallel result matches Interp.run" p.Prog.prog_name)
    true
    (live_out_equal p r.Runtime.mem oracle)

(* ------------------------------------------------------------------ *)
(* Differential: registry workloads, both flows, 4 workers             *)
(* ------------------------------------------------------------------ *)

let registry_workloads = [ "conv2d"; "unsharp_mask"; "harris"; "jacobi_unrolled"; "2mm" ]

let test_registry_parallel () =
  List.iter
    (fun name ->
      let e = Registry.find name in
      let p = e.Registry.small () in
      differential ~jobs:4 p (compile p))
    registry_workloads

let test_registry_smartfuse_parallel () =
  List.iter
    (fun name ->
      let e = Registry.find name in
      let p = e.Registry.small () in
      let v = Exp_util.heuristic ~tile:8 ~target:Core.Pipeline.Cpu Fusion.Smartfuse p in
      differential ~jobs:4 p v)
    [ "conv2d"; "harris"; "2mm" ]

(* ------------------------------------------------------------------ *)
(* Differential: random pipelines                                      *)
(* ------------------------------------------------------------------ *)

let test_fuzz_parallel () =
  List.iter
    (fun seed ->
      let p = Random_pipeline.generate Random_pipeline.default_config ~seed in
      let v = Exp_util.ours ~tile:5 ~target:Core.Pipeline.Cpu p in
      differential ~jobs:4 p v)
    [ 0; 2000; 3000 ]

(* ------------------------------------------------------------------ *)
(* Tile-graph extraction                                               *)
(* ------------------------------------------------------------------ *)

let graph_of ?(tile = 8) name =
  let e = Registry.find name in
  let p = e.Registry.small () in
  let v = compile ~tile p in
  (p, v, Tile_graph.extract p ~deps:(deps_of p v) v.Exp_util.ast)

let graph_invariants (g : Tile_graph.t) =
  let n = Tile_graph.n_items g in
  (* edges go from lower to higher id, so id order is a valid schedule *)
  Array.iteri
    (fun i succs -> List.iter (fun j -> check bool "edge i<j" true (i < j)) succs)
    g.Tile_graph.succs;
  let edge_count = Array.fold_left (fun a s -> a + List.length s) 0 g.Tile_graph.succs in
  check int "n_edges consistent with succs" g.Tile_graph.n_edges edge_count;
  let pred_total = Array.fold_left ( + ) 0 g.Tile_graph.preds in
  check int "preds consistent with succs" edge_count pred_total;
  (* wavefront levels respect every edge *)
  let levels = Tile_graph.levels g in
  check int "one level per item" n (Array.length levels);
  Array.iteri
    (fun i succs ->
      List.iter (fun j -> check bool "level increases along edges" true (levels.(i) < levels.(j))) succs)
    g.Tile_graph.succs

let test_extract_conv2d () =
  let _, _, g = graph_of "conv2d" in
  check int "conv2d tiles" 4 (Tile_graph.n_items g);
  check int "conv2d edges" 6 g.Tile_graph.n_edges;
  check bool "conv2d analyzable" false g.Tile_graph.has_opaque;
  graph_invariants g

let test_extract_jacobi () =
  let _, _, g = graph_of "jacobi_unrolled" in
  check int "jacobi tiles" 8 (Tile_graph.n_items g);
  check int "jacobi edges" 7 g.Tile_graph.n_edges;
  graph_invariants g

let test_extract_harris_invariants () =
  let _, _, g = graph_of "harris" in
  check bool "harris has multiple tiles" true (Tile_graph.n_items g > 1);
  check bool "harris has edges" true (g.Tile_graph.n_edges > 0);
  graph_invariants g

let test_extract_deterministic () =
  let p, v, g1 = graph_of "harris" in
  let g2 = Tile_graph.extract p ~deps:(deps_of p v) v.Exp_util.ast in
  check int "same tiles" (Tile_graph.n_items g1) (Tile_graph.n_items g2);
  check int "same edges" g1.Tile_graph.n_edges g2.Tile_graph.n_edges;
  Array.iteri
    (fun i s -> check bool "same succs" true (s = g2.Tile_graph.succs.(i)))
    g1.Tile_graph.succs

let test_max_tiles_cap () =
  let e = Registry.find "harris" in
  let p = e.Registry.small () in
  let v = compile p in
  let g = Tile_graph.extract ~max_tiles:2 p ~deps:(deps_of p v) v.Exp_util.ast in
  (* the cap is soft: coarsened subtrees still execute correctly *)
  check bool "capped below full graph" true (Tile_graph.n_items g <= 4);
  let mem = Interp.alloc p in
  Cpu_model.deterministic_fill p mem;
  ignore (Executor.run_sequential p g mem);
  let oracle = Cpu_model.run_to_memory p v.Exp_util.ast in
  check bool "coarsened graph still correct" true (live_out_equal p mem oracle)

(* ------------------------------------------------------------------ *)
(* Executor modes                                                      *)
(* ------------------------------------------------------------------ *)

let test_wavefront_mode () =
  List.iter
    (fun name ->
      let e = Registry.find name in
      let p = e.Registry.small () in
      differential ~mode:Executor.Wavefront ~jobs:3 p (compile p))
    [ "harris"; "conv2d" ]

let test_seq_mode () =
  let e = Registry.find "unsharp_mask" in
  let p = e.Registry.small () in
  differential ~mode:Executor.Seq ~jobs:4 p (compile p)

let test_default_mode () =
  let _, _, g = graph_of "conv2d" in
  check bool "analyzable graph runs dag" true (Runtime.default_mode g = Executor.Dag)

(* ------------------------------------------------------------------ *)
(* Timelines: busy-time conservation                                   *)
(* ------------------------------------------------------------------ *)

(* Worker busy time is defined as the per-tile timeline intervals
   summed per worker; check the conservation law across jobs settings
   and that the timeline covers every tile exactly once. *)
let test_timeline_conservation () =
  let e = Registry.find "harris" in
  let p = e.Registry.small () in
  let v = compile p in
  let deps = deps_of p v in
  List.iter
    (fun jobs ->
      let r = Runtime.run ~jobs p ~deps v.Exp_util.ast in
      let m = r.Runtime.metrics in
      let tl = m.Executor.m_timeline in
      check int
        (Printf.sprintf "jobs=%d: one timeline entry per tile" jobs)
        m.Executor.m_tiles (List.length tl);
      let tiles = List.sort compare (List.map (fun t -> t.Executor.tl_tile) tl) in
      check bool
        (Printf.sprintf "jobs=%d: each tile appears exactly once" jobs)
        true
        (tiles = List.init m.Executor.m_tiles (fun i -> i));
      check bool
        (Printf.sprintf "jobs=%d: timeline sorted by start" jobs)
        true
        (let rec sorted = function
           | a :: (b :: _ as rest) ->
               a.Executor.tl_start_s <= b.Executor.tl_start_s && sorted rest
           | _ -> true
         in
         sorted tl);
      List.iter
        (fun t ->
          check bool "worker id in range" true
            (t.Executor.tl_worker >= 0 && t.Executor.tl_worker < jobs);
          check bool "start/dur non-negative" true
            (t.Executor.tl_start_s >= 0.0 && t.Executor.tl_dur_s >= 0.0))
        tl;
      (* conservation, per worker: busy.(w) == sum of w's durations *)
      Array.iteri
        (fun w busy ->
          let from_tl =
            List.fold_left
              (fun acc t ->
                if t.Executor.tl_worker = w then acc +. t.Executor.tl_dur_s
                else acc)
              0.0 tl
          in
          check bool
            (Printf.sprintf "jobs=%d worker %d: busy == timeline sum" jobs w)
            true
            (abs_float (busy -. from_tl) < 1e-9))
        m.Executor.m_busy_s)
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Race checker                                                        *)
(* ------------------------------------------------------------------ *)

(* The checker must fire when tiles run in an order that breaks a
   dependence edge: execute harris's tiles in reverse id order, so
   every consumer tile reads cells whose producer has not completed. *)
let test_race_checker_fires () =
  let e = Registry.find "harris" in
  let p = e.Registry.small () in
  let v = compile p in
  let g = Tile_graph.extract p ~deps:(deps_of p v) v.Exp_util.ast in
  check bool "needs edges for the test to mean anything" true (g.Tile_graph.n_edges > 0);
  let n = Tile_graph.n_items g in
  let reversed = Array.init n (fun i -> n - 1 - i) in
  let mem = Interp.alloc p in
  Cpu_model.deterministic_fill p mem;
  let m = Executor.run_sequential ~order:reversed ~race_check:true p g mem in
  check bool "reversed order trips the race checker" true
    (m.Executor.m_violations <> []);
  List.iter
    (fun (viol : Executor.violation) ->
      check bool "violation names a real writer tile" true
        (viol.Executor.v_writer >= 0 && viol.Executor.v_writer < n);
      check bool "reader ran before its producer" true
        (viol.Executor.v_writer <> viol.Executor.v_tile))
    m.Executor.m_violations

let test_race_checker_silent_on_valid_order () =
  let e = Registry.find "harris" in
  let p = e.Registry.small () in
  let v = compile p in
  let g = Tile_graph.extract p ~deps:(deps_of p v) v.Exp_util.ast in
  let mem = Interp.alloc p in
  Cpu_model.deterministic_fill p mem;
  let m = Executor.run_sequential ~race_check:true p g mem in
  check bool "id order is race-free" true (m.Executor.m_violations = [])

let () =
  Harness.run "runtime"
    [ ( "differential",
        [ Alcotest.test_case "registry x ours, 4 workers" `Slow test_registry_parallel;
          Alcotest.test_case "registry x smartfuse, 4 workers" `Slow
            test_registry_smartfuse_parallel;
          Alcotest.test_case "fuzz seeds 0/2000/3000" `Slow test_fuzz_parallel
        ] );
      ( "tile-graph",
        [ Alcotest.test_case "conv2d counts" `Quick test_extract_conv2d;
          Alcotest.test_case "jacobi counts" `Quick test_extract_jacobi;
          Alcotest.test_case "harris invariants" `Quick test_extract_harris_invariants;
          Alcotest.test_case "deterministic" `Quick test_extract_deterministic;
          Alcotest.test_case "max-tiles cap" `Quick test_max_tiles_cap
        ] );
      ( "modes",
        [ Alcotest.test_case "wavefront" `Slow test_wavefront_mode;
          Alcotest.test_case "sequential" `Quick test_seq_mode;
          Alcotest.test_case "default mode" `Quick test_default_mode
        ] );
      ( "timelines",
        [ Alcotest.test_case "busy-time conservation across jobs" `Quick
            test_timeline_conservation
        ] );
      ( "race-checker",
        [ Alcotest.test_case "fires on reversed order" `Quick test_race_checker_fires;
          Alcotest.test_case "silent on valid order" `Quick
            test_race_checker_silent_on_valid_order
        ] )
    ]
