(* Tests for the streaming quantile sketch (lib/obs/digest): exactness
   below capacity, the certified rank-error bound against a
   sorted-array ground truth, merge equivalence, quantile
   monotonicity, and agreement of the shared trimmed-mean with the
   sort-based formula bench/main.ml used before it was deduplicated
   into Digest. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let epsilon = Alcotest.float 1e-9

(* deterministic pseudo-random stream (no Random dependence on seed
   behaviour across OCaml versions) *)
let lcg state =
  let state = Int64.add (Int64.mul 6364136223846793005L state) 1442695040888963407L in
  let bits = Int64.to_int (Int64.shift_right_logical state 17) land 0x3FFFFFFF in
  (state, float_of_int bits /. float_of_int 0x3FFFFFFF)

let stream ?(seed = 42L) n f =
  let rec go st i acc =
    if i = n then List.rev acc
    else
      let st, u = lcg st in
      go st (i + 1) (f u :: acc)
  in
  go seed 0 []

(* ground truth: 0-based real rank q*(n-1) with linear interpolation,
   the same convention Digest.quantile targets *)
let exact_quantile sorted q =
  let n = Array.length sorted in
  let r = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor r) in
  let hi = min (n - 1) (lo + 1) in
  let frac = r -. float_of_int lo in
  (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

(* rank of value v in the sorted array: how many elements are < v and
   how many are <= v; the digest's answer for quantile q must land
   within rank_error of the real rank q*(n-1) *)
let rank_bounds sorted v =
  let below = Array.fold_left (fun a x -> if x < v then a + 1 else a) 0 sorted in
  let at_or_below =
    Array.fold_left (fun a x -> if x <= v then a + 1 else a) 0 sorted
  in
  (below, at_or_below)

let test_exact_small () =
  (* n <= capacity: every quantile matches the sorted array exactly *)
  let xs = stream 100 (fun u -> (u *. 50.) -. 10.) in
  let d = Digest.of_list ~capacity:128 xs in
  check int "rank error zero while exact" 0 (Digest.rank_error d);
  let sorted = Array.of_list (List.sort compare xs) in
  List.iter
    (fun q ->
      match Digest.quantile d q with
      | None -> Alcotest.fail "quantile on non-empty digest"
      | Some v ->
          check epsilon
            (Printf.sprintf "q=%g exact below capacity" q)
            (exact_quantile sorted q) v)
    [ 0.; 0.01; 0.25; 0.5; 0.75; 0.9; 0.99; 1. ]

let test_rank_error_bound () =
  (* n >> capacity: the digest's value for q must sit within
     rank_error ranks of the true rank, for several distributions *)
  let distributions =
    [ ("uniform", fun u -> u *. 1000.);
      ("squared", fun u -> u *. u *. 1000.);
      ("heavy-tail", fun u -> 1. /. (0.001 +. (1. -. u)));
      ("bimodal", fun u -> if u < 0.5 then u else 100. +. u)
    ]
  in
  List.iter
    (fun (name, f) ->
      let xs = stream 5000 f in
      let d = Digest.of_list ~capacity:64 xs in
      let sorted = Array.of_list (List.sort compare xs) in
      let n = Array.length sorted in
      let err = Digest.rank_error d in
      check bool (name ^ ": rank error bounded") true
        (err <= 2 * n / 63 * 4 && err >= 0);
      List.iter
        (fun q ->
          match Digest.quantile d q with
          | None -> Alcotest.fail "quantile on non-empty digest"
          | Some v ->
              let target = q *. float_of_int (n - 1) in
              let below, at_or_below = rank_bounds sorted v in
              (* v's plausible real ranks span [below, at_or_below];
                 that interval must come within err of the target *)
              let dist =
                if target < float_of_int below then
                  float_of_int below -. target
                else if target > float_of_int at_or_below then
                  target -. float_of_int at_or_below
                else 0.
              in
              check bool
                (Printf.sprintf "%s q=%g within certified bound (dist %.1f, err %d)"
                   name q dist err)
                true
                (dist <= float_of_int err +. 1.))
        [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99 ])
    distributions

let test_extremes_and_moments () =
  let xs = stream 3000 (fun u -> (u *. 200.) -. 100.) in
  let d = Digest.of_list ~capacity:32 xs in
  let sorted = List.sort compare xs in
  let mn = List.hd sorted and mx = List.nth sorted (List.length xs - 1) in
  check epsilon "minimum exact" mn
    (Option.value ~default:nan (Digest.minimum d));
  check epsilon "maximum exact" mx
    (Option.value ~default:nan (Digest.maximum d));
  check epsilon "q=0 is min" mn
    (match Digest.quantile d 0. with Some v -> v | None -> nan);
  check epsilon "q=1 is max" mx
    (match Digest.quantile d 1. with Some v -> v | None -> nan);
  let sum = List.fold_left ( +. ) 0. xs in
  check (Alcotest.float 1e-6) "sum exact" sum (Digest.sum d);
  check int "count exact" (List.length xs) (Digest.count d)

let test_monotone () =
  let xs = stream 4000 (fun u -> u *. u *. u *. 1e6) in
  let d = Digest.of_list ~capacity:48 xs in
  let qs = List.init 101 (fun i -> float_of_int i /. 100.) in
  let vs = List.map (fun q -> Option.get (Digest.quantile d q)) qs in
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  check bool "quantiles monotone in q" true (mono vs)

let test_merge () =
  (* merging shards must see every point and keep exact moments;
     quantiles of the merge must respect its own rank_error bound *)
  let a = stream ~seed:1L 2000 (fun u -> u *. 10.) in
  let b = stream ~seed:2L 1500 (fun u -> 5. +. (u *. 10.)) in
  let d = Digest.merge (Digest.of_list ~capacity:64 a) (Digest.of_list ~capacity:64 b) in
  let all = a @ b in
  check int "merged count" (List.length all) (Digest.count d);
  check (Alcotest.float 1e-6) "merged sum" (List.fold_left ( +. ) 0. all)
    (Digest.sum d);
  let sorted = Array.of_list (List.sort compare all) in
  let n = Array.length sorted in
  let err = Digest.rank_error d in
  List.iter
    (fun q ->
      let v = Option.get (Digest.quantile d q) in
      let target = q *. float_of_int (n - 1) in
      let below, at_or_below = rank_bounds sorted v in
      let dist =
        if target < float_of_int below then float_of_int below -. target
        else if target > float_of_int at_or_below then
          target -. float_of_int at_or_below
        else 0.
      in
      check bool
        (Printf.sprintf "merged q=%g within bound" q)
        true
        (dist <= float_of_int err +. 1.))
    [ 0.1; 0.5; 0.9; 0.99 ]

let test_trimmed_mean_matches_sort_formula () =
  (* the formula bench/main.ml used before delegating to Digest *)
  let sort_based xs =
    match List.sort compare xs with
    | [] -> 0.0
    | [ x ] -> x
    | [ x; y ] -> (x +. y) /. 2.0
    | sorted ->
        let n = List.length sorted in
        let trimmed = List.filteri (fun i _ -> i > 0 && i < n - 1) sorted in
        List.fold_left ( +. ) 0.0 trimmed /. float_of_int (n - 2)
  in
  List.iter
    (fun xs ->
      check (Alcotest.float 1e-9) "trimmed mean agrees with sort formula"
        (sort_based xs)
        (Digest.trimmed_mean (Digest.of_list xs)))
    [ [];
      [ 5. ];
      [ 3.; 9. ];
      [ 1.; 2.; 3. ];
      [ 10.; -5.; 3.; 3.; 100. ];
      stream 500 (fun u -> (u *. 40.) -. 20.)
    ]

let test_edge_cases () =
  let d = Digest.create () in
  check bool "empty quantile" true (Digest.quantile d 0.5 = None);
  check epsilon "empty trimmed mean" 0. (Digest.trimmed_mean d);
  Digest.add d Float.nan;
  Digest.add d Float.infinity;
  check int "non-finite values ignored" 0 (Digest.count d);
  Digest.add d 7.;
  check epsilon "singleton quantile" 7.
    (Option.get (Digest.quantile d 0.25));
  (* constant stream past capacity stays exact *)
  let c = Digest.of_list ~capacity:8 (List.init 1000 (fun _ -> 3.5)) in
  check epsilon "constant stream q=0.5" 3.5 (Option.get (Digest.quantile c 0.5));
  check int "constant stream rank error" 0 (Digest.rank_error c)

let () =
  Harness.run "digest"
    [ ( "exactness",
        [ Alcotest.test_case "exact below capacity" `Quick test_exact_small;
          Alcotest.test_case "extremes and moments" `Quick
            test_extremes_and_moments;
          Alcotest.test_case "edge cases" `Quick test_edge_cases
        ] );
      ( "bounds",
        [ Alcotest.test_case "rank-error bound vs sorted array" `Quick
            test_rank_error_bound;
          Alcotest.test_case "quantile monotonicity" `Quick test_monotone
        ] );
      ( "compose",
        [ Alcotest.test_case "merge keeps moments and bound" `Quick test_merge;
          Alcotest.test_case "trimmed mean matches bench formula" `Quick
            test_trimmed_mean_matches_sort_formula
        ] )
    ]
