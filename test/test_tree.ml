(* Schedule-tree, post-tiling-fusion generalization (Fig. 6 shared
   spaces, dead-store elimination) and backend-emission tests. *)

open Presburger
open Wl

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Schedule-tree operations                                            *)
(* ------------------------------------------------------------------ *)

let test_floor_div_map () =
  let m =
    Schedule_tree.floor_div_map ~tuple_in:"b" ~dims:[| "x"; "y" |] ~tuple_out:"T"
      ~tile_sizes:[| 4; 8 |]
  in
  (* (9, 17) falls in tile (2, 2) *)
  let img =
    Bmap.apply_set
      (Parse.bset "{ b[x, y] : x = 9 and y = 17 }" |> fun s ->
       Bset.set_tuple s "b")
      m
  in
  check bool "tile coordinates" true (Iset.contains (Iset.of_bset img) ~tuple:"T" [| 2; 2 |])

let test_tile_band () =
  let p = Conv2d.build () in
  let deps = Deps.compute p in
  let g = Fusion.group_of_stmts p ~deps [ "S1"; "S2"; "S3" ] in
  let band = Build_tree.group_band p g ~name:"b" in
  let tile, point = Schedule_tree.tile_band band ~tile_sizes:[| 2; 2 |] ~prefix:"T_" in
  check int "tile band members" 2 tile.Schedule_tree.n_members;
  check int "point band members" 2 point.Schedule_tree.n_members;
  check bool "permutable preserved" true tile.Schedule_tree.permutable

let test_filters_under () =
  let p = Conv2d.build () in
  let c = Core.Pipeline.run ~target:Core.Pipeline.Cpu ~tile_size:2 p in
  let names = Schedule_tree.filters_under c.Core.Pipeline.tree in
  List.iter
    (fun s -> check bool s true (List.mem s names))
    [ "S0"; "S1"; "S2"; "S3" ]

let test_map_tree_rewrite () =
  let p = Conv2d.build () in
  let c = Core.Pipeline.run ~target:Core.Pipeline.Cpu ~tile_size:2 p in
  let count = ref 0 in
  let _ =
    Schedule_tree.map_tree
      (function
        | Schedule_tree.Mark (m, _) when String.starts_with ~prefix:"kernel" m ->
            incr count;
            None
        | _ -> None)
      c.Core.Pipeline.tree
  in
  check int "one kernel mark visited" 1 !count

(* ------------------------------------------------------------------ *)
(* Fig. 6: one definition, multiple uses                               *)
(* ------------------------------------------------------------------ *)

(* producer P writes A[0..2N+2); consumers are 2-tap stencils (so the
   start-up heuristic cannot band-fuse them with P): L1 (live-out X)
   reads A[i], A[i+1]; L2 (live-out Y) reads at offset N+1 (disjoint
   subsets, P fused into both roots) or offset 4 (overlapping subsets,
   fusion refused -- never any redundancy). *)
let two_consumers ~overlap =
  let params = [ "N" ] in
  let n = prm "N" in
  let one = cst 1 in
  let producer =
    Prog.mk_stmt ~name:"P"
      ~domain:(box ~params "P" [ ("i", cst 0, (2 *$ n) +$ one) ])
      ~write:(access ~params ~stmt:"P" ~dims:[ "i" ] "A" [ idx (dim 0) ])
      ~reads:[ access ~params ~stmt:"P" ~dims:[ "i" ] "IN" [ idx (dim 0) ] ]
      ~compute:(fun v -> v.(0) +. 1.0)
      ~ops:1 ()
  in
  let consumer name out off =
    Prog.mk_stmt ~name
      ~domain:(box ~params name [ ("i", cst 0, n -$ one) ])
      ~write:(access ~params ~stmt:name ~dims:[ "i" ] out [ idx (dim 0) ])
      ~reads:
        [ access ~params ~stmt:name ~dims:[ "i" ] "A" [ idx (dim 0 +$ off) ];
          access ~params ~stmt:name ~dims:[ "i" ] "A"
            [ idx (dim 0 +$ off +$ one) ]
        ]
      ~compute:(fun v -> v.(0) +. v.(1))
      ~ops:1 ()
  in
  Prog.make ~name:"two_consumers" ~params:[ ("N", 32) ]
    ~arrays:
      [ arr "IN" [ (2 *$ n) +$ cst 2 ];
        arr "A" [ (2 *$ n) +$ cst 2 ];
        arr "X" [ n ];
        arr "Y" [ n ]
      ]
    ~stmts:
      [ producer;
        consumer "L1" "X" (cst 0);
        consumer "L2" "Y" (if overlap then cst 4 else n +$ one)
      ]
    ~live_out:[ "X"; "Y" ]

let test_disjoint_uses_fused () =
  let p = two_consumers ~overlap:false in
  let c = Core.Pipeline.run ~target:Core.Pipeline.Cpu ~tile_size:8 p in
  let plan = c.Core.Pipeline.plan in
  (* P fused into both roots, original skipped *)
  check int "two roots" 2 (List.length plan.Core.Post_tiling.roots);
  check bool "producer skipped" true (plan.Core.Post_tiling.skipped <> []);
  List.iter
    (fun (r : Core.Post_tiling.root) ->
      check int "P fused in each root" 1 (List.length r.Core.Post_tiling.fused_ids))
    plan.Core.Post_tiling.roots;
  (* and the transformed program is correct *)
  let reference = Exp_util.naive p in
  check bool "semantics" true
    (Exp_util.check_against p reference (Exp_util.ours ~tile:8 ~target:Core.Pipeline.Cpu p))

let test_overlapping_uses_not_fused () =
  let p = two_consumers ~overlap:true in
  let c = Core.Pipeline.run ~target:Core.Pipeline.Cpu ~tile_size:8 p in
  let plan = c.Core.Pipeline.plan in
  (* the shared subsets intersect: fusion would duplicate work, so the
     producer is scheduled standalone (never any redundancy) *)
  check bool "producer not skipped" true (plan.Core.Post_tiling.skipped = []);
  let reference = Exp_util.naive p in
  check bool "semantics" true
    (Exp_util.check_against p reference (Exp_util.ours ~tile:8 ~target:Core.Pipeline.Cpu p))

(* ------------------------------------------------------------------ *)
(* Dead-store elimination (Algorithm 3, extreme case)                  *)
(* ------------------------------------------------------------------ *)

let test_dead_store_elimination () =
  (* the producer computes 2N+2 elements; the single stencil consumer
     only ever reads the first N+1: the fused tiles cover a strict
     subset of P's domain and the skipped original never executes the
     dead half *)
  let params = [ "N" ] in
  let n = prm "N" in
  let one = cst 1 in
  let producer =
    Prog.mk_stmt ~name:"P"
      ~domain:(box ~params "P" [ ("i", cst 0, (2 *$ n) +$ one) ])
      ~write:(access ~params ~stmt:"P" ~dims:[ "i" ] "A" [ idx (dim 0) ])
      ~reads:[ access ~params ~stmt:"P" ~dims:[ "i" ] "IN" [ idx (dim 0) ] ]
      ~compute:(fun v -> v.(0) +. 1.0)
      ~ops:1 ()
  in
  let consumer =
    Prog.mk_stmt ~name:"L"
      ~domain:(box ~params "L" [ ("i", cst 0, n -$ one) ])
      ~write:(access ~params ~stmt:"L" ~dims:[ "i" ] "X" [ idx (dim 0) ])
      ~reads:
        [ access ~params ~stmt:"L" ~dims:[ "i" ] "A" [ idx (dim 0) ];
          access ~params ~stmt:"L" ~dims:[ "i" ] "A" [ idx (dim 0 +$ one) ]
        ]
      ~compute:(fun v -> v.(0) +. v.(1))
      ~ops:1 ()
  in
  let p =
    Prog.make ~name:"dead_store" ~params:[ ("N", 32) ]
      ~arrays:
        [ arr "IN" [ (2 *$ n) +$ cst 2 ];
          arr "A" [ (2 *$ n) +$ cst 2 ];
          arr "X" [ n ]
        ]
      ~stmts:[ producer; consumer ] ~live_out:[ "X" ]
  in
  let v = Exp_util.ours ~tile:8 ~target:Core.Pipeline.Cpu p in
  let mem = Interp.alloc p in
  let stats = Interp.run p v.Exp_util.ast mem in
  let executed =
    Option.value ~default:0 (Hashtbl.find_opt stats.Interp.per_stmt "P")
  in
  (* the consumer needs A[0..32]; with 8-wide tiles the overlap border
     re-executes 3 instances (4 tiles x 9 points = 36), while the dead
     half of the 66-point domain is never computed *)
  check int "fused executions (live half + overlap)" 36 executed;
  check bool "dead half eliminated" true (executed < 66);
  check bool "live-out X correct" true
    (Exp_util.check_against p (Exp_util.naive p) v)

(* ------------------------------------------------------------------ *)
(* Section IV-D: time-unrolled stencil gets tile-wise concurrent start *)
(* ------------------------------------------------------------------ *)

let test_jacobi_unrolled () =
  let p = Jacobi.build ~n:64 ~steps:3 () in
  let c = Core.Pipeline.run ~target:Core.Pipeline.Cpu ~tile_size:16 p in
  let plan = c.Core.Pipeline.plan in
  (* all earlier steps fuse into the last step's tiles, and the tile
     loop stays parallel (concurrent start across overlapped tiles) *)
  check int "one root" 1 (List.length plan.Core.Post_tiling.roots);
  check int "earlier steps fused" 2 (List.length plan.Core.Post_tiling.skipped);
  let ast = Gen.generate p c.Core.Pipeline.tree in
  let rec outer_parallel = function
    | Ast.Kernel (_, t) | Ast.Block (t :: _) -> outer_parallel t
    | Ast.For { coincident; _ } -> coincident
    | _ -> false
  in
  check bool "concurrent start" true (outer_parallel ast);
  check bool "semantics" true
    (Exp_util.check_against p (Exp_util.naive p)
       (Exp_util.ours ~tile:16 ~target:Core.Pipeline.Cpu p))

(* ------------------------------------------------------------------ *)
(* Backends                                                            *)
(* ------------------------------------------------------------------ *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let conv_compiled =
  let p = Conv2d.build () in
  let c = Core.Pipeline.run ~target:Core.Pipeline.Cpu ~tile_size:2 p in
  (p, Gen.generate p c.Core.Pipeline.tree)

let test_emit_openmp () =
  let p, ast = conv_compiled in
  let src = Emit.openmp ~staged:[ "A" ] p ast in
  check bool "pragma" true (contains src "#pragma omp parallel for");
  check bool "scratchpad" true (contains src "A_tile");
  check bool "macros" true (contains src "#define S2(");
  check bool "loops" true (contains src "for (int c0")

let test_emit_cuda () =
  let p, ast = conv_compiled in
  let src = Emit.cuda ~staged:[ "A" ] p ast in
  check bool "kernel" true (contains src "__global__ void kernel");
  check bool "blocks" true (contains src "blockIdx.x");
  check bool "threads" true (contains src "threadIdx.x");
  check bool "shared memory" true (contains src "__shared__")

let test_emit_cce () =
  let b = List.hd (Resnet.default_blocks ()) in
  let p = Resnet.layer b in
  let c = Core.Pipeline.run ~fuse_reductions:false ~tile_size:8 ~target:Core.Pipeline.Npu p in
  let ast = Gen.generate p c.Core.Pipeline.tree in
  let kind s = match Resnet.unit_kind s with Npu_model.Cube -> `Cube | Npu_model.Vector -> `Vector in
  let src = Emit.cce ~staged:[ "CV_l0" ] ~kind_of:kind p ast in
  check bool "cube op" true (contains src "on CUBE");
  check bool "vector op" true (contains src "on VECTOR");
  check bool "dma" true (contains src "dma DDR")

let () =
  Harness.run "tree"
    [ ( "schedule-tree",
        [ Alcotest.test_case "floor div map" `Quick test_floor_div_map;
          Alcotest.test_case "tile band" `Quick test_tile_band;
          Alcotest.test_case "filters under" `Quick test_filters_under;
          Alcotest.test_case "map_tree" `Quick test_map_tree_rewrite
        ] );
      ( "fig6",
        [ Alcotest.test_case "disjoint uses fused" `Quick test_disjoint_uses_fused;
          Alcotest.test_case "overlapping uses not fused" `Quick
            test_overlapping_uses_not_fused
        ] );
      ( "dead-stores",
        [ Alcotest.test_case "elimination" `Quick test_dead_store_elimination ] );
      ( "stencils",
        [ Alcotest.test_case "time-unrolled jacobi" `Quick test_jacobi_unrolled ] );
      ( "backends",
        [ Alcotest.test_case "openmp" `Quick test_emit_openmp;
          Alcotest.test_case "cuda" `Quick test_emit_cuda;
          Alcotest.test_case "cce" `Quick test_emit_cce
        ] )
    ]
