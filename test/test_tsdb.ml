(* Tests for the on-disk time-series store (lib/obs/tsdb): durability
   across a kill-and-reopen with a torn final line, exact conservation
   of counts and sums through retention downsampling, the ring bound
   on the coarse level, schema refusal, and the label-escaping
   round-trip shared with the OpenMetrics exposition rules. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let with_db ?config f =
  let dir = Filename.temp_dir "memcomp-tsdb-test-" "" in
  let db =
    match Tsdb.open_db ?config dir with
    | Ok db -> db
    | Error e -> Alcotest.failf "open_db: %s" e
  in
  Fun.protect ~finally:(fun () -> Tsdb.close db) (fun () -> f dir db)

let total_count pts = List.fold_left (fun a p -> a + p.Tsdb.p_count) 0 pts
let total_sum pts = List.fold_left (fun a p -> a +. p.Tsdb.p_sum) 0. pts

let small_cfg =
  { Tsdb.seg_points = 8; ret_raw_s = 100.; ret_mid_s = 1000.;
    max_coarse_segments = 3 }

let test_roundtrip () =
  with_db (fun _dir db ->
      Tsdb.observe db ~ts:10. ~metric:"m" 1.5;
      Tsdb.observe db ~ts:11. ~metric:"m" ~labels:[ ("k", "v") ] 2.5;
      Tsdb.observe db ~ts:12. ~metric:"other" 9.;
      let pts = Tsdb.query db ~metric:"m" ~res:Tsdb.Raw () in
      check int "two points" 2 (List.length pts);
      check (Alcotest.float 1e-9) "sum" 4.0 (total_sum pts);
      let labelled =
        Tsdb.query db ~metric:"m" ~labels:[ ("k", "v") ] ~res:Tsdb.Raw ()
      in
      check int "label filter" 1 (List.length labelled);
      let since = Tsdb.query db ~metric:"m" ~since:10.5 ~res:Tsdb.Raw () in
      check int "since filter" 1 (List.length since);
      check bool "metric names" true
        (Tsdb.metric_names db = [ "m"; "other" ]))

let test_kill_and_reopen_mid_append () =
  let dir = Filename.temp_dir "memcomp-tsdb-test-" "" in
  (* first incarnation: write points, then die without close *)
  (match Tsdb.open_db ~config:small_cfg dir with
  | Error e -> Alcotest.failf "open_db: %s" e
  | Ok db ->
      for i = 0 to 19 do
        Tsdb.observe db ~ts:(float_of_int i) ~metric:"m" 1.
      done
      (* no close: simulate SIGKILL; every line was flushed *));
  (* corrupt the tail of the newest raw segment, as a crash mid-write
     would: a torn, unterminated half line *)
  let segs =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 6 && String.sub f 0 6 = "seg-0-")
    |> List.sort compare
  in
  check bool "rotation produced several segments" true (List.length segs >= 2);
  let newest = Filename.concat dir (List.nth segs (List.length segs - 1)) in
  let oc = open_out_gen [ Open_append ] 0o644 newest in
  output_string oc "{\"ts\":99,\"m\":\"m\",\"c\":1,\"s\":1";
  close_out oc;
  (* second incarnation: recovery must drop exactly the torn line *)
  (match Tsdb.open_db ~config:small_cfg dir with
  | Error e -> Alcotest.failf "reopen: %s" e
  | Ok db ->
      let pts = Tsdb.query db ~metric:"m" ~res:Tsdb.Raw () in
      check int "all complete points survive" 20 (total_count pts);
      (* and the store still appends cleanly after recovery *)
      Tsdb.observe db ~ts:20. ~metric:"m" 1.;
      let pts = Tsdb.query db ~metric:"m" ~res:Tsdb.Raw () in
      check int "append after recovery" 21 (total_count pts);
      Tsdb.close db);
  (* third incarnation sees the post-recovery append too *)
  match Tsdb.open_db ~config:small_cfg dir with
  | Error e -> Alcotest.failf "third open: %s" e
  | Ok db ->
      check int "durable across clean close" 21
        (total_count (Tsdb.query db ~metric:"m" ~res:Tsdb.Raw ()));
      Tsdb.close db

let test_downsampling_conserves () =
  (* ample ring bound: this test measures downsampling, not deletion *)
  let cfg = { small_cfg with Tsdb.max_coarse_segments = 1000 } in
  with_db ~config:cfg (fun _dir db ->
      (* 200 points over 200s with varying values and two label sets *)
      let expected_sum = ref 0. in
      for i = 0 to 199 do
        let v = float_of_int (i mod 17) +. 0.25 in
        expected_sum := !expected_sum +. v;
        let labels = if i mod 2 = 0 then [ ("shard", "a") ] else [] in
        Tsdb.observe db ~ts:(float_of_int i) ~metric:"m" ~labels v
      done;
      let before = Tsdb.query db ~metric:"m" ~res:Tsdb.Auto () in
      check int "all points visible pre-compaction" 200 (total_count before);
      (* age everything past both retention horizons *)
      Tsdb.compact db ~now:5000.;
      Tsdb.compact db ~now:5000.;
      let after = Tsdb.query db ~metric:"m" ~res:Tsdb.Auto () in
      check int "count conserved through downsampling" 200 (total_count after);
      check (Alcotest.float 1e-6) "sum conserved through downsampling"
        !expected_sum (total_sum after);
      (* raw level fully drained; points moved, not copied *)
      check int "raw drained" 0
        (total_count (Tsdb.query db ~metric:"m" ~res:Tsdb.Raw ()));
      (* per-label-set series is conserved independently *)
      let shard_a =
        Tsdb.query db ~metric:"m" ~labels:[ ("shard", "a") ] ~res:Tsdb.Auto ()
      in
      check int "labelled sub-series conserved" 100 (total_count shard_a);
      (* bucket invariants: 60s-aligned starts, min <= mean <= max *)
      List.iter
        (fun p ->
          check bool "bucket aligned" true
            (Float.rem p.Tsdb.p_ts 60. = 0. || p.Tsdb.p_count = 0);
          check bool "min/max bracket mean" true
            (p.Tsdb.p_min <= (p.Tsdb.p_sum /. float_of_int p.Tsdb.p_count)
            && (p.Tsdb.p_sum /. float_of_int p.Tsdb.p_count) <= p.Tsdb.p_max))
        (Tsdb.query db ~metric:"m" ~res:Tsdb.R60 ());
      (* timestamps stay sorted across the level union *)
      let rec sorted = function
        | a :: (b :: _ as rest) -> a.Tsdb.p_ts <= b.Tsdb.p_ts && sorted rest
        | _ -> true
      in
      check bool "auto query sorted" true (sorted after))

let test_ring_bound () =
  with_db ~config:small_cfg (fun dir db ->
      (* enough distinct 60s buckets to overflow max_coarse_segments *)
      for i = 0 to 999 do
        Tsdb.observe db ~ts:(float_of_int i *. 30.) ~metric:"m" 1.
      done;
      Tsdb.compact db ~now:1e6;
      Tsdb.compact db ~now:1e6;
      let coarse =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f ->
               String.length f > 6 && String.sub f 0 6 = "seg-2-")
      in
      check bool "coarse level ring-bounded" true
        (List.length coarse <= small_cfg.Tsdb.max_coarse_segments);
      (* oldest data was deleted, newest survives *)
      let pts = Tsdb.query db ~metric:"m" ~res:Tsdb.Auto () in
      check bool "some history retained" true (pts <> []);
      check bool "history is the newest tail" true
        (total_count pts < 1000
        && (List.nth pts (List.length pts - 1)).Tsdb.p_ts
           >= (List.hd pts).Tsdb.p_ts))

let test_schema_refusal () =
  let dir = Filename.temp_dir "memcomp-tsdb-test-" "" in
  let oc = open_out (Filename.concat dir "meta.json") in
  output_string oc "{\"schema\":99}\n";
  close_out oc;
  match Tsdb.open_db dir with
  | Ok _ -> Alcotest.fail "opened a store with an unknown schema"
  | Error e ->
      check bool "error names the schema" true
        (String.length e > 0
        &&
        let lower = String.lowercase_ascii e in
        let rec contains i =
          i + 6 <= String.length lower
          && (String.sub lower i 6 = "schema" || contains (i + 1))
        in
        contains 0)

let test_label_escaping_roundtrip () =
  (* the exposition escaping rules and the tsdb must agree: a label
     value survives escape -> unescape unchanged, and a labelled point
     written to the store comes back with its exact label value *)
  let awkward =
    [ "plain";
      "with \"quotes\"";
      "back\\slash";
      "new\nline";
      "mix\\\"of\nall\\";
      ""
    ]
  in
  List.iter
    (fun v ->
      check string
        (Printf.sprintf "escape/unescape round-trip %S" v)
        v
        (Openmetrics.unescape_label (Openmetrics.escape_label v)))
    awkward;
  with_db (fun _dir db ->
      List.iteri
        (fun i v ->
          Tsdb.observe db ~ts:(float_of_int i) ~metric:"m"
            ~labels:[ ("val", v) ]
            1.)
        awkward;
      List.iter
        (fun v ->
          let pts =
            Tsdb.query db ~metric:"m" ~labels:[ ("val", v) ] ~res:Tsdb.Raw ()
          in
          check int
            (Printf.sprintf "label value %S round-trips through disk" v)
            1 (List.length pts))
        awkward)

let () =
  Harness.run "tsdb"
    [ ( "basics",
        [ Alcotest.test_case "observe and query" `Quick test_roundtrip;
          Alcotest.test_case "schema refusal" `Quick test_schema_refusal
        ] );
      ( "durability",
        [ Alcotest.test_case "kill and reopen mid-append" `Quick
            test_kill_and_reopen_mid_append
        ] );
      ( "retention",
        [ Alcotest.test_case "downsampling conserves count and sum" `Quick
            test_downsampling_conserves;
          Alcotest.test_case "coarse ring bound" `Quick test_ring_bound
        ] );
      ( "labels",
        [ Alcotest.test_case "escaping round-trip (openmetrics shared)" `Quick
            test_label_escaping_roundtrip
        ] )
    ]
