(* Autotuner (lib/tuner): determinism under a fixed seed (including
   invariance to the worker-domain count), tuning-database round-trip
   with an instant cache hit on the second tune, footprint pruning that
   never drops the known-best conv2d configuration, legality of every
   scored candidate (re-checked against the independent verifier, not
   just the tuner's own bookkeeping), and the strategy ordering
   exhaustive <= greedy <= default on a small space. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let conv2d_small () = (Registry.find "conv2d").Registry.small ()
let harris_small () = (Registry.find "harris").Registry.small ()

(* A deliberately small space so exhaustive search stays cheap: one
   flow ladder per test keeps total evaluations in the dozens. *)
let small_space ?(flows = [ Search_space.Ours ]) ?scratchpad_bytes p =
  Search_space.make ~ladder:[ 8; 16; 32 ] ~recompute_ladder:[ 4.0 ] ?flows:(Some flows)
    ?scratchpad_bytes p

let run_tune ?(strategy = Tuner.Greedy) ?(budget = 16) ?(jobs = 1) ?(seed = 0)
    ?space ?db_path ?force p =
  match Tuner.tune ~strategy ~budget ~jobs ~seed ?space ?db_path ?force p with
  | Ok r -> r
  | Error msg -> Alcotest.failf "tune failed: %s" msg

(* --- determinism ---------------------------------------------------- *)

let test_seed_determinism () =
  let p = harris_small () in
  let tune seed jobs =
    let r =
      run_tune ~strategy:Tuner.Random ~budget:10 ~seed ~jobs
        ~space:(small_space ~flows:Search_space.all_flows p)
        p
    in
    let e = r.Tuner.r_entry in
    ( Search_space.candidate_name e.Tune_db.en_best,
      Evaluator.cost e.Tune_db.en_best_score,
      e.Tune_db.en_evaluated,
      List.map fst e.Tune_db.en_trajectory )
  in
  let b1, c1, n1, t1 = tune 42 1 in
  let b2, c2, n2, t2 = tune 42 1 in
  check string "same seed, same best" b1 b2;
  check (Alcotest.float 0.0) "same seed, same cost" c1 c2;
  check int "same seed, same evaluations" n1 n2;
  check (Alcotest.list string) "same seed, same trajectory" t1 t2;
  (* the worker-domain count must not change the outcome: evaluation is
     pure and results are recorded in input order *)
  let b4, c4, n4, t4 = tune 42 4 in
  check string "jobs=4, same best" b1 b4;
  check (Alcotest.float 0.0) "jobs=4, same cost" c1 c4;
  check int "jobs=4, same evaluations" n1 n4;
  check (Alcotest.list string) "jobs=4, same trajectory" t1 t4;
  (* different seeds explore different prefixes of the shuffled space *)
  let _, _, n3, _ = tune 7 1 in
  check bool "different seed still within budget" true (n3 <= 10)

(* --- database round-trip and cache hit ------------------------------ *)

let test_db_roundtrip () =
  let path = Filename.temp_file "tune_db" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let p = conv2d_small () in
      let space = small_space p in
      let r1 = run_tune ~budget:8 ~space ~db_path:path p in
      check bool "first tune is not cached" false r1.Tuner.r_cached;
      (* the entry survives a save/load cycle intact *)
      let db =
        match Tune_db.load path with
        | Ok db -> db
        | Error msg -> Alcotest.failf "load failed: %s" msg
      in
      check int "one entry stored" 1 (List.length (Tune_db.entries db));
      let stored =
        match Tune_db.find db r1.Tuner.r_entry.Tune_db.en_key with
        | Some e -> e
        | None -> Alcotest.fail "stored entry not found under its key"
      in
      check string "round-tripped best config"
        (Search_space.candidate_name r1.Tuner.r_entry.Tune_db.en_best)
        (Search_space.candidate_name stored.Tune_db.en_best);
      check (Alcotest.float 0.0) "round-tripped best cost"
        (Evaluator.cost r1.Tuner.r_entry.Tune_db.en_best_score)
        (Evaluator.cost stored.Tune_db.en_best_score);
      (* the second tune answers from the database without evaluating:
         the tuner.evaluated counter must not move *)
      Obs.reset ();
      Obs.enable ();
      let r2 = run_tune ~budget:8 ~space ~db_path:path p in
      check bool "second tune is cached" true r2.Tuner.r_cached;
      check int "second tune evaluates nothing" 0
        (Obs.counter_value "tuner.evaluated");
      check string "cached best matches"
        (Search_space.candidate_name r1.Tuner.r_entry.Tune_db.en_best)
        (Search_space.candidate_name r2.Tuner.r_entry.Tune_db.en_best);
      (* --force re-tunes under the same key *)
      let r3 = run_tune ~budget:8 ~space ~db_path:path p ~force:true in
      check bool "--force re-tunes" false r3.Tuner.r_cached;
      check bool "--force re-evaluates" true
        (Obs.counter_value "tuner.evaluated" > 0))

(* --- footprint pruning keeps the known-best ------------------------- *)

let test_pruning_keeps_best () =
  let p = conv2d_small () in
  (* ground truth: exhaustively score the space with pruning disabled
     (a scratchpad so large every candidate fits) *)
  let unbounded = small_space ~scratchpad_bytes:max_int p in
  let all, pruned_none = Search_space.enumerate unbounded in
  check int "unbounded space prunes nothing" 0 pruned_none;
  let results =
    Evaluator.evaluate ~target:Core.Pipeline.Cpu p all
  in
  let best =
    List.fold_left
      (fun acc (c, o) ->
        match (acc, o) with
        | None, Evaluator.Scored s -> Some (c, s)
        | Some (_, bs), Evaluator.Scored s
          when Evaluator.compare_scores s bs < 0 ->
            Some (c, s)
        | _ -> acc)
      None results
  in
  let best_c, best_s =
    match best with Some b -> b | None -> Alcotest.fail "nothing scored"
  in
  (* the real bound: the pruned space must still contain the true best,
     because the footprint estimate scales with exactly the staged
     bytes the model charges (never prunes below the measured need) *)
  let bounded = small_space p in
  check bool "footprint bound admits the measured best" true
    (Search_space.footprint_estimate bounded best_c.Search_space.cd_tiles
     >= best_s.Evaluator.sc_staged_bytes);
  let kept, _ = Search_space.enumerate bounded in
  check bool "pruned space still contains the known-best" true
    (List.exists
       (fun c ->
         Search_space.candidate_name c = Search_space.candidate_name best_c)
       kept)

(* --- every scored candidate is independently legal ------------------ *)

let test_all_evaluated_legal () =
  let p = harris_small () in
  let sp = small_space ~flows:Search_space.all_flows p in
  let cands, _ = Search_space.enumerate sp in
  (* cap the batch to keep the test quick, but cover every flow *)
  let cands = List.filteri (fun i _ -> i < 12) cands in
  let results = Evaluator.evaluate ~target:Core.Pipeline.Cpu p cands in
  check bool "evaluated a non-empty batch" true (results <> []);
  List.iter
    (fun (c, o) ->
      match o with
      | Evaluator.Scored _ ->
          (* re-check with the verifier directly: the tuner's own
             bookkeeping is not trusted here *)
          let v =
            Evaluator.version_of ~target:Core.Pipeline.Cpu p c
          in
          let rep = Legality.check p (Exp_util.tree_of p v) in
          check
            Alcotest.(list string)
            (Printf.sprintf "%s verifies clean"
               (Search_space.candidate_name c))
            []
            (List.map Legality.violation_string rep.Legality.rep_violations)
      | Evaluator.Illegal _ -> ()  (* rejected, never scored: correct *)
      | Evaluator.Failed msg ->
          Alcotest.failf "%s failed to compile: %s"
            (Search_space.candidate_name c)
            msg)
    results

(* --- greedy vs exhaustive on a small space -------------------------- *)

let test_greedy_vs_exhaustive () =
  let p = harris_small () in
  let space () = small_space ~flows:[ Search_space.Ours; Search_space.Maxfuse ] p in
  let budget = 64 in
  let ex = run_tune ~strategy:Tuner.Exhaustive ~budget ~space:(space ()) p in
  let gr = run_tune ~strategy:Tuner.Greedy ~budget ~space:(space ()) p in
  let cost r = Evaluator.cost r.Tuner.r_entry.Tune_db.en_best_score in
  let default_cost r =
    Evaluator.cost r.Tuner.r_entry.Tune_db.en_default_score
  in
  check bool "exhaustive covered the whole space" true
    (ex.Tuner.r_entry.Tune_db.en_evaluated >= ex.Tuner.r_space
    || ex.Tuner.r_entry.Tune_db.en_evaluated = budget);
  check bool "exhaustive <= greedy" true (cost ex <= cost gr);
  check bool "greedy <= default" true (cost gr <= default_cost gr);
  check bool "greedy spends no more evaluations than exhaustive" true
    (gr.Tuner.r_entry.Tune_db.en_evaluated
    <= ex.Tuner.r_entry.Tune_db.en_evaluated);
  (* the DRAM guarantee the CI smoke gate relies on *)
  List.iter
    (fun r ->
      check bool "tuned DRAM <= default DRAM" true
        (r.Tuner.r_entry.Tune_db.en_best_score.Evaluator.sc_dram_bytes
        <= r.Tuner.r_entry.Tune_db.en_default_score.Evaluator.sc_dram_bytes))
    [ ex; gr ];
  (* zero illegal candidates survive into either result: the winning
     configuration itself re-verifies clean *)
  List.iter
    (fun r ->
      let c = r.Tuner.r_entry.Tune_db.en_best in
      let v = Evaluator.version_of ~target:Core.Pipeline.Cpu p c in
      let rep = Legality.check p (Exp_util.tree_of p v) in
      check int
        (Search_space.candidate_name c ^ ": winner has no violations")
        0
        (List.length rep.Legality.rep_violations))
    [ ex; gr ]

let () =
  Harness.run "tuner"
    [ ( "determinism",
        [ Alcotest.test_case "fixed seed, any jobs" `Slow test_seed_determinism ]
      );
      ( "database",
        [ Alcotest.test_case "round-trip and cache hit" `Quick test_db_roundtrip ]
      );
      ( "pruning",
        [ Alcotest.test_case "keeps the known-best on conv2d" `Slow
            test_pruning_keeps_best
        ] );
      ( "legality",
        [ Alcotest.test_case "every scored candidate verifies" `Slow
            test_all_evaluated_legal
        ] );
      ( "strategies",
        [ Alcotest.test_case "exhaustive <= greedy <= default" `Slow
            test_greedy_vs_exhaustive
        ] )
    ]
