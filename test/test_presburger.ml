(* Tests for the presburger substrate: constraint engine, basic sets and
   maps, unions, parser. Includes the worked example of the paper
   (Section III-A, relations (2)-(4)). *)

open Presburger

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vec () =
  check int "gcd" 6 (Vec.gcd 12 18);
  check int "gcd neg" 6 (Vec.gcd (-12) 18);
  check int "gcd zero" 5 (Vec.gcd 0 5);
  check int "floor pos" 2 (Vec.floor_div 7 3);
  check int "floor neg" (-3) (Vec.floor_div (-7) 3);
  check int "ceil pos" 3 (Vec.ceil_div 7 3);
  check int "ceil neg" (-2) (Vec.ceil_div (-7) 3);
  check int "floor exact" (-2) (Vec.floor_div (-6) 3);
  check int "ceil exact" (-2) (Vec.ceil_div (-6) 3)

(* ------------------------------------------------------------------ *)
(* Cstr                                                                *)
(* ------------------------------------------------------------------ *)

let test_cstr_simplify () =
  (match Cstr.simplify (Cstr.ge [| 2; 4 |] 3) with
  | Cstr.Keep c ->
      check bool "tighten ge" true (c.coef = [| 1; 2 |] && c.cst = 1)
  | _ -> Alcotest.fail "expected Keep");
  (match Cstr.simplify (Cstr.eq [| 2; 4 |] 3) with
  | Cstr.Trivial_false -> ()
  | _ -> Alcotest.fail "2x+4y+3=0 has no integer solution");
  (match Cstr.simplify (Cstr.ge [| 0; 0 |] (-1)) with
  | Cstr.Trivial_false -> ()
  | _ -> Alcotest.fail "expected trivially false");
  match Cstr.simplify (Cstr.eq [| 0 |] 0) with
  | Cstr.Trivial_true -> ()
  | _ -> Alcotest.fail "expected trivially true"

(* ------------------------------------------------------------------ *)
(* Basic sets                                                         *)
(* ------------------------------------------------------------------ *)

let test_set_empty () =
  let s = Parse.bset "{ S[i] : 0 <= i < 10 }" in
  check bool "non-empty" false (Bset.is_empty s);
  let e = Parse.bset "{ S[i] : 0 <= i and i <= -1 }" in
  check bool "empty" true (Bset.is_empty e);
  let g = Parse.bset "{ S[i] : 2 <= 2 * i and 2 * i <= 2 }" in
  check bool "singleton i=1" false (Bset.is_empty g);
  let h = Parse.bset "{ S[i] : 1 <= 2 * i and 2 * i <= 1 }" in
  check bool "no integer between 1/2 and 1/2" true (Bset.is_empty h)

let test_set_ops () =
  let a = Parse.bset "{ S[i, j] : 0 <= i < 8 and 0 <= j < 8 }" in
  let b = Parse.bset "{ S[i, j] : 4 <= i < 12 and 0 <= j < 8 }" in
  let inter = Bset.intersect a b in
  check int "card of intersection" 32 (Bset.card inter);
  check bool "subset" true (Bset.is_subset inter a);
  check bool "not subset" false (Bset.is_subset a b);
  let diff = Iset.subtract (Iset.of_bset a) (Iset.of_bset b) in
  check int "card of difference" 32 (Iset.card diff);
  let uni = Iset.union (Iset.of_bset a) (Iset.of_bset b) in
  check int "card of union (overlap counted once)" 96 (Iset.card uni)

let test_project_tiling_pattern () =
  (* project out the point dim from T*o <= i < T*o + T with 0 <= i < 12,
     T = 4: the tile dim o ranges over 0..2 *)
  let s = Parse.bset "{ S[o, i] : 4 * o <= i and i < 4 * o + 4 and 0 <= i < 12 }" in
  let proj = Bset.project_dims s ~first:1 ~count:1 in
  check int "tiles" 3 (Bset.card proj);
  let expected = Parse.bset "{ S[o] : 0 <= o <= 2 }" in
  check bool "tile range" true
    (Bset.is_subset proj expected && Bset.is_subset expected proj);
  (* and the reverse: project out the tile dim *)
  let proj2 = Bset.project_dims s ~first:0 ~count:1 in
  let expected2 = Parse.bset "{ S[i] : 0 <= i < 12 }" in
  check bool "point range" true
    (Bset.is_subset proj2 expected2 && Bset.is_subset expected2 proj2)

let test_box_and_card () =
  let tri = Parse.bset "{ S[i, j] : 0 <= i < 4 and 0 <= j <= i }" in
  check int "triangle card" 10 (Bset.card tri);
  let box = Bset.box_hull tri in
  check bool "box hull" true (box = [| (0, 3); (0, 3) |]);
  check int "box card" 16 (Bset.box_card tri)

let test_bind_params () =
  let s = Parse.bset "[N] -> { S[i] : 0 <= i < N }" in
  let s4 = Bset.bind_params s [ ("N", 4) ] in
  check int "bound card" 4 (Bset.card s4);
  check bool "contains 3" true (Bset.contains s4 [| 3 |]);
  check bool "not contains 4" false (Bset.contains s4 [| 4 |])

let test_sample () =
  let s = Parse.bset "{ S[i, j] : 3 <= i < 10 and i <= j and j < 2 * i }" in
  (match Bset.sample s with
  | Some pt -> check bool "sample member" true (Bset.contains s pt)
  | None -> Alcotest.fail "expected a sample");
  let e = Parse.bset "{ S[i] : 0 <= i and i <= -1 }" in
  check bool "no sample from empty" true (Bset.sample e = None)

let test_subtract_exact () =
  let a = Parse.bset "{ S[i] : 0 <= i < 10 }" in
  let b = Parse.bset "{ S[i] : 3 <= i < 6 }" in
  let d = Bset.subtract a b in
  let total = List.fold_left (fun acc p -> acc + Bset.card p) 0 d in
  check int "difference size" 7 total;
  List.iter
    (fun p ->
      check bool "disjoint from b" true
        (Bset.is_empty (Bset.intersect p b)))
    d

(* ------------------------------------------------------------------ *)
(* Basic maps                                                         *)
(* ------------------------------------------------------------------ *)

let test_map_domain_range () =
  let m = Parse.bmap "{ S[i] -> A[i + 2] : 0 <= i < 5 }" in
  let dom = Bmap.domain m and rng = Bmap.range m in
  check int "domain card" 5 (Bset.card dom);
  check int "range card" 5 (Bset.card rng);
  check bool "range shifted" true
    (Bset.is_subset rng (Parse.bset "{ A[x] : 2 <= x < 7 }"))

let test_map_reverse () =
  let m = Parse.bmap "{ S[i] -> A[i + 5] : 0 <= i < 4 }" in
  let r = Bmap.reverse m in
  check bool "reverse domain = range" true
    (Bset.is_subset (Bmap.domain r) (Bmap.range m)
    && Bset.is_subset (Bmap.range m) (Bmap.domain r))

(* The library has no existentially quantified dimensions, so the range
   of a stride-2 map (a parity-constrained set) is not representable:
   the operation must raise rather than over-approximate. *)
let test_stride_range_raises () =
  let m = Parse.bmap "{ S[i] -> A[2 * i] : 0 <= i < 4 }" in
  match Bmap.range m with
  | exception Fm.Inexact _ -> ()
  | _ -> Alcotest.fail "expected Inexact for a stride-2 range"

let test_map_compose () =
  let f = Parse.bmap "{ S[i] -> T[i + 1] : 0 <= i < 10 }" in
  let g = Parse.bmap "{ T[j] -> U[2 * j] : j >= 3 }" in
  let fg = Bmap.apply_range f g in
  (* i -> 2*(i+1) for i >= 2 *)
  let expected = Parse.bmap "{ S[i] -> U[k] : k = 2 * i + 2 and 2 <= i < 10 }" in
  check bool "compose" true
    (Bmap.is_subset fg expected && Bmap.is_subset expected fg)

let test_map_apply_set () =
  let s = Parse.bset "{ S[i] : 0 <= i < 4 }" in
  let m = Parse.bmap "{ S[i] -> A[i + 10] }" in
  let img = Bmap.apply_set s m in
  check bool "image" true
    (Bset.is_subset img (Parse.bset "{ A[x] : 10 <= x < 14 }")
    && Bset.is_subset (Parse.bset "{ A[x] : 10 <= x < 14 }") img)

let test_from_affs () =
  let m =
    Bmap.from_affs ~in_tuple:"S" ~in_dims:[ "h"; "w" ] ~out_tuple:"A"
      [ ("x", Aff.add (Aff.dim 0) (Aff.const 1)); ("y", Aff.dim 1) ]
  in
  let expected = Parse.bmap "{ S[h, w] -> A[x, y] : x = h + 1 and y = w }" in
  check bool "from_affs" true
    (Bmap.is_subset m expected && Bmap.is_subset expected m)

let test_lex_lt () =
  let sp = Space.set_space "S" [ "i"; "j" ] in
  let lt = Imap.lex_lt sp in
  let dom = Parse.bset "{ S[i, j] : 0 <= i < 2 and 0 <= j < 2 }" in
  let restricted =
    Imap.intersect_range (Imap.intersect_domain lt (Iset.of_bset dom)) (Iset.of_bset dom)
  in
  (* pairs (a,b) with a <lex b among 4 points: C(4,2) = 6 *)
  check int "lex pairs" 6 (Imap.card restricted)

(* ------------------------------------------------------------------ *)
(* The paper's worked example (Section III-A)                          *)
(* ------------------------------------------------------------------ *)

(* H = W = 6, KH = KW = 3, T2 = T3 = 2. Relation (2) maps S2 instances to
   tile coordinates; relation (3) is the read access of S2 to A;
   relation (4) = reverse(2) . (3) maps tiles to footprints of A. *)
let test_paper_relation_4 () =
  let rel2 =
    Parse.bmap
      "{ S2[h, w, kh, kw] -> T[o0, o1] : 2 * o0 <= h and h < 2 * o0 + 2 and \
       2 * o1 <= w and w < 2 * o1 + 2 and 0 <= h <= 3 and 0 <= w <= 3 and \
       0 <= kh < 3 and 0 <= kw < 3 }"
  in
  let rel3 =
    Parse.bmap
      "{ S2[h, w, kh, kw] -> A[x, y] : x = h + kh and y = w + kw and \
       0 <= h <= 3 and 0 <= w <= 3 and 0 <= kh < 3 and 0 <= kw < 3 }"
  in
  let rel4 = Bmap.apply_range (Bmap.reverse rel2) rel3 in
  (* Blue tile (o0,o1) = (1,0): footprint 2 <= x <= 5, 0 <= y <= 3 *)
  let blue = Bmap.apply_set (Parse.bset "{ T[o0, o1] : o0 = 1 and o1 = 0 }") rel4 in
  let blue_expected = Parse.bset "{ A[x, y] : 2 <= x <= 5 and 0 <= y <= 3 }" in
  check bool "blue tile footprint" true
    (Bset.is_subset blue blue_expected && Bset.is_subset blue_expected blue);
  (* Red tile (1,1): footprint 2 <= x <= 5, 2 <= y <= 5 *)
  let red = Bmap.apply_set (Parse.bset "{ T[o0, o1] : o0 = 1 and o1 = 1 }") rel4 in
  let red_expected = Parse.bset "{ A[x, y] : 2 <= x <= 5 and 2 <= y <= 5 }" in
  check bool "red tile footprint" true
    (Bset.is_subset red red_expected && Bset.is_subset red_expected red);
  check int "red footprint is 16 points" 16 (Bset.card red);
  (* overlap between consecutive tiles is non-empty (overlapped tiling) *)
  let overlap = Bset.intersect blue red in
  check int "overlap region" 8 (Bset.card overlap)

(* Relation (6): composing (4) with the reversed write access of S0
   tiles the quantization space. *)
let test_paper_relation_6 () =
  let rel4 =
    Parse.bmap
      "{ T[o0, o1] -> A[x, y] : 0 <= o0 < 2 and 0 <= o1 < 2 and \
       2 * o0 <= x and x < 2 * o0 + 4 and 2 * o1 <= y and y < 2 * o1 + 4 and \
       0 <= x < 6 and 0 <= y < 6 }"
  in
  let write5 = Parse.bmap "{ A[x, y] -> S0[h, w] : h = x and w = y and 0 <= x < 6 and 0 <= y < 6 }" in
  let rel6 = Bmap.apply_range rel4 write5 in
  let blue = Bmap.apply_set (Parse.bset "{ T[o0, o1] : o0 = 1 and o1 = 0 }") rel6 in
  let blue_expected = Parse.bset "{ S0[h, w] : 2 <= h <= 5 and 0 <= w <= 3 }" in
  check bool "S0 blue tile" true
    (Bset.is_subset blue blue_expected && Bset.is_subset blue_expected blue)

(* ------------------------------------------------------------------ *)
(* Unions                                                              *)
(* ------------------------------------------------------------------ *)

let test_union_tuples () =
  let u = Parse.set "{ A[i] : 0 <= i < 3; B[j] : 0 <= j < 2 }" in
  check bool "tuples" true (Iset.tuples u = [ "A"; "B" ]);
  check int "card across tuples" 5 (Iset.card u);
  let a_only = Iset.filter_tuple u "A" in
  check int "filtered card" 3 (Iset.card a_only)

let test_union_or () =
  let u = Parse.set "{ S[i] : 0 <= i < 3 or 10 <= i < 12 }" in
  check int "disjunctive card" 5 (Iset.card u);
  check bool "member of second disjunct" true (Iset.contains u ~tuple:"S" [| 10 |])

let test_coalesce () =
  let u = Parse.set "{ S[i] : 0 <= i < 10 or 2 <= i < 5 }" in
  let c = Iset.coalesce u in
  check int "coalesced to one piece" 1 (List.length (Iset.pieces c));
  check int "same points" 10 (Iset.card c)

(* ------------------------------------------------------------------ *)
(* Parser round-trips over the literal corpus                          *)
(* ------------------------------------------------------------------ *)

(* Every isl-syntax literal used in this file. Each must survive
   Parse -> to_string -> Parse with the same set of points, and the
   printed form must be a fixpoint (printing the reparse reproduces it
   byte for byte) — construction-time canonicalization makes the
   printed constraint order deterministic, so this pins it down. *)
let bset_corpus =
  [ "{ S[i] : 0 <= i < 10 }";
    "{ S[i] : 0 <= i and i <= -1 }";
    "{ S[i] : 2 <= 2 * i and 2 * i <= 2 }";
    "{ S[i] : 1 <= 2 * i and 2 * i <= 1 }";
    "{ S[i, j] : 0 <= i < 8 and 0 <= j < 8 }";
    "{ S[i, j] : 4 <= i < 12 and 0 <= j < 8 }";
    "{ S[o, i] : 4 * o <= i and i < 4 * o + 4 and 0 <= i < 12 }";
    "{ S[o] : 0 <= o <= 2 }";
    "{ S[i] : 0 <= i < 12 }";
    "{ S[i, j] : 0 <= i < 4 and 0 <= j <= i }";
    "[N] -> { S[i] : 0 <= i < N }";
    "{ S[i, j] : 3 <= i < 10 and i <= j and j < 2 * i }";
    "{ S[i] : 3 <= i < 6 }";
    "{ A[x] : 2 <= x < 7 }";
    "{ A[x] : 10 <= x < 14 }";
    "{ T[o0, o1] : o0 = 1 and o1 = 0 }";
    "{ T[o0, o1] : o0 = 1 and o1 = 1 }";
    "{ A[x, y] : 2 <= x <= 5 and 0 <= y <= 3 }";
    "{ A[x, y] : 2 <= x <= 5 and 2 <= y <= 5 }";
    "{ S0[h, w] : 2 <= h <= 5 and 0 <= w <= 3 }";
    "{ S[i, j] : 0 <= i < 2 and 0 <= j < 2 }"
  ]

let bmap_corpus =
  [ "{ S[i] -> A[i + 2] : 0 <= i < 5 }";
    "{ S[i] -> A[i + 5] : 0 <= i < 4 }";
    "{ S[i] -> A[2 * i] : 0 <= i < 4 }";
    "{ S[i] -> T[i + 1] : 0 <= i < 10 }";
    "{ T[j] -> U[2 * j] : j >= 3 }";
    "{ S[i] -> U[k] : k = 2 * i + 2 and 2 <= i < 10 }";
    "{ S[i] -> A[i + 10] }";
    "{ S[h, w] -> A[x, y] : x = h + 1 and y = w }";
    "{ S2[h, w, kh, kw] -> T[o0, o1] : 2 * o0 <= h and h < 2 * o0 + 2 and \
     2 * o1 <= w and w < 2 * o1 + 2 and 0 <= h <= 3 and 0 <= w <= 3 and \
     0 <= kh < 3 and 0 <= kw < 3 }";
    "{ S2[h, w, kh, kw] -> A[x, y] : x = h + kh and y = w + kw and \
     0 <= h <= 3 and 0 <= w <= 3 and 0 <= kh < 3 and 0 <= kw < 3 }";
    "{ T[o0, o1] -> A[x, y] : 0 <= o0 < 2 and 0 <= o1 < 2 and \
     2 * o0 <= x and x < 2 * o0 + 4 and 2 * o1 <= y and y < 2 * o1 + 4 and \
     0 <= x < 6 and 0 <= y < 6 }";
    "{ A[x, y] -> S0[h, w] : h = x and w = y and 0 <= x < 6 and 0 <= y < 6 }";
    "{ T[o] -> A[x] : 4 * o <= x and x <= 4 * o + 3 and 0 <= o < 4 }";
    "{ T[o] -> A[x] : 4 * o + 1 <= x and x <= 4 * o + 4 and 0 <= o < 4 }";
    "{ T[o] -> A[x] : 4 * o <= x and x <= 4 * o + 4 and 0 <= o < 4 }"
  ]

let iset_corpus =
  [ "{ A[i] : 0 <= i < 3; B[j] : 0 <= j < 2 }";
    "{ S[i] : 0 <= i < 3 or 10 <= i < 12 }";
    "{ S[i] : 0 <= i < 10 or 2 <= i < 5 }"
  ]

let test_roundtrip_bsets () =
  List.iter
    (fun lit ->
      let s = Parse.bset lit in
      let printed = Bset.to_string s in
      let s2 = Parse.bset printed in
      check bool (Printf.sprintf "semantics of %s" lit) true
        (Bset.is_subset s s2 && Bset.is_subset s2 s);
      check Alcotest.string (Printf.sprintf "fixpoint of %s" lit) printed
        (Bset.to_string s2))
    bset_corpus

let test_roundtrip_bmaps () =
  List.iter
    (fun lit ->
      let m = Parse.bmap lit in
      let printed = Bmap.to_string m in
      let m2 = Parse.bmap printed in
      check bool (Printf.sprintf "semantics of %s" lit) true
        (Bmap.is_subset m m2 && Bmap.is_subset m2 m);
      check Alcotest.string (Printf.sprintf "fixpoint of %s" lit) printed
        (Bmap.to_string m2))
    bmap_corpus

let test_roundtrip_isets () =
  List.iter
    (fun lit ->
      let u = Parse.set lit in
      let printed = Iset.to_string u in
      let u2 = Parse.set printed in
      check bool (Printf.sprintf "semantics of %s" lit) true
        (Iset.is_equal u u2);
      check Alcotest.string (Printf.sprintf "fixpoint of %s" lit) printed
        (Iset.to_string u2))
    iset_corpus

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let range_gen = QCheck.Gen.int_range (-3) 5

(* Random basic set over 2 dims inside a small box, with 0-2 extra
   general constraints (coefficients in -2..2). *)
let gen_bset =
  QCheck.Gen.(
    let* lo0 = range_gen and* lo1 = range_gen in
    let* len0 = int_range 0 5 and* len1 = int_range 0 5 in
    let* extra = int_range 0 2 in
    let* coefs =
      list_repeat extra
        (let* a = int_range (-2) 2
         and* b = int_range (-2) 2
         and* c = int_range (-4) 4 in
         return (a, b, c))
    in
    let space = Space.set_space "S" [ "i"; "j" ] in
    let box =
      [ Cstr.ge [| 1; 0 |] (-lo0);
        Cstr.ge [| -1; 0 |] (lo0 + len0);
        Cstr.ge [| 0; 1 |] (-lo1);
        Cstr.ge [| 0; -1 |] (lo1 + len1)
      ]
    in
    let gen_cs = List.map (fun (a, b, c) -> Cstr.ge [| a; b |] c) coefs in
    return (Bset.make space (box @ gen_cs)))

let arb_bset = QCheck.make ~print:Bset.to_string gen_bset

let enumerate_box f =
  for i = -5 to 12 do
    for j = -5 to 12 do
      f [| i; j |]
    done
  done

let brute_points s =
  let acc = ref [] in
  enumerate_box (fun pt -> if Bset.contains s pt then acc := Array.copy pt :: !acc);
  !acc

let prop_intersect =
  QCheck.Test.make ~name:"intersect agrees with membership" ~count:200
    (QCheck.pair arb_bset arb_bset) (fun (a, b) ->
      let i = Bset.intersect a b in
      let ok = ref true in
      enumerate_box (fun pt ->
          let expected = Bset.contains a pt && Bset.contains b pt in
          if Bset.contains i pt <> expected then ok := false);
      !ok)

let prop_subtract =
  QCheck.Test.make ~name:"subtract agrees with membership" ~count:200
    (QCheck.pair arb_bset arb_bset) (fun (a, b) ->
      let d = Iset.subtract (Iset.of_bset a) (Iset.of_bset b) in
      let ok = ref true in
      enumerate_box (fun pt ->
          let expected = Bset.contains a pt && not (Bset.contains b pt) in
          if Iset.contains d ~tuple:"S" pt <> expected then ok := false);
      !ok)

let prop_card =
  QCheck.Test.make ~name:"card equals brute force count" ~count:200 arb_bset
    (fun s -> Bset.card s = List.length (brute_points s))

let prop_empty =
  QCheck.Test.make ~name:"emptiness agrees with brute force" ~count:200 arb_bset
    (fun s -> Bset.is_empty s = (brute_points s = []))

let prop_sample =
  QCheck.Test.make ~name:"sample is a member iff non-empty" ~count:200 arb_bset
    (fun s ->
      match Bset.sample s with
      | Some pt -> Bset.contains s pt
      | None -> brute_points s = [])

let prop_subset =
  QCheck.Test.make ~name:"is_subset agrees with brute force" ~count:200
    (QCheck.pair arb_bset arb_bset) (fun (a, b) ->
      let brute =
        List.for_all (fun pt -> Bset.contains b pt) (brute_points a)
      in
      Bset.is_subset a b = brute)

let prop_project =
  QCheck.Test.make ~name:"projection agrees with brute force" ~count:200 arb_bset
    (fun s ->
      match Bset.project_dims s ~first:1 ~count:1 with
      | proj ->
          let ok = ref true in
          for i = -5 to 12 do
            let expected = ref false in
            for j = -5 to 12 do
              if Bset.contains s [| i; j |] then expected := true
            done;
            if Bset.contains proj [| i |] <> !expected then ok := false
          done;
          !ok
      | exception Fm.Inexact _ -> QCheck.assume_fail ())

let prop_box_hull =
  QCheck.Test.make ~name:"box hull contains all points" ~count:200 arb_bset
    (fun s ->
      QCheck.assume (not (Bset.is_empty s));
      let box = Bset.box_hull s in
      List.for_all
        (fun pt ->
          pt.(0) >= fst box.(0) && pt.(0) <= snd box.(0)
          && pt.(1) >= fst box.(1) && pt.(1) <= snd box.(1))
        (brute_points s))

(* Random separable functional map: S[i,j] -> A[a*i + c, e*j + f] over a
   random domain box (the shift/flip access class used throughout the
   benchmarks). Checks compose/reverse/apply against brute force. *)
let gen_fmap =
  QCheck.Gen.(
    let* a = oneofl [ -1; 1 ] and* c = int_range (-3) 3 in
    let* e = oneofl [ -1; 1 ] and* f = int_range (-3) 3 in
    let* s = gen_bset in
    let m =
      Bmap.from_affs ~in_tuple:"S" ~in_dims:[ "i"; "j" ] ~out_tuple:"A"
        [ ("x", Aff.add (Aff.dim ~coef:a 0) (Aff.const c));
          ("y", Aff.add (Aff.dim ~coef:e 1) (Aff.const f))
        ]
    in
    return ((a, 0, c, 0, e, f), Bmap.intersect_domain m s))

let arb_fmap =
  QCheck.make
    ~print:(fun (_, m) -> Bmap.to_string m)
    gen_fmap

let prop_apply_set =
  QCheck.Test.make ~name:"apply_set agrees with pointwise image" ~count:200
    arb_fmap (fun ((a, b, c, d, e, f), m) ->
      let dom = Bmap.domain m in
      let img = Bmap.apply_set dom m in
      let ok = ref true in
      enumerate_box (fun pt ->
          if Bset.contains dom pt then begin
            let x = (a * pt.(0)) + (b * pt.(1)) + c
            and y = (d * pt.(0)) + (e * pt.(1)) + f in
            if not (Bset.contains img [| x; y |]) then ok := false
          end);
      !ok)

let prop_reverse_involution =
  QCheck.Test.make ~name:"reverse is an involution" ~count:100 arb_fmap
    (fun (_, m) ->
      Bmap.is_subset (Bmap.reverse (Bmap.reverse m)) m
      && Bmap.is_subset m (Bmap.reverse (Bmap.reverse m)))


(* ------------------------------------------------------------------ *)
(* Simple hull and hull compression                                    *)
(* ------------------------------------------------------------------ *)

let gen_fmap_pair =
  QCheck.Gen.(
    let* (_, a) = gen_fmap in
    let* (_, b) = gen_fmap in
    return (a, b))

let arb_fmap_pair =
  QCheck.make
    ~print:(fun (a, b) -> Bmap.to_string a ^ " | " ^ Bmap.to_string b)
    gen_fmap_pair

let prop_simple_hull_sound =
  QCheck.Test.make ~name:"simple hull contains both operands" ~count:150
    arb_fmap_pair (fun (a, b) ->
      let h = Bmap.simple_hull a b in
      Bmap.is_subset a h && Bmap.is_subset b h)

let prop_hull_compress_sound =
  QCheck.Test.make ~name:"hull compression over-approximates the union"
    ~count:150 arb_fmap_pair (fun (a, b) ->
      let u = Imap.of_bmaps [ a; b ] in
      let c = Imap.hull_compress u in
      Imap.is_subset u c)

let test_hull_exact_for_taps () =
  (* contiguous stencil-tap footprints: the hull is the exact union *)
  let a = Parse.bmap "{ T[o] -> A[x] : 4 * o <= x and x <= 4 * o + 3 and 0 <= o < 4 }" in
  let b = Parse.bmap "{ T[o] -> A[x] : 4 * o + 1 <= x and x <= 4 * o + 4 and 0 <= o < 4 }" in
  let h = Bmap.simple_hull a b in
  let expected =
    Parse.bmap "{ T[o] -> A[x] : 4 * o <= x and x <= 4 * o + 4 and 0 <= o < 4 }"
  in
  check bool "tap hull exact" true
    (Bmap.is_subset h expected && Bmap.is_subset expected h)

(* ------------------------------------------------------------------ *)
(* Algebraic laws                                                      *)
(* ------------------------------------------------------------------ *)

let prop_compose_assoc =
  (* shift maps compose associatively *)
  QCheck.Test.make ~name:"apply_range is associative on shift maps" ~count:100
    QCheck.(triple (int_range (-3) 3) (int_range (-3) 3) (int_range (-3) 3))
    (fun (s1, s2, s3) ->
      let shift t1 t2 k =
        Bmap.from_affs ~in_tuple:t1 ~in_dims:[ "i" ] ~out_tuple:t2
          [ ("j", Aff.add_const (Aff.dim 0) k) ]
        |> fun m ->
        Bmap.intersect_domain m (Parse.bset ("{ " ^ t1 ^ "[i] : 0 <= i < 10 }"))
      in
      let f = shift "A" "B" s1 and g = shift "B" "C" s2 and h = shift "C" "D" s3 in
      let left = Bmap.apply_range (Bmap.apply_range f g) h in
      let right = Bmap.apply_range f (Bmap.apply_range g h) in
      Bmap.is_subset left right && Bmap.is_subset right left)

let prop_union_card =
  QCheck.Test.make ~name:"card of union = inclusion-exclusion" ~count:150
    (QCheck.pair arb_bset arb_bset) (fun (a, b) ->
      let u = Iset.union (Iset.of_bset a) (Iset.of_bset b) in
      let inter = Bset.intersect a b in
      Iset.card u = Bset.card a + Bset.card b - Bset.card inter)

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"to_string/parse round-trip preserves the set"
    ~count:150 arb_bset (fun s ->
      QCheck.assume (not (Bset.is_empty s));
      let s2 = Parse.bset (Bset.to_string s) in
      Bset.is_subset s s2 && Bset.is_subset s2 s)

let qcheck_extra =
  List.map QCheck_alcotest.to_alcotest
    [ prop_simple_hull_sound;
      prop_hull_compress_sound;
      prop_compose_assoc;
      prop_union_card;
      prop_print_parse_roundtrip
    ]

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_intersect;
      prop_subtract;
      prop_card;
      prop_empty;
      prop_sample;
      prop_subset;
      prop_project;
      prop_box_hull;
      prop_apply_set;
      prop_reverse_involution
    ]

let () =
  Harness.run "presburger"
    [ ( "vec",
        [ Alcotest.test_case "gcd and division" `Quick test_vec ] );
      ( "cstr",
        [ Alcotest.test_case "simplify" `Quick test_cstr_simplify ] );
      ( "bset",
        [ Alcotest.test_case "emptiness" `Quick test_set_empty;
          Alcotest.test_case "intersect/subtract/union" `Quick test_set_ops;
          Alcotest.test_case "tiling-pattern projection" `Quick test_project_tiling_pattern;
          Alcotest.test_case "box and card" `Quick test_box_and_card;
          Alcotest.test_case "bind_params" `Quick test_bind_params;
          Alcotest.test_case "sample" `Quick test_sample;
          Alcotest.test_case "subtract pieces" `Quick test_subtract_exact
        ] );
      ( "bmap",
        [ Alcotest.test_case "domain/range" `Quick test_map_domain_range;
          Alcotest.test_case "reverse" `Quick test_map_reverse;
          Alcotest.test_case "stride-2 range raises" `Quick test_stride_range_raises;
          Alcotest.test_case "compose" `Quick test_map_compose;
          Alcotest.test_case "apply set" `Quick test_map_apply_set;
          Alcotest.test_case "from_affs" `Quick test_from_affs;
          Alcotest.test_case "lex_lt" `Quick test_lex_lt
        ] );
      ( "paper-example",
        [ Alcotest.test_case "relation (4): tile footprints" `Quick test_paper_relation_4;
          Alcotest.test_case "relation (6): extension schedule" `Quick test_paper_relation_6
        ] );
      ( "unions",
        [ Alcotest.test_case "tuples" `Quick test_union_tuples;
          Alcotest.test_case "disjunction" `Quick test_union_or;
          Alcotest.test_case "coalesce" `Quick test_coalesce
        ] );
      ( "hull",
        [ Alcotest.test_case "tap hull exact" `Quick test_hull_exact_for_taps ] );
      ( "parse-roundtrip",
        [ Alcotest.test_case "bset corpus" `Quick test_roundtrip_bsets;
          Alcotest.test_case "bmap corpus" `Quick test_roundtrip_bmaps;
          Alcotest.test_case "iset corpus" `Quick test_roundtrip_isets
        ] );
      ("properties", qcheck_cases @ qcheck_extra)
    ]
