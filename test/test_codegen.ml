(* Code generation tests: expression simplification and evaluation,
   loop structure of generated code, guard pruning, and the semantic
   oracle across every workload and flow (reduced sizes). *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let test_simplify () =
  let e = Ast.Sum [ Ast.Int 2; Ast.Sum [ Ast.Int 3; Ast.Var "x" ]; Ast.Int (-5) ] in
  check bool "constants folded" true (Ast.simplify_expr e = Ast.Var "x");
  check bool "mul by one" true (Ast.simplify_expr (Ast.Mul (1, Ast.Var "x")) = Ast.Var "x");
  check bool "mul by zero" true (Ast.simplify_expr (Ast.Mul (0, Ast.Var "x")) = Ast.Int 0);
  check bool "div by one" true
    (Ast.simplify_expr (Ast.Floor_div (Ast.Var "x", 1)) = Ast.Var "x");
  check bool "nested min flattened" true
    (match
       Ast.simplify_expr
         (Ast.Min_of [ Ast.Min_of [ Ast.Var "a"; Ast.Var "b" ]; Ast.Var "c" ])
     with
    | Ast.Min_of l -> List.length l = 3
    | _ -> false)

let test_eval () =
  let params = [ ("N", 10) ] and env = [ ("i", 3) ] in
  let v e = Ast.eval_expr ~params ~env e in
  check int "sum" 13 (v (Ast.Sum [ Ast.Param "N"; Ast.Var "i" ]));
  check int "floor" 1 (v (Ast.Floor_div (Ast.Var "i", 2)));
  check int "ceil" 2 (v (Ast.Ceil_div (Ast.Var "i", 2)));
  check int "min" 3 (v (Ast.Min_of [ Ast.Param "N"; Ast.Var "i" ]));
  check int "max" 10 (v (Ast.Max_of [ Ast.Param "N"; Ast.Var "i" ]))

(* ------------------------------------------------------------------ *)
(* Structure of generated code                                         *)
(* ------------------------------------------------------------------ *)

let conv = Conv2d.build ()

let ours_ast =
  let c = Core.Pipeline.run ~target:Core.Pipeline.Cpu ~tile_size:2 conv in
  Gen.generate conv c.Core.Pipeline.tree

let rec count_ifs = function
  | Ast.If (_, b) -> 1 + count_ifs b
  | Ast.For { body; _ } -> count_ifs body
  | Ast.Block ts -> List.fold_left (fun a t -> a + count_ifs t) 0 ts
  | Ast.Kernel (_, t) | Ast.Point t -> count_ifs t
  | Ast.Call _ | Ast.Nop -> 0

let rec count_calls = function
  | Ast.If (_, b) -> count_calls b
  | Ast.For { body; _ } -> count_calls body
  | Ast.Block ts -> List.fold_left (fun a t -> a + count_calls t) 0 ts
  | Ast.Kernel (_, t) | Ast.Point t -> count_calls t
  | Ast.Call _ -> 1
  | Ast.Nop -> 0

let test_conv_structure () =
  (* fused code: a single kernel, 8 loops (2 tile + 2 producer point +
     2 consumer point + 2 reduction), all four statements called *)
  check int "one kernel" 1 (List.length (Ast.kernels ours_ast));
  check int "loops" 8 (Ast.count_loops ours_ast);
  check int "calls" 4 (count_calls ours_ast);
  check int "no redundant guards" 0 (count_ifs ours_ast)

let test_skipped_not_generated () =
  (* the skipped S0 subtree must not appear as a second S0 call site *)
  let s = Ast.to_string ours_ast in
  let occurrences needle =
    let n = String.length needle and h = String.length s in
    let rec go i acc =
      if i + n > h then acc
      else go (i + 1) (if String.sub s i n = needle then acc + 1 else acc)
    in
    go 0 0
  in
  check int "S0 called exactly once" 1 (occurrences "S0(")

let test_parallel_annotations () =
  (* the tile loops of the fused kernel stay parallel *)
  let rec outer_parallel = function
    | Ast.Kernel (_, t) -> outer_parallel t
    | Ast.Block (t :: _) -> outer_parallel t
    | Ast.For { coincident; _ } -> coincident
    | _ -> false
  in
  check bool "outer tile loop parallel" true (outer_parallel ours_ast)

(* ------------------------------------------------------------------ *)
(* Bounds correctness                                                  *)
(* ------------------------------------------------------------------ *)

let test_instance_coverage () =
  let p = Conv2d.build ~h:10 ~w:10 () in
  let c = Core.Pipeline.run ~target:Core.Pipeline.Cpu ~tile_size:4 p in
  let ast = Gen.generate p c.Core.Pipeline.tree in
  let mem = Interp.alloc p in
  let stats = Interp.run p ast mem in
  let card name = Prog.domain_card p (Prog.find_stmt p name) in
  let executed name =
    Option.value ~default:0 (Hashtbl.find_opt stats.Interp.per_stmt name)
  in
  (* consumers execute exactly once per instance *)
  List.iter
    (fun s -> check int (s ^ " exact") (card s) (executed s))
    [ "S1"; "S2"; "S3" ];
  (* the overlapped producer executes at least once per needed instance *)
  check bool "S0 covers its domain" true (executed "S0" >= card "S0")

(* ------------------------------------------------------------------ *)
(* The semantic oracle across all workloads and flows                  *)
(* ------------------------------------------------------------------ *)

let oracle_case (e : Registry.entry) =
  Alcotest.test_case e.Registry.reg_name `Slow (fun () ->
      let p = e.Registry.small () in
      let reference = Exp_util.naive p in
      List.iter
        (fun v ->
          check bool
            (Printf.sprintf "%s/%s" e.Registry.reg_name v.Exp_util.ver_name)
            true
            (Exp_util.check_against p reference v))
        [ Exp_util.heuristic ~tile:8 ~target:Core.Pipeline.Cpu Fusion.Minfuse p;
          Exp_util.heuristic ~tile:8 ~target:Core.Pipeline.Cpu Fusion.Smartfuse p;
          Exp_util.heuristic ~tile:8 ~target:Core.Pipeline.Cpu Fusion.Maxfuse p;
          Exp_util.heuristic ~tile:8 ~target:Core.Pipeline.Cpu Fusion.Hybridfuse p;
          Exp_util.ours ~tile:8 ~target:Core.Pipeline.Cpu p;
          Exp_util.polymage_version ~tile:8 ~target:Core.Pipeline.Cpu p;
          Exp_util.halide_version ~tile:8 ~target:Core.Pipeline.Cpu p
        ])

let test_odd_tile_sizes () =
  (* partial tiles: sizes that do not divide the extents *)
  List.iter
    (fun tile ->
      let p = Conv2d.build ~h:13 ~w:11 () in
      let reference = Exp_util.naive p in
      let v = Exp_util.ours ~tile ~target:Core.Pipeline.Cpu p in
      check bool
        (Printf.sprintf "tile %d" tile)
        true
        (Exp_util.check_against p reference v))
    [ 3; 5; 7 ]

let () =
  Harness.run "codegen"
    [ ( "expressions",
        [ Alcotest.test_case "simplify" `Quick test_simplify;
          Alcotest.test_case "eval" `Quick test_eval
        ] );
      ( "structure",
        [ Alcotest.test_case "conv fused kernel" `Quick test_conv_structure;
          Alcotest.test_case "skipped subtree" `Quick test_skipped_not_generated;
          Alcotest.test_case "parallel marks" `Quick test_parallel_annotations;
          Alcotest.test_case "instance coverage" `Quick test_instance_coverage;
          Alcotest.test_case "partial tiles" `Quick test_odd_tile_sizes
        ] );
      ("oracle", List.map oracle_case Registry.all)
    ]
