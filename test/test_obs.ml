(* Tests for the lib/obs observability layer: span nesting and timing
   monotonicity, counter accumulation/reset, disabled-mode no-op
   behaviour, and well-formedness of the Chrome trace / stats JSON. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser (validation + field access); no external deps.  *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              Buffer.add_char b '?';
              advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done;
              Buffer.add_char b '?'
          | _ -> fail "bad escape");
          go ()
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' ->
        pos := !pos + 4;
        Bool true
    | Some 'f' ->
        pos := !pos + 5;
        Bool false
    | Some 'n' ->
        pos := !pos + 4;
        Null
    | Some ('0' .. '9' | '-') -> parse_number ()
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Disabled-mode no-op behaviour                                       *)
(* ------------------------------------------------------------------ *)

let test_disabled_noop () =
  Obs.disable ();
  Obs.reset ();
  Obs.count "x";
  Obs.add "x" 41;
  Obs.observe "h" 7.0;
  let r = Obs.span "s" (fun () -> 42) in
  check int "span returns value when disabled" 42 r;
  check int "counter untouched when disabled" 0 (Obs.counter_value "x");
  check int "span not recorded when disabled" 0 (Obs.span_calls "s");
  check bool "histogram not recorded when disabled" true
    (Obs.histogram_summary "h" = None)

(* ------------------------------------------------------------------ *)
(* Counter accumulation and reset                                      *)
(* ------------------------------------------------------------------ *)

let test_counters () =
  Obs.reset ();
  Obs.enable ();
  Obs.count "a";
  Obs.count "a";
  Obs.add "a" 5;
  Obs.count "b";
  check int "accumulates" 7 (Obs.counter_value "a");
  check int "independent counters" 1 (Obs.counter_value "b");
  check int "absent counter reads zero" 0 (Obs.counter_value "absent");
  check bool "alist sorted and complete" true
    (Obs.counters_alist () = [ ("a", 7); ("b", 1) ]);
  Obs.reset ();
  check int "reset clears" 0 (Obs.counter_value "a");
  Obs.disable ()

let test_histograms () =
  Obs.reset ();
  Obs.enable ();
  Obs.observe "h" 1.0;
  Obs.observe "h" 3.0;
  Obs.observe_int "h" 8;
  (match Obs.histogram_summary "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some (count, sum, mn, mx) ->
      check int "count" 3 count;
      check bool "sum" true (abs_float (sum -. 12.0) < 1e-9);
      check bool "min" true (mn = 1.0);
      check bool "max" true (mx = 8.0));
  Obs.disable ()

(* ------------------------------------------------------------------ *)
(* Span nesting and timing monotonicity                                *)
(* ------------------------------------------------------------------ *)

let busy_work () =
  (* enough work for strictly positive wall time at us resolution *)
  let acc = ref 0.0 in
  for i = 1 to 20_000 do
    acc := !acc +. sqrt (float_of_int i)
  done;
  !acc

let test_span_nesting () =
  Obs.reset ();
  Obs.enable ();
  let r =
    Obs.span "outer" (fun () ->
        let a = Obs.span "inner1" (fun () -> busy_work ()) in
        let b = Obs.span "inner2" (fun () -> busy_work ()) in
        a +. b)
  in
  Obs.disable ();
  check bool "result threaded through" true (r > 0.0);
  check int "outer called once" 1 (Obs.span_calls "outer");
  check int "inner1 called once" 1 (Obs.span_calls "inner1");
  check int "inner2 called once" 1 (Obs.span_calls "inner2");
  let outer = Obs.span_total_s "outer" in
  let inner = Obs.span_total_s "inner1" +. Obs.span_total_s "inner2" in
  check bool "durations non-negative" true (outer >= 0.0 && inner >= 0.0);
  (* the outer interval contains both inner intervals; allow clock
     granularity slack *)
  check bool "outer >= sum of nested inners" true (outer >= inner -. 1e-5)

let test_span_exception () =
  Obs.reset ();
  Obs.enable ();
  (try Obs.span "boom" (fun () -> failwith "expected") with Failure _ -> ());
  Obs.disable ();
  check int "span closed on exception" 1 (Obs.span_calls "boom")

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let record_sample_data () =
  Obs.reset ();
  Obs.enable ();
  ignore
    (Obs.span "phase.a" (fun () ->
         ignore (Obs.span "phase.a.sub" (fun () -> busy_work ()));
         busy_work ()));
  ignore (Obs.span "phase.b" (fun () -> busy_work ()));
  Obs.count "some.counter";
  Obs.add "some.counter" 9;
  Obs.observe "some.hist" 5.0;
  Obs.disable ()

let test_chrome_trace_json () =
  record_sample_data ();
  let trace = Obs.chrome_trace () in
  let j =
    try parse_json trace
    with Bad_json msg -> Alcotest.failf "invalid trace JSON: %s" msg
  in
  match member "traceEvents" j with
  | Some (Arr events) ->
      let phases =
        List.filter_map
          (fun e -> match member "ph" e with Some (Str p) -> Some (p, e) | _ -> None)
          events
      in
      check int "all events carry a phase" (List.length events)
        (List.length phases);
      let xs = List.filter (fun (p, _) -> p = "X") phases in
      (* complete events only: no unbalanced B/E pairs possible *)
      check bool "no B/E events (X only)" true
        (List.for_all (fun (p, _) -> p = "X" || p = "M" || p = "C") phases);
      check int "one X event per completed span" 3 (List.length xs);
      List.iter
        (fun (_, e) ->
          let num k =
            match member k e with
            | Some (Num f) -> f
            | _ -> Alcotest.failf "X event missing numeric %s" k
          in
          check bool "ts >= 0" true (num "ts" >= 0.0);
          check bool "dur >= 0" true (num "dur" >= 0.0))
        xs;
      (* the nested span lies within its parent's interval *)
      let interval name =
        let ev =
          List.find
            (fun (_, e) -> member "name" e = Some (Str name))
            xs
        in
        match (member "ts" (snd ev), member "dur" (snd ev)) with
        | Some (Num ts), Some (Num dur) -> (ts, ts +. dur)
        | _ -> Alcotest.failf "span %s lacks ts/dur" name
      in
      let a0, a1 = interval "phase.a" in
      let s0, s1 = interval "phase.a.sub" in
      check bool "nested span contained in parent" true
        (s0 >= a0 -. 1.0 && s1 <= a1 +. 1.0)
  | _ -> Alcotest.fail "traceEvents array missing"

let test_stats_json () =
  record_sample_data ();
  let j =
    try parse_json (Obs.stats_json ())
    with Bad_json msg -> Alcotest.failf "invalid stats JSON: %s" msg
  in
  (match member "counters" j with
  | Some (Obj fields) ->
      check bool "counter exported" true
        (List.assoc_opt "some.counter" fields = Some (Num 10.0))
  | _ -> Alcotest.fail "counters object missing");
  (match member "spans" j with
  | Some (Obj fields) ->
      check bool "span exported" true (List.mem_assoc "phase.a" fields)
  | _ -> Alcotest.fail "spans object missing");
  match member "histograms" j with
  | Some (Obj fields) -> check bool "histogram exported" true (List.mem_assoc "some.hist" fields)
  | _ -> Alcotest.fail "histograms object missing"

let test_stats_table () =
  record_sample_data ();
  let table = Obs.stats_table () in
  let contains needle =
    let nh = String.length table and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub table i nn = needle || go (i + 1)) in
    go 0
  in
  check bool "table lists spans" true (contains "phase.a");
  check bool "table lists counters" true (contains "some.counter");
  check bool "table lists histograms" true (contains "some.hist")

let () =
  Harness.run "obs"
    [ ( "modes",
        [ Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop ] );
      ( "counters",
        [ Alcotest.test_case "accumulate and reset" `Quick test_counters;
          Alcotest.test_case "histograms" `Quick test_histograms
        ] );
      ( "spans",
        [ Alcotest.test_case "nesting and monotonicity" `Quick test_span_nesting;
          Alcotest.test_case "closed on exception" `Quick test_span_exception
        ] );
      ( "exporters",
        [ Alcotest.test_case "chrome trace well-formed" `Quick
            test_chrome_trace_json;
          Alcotest.test_case "stats json well-formed" `Quick test_stats_json;
          Alcotest.test_case "stats table" `Quick test_stats_table
        ] )
    ]
