(* Shared Alcotest entry point for every test binary: instrumentation is
   recorded for the whole run, and when the suite fails the lib/obs
   stats table (per-pass wall times, pass counters, histograms) is
   printed to stderr before exiting nonzero — so a CI `dune runtest`
   failure shows where the failing binary spent its time without a
   rerun.

   Individual tests remain free to reset/enable/disable Obs themselves
   (test_obs and test_core do); the harness only sets the initial state
   and reads whatever survives to the point of failure. *)

let run ?argv name suites =
  Obs.reset ();
  Obs.enable ();
  match Alcotest.run ?argv ~and_exit:false name suites with
  | () -> ()
  | exception e ->
      Printf.eprintf "\n== obs stats for failing test binary %S ==\n%s%!" name
        (Obs.stats_table ());
      (match e with Alcotest.Test_error -> exit 1 | e -> raise e)
