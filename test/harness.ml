(* Shared Alcotest entry point for every test binary: instrumentation is
   recorded for the whole run, and when the suite fails the lib/obs
   stats table (per-pass wall times, pass counters, histograms) is
   printed to stderr before exiting nonzero — so a CI `dune runtest`
   failure shows where the failing binary spent its time without a
   rerun. The Fm memo-cache stats (hits/misses/evictions per cache)
   are printed alongside, since a surprising hit-rate is often the
   first clue when a cached and an uncached run disagree.

   Individual tests remain free to reset/enable/disable Obs themselves
   (test_obs and test_core do); the harness only sets the initial state
   and reads whatever survives to the point of failure. *)

let run ?argv name suites =
  Obs.reset ();
  Obs.enable ();
  match Alcotest.run ?argv ~and_exit:false name suites with
  | () -> ()
  | exception e ->
      Printf.eprintf "\n== obs stats for failing test binary %S ==\n%s%!" name
        (Obs.stats_table ());
      Printf.eprintf "\n== fm memo-cache stats ==\n%s%!"
        (Presburger.Fm_cache.stats_table ());
      (match e with Alcotest.Test_error -> exit 1 | e -> raise e)

(* Seed threading shared by the randomized binaries (test_fuzz,
   test_props): `--seed N` on the command line wins over the FUZZ_SEED
   environment variable, and the flag is stripped from argv before
   Alcotest parses it. Returns (seed, argv-for-alcotest). The
   precedence rules live in the shared Cli_util (lib/obs), so the test
   binaries and the drivers can never drift apart. *)
let seed_from_argv ?default () = Cli_util.seed_from_argv ?default Sys.argv

(* `--shrink` (or FUZZ_SHRINK=1) turns on spec minimization after a
   fuzz mismatch: the failing seed's spec is greedily reduced with
   lib/verify's Shrink before the repro artifact is written. The flag
   is stripped before Alcotest parses argv; pass the argv returned by
   [seed_from_argv] so both flags compose. *)
let shrink_from_argv ?argv () = Cli_util.shrink_from_argv ?argv ()

(* One-line run banner shared by the randomized binaries, so a CI log
   shows the seed offset and shrink mode without digging into argv. *)
let fuzz_banner name ~seed ~shrink =
  if seed <> 0 || shrink then
    Printf.printf "%s: seed offset %d%s (reproduce with --seed %d%s)\n%!" name
      seed
      (if shrink then ", shrinking enabled" else "")
      seed
      (if shrink then " --shrink" else "")
