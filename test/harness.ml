(* Shared Alcotest entry point for every test binary: instrumentation is
   recorded for the whole run, and when the suite fails the lib/obs
   stats table (per-pass wall times, pass counters, histograms) is
   printed to stderr before exiting nonzero — so a CI `dune runtest`
   failure shows where the failing binary spent its time without a
   rerun. The Fm memo-cache stats (hits/misses/evictions per cache)
   are printed alongside, since a surprising hit-rate is often the
   first clue when a cached and an uncached run disagree.

   Individual tests remain free to reset/enable/disable Obs themselves
   (test_obs and test_core do); the harness only sets the initial state
   and reads whatever survives to the point of failure. *)

let run ?argv name suites =
  Obs.reset ();
  Obs.enable ();
  match Alcotest.run ?argv ~and_exit:false name suites with
  | () -> ()
  | exception e ->
      Printf.eprintf "\n== obs stats for failing test binary %S ==\n%s%!" name
        (Obs.stats_table ());
      Printf.eprintf "\n== fm memo-cache stats ==\n%s%!"
        (Presburger.Fm_cache.stats_table ());
      (match e with Alcotest.Test_error -> exit 1 | e -> raise e)

(* Seed threading shared by the randomized binaries (test_fuzz,
   test_props): `--seed N` on the command line wins over the FUZZ_SEED
   environment variable, and the flag is stripped from argv before
   Alcotest parses it. Returns (seed, argv-for-alcotest). *)
let seed_from_argv ?(default = 0) () =
  let env_seed =
    match Sys.getenv_opt "FUZZ_SEED" with
    | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default)
    | None -> default
  in
  let args = Array.to_list Sys.argv in
  let rec strip acc seed = function
    | [] -> (seed, List.rev acc)
    | "--seed" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n -> strip acc n rest
        | None -> strip acc seed rest)
    | a :: rest -> strip (a :: acc) seed rest
  in
  let seed, argv = strip [] env_seed args in
  (seed, Array.of_list argv)

(* `--shrink` (or FUZZ_SHRINK=1) turns on spec minimization after a
   fuzz mismatch: the failing seed's spec is greedily reduced with
   lib/verify's Shrink before the repro artifact is written. The flag
   is stripped before Alcotest parses argv; pass the argv returned by
   [seed_from_argv] so both flags compose. *)
let shrink_from_argv ?(argv = Sys.argv) () =
  let env =
    match Sys.getenv_opt "FUZZ_SHRINK" with
    | Some ("" | "0" | "false" | "no") | None -> false
    | Some _ -> true
  in
  let rec strip acc on = function
    | [] -> (on, List.rev acc)
    | "--shrink" :: rest -> strip acc true rest
    | a :: rest -> strip (a :: acc) on rest
  in
  let on, args = strip [] env (Array.to_list argv) in
  (on, Array.of_list args)

(* One-line run banner shared by the randomized binaries, so a CI log
   shows the seed offset and shrink mode without digging into argv. *)
let fuzz_banner name ~seed ~shrink =
  if seed <> 0 || shrink then
    Printf.printf "%s: seed offset %d%s (reproduce with --seed %d%s)\n%!" name
      seed
      (if shrink then ", shrinking enabled" else "")
      seed
      (if shrink then " --shrink" else "")
