(* Workload-definition tests: structural invariants of every benchmark
   (validation, stage counts, live-out sets, domain sizes, access
   bounds under the interpreter). *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let test_registry_valid () =
  List.iter
    (fun (e : Registry.entry) ->
      Prog.validate (e.Registry.small ());
      Prog.validate (e.Registry.build ()))
    Registry.all

let test_registry_find () =
  check bool "find harris" true
    ((Registry.find "harris").Registry.reg_name = "harris");
  match Registry.find "nope" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected failure for unknown workload"

let test_stage_counts () =
  let count p = List.length p.Prog.stmts in
  check int "unsharp mask stages" 4 (count (Polymage.unsharp_mask ()));
  check int "harris stages" 11 (count (Polymage.harris ()));
  (* bilateral: 5 stages, 6 statements (the grid reduction splits) *)
  check int "bilateral statements" 6 (count (Polymage.bilateral_grid ()));
  check int "camera stages" 32 (count (Polymage.camera_pipeline ()));
  check bool "local laplacian is deep" true
    (count (Polymage.local_laplacian ~levels:4 ~bins:8 ()) >= 80);
  check int "2mm statements" 4 (count (Polybench.mm2 ()));
  check int "gemver statements" 6 (count (Polybench.gemver ()));
  check int "covariance statements" 7 (count (Polybench.covariance ()));
  check int "equake statements" 6 (count (Equake.build ()))

let test_live_out () =
  let lo p = p.Prog.live_out in
  check bool "conv2d" true (lo (Conv2d.build ()) = [ "C" ]);
  check bool "camera RGB" true
    (lo (Polymage.camera_pipeline ()) = [ "OUT_R"; "OUT_G"; "OUT_B" ]);
  check bool "equake" true (lo (Equake.build ()) = [ "POS" ])

let test_intermediates () =
  let p = Conv2d.build () in
  check bool "A is intermediate" true (List.mem "A" (Prog.intermediate_arrays p));
  check bool "B is input-only" false (List.mem "B" (Prog.intermediate_arrays p))

let test_domain_cards () =
  let p = Conv2d.build ~h:10 ~w:8 ~kh:3 ~kw:3 () in
  check int "S0" 80 (Prog.domain_card p (Prog.find_stmt p "S0"));
  check int "S1" 48 (Prog.domain_card p (Prog.find_stmt p "S1"));
  check int "S2" (48 * 9) (Prog.domain_card p (Prog.find_stmt p "S2"))

(* every workload's naive execution stays in bounds (the interpreter
   checks every access) and touches every live-out array *)
let test_naive_in_bounds () =
  List.iter
    (fun (e : Registry.entry) ->
      let p = e.Registry.small () in
      let v = Exp_util.naive p in
      let mem = Cpu_model.run_to_memory p v.Exp_util.ast in
      List.iter
        (fun a ->
          let data = Interp.read_array mem a in
          let nonzero = Array.exists (fun x -> x <> 0.0) data in
          check bool (e.Registry.reg_name ^ ":" ^ a) true nonzero)
        p.Prog.live_out)
    Registry.all

let test_equake_sizes () =
  check int "test" 4096 (Equake.size_nodes Equake.Test);
  check int "train" 8192 (Equake.size_nodes Equake.Train);
  check int "ref" 16384 (Equake.size_nodes Equake.Ref)

let test_resnet_blocks () =
  let blocks = Resnet.default_blocks () in
  check int "sixteen blocks" 16 (List.length blocks);
  (* channel growth at stage boundaries *)
  let b0 = List.nth blocks 0 and b4 = List.nth blocks 4 in
  check bool "channels grow" true (b4.Resnet.c_in > b0.Resnet.c_in);
  (* chaining invariant: next input extent = previous output extent *)
  List.iteri
    (fun i b ->
      if i > 0 then begin
        let prev = List.nth blocks (i - 1) in
        check int "spatial chain" (prev.Resnet.height - 2) b.Resnet.height
      end)
    blocks;
  check bool "unit kinds" true
    (Resnet.unit_kind "conv_l0" = Npu_model.Cube
    && Resnet.unit_kind "bn_l0" = Npu_model.Vector)

let test_competitor_stage_tables () =
  (* the manual-schedule tables reference real stage names *)
  List.iter
    (fun name ->
      let p = (Registry.find name).Registry.small () in
      let any_fused =
        List.exists
          (fun (s : Prog.stmt) ->
            Competitors.halide_fused_stages p.Prog.prog_name s.Prog.stmt_name)
          p.Prog.stmts
      in
      check bool (name ^ " has fused stages") true any_fused)
    [ "unsharp_mask"; "harris"; "bilateral_grid"; "camera_pipeline";
      "local_laplacian"; "multiscale_interp"
    ]

let () =
  Harness.run "workloads"
    [ ( "registry",
        [ Alcotest.test_case "validate all" `Quick test_registry_valid;
          Alcotest.test_case "find" `Quick test_registry_find
        ] );
      ( "structure",
        [ Alcotest.test_case "stage counts" `Quick test_stage_counts;
          Alcotest.test_case "live-out" `Quick test_live_out;
          Alcotest.test_case "intermediates" `Quick test_intermediates;
          Alcotest.test_case "domain sizes" `Quick test_domain_cards;
          Alcotest.test_case "equake sizes" `Quick test_equake_sizes;
          Alcotest.test_case "resnet blocks" `Quick test_resnet_blocks;
          Alcotest.test_case "halide stage tables" `Quick test_competitor_stage_tables
        ] );
      ( "execution",
        [ Alcotest.test_case "naive in bounds" `Slow test_naive_in_bounds ] )
    ]
