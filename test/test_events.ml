(* Structured event log tests: ring-buffer overflow accounting, exact
   JSONL round-trips (int/float payload distinction preserved), merged
   Chrome-trace ordering, the end-to-end `memcomp explain` report on a
   registry workload (which must show at least one rejected fusion
   candidate with its reason), and the exact-sum law of the per-array
   traffic attribution. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let with_obs f =
  Obs.reset ();
  Events.reset ();
  Obs.enable ();
  Fun.protect ~finally:Obs.disable f

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)
(* ------------------------------------------------------------------ *)

let test_ring_overflow () =
  with_obs @@ fun () ->
  Events.set_capacity 4;
  Fun.protect ~finally:(fun () -> Events.set_capacity 65536) @@ fun () ->
  for i = 0 to 9 do
    Events.emit "tick" [ ("i", Events.I i) ]
  done;
  check int "emitted counts drops" 10 (Events.emitted ());
  check int "dropped = emitted - capacity" 6 (Events.dropped ());
  let kept = Events.recorded () in
  check int "ring keeps capacity events" 4 (List.length kept);
  (* the survivors are the newest four, oldest first *)
  List.iteri
    (fun k e ->
      check bool "payload of survivor" true
        (Events.find e "i" = Some (Events.I (6 + k)));
      check int "seq preserved" (6 + k) e.Events.seq)
    kept

let test_disabled_noop () =
  Obs.disable ();
  Events.reset ();
  Events.emit "x" [];
  check int "no event recorded while disabled" 0 (Events.emitted ());
  check int "nothing retained" 0 (List.length (Events.recorded ()))

(* ------------------------------------------------------------------ *)
(* JSONL round-trip                                                    *)
(* ------------------------------------------------------------------ *)

let test_jsonl_roundtrip () =
  with_obs @@ fun () ->
  Events.emit ~cat:"fusion" "fusion.reject"
    [ ("reason", Events.S "no_legal_band");
      ("band_dims", Events.I 2);
      ("ratio", Events.F 1.5);
      ("integral_float", Events.F 3.0);
      ("chosen", Events.B true);
      ("quoted", Events.S "a \"b\"\nc")
    ];
  Events.emit ~ts_s:0.25 ~dur_s:0.125 ~cat:"runtime" "runtime.tile"
    [ ("tile", Events.I 7) ];
  let text = Events.to_jsonl () in
  match Events.of_jsonl text with
  | Error msg -> Alcotest.failf "round-trip parse failed: %s" msg
  | Ok back ->
      let orig = Events.recorded () in
      check int "same count" (List.length orig) (List.length back);
      List.iter2
        (fun (a : Events.t) (b : Events.t) ->
          check bool "events identical after round-trip" true (a = b))
        orig back;
      (* the int/float distinction is the load-bearing part *)
      let e = List.hd back in
      check bool "int stays int" true
        (Events.find e "band_dims" = Some (Events.I 2));
      check bool "integral float stays float" true
        (Events.find e "integral_float" = Some (Events.F 3.0))

(* ------------------------------------------------------------------ *)
(* Merged Chrome trace                                                 *)
(* ------------------------------------------------------------------ *)

let test_chrome_merge_ordering () =
  with_obs @@ fun () ->
  ignore
    (Obs.span "compile" (fun () ->
         Events.emit ~cat:"fusion" "fusion.accept" [ ("prev", Events.S "S0") ];
         Events.emit ~cat:"fusion" "fusion.reject"
           [ ("reason", Events.S "no_legal_band") ];
         let acc = ref 0.0 in
         for i = 1 to 10_000 do
           acc := !acc +. sqrt (float_of_int i)
         done;
         !acc));
  Events.emit ~ts_s:1.0 ~dur_s:0.5 ~cat:"runtime" "runtime.tile"
    [ ("tile", Events.I 0) ];
  let trace = Events.chrome_trace () in
  match Snapshot.Json.parse trace with
  | Error msg -> Alcotest.failf "invalid merged trace JSON: %s" msg
  | Ok j -> (
      match Snapshot.Json.member "traceEvents" j with
      | Some (Snapshot.Json.Arr events) ->
          let ph e =
            match Snapshot.Json.member "ph" e with
            | Some (Snapshot.Json.Str p) -> p
            | _ -> Alcotest.fail "event without phase"
          in
          let num k e =
            match Snapshot.Json.member k e with
            | Some (Snapshot.Json.Num f) -> f
            | _ -> Alcotest.failf "event without numeric %s" k
          in
          let timed = List.filter (fun e -> ph e <> "M") events in
          (* the span, both instants, the timed tile event, the counters *)
          check bool "span X event present" true
            (List.exists
               (fun e ->
                 ph e = "X"
                 && Snapshot.Json.member "name" e
                    = Some (Snapshot.Json.Str "compile"))
               timed);
          check int "two instant decision events" 2
            (List.length (List.filter (fun e -> ph e = "i") timed));
          check bool "timed structured event is X" true
            (List.exists
               (fun e ->
                 ph e = "X"
                 && Snapshot.Json.member "name" e
                    = Some (Snapshot.Json.Str "runtime.tile"))
               timed);
          (* merged stream is sorted by timestamp *)
          let rec sorted = function
            | a :: (b :: _ as rest) -> num "ts" a <= num "ts" b && sorted rest
            | _ -> true
          in
          check bool "non-decreasing ts" true (sorted timed);
          (* decision instants fall inside the enclosing span interval *)
          let span =
            List.find
              (fun e ->
                ph e = "X"
                && Snapshot.Json.member "name" e
                   = Some (Snapshot.Json.Str "compile"))
              timed
          in
          let s0 = num "ts" span and s1 = num "ts" span +. num "dur" span in
          List.iter
            (fun e ->
              if ph e = "i" then
                check bool "instant inside its span" true
                  (num "ts" e >= s0 -. 1.0 && num "ts" e <= s1 +. 1.0))
            timed
      | _ -> Alcotest.fail "traceEvents array missing")

(* ------------------------------------------------------------------ *)
(* End-to-end: memcomp explain on conv2d                               *)
(* ------------------------------------------------------------------ *)

let collect_conv2d () =
  let e = Registry.find "conv2d" in
  let p = e.Registry.small () in
  Explain.collect ~tile:8 ~jobs:2 ~workload:"conv2d"
    ~make:(fun p -> Exp_util.ours ~tile:8 ~target:Core.Pipeline.Cpu p)
    p

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_explain_conv2d () =
  let ex = collect_conv2d () in
  Obs.disable ();
  let rejects =
    List.filter (fun e -> e.Events.name = "fusion.reject") ex.Explain.ex_events
  in
  check bool "at least one rejected fusion candidate" true (rejects <> []);
  List.iter
    (fun e ->
      match Events.find e "reason" with
      | Some (Events.S r) -> check bool "reject carries a reason" true (r <> "")
      | _ -> Alcotest.fail "fusion.reject without reason payload")
    rejects;
  check bool "tile-shape candidates recorded" true
    (List.exists
       (fun e -> e.Events.name = "tile_shape.candidate")
       ex.Explain.ex_events);
  check bool "runtime timeline events recorded" true
    (List.exists (fun e -> e.Events.name = "runtime.tile") ex.Explain.ex_events);
  let md = Explain.to_markdown ex in
  check bool "markdown names the failing predicate" true
    (contains md "no_legal_band");
  check bool "markdown has the attribution section" true
    (contains md "## Per-array traffic attribution");
  check bool "markdown has the reuse histogram" true
    (contains md "## Reuse-distance histogram");
  match Snapshot.Json.parse (Explain.to_json_string ex) with
  | Error msg -> Alcotest.failf "explain JSON invalid: %s" msg
  | Ok j ->
      check bool "json carries events" true
        (match Snapshot.Json.member "events" j with
        | Some (Snapshot.Json.Arr (_ :: _)) -> true
        | _ -> false);
      check bool "json carries attribution" true
        (match Snapshot.Json.member "attribution" j with
        | Some (Snapshot.Json.Arr (_ :: _)) -> true
        | _ -> false)

(* ------------------------------------------------------------------ *)
(* Attribution exact-sum law                                           *)
(* ------------------------------------------------------------------ *)

(* Per-array traffic is the primitive the totals are defined over: the
   per-array rows must sum to the cluster/program totals exactly, for
   both compilation flows. *)
let test_attribution_sums_exactly () =
  List.iter
    (fun name ->
      let e = Registry.find name in
      let p = e.Registry.small () in
      List.iter
        (fun (flow, v) ->
          let cs = Exp_util.clusters p v in
          let sum rows =
            List.fold_left
              (fun (r, w) (_, (t : Footprints.traffic)) ->
                (r + t.Footprints.read_bytes, w + t.Footprints.write_bytes))
              (0, 0) rows
          in
          (* program level *)
          let total = Footprints.program_traffic p cs in
          let r, w = sum (Footprints.program_traffic_by_array p cs) in
          check int
            (Printf.sprintf "%s/%s: read bytes sum exactly" name flow)
            total.Footprints.read_bytes r;
          check int
            (Printf.sprintf "%s/%s: write bytes sum exactly" name flow)
            total.Footprints.write_bytes w;
          (* cluster level, every prefix *)
          let rec walk previous = function
            | [] -> ()
            | c :: rest ->
                let t = Footprints.cluster_traffic p ~previous c in
                let cr, cw = sum (Footprints.cluster_traffic_by_array p ~previous c) in
                check int "cluster read bytes sum exactly" t.Footprints.read_bytes cr;
                check int "cluster write bytes sum exactly" t.Footprints.write_bytes cw;
                walk (previous @ [ c ]) rest
          in
          walk [] cs)
        [ ("ours", Exp_util.ours ~tile:8 ~target:Core.Pipeline.Cpu p);
          ( "smartfuse",
            Exp_util.heuristic ~tile:8 ~target:Core.Pipeline.Cpu Fusion.Smartfuse
              p )
        ])
    [ "conv2d"; "harris" ]

(* The measured side obeys the same law: per-array and per-statement
   DRAM attribution sums to the sampling cache's own total, and the
   access counts to the profiler's. *)
let test_memprof_sums_exactly () =
  let e = Registry.find "conv2d" in
  let p = e.Registry.small () in
  let v = Exp_util.ours ~tile:8 ~target:Core.Pipeline.Cpu p in
  let mem = Interp.alloc p in
  Cpu_model.deterministic_fill ~seed:42 p mem;
  let prof = Memprof.create mem in
  let (_ : Interp.stats) =
    Interp.run ~observer:(Memprof.observer prof) p v.Exp_util.ast mem
  in
  let sum_dram rows = List.fold_left (fun a (_, r) -> a + r.Memprof.dram) 0 rows in
  let sum_acc rows =
    List.fold_left (fun a (_, r) -> a + r.Memprof.accesses) 0 rows
  in
  let dram_total = Cache.dram_accesses (Memprof.cache prof) in
  check int "per-array DRAM sums to cache total" dram_total
    (sum_dram (Memprof.per_array prof));
  check int "per-stmt DRAM sums to cache total" dram_total
    (sum_dram (Memprof.per_stmt prof));
  check int "per-stmt accesses sum to trace length"
    (Memprof.total_accesses prof)
    (sum_acc (Memprof.per_stmt prof));
  (* histogram counts + cold accesses account for the whole trace *)
  let hist_total =
    List.fold_left (fun a (_, c) -> a + c) 0 (Memprof.reuse_histogram prof)
  in
  check int "histogram + cold covers every access"
    (Memprof.total_accesses prof)
    (hist_total + Memprof.cold_misses prof)

let () =
  Harness.run "events"
    [ ( "ring",
        [ Alcotest.test_case "overflow drops oldest" `Quick test_ring_overflow;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop
        ] );
      ( "jsonl",
        [ Alcotest.test_case "round-trip exact" `Quick test_jsonl_roundtrip ] );
      ( "chrome",
        [ Alcotest.test_case "merged trace ordering" `Quick
            test_chrome_merge_ordering
        ] );
      ( "explain",
        [ Alcotest.test_case "conv2d end-to-end" `Slow test_explain_conv2d ] );
      ( "attribution",
        [ Alcotest.test_case "polyhedral sums exactly" `Quick
            test_attribution_sums_exactly;
          Alcotest.test_case "measured sums exactly" `Quick
            test_memprof_sums_exactly
        ] )
    ]
