(* Scheduler tests: SCC computation and ordering, nest-level atoms,
   shift solving, permutable/coincident attributes, the four fusion
   heuristics, dynamic-guard fusion rules and the maxfuse search
   budget. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let groups_of p h ?(target = 1) ?fuse_reductions ?max_steps () =
  let deps = Deps.compute p in
  let r =
    Fusion.schedule ?fuse_reductions ?max_steps p ~deps
      ~target_parallelism:target h
  in
  (r, List.map (fun (g : Fusion.group) -> g.Fusion.stmts) r.Fusion.groups)

(* ------------------------------------------------------------------ *)
(* conv2d                                                              *)
(* ------------------------------------------------------------------ *)

let conv = Conv2d.build ()

let test_scc_order () =
  let deps = Deps.compute conv in
  let sccs = Deps.sccs conv deps in
  check bool "textual tie-breaking" true
    (sccs = [ [ "S0" ]; [ "S1" ]; [ "S2" ]; [ "S3" ] ])

let test_shifts_maxfuse () =
  let r, gs = groups_of conv Fusion.Maxfuse () in
  check int "single group" 1 (List.length gs);
  let g = List.hd r.Fusion.groups in
  (* legality: for every producer dependence the shifted distance is
     non-negative (checked indirectly: permutable or serialized) *)
  check bool "aligned or serialized" true
    (g.Fusion.permutable || g.Fusion.serialized)

let test_hybrid_equals_smart_groups () =
  let _, gs1 = groups_of conv Fusion.Smartfuse () in
  let _, gs2 = groups_of conv Fusion.Hybridfuse () in
  check bool "same grouping" true (gs1 = gs2)

let test_gpu_target_more_conservative () =
  (* requiring 2 parallel dimensions can only produce >= as many groups *)
  let _, cpu = groups_of conv Fusion.Smartfuse ~target:1 () in
  let _, gpu = groups_of conv Fusion.Smartfuse ~target:2 () in
  check bool "gpu grouping at least as fine" true
    (List.length gpu >= List.length cpu)

(* ------------------------------------------------------------------ *)
(* PolyBench shapes                                                    *)
(* ------------------------------------------------------------------ *)

let test_2mm_smartfuse_outer () =
  let p = Polybench.mm2 ~ni:16 ~nj:16 ~nk:16 ~nl:16 () in
  let r, gs = groups_of p Fusion.Smartfuse () in
  check int "one group" 1 (List.length gs);
  let g = List.hd r.Fusion.groups in
  (* the two multiplications fuse with the i loop parallel; the second
     matrix's j loop is aligned by a constant shift (specialized to the
     bound sizes), so only the outer dimension stays coincident *)
  check bool "fused band" true (g.Fusion.band_dims >= 1);
  check int "outer loop parallel" 1 (Fusion.n_parallel g);
  check bool "permutable" true g.Fusion.permutable

let test_covariance_maxfuse_serializes () =
  let p = Polybench.covariance ~n:16 ~m:8 () in
  let r, _ = groups_of p Fusion.Maxfuse () in
  (* the mean -> center -> cov chain cannot be aligned by constant
     shifts; maxfuse still fuses but loses all parallelism *)
  check bool "some group lost parallelism" true
    (List.exists (fun g -> Fusion.n_parallel g = 0) r.Fusion.groups)

let test_gemver_smartfuse_keeps_parallelism () =
  let p = Polybench.gemver ~n:24 () in
  let r, _ = groups_of p Fusion.Smartfuse () in
  List.iter
    (fun (g : Fusion.group) ->
      check bool "parallel outer" true (Fusion.n_parallel g >= 1))
    r.Fusion.groups

(* ------------------------------------------------------------------ *)
(* equake guard rules                                                  *)
(* ------------------------------------------------------------------ *)

let test_equake_smartfuse_components () =
  let p = Equake.build_permuted ~size:Equake.Test () in
  let _, gs = groups_of p Fusion.Smartfuse () in
  check bool "SpMV components fused, affine chain separate" true
    (gs = [ [ "rinit"; "rupd"; "gather" ]; [ "disp"; "vel"; "pos" ] ])

let test_equake_maxfuse_barrier () =
  let p = Equake.build_permuted ~size:Equake.Test () in
  let _, gs = groups_of p Fusion.Maxfuse () in
  (* the dynamic nest is a black box for the aggressive heuristic; the
     gather joins the affine chain *)
  check bool "gather fused with affine nests" true
    (List.mem [ "gather"; "disp"; "vel"; "pos" ] gs);
  check bool "dynamic nest kept to its own writers" true
    (List.mem [ "rinit"; "rupd" ] gs)

let test_equake_nest_atom () =
  let p = Equake.build ~size:Equake.Test () in
  let _, gs = groups_of p Fusion.Minfuse () in
  (* the original imperfect nest is never split by the start-up *)
  check bool "SpMV nest atomic" true
    (List.mem [ "rinit"; "rupd"; "gather" ] gs)

let test_fuse_reductions_flag () =
  let b = List.hd (Resnet.default_blocks ()) in
  let p = Resnet.layer b in
  let _, with_red = groups_of p Fusion.Smartfuse () in
  let _, without = groups_of p Fusion.Smartfuse ~fuse_reductions:false () in
  check bool "reduction fused by default" true
    (List.length with_red < List.length without)

(* ------------------------------------------------------------------ *)
(* maxfuse budget                                                      *)
(* ------------------------------------------------------------------ *)

let test_maxfuse_budget () =
  let p = Polymage.local_laplacian ~h:64 ~w:64 ~levels:2 ~bins:4 () in
  let r, _ = groups_of p Fusion.Maxfuse ~max_steps:2000 () in
  check bool "search budget exceeded on a deep pipeline" true
    r.Fusion.budget_exceeded;
  let r2, _ = groups_of p Fusion.Minfuse ~max_steps:2000 () in
  check bool "conservative heuristics unaffected" false r2.Fusion.budget_exceeded

let test_search_steps_ordering () =
  let p = Polymage.harris ~h:32 ~w:32 () in
  let rmin, _ = groups_of p Fusion.Minfuse () in
  let rmax, _ = groups_of p Fusion.Maxfuse () in
  check bool "maxfuse searches more" true
    (rmax.Fusion.search_steps > rmin.Fusion.search_steps)

let () =
  Harness.run "scheduler"
    [ ( "conv2d",
        [ Alcotest.test_case "SCC order" `Quick test_scc_order;
          Alcotest.test_case "maxfuse shifts" `Quick test_shifts_maxfuse;
          Alcotest.test_case "hybrid grouping" `Quick test_hybrid_equals_smart_groups;
          Alcotest.test_case "gpu target" `Quick test_gpu_target_more_conservative
        ] );
      ( "polybench",
        [ Alcotest.test_case "2mm outer fusion" `Quick test_2mm_smartfuse_outer;
          Alcotest.test_case "covariance maxfuse" `Quick test_covariance_maxfuse_serializes;
          Alcotest.test_case "gemver parallelism" `Quick test_gemver_smartfuse_keeps_parallelism
        ] );
      ( "equake",
        [ Alcotest.test_case "smartfuse components" `Quick test_equake_smartfuse_components;
          Alcotest.test_case "maxfuse barrier" `Quick test_equake_maxfuse_barrier;
          Alcotest.test_case "nest atom" `Quick test_equake_nest_atom;
          Alcotest.test_case "fuse_reductions flag" `Quick test_fuse_reductions_flag
        ] );
      ( "budget",
        [ Alcotest.test_case "maxfuse budget" `Quick test_maxfuse_budget;
          Alcotest.test_case "search steps" `Quick test_search_steps_ordering
        ] )
    ]
