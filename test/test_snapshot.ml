(* Tests for the perf-snapshot subsystem (lib/obs/snapshot.ml,
   lib/obs/bench_db.ml): JSON round-trips, capture from live obs state,
   diff classification at/under/over the thresholds, and the exit-code
   contract of the regression gate. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let sample_snapshot ?(workload = "conv2d") ?(flow = "ours")
    ?(compile_s = 0.123456789012345) ?(fm = 321) () =
  { Snapshot.workload;
    flow;
    compile_s;
    spans =
      [ { Snapshot.sp_name = "pipeline.compile"; sp_calls = 1; sp_total_s = 0.1 };
        { Snapshot.sp_name = "tile_shapes.construct";
          sp_calls = 3;
          sp_total_s = 0.025
        }
      ];
    counters = [ ("bmap.apply_range", 17); ("fm.eliminate", fm) ];
    cache_levels =
      [ { Snapshot.cl_name = "L1"; cl_hits = 1000; cl_misses = 20 };
        { Snapshot.cl_name = "L2"; cl_hits = 15; cl_misses = 5 }
      ];
    dram_accesses = 5;
    traffic =
      { Snapshot.tr_read_bytes = 4096;
        tr_write_bytes = 784;
        tr_staged_bytes = 256
      };
    ast = { Snapshot.ast_loops = 10; ast_kernels = 2; ast_nodes = 18 };
    speedup = None;
    attribution = None
  }

let sample_db ?label ?(snapshots = [ sample_snapshot () ]) () =
  Bench_db.make ~label:(Option.value ~default:"test" label) snapshots

(* ------------------------------------------------------------------ *)
(* JSON round-trips                                                    *)
(* ------------------------------------------------------------------ *)

let test_json_value_roundtrip () =
  let open Snapshot.Json in
  let j =
    Obj
      [ ("s", Str "a\"b\\c\nd");
        ("n", Num 0.30000000000000004);
        ("i", Num 42.0);
        ("l", Arr [ Bool true; Bool false; Null ]);
        ("o", Obj [ ("nested", Arr []) ])
      ]
  in
  match parse (to_string j) with
  | Ok j' -> check bool "value round-trip" true (j = j')
  | Error msg -> Alcotest.failf "reparse failed: %s" msg

let test_json_parse_errors () =
  let open Snapshot.Json in
  List.iter
    (fun s ->
      match parse s with
      | Ok _ -> Alcotest.failf "expected parse error for %S" s
      | Error _ -> ())
    [ "{"; "{\"a\":}"; "[1,]"; "tru"; "\"unterminated"; "{} trailing"; "" ]

let test_snapshot_roundtrip () =
  let s = sample_snapshot () in
  match Snapshot.of_string (Snapshot.to_string s) with
  | Ok s' -> check bool "snapshot round-trip is exact" true (s = s')
  | Error msg -> Alcotest.failf "of_string failed: %s" msg

let test_snapshot_missing_field () =
  match Snapshot.of_string "{\"workload\":\"x\"}" with
  | Ok _ -> Alcotest.fail "expected an error for a truncated snapshot"
  | Error msg -> check bool "error names the field" true (String.length msg > 0)

let test_db_roundtrip_via_file () =
  let db = sample_db ~snapshots:[ sample_snapshot (); sample_snapshot ~flow:"smartfuse" () ] () in
  let path = Filename.temp_file "bench_db_test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Bench_db.save path db;
      match Bench_db.load path with
      | Ok db' ->
          check bool "label" true (db'.Bench_db.label = "test");
          check bool "snapshots survive save/load" true
            (db'.Bench_db.snapshots = db.Bench_db.snapshots)
      | Error msg -> Alcotest.failf "load failed: %s" msg)

let test_db_schema_version_check () =
  let path = Filename.temp_file "bench_db_test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"schema_version\":99,\"label\":\"x\",\"snapshots\":[]}";
      close_out oc;
      match Bench_db.load path with
      | Ok _ -> Alcotest.fail "expected a schema-version error"
      | Error msg ->
          check bool "mentions the version" true
            (String.length msg > 0
            && String.exists (fun c -> c = '9') msg))

(* ------------------------------------------------------------------ *)
(* Capture from live obs state                                         *)
(* ------------------------------------------------------------------ *)

let test_capture_reads_obs () =
  Obs.reset ();
  Obs.enable ();
  ignore (Obs.span "pass.alpha" (fun () -> 1 + 1));
  Obs.count "ctr.x";
  Obs.add "ctr.x" 4;
  let s =
    Snapshot.capture ~workload:"w" ~flow:"f" ~compile_s:0.5 ~cache_levels:[]
      ~dram_accesses:0
      ~traffic:
        { Snapshot.tr_read_bytes = 0; tr_write_bytes = 0; tr_staged_bytes = 0 }
      ~ast:{ Snapshot.ast_loops = 0; ast_kernels = 0; ast_nodes = 1 }
      ()
  in
  Obs.disable ();
  check bool "span captured" true
    (List.exists
       (fun sp -> sp.Snapshot.sp_name = "pass.alpha" && sp.Snapshot.sp_calls = 1)
       s.Snapshot.spans);
  check bool "counter captured" true
    (List.assoc_opt "ctr.x" s.Snapshot.counters = Some 5)

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

let th = { Bench_db.max_time_ratio = 2.0; time_floor_s = 0.1 }

let test_classify_time () =
  let open Bench_db in
  (* both under the floor: jitter never gates *)
  check bool "sub-floor noise" true
    (classify_time th ~base:0.001 ~cand:0.09 = Unchanged);
  (* exactly at the ratio: not yet a regression (strict >) *)
  check bool "at threshold" true
    (classify_time th ~base:1.0 ~cand:2.0 = Unchanged);
  check bool "over threshold" true
    (classify_time th ~base:1.0 ~cand:2.01 = Regressed);
  check bool "under 1/ratio" true
    (classify_time th ~base:2.01 ~cand:1.0 = Improved);
  (* base below floor is clamped: cand must beat floor * ratio *)
  check bool "floor clamps the base" true
    (classify_time th ~base:0.0 ~cand:0.19 = Unchanged);
  check bool "floor-clamped regression" true
    (classify_time th ~base:0.0 ~cand:0.21 = Regressed)

let test_classify_counter () =
  let open Bench_db in
  check bool "equal" true (classify_counter ~base:7 ~cand:7 = Unchanged);
  check bool "increase regresses" true
    (classify_counter ~base:7 ~cand:8 = Regressed);
  check bool "decrease improves" true
    (classify_counter ~base:7 ~cand:6 = Improved)

(* ------------------------------------------------------------------ *)
(* Diff over databases                                                 *)
(* ------------------------------------------------------------------ *)

let test_diff_unchanged () =
  let base = sample_db () and cand = sample_db () in
  let deltas = Bench_db.diff ~thresholds:th ~base ~cand () in
  check bool "no deltas classified non-unchanged" true
    (List.for_all (fun d -> d.Bench_db.d_class = Bench_db.Unchanged) deltas);
  check int "gate passes" 0 (Bench_db.gate deltas)

let test_diff_inflated_time () =
  let base = sample_db () in
  let cand = sample_db ~snapshots:[ sample_snapshot ~compile_s:30.0 () ] () in
  let deltas = Bench_db.diff ~thresholds:th ~base ~cand () in
  let regressed = Bench_db.regressions deltas in
  check int "exactly the inflated metric regresses" 1 (List.length regressed);
  (match regressed with
  | [ d ] ->
      check bool "metric name" true (d.Bench_db.d_metric = "compile_s");
      check bool "kind" true (d.Bench_db.d_kind = Bench_db.Time)
  | _ -> Alcotest.fail "expected one regression");
  check int "gate fails (exit 1)" 1 (Bench_db.gate deltas)

let test_diff_counter_drift () =
  let base = sample_db () in
  let cand = sample_db ~snapshots:[ sample_snapshot ~fm:322 () ] () in
  let deltas = Bench_db.diff ~thresholds:th ~base ~cand () in
  let regressed = Bench_db.regressions deltas in
  check bool "counter drift regresses exactly" true
    (List.map (fun d -> d.Bench_db.d_metric) regressed
    = [ "counter.fm.eliminate" ]);
  check int "gate fails" 1 (Bench_db.gate deltas)

let test_diff_missing_pair () =
  let base =
    sample_db ~snapshots:[ sample_snapshot (); sample_snapshot ~flow:"smartfuse" () ] ()
  in
  let cand = sample_db ~snapshots:[ sample_snapshot () ] () in
  let deltas = Bench_db.diff ~thresholds:th ~base ~cand () in
  let regressed = Bench_db.regressions deltas in
  check bool "vanished workload x flow regresses" true
    (List.exists
       (fun d ->
         d.Bench_db.d_flow = "smartfuse"
         && d.Bench_db.d_metric = "snapshot.present")
       regressed);
  check int "gate fails" 1 (Bench_db.gate deltas)

let test_diff_added_is_not_regression () =
  let base = sample_db () in
  let cand =
    sample_db ~snapshots:[ sample_snapshot (); sample_snapshot ~workload:"new_wl" () ] ()
  in
  let deltas = Bench_db.diff ~thresholds:th ~base ~cand () in
  check bool "new pair reported as added" true
    (List.exists
       (fun d ->
         d.Bench_db.d_workload = "new_wl" && d.Bench_db.d_class = Bench_db.Added)
       deltas);
  check int "gate still passes" 0 (Bench_db.gate deltas)

(* Missing-metric direction: a counter present in the base but absent
   from the candidate is reported as removed AND gates (lost coverage
   must not silently pass); a metric only in the candidate is added and
   never gates; a noisy metric (speedup) may vanish freely. *)
let test_diff_removed_metric_gates () =
  let base_snap = sample_snapshot () in
  let cand_snap =
    { base_snap with
      Snapshot.counters = [ ("bmap.apply_range", 17) ] (* fm.eliminate gone *)
    }
  in
  let base = sample_db ~snapshots:[ base_snap ] () in
  let cand = sample_db ~snapshots:[ cand_snap ] () in
  let deltas = Bench_db.diff ~thresholds:th ~base ~cand () in
  let removed =
    List.filter (fun d -> d.Bench_db.d_class = Bench_db.Removed) deltas
  in
  check bool "direction is explicit: classified removed, not improved" true
    (List.map (fun d -> d.Bench_db.d_metric) removed
    = [ "counter.fm.eliminate" ]);
  check bool "the removed counter is a gating regression" true
    (List.exists
       (fun d -> d.Bench_db.d_metric = "counter.fm.eliminate")
       (Bench_db.regressions deltas));
  check int "gate fails on silently lost coverage" 1 (Bench_db.gate deltas)

let test_diff_removed_noisy_passes () =
  let base_snap = { (sample_snapshot ()) with Snapshot.speedup = Some 1.7 } in
  let cand_snap = sample_snapshot () in
  let base = sample_db ~snapshots:[ base_snap ] () in
  let cand = sample_db ~snapshots:[ cand_snap ] () in
  let deltas = Bench_db.diff ~thresholds:th ~base ~cand () in
  check bool "speedup removal reported" true
    (List.exists
       (fun d ->
         d.Bench_db.d_metric = "speedup"
         && d.Bench_db.d_class = Bench_db.Removed
         && d.Bench_db.d_kind = Bench_db.Noisy)
       deltas);
  check int "noisy removal never gates" 0 (Bench_db.gate deltas)

let test_diff_added_metric_passes () =
  let base_snap = sample_snapshot () in
  let cand_snap =
    { base_snap with
      Snapshot.counters = ("tuner.evaluated", 12) :: base_snap.Snapshot.counters
    }
  in
  let base = sample_db ~snapshots:[ base_snap ] () in
  let cand = sample_db ~snapshots:[ cand_snap ] () in
  let deltas = Bench_db.diff ~thresholds:th ~base ~cand () in
  check bool "new metric reported as added" true
    (List.exists
       (fun d ->
         d.Bench_db.d_metric = "counter.tuner.evaluated"
         && d.Bench_db.d_class = Bench_db.Added)
       deltas);
  check int "added metric never gates" 0 (Bench_db.gate deltas)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_summary_table () =
  let base = sample_db () in
  let cand = sample_db ~snapshots:[ sample_snapshot ~compile_s:30.0 () ] () in
  let deltas = Bench_db.diff ~thresholds:th ~base ~cand () in
  let table = Bench_db.summary_table deltas in
  check bool "names the metric" true (contains table "compile_s");
  check bool "marks the regression" true (contains table "REGRESSED");
  check bool "summary counts" true (contains table "1 regressed")

let test_deltas_json_wellformed () =
  let base = sample_db () in
  let cand = sample_db ~snapshots:[ sample_snapshot ~compile_s:30.0 () ] () in
  let deltas = Bench_db.diff ~thresholds:th ~base ~cand () in
  match Snapshot.Json.parse (Bench_db.deltas_json ~thresholds:th deltas) with
  | Error msg -> Alcotest.failf "deltas JSON invalid: %s" msg
  | Ok j -> (
      match Snapshot.Json.member "summary" j with
      | Some summary ->
          check bool "regressed count exported" true
            (Snapshot.Json.member "regressed" summary
            = Some (Snapshot.Json.Num 1.0))
      | None -> Alcotest.fail "summary object missing")

let () =
  Harness.run "snapshot"
    [ ( "json",
        [ Alcotest.test_case "value round-trip" `Quick test_json_value_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors
        ] );
      ( "snapshot",
        [ Alcotest.test_case "exact round-trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "missing field" `Quick test_snapshot_missing_field;
          Alcotest.test_case "capture reads obs" `Quick test_capture_reads_obs
        ] );
      ( "db",
        [ Alcotest.test_case "save/load round-trip" `Quick test_db_roundtrip_via_file;
          Alcotest.test_case "schema version check" `Quick
            test_db_schema_version_check
        ] );
      ( "classify",
        [ Alcotest.test_case "time thresholds" `Quick test_classify_time;
          Alcotest.test_case "counters exact" `Quick test_classify_counter
        ] );
      ( "diff",
        [ Alcotest.test_case "unchanged tree passes" `Quick test_diff_unchanged;
          Alcotest.test_case "inflated time gates" `Quick test_diff_inflated_time;
          Alcotest.test_case "counter drift gates" `Quick test_diff_counter_drift;
          Alcotest.test_case "missing pair gates" `Quick test_diff_missing_pair;
          Alcotest.test_case "added pair passes" `Quick
            test_diff_added_is_not_regression;
          Alcotest.test_case "removed metric gates" `Quick
            test_diff_removed_metric_gates;
          Alcotest.test_case "removed noisy metric passes" `Quick
            test_diff_removed_noisy_passes;
          Alcotest.test_case "added metric passes" `Quick
            test_diff_added_metric_passes
        ] );
      ( "render",
        [ Alcotest.test_case "summary table" `Quick test_summary_table;
          Alcotest.test_case "deltas json" `Quick test_deltas_json_wellformed
        ] )
    ]
