(* Differential fuzzing: random pipelines compiled through every flow
   must compute the same live-out values as the untransformed program.
   This exercises the full stack (dependences, heuristics, Algorithms
   1-3, code generation, interpreter) on shapes no hand-written
   benchmark covers: random DAGs with fan-out, mixed stencil radii,
   floor-division sampling and reductions.

   Seeds are offset by --seed N (stripped before Alcotest sees argv) or
   the FUZZ_SEED environment variable, so a failing run reproduces from
   the seed printed in its failure message alone:
     dune exec test/test_fuzz.exe -- --seed 1000

   On a mismatch the full flow name, pipeline summary and final
   schedule tree are printed, and a self-contained repro file is
   written to _build/fuzz_repro_<seed>.ml (uploaded as a CI artifact).
   With --shrink (or FUZZ_SHRINK=1) the failing spec is first greedily
   minimized — the repro then holds the smallest spec that still makes
   that flow disagree with the naive reference. *)

let check = Alcotest.check
let bool = Alcotest.bool

(* --seed N / FUZZ_SEED: base offset added to every generator seed;
   --shrink / FUZZ_SHRINK: minimize failing specs before writing the
   repro (shared parsing in Harness). *)
let base_seed, argv = Harness.seed_from_argv ()
let shrink_enabled, argv = Harness.shrink_from_argv ~argv ()

(* Flows are (name, builder) pairs so the shrinker can re-run just the
   mismatching flow on each candidate spec. *)
let flows =
  [ ("minfuse",
     fun p -> Exp_util.heuristic ~tile:5 ~target:Core.Pipeline.Cpu Fusion.Minfuse p);
    ("smartfuse",
     fun p -> Exp_util.heuristic ~tile:5 ~target:Core.Pipeline.Cpu Fusion.Smartfuse p);
    ("maxfuse",
     fun p -> Exp_util.heuristic ~tile:5 ~target:Core.Pipeline.Cpu Fusion.Maxfuse p);
    ("ours", fun p -> Exp_util.ours ~tile:5 ~target:Core.Pipeline.Cpu p);
    ("polymage", fun p -> Exp_util.polymage_version ~tile:5 ~target:Core.Pipeline.Cpu p)
  ]

(* Tests run from _build/default/test; walk up to the directory that
   holds _build so the artifact lands where CI expects it. *)
let repro_path seed =
  let file = Printf.sprintf "fuzz_repro_%d.ml" seed in
  let rec up d =
    let cand = Filename.concat d "_build" in
    if Sys.file_exists cand && Sys.is_directory cand then
      Some (Filename.concat cand file)
    else
      let parent = Filename.dirname d in
      if parent = d then None else up parent
  in
  match up (Sys.getcwd ()) with Some p -> p | None -> file

let report_mismatch cfg ~seed ~flow_name ~builder p v =
  Printf.printf "fuzz: MISMATCH seed %d, flow %s [%s]\n%!" seed flow_name
    (Random_pipeline.describe p);
  Printf.printf "fuzz: schedule tree of flow %s:\n%s\n%!" flow_name
    (Schedule_tree.to_string (Exp_util.tree_of p v));
  let spec = Random_pipeline.spec_of_seed cfg ~seed in
  let predicate sp =
    let q = Random_pipeline.build_spec sp in
    not (Exp_util.check_against q (Exp_util.naive q) (builder q))
  in
  let spec, note =
    if shrink_enabled then begin
      let o = Shrink.shrink spec ~predicate in
      Printf.printf
        "fuzz: shrunk seed %d from %d to %d stages (%d evals, %d rounds)\n%!"
        seed
        (List.length spec.Random_pipeline.sp_stages)
        (List.length o.Shrink.shrunk.Random_pipeline.sp_stages)
        o.Shrink.evals o.Shrink.rounds;
      ( o.Shrink.shrunk,
        Printf.sprintf "flow %s disagrees with naive (minimized)" flow_name )
    end
    else (spec, Printf.sprintf "flow %s disagrees with naive (unshrunk)" flow_name)
  in
  let path = repro_path seed in
  let oc = open_out path in
  output_string oc (Shrink.repro_ml ~seed ~note spec);
  close_out oc;
  Printf.printf "fuzz: repro written to %s\n%!" path

let run_seed cfg seed =
  let p = Random_pipeline.generate cfg ~seed in
  let reference = Exp_util.naive p in
  List.iter
    (fun (flow_name, builder) ->
      let v = builder p in
      let ok = Exp_util.check_against p reference v in
      if not ok then report_mismatch cfg ~seed ~flow_name ~builder p v;
      check bool
        (Printf.sprintf "seed %d, %s [%s]" seed v.Exp_util.ver_name
           (Random_pipeline.describe p))
        true ok)
    flows

let batch name cfg seeds =
  Alcotest.test_case name `Slow (fun () -> List.iter (run_seed cfg) seeds)

let seeds lo hi = List.init (hi - lo + 1) (fun i -> base_seed + lo + i)

let () =
  Harness.fuzz_banner "fuzz" ~seed:base_seed ~shrink:shrink_enabled;
  let open Random_pipeline in
  Harness.run ~argv "fuzz"
    [ ( "pipelines",
        [ batch "1d basic"
            { default_config with two_d = false; allow_sampling = false;
              allow_reductions = false }
            (seeds 1 15);
          batch "1d sampling"
            { default_config with two_d = false; allow_reductions = false }
            (seeds 16 30);
          batch "1d reductions"
            { default_config with two_d = false; allow_sampling = false }
            (seeds 31 40);
          batch "2d basic"
            { default_config with allow_sampling = false; allow_reductions = false }
            (seeds 41 50);
          batch "2d full" default_config (seeds 51 62);
          batch "2d deep"
            { default_config with max_stages = 10; max_extent = 16 }
            (seeds 63 70)
        ] )
    ]
