(* Differential fuzzing: random pipelines compiled through every flow
   must compute the same live-out values as the untransformed program.
   This exercises the full stack (dependences, heuristics, Algorithms
   1-3, code generation, interpreter) on shapes no hand-written
   benchmark covers: random DAGs with fan-out, mixed stencil radii,
   floor-division sampling and reductions.

   Seeds are offset by --seed N (stripped before Alcotest sees argv) or
   the FUZZ_SEED environment variable, so a failing run reproduces from
   the seed printed in its failure message alone:
     dune exec test/test_fuzz.exe -- --seed 1000 *)

let check = Alcotest.check
let bool = Alcotest.bool

(* --seed N / FUZZ_SEED: base offset added to every generator seed
   (shared parsing in Harness.seed_from_argv). *)
let base_seed, argv = Harness.seed_from_argv ()

let flows p =
  [ Exp_util.heuristic ~tile:5 ~target:Core.Pipeline.Cpu Fusion.Minfuse p;
    Exp_util.heuristic ~tile:5 ~target:Core.Pipeline.Cpu Fusion.Smartfuse p;
    Exp_util.heuristic ~tile:5 ~target:Core.Pipeline.Cpu Fusion.Maxfuse p;
    Exp_util.ours ~tile:5 ~target:Core.Pipeline.Cpu p;
    Exp_util.polymage_version ~tile:5 ~target:Core.Pipeline.Cpu p
  ]

let run_seed cfg seed =
  let p = Random_pipeline.generate cfg ~seed in
  let reference = Exp_util.naive p in
  List.iter
    (fun v ->
      check bool
        (Printf.sprintf "seed %d, %s [%s]" seed v.Exp_util.ver_name
           (Random_pipeline.describe p))
        true
        (Exp_util.check_against p reference v))
    (flows p)

let batch name cfg seeds =
  Alcotest.test_case name `Slow (fun () -> List.iter (run_seed cfg) seeds)

let seeds lo hi = List.init (hi - lo + 1) (fun i -> base_seed + lo + i)

let () =
  if base_seed <> 0 then
    Printf.printf "fuzz: seed offset %d (reproduce with --seed %d)\n%!"
      base_seed base_seed;
  let open Random_pipeline in
  Harness.run ~argv "fuzz"
    [ ( "pipelines",
        [ batch "1d basic"
            { default_config with two_d = false; allow_sampling = false;
              allow_reductions = false }
            (seeds 1 15);
          batch "1d sampling"
            { default_config with two_d = false; allow_reductions = false }
            (seeds 16 30);
          batch "1d reductions"
            { default_config with two_d = false; allow_sampling = false }
            (seeds 31 40);
          batch "2d basic"
            { default_config with allow_sampling = false; allow_reductions = false }
            (seeds 41 50);
          batch "2d full" default_config (seeds 51 62);
          batch "2d deep"
            { default_config with max_stages = 10; max_extent = 16 }
            (seeds 63 70)
        ] )
    ]
