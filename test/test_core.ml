(* End-to-end tests of the paper's algorithms on the Fig. 1 running
   example: dependences, start-up fusion, Algorithm 1 tile shapes
   (relations (2)-(6)), Algorithms 2-3 post-tiling fusion. *)

open Presburger

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let conv = Conv2d.build ()

let deps = Deps.compute conv

(* ------------------------------------------------------------------ *)
(* Dependence analysis                                                 *)
(* ------------------------------------------------------------------ *)

let test_deps_edges () =
  let edges = Deps.raw_edges deps in
  check bool "S0 -> S2 via A" true (List.mem ("S0", "S2") edges);
  check bool "S1 -> S2 via C" true (List.mem ("S1", "S2") edges);
  check bool "S2 -> S3 via C" true (List.mem ("S2", "S3") edges);
  check bool "no S3 -> S0" false (List.mem ("S3", "S0") edges)

let test_self_dep () =
  let self = Deps.between deps ~src:"S2" ~dst:"S2" in
  check bool "reduction has self-dependence" true (self <> []);
  (* distance on h and w is zero; the dependence is carried by kh/kw *)
  List.iter
    (fun (d : Deps.t) ->
      List.iter
        (fun piece ->
          let lo, hi = Deps.delta_bounds conv piece ~src_dim:0 ~dst_dim:0 in
          check bool "zero distance on h" true (lo = Some 0 && hi = Some 0))
        (Imap.pieces d.Deps.rel))
    self

let test_producer_distance () =
  (* S0 -> S2 on A: delta_h = h2 - h0 = -kh, in [-(KH-1), 0] *)
  let d = List.hd (Deps.between deps ~src:"S0" ~dst:"S2") in
  let piece = List.hd (Imap.pieces d.Deps.rel) in
  let lo, hi = Deps.delta_bounds conv piece ~src_dim:0 ~dst_dim:0 in
  check bool "lower bound -(KH-1)" true (lo = Some (-2));
  check bool "upper bound 0" true (hi = Some 0)

(* ------------------------------------------------------------------ *)
(* Fusion heuristics                                                   *)
(* ------------------------------------------------------------------ *)

let groups_of h target =
  let r = Fusion.schedule conv ~deps ~target_parallelism:target h in
  List.map (fun (g : Fusion.group) -> g.Fusion.stmts) r.Fusion.groups

let test_minfuse () =
  (* nest-level grouping keeps the imperfect nest {S1,S2} together *)
  check bool "minfuse groups" true
    (groups_of Fusion.Minfuse 1 = [ [ "S0" ]; [ "S1"; "S2" ]; [ "S3" ] ])

let test_smartfuse () =
  (* the conservative result of the paper: ({S0}, {S1,S2,S3}) *)
  let gs = groups_of Fusion.Smartfuse 1 in
  check bool "smartfuse groups" true
    (gs = [ [ "S0" ]; [ "S1"; "S2"; "S3" ] ])

let test_smartfuse_parallelism () =
  let r = Fusion.schedule conv ~deps ~target_parallelism:1 Fusion.Smartfuse in
  List.iter
    (fun (g : Fusion.group) ->
      check bool "group stays permutable" true g.Fusion.permutable;
      check bool "outer parallel" true (Fusion.n_parallel g >= 1))
    r.Fusion.groups

let test_maxfuse () =
  (* maxfuse groups everything, losing coincidence (Fig. 1(c)) *)
  let r = Fusion.schedule conv ~deps ~target_parallelism:1 Fusion.Maxfuse in
  check int "maxfuse: one group" 1 (List.length r.Fusion.groups);
  let g = List.hd r.Fusion.groups in
  check int "maxfuse loses parallelism" 0 (Fusion.n_parallel g);
  (* the shift aligning S0 with its consumers is KH-1 = 2 on consumers *)
  let shift_s0 = List.assoc "S0" g.Fusion.shifts in
  let shift_s2 = List.assoc "S2" g.Fusion.shifts in
  check int "relative shift h" 2 (shift_s2.(0) - shift_s0.(0))

(* ------------------------------------------------------------------ *)
(* Algorithm 1                                                         *)
(* ------------------------------------------------------------------ *)

let compiled = Core.Pipeline.run ~target:Core.Pipeline.Cpu ~tile_size:2 conv

let the_root () =
  match compiled.Core.Pipeline.plan.Core.Post_tiling.roots with
  | [ r ] -> r
  | rs -> Alcotest.failf "expected one root, got %d" (List.length rs)

let test_one_root_fused () =
  let r = the_root () in
  let t = r.Core.Post_tiling.tiling in
  check bool "live-out space is the reduction space" true
    (t.Core.Tile_shapes.untiled = []);
  check int "one fused intermediate (the quantization space)" 1
    (List.length t.Core.Tile_shapes.extensions);
  check bool "S0's space skipped" true
    (compiled.Core.Pipeline.plan.Core.Post_tiling.skipped <> [])

(* With H = W = 6, KH = KW = 3, T = 2: the extension schedule of tile
   (1,0) covers S0 instances 2<=h<=5, 0<=w<=3 (paper Fig. 4). *)
let test_extension_schedule () =
  let r = the_root () in
  let t = r.Core.Post_tiling.tiling in
  let ext = List.hd t.Core.Tile_shapes.extensions in
  let tile10 =
    Core.Tile_shapes.footprint_of_tile ~tile:[| 1; 0 |] conv
      ext.Core.Tile_shapes.ext_rel
  in
  let expected = Parse.bset "{ S0[h, w] : 2 <= h <= 5 and 0 <= w <= 3 }" in
  check bool "blue tile S0 instances" true
    (Iset.is_equal tile10 (Iset.of_bset expected));
  let tile11 =
    Core.Tile_shapes.footprint_of_tile ~tile:[| 1; 1 |] conv
      ext.Core.Tile_shapes.ext_rel
  in
  let expected11 = Parse.bset "{ S0[h, w] : 2 <= h <= 5 and 2 <= w <= 5 }" in
  check bool "red tile S0 instances" true
    (Iset.is_equal tile11 (Iset.of_bset expected11));
  (* overlapped tiling: consecutive tiles recompute the shared border *)
  check bool "tiles overlap" false
    (Iset.is_empty (Iset.intersect tile10 tile11))

let test_tile_relation_counts () =
  let r = the_root () in
  let t = r.Core.Post_tiling.tiling in
  (* reduction space is 4x4 with 2x2 tiles: 4 tiles *)
  let tiles =
    Imap.range (Imap.bind_params t.Core.Tile_shapes.tile_rel conv.Prog.params)
  in
  check int "number of tiles" 4 (Iset.card tiles)

(* ------------------------------------------------------------------ *)
(* Algorithm 2: tree structure                                         *)
(* ------------------------------------------------------------------ *)

let test_tree_shape () =
  let tree = compiled.Core.Pipeline.tree in
  let s = Schedule_tree.to_string tree in
  check bool "has extension node" true (contains_substring s "extension:")

let test_tree_marks () =
  let tree = compiled.Core.Pipeline.tree in
  let rec collect_marks acc = function
    | Schedule_tree.Mark (m, c) -> collect_marks (m :: acc) c
    | Schedule_tree.Domain (_, c)
    | Schedule_tree.Band (_, c)
    | Schedule_tree.Filter (_, c)
    | Schedule_tree.Extension (_, c) -> collect_marks acc c
    | Schedule_tree.Sequence cs -> List.fold_left collect_marks acc cs
    | Schedule_tree.Leaf -> acc
  in
  let marks = collect_marks [] tree in
  check bool "skipped mark present" true (List.mem "skipped" marks);
  check bool "kernel mark present" true
    (List.exists (String.starts_with ~prefix:"kernel:") marks)

(* The fused intermediate instances cover exactly what the consumer
   tiles need: the union over all tiles contains the upwards-exposed
   subset of S0's domain. *)
let test_no_redundant_and_complete () =
  let r = the_root () in
  let t = r.Core.Post_tiling.tiling in
  let ext = List.hd t.Core.Tile_shapes.extensions in
  (* union of the per-tile instance sets (2x2 tile grid) *)
  let all_tiles =
    Iset.union_all
      (List.concat_map
         (fun o0 ->
           List.map
             (fun o1 ->
               Core.Tile_shapes.footprint_of_tile ~tile:[| o0; o1 |] conv
                 ext.Core.Tile_shapes.ext_rel)
             [ 0; 1 ])
         [ 0; 1 ])
  in
  (* every S0 instance whose value S2 reads is covered *)
  let s0 = Prog.find_stmt conv "S0" in
  let s2 = Prog.find_stmt conv "S2" in
  let needed =
    let read_a =
      List.find (fun (a : Prog.access) -> a.Prog.array = "A") s2.Prog.reads
    in
    let elems =
      Imap.apply_set
        (Iset.of_bset (Bset.bind_params s2.Prog.domain conv.Prog.params))
        (Imap.of_bmap (Bmap.bind_params read_a.Prog.rel conv.Prog.params))
    in
    Imap.apply_set elems
      (Imap.of_bmap
         (Bmap.reverse (Bmap.bind_params s0.Prog.write.Prog.rel conv.Prog.params)))
  in
  check bool "fused instances cover all needed producer instances" true
    (Iset.is_subset needed all_tiles)


(* ------------------------------------------------------------------ *)
(* Observability: a conv2d compile reports its pass counters           *)
(* ------------------------------------------------------------------ *)

let test_obs_counters () =
  Obs.reset ();
  Obs.enable ();
  let c = Core.Pipeline.run ~target:Core.Pipeline.Cpu ~tile_size:2 (Conv2d.build ()) in
  Obs.disable ();
  check bool "nonzero deps counter" true (Obs.counter_value "deps.edges" > 0);
  check bool "nonzero FM elimination counter" true
    (Obs.counter_value "fm.eliminate" > 0);
  check bool "nonzero emptiness-test counter" true
    (Obs.counter_value "fm.is_empty" > 0);
  check bool "nonzero Bmap.apply counter" true
    (Obs.counter_value "bmap.apply_range" > 0);
  check int "search steps exposed through stats"
    c.Core.Pipeline.search_steps
    (Obs.counter_value "pipeline.search_steps");
  check bool "fusion decisions counted" true
    (Obs.counter_value "fusion.fuse_accept"
     + Obs.counter_value "fusion.fuse_reject"
    > 0);
  check bool "extension insertions counted" true
    (Obs.counter_value "tile_shapes.extensions" > 0);
  check bool "pipeline phases timed" true
    (Obs.span_calls "pipeline.compile" = 1
    && Obs.span_calls "deps.compute" >= 1
    && Obs.span_calls "fusion.schedule" >= 1
    && Obs.span_calls "tile_shapes.construct" >= 1);
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* Computation spaces                                                  *)
(* ------------------------------------------------------------------ *)

let conv_spaces =
  let r = Fusion.schedule conv ~deps ~target_parallelism:1 Fusion.Smartfuse in
  Core.Spaces.of_result conv r

let test_space_classification () =
  check int "two spaces" 2 (List.length conv_spaces);
  let quant = List.nth conv_spaces 0 and red = List.nth conv_spaces 1 in
  check bool "quantization space intermediate" false quant.Core.Spaces.live_out;
  check bool "reduction space live-out" true red.Core.Spaces.live_out;
  check bool "writes" true
    (quant.Core.Spaces.writes = [ "A" ] && red.Core.Spaces.writes = [ "C" ])

let test_space_graph () =
  let quant = List.nth conv_spaces 0 and red = List.nth conv_spaces 1 in
  check bool "consumer edge" true
    (List.exists
       (fun (c : Core.Spaces.t) -> c.Core.Spaces.id = red.Core.Spaces.id)
       (Core.Spaces.consumers conv_spaces quant));
  check bool "producer closure" true
    (List.exists
       (fun (c : Core.Spaces.t) -> c.Core.Spaces.id = quant.Core.Spaces.id)
       (Core.Spaces.producer_closure conv_spaces red))

(* ------------------------------------------------------------------ *)
(* Dependence kinds and directions                                     *)
(* ------------------------------------------------------------------ *)

let test_dep_kinds () =
  let kinds_between src dst =
    List.filter_map
      (fun (d : Deps.t) ->
        if d.Deps.src = src && d.Deps.dst = dst then Some d.Deps.kind else None)
      deps
  in
  (* S2 reads and writes C after S1 writes it: RAW and WAW *)
  let s1s2 = kinds_between "S1" "S2" in
  check bool "S1->S2 RAW" true (List.mem Deps.Raw s1s2);
  check bool "S1->S2 WAW" true (List.mem Deps.Waw s1s2);
  (* the reduction's read of C before S3 overwrites it: WAR *)
  check bool "S2->S3 WAR" true (List.mem Deps.War (kinds_between "S2" "S3"));
  (* dependences never point backwards in textual order *)
  List.iter
    (fun (d : Deps.t) ->
      check bool "forward only" true
        (Prog.stmt_index conv d.Deps.src <= Prog.stmt_index conv d.Deps.dst))
    deps

let test_self_dep_count () =
  (* the reduction self-RAW relates each instance to every later one on
     the same output element: with KH=KW=3 each C element has 9 updates,
     hence 9*8/2 ordered pairs per element *)
  let d =
    List.find
      (fun (d : Deps.t) -> d.Deps.src = "S2" && d.Deps.dst = "S2" && d.Deps.kind = Deps.Raw)
      deps
  in
  let pairs = Presburger.Imap.card (Presburger.Imap.bind_params d.Deps.rel conv.Prog.params) in
  let elems = 4 * 4 in
  check int "ordered update pairs" (elems * (9 * 8 / 2)) pairs

let () =
  Harness.run "core"
    [ ( "deps",
        [ Alcotest.test_case "producer edges" `Quick test_deps_edges;
          Alcotest.test_case "reduction self-dep" `Quick test_self_dep;
          Alcotest.test_case "producer distances" `Quick test_producer_distance;
          Alcotest.test_case "dependence kinds" `Quick test_dep_kinds;
          Alcotest.test_case "self-dep pair count" `Quick test_self_dep_count
        ] );
      ( "spaces",
        [ Alcotest.test_case "classification" `Quick test_space_classification;
          Alcotest.test_case "producer/consumer graph" `Quick test_space_graph
        ] );
      ( "fusion",
        [ Alcotest.test_case "minfuse" `Quick test_minfuse;
          Alcotest.test_case "smartfuse = paper conservative" `Quick test_smartfuse;
          Alcotest.test_case "smartfuse keeps parallelism" `Quick test_smartfuse_parallelism;
          Alcotest.test_case "maxfuse fuses all, loses parallelism" `Quick test_maxfuse
        ] );
      ( "algorithm-1",
        [ Alcotest.test_case "one root, S0 fused" `Quick test_one_root_fused;
          Alcotest.test_case "extension schedule = paper Fig 4" `Quick test_extension_schedule;
          Alcotest.test_case "tile counts" `Quick test_tile_relation_counts
        ] );
      ( "algorithm-2",
        [ Alcotest.test_case "tree has extension" `Quick test_tree_shape;
          Alcotest.test_case "skipped and kernel marks" `Quick test_tree_marks;
          Alcotest.test_case "coverage without gaps" `Quick test_no_redundant_and_complete
        ] );
      ( "observability",
        [ Alcotest.test_case "compile reports pass counters" `Quick
            test_obs_counters
        ] )
    ]
