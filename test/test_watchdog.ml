(* Tests for the SLO / anomaly rule engine (lib/obs/watchdog):
   deterministic fire/clear debouncing driven through tick's explicit
   clock and lookup, hold-on-absent-metric, anomaly warmup and the σ
   floor, and the default serve rule set staying quiet on healthy
   samples. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let slo ?(fire = 2) ?(clear = 2) ~name ~metric ~threshold cmp =
  { Watchdog.r_name = name;
    r_metric = metric;
    r_kind = Watchdog.Slo { threshold; cmp };
    r_fire_ticks = fire;
    r_clear_ticks = clear;
    r_help = "test rule"
  }

let lookup_const v _ = Some v

let fired = function Watchdog.Fired _ -> true | Watchdog.Cleared _ -> false

let test_fire_clear_debounce () =
  let w =
    Watchdog.create
      [ slo ~name:"err" ~metric:"error_rate" ~threshold:0.5 Watchdog.Above ]
  in
  (* one breaching tick is not enough (fire_ticks = 2) *)
  check int "no event on first breach" 0
    (List.length (Watchdog.tick w ~now:1. ~lookup:(lookup_const 0.9)));
  check int "still quiet" 0 (List.length (Watchdog.firing w));
  (* second consecutive breach fires *)
  let evs = Watchdog.tick w ~now:2. ~lookup:(lookup_const 0.9) in
  check int "fires on second breach" 1 (List.length evs);
  check bool "event is Fired" true (fired (List.hd evs));
  (match List.hd evs with
  | Watchdog.Fired a ->
      check string "alert names rule" "err" a.Watchdog.a_rule;
      check (Alcotest.float 1e-9) "alert carries value" 0.9 a.Watchdog.a_value;
      check (Alcotest.float 1e-9) "since is fire time" 2. a.Watchdog.a_since
  | Watchdog.Cleared _ -> Alcotest.fail "expected Fired");
  check int "firing list" 1 (List.length (Watchdog.firing w));
  (* a single healthy tick does not clear (clear_ticks = 2)... *)
  check int "no event on first healthy" 0
    (List.length (Watchdog.tick w ~now:3. ~lookup:(lookup_const 0.1)));
  check int "still firing" 1 (List.length (Watchdog.firing w));
  (* ...and a breach in between resets the healthy streak *)
  ignore (Watchdog.tick w ~now:4. ~lookup:(lookup_const 0.9));
  ignore (Watchdog.tick w ~now:5. ~lookup:(lookup_const 0.1));
  check int "breach reset the clear streak" 1 (List.length (Watchdog.firing w));
  let evs = Watchdog.tick w ~now:6. ~lookup:(lookup_const 0.1) in
  check int "clears on second consecutive healthy" 1 (List.length evs);
  check bool "event is Cleared" true (not (fired (List.hd evs)));
  check int "nothing firing" 0 (List.length (Watchdog.firing w))

let test_below_cmp () =
  let w =
    Watchdog.create
      [ slo ~fire:1 ~clear:1 ~name:"hit" ~metric:"hit_ratio" ~threshold:0.3
          Watchdog.Below
      ]
  in
  check int "healthy above threshold" 0
    (List.length (Watchdog.tick w ~now:1. ~lookup:(lookup_const 0.9)));
  check int "fires below threshold" 1
    (List.length (Watchdog.tick w ~now:2. ~lookup:(lookup_const 0.1)));
  (* strictly beyond: exactly at threshold is healthy *)
  check int "boundary clears" 1
    (List.length (Watchdog.tick w ~now:3. ~lookup:(lookup_const 0.3)))

let test_absent_metric_holds () =
  let w =
    Watchdog.create
      [ slo ~fire:2 ~clear:1 ~name:"err" ~metric:"m" ~threshold:1. Watchdog.Above ]
  in
  ignore (Watchdog.tick w ~now:1. ~lookup:(lookup_const 2.));
  (* absence between the two breaches neither fires, clears, nor
     resets the breach streak *)
  check int "absent tick is silent" 0
    (List.length (Watchdog.tick w ~now:2. ~lookup:(fun _ -> None)));
  check int "breach streak survives absence" 1
    (List.length (Watchdog.tick w ~now:3. ~lookup:(lookup_const 2.)));
  (* absence while firing holds the alert *)
  check int "firing held through absence" 1
    (List.length
       (let _ = Watchdog.tick w ~now:4. ~lookup:(fun _ -> None) in
        Watchdog.firing w))

let anomaly ~window ~sigma ~min_samples =
  { Watchdog.r_name = "anom";
    r_metric = "m";
    r_kind = Watchdog.Anomaly { window; sigma; min_samples };
    r_fire_ticks = 1;
    r_clear_ticks = 1;
    r_help = "test anomaly"
  }

let test_anomaly_warmup_and_fire () =
  let w = Watchdog.create [ anomaly ~window:50 ~sigma:4. ~min_samples:10 ] in
  (* noisy-but-stable history around 100; jitter well inside 4σ *)
  for i = 1 to 9 do
    let v = 100. +. (2. *. Float.sin (float_of_int i)) in
    (* a wild value during warmup must NOT fire: too little history *)
    let v = if i = 5 then 1e6 else v in
    check int
      (Printf.sprintf "warmup tick %d silent" i)
      0
      (List.length (Watchdog.tick w ~now:(float_of_int i) ~lookup:(lookup_const v)))
  done;
  (* past warmup, in-band samples stay quiet *)
  for i = 10 to 30 do
    let v = 100. +. (2. *. Float.sin (float_of_int i)) in
    check int
      (Printf.sprintf "in-band tick %d silent" i)
      0
      (List.length (Watchdog.tick w ~now:(float_of_int i) ~lookup:(lookup_const v)))
  done;
  (* the warmup spike polluted the window's mean/σ; after 30 in-band
     samples it has aged out of influence enough that a gross outlier
     fires *)
  let evs = Watchdog.tick w ~now:31. ~lookup:(lookup_const 1e9) in
  check int "outlier fires past warmup" 1 (List.length evs);
  check bool "anomaly event is Fired" true (fired (List.hd evs))

let test_anomaly_sigma_floor () =
  (* perfectly constant history: raw σ = 0, but the 1%-of-mean floor
     means a value within 1% of the mean must not fire *)
  let w = Watchdog.create [ anomaly ~window:50 ~sigma:3. ~min_samples:5 ] in
  for i = 1 to 20 do
    ignore (Watchdog.tick w ~now:(float_of_int i) ~lookup:(lookup_const 100.))
  done;
  check int "within floor band is quiet" 0
    (List.length (Watchdog.tick w ~now:21. ~lookup:(lookup_const 100.5)));
  check int "far outside floor band fires" 1
    (List.length (Watchdog.tick w ~now:22. ~lookup:(lookup_const 200.)))

let test_default_rules_quiet_when_healthy () =
  let w = Watchdog.create (Watchdog.default_rules ()) in
  (* samples resembling a healthy lightly-loaded daemon *)
  let lookup = function
    | "http.error_rate" -> Some 0.0
    | "http.latency_ms.compile.p99" -> Some 40.
    | "process.rss_bytes" -> Some 2e8
    | "fm.cache.hit_ratio" -> Some 0.97
    | "machine.dram_per_request" -> Some 1.2e6
    | "runtime.steal_rate" -> Some 0.05
    | _ -> None
  in
  for i = 1 to 200 do
    check int
      (Printf.sprintf "healthy tick %d" i)
      0
      (List.length (Watchdog.tick w ~now:(float_of_int i) ~lookup))
  done;
  check int "nothing firing after 200 healthy ticks" 0
    (List.length (Watchdog.firing w));
  (* sustained error-rate breach fires exactly the error-rate rule *)
  let bad = function
    | "http.error_rate" -> Some 0.9
    | m -> lookup m
  in
  ignore (Watchdog.tick w ~now:201. ~lookup:bad);
  let evs = Watchdog.tick w ~now:202. ~lookup:bad in
  check int "error-rate SLO fires" 1 (List.length evs);
  (match List.hd evs with
  | Watchdog.Fired a -> check string "rule name" "slo-error-rate" a.Watchdog.a_rule
  | Watchdog.Cleared _ -> Alcotest.fail "expected Fired");
  (* thresholds are overridable (the serve --slo-* flags rely on it) *)
  let tight = Watchdog.create (Watchdog.default_rules ~p99_ms:10. ()) in
  ignore (Watchdog.tick tight ~now:1. ~lookup);
  let evs = Watchdog.tick tight ~now:2. ~lookup in
  check int "tightened p99 threshold fires on healthy latency" 1
    (List.length evs)

let test_multiple_rules_independent () =
  let w =
    Watchdog.create
      [ slo ~fire:1 ~clear:1 ~name:"a" ~metric:"x" ~threshold:1. Watchdog.Above;
        slo ~fire:1 ~clear:1 ~name:"b" ~metric:"y" ~threshold:1. Watchdog.Above
      ]
  in
  let lookup = function "x" -> Some 5. | "y" -> Some 0. | _ -> None in
  let evs = Watchdog.tick w ~now:1. ~lookup in
  check int "only the breaching rule fires" 1 (List.length evs);
  let firing = Watchdog.firing w in
  check int "one firing" 1 (List.length firing);
  check string "the right one" "a" (List.hd firing).Watchdog.a_rule;
  (* both breach: the second joins without disturbing the first *)
  let both = function _ -> Some 5. in
  ignore (Watchdog.tick w ~now:2. ~lookup:both);
  check int "both firing" 2 (List.length (Watchdog.firing w))

let () =
  Harness.run "watchdog"
    [ ( "slo",
        [ Alcotest.test_case "fire/clear debounce" `Quick
            test_fire_clear_debounce;
          Alcotest.test_case "Below comparator" `Quick test_below_cmp;
          Alcotest.test_case "absent metric holds state" `Quick
            test_absent_metric_holds;
          Alcotest.test_case "independent rules" `Quick
            test_multiple_rules_independent
        ] );
      ( "anomaly",
        [ Alcotest.test_case "warmup then fire" `Quick
            test_anomaly_warmup_and_fire;
          Alcotest.test_case "sigma floor" `Quick test_anomaly_sigma_floor
        ] );
      ( "defaults",
        [ Alcotest.test_case "quiet when healthy" `Quick
            test_default_rules_quiet_when_healthy
        ] )
    ]
