(* Machine-model tests: cache simulator behaviour, interpreter checks,
   footprint/traffic accounting, and qualitative properties of the
   CPU/GPU/NPU models (fusion reduces traffic; lost parallelism costs;
   more threads never hurt). *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Cache simulator                                                     *)
(* ------------------------------------------------------------------ *)

let tiny_cache () =
  Cache.create
    ~levels:
      [ { Cache.name = "L1"; size_bytes = 256; line_bytes = 64; assoc = 2; latency = 1 } ]
    ~dram_latency:100

let test_cache_hit_miss () =
  let c = tiny_cache () in
  let lat1 = Cache.access c ~addr:0 ~write:false in
  let lat2 = Cache.access c ~addr:4 ~write:false in
  check int "cold miss" 101 lat1;
  check int "same line hits" 1 lat2;
  match Cache.stats c with
  | [ l1 ] ->
      check int "one miss" 1 l1.Cache.misses;
      check int "one hit" 1 l1.Cache.hits
  | _ -> Alcotest.fail "one level expected"

let test_cache_lru () =
  let c = tiny_cache () in
  (* 2 sets x 2 ways of 64B lines; addresses mapping to set 0:
     line numbers 0, 2, 4 -> tags 0, 1, 2 *)
  ignore (Cache.access c ~addr:0 ~write:false);
  ignore (Cache.access c ~addr:128 ~write:false);
  ignore (Cache.access c ~addr:0 ~write:false);
  (* set 0 holds lines {0,128}, 0 most recent: inserting 256 evicts 128 *)
  ignore (Cache.access c ~addr:256 ~write:false);
  let lat0 = Cache.access c ~addr:0 ~write:false in
  check int "LRU kept the recent line" 1 lat0;
  let lat128 = Cache.access c ~addr:128 ~write:false in
  check int "LRU evicted the old line" 101 lat128

let test_cache_reset () =
  let c = tiny_cache () in
  ignore (Cache.access c ~addr:0 ~write:false);
  Cache.reset c;
  check int "dram reset" 0 (Cache.dram_accesses c);
  let lat = Cache.access c ~addr:0 ~write:false in
  check int "cold again" 101 lat

(* A fixed pseudo-random address trace (LCG, seeded): the same accesses
   replayed against every hierarchy under test. *)
let fixed_trace =
  let state = ref 12345 in
  List.init 4000 (fun _ ->
      state := (!state * 1103515245 + 12347) land 0x3FFFFFFF;
      !state mod 16384)

let replay cache =
  List.iter (fun addr -> ignore (Cache.access cache ~addr ~write:false)) fixed_trace

let test_cache_conservation () =
  (* Every access either hits or misses at each level, and an inclusive
     hierarchy forwards exactly its misses to the level below. *)
  let c = Cache.xeon_like () in
  replay c;
  let expected = ref (List.length fixed_trace) in
  List.iter
    (fun (l : Cache.level_stats) ->
      check int
        (Printf.sprintf "%s hits+misses = accesses reaching it" l.Cache.level)
        !expected (l.Cache.hits + l.Cache.misses);
      expected := l.Cache.misses)
    (Cache.stats c);
  check int "DRAM sees the last level's misses" !expected (Cache.dram_accesses c)

let test_cache_miss_monotone () =
  (* Shrinking an LRU cache by dropping ways (fixed set count) can only
     lose residency — the stack/inclusion property — so misses on the
     same trace are monotone nondecreasing as capacity shrinks. *)
  let misses_at assoc =
    let c =
      Cache.create
        ~levels:
          [ { Cache.name = "L1"; size_bytes = 64 * 16 * assoc; line_bytes = 64;
              assoc; latency = 1 }
          ]
        ~dram_latency:100
    in
    replay c;
    match Cache.stats c with
    | [ l1 ] -> l1.Cache.misses
    | _ -> Alcotest.fail "one level expected"
  in
  let ms = List.map misses_at [ 8; 4; 2; 1 ] in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  check bool
    (Printf.sprintf "misses nondecreasing as cache shrinks (%s)"
       (String.concat " <= " (List.map string_of_int ms)))
    true (monotone ms);
  check bool "smallest cache strictly worse than largest" true
    (List.nth ms 3 > List.nth ms 0)

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)
(* ------------------------------------------------------------------ *)

let test_interp_bounds () =
  let p = Conv2d.build ~h:4 ~w:4 () in
  (* hand-build an AST calling S0 out of bounds *)
  let bad = Ast.Call { stmt = "S0"; args = [ Ast.Int 7; Ast.Int 0 ] } in
  let mem = Interp.alloc p in
  (match Interp.run p bad mem with
  | exception Invalid_argument msg ->
      check bool "names the array" true
        (String.length msg > 0 && String.sub msg 0 6 = "Interp")
  | _ -> Alcotest.fail "expected out-of-bounds failure");
  (* unknown statement *)
  match Interp.run p (Ast.Call { stmt = "nope"; args = [] }) mem with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected unknown-statement failure"

let test_interp_guard () =
  let p = Equake.build ~size:Equake.Test () in
  let deps = Deps.compute p in
  let ast =
    Gen.generate p
      (Build_tree.initial_tree p
         (Fusion.schedule p ~deps ~target_parallelism:1 Fusion.Minfuse))
  in
  let mem = Interp.alloc p in
  let stats = Interp.run p ast mem in
  let n = Equake.size_nodes Equake.Test in
  let executed =
    Option.value ~default:0 (Hashtbl.find_opt stats.Interp.per_stmt "rupd")
  in
  (* the dynamic guard executes strictly fewer instances than the affine
     superset, and at least the minimum row length *)
  check bool "guard prunes" true (executed < n * 16);
  check bool "guard keeps short rows" true (executed >= n * 4)

let test_fill_deterministic () =
  let p = Conv2d.build ~h:8 ~w:8 () in
  let m1 = Cpu_model.run_to_memory p (Ast.Nop) in
  let m2 = Cpu_model.run_to_memory p (Ast.Nop) in
  check bool "same seed, same data" true (Interp.arrays_equal m1 m2 "A")

(* ------------------------------------------------------------------ *)
(* Footprints and traffic                                              *)
(* ------------------------------------------------------------------ *)

let conv16 = Conv2d.build ~h:16 ~w:16 ()

let compiled16 = Core.Pipeline.run ~target:Core.Pipeline.Cpu ~tile_size:4 conv16

let test_cluster_staging () =
  match Footprints.clusters_of_compiled compiled16 with
  | [ c ] ->
      check bool "A staged on-chip" true (List.mem "A" c.Footprints.staged_arrays);
      (* 16 tiles of 4x4 over the 14x14 output *)
      check int "tiles" 16 c.Footprints.tile_count
  | cs -> Alcotest.failf "expected one cluster, got %d" (List.length cs)

let test_traffic_rules () =
  match Footprints.clusters_of_compiled compiled16 with
  | [ c ] ->
      let t = Footprints.cluster_traffic conv16 ~previous:[] c in
      (* writes: only the live-out C (14x14 elements, 4 bytes) *)
      check int "write bytes" (14 * 14 * 4) t.Footprints.write_bytes;
      (* reads: A is staged (free); B and the original A image are read
         per tile; C's accumulator reads are intra-cluster (free) *)
      check bool "read bytes positive" true (t.Footprints.read_bytes > 0)
  | _ -> Alcotest.fail "expected one cluster"

let test_fusion_reduces_traffic () =
  let unfused =
    Core.Pipeline.run_heuristic ~tile_size:4 ~target:Core.Pipeline.Cpu
      Fusion.Minfuse conv16
  in
  let cs_unfused = Footprints.clusters_of_baseline ~tile_size:4 unfused in
  let total cs =
    let t = Footprints.program_traffic conv16 cs in
    t.Footprints.read_bytes + t.Footprints.write_bytes
  in
  check bool "fusion reduces off-chip traffic" true
    (total (Footprints.clusters_of_compiled compiled16) < total cs_unfused)

(* ------------------------------------------------------------------ *)
(* CPU model properties                                                *)
(* ------------------------------------------------------------------ *)

let test_threads_monotone () =
  let p = Polymage.unsharp_mask ~h:64 ~w:64 () in
  let v = Exp_util.ours ~tile:8 ~target:Core.Pipeline.Cpu p in
  let t1 = Exp_util.cpu_time_ms p v ~threads:1 in
  let t4 = Exp_util.cpu_time_ms p v ~threads:4 in
  let t32 = Exp_util.cpu_time_ms p v ~threads:32 in
  check bool "4 threads faster than 1" true (t4 < t1);
  check bool "32 threads no slower than 4" true (t32 <= t4)

let test_vectorize_override () =
  let p = Polybench.gemver ~n:64 () in
  let v = Exp_util.naive p in
  let seq = Exp_util.cpu_time_ms ~vectorize:false p v ~threads:1 in
  let vec = Exp_util.cpu_time_ms ~vectorize:true p v ~threads:1 in
  check bool "vectorization helps" true (vec < seq)

(* ------------------------------------------------------------------ *)
(* GPU / NPU model properties                                          *)
(* ------------------------------------------------------------------ *)

let test_gpu_fusion_wins () =
  let p = Polymage.unsharp_mask ~h:128 ~w:128 () in
  let minf = Exp_util.heuristic ~target:Core.Pipeline.Gpu Fusion.Minfuse p in
  let our = Exp_util.ours ~tile:16 ~target:Core.Pipeline.Gpu p in
  check bool "fused kernel beats minfuse" true
    (Exp_util.gpu_time_ms p our < Exp_util.gpu_time_ms p minf)

let test_npu_conv_bn_fusion () =
  let b = List.hd (Resnet.default_blocks ()) in
  let p = Resnet.layer b in
  let time v =
    Npu_model.time_ms Npu_model.ascend910 p ~kind_of:Resnet.unit_kind
      (Exp_util.clusters p v)
  in
  let smart =
    Exp_util.heuristic ~fuse_reductions:false ~target:Core.Pipeline.Npu
      Fusion.Smartfuse p
  in
  let our = Exp_util.ours ~fuse_reductions:false ~tile:8 ~target:Core.Pipeline.Npu p in
  let s = time smart and o = time our in
  check bool "fusing conv+bn avoids the DDR round trip" true (o < s);
  check bool "speedup within a plausible band" true (s /. o > 1.05 && s /. o < 4.0)

let () =
  Harness.run "machine"
    [ ( "cache",
        [ Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "LRU" `Quick test_cache_lru;
          Alcotest.test_case "reset" `Quick test_cache_reset;
          Alcotest.test_case "conservation" `Quick test_cache_conservation;
          Alcotest.test_case "miss monotonicity" `Quick test_cache_miss_monotone
        ] );
      ( "interp",
        [ Alcotest.test_case "bounds checking" `Quick test_interp_bounds;
          Alcotest.test_case "dynamic guard" `Quick test_interp_guard;
          Alcotest.test_case "deterministic fill" `Quick test_fill_deterministic
        ] );
      ( "footprints",
        [ Alcotest.test_case "staging" `Quick test_cluster_staging;
          Alcotest.test_case "traffic rules" `Quick test_traffic_rules;
          Alcotest.test_case "fusion reduces traffic" `Quick test_fusion_reduces_traffic
        ] );
      ( "cpu-model",
        [ Alcotest.test_case "thread monotonicity" `Quick test_threads_monotone;
          Alcotest.test_case "vectorize override" `Quick test_vectorize_override
        ] );
      ( "gpu-npu",
        [ Alcotest.test_case "gpu fusion wins" `Slow test_gpu_fusion_wins;
          Alcotest.test_case "npu conv+bn" `Slow test_npu_conv_bn_fusion
        ] )
    ]
