(* Tests for the live-telemetry surface: OpenMetrics exposition
   (golden text + monotonicity), leveled structured logging with
   request correlation, domain-safety of the Obs registries, atomic
   reset, and the serve daemon end to end over real sockets. *)

let reset_obs () =
  Obs.reset ();
  Obs.enable ()

let teardown () =
  Obs.disable ();
  Obs.reset ();
  Log.reset_sink ();
  Log.set_level Log.Warn

(* ------------------------------------------------------------------ *)
(* OpenMetrics                                                         *)
(* ------------------------------------------------------------------ *)

let test_openmetrics_golden () =
  reset_obs ();
  Obs.add "alpha.one" 3;
  Obs.add "beta" 7;
  Obs.observe "lat" 0.5;
  Obs.observe "lat" 3.0;
  Obs.observe "lat" 100.0;
  let extra =
    [ { Openmetrics.fam_name = "memcomp_up";
        fam_help = "always 1";
        fam_type = Openmetrics.Gauge;
        fam_samples = [ ([], 1.0) ]
      }
    ]
  in
  let expected =
    String.concat "\n"
      [ "# HELP memcomp_up always 1";
        "# TYPE memcomp_up gauge";
        "memcomp_up 1";
        "# HELP memcomp_alpha_one Obs counter alpha.one";
        "# TYPE memcomp_alpha_one counter";
        "memcomp_alpha_one_total 3";
        "# HELP memcomp_beta Obs counter beta";
        "# TYPE memcomp_beta counter";
        "memcomp_beta_total 7";
        "# HELP memcomp_lat Obs histogram lat";
        "# TYPE memcomp_lat histogram";
        "memcomp_lat_bucket{le=\"1\"} 1";
        "memcomp_lat_bucket{le=\"2\"} 1";
        "memcomp_lat_bucket{le=\"4\"} 2";
        "memcomp_lat_bucket{le=\"8\"} 2";
        "memcomp_lat_bucket{le=\"16\"} 2";
        "memcomp_lat_bucket{le=\"32\"} 2";
        "memcomp_lat_bucket{le=\"64\"} 2";
        "memcomp_lat_bucket{le=\"128\"} 3";
        "memcomp_lat_bucket{le=\"+Inf\"} 3";
        "memcomp_lat_count 3";
        "memcomp_lat_sum 103.5";
        "# EOF";
        ""
      ]
  in
  Alcotest.(check string) "exact exposition" expected (Openmetrics.render ~extra ());
  teardown ()

let test_openmetrics_monotonic () =
  reset_obs ();
  Obs.add "mono" 2;
  let c1 = Openmetrics.parse_counters (Openmetrics.render ()) in
  Obs.count "mono";
  Obs.count "fresh";
  let c2 = Openmetrics.parse_counters (Openmetrics.render ()) in
  Alcotest.(check (option int)) "first scrape" (Some 2) (List.assoc_opt "memcomp_mono" c1);
  Alcotest.(check (option int)) "second scrape" (Some 3) (List.assoc_opt "memcomp_mono" c2);
  Alcotest.(check (option int)) "new counter appears" (Some 1) (List.assoc_opt "memcomp_fresh" c2);
  List.iter
    (fun (name, v1) ->
      match List.assoc_opt name c2 with
      | Some v2 -> Alcotest.(check bool) ("monotone " ^ name) true (v2 >= v1)
      | None -> Alcotest.fail ("counter vanished: " ^ name))
    c1;
  teardown ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_openmetrics_spans_and_sanitize () =
  reset_obs ();
  Obs.span "phase.a-b" (fun () -> ());
  let text = Openmetrics.render () in
  Alcotest.(check bool) "span calls family" true
    (contains text "memcomp_span_calls_total{span=\"phase.a-b\"} 1");
  Alcotest.(check bool) "span seconds family" true
    (contains text "memcomp_span_seconds_total{span=\"phase.a-b\"}");
  Alcotest.(check string) "sanitize" "a_b_c:d" (Openmetrics.sanitize "a.b-c:d");
  teardown ()

(* ------------------------------------------------------------------ *)
(* Logging                                                             *)
(* ------------------------------------------------------------------ *)

let with_captured_logs f =
  let lines = ref [] in
  Log.set_sink (fun l -> lines := l :: !lines);
  Fun.protect ~finally:Log.reset_sink (fun () -> f ());
  List.rev !lines

let test_log_level_filtering () =
  Log.set_level Log.Warn;
  let lines =
    with_captured_logs (fun () ->
        Log.debug "d" [];
        Log.info "i" [];
        Log.warn "w" [];
        Log.error "e" [])
  in
  Alcotest.(check int) "only warn+error pass" 2 (List.length lines);
  Alcotest.(check bool) "warn line" true (contains (List.nth lines 0) "\"level\":\"warn\"");
  Alcotest.(check bool) "error line" true (contains (List.nth lines 1) "\"level\":\"error\"");
  Log.set_level Log.Debug;
  let lines =
    with_captured_logs (fun () ->
        Log.debug "d" [ ("k", Json_util.I 5) ];
        Log.info "i" [])
  in
  Alcotest.(check int) "debug threshold passes all" 2 (List.length lines);
  Alcotest.(check bool) "typed args render" true
    (contains (List.nth lines 0) "\"args\":{\"k\":5}");
  Alcotest.(check bool) "would_log debug" true (Log.would_log Log.Debug);
  Log.set_level Log.Error;
  Alcotest.(check bool) "would_log below threshold" false (Log.would_log Log.Warn);
  (match Log.level_of_string "WARNING" with
  | Ok Log.Warn -> ()
  | _ -> Alcotest.fail "level_of_string WARNING");
  (match Log.level_of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus level accepted");
  teardown ()

let test_log_request_correlation () =
  Log.set_level Log.Info;
  let lines =
    with_captured_logs (fun () ->
        Log.info "outside" [];
        Obs.with_request_id "r00042" (fun () -> Log.info "inside" []);
        Log.info "after" [])
  in
  Alcotest.(check int) "three lines" 3 (List.length lines);
  Alcotest.(check bool) "no req outside" false (contains (List.nth lines 0) "\"req\"");
  Alcotest.(check bool) "req inside" true (contains (List.nth lines 1) "\"req\":\"r00042\"");
  Alcotest.(check bool) "restored after" false (contains (List.nth lines 2) "\"req\"");
  teardown ()

(* ------------------------------------------------------------------ *)
(* Domain safety + atomic reset                                        *)
(* ------------------------------------------------------------------ *)

let test_concurrent_counters_exact () =
  reset_obs ();
  let domains = 4 and per_domain = 10_000 in
  let work () =
    for _ = 1 to per_domain do
      Obs.count "stress.counter";
      Obs.observe "stress.hist" 3.0
    done
  in
  let doms = List.init domains (fun _ -> Domain.spawn work) in
  List.iter Domain.join doms;
  Alcotest.(check int) "counter exact" (domains * per_domain)
    (Obs.counter_value "stress.counter");
  (match Obs.histogram_summary "stress.hist" with
  | Some (count, sum, _, _) ->
      Alcotest.(check int) "histogram count exact" (domains * per_domain) count;
      Alcotest.(check (float 0.001)) "histogram sum exact"
        (3.0 *. float_of_int (domains * per_domain))
        sum
  | None -> Alcotest.fail "histogram missing");
  teardown ()

let test_reset_clears_everything () =
  reset_obs ();
  Obs.count "c";
  Obs.observe "h" 5.0;
  Obs.span "s" (fun () -> ());
  Events.emit "ev" [ ("k", Events.I 1) ];
  Alcotest.(check bool) "events recorded" true (Events.recorded () <> []);
  Obs.reset ();
  Alcotest.(check (list (pair string int))) "counters cleared" [] (Obs.counters_alist ());
  Alcotest.(check int) "histograms cleared" 0 (List.length (Obs.histograms_alist ()));
  Alcotest.(check int) "span stats cleared" 0 (List.length (Obs.spans_alist ()));
  Alcotest.(check int) "trace events cleared" 0 (List.length (Obs.trace_events ()));
  Alcotest.(check int) "event ring cleared" 0 (List.length (Events.recorded ()));
  Alcotest.(check int) "emission counter cleared" 0 (Events.emitted ());
  teardown ()

let test_span_req_tagging () =
  reset_obs ();
  Obs.with_request_id "rA" (fun () ->
      Obs.span "tagged" (fun () -> Events.emit "decision" []));
  Obs.span "untagged" (fun () -> ());
  Alcotest.(check int) "all spans" 2 (List.length (Obs.trace_events ()));
  (match Obs.trace_events ~req:"rA" () with
  | [ ("tagged", _, _, _) ] -> ()
  | l -> Alcotest.fail (Printf.sprintf "req filter returned %d spans" (List.length l)));
  Alcotest.(check int) "event filter" 1 (List.length (Events.recorded ~req:"rA" ()));
  Alcotest.(check int) "event filter misses" 0 (List.length (Events.recorded ~req:"rB" ()));
  let trace = Events.chrome_trace ~req:"rA" () in
  Alcotest.(check bool) "per-req trace has tagged span" true (contains trace "tagged");
  Alcotest.(check bool) "per-req trace omits untagged span" false
    (contains trace "\"name\":\"untagged\"");
  teardown ()

(* ------------------------------------------------------------------ *)
(* Daemon end to end (real sockets, ephemeral port)                    *)
(* ------------------------------------------------------------------ *)

let get_ok port path =
  match Httpd.request ~port path with
  | Ok (status, body) ->
      Alcotest.(check int) (path ^ " status") 200 status;
      body
  | Error msg -> Alcotest.fail (path ^ ": " ^ msg)

let test_daemon_end_to_end () =
  let srv = Server.create ~port:0 ~workers:2 () in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      teardown ())
    (fun () ->
      let port = Server.port srv in
      ignore (get_ok port "/healthz");
      let build = get_ok port "/buildinfo" in
      Alcotest.(check bool) "buildinfo names memcomp" true (contains build "memcomp");
      (* compile *)
      let body = {|{"workload":"conv2d","flow":"ours","tile":32,"small":true}|} in
      let resp =
        match Httpd.request ~meth:"POST" ~body ~port "/compile" with
        | Ok (200, b) -> b
        | Ok (st, b) -> Alcotest.fail (Printf.sprintf "compile status %d: %s" st b)
        | Error msg -> Alcotest.fail ("compile: " ^ msg)
      in
      let j =
        match Json_util.Json.parse resp with
        | Ok j -> j
        | Error m -> Alcotest.fail ("compile response: " ^ m)
      in
      let req_id =
        match Json_util.Json.member "req" j with
        | Some (Json_util.Json.Str id) -> id
        | _ -> Alcotest.fail "no req id in compile response"
      in
      (match Json_util.Json.member "code" j with
      | Some (Json_util.Json.Str code) ->
          Alcotest.(check bool) "code generated" true (String.length code > 0)
      | _ -> Alcotest.fail "no code in compile response");
      (* the request id resolves to an archived trace *)
      let trace = get_ok port ("/trace/" ^ req_id) in
      Alcotest.(check bool) "trace is json" true (String.length trace > 0 && trace.[0] = '{');
      Alcotest.(check bool) "trace mentions the compile span" true
        (contains trace "http.compile");
      (* unknown trace id 404s *)
      (match Httpd.request ~port "/trace/r999999" with
      | Ok (404, _) -> ()
      | Ok (st, _) -> Alcotest.fail (Printf.sprintf "missing trace: status %d" st)
      | Error msg -> Alcotest.fail msg);
      (* scraped counters exactly equal the internal Obs registries,
         modulo the scrape's own two arrival increments. Warm-up scrape
         first so http.metrics exists in the internal registry. *)
      ignore (get_ok port "/metrics");
      let internal = Obs.counters_alist () in
      let scraped =
        Openmetrics.parse_counters (get_ok port "/metrics") |> List.sort compare
      in
      let expected =
        List.map
          (fun (name, v) ->
            let bump =
              match name with "http.requests" | "http.metrics" -> 1 | _ -> 0
            in
            ("memcomp_" ^ Openmetrics.sanitize name, v + bump))
          internal
        |> List.sort compare
      in
      Alcotest.(check (list (pair string int))) "scrape == internal counters"
        expected scraped;
      (* malformed requests are 400s, unknown routes 404 *)
      (match Httpd.request ~meth:"POST" ~body:"{nope" ~port "/compile" with
      | Ok (400, _) -> ()
      | Ok (st, _) -> Alcotest.fail (Printf.sprintf "bad json: status %d" st)
      | Error msg -> Alcotest.fail msg);
      (match Httpd.request ~meth:"POST" ~body:{|{"workload":"zzz"}|} ~port "/compile" with
      | Ok (400, _) -> ()
      | Ok (st, _) -> Alcotest.fail (Printf.sprintf "unknown workload: status %d" st)
      | Error msg -> Alcotest.fail msg);
      match Httpd.request ~port "/nope" with
      | Ok (404, _) -> ()
      | Ok (st, _) -> Alcotest.fail (Printf.sprintf "unknown route: status %d" st)
      | Error msg -> Alcotest.fail msg)

let test_trace_store_bounds () =
  Trace_store.clear ();
  Trace_store.set_capacity 3;
  List.iter (fun i -> Trace_store.add (string_of_int i) "{}") [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "bounded" 3 (Trace_store.size ());
  Alcotest.(check (option string)) "oldest evicted" None (Trace_store.find "1");
  Alcotest.(check (option string)) "newest kept" (Some "{}") (Trace_store.find "5");
  Trace_store.set_capacity 256;
  Trace_store.clear ()

let () =
  Alcotest.run "server"
    [ ( "openmetrics",
        [ Alcotest.test_case "golden exposition" `Quick test_openmetrics_golden;
          Alcotest.test_case "counter monotonicity" `Quick test_openmetrics_monotonic;
          Alcotest.test_case "spans and sanitize" `Quick test_openmetrics_spans_and_sanitize
        ] );
      ( "log",
        [ Alcotest.test_case "level filtering" `Quick test_log_level_filtering;
          Alcotest.test_case "request correlation" `Quick test_log_request_correlation
        ] );
      ( "domain-safety",
        [ Alcotest.test_case "4 domains x 10k exact" `Quick test_concurrent_counters_exact;
          Alcotest.test_case "reset clears everything" `Quick test_reset_clears_everything;
          Alcotest.test_case "span/event req tagging" `Quick test_span_req_tagging
        ] );
      ( "daemon",
        [ Alcotest.test_case "end to end over sockets" `Quick test_daemon_end_to_end;
          Alcotest.test_case "trace store bounds" `Quick test_trace_store_bounds
        ] )
    ]
