test/test_machine.ml: Alcotest Ast Build_tree Cache Conv2d Core Cpu_model Deps Equake Exp_util Footprints Fusion Gen Hashtbl Interp List Npu_model Option Polybench Polymage Resnet String
