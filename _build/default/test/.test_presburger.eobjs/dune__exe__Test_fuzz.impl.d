test/test_fuzz.ml: Alcotest Core Exp_util Fusion List Printf Random_pipeline
