test/test_scheduler.ml: Alcotest Conv2d Deps Equake Fusion List Polybench Polymage Resnet
