test/test_workloads.ml: Alcotest Array Competitors Conv2d Cpu_model Equake Exp_util Interp List Npu_model Polybench Polymage Prog Registry Resnet
