test/test_core.ml: Alcotest Array Bmap Bset Conv2d Core Deps Fusion Imap Iset List Parse Presburger Prog Schedule_tree String
