test/test_presburger.ml: Aff Alcotest Array Bmap Bset Cstr Fm Imap Iset List Parse Presburger QCheck QCheck_alcotest Space Vec
