test/test_codegen.ml: Alcotest Ast Conv2d Core Exp_util Fusion Gen Hashtbl Interp List Option Printf Prog Registry String
