(** Pluto-lite polyhedral scheduler: SCC-based fusion with the four
    heuristics the paper compares against.

    Statements are aligned on their shared outer dimensions (prefix
    alignment plus per-statement constant shifts, found by solving
    difference constraints over the dependence distance bounds). A
    fusion group carries Pluto-style [permutable]/[coincident]
    information, which is what both the paper's algorithms and the
    machine models consume. *)

type heuristic = Minfuse | Smartfuse | Maxfuse | Hybridfuse

val heuristic_name : heuristic -> string

type group = {
  stmts : string list;  (** textual order *)
  band_dims : int;  (** shared outer dimensions *)
  shifts : (string * int array) list;  (** per statement, length [band_dims] *)
  permutable : bool;
  coincident : bool array;
  serialized : bool;
      (** maxfuse fallback: fused for locality but the shared band must
          execute sequentially (models the skewed code of Fig 1(c)) *)
}

type result = {
  groups : group list;  (** topological order *)
  search_steps : int;
      (** scheduling-search work performed (the compile-time proxy;
          wall-clock is also measured by the benches) *)
  budget_exceeded : bool;
}

val n_parallel : group -> int
(** Leading coincident dimensions. *)

val schedule :
  ?max_steps:int -> ?fuse_reductions:bool -> Prog.t -> deps:Deps.t list ->
  target_parallelism:int -> heuristic -> result
(** [max_steps] bounds maxfuse's exhaustive shift search (default 2e6).
    [fuse_reductions:false] reproduces the isl smartfuse behaviour the
    paper observes on the NPU: groups carrying reductions are not fused
    with their consumers. *)

val group_of_stmts :
  ?band_dims:int -> Prog.t -> deps:Deps.t list -> string list -> group
(** Build a (possibly unfused) group for the given statements with shifts
    solved; [band_dims] defaults to the deepest shared nesting. Exposed
    for the core algorithms and tests. *)
