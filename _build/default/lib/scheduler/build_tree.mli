(** Construction of schedule trees from fusion results (the tree a
    conventional tiling-after-fusion flow would start from, e.g.
    Fig. 2(b) of the paper). *)

open Presburger

val band_name : int -> string
(** Canonical outer-band tuple name of group [g] ("b<g>"). *)

val group_band : Prog.t -> Fusion.group -> name:string -> Schedule_tree.band
(** The shared outer band of a fusion group: one piece per statement,
    [out_d = dim_d + shift_d] restricted to the statement domain. *)

val inner_of_stmt : Prog.t -> Fusion.group -> string -> Schedule_tree.t
(** The subtree scheduling the dimensions of one statement that lie
    below the group band (an inner band, or a leaf). *)

val group_subtree :
  ?only:string list -> Prog.t -> Fusion.group -> name:string -> Schedule_tree.t
(** Filter -> band -> inner structure for one fusion group; [only]
    restricts to a subset of the group's statements (used when a space
    is only partially fused). *)

val initial_tree : Prog.t -> Fusion.result -> Schedule_tree.t
(** Domain -> sequence of group subtrees. *)

val stmt_filter : Prog.t -> string list -> Iset.t
