lib/scheduler/build_tree.ml: Aff Array Bmap Bset Fusion Imap Iset List Presburger Printf Prog Schedule_tree Space
