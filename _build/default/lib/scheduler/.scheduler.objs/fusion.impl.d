lib/scheduler/fusion.ml: Array Bset Deps Hashtbl Imap List Presburger Prog
