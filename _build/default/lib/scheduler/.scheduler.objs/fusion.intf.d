lib/scheduler/fusion.mli: Deps Prog
