lib/scheduler/build_tree.mli: Fusion Iset Presburger Prog Schedule_tree
