(** Schedule trees (Grosser, Verdoolaege, Cohen; TOPLAS 2015), extended
    with the paper's use of extension nodes for post-tiling fusion.

    Node types implemented: domain, band, sequence, filter, mark,
    extension, leaf. A band carries a partial schedule (a union map from
    statement instances to the band's schedule dimensions) plus the
    [permutable] flag and per-dimension [coincident] flags the paper uses
    to reason about tilability and parallelism. *)

open Presburger

type band = {
  partial : Imap.t;
      (** statement instances -> schedule dims; one piece per statement *)
  n_members : int;
  permutable : bool;
  coincident : bool array;  (** length [n_members] *)
}

type t =
  | Domain of Iset.t * t
  | Band of band * t
  | Sequence of t list
  | Filter of Iset.t * t
  | Mark of string * t
  | Extension of Imap.t * t
      (** the map sends outer schedule dimensions to additional statement
          instances scheduled under this subtree *)
  | Leaf

val mk_band :
  partial:Imap.t -> permutable:bool -> coincident:bool array -> band

val band_out_dims : band -> string array
(** Names of the schedule dimensions (from the first piece). *)

val floor_div_map :
  tuple_in:string -> dims:string array -> tuple_out:string ->
  tile_sizes:int array -> Bmap.t
(** [{ [b] -> [o] : T_d * o_d <= b_d <= T_d * o_d + T_d - 1 }]. *)

val tile_band : band -> tile_sizes:int array -> prefix:string -> band * band
(** Split a band into a tile band (iterating among tiles, schedule dims
    renamed with [prefix]) and a point band (the original). *)

val stmts_of_filter : Iset.t -> string list

val domain_of : t -> Iset.t
(** The domain node's set (raises if the root is not a domain node). *)

val filters_under : t -> string list
(** All statement tuple names mentioned by filters/domain below a node. *)

val map_tree : (t -> t option) -> t -> t
(** Bottom-up rewriting: the function may replace any node ([None] keeps
    the node, with already-rewritten children). *)

val to_string : t -> string
(** Indented multi-line rendering for documentation and debugging. *)
