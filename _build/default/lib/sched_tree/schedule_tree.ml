open Presburger

type band = {
  partial : Imap.t;
  n_members : int;
  permutable : bool;
  coincident : bool array;
}

type t =
  | Domain of Iset.t * t
  | Band of band * t
  | Sequence of t list
  | Filter of Iset.t * t
  | Mark of string * t
  | Extension of Imap.t * t
  | Leaf

let mk_band ~partial ~permutable ~coincident =
  let n_members =
    match Imap.pieces partial with
    | [] -> 0
    | m :: _ -> Bmap.n_out m
  in
  assert (Array.length coincident = n_members);
  { partial; n_members; permutable; coincident }

let band_out_dims b =
  match Imap.pieces b.partial with
  | [] -> [||]
  | m :: _ -> (Bmap.space m).Space.out_dims

let floor_div_map ~tuple_in ~dims ~tuple_out ~tile_sizes =
  let nd = Array.length dims in
  assert (Array.length tile_sizes = nd);
  let mspace : Space.map_space =
    { params = [||];
      in_tuple = tuple_in;
      in_dims = dims;
      out_tuple = tuple_out;
      out_dims = Array.map (fun d -> d ^ "t") dims
    }
  in
  let cstrs =
    List.concat
      (List.init nd (fun d ->
           let t = tile_sizes.(d) in
           assert (t >= 1);
           (* t*o <= b  and  b <= t*o + t - 1 *)
           let lo = Array.make (2 * nd) 0 in
           lo.(d) <- 1;
           lo.(nd + d) <- -t;
           let hi = Array.make (2 * nd) 0 in
           hi.(d) <- -1;
           hi.(nd + d) <- t;
           [ Cstr.ge lo 0; Cstr.ge hi (t - 1) ]))
  in
  Bmap.make mspace cstrs

let tile_band b ~tile_sizes ~prefix =
  let tile_pieces =
    List.map
      (fun piece ->
        let sp = Bmap.space piece in
        let fd =
          floor_div_map ~tuple_in:sp.Space.out_tuple ~dims:sp.Space.out_dims
            ~tuple_out:(prefix ^ sp.Space.out_tuple) ~tile_sizes
        in
        Bmap.apply_range piece fd)
      (Imap.pieces b.partial)
  in
  let tile_band =
    { partial = Imap.of_bmaps tile_pieces;
      n_members = b.n_members;
      permutable = b.permutable;
      coincident = Array.copy b.coincident
    }
  in
  (tile_band, b)

let stmts_of_filter f = Iset.tuples f

let domain_of = function
  | Domain (d, _) -> d
  | _ -> invalid_arg "domain_of: root is not a domain node"

let rec filters_under node =
  let merge a b = a @ List.filter (fun x -> not (List.mem x a)) b in
  match node with
  | Domain (d, child) -> merge (Iset.tuples d) (filters_under child)
  | Filter (f, child) -> merge (Iset.tuples f) (filters_under child)
  | Band (_, child) | Mark (_, child) | Extension (_, child) ->
      filters_under child
  | Sequence children ->
      List.fold_left (fun acc c -> merge acc (filters_under c)) [] children
  | Leaf -> []

let rec map_tree f node =
  let node' =
    match node with
    | Domain (d, c) -> Domain (d, map_tree f c)
    | Band (b, c) -> Band (b, map_tree f c)
    | Sequence cs -> Sequence (List.map (map_tree f) cs)
    | Filter (s, c) -> Filter (s, map_tree f c)
    | Mark (m, c) -> Mark (m, map_tree f c)
    | Extension (e, c) -> Extension (e, map_tree f c)
    | Leaf -> Leaf
  in
  match f node' with Some replaced -> replaced | None -> node'

let to_string t =
  let buf = Buffer.create 256 in
  let pad n = String.make (2 * n) ' ' in
  let rec go depth node =
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (pad depth ^ s ^ "\n")) fmt in
    match node with
    | Domain (d, c) ->
        line "domain: %s" (Iset.to_string d);
        go (depth + 1) c
    | Band (b, c) ->
        line "band (permutable=%b, coincident=[%s]):"
          b.permutable
          (String.concat "," (List.map string_of_bool (Array.to_list b.coincident)));
        line "  %s" (Imap.to_string b.partial);
        go (depth + 1) c
    | Sequence cs ->
        line "sequence:";
        List.iter (go (depth + 1)) cs
    | Filter (f, c) ->
        line "filter: {%s}" (String.concat "; " (Iset.tuples f));
        go (depth + 1) c
    | Mark (m, c) ->
        line "mark: \"%s\"" m;
        go (depth + 1) c
    | Extension (e, c) ->
        line "extension: %s" (Imap.to_string e);
        go (depth + 1) c
    | Leaf -> line "leaf"
  in
  go 0 t;
  Buffer.contents buf
