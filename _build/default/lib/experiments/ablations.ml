open Exp_util

let instances (p : Prog.t) v =
  (cpu_profile p v).Cpu_model.instances

let recompute_limit_sweep () =
  section "Ablation: the recomputation cost guard of Algorithm 1";
  Printf.printf
    "limit = tolerated ratio of fused executions to a producer's domain;\n\
     'inf' disables the guard (pure Algorithm 1). gemver's x-vector is\n\
     needed wholesale by every tile of w: unguarded fusion recomputes it\n\
     per tile. harris's stencil overlap is benign at every setting.\n\n";
  let sweep name (p : Prog.t) =
    Printf.printf "%s:\n" name;
    let rows =
      List.map
        (fun (label, limit) ->
          let v = ours ~tile:16 ?recompute_limit:limit ~target:Core.Pipeline.Cpu p in
          [ label;
            string_of_int (instances p v);
            Printf.sprintf "%.3f" (cpu_time_ms p v ~threads:32)
          ])
        [ ("1.5", Some 1.5); ("4 (default)", None); ("16", Some 16.0);
          ("inf", Some infinity)
        ]
    in
    print_table ~header:[ "limit"; "instances"; "time 32t (ms)" ] rows;
    print_newline ()
  in
  sweep "gemver" (Polybench.gemver ~n:128 ());
  sweep "harris" (Polymage.harris ~h:64 ~w:64 ())

let tile_size_sweep () =
  section "Ablation: tile size";
  let sweep name (p : Prog.t) =
    Printf.printf "%s:\n" name;
    let rows =
      List.map
        (fun tile ->
          let v = ours ~tile ~target:Core.Pipeline.Cpu p in
          [ string_of_int tile;
            string_of_int (instances p v);
            Printf.sprintf "%.3f" (cpu_time_ms p v ~threads:32)
          ])
        [ 4; 8; 16; 32; 64 ]
    in
    print_table ~header:[ "tile"; "instances"; "time 32t (ms)" ] rows;
    print_newline ()
  in
  sweep "conv2d" (Conv2d.build ~h:128 ~w:128 ());
  sweep "harris" (Polymage.harris ~h:128 ~w:128 ())

let parallelism_cap_ablation () =
  section "Ablation: the parallelism cap m (Algorithm 1, Section III-C)";
  Printf.printf
    "m = min(live-out parallel dims, cap): CPUs need 1 (OpenMP), GPUs 2\n\
     (blocks x threads). The m > n guard refuses intermediates with\n\
     fewer parallel dimensions than the cap preserves.\n\n";
  List.iter
    (fun (name, p) ->
      let fused_count target =
        let c = Core.Pipeline.run ~tile_size:16 ~target p in
        List.length c.Core.Pipeline.plan.Core.Post_tiling.skipped
        + List.length c.Core.Pipeline.plan.Core.Post_tiling.residual
      in
      Printf.printf "  %-18s fused spaces: cap=1 (CPU) %d, cap=2 (GPU) %d\n" name
        (fused_count Core.Pipeline.Cpu)
        (fused_count Core.Pipeline.Gpu))
    [ ("harris", Polymage.harris ~h:64 ~w:64 ());
      ("unsharp_mask", Polymage.unsharp_mask ~h:64 ~w:64 ());
      ("equake", Equake.build ~size:Equake.Test ())
    ]

let startup_ablation () =
  section "Ablation: start-up heuristic for the paper's flow";
  let rows =
    List.concat_map
      (fun (name, p) ->
        List.map
          (fun (label, startup) ->
            let v = ours ~tile:16 ~startup ~target:Core.Pipeline.Cpu p in
            let c =
              match v.flavor with Ours c -> c | _ -> assert false
            in
            [ name;
              label;
              string_of_int (List.length c.Core.Pipeline.spaces);
              string_of_int
                (List.length c.Core.Pipeline.plan.Core.Post_tiling.skipped);
              Printf.sprintf "%.3f" (cpu_time_ms p v ~threads:32)
            ])
          [ ("minfuse", Fusion.Minfuse); ("smartfuse", Fusion.Smartfuse) ])
      [ ("harris", Polymage.harris ~h:64 ~w:64 ());
        ("unsharp_mask", Polymage.unsharp_mask ~h:64 ~w:64 ())
      ]
  in
  print_table
    ~header:[ "benchmark"; "startup"; "spaces"; "fused"; "time 32t (ms)" ]
    rows

let run_all () =
  recompute_limit_sweep ();
  tile_size_sweep ();
  parallelism_cap_ablation ();
  startup_ablation ()
