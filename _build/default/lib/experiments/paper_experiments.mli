(** One driver per table/figure of the paper's Section VI. Each prints
    the measured series (and the paper's reported numbers where ratios
    are comparable); EXPERIMENTS.md records the paper-vs-measured
    comparison. *)

val table1 : unit -> unit
(** PolyMage benchmarks on CPU: naive / PolyMage / Halide / ours
    execution times (32 threads) and the tile sizes used. *)

val fig8 : unit -> unit
(** Speedup over naive sequential vs thread count (1, 4, 16, 32) for the
    six pipelines and four versions. *)

val fig9 : unit -> unit
(** equake speedups over the baseline for minfuse / smartfuse / maxfuse /
    ours on the test / train / ref sizes. *)

val fig10 : unit -> unit
(** PolyMage benchmarks on GPU: smartfuse / maxfuse / Halide / ours
    speedup over the PPCG minfuse baseline. *)

val table2 : unit -> unit
(** PolyBench CPU execution times: sequential / icc / minfuse /
    smartfuse / maxfuse / hybridfuse / ours at 1, 8, 32 threads. *)

val table3 : unit -> unit
(** ResNet-50 on the NPU model: smartfuse vs ours, forward conv +
    batchnorm subset and entire workload, plus compilation time. *)

val compile_time : unit -> unit
(** Compilation-time comparison (Table I columns and Section VI-D):
    wall-clock and scheduling-search work of each heuristic and of our
    flow, with maxfuse's budget blow-ups. *)

val verify : unit -> unit
(** Semantic cross-check: every version of every benchmark computes the
    same live-out arrays as the naive schedule (reduced sizes). *)

val run_all : unit -> unit
