(** Ablation studies for the design choices DESIGN.md calls out. *)

val recompute_limit_sweep : unit -> unit
(** The cost-model guard of Algorithm 1: sweep the tolerated
    recomputation ratio on gemver (pathological: a reduction whose whole
    output every tile needs) and harris (benign overlap): modelled time
    and executed instances per setting. *)

val tile_size_sweep : unit -> unit
(** Tile-size selection (Section VII notes auto-tuners complement the
    approach): conv2d and harris across tile edges. *)

val parallelism_cap_ablation : unit -> unit
(** The platform-dependent [m] of Algorithm 1 (1 for CPUs, 2 for GPUs):
    fused-space counts and GPU time under both caps. *)

val startup_ablation : unit -> unit
(** Start-up heuristic choice (minfuse-grouped nests vs smartfuse):
    spaces, fused spaces, modelled time. *)

val run_all : unit -> unit
