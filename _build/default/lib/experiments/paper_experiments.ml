open Exp_util

let ms v = Printf.sprintf "%.3f" v

let speedup base v = Printf.sprintf "%.2f" (base /. v)

(* PolyMage benchmarks with Table-I auto-tuned tile sizes, scaled to our
   reduced image extents (the paper tunes for 2k-4k images). *)
type pm_bench = {
  pm_name : string;
  pm_build : unit -> Prog.t;
  pm_tiles : int array;
  pm_paper_cpu : string;  (** paper: ours vs PolyMage / Halide summary *)
  pm_paper_gpu : string;
}

let pm_benchmarks () =
  [ { pm_name = "bilateral_grid";
      pm_build = (fun () -> Polymage.bilateral_grid ~h:128 ~w:128 ());
      pm_tiles = [| 4; 8 |];
      pm_paper_cpu = "5.57/4.23/4.11";
      pm_paper_gpu = "1.34x";
    };
    { pm_name = "camera_pipeline";
      pm_build = (fun () -> Polymage.camera_pipeline ~h2:64 ~w2:64 ());
      pm_tiles = [| 16; 32 |];
      pm_paper_cpu = "4.68/4.76/4.40";
      pm_paper_gpu = "1.47x";
    };
    { pm_name = "harris";
      pm_build = (fun () -> Polymage.harris ~h:128 ~w:128 ());
      pm_tiles = [| 16; 32 |];
      pm_paper_cpu = "5.10/10.71/5.10";
      pm_paper_gpu = "1.12x";
    };
    { pm_name = "local_laplacian";
      pm_build = (fun () -> Polymage.local_laplacian ~h:128 ~w:128 ~levels:3 ~bins:4 ());
      pm_tiles = [| 8; 32 |];
      pm_paper_cpu = "35.35/29.12/27.08";
      pm_paper_gpu = "1.50x";
    };
    { pm_name = "multiscale_interp";
      pm_build = (fun () -> Polymage.multiscale_interp ~h:128 ~w:128 ~levels:4 ());
      pm_tiles = [| 16; 32 |];
      pm_paper_cpu = "16.44/20.07/14.87";
      pm_paper_gpu = "1.18x";
    };
    { pm_name = "unsharp_mask";
      pm_build = (fun () -> Polymage.unsharp_mask ~h:128 ~w:128 ());
      pm_tiles = [| 8; 32 |];
      pm_paper_cpu = "5.01/5.02/3.68";
      pm_paper_gpu = "1.01x";
    }
  ]

(* table1 and fig8 share the same compiled versions and trace profiles;
   memoize per benchmark (keyed by name, sizes are fixed). *)
let cpu_versions_cache : (string, Prog.t * version list) Hashtbl.t = Hashtbl.create 8

let cpu_versions_of (b : pm_bench) =
  match Hashtbl.find_opt cpu_versions_cache b.pm_name with
  | Some pv -> pv
  | None ->
      let p = b.pm_build () in
      let versions =
        [ naive p;
          polymage_version ~tile_sizes:b.pm_tiles ~target:Core.Pipeline.Cpu p;
          halide_version ~tile_sizes:b.pm_tiles ~target:Core.Pipeline.Cpu p;
          ours ~tile_sizes:b.pm_tiles ~target:Core.Pipeline.Cpu p
        ]
      in
      Hashtbl.replace cpu_versions_cache b.pm_name (p, versions);
      (p, versions)

(* ------------------------------------------------------------------ *)
(* Table I (execution columns)                                         *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table I: PolyMage benchmarks, CPU execution (model, ms)";
  Printf.printf
    "columns: naive is single-threaded; others use 32 threads (as in the paper).\n\
     paper column: PolyMage/Halide/ours ms on the authors' 32-core Xeon (for shape comparison only).\n";
  let rows =
    List.map
      (fun b ->
        let p, versions = cpu_versions_of b in
        let time v ~threads = cpu_time_ms p v ~threads in
        let cells =
          List.map
            (fun v ->
              let threads = if v.ver_name = "naive" then 1 else 32 in
              ms (time v ~threads))
            versions
        in
        (b.pm_name
        :: Printf.sprintf "%dx%d" b.pm_tiles.(0) b.pm_tiles.(1)
        :: cells)
        @ [ b.pm_paper_cpu ])
      (pm_benchmarks ())
  in
  print_table
    ~header:
      [ "benchmark"; "tile"; "naive(1t)"; "polymage"; "halide"; "ours";
        "paper PM/H/ours"
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 8: speedups vs threads                                         *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  section "Fig. 8: PolyMage benchmarks on CPU, speedup over naive sequential";
  List.iter
    (fun b ->
      let p, versions = cpu_versions_of b in
      let base = cpu_time_ms p (List.hd versions) ~threads:1 in
      Printf.printf "\n%s:\n" b.pm_name;
      let rows =
        List.map
          (fun v ->
            v.ver_name
            :: List.map
                 (fun t -> speedup base (cpu_time_ms p v ~threads:t))
                 [ 1; 4; 16; 32 ])
          versions
      in
      print_table ~header:[ "version"; "1"; "4"; "16"; "32" ] rows)
    (pm_benchmarks ())

(* ------------------------------------------------------------------ *)
(* Fig. 9: equake                                                      *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  section "Fig. 9: equake on CPU (32 threads), speedup over the naive baseline";
  Printf.printf
    "the heuristics run on the manually permuted variant (as in the paper);\n\
     our flow runs on the original program with the while loop in place.\n";
  let rows =
    List.map
      (fun (label, size) ->
        let perm = Equake.build_permuted ~size () in
        let orig = Equake.build ~size () in
        let base = cpu_time_ms perm (naive perm) ~threads:32 in
        let h hname = heuristic ~target:Core.Pipeline.Cpu hname perm in
        let cells =
          List.map
            (fun v -> speedup base (cpu_time_ms perm v ~threads:32))
            [ h Fusion.Minfuse; h Fusion.Smartfuse; h Fusion.Maxfuse ]
        in
        let v_ours = ours ~target:Core.Pipeline.Cpu orig in
        label :: (cells @ [ speedup base (cpu_time_ms orig v_ours ~threads:32) ]))
      [ ("test", Equake.Test); ("train", Equake.Train); ("ref", Equake.Ref) ]
  in
  print_table ~header:[ "size"; "minfuse"; "smartfuse"; "maxfuse"; "ours" ] rows;
  Printf.printf "paper (ref): minfuse~0.75, smartfuse~1.05, maxfuse~1.25, ours~1.25\n"

(* ------------------------------------------------------------------ *)
(* Fig. 10: GPU                                                        *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  section "Fig. 10: PolyMage benchmarks on GPU (model), speedup over PPCG minfuse";
  let rows =
    List.map
      (fun b ->
        let p = b.pm_build () in
        let base_v = heuristic ~target:Core.Pipeline.Gpu Fusion.Minfuse p in
        let base = gpu_time_ms p base_v in
        let cell v =
          let s = speedup base (gpu_time_ms p v) in
          if v.budget_exceeded then s ^ "*" else s
        in
        [ b.pm_name;
          cell (heuristic ~target:Core.Pipeline.Gpu Fusion.Smartfuse p);
          cell (heuristic ~target:Core.Pipeline.Gpu Fusion.Maxfuse p);
          cell (halide_version ~tile_sizes:b.pm_tiles ~target:Core.Pipeline.Gpu p);
          cell (ours ~tile_sizes:b.pm_tiles ~target:Core.Pipeline.Gpu p);
          b.pm_paper_gpu
        ])
      (pm_benchmarks ())
  in
  print_table
    ~header:
      [ "benchmark"; "smartfuse"; "maxfuse"; "halide"; "ours"; "paper ours" ]
    rows;
  Printf.printf "* scheduling search exceeded its budget (the paper reports these as >24h)\n"

(* ------------------------------------------------------------------ *)
(* Table II: PolyBench                                                 *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "Table II: PolyBench CPU execution time (model, ms)";
  let benches =
    [ ("2mm", Polybench.mm2 ~ni:96 ~nj:96 ~nk:96 ~nl:96 ());
      ("gemver", Polybench.gemver ~n:256 ());
      ("covariance", Polybench.covariance ~n:128 ~m:96 ())
    ]
  in
  List.iter
    (fun (name, p) ->
      Printf.printf "\n%s:\n" name;
      let nv = naive p in
      let versions =
        [ ("sequential", nv, Some false);
          ("icc", nv, Some true);
          ("minfuse", heuristic ~target:Core.Pipeline.Cpu Fusion.Minfuse p, None);
          ("smartfuse", heuristic ~target:Core.Pipeline.Cpu Fusion.Smartfuse p, None);
          ("maxfuse", heuristic ~target:Core.Pipeline.Cpu Fusion.Maxfuse p, None);
          ( "hybridfuse",
            heuristic ~target:Core.Pipeline.Cpu Fusion.Hybridfuse p,
            Some true );
          ("ours", ours ~target:Core.Pipeline.Cpu p, None)
        ]
      in
      let rows =
        List.map
          (fun (label, v, vectorize) ->
            label
            :: List.map
                 (fun t ->
                   if label = "sequential" || label = "icc" then
                     if t = 1 then ms (cpu_time_ms ?vectorize p v ~threads:1)
                     else "-"
                   else ms (cpu_time_ms ?vectorize p v ~threads:t))
                 [ 1; 8; 32 ])
          versions
      in
      print_table ~header:[ "version"; "1t"; "8t"; "32t" ] rows)
    benches

(* ------------------------------------------------------------------ *)
(* Table III: ResNet-50 on the NPU                                     *)
(* ------------------------------------------------------------------ *)

let table3 () =
  section "Table III: ResNet-50 forward layers on the NPU model";
  let blocks = Resnet.default_blocks () in
  let npu_time p v =
    Npu_model.time_ms Npu_model.ascend910 p ~kind_of:Resnet.unit_kind
      (clusters p v)
  in
  let totals =
    List.fold_left
      (fun (sm_cb, our_cb, sm_all, our_all, sm_cs, our_cs) b ->
        (* conv+bn subset (the rows Table III isolates) and the full
           conv+bn+relu chain, each compiled at operator-group
           granularity as the AKG flow does *)
        let p_cb = Resnet.layer ~with_relu:false b in
        let p_all = Resnet.layer b in
        let compile p =
          ( heuristic ~fuse_reductions:false ~target:Core.Pipeline.Npu
              Fusion.Smartfuse p,
            ours ~fuse_reductions:false ~tile:8 ~target:Core.Pipeline.Npu p )
        in
        let sm1, our1 = compile p_cb in
        let sm2, our2 = compile p_all in
        ( sm_cb +. npu_time p_cb sm1,
          our_cb +. npu_time p_cb our1,
          sm_all +. npu_time p_all sm2,
          our_all +. npu_time p_all our2,
          sm_cs +. sm1.compile_s +. sm2.compile_s,
          our_cs +. our1.compile_s +. our2.compile_s ))
      (0., 0., 0., 0., 0., 0.)
      blocks
  in
  let sm_cb, our_cb, sm_all, our_all, sm_cs, our_cs = totals in
  print_table
    ~header:[ "workload"; "smartfuse(ms)"; "ours(ms)"; "speedup"; "paper" ]
    [ [ "fwd conv+batchnorm"; ms sm_cb; ms our_cb; speedup sm_cb our_cb; "1.72x" ];
      [ "conv+bn+relu chain"; ms sm_all; ms our_all; speedup sm_all our_all; "1.16x*" ]
    ];
  Printf.printf
    "* the paper's 'entire workload' row also contains backward passes and\n\
     \ \ framework overhead identical in both versions, diluting the speedup;\n\
     \ \ our chain covers the forward operators only (see EXPERIMENTS.md).\n";
  Printf.printf "compilation: smartfuse %.2fs, ours %.2fs (paper: 736s vs 487s)\n"
    sm_cs our_cs

(* ------------------------------------------------------------------ *)
(* Compilation time (Table I columns, Section VI-D)                    *)
(* ------------------------------------------------------------------ *)

let compile_time () =
  section "Compilation time (Table I columns / Section VI-D)";
  Printf.printf
    "wall-clock seconds of our implementation of each flow; maxfuse's\n\
     exhaustive shift search runs under a step budget (entries marked >budget\n\
     correspond to the paper's >24h timeouts). steps = scheduling-search work.\n";
  let budget = 300_000 in
  let rows =
    List.map
      (fun b ->
        let p = b.pm_build () in
        let cell v =
          if v.budget_exceeded then Printf.sprintf ">budget(%.1fs)" v.compile_s
          else Printf.sprintf "%.2f" v.compile_s
        in
        let vmin = heuristic ~target:Core.Pipeline.Cpu Fusion.Minfuse p in
        let vsmart = heuristic ~target:Core.Pipeline.Cpu Fusion.Smartfuse p in
        let vmax =
          heuristic ~max_steps:budget ~target:Core.Pipeline.Cpu Fusion.Maxfuse p
        in
        let vours = ours ~tile_sizes:b.pm_tiles ~target:Core.Pipeline.Cpu p in
        [ b.pm_name; cell vmin; cell vsmart; cell vmax; cell vours ])
      (pm_benchmarks ())
  in
  print_table ~header:[ "benchmark"; "minfuse"; "smartfuse"; "maxfuse"; "ours" ] rows

(* ------------------------------------------------------------------ *)
(* Verification                                                        *)
(* ------------------------------------------------------------------ *)

let verify () =
  section "Semantic cross-check (reduced sizes)";
  List.iter
    (fun (e : Registry.entry) ->
      let p = e.Registry.small () in
      let nv = naive p in
      let all_ok =
        List.for_all
          (fun v -> check_against p nv v)
          [ heuristic ~tile:8 ~target:Core.Pipeline.Cpu Fusion.Minfuse p;
            heuristic ~tile:8 ~target:Core.Pipeline.Cpu Fusion.Smartfuse p;
            heuristic ~tile:8 ~target:Core.Pipeline.Cpu Fusion.Maxfuse p;
            heuristic ~tile:8 ~target:Core.Pipeline.Cpu Fusion.Hybridfuse p;
            ours ~tile:8 ~target:Core.Pipeline.Cpu p;
            polymage_version ~tile:8 ~target:Core.Pipeline.Cpu p;
            halide_version ~tile:8 ~target:Core.Pipeline.Cpu p
          ]
      in
      Printf.printf "  %-20s %s\n%!" e.Registry.reg_name
        (if all_ok then "ok" else "MISMATCH"))
    Registry.all

let run_all () =
  table1 ();
  fig8 ();
  fig9 ();
  fig10 ();
  table2 ();
  table3 ();
  compile_time ()
