lib/experiments/ablations.ml: Conv2d Core Cpu_model Equake Exp_util Fusion List Polybench Polymage Printf Prog
