lib/experiments/paper_experiments.mli:
