lib/experiments/paper_experiments.ml: Array Core Equake Exp_util Fusion Hashtbl List Npu_model Polybench Polymage Printf Prog Registry Resnet
