lib/experiments/exp_util.ml: Array Ast Build_tree Competitors Core Cpu_model Deps Footprints Fusion Gen Gpu_model Hashtbl Interp List Printf Prog String Unix
