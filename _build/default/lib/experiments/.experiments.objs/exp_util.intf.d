lib/experiments/exp_util.mli: Ast Core Cpu_model Footprints Fusion Prog
