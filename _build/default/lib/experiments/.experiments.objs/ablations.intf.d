lib/experiments/ablations.mli:
