(** Multi-level set-associative LRU cache simulator (trace driven). *)

type level_config = {
  name : string;
  size_bytes : int;
  line_bytes : int;
  assoc : int;
  latency : int;  (** cycles on a hit at this level *)
}

type t

type level_stats = { level : string; hits : int; misses : int }

val create : levels:level_config list -> dram_latency:int -> t

val access : t -> addr:int -> write:bool -> int
(** Simulate one access; returns its latency in cycles. Write-allocate,
    inclusive hierarchy. *)

val stats : t -> level_stats list

val dram_accesses : t -> int

val total_cycles : t -> int

val reset : t -> unit

val xeon_like : unit -> t
(** 32 KiB L1 (8-way) + 1 MiB L2 (16-way) + 40 MiB shared L3 (modelled at
    4 MiB per-core slice), latencies 4/14/50, DRAM 200. *)

val scaled_xeon : unit -> t
(** The same hierarchy scaled down by the benchmark-size reduction
    factor (2 KiB / 16 KiB / 64 KiB), preserving working-set-to-cache
    ratios when profiling the reduced-extent workloads. *)
