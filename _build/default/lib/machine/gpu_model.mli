(** Analytic GPU performance model over polyhedral cluster summaries.

    Each cluster is one kernel launch: its time is the maximum of an
    arithmetic-throughput term (scaled by how many SMs its blocks can
    occupy) and a global-memory term (traffic from
    {!Footprints.cluster_traffic}), plus a fixed launch overhead. Fused
    intermediates whose per-tile footprint fits in shared memory are
    served on-chip; otherwise the cluster is re-costed without staging. *)

type config = {
  sms : int;
  flops_per_sm_per_cycle : float;
  freq_mhz : float;
  mem_gbps : float;
  launch_us : float;
  shared_kb : int;
}

val quadro_p6000 : config

type kernel_time = {
  kt_compute_us : float;
  kt_memory_us : float;
  kt_launch_us : float;
  kt_spilled : bool;  (** staged footprint exceeded shared memory *)
}

val kernel_times : config -> Prog.t -> Footprints.cluster list -> kernel_time list

val time_ms : config -> Prog.t -> Footprints.cluster list -> float
