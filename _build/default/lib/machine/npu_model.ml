type unit_kind = Cube | Vector

type config = {
  cube_flops_per_cycle : float;
  vector_flops_per_cycle : float;
  freq_mhz : float;
  ddr_gbps : float;
  launch_us : float;
  unified_buffer_kb : int;
}

let ascend910 =
  { cube_flops_per_cycle = 4096.0;
    vector_flops_per_cycle = 128.0;
    freq_mhz = 1000.0;
    ddr_gbps = 60.0;
    launch_us = 20.0;
    unified_buffer_kb = 256
  }

let cluster_time cfg (p : Prog.t) ~kind_of ~previous (c : Footprints.cluster) =
  let spilled =
    c.Footprints.staged_arrays <> []
    && Footprints.staged_bytes p c > cfg.unified_buffer_kb * 1024
  in
  let c_eff = if spilled then { c with Footprints.staged_arrays = [] } else c in
  let traffic = Footprints.cluster_traffic p ~previous c_eff in
  let bytes = traffic.Footprints.read_bytes + traffic.Footprints.write_bytes in
  let transfer_us = float_of_int bytes /. (cfg.ddr_gbps *. 1e3) in
  let compute_cycles =
    List.fold_left
      (fun acc (s, m) ->
        let stmt = Prog.find_stmt p s in
        let ops = float_of_int (Presburger.Imap.card m * stmt.Prog.ops) in
        let throughput =
          match kind_of s with
          | Cube -> cfg.cube_flops_per_cycle
          | Vector -> cfg.vector_flops_per_cycle
        in
        acc +. (ops /. throughput))
      0.0 c.Footprints.inst_tiles
  in
  let compute_us = compute_cycles /. cfg.freq_mhz in
  (* DMA and compute overlap imperfectly on the chip; charge the max plus
     a fraction of the min, and a launch cost per operator group. *)
  Float.max compute_us transfer_us
  +. (0.2 *. Float.min compute_us transfer_us)
  +. cfg.launch_us

let time_ms cfg p ~kind_of clusters =
  let rec go previous = function
    | [] -> 0.0
    | c :: rest ->
        cluster_time cfg p ~kind_of ~previous c +. go (previous @ [ c ]) rest
  in
  go [] clusters /. 1000.0
