type config = {
  sms : int;
  flops_per_sm_per_cycle : float;
  freq_mhz : float;
  mem_gbps : float;
  launch_us : float;
  shared_kb : int;
}

let quadro_p6000 =
  { sms = 30;
    flops_per_sm_per_cycle = 128.0;
    freq_mhz = 1500.0;
    mem_gbps = 432.0;
    (* the real launch overhead (~8us) scaled by the benchmark-size
       reduction factor, preserving the launch/work balance of the
       paper's full-size images *)
    launch_us = 0.05;
    shared_kb = 48
  }

type kernel_time = {
  kt_compute_us : float;
  kt_memory_us : float;
  kt_launch_us : float;
  kt_spilled : bool;
}

let kernel_time cfg (p : Prog.t) ~previous (c : Footprints.cluster) =
  let spilled =
    c.Footprints.staged_arrays <> []
    && Footprints.staged_bytes p c > cfg.shared_kb * 1024
  in
  let c_eff =
    if spilled then { c with Footprints.staged_arrays = [] } else c
  in
  let traffic = Footprints.cluster_traffic p ~previous c_eff in
  let blocks =
    if c.Footprints.parallel_tiles then max 1 c.Footprints.tile_count else 1
  in
  (* serialized clusters (no parallel tile loop) occupy a single SM *)
  let sms_used = float_of_int (min cfg.sms blocks) in
  let compute_cycles =
    float_of_int c_eff.Footprints.ops /. (cfg.flops_per_sm_per_cycle *. sms_used)
  in
  let kt_compute_us = compute_cycles /. cfg.freq_mhz in
  let bytes = traffic.Footprints.read_bytes + traffic.Footprints.write_bytes in
  let kt_memory_us = float_of_int bytes /. (cfg.mem_gbps *. 1e3) in
  { kt_compute_us; kt_memory_us; kt_launch_us = cfg.launch_us; kt_spilled = spilled }

let kernel_times cfg p clusters =
  let rec go previous = function
    | [] -> []
    | c :: rest -> kernel_time cfg p ~previous c :: go (previous @ [ c ]) rest
  in
  go [] clusters

let time_ms cfg p clusters =
  let ks = kernel_times cfg p clusters in
  List.fold_left
    (fun acc k ->
      acc +. Float.max k.kt_compute_us k.kt_memory_us +. k.kt_launch_us)
    0.0 ks
  /. 1000.0
