lib/machine/cpu_model.mli: Ast Cache Interp Prog
