lib/machine/npu_model.ml: Float Footprints List Presburger Prog
