lib/machine/cpu_model.ml: Ast Cache Hashtbl Interp List Option Prog
