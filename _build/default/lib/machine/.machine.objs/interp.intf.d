lib/machine/interp.mli: Ast Hashtbl Prog
