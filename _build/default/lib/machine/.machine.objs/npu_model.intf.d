lib/machine/npu_model.mli: Footprints Prog
