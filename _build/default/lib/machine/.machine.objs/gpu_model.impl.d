lib/machine/gpu_model.ml: Float Footprints List Prog
