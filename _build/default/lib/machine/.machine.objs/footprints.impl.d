lib/machine/footprints.ml: Array Bmap Bset Core Fusion Imap Interp Iset List Presburger Printf Prog Space
