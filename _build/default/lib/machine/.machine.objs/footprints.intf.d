lib/machine/footprints.mli: Core Imap Presburger Prog
