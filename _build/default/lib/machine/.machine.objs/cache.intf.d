lib/machine/cache.mli:
