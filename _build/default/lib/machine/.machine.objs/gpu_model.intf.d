lib/machine/gpu_model.mli: Footprints Prog
