lib/machine/interp.ml: Array Ast Float Hashtbl List Option Printf Prog
