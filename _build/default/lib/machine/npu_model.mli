(** Analytic model of the DaVinci-style NPU (Fig. 7 of the paper).

    Matrix/tensor statements execute on the Cube unit, vector/scalar
    statements on the Vector unit. Every cluster (fused operator group)
    pays: off-chip (DDR) transfers for its non-staged inputs and
    outputs, a fixed per-operator launch cost, and compute on the
    respective units. Fusing a convolution with its batch normalization
    keeps the intermediate in the Unified Buffer, eliminating the
    dominant DDR round-trip — the effect Table III measures. *)

type unit_kind = Cube | Vector

type config = {
  cube_flops_per_cycle : float;
  vector_flops_per_cycle : float;
  freq_mhz : float;
  ddr_gbps : float;
  launch_us : float;
  unified_buffer_kb : int;
}

val ascend910 : config

val time_ms :
  config -> Prog.t -> kind_of:(string -> unit_kind) ->
  Footprints.cluster list -> float
