(** Reference interpreter for generated loop ASTs: executes statement
    semantics over concrete float arrays, with bounds checking and an
    access observer for trace-driven machine models.

    Executing the same program under two different schedules and
    comparing the final arrays is the semantic-equivalence oracle used
    throughout the test suite. *)

type memory

val alloc : Prog.t -> memory

val base_of : memory -> string -> int
(** Byte base address of an array (for cache simulation). *)

val elem_bytes : int

val read_array : memory -> string -> float array

val fill : memory -> string -> (int array -> float) -> unit
(** Initialize an array: the function receives the multi-dimensional
    index. *)

type stats = {
  mutable instances : int;  (** executed statement instances *)
  mutable ops : int;  (** arithmetic operations *)
  mutable reads : int;
  mutable writes : int;
  per_stmt : (string, int) Hashtbl.t;
  per_kernel_ops : (int, int) Hashtbl.t;
}

val run :
  ?observer:(kernel:int -> addr:int -> write:bool -> unit) ->
  Prog.t -> Ast.t -> memory -> stats
(** Raises [Invalid_argument] on out-of-bounds accesses, naming the
    array and index. Kernel id -1 denotes code outside any kernel
    region. *)

val arrays_equal : ?eps:float -> memory -> memory -> string -> bool
