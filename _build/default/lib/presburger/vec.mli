(** Small integer-vector helpers shared by the constraint engine. *)

val gcd : int -> int -> int
(** [gcd a b] is the non-negative greatest common divisor; [gcd 0 0 = 0]. *)

val gcd_list : int list -> int

val gcd_array : int array -> int

val ceil_div : int -> int -> int
(** [ceil_div a b] is [ceiling (a / b)] for [b > 0], exact on negatives. *)

val floor_div : int -> int -> int
(** [floor_div a b] is [floor (a / b)] for [b > 0], exact on negatives. *)

val add : int array -> int array -> int array

val sub : int array -> int array -> int array

val scale : int -> int array -> int array

val combine : int -> int array -> int -> int array -> int array
(** [combine a u b v] is [a*u + b*v] componentwise. *)

val is_zero : int array -> bool

val insert_zeros : int array -> pos:int -> count:int -> int array
(** Insert [count] zero entries starting at index [pos]. *)

val remove : int array -> pos:int -> count:int -> int array
(** Remove [count] entries starting at index [pos]. *)
