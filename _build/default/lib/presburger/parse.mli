(** Parser for an isl-like textual notation, used by tests and examples.

    Examples:
    - ["[N] -> { S[i, j] : 0 <= i < N and 0 <= j <= i }"]
    - ["{ S[h, w] -> A[h + 1, 2 w - 1] : w >= 0 }"]
    - ["{ A[i] : 0 <= i < 4 or i = 10; B[j] : j = 0 }"]

    Chained comparisons ([0 <= i < N]) are supported, as are [and]/[or]
    (with [or] splitting a piece into several basic pieces). Parameters
    may be declared in the leading [[...] ->] clause; undeclared
    identifiers on the right-hand side of constraints are rejected. *)

exception Parse_error of string

val set : string -> Iset.t

val map : string -> Imap.t

val bset : string -> Bset.t
(** The input must denote exactly one basic piece. *)

val bmap : string -> Bmap.t
