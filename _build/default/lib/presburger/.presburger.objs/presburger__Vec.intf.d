lib/presburger/vec.mli:
