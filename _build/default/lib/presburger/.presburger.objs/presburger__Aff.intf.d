lib/presburger/aff.mli:
