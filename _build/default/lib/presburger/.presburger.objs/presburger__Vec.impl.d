lib/presburger/vec.ml: Array List
