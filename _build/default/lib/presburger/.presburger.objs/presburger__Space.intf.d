lib/presburger/space.mli:
