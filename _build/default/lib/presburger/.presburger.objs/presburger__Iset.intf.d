lib/presburger/iset.mli: Bset
