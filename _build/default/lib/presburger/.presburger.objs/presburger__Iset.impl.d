lib/presburger/iset.ml: Bset List String
