lib/presburger/fm.ml: Array Cstr Hashtbl List Printf Vec
