lib/presburger/aff.ml: Array Hashtbl List Option
