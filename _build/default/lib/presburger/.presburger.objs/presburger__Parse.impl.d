lib/presburger/parse.ml: Aff Array Bmap Bset Cstr Imap Iset List Printf Space String Vec
