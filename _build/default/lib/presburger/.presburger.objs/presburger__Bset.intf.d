lib/presburger/bset.mli: Cstr Space
