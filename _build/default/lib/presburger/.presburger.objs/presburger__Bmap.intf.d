lib/presburger/bmap.mli: Aff Bset Cstr Space
