lib/presburger/cstr.mli:
