lib/presburger/imap.mli: Bmap Iset Space
