lib/presburger/cstr.ml: Array Buffer Printf Vec
