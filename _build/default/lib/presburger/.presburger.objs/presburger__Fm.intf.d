lib/presburger/fm.mli: Cstr
