lib/presburger/bset.ml: Array Cstr Fm List Printf Space String Vec
