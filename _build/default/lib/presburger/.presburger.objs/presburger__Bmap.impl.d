lib/presburger/bmap.ml: Aff Array Bset Cstr Fm List Printf Space String Vec
