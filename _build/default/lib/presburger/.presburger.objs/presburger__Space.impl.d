lib/presburger/space.ml: Array List
