lib/presburger/imap.ml: Array Bmap Bset Cstr Iset List Space String
