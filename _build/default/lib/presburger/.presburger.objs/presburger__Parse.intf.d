lib/presburger/parse.mli: Bmap Bset Imap Iset
