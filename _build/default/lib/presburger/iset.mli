(** Unions of basic sets, possibly over different tuples (isl
    "union set"). Pieces with the same tuple may overlap; operations that
    require disjointness (such as {!card}) establish it internally. *)

type t

val empty : t

val of_bset : Bset.t -> t

val of_bsets : Bset.t list -> t

val pieces : t -> Bset.t list

val union : t -> t -> t

val union_all : t list -> t

val intersect : t -> t -> t

val subtract : t -> t -> t

val is_empty : t -> bool

val is_subset : t -> t -> bool

val is_equal : t -> t -> bool

val tuples : t -> string list
(** Tuple names present, without duplicates, in first-appearance order. *)

val filter_tuple : t -> string -> t

val coalesce : t -> t
(** Drop pieces contained in another piece and empty pieces. *)

val make_disjoint : t -> t

val card : t -> int
(** Total number of integer points (parameters must be bound). *)

val bind_params : t -> (string * int) list -> t

val contains : t -> tuple:string -> int array -> bool
(** Requires bound parameters. *)

val sample : t -> (string * int array) option

val to_string : t -> string
