exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Int of int
  | Lbrack | Rbrack | Lbrace | Rbrace | Lparen | Rparen
  | Comma | Semi | Colon
  | Arrow
  | Plus | Minus | Star
  | Le | Lt | Ge | Gt | Eq_tok
  | And | Or
  | Eof

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\n' || c = '\t' || c = '\r' then incr i
    else if c = '[' then (push Lbrack; incr i)
    else if c = ']' then (push Rbrack; incr i)
    else if c = '{' then (push Lbrace; incr i)
    else if c = '}' then (push Rbrace; incr i)
    else if c = '(' then (push Lparen; incr i)
    else if c = ')' then (push Rparen; incr i)
    else if c = ',' then (push Comma; incr i)
    else if c = ';' then (push Semi; incr i)
    else if c = ':' then (push Colon; incr i)
    else if c = '+' then (push Plus; incr i)
    else if c = '*' then (push Star; incr i)
    else if c = '-' then begin
      if !i + 1 < n && src.[!i + 1] = '>' then (push Arrow; i := !i + 2)
      else (push Minus; incr i)
    end
    else if c = '<' then begin
      if !i + 1 < n && src.[!i + 1] = '=' then (push Le; i := !i + 2)
      else (push Lt; incr i)
    end
    else if c = '>' then begin
      if !i + 1 < n && src.[!i + 1] = '=' then (push Ge; i := !i + 2)
      else (push Gt; incr i)
    end
    else if c = '=' then (push Eq_tok; incr i)
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while !j < n && src.[!j] >= '0' && src.[!j] <= '9' do incr j done;
      push (Int (int_of_string (String.sub src !i (!j - !i))));
      i := !j
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let j = ref !i in
      let ok ch =
        (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')
        || (ch >= '0' && ch <= '9') || ch = '_' || ch = '\''
      in
      while !j < n && ok src.[!j] do incr j done;
      let word = String.sub src !i (!j - !i) in
      (match word with
      | "and" -> push And
      | "or" -> push Or
      | _ -> push (Ident word));
      i := !j
    end
    else fail "unexpected character %c" c
  done;
  push Eof;
  Array.of_list (List.rev !toks)

(* ------------------------------------------------------------------ *)
(* Parser state                                                        *)
(* ------------------------------------------------------------------ *)

type state = { toks : token array; mutable pos : int }

let peek st = st.toks.(st.pos)

let advance st = st.pos <- st.pos + 1

let expect st t what =
  if peek st = t then advance st else fail "expected %s" what

let ident st =
  match peek st with
  | Ident s -> advance st; s
  | _ -> fail "expected identifier"

(* ------------------------------------------------------------------ *)
(* Affine expressions                                                  *)
(* ------------------------------------------------------------------ *)

(* [vars] maps a dimension name to its positional index; identifiers not
   in [vars] must appear in [params]. *)
let rec parse_expr st ~vars ~params =
  let lhs = parse_term st ~vars ~params in
  parse_expr_rest st ~vars ~params lhs

and parse_expr_rest st ~vars ~params lhs =
  match peek st with
  | Plus ->
      advance st;
      let rhs = parse_term st ~vars ~params in
      parse_expr_rest st ~vars ~params (Aff.add lhs rhs)
  | Minus ->
      advance st;
      let rhs = parse_term st ~vars ~params in
      parse_expr_rest st ~vars ~params (Aff.sub lhs rhs)
  | _ -> lhs

and parse_term st ~vars ~params =
  match peek st with
  | Minus ->
      advance st;
      Aff.neg (parse_term st ~vars ~params)
  | Int k -> (
      advance st;
      match peek st with
      | Star ->
          advance st;
          Aff.scale k (parse_atom st ~vars ~params)
      | Ident _ | Lparen -> Aff.scale k (parse_atom st ~vars ~params)
      | _ -> Aff.const k)
  | Ident _ | Lparen -> (
      let a = parse_atom st ~vars ~params in
      match peek st with
      | Star -> (
          advance st;
          match peek st with
          | Int k -> advance st; Aff.scale k a
          | _ -> fail "expected integer after *")
      | _ -> a)
  | _ -> fail "expected term"

and parse_atom st ~vars ~params =
  match peek st with
  | Lparen ->
      advance st;
      let e = parse_expr st ~vars ~params in
      expect st Rparen ")";
      e
  | Ident name -> (
      advance st;
      match List.assoc_opt name vars with
      | Some idx -> Aff.dim idx
      | None ->
          if List.mem name params then Aff.param name
          else fail "unknown identifier %s" name)
  | _ -> fail "expected atom"

(* ------------------------------------------------------------------ *)
(* Conditions                                                          *)
(* ------------------------------------------------------------------ *)

type relop = Rle | Rlt | Rge | Rgt | Req

(* A condition is a disjunction of conjunctions of (Aff, relop, Aff). *)
let parse_chain st ~vars ~params =
  let first = parse_expr st ~vars ~params in
  let rec chain acc lhs =
    let op =
      match peek st with
      | Le -> Some Rle
      | Lt -> Some Rlt
      | Ge -> Some Rge
      | Gt -> Some Rgt
      | Eq_tok -> Some Req
      | _ -> None
    in
    match op with
    | None -> acc
    | Some op ->
        advance st;
        let rhs = parse_expr st ~vars ~params in
        chain ((lhs, op, rhs) :: acc) rhs
  in
  match chain [] first with
  | [] -> fail "expected comparison"
  | rels -> List.rev rels

let parse_conjunction st ~vars ~params =
  let rec go acc =
    let rels = parse_chain st ~vars ~params in
    let acc = acc @ rels in
    match peek st with
    | And -> advance st; go acc
    | _ -> acc
  in
  go []

let parse_condition st ~vars ~params =
  let rec go acc =
    let conj = parse_conjunction st ~vars ~params in
    let acc = acc @ [ conj ] in
    match peek st with
    | Or -> advance st; go acc
    | _ -> acc
  in
  go []

(* ------------------------------------------------------------------ *)
(* Pieces                                                              *)
(* ------------------------------------------------------------------ *)

(* A tuple entry is either a fresh dimension name, a reference to an
   already-bound name (producing an equality, isl-style), or a general
   affine expression (also producing an equality against a synthesized
   dimension). [vars] accumulates bindings left to right so later entries
   may reference earlier dimensions. Returns the tuple name, the
   dimension names, extra equality constraints as (dim index, Aff.t)
   pairs, and the extended bindings. *)
let parse_tuple st ~start_index ~vars ~params =
  let name = ident st in
  expect st Lbrack "[";
  let fresh = ref 0 in
  let rec entries acc_names acc_eqs vars idx =
    match peek st with
    | Rbrack -> advance st; (List.rev acc_names, List.rev acc_eqs, vars)
    | _ ->
        let is_plain_new_name =
          match (peek st, st.toks.(st.pos + 1)) with
          | Ident d, (Comma | Rbrack) ->
              not (List.mem_assoc d vars) && not (List.mem d params)
          | _ -> false
        in
        let dim_name, acc_eqs, vars =
          if is_plain_new_name then begin
            let d = ident st in
            (d, acc_eqs, (d, idx) :: vars)
          end
          else begin
            let e = parse_expr st ~vars ~params in
            incr fresh;
            let d = Printf.sprintf "_%s%d" name !fresh in
            (d, (idx, e) :: acc_eqs, (d, idx) :: vars)
          end
        in
        (match peek st with
        | Comma -> advance st
        | Rbrack -> ()
        | _ -> fail "expected , or ] in tuple");
        entries (dim_name :: acc_names) acc_eqs vars (idx + 1)
  in
  let names, eqs, vars = entries [] [] vars start_index in
  (name, names, eqs, vars)

let rel_to_cstrs ~lower (lhs : Aff.t) op (rhs : Aff.t) =
  (* lower turns an Aff into (row, cst) *)
  let mk kind a b shift =
    (* a - b + shift (kind) 0 *)
    let row_a, cst_a = lower a and row_b, cst_b = lower b in
    let coef = Vec.sub row_a row_b in
    { Cstr.kind; coef; cst = cst_a - cst_b + shift }
  in
  match op with
  | Rle -> [ mk Cstr.Ge rhs lhs 0 ]
  | Rlt -> [ mk Cstr.Ge rhs lhs (-1) ]
  | Rge -> [ mk Cstr.Ge lhs rhs 0 ]
  | Rgt -> [ mk Cstr.Ge lhs rhs (-1) ]
  | Req -> [ mk Cstr.Eq lhs rhs 0 ]

type piece =
  | Set_piece of Bset.t list
  | Map_piece of Bmap.t list

let parse_piece st ~params =
  let in_tuple, in_dims, in_eqs, vars =
    parse_tuple st ~start_index:0 ~vars:[] ~params
  in
  let is_map = peek st = Arrow in
  let out_info =
    if is_map then begin
      advance st;
      let out_tuple, out_dims, out_eqs, vars =
        parse_tuple st ~start_index:(List.length in_dims) ~vars ~params
      in
      Some (out_tuple, out_dims, out_eqs, vars)
    end
    else None
  in
  let vars = match out_info with Some (_, _, _, v) -> v | None -> vars in
  let tuple_eqs =
    in_eqs @ (match out_info with Some (_, _, e, _) -> e | None -> [])
  in
  let disjuncts =
    if peek st = Colon then (advance st; parse_condition st ~vars ~params)
    else [ [] ]
  in
  let np = List.length params in
  let ni = List.length in_dims in
  let no = match out_info with Some (_, d, _, _) -> List.length d | None -> 0 in
  let w = np + ni + no in
  let param_index p =
    match List.find_index (( = ) p) params with
    | Some i -> i
    | None -> fail "unknown parameter %s" p
  in
  let lower a =
    Aff.to_coef_row ~n_params:np ~param_index ~n_dims:(ni + no) ~dim_offset:np
      ~width:w a
  in
  let eq_cstrs =
    List.map
      (fun (idx, e) ->
        let row, cst = lower (Aff.sub (Aff.dim idx) e) in
        Cstr.eq row cst)
      tuple_eqs
  in
  let conj_cstrs conj =
    eq_cstrs
    @ List.concat_map (fun (l, op, r) -> rel_to_cstrs ~lower l op r) conj
  in
  match out_info with
  | Some (out_tuple, out_dims, _, _) ->
      let mspace = Space.map_space ~params in_tuple in_dims out_tuple out_dims in
      Map_piece (List.map (fun conj -> Bmap.make mspace (conj_cstrs conj)) disjuncts)
  | None ->
      let sspace = Space.set_space ~params in_tuple in_dims in
      Set_piece (List.map (fun conj -> Bset.make sspace (conj_cstrs conj)) disjuncts)

let parse_params st =
  if peek st = Lbrack then begin
    advance st;
    let rec go acc =
      match peek st with
      | Rbrack -> advance st; List.rev acc
      | Ident p ->
          advance st;
          (match peek st with
          | Comma -> advance st
          | Rbrack -> ()
          | _ -> fail "expected , or ] in parameters");
          go (p :: acc)
      | _ -> fail "expected parameter name"
    in
    let ps = go [] in
    expect st Arrow "->";
    ps
  end
  else []

let parse_input src =
  let st = { toks = tokenize src; pos = 0 } in
  let params = parse_params st in
  expect st Lbrace "{";
  let rec pieces acc =
    match peek st with
    | Rbrace -> advance st; List.rev acc
    | _ ->
        let p = parse_piece st ~params in
        (match peek st with
        | Semi -> advance st
        | Rbrace -> ()
        | _ -> fail "expected ; or }");
        pieces (p :: acc)
  in
  let ps = pieces [] in
  expect st Eof "end of input";
  ps

let set src =
  let pieces = parse_input src in
  Iset.of_bsets
    (List.concat_map
       (function
         | Set_piece bs -> bs
         | Map_piece _ -> fail "expected a set, found a map")
       pieces)

let map src =
  let pieces = parse_input src in
  Imap.of_bmaps
    (List.concat_map
       (function
         | Map_piece ms -> ms
         | Set_piece _ -> fail "expected a map, found a set")
       pieces)

let bset src =
  match Iset.pieces (set src) with
  | [ b ] -> b
  | _ -> fail "expected exactly one basic set"

let bmap src =
  match Imap.pieces (map src) with
  | [ m ] -> m
  | _ -> fail "expected exactly one basic map"
