type set_space = { params : string array; tuple : string; dims : string array }

type map_space = {
  params : string array;
  in_tuple : string;
  in_dims : string array;
  out_tuple : string;
  out_dims : string array;
}

let set_space ?(params = []) tuple dims =
  { params = Array.of_list params; tuple; dims = Array.of_list dims }

let map_space ?(params = []) in_tuple in_dims out_tuple out_dims =
  { params = Array.of_list params;
    in_tuple;
    in_dims = Array.of_list in_dims;
    out_tuple;
    out_dims = Array.of_list out_dims
  }

let merge_params p1 p2 =
  let extra =
    Array.to_list p2 |> List.filter (fun p -> not (Array.exists (( = ) p) p1))
  in
  Array.append p1 (Array.of_list extra)

let param_remap ~old_params ~new_params =
  Array.map
    (fun p ->
      let rec find i =
        if i >= Array.length new_params then invalid_arg "param_remap: missing"
        else if new_params.(i) = p then i
        else find (i + 1)
      in
      find 0)
    old_params

let same_set_space a b = a.tuple = b.tuple && Array.length a.dims = Array.length b.dims

let domain_of_map (m : map_space) =
  { params = m.params; tuple = m.in_tuple; dims = m.in_dims }

let range_of_map (m : map_space) =
  { params = m.params; tuple = m.out_tuple; dims = m.out_dims }

let reverse_map (m : map_space) =
  { m with
    in_tuple = m.out_tuple;
    in_dims = m.out_dims;
    out_tuple = m.in_tuple;
    out_dims = m.in_dims
  }
