type t = { dims : (int * int) list; params : (string * int) list; cst : int }

let zero = { dims = []; params = []; cst = 0 }

let const cst = { zero with cst }

let dim ?(coef = 1) i = { zero with dims = [ (i, coef) ] }

let param ?(coef = 1) p = { zero with params = [ (p, coef) ] }

let merge_assoc xs ys =
  let tbl = Hashtbl.create 8 in
  let note (k, v) =
    Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  List.iter note xs;
  List.iter note ys;
  Hashtbl.fold (fun k v acc -> if v = 0 then acc else (k, v) :: acc) tbl []

let add a b =
  { dims = merge_assoc a.dims b.dims;
    params = merge_assoc a.params b.params;
    cst = a.cst + b.cst
  }

let scale k a =
  if k = 0 then zero
  else
    { dims = List.map (fun (i, c) -> (i, k * c)) a.dims;
      params = List.map (fun (p, c) -> (p, k * c)) a.params;
      cst = k * a.cst
    }

let neg a = scale (-1) a

let sub a b = add a (neg b)

let add_const a k = { a with cst = a.cst + k }

let to_coef_row ~n_params ~param_index ~n_dims ~dim_offset ~width a =
  let row = Array.make width 0 in
  List.iter
    (fun (p, c) ->
      let i = param_index p in
      assert (i >= 0 && i < n_params);
      row.(i) <- row.(i) + c)
    a.params;
  List.iter
    (fun (d, c) ->
      assert (d >= 0 && d < n_dims);
      row.(dim_offset + d) <- row.(dim_offset + d) + c)
    a.dims;
  (row, a.cst)
