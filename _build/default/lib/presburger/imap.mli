(** Unions of basic maps, possibly over different tuple pairs (isl
    "union map"). *)

type t

val empty : t

val of_bmap : Bmap.t -> t

val of_bmaps : Bmap.t list -> t

val pieces : t -> Bmap.t list

val union : t -> t -> t

val union_all : t list -> t

val intersect : t -> t -> t

val subtract : t -> t -> t

val is_empty : t -> bool

val is_subset : t -> t -> bool

val is_equal : t -> t -> bool

val in_tuples : t -> string list

val filter_in_tuple : t -> string -> t

val filter_out_tuple : t -> string -> t

val coalesce : t -> t

val hull_compress : t -> t
(** Merge all pieces over the same tuple pair into their simple hull
    (sound over-approximation, exact for convex unions). *)

val domain : t -> Iset.t

val range : t -> Iset.t

val reverse : t -> t

val apply_range : t -> t -> t
(** Per-piece composition on matching tuples: [{i->k : exists j}]. *)

val apply_range_approx : t -> t -> t
(** Composition with per-piece rational fallback (see
    {!Bmap.apply_range_approx}). *)

val apply_set : Iset.t -> t -> Iset.t

val preimage_set : Iset.t -> t -> Iset.t

val intersect_domain : t -> Iset.t -> t

val intersect_range : t -> Iset.t -> t

val identity : Space.set_space -> t

val lex_lt : Space.set_space -> t
(** Strict lexicographic order on a single tuple space. *)

val lex_lt_first : Space.set_space -> int -> t
(** Lexicographic order restricted to the first [k] dimensions (equality
    on the earlier ones, strict on one of the first [k]). *)

val bind_params : t -> (string * int) list -> t

val card : t -> int

val to_string : t -> string
