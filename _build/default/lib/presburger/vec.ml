let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let gcd_list l = List.fold_left gcd 0 l

let gcd_array a = Array.fold_left gcd 0 a

let floor_div a b =
  assert (b > 0);
  if a >= 0 then a / b else -(((-a) + b - 1) / b)

let ceil_div a b =
  assert (b > 0);
  if a >= 0 then (a + b - 1) / b else -((-a) / b)

let add u v = Array.mapi (fun i x -> x + v.(i)) u

let sub u v = Array.mapi (fun i x -> x - v.(i)) u

let scale k u = Array.map (fun x -> k * x) u

let combine a u b v = Array.mapi (fun i x -> (a * x) + (b * v.(i))) u

let is_zero u = Array.for_all (fun x -> x = 0) u

let insert_zeros u ~pos ~count =
  let n = Array.length u in
  assert (pos >= 0 && pos <= n);
  Array.init (n + count) (fun i ->
      if i < pos then u.(i) else if i < pos + count then 0 else u.(i - count))

let remove u ~pos ~count =
  let n = Array.length u in
  assert (pos >= 0 && pos + count <= n);
  Array.init (n - count) (fun i -> if i < pos then u.(i) else u.(i + count))
