(** Named spaces for sets and maps.

    Column layout of the underlying constraints:
    - set:  [params; dims]
    - map:  [params; in_dims; out_dims]

    Operations are positional; names are used for printing, parsing and
    parameter alignment (parameters are matched by name, dimensions by
    position). *)

type set_space = { params : string array; tuple : string; dims : string array }

type map_space = {
  params : string array;
  in_tuple : string;
  in_dims : string array;
  out_tuple : string;
  out_dims : string array;
}

val set_space : ?params:string list -> string -> string list -> set_space

val map_space :
  ?params:string list -> string -> string list -> string -> string list -> map_space

val merge_params : string array -> string array -> string array
(** Stable union of two parameter lists. *)

val param_remap : old_params:string array -> new_params:string array -> int array
(** For each old parameter index, its index in [new_params]. *)

val same_set_space : set_space -> set_space -> bool
(** Same tuple name and dimension count (dimension names are ignored). *)

val domain_of_map : map_space -> set_space

val range_of_map : map_space -> set_space

val reverse_map : map_space -> map_space
