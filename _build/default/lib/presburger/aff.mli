(** Symbolic affine expressions used to build constraints and maps.

    Dimension references are positional indices into whichever dimension
    block the consuming constructor targets (a set's dims, or a map's
    input dims); parameters are referenced by name. *)

type t = { dims : (int * int) list; params : (string * int) list; cst : int }
(** [dims] maps dimension index to coefficient. *)

val zero : t

val const : int -> t

val dim : ?coef:int -> int -> t

val param : ?coef:int -> string -> t

val add : t -> t -> t

val sub : t -> t -> t

val neg : t -> t

val scale : int -> t -> t

val add_const : t -> int -> t

val to_coef_row :
  n_params:int -> param_index:(string -> int) -> n_dims:int -> dim_offset:int ->
  width:int -> t -> int array * int
(** Lower to a coefficient row of the given [width]: parameters land at
    their index, dimension [i] lands at [dim_offset + i]. Returns the row
    and the constant. *)
