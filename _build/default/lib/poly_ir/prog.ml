open Presburger

type array_decl = { array_name : string; extents : Aff.t list }

type index = { aff : Aff.t; div : int }

type access = { array : string; indices : index list; rel : Bmap.t }

type stmt = {
  stmt_name : string;
  nest : string;
  domain : Bset.t;
  write : access;
  reads : access list;
  compute : float array -> float;
  ops : int;
  guard : (int array -> bool) option;
  reduction_dims : int;
}

type t = {
  prog_name : string;
  params : (string * int) list;
  arrays : array_decl list;
  stmts : stmt list;
  live_out : string list;
}

let index ?(div = 1) aff =
  assert (div >= 1);
  { aff; div }

let mk_access ?(params = []) ~stmt_name ~dims ~array indices =
  let params_a = Array.of_list params in
  let np = Array.length params_a in
  let ni = List.length dims in
  let no = List.length indices in
  let w = np + ni + no in
  let param_index p =
    let rec find i =
      if i >= np then invalid_arg (Printf.sprintf "mk_access: unknown param %s" p)
      else if params_a.(i) = p then i
      else find (i + 1)
    in
    find 0
  in
  let mspace =
    Space.map_space ~params stmt_name dims array
      (List.mapi (fun j _ -> Printf.sprintf "a%d" j) indices)
  in
  let cstrs =
    List.concat
      (List.mapi
         (fun j { aff; div } ->
           let row, cst =
             Aff.to_coef_row ~n_params:np ~param_index ~n_dims:ni ~dim_offset:np
               ~width:w aff
           in
           if div = 1 then begin
             (* aff - out_j = 0 *)
             let r = Array.copy row in
             r.(np + ni + j) <- -1;
             [ Cstr.eq r cst ]
           end
           else begin
             (* div*out_j <= aff <= div*out_j + div - 1 *)
             let lo = Array.copy row in
             lo.(np + ni + j) <- -div;
             let hi = Vec.scale (-1) row in
             hi.(np + ni + j) <- div;
             [ Cstr.ge lo cst; Cstr.ge hi (div - 1 - cst) ]
           end)
         indices)
  in
  { array; indices; rel = Bmap.make mspace cstrs }

let mk_stmt ?guard ?(reduction_dims = 0) ?nest ~name ~domain ~write ~reads
    ~compute ~ops () =
  { stmt_name = name;
    nest = Option.value ~default:name nest;
    domain;
    write;
    reads;
    compute;
    ops;
    guard;
    reduction_dims
  }

let make ~name ~params ~arrays ~stmts ~live_out =
  { prog_name = name; params; arrays; stmts; live_out }

let find_stmt t name =
  match List.find_opt (fun s -> s.stmt_name = name) t.stmts with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "find_stmt: %s" name)

let find_array t name =
  match List.find_opt (fun a -> a.array_name = name) t.arrays with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "find_array: %s" name)

let param_names t = List.map fst t.params

let eval_aff_with_params params (a : Aff.t) pt =
  let v = ref a.Aff.cst in
  List.iter
    (fun (p, c) ->
      match List.assoc_opt p params with
      | Some x -> v := !v + (c * x)
      | None -> invalid_arg (Printf.sprintf "eval_aff: unbound param %s" p))
    a.Aff.params;
  List.iter (fun (d, c) -> v := !v + (c * pt.(d))) a.Aff.dims;
  !v

let array_extent t name =
  let a = find_array t name in
  List.map (fun e -> eval_aff_with_params t.params e [||]) a.extents

let stmt_index t name =
  let rec go i = function
    | [] -> invalid_arg (Printf.sprintf "stmt_index: %s" name)
    | s :: _ when s.stmt_name = name -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.stmts

let domain_card t s = Bset.card (Bset.bind_params s.domain t.params)

let writers_of t array =
  List.filter (fun s -> s.write.array = array) t.stmts

let readers_of t array =
  List.filter (fun s -> List.exists (fun a -> a.array = array) s.reads) t.stmts

let intermediate_arrays t =
  t.arrays
  |> List.filter_map (fun a ->
         if
           (not (List.mem a.array_name t.live_out))
           && writers_of t a.array_name <> []
         then Some a.array_name
         else None)

let eval_index_with_params params { aff; div } pt =
  let v = eval_aff_with_params params aff pt in
  if div = 1 then v else Vec.floor_div v div

let eval_index idx pt = eval_index_with_params [] idx pt

let validate t =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  let array_names = List.map (fun a -> a.array_name) t.arrays in
  List.iter
    (fun l ->
      if not (List.mem l array_names) then fail "live-out array %s undeclared" l)
    t.live_out;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if Hashtbl.mem seen s.stmt_name then fail "duplicate statement %s" s.stmt_name;
      Hashtbl.add seen s.stmt_name ();
      if Bset.tuple s.domain <> s.stmt_name then
        fail "statement %s: domain tuple mismatch" s.stmt_name;
      let check_access what (a : access) =
        if not (List.mem a.array array_names) then
          fail "statement %s: %s access to undeclared array %s" s.stmt_name what
            a.array;
        let decl = find_array t a.array in
        if List.length a.indices <> List.length decl.extents then
          fail "statement %s: %s access arity mismatch on %s" s.stmt_name what
            a.array;
        if (Bmap.space a.rel).Space.in_tuple <> s.stmt_name then
          fail "statement %s: %s access input tuple mismatch" s.stmt_name what;
        if Bmap.n_in a.rel <> Bset.n_dims s.domain then
          fail "statement %s: %s access input arity mismatch" s.stmt_name what
      in
      check_access "write" s.write;
      List.iter (check_access "read") s.reads;
      if s.reduction_dims < 0 || s.reduction_dims > Bset.n_dims s.domain then
        fail "statement %s: bad reduction_dims" s.stmt_name)
    t.stmts
