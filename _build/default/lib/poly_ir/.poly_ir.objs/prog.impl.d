lib/poly_ir/prog.ml: Aff Array Bmap Bset Cstr Hashtbl List Option Presburger Printf Space Vec
