lib/poly_ir/deps.mli: Bmap Imap Presburger Prog
