lib/poly_ir/deps.ml: Array Bmap Bset Cstr Fm Imap List Presburger Prog Vec
