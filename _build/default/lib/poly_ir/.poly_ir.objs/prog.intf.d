lib/poly_ir/prog.mli: Aff Bmap Bset Presburger
