(** Polyhedral program IR.

    A program is a textual sequence of statements; each statement is a
    perfect loop nest over a basic-set iteration domain, writing exactly
    one array element per instance and reading a fixed list of elements.
    This is the "multiple consecutive loop nests" setting of the paper:
    imperfect nests (e.g. an initialization statement inside a reduction
    nest) are modelled as separate consecutive nests, which preserves
    semantics because the split statements never interleave on the same
    element between loop iterations. *)

open Presburger

type array_decl = {
  array_name : string;
  extents : Aff.t list;  (** per-dimension extent, affine over the parameters *)
}

(** One output-dimension expression of an access: [floor(aff / div)];
    [div = 1] for ordinary affine accesses. *)
type index = { aff : Aff.t; div : int }

type access = {
  array : string;
  indices : index list;
  rel : Bmap.t;  (** statement instance -> array element, derived from [indices] *)
}

type stmt = {
  stmt_name : string;
  nest : string;
      (** original imperfect-nest tag: statements sharing it came from
          one loop nest and are kept together by the start-up fusion *)
  domain : Bset.t;  (** tuple name equals [stmt_name] *)
  write : access;
  reads : access list;
  compute : float array -> float;
      (** value to store, given the values of [reads] in order *)
  ops : int;  (** arithmetic operations per instance, for cost models *)
  guard : (int array -> bool) option;
      (** dynamic execution condition (opaque to the polyhedral analysis),
          used for while-loop style dynamic counted loops *)
  reduction_dims : int;
      (** trailing domain dimensions that are reduction (non-parallel)
          dimensions of this statement in isolation *)
}

type t = {
  prog_name : string;
  params : (string * int) list;  (** symbolic parameters with bound values *)
  arrays : array_decl list;
  stmts : stmt list;  (** textual order *)
  live_out : string list;  (** arrays read after the program ends *)
}

val index : ?div:int -> Aff.t -> index

val mk_access :
  ?params:string list -> stmt_name:string -> dims:string list -> array:string ->
  index list -> access
(** Build an access and its relation. Floor-divided indices produce the
    relational form [div*g <= aff <= div*g + div - 1]. *)

val mk_stmt :
  ?guard:(int array -> bool) -> ?reduction_dims:int -> ?nest:string ->
  name:string -> domain:Bset.t -> write:access -> reads:access list ->
  compute:(float array -> float) -> ops:int -> unit -> stmt

val make :
  name:string -> params:(string * int) list -> arrays:array_decl list ->
  stmts:stmt list -> live_out:string list -> t

val find_stmt : t -> string -> stmt

val find_array : t -> string -> array_decl

val array_extent : t -> string -> int list
(** Concrete extents under the program's parameter binding. *)

val param_names : t -> string list

val stmt_index : t -> string -> int
(** Position in textual order. *)

val domain_card : t -> stmt -> int
(** Instances of a statement under the parameter binding. *)

val writers_of : t -> string -> stmt list

val readers_of : t -> string -> stmt list

val intermediate_arrays : t -> string list
(** Arrays written by the program that are not live-out. *)

val eval_index : index -> int array -> int
(** Concrete array subscript for a statement instance (parameters must
    not occur; bind them into the domain/indices beforehand or avoid
    parameters in index expressions). *)

val eval_index_with_params : (string * int) list -> index -> int array -> int

val validate : t -> unit
(** Check structural invariants (tuple names, access arities, array
    names); raises [Invalid_argument] with a description on violation. *)
