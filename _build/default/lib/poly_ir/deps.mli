(** Memory-based dependence analysis over {!Prog.t}.

    The original execution order is: statements in textual order, each a
    complete nest; instances of a single statement in lexicographic
    order of their domain. *)

open Presburger

type kind = Raw | War | Waw

type t = {
  kind : kind;
  src : string;
  dst : string;
  array : string;
  rel : Imap.t;  (** src instance -> dst instance, non-empty *)
}

val compute : Prog.t -> t list

val raw_edges : t list -> (string * string) list
(** Producer-consumer statement pairs, without duplicates. *)

val between : t list -> src:string -> dst:string -> t list

val delta_bounds :
  Prog.t -> Bmap.t -> src_dim:int -> dst_dim:int -> int option * int option
(** Bounds of [dst_dim(target) - src_dim(source)] over a dependence
    relation piece, under the program's parameter binding. [None] means
    unbounded on that side. Falls back to the rational relaxation (safe:
    it can only widen the range) when exact elimination fails. *)

val sccs : Prog.t -> t list -> string list list
(** Strongly connected components of the statement dependence graph, in
    topological order (sources first); statements inside a component are
    in textual order. *)
