type t = {
  id : int;
  group : Fusion.group;
  writes : string list;
  reads : string list;
  live_out : bool;
}

let dedup l =
  List.fold_left (fun acc x -> if List.mem x acc then acc else acc @ [ x ]) [] l

let of_result (p : Prog.t) (r : Fusion.result) =
  List.mapi
    (fun id (g : Fusion.group) ->
      let stmts = List.map (Prog.find_stmt p) g.Fusion.stmts in
      let writes = dedup (List.map (fun s -> s.Prog.write.Prog.array) stmts) in
      let reads =
        dedup
          (List.concat_map
             (fun s -> List.map (fun (a : Prog.access) -> a.Prog.array) s.Prog.reads)
             stmts)
      in
      let live_out = List.exists (fun a -> List.mem a p.Prog.live_out) writes in
      { id; group = g; writes; reads; live_out })
    r.Fusion.groups

let find spaces id =
  match List.find_opt (fun s -> s.id = id) spaces with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Spaces.find: %d" id)

let consumers spaces s =
  List.filter
    (fun c -> c.id <> s.id && List.exists (fun a -> List.mem a c.reads) s.writes)
    spaces

let producers spaces s =
  List.filter
    (fun c -> c.id <> s.id && List.exists (fun a -> List.mem a s.reads) c.writes)
    spaces

let producer_closure spaces s =
  let rec go seen frontier =
    match frontier with
    | [] -> seen
    | x :: rest ->
        let new_producers =
          producers spaces x
          |> List.filter (fun c ->
                 (not c.live_out)
                 && (not (List.exists (fun y -> y.id = c.id) seen))
                 && c.id <> s.id)
        in
        go (seen @ new_producers) (rest @ new_producers)
  in
  go [] [ s ] |> List.sort (fun a b -> compare a.id b.id)
