(** Algorithm 1 of the paper: construct arbitrary tile shapes.

    Rectangular/parallelogram tiling is applied only to the live-out
    computation space; the memory footprints of each tile (relation (4))
    are composed with reversed write accesses (relation (5)) to obtain
    extension schedules (relation (6)) that tile the intermediate
    computation spaces — including overlapped tile shapes — without
    rescheduling and without non-affine constraints. *)

open Presburger

type extension = {
  space_id : int;
  ext_rel : Imap.t;
      (** tile coordinates -> intermediate statement instances; one piece
          per statement of the space *)
  via_arrays : string list;
      (** upwards-exposed arrays that induced this extension *)
  parents : int list;
      (** spaces whose footprints the derivation passed through
          ([-1] denotes the live-out space itself); used to cascade
          un-fusion decisions *)
}

type tiling = {
  liveout_id : int;
  tile_space : string;  (** tuple name of the tile coordinates *)
  tile_sizes : int array;  (** per band dimension of the live-out band *)
  tile_rel : Imap.t;  (** live-out statement instances -> tile coordinates *)
  m : int;  (** parallel dimensions of the tiling schedule, after capping *)
  extensions : extension list;  (** topological (producer-first) order *)
  untiled : int list;  (** spaces rejected by the [m > n] guard *)
}

val tile_relation :
  Prog.t -> Fusion.group -> name:string -> tile_sizes:int array -> Imap.t
(** The tiling schedule restricted to statement domains: instances ->
    tile coordinates (relation (2) of the paper, as a relation). *)

val footprint_of_tile : tile:int array -> Prog.t -> Imap.t -> Iset.t
(** Concrete image of one tile coordinate under a tile->X relation, with
    parameters bound (used by tests and the machine models). *)

val fused_stmts : extension -> string list
(** Statements actually scheduled by an extension (a space containing
    dynamically guarded statements is fused only partially). *)

val construct :
  ?recompute_limit:float -> Prog.t -> liveout:Spaces.t ->
  intermediates:Spaces.t list -> tile_sizes:int array ->
  parallelism_cap:int -> tiling
(** Run Algorithm 1 for one live-out space over its (transitive
    intermediate) producers. [intermediates] must be in topological
    order. The live-out band must be permutable; callers pass tile size 1
    on every dimension to express fusion-without-tiling (the equake
    case). [recompute_limit] (default 4.0) bounds the tolerated
    recomputation ratio of a fused statement (total instances across
    tiles vs its domain); beyond it the statement stays unfused -- the
    cost-model guard the AKG implementation couples with Algorithm 1. *)
