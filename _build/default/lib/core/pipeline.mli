(** End-to-end compilation pipeline: dependence analysis, start-up
    conservative fusion, Algorithm 1 (tile shapes), Algorithms 2-3
    (post-tiling fusion), producing a schedule tree.

    Also provides the baseline tiling-after-fusion flow used by the
    compared heuristics (minfuse/smartfuse/maxfuse/hybridfuse). *)

type target = Cpu | Gpu | Npu

val parallelism_cap : target -> int
(** 1 for CPUs (OpenMP), 2 for GPUs (blocks x threads), 2 for the NPU
    (Section III-C of the paper). *)

type compiled = {
  prog : Prog.t;
  deps : Deps.t list;
  spaces : Spaces.t list;
  plan : Post_tiling.plan;
  tree : Schedule_tree.t;
  startup : Fusion.result;
  search_steps : int;
}

val run :
  ?startup:Fusion.heuristic -> ?tile_size:int ->
  ?tile_sizes_for:(Spaces.t -> int array) -> ?fuse_reductions:bool ->
  ?fusable:(Spaces.t -> bool) -> ?recompute_limit:float -> target:target ->
  Prog.t -> compiled
(** The paper's flow. [startup] defaults to [Smartfuse], which at our
    statement granularity corresponds to the paper's nest-level
    conservative start-up (our IR splits imperfect nests into consecutive
    perfect nests). [tile_size] is the default edge for every band
    dimension (32) unless [tile_sizes_for] is given. *)

type baseline = {
  b_prog : Prog.t;
  b_result : Fusion.result;
  b_tree : Schedule_tree.t;
}

val run_heuristic :
  ?tile_size:int -> ?max_steps:int -> ?fuse_reductions:bool -> target:target ->
  Fusion.heuristic -> Prog.t -> baseline
(** Conventional tiling-after-fusion with the given heuristic:
    rectangular tiling applied to every permutable fusion group. *)
