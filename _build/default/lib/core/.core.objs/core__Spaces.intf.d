lib/core/spaces.mli: Fusion Prog
