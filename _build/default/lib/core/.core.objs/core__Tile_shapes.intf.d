lib/core/tile_shapes.mli: Fusion Imap Iset Presburger Prog Spaces
