lib/core/post_tiling.mli: Prog Schedule_tree Spaces Tile_shapes
