lib/core/tile_shapes.ml: Array Bmap Bset Build_tree Fm Fusion Imap Iset List Map Presburger Printf Prog Schedule_tree Space Spaces String
