lib/core/post_tiling.ml: Array Bmap Bset Build_tree Fusion Hashtbl Imap Iset List Option Presburger Prog Schedule_tree Spaces Tile_shapes
