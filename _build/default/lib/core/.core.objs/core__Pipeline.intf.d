lib/core/pipeline.mli: Deps Fusion Post_tiling Prog Schedule_tree Spaces
