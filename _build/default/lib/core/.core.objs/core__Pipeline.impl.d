lib/core/pipeline.ml: Array Build_tree Deps Fusion List Post_tiling Prog Schedule_tree Spaces
