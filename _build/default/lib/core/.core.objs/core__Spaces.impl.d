lib/core/spaces.ml: Fusion List Printf Prog
