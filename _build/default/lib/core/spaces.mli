(** Computation spaces: the fusion groups produced by the start-up
    (conservative) heuristic, classified into live-out and intermediate
    spaces (Section III of the paper). *)

type t = {
  id : int;  (** position in topological order *)
  group : Fusion.group;
  writes : string list;  (** arrays written by the space *)
  reads : string list;  (** arrays read by the space *)
  live_out : bool;
}

val of_result : Prog.t -> Fusion.result -> t list

val find : t list -> int -> t

val consumers : t list -> t -> t list
(** Spaces that read an array this space writes (excluding itself). *)

val producers : t list -> t -> t list
(** Spaces that write an array this space reads (excluding itself). *)

val producer_closure : t list -> t -> t list
(** Transitive producers of a space reached through intermediate spaces
    only, in topological (producer-first) order; excludes the space
    itself and any live-out space. *)
