(** Algorithms 2 and 3 of the paper: post-tiling fusion on schedule
    trees, generalized to multiple live-out computation spaces.

    A {!plan} records, for every computation space, whether it is tiled
    as a root (live-out spaces, plus intermediates that could not be
    fused anywhere and are recursively treated as live-out), or fused
    into one or more roots through extension schedules. Shared producers
    feeding several roots are fused only when their per-root instance
    sets are disjoint (no redundant computation, Fig. 6); otherwise they
    are un-fused, cascading to any extension derived through them. *)

type root = {
  tiling : Tile_shapes.tiling;
  fused_ids : int list;  (** spaces fused into this root, topological order *)
}

type plan = {
  roots : root list;  (** in topological order of their live-out space *)
  skipped : int list;  (** spaces whose original subtree is marked "skipped" *)
  residual : (int * string list) list;
      (** partially fused spaces and the statements that remain in their
          original nest (producers of dynamically guarded statements) *)
  standalone : int list;
      (** non-tilable spaces scheduled as-is, without tiling or fusion *)
}

val plan :
  ?fusable:(Spaces.t -> bool) -> ?recompute_limit:float -> Prog.t ->
  spaces:Spaces.t list -> tile_sizes_for:(Spaces.t -> int array) ->
  parallelism_cap:int -> plan
(** [fusable] excludes spaces from extension-based fusion (used to model
    Halide's manual schedules, which fix the compute_at decisions). *)

val to_tree : Prog.t -> spaces:Spaces.t list -> plan -> Schedule_tree.t
(** Algorithm 2: build the tiled-and-fused schedule tree (Fig. 5), with
    tile bands split from point bands, extension + sequence + filter
    nodes for fused intermediates, "skipped" marks on their original
    subtrees, and "kernel" marks on root tile bands. *)

val fused_into : plan -> int -> Tile_shapes.tiling list
(** The tilings a space is fused into (empty when standalone). *)
