(** Source-code backends (Section V of the paper): render a generated
    AST as OpenMP C, CUDA, or CCE-style code.

    - OpenMP: `#pragma omp parallel for` on the outermost coincident
      loop of each kernel, `#pragma ivdep` on the innermost coincident
      loop (the auto-vectorization enabler of Section V), local
      scratchpad declarations for staged arrays.
    - CUDA: one `__global__` kernel per kernel region; the first (up to)
      two coincident loops map to block indices, the next ones to thread
      indices; staged arrays become `__shared__` declarations.
    - CCE: operator-group pseudo-code for the DaVinci architecture with
      explicit DMA transfers between DDR, L1/UB buffers and the
      cube/vector units.

    The emitted text is for inspection and for building against the real
    toolchains elsewhere; in this repository programs execute through
    the interpreter and machine models. *)

val statement_macros : Prog.t -> string
(** C macro definitions giving each statement's computation, derived
    from its access lists (bodies are schematic: the interpreter holds
    the executable semantics). *)

val openmp : ?staged:string list -> Prog.t -> Ast.t -> string

val cuda : ?staged:string list -> Prog.t -> Ast.t -> string

val cce : ?staged:string list -> kind_of:(string -> [ `Cube | `Vector ]) ->
  Prog.t -> Ast.t -> string
