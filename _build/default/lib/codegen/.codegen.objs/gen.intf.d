lib/codegen/gen.mli: Ast Prog Schedule_tree
