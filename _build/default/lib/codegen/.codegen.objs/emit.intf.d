lib/codegen/emit.mli: Ast Prog
