lib/codegen/emit.ml: Ast Buffer List Presburger Printf Prog String
