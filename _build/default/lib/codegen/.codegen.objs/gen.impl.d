lib/codegen/gen.ml: Array Ast Bmap Bset Cstr Fm Hashtbl Imap Iset List Presburger Printf Prog Schedule_tree Space Vec
