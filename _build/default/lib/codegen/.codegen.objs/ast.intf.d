lib/codegen/ast.mli:
