lib/codegen/ast.ml: Buffer List Presburger Printf String
