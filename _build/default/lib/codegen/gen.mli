(** Polyhedral code generation: scan a schedule tree into a loop AST
    (Ancourt-Irigoin bound projection per band dimension, guards at the
    leaves for constraints not enforced by the loop bounds).

    "skipped" marks suppress their subtree (the post-tiling fusion
    protocol); "kernel" marks become {!Ast.Kernel} regions. *)

val generate : Prog.t -> Schedule_tree.t -> Ast.t
(** Raises [Invalid_argument] when a statement dimension is not
    functionally determined at a leaf (i.e. the tree under-schedules a
    statement). *)
