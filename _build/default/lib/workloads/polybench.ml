open Wl

(* ------------------------------------------------------------------ *)
(* 2mm                                                                 *)
(* ------------------------------------------------------------------ *)

let mm2 ?(ni = 64) ?(nj = 64) ?(nk = 64) ?(nl = 64) () =
  let params = [ "NI"; "NJ"; "NK"; "NL" ] in
  let nip = prm "NI" and njp = prm "NJ" and nkp = prm "NK" and nlp = prm "NL" in
  let one = cst 1 in
  let dom name bounds = box ~params name bounds in
  let acc stmt dims a idxs = access ~params ~stmt ~dims a idxs in
  let tinit =
    Prog.mk_stmt ~nest:"tmp" ~name:"tinit"
      ~domain:(dom "tinit" [ ("i", cst 0, nip -$ one); ("j", cst 0, njp -$ one) ])
      ~write:(acc "tinit" [ "i"; "j" ] "TMP" [ idx (dim 0); idx (dim 1) ])
      ~reads:[]
      ~compute:(fun _ -> 0.0)
      ~ops:1 ()
  in
  let tupd =
    Prog.mk_stmt ~nest:"tmp" ~name:"tupd" ~reduction_dims:1
      ~domain:
        (dom "tupd"
           [ ("i", cst 0, nip -$ one);
             ("j", cst 0, njp -$ one);
             ("k", cst 0, nkp -$ one)
           ])
      ~write:(acc "tupd" [ "i"; "j"; "k" ] "TMP" [ idx (dim 0); idx (dim 1) ])
      ~reads:
        [ acc "tupd" [ "i"; "j"; "k" ] "TMP" [ idx (dim 0); idx (dim 1) ];
          acc "tupd" [ "i"; "j"; "k" ] "A" [ idx (dim 0); idx (dim 2) ];
          acc "tupd" [ "i"; "j"; "k" ] "B" [ idx (dim 2); idx (dim 1) ]
        ]
      ~compute:(fun v -> v.(0) +. (1.5 *. v.(1) *. v.(2)))
      ~ops:3 ()
  in
  let dscale =
    Prog.mk_stmt ~nest:"d" ~name:"dscale"
      ~domain:(dom "dscale" [ ("i", cst 0, nip -$ one); ("j", cst 0, nlp -$ one) ])
      ~write:(acc "dscale" [ "i"; "j" ] "D" [ idx (dim 0); idx (dim 1) ])
      ~reads:[ acc "dscale" [ "i"; "j" ] "D" [ idx (dim 0); idx (dim 1) ] ]
      ~compute:(fun v -> 1.2 *. v.(0))
      ~ops:1 ()
  in
  let dupd =
    Prog.mk_stmt ~nest:"d" ~name:"dupd" ~reduction_dims:1
      ~domain:
        (dom "dupd"
           [ ("i", cst 0, nip -$ one);
             ("j", cst 0, nlp -$ one);
             ("k", cst 0, njp -$ one)
           ])
      ~write:(acc "dupd" [ "i"; "j"; "k" ] "D" [ idx (dim 0); idx (dim 1) ])
      ~reads:
        [ acc "dupd" [ "i"; "j"; "k" ] "D" [ idx (dim 0); idx (dim 1) ];
          acc "dupd" [ "i"; "j"; "k" ] "TMP" [ idx (dim 0); idx (dim 2) ];
          acc "dupd" [ "i"; "j"; "k" ] "C" [ idx (dim 2); idx (dim 1) ]
        ]
      ~compute:(fun v -> v.(0) +. (v.(1) *. v.(2)))
      ~ops:2 ()
  in
  Prog.make ~name:"2mm"
    ~params:[ ("NI", ni); ("NJ", nj); ("NK", nk); ("NL", nl) ]
    ~arrays:
      [ arr "A" [ nip; nkp ];
        arr "B" [ nkp; njp ];
        arr "C" [ njp; nlp ];
        arr "TMP" [ nip; njp ];
        arr "D" [ nip; nlp ]
      ]
    ~stmts:[ tinit; tupd; dscale; dupd ] ~live_out:[ "D" ]

(* ------------------------------------------------------------------ *)
(* gemver                                                              *)
(* ------------------------------------------------------------------ *)

let gemver ?(n = 256) () =
  let params = [ "N" ] in
  let np = prm "N" in
  let one = cst 1 in
  let dom name bounds = box ~params name bounds in
  let acc stmt dims a idxs = access ~params ~stmt ~dims a idxs in
  let s1 =
    Prog.mk_stmt ~name:"ahat"
      ~domain:(dom "ahat" [ ("i", cst 0, np -$ one); ("j", cst 0, np -$ one) ])
      ~write:(acc "ahat" [ "i"; "j" ] "AH" [ idx (dim 0); idx (dim 1) ])
      ~reads:
        [ acc "ahat" [ "i"; "j" ] "A" [ idx (dim 0); idx (dim 1) ];
          acc "ahat" [ "i"; "j" ] "U1" [ idx (dim 0) ];
          acc "ahat" [ "i"; "j" ] "V1" [ idx (dim 1) ];
          acc "ahat" [ "i"; "j" ] "U2" [ idx (dim 0) ];
          acc "ahat" [ "i"; "j" ] "V2" [ idx (dim 1) ]
        ]
      ~compute:(fun v -> v.(0) +. (v.(1) *. v.(2)) +. (v.(3) *. v.(4)))
      ~ops:4 ()
  in
  let xinit =
    Prog.mk_stmt ~nest:"x" ~name:"xinit"
      ~domain:(dom "xinit" [ ("i", cst 0, np -$ one) ])
      ~write:(acc "xinit" [ "i" ] "X" [ idx (dim 0) ])
      ~reads:[]
      ~compute:(fun _ -> 0.0)
      ~ops:1 ()
  in
  let xupd =
    Prog.mk_stmt ~nest:"x" ~name:"xupd" ~reduction_dims:1
      ~domain:(dom "xupd" [ ("i", cst 0, np -$ one); ("j", cst 0, np -$ one) ])
      ~write:(acc "xupd" [ "i"; "j" ] "X" [ idx (dim 0) ])
      ~reads:
        [ acc "xupd" [ "i"; "j" ] "X" [ idx (dim 0) ];
          acc "xupd" [ "i"; "j" ] "AH" [ idx (dim 1); idx (dim 0) ];
          acc "xupd" [ "i"; "j" ] "Y" [ idx (dim 1) ]
        ]
      ~compute:(fun v -> v.(0) +. (1.1 *. v.(1) *. v.(2)))
      ~ops:3 ()
  in
  let xadd =
    Prog.mk_stmt ~name:"xadd"
      ~domain:(dom "xadd" [ ("i", cst 0, np -$ one) ])
      ~write:(acc "xadd" [ "i" ] "X" [ idx (dim 0) ])
      ~reads:
        [ acc "xadd" [ "i" ] "X" [ idx (dim 0) ];
          acc "xadd" [ "i" ] "Z" [ idx (dim 0) ]
        ]
      ~compute:(fun v -> v.(0) +. v.(1))
      ~ops:1 ()
  in
  let winit =
    Prog.mk_stmt ~nest:"w" ~name:"winit"
      ~domain:(dom "winit" [ ("i", cst 0, np -$ one) ])
      ~write:(acc "winit" [ "i" ] "W" [ idx (dim 0) ])
      ~reads:[]
      ~compute:(fun _ -> 0.0)
      ~ops:1 ()
  in
  let wupd =
    Prog.mk_stmt ~nest:"w" ~name:"wupd" ~reduction_dims:1
      ~domain:(dom "wupd" [ ("i", cst 0, np -$ one); ("j", cst 0, np -$ one) ])
      ~write:(acc "wupd" [ "i"; "j" ] "W" [ idx (dim 0) ])
      ~reads:
        [ acc "wupd" [ "i"; "j" ] "W" [ idx (dim 0) ];
          acc "wupd" [ "i"; "j" ] "AH" [ idx (dim 0); idx (dim 1) ];
          acc "wupd" [ "i"; "j" ] "X" [ idx (dim 1) ]
        ]
      ~compute:(fun v -> v.(0) +. (1.3 *. v.(1) *. v.(2)))
      ~ops:3 ()
  in
  Prog.make ~name:"gemver" ~params:[ ("N", n) ]
    ~arrays:
      [ arr "A" [ np; np ];
        arr "AH" [ np; np ];
        arr "U1" [ np ];
        arr "V1" [ np ];
        arr "U2" [ np ];
        arr "V2" [ np ];
        arr "X" [ np ];
        arr "Y" [ np ];
        arr "Z" [ np ];
        arr "W" [ np ]
      ]
    ~stmts:[ s1; xinit; xupd; xadd; winit; wupd ]
    ~live_out:[ "W" ]

(* ------------------------------------------------------------------ *)
(* covariance                                                          *)
(* ------------------------------------------------------------------ *)

let covariance ?(n = 128) ?(m = 64) () =
  let params = [ "N"; "M" ] in
  let np = prm "N" and mp = prm "M" in
  let one = cst 1 in
  let nf = float_of_int n in
  let dom name bounds = box ~params name bounds in
  let acc stmt dims a idxs = access ~params ~stmt ~dims a idxs in
  let minit =
    Prog.mk_stmt ~nest:"mean" ~name:"minit"
      ~domain:(dom "minit" [ ("j", cst 0, mp -$ one) ])
      ~write:(acc "minit" [ "j" ] "MEAN" [ idx (dim 0) ])
      ~reads:[]
      ~compute:(fun _ -> 0.0)
      ~ops:1 ()
  in
  let mupd =
    Prog.mk_stmt ~nest:"mean" ~name:"mupd" ~reduction_dims:1
      ~domain:(dom "mupd" [ ("j", cst 0, mp -$ one); ("i", cst 0, np -$ one) ])
      ~write:(acc "mupd" [ "j"; "i" ] "MEAN" [ idx (dim 0) ])
      ~reads:
        [ acc "mupd" [ "j"; "i" ] "MEAN" [ idx (dim 0) ];
          acc "mupd" [ "j"; "i" ] "DATA" [ idx (dim 1); idx (dim 0) ]
        ]
      ~compute:(fun v -> v.(0) +. v.(1))
      ~ops:1 ()
  in
  let mdiv =
    Prog.mk_stmt ~name:"mdiv"
      ~domain:(dom "mdiv" [ ("j", cst 0, mp -$ one) ])
      ~write:(acc "mdiv" [ "j" ] "MEAN" [ idx (dim 0) ])
      ~reads:[ acc "mdiv" [ "j" ] "MEAN" [ idx (dim 0) ] ]
      ~compute:(fun v -> v.(0) /. nf)
      ~ops:1 ()
  in
  let center =
    Prog.mk_stmt ~name:"center"
      ~domain:(dom "center" [ ("i", cst 0, np -$ one); ("j", cst 0, mp -$ one) ])
      ~write:(acc "center" [ "i"; "j" ] "DATA" [ idx (dim 0); idx (dim 1) ])
      ~reads:
        [ acc "center" [ "i"; "j" ] "DATA" [ idx (dim 0); idx (dim 1) ];
          acc "center" [ "i"; "j" ] "MEAN" [ idx (dim 1) ]
        ]
      ~compute:(fun v -> v.(0) -. v.(1))
      ~ops:1 ()
  in
  let cinit =
    Prog.mk_stmt ~nest:"cov" ~name:"cinit"
      ~domain:(dom "cinit" [ ("j", cst 0, mp -$ one); ("k", cst 0, mp -$ one) ])
      ~write:(acc "cinit" [ "j"; "k" ] "COV" [ idx (dim 0); idx (dim 1) ])
      ~reads:[]
      ~compute:(fun _ -> 0.0)
      ~ops:1 ()
  in
  let cupd =
    Prog.mk_stmt ~nest:"cov" ~name:"cupd" ~reduction_dims:1
      ~domain:
        (dom "cupd"
           [ ("j", cst 0, mp -$ one);
             ("k", cst 0, mp -$ one);
             ("i", cst 0, np -$ one)
           ])
      ~write:(acc "cupd" [ "j"; "k"; "i" ] "COV" [ idx (dim 0); idx (dim 1) ])
      ~reads:
        [ acc "cupd" [ "j"; "k"; "i" ] "COV" [ idx (dim 0); idx (dim 1) ];
          acc "cupd" [ "j"; "k"; "i" ] "DATA" [ idx (dim 2); idx (dim 0) ];
          acc "cupd" [ "j"; "k"; "i" ] "DATA" [ idx (dim 2); idx (dim 1) ]
        ]
      ~compute:(fun v -> v.(0) +. (v.(1) *. v.(2)))
      ~ops:2 ()
  in
  let cdiv =
    Prog.mk_stmt ~name:"cdiv"
      ~domain:(dom "cdiv" [ ("j", cst 0, mp -$ one); ("k", cst 0, mp -$ one) ])
      ~write:(acc "cdiv" [ "j"; "k" ] "COV" [ idx (dim 0); idx (dim 1) ])
      ~reads:[ acc "cdiv" [ "j"; "k" ] "COV" [ idx (dim 0); idx (dim 1) ] ]
      ~compute:(fun v -> v.(0) /. (nf -. 1.0))
      ~ops:1 ()
  in
  Prog.make ~name:"covariance" ~params:[ ("N", n); ("M", m) ]
    ~arrays:[ arr "DATA" [ np; mp ]; arr "MEAN" [ mp ]; arr "COV" [ mp; mp ] ]
    ~stmts:[ minit; mupd; mdiv; center; cinit; cupd; cdiv ]
    ~live_out:[ "COV" ]
