lib/workloads/competitors.mli: Core Prog
