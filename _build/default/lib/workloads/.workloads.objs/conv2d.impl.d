lib/workloads/conv2d.ml: Array Float Prog Wl
