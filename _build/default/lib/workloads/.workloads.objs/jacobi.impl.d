lib/workloads/jacobi.ml: Array List Pipe Printf Wl
