lib/workloads/wl.mli: Aff Bset Presburger Prog
