lib/workloads/polymage.mli: Prog
