lib/workloads/wl.ml: Aff Array Bset Cstr List Presburger Printf Prog Space
