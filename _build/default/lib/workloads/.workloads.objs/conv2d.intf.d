lib/workloads/conv2d.mli: Prog
