lib/workloads/registry.ml: Conv2d Equake Jacobi List Polybench Polymage Printf Prog Resnet String
