lib/workloads/random_pipeline.ml: Array List Pipe Presburger Printf Prog String Wl
