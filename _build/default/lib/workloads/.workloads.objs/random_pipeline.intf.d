lib/workloads/random_pipeline.mli: Prog
