lib/workloads/jacobi.mli: Prog
