lib/workloads/resnet.mli: Npu_model Prog
