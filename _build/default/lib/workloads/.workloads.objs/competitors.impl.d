lib/workloads/competitors.ml: Array Bmap Core Cstr Fusion Imap List Presburger Prog Space String Vec
