lib/workloads/equake.ml: Array Prog Wl
