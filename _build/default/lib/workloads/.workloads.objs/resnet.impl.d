lib/workloads/resnet.ml: Array Float List Npu_model Pipe Printf Prog String Wl
