lib/workloads/pipe.mli: Aff Presburger Prog
