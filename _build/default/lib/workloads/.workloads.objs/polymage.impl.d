lib/workloads/polymage.ml: Array Float List Pipe Printf String Wl
