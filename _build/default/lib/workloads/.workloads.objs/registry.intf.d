lib/workloads/registry.mli: Prog
