lib/workloads/pipe.ml: Aff List Presburger Printf Prog Wl
