lib/workloads/polybench.mli: Prog
