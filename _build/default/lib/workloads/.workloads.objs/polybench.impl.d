lib/workloads/polybench.ml: Array Prog Wl
