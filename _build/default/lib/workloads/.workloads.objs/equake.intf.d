lib/workloads/equake.mli: Prog
