open Presburger

let dim = Aff.dim

let cst = Aff.const

let prm p = Aff.param p

let ( +$ ) = Aff.add

let ( -$ ) = Aff.sub

let ( *$ ) = Aff.scale

let box ?(params = []) name bounds =
  let params_a = Array.of_list params in
  let np = Array.length params_a in
  let nd = List.length bounds in
  let w = np + nd in
  let param_index p =
    let rec find i =
      if i >= np then invalid_arg (Printf.sprintf "Wl.box: unknown param %s" p)
      else if params_a.(i) = p then i
      else find (i + 1)
    in
    find 0
  in
  let row a =
    Aff.to_coef_row ~n_params:np ~param_index ~n_dims:nd ~dim_offset:np ~width:w a
  in
  let cstrs =
    List.concat
      (List.mapi
         (fun d (_, lo, hi) ->
           let lo_row, lo_cst = row (Aff.sub (Aff.dim d) lo) in
           let hi_row, hi_cst = row (Aff.sub hi (Aff.dim d)) in
           [ Cstr.ge lo_row lo_cst; Cstr.ge hi_row hi_cst ])
         bounds)
  in
  Bset.make (Space.set_space ~params name (List.map (fun (n, _, _) -> n) bounds)) cstrs

let access ?(params = []) ~stmt ~dims array indices =
  Prog.mk_access ~params ~stmt_name:stmt ~dims ~array indices

let arr name extents = { Prog.array_name = name; extents }

let idx ?div a = Prog.index ?div a
