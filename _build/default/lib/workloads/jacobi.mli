(** Time-unrolled Jacobi stencil (Section IV-D of the paper).

    Post-tiling fusion requires producer-consumer relations *across*
    loop nests, so a single time-iterated stencil nest is out of scope —
    but unrolling the time dimension turns each time step into its own
    nest with exactly such relations, and the flow then fuses the steps
    with overlapped tiles (tile-wise concurrent start). *)

val build : ?n:int -> ?steps:int -> unit -> Prog.t
(** [steps] unrolled 1D Jacobi-3 sweeps over an [n]-point line; the
    final step's array is live-out. *)
