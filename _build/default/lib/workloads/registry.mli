(** Named workload registry used by the CLI, examples and benches. *)

type entry = {
  reg_name : string;
  description : string;
  build : unit -> Prog.t;  (** benchmark-scale instance *)
  small : unit -> Prog.t;  (** reduced instance for tests/CI *)
}

val all : entry list

val find : string -> entry

val names : string list
