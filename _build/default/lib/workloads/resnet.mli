(** A forward ResNet-50-style layer chain for the NPU experiment
    (Table III): blocks of [conv -> batchnorm scale/shift -> ReLU], with
    spatial down-sampling between stages, at reduced channel counts.

    Channels are explicit array dimensions; the convolution reduces over
    the kernel window and input channels. Layer shapes sample the four
    ResNet stages (56/28/14/7 spatial at scaled-down channel widths). *)

type block = {
  blk_name : string;
  height : int;
  width : int;
  c_in : int;
  c_out : int;
  ksize : int;
}

val default_blocks : unit -> block list
(** Representative blocks sampling the ResNet-50 stages. *)

val build : ?blocks:block list -> unit -> Prog.t
(** The chained program: each block reads the previous block's ReLU
    output; the final output is live-out. *)

val layer : ?with_relu:bool -> block -> Prog.t
(** One block (conv + batchnorm + ReLU) as its own operator-group
    program, the granularity at which the AKG flow compiles;
    [with_relu:false] gives the conv+batchnorm subset Table III reports
    separately. *)

val unit_kind : string -> Npu_model.unit_kind
(** Cube for convolutions, Vector for batchnorm/ReLU statements. *)

val conv_bn_stmts : Prog.t -> string list
(** Names of the forward convolution + batch normalization statements
    (the subset Table III reports separately). *)
