open Wl

type size = Test | Train | Ref

let size_nodes = function Test -> 4096 | Train -> 8192 | Ref -> 16384

let maxnz = 16

let rowlen i = 4 + (i mod (maxnz - 4))

let build_gen ~split ?(size = Test) () =
  let n = size_nodes size in
  let params = [ "N"; "MAXNZ" ] in
  let np = prm "N" and nzp = prm "MAXNZ" in
  let one = cst 1 in
  let dom name bounds = box ~params name bounds in
  let acc stmt dims a idxs = access ~params ~stmt ~dims a idxs in
  let nest_of component = if split then component else "spmv" in
  let rinit =
    Prog.mk_stmt ~nest:(nest_of "rinit") ~name:"rinit"
      ~domain:(dom "rinit" [ ("i", cst 0, np -$ one) ])
      ~write:(acc "rinit" [ "i" ] "R" [ idx (dim 0) ])
      ~reads:[]
      ~compute:(fun _ -> 0.0)
      ~ops:1 ()
  in
  (* the while loop: affine superset j < MAXNZ, dynamic bound rowlen i *)
  let rupd =
    Prog.mk_stmt ~nest:(nest_of "rupd") ~name:"rupd" ~reduction_dims:1
      ~guard:(fun inst -> inst.(1) < rowlen inst.(0))
      ~domain:(dom "rupd" [ ("i", cst 0, np -$ one); ("j", cst 0, nzp -$ one) ])
      ~write:(acc "rupd" [ "i"; "j" ] "R" [ idx (dim 0) ])
      ~reads:
        [ acc "rupd" [ "i"; "j" ] "R" [ idx (dim 0) ];
          acc "rupd" [ "i"; "j" ] "K" [ idx (dim 0); idx (dim 1) ];
          acc "rupd" [ "i"; "j" ] "V" [ idx (dim 0 +$ dim 1) ]
        ]
      ~compute:(fun v -> v.(0) +. (v.(1) *. v.(2)))
      ~ops:2 ()
  in
  let gather =
    Prog.mk_stmt ~nest:(nest_of "gather") ~name:"gather"
      ~domain:(dom "gather" [ ("i", cst 0, np -$ one) ])
      ~write:(acc "gather" [ "i" ] "SM" [ idx (dim 0) ])
      ~reads:
        [ acc "gather" [ "i" ] "R" [ idx (dim 0) ];
          acc "gather" [ "i" ] "M" [ idx (dim 0) ]
        ]
      ~compute:(fun v -> v.(0) /. (v.(1) +. 1.0))
      ~ops:2 ()
  in
  (* follow-up affine nests on the mesh state *)
  let disp =
    Prog.mk_stmt ~name:"disp"
      ~domain:(dom "disp" [ ("i", cst 0, np -$ one) ])
      ~write:(acc "disp" [ "i" ] "DISP" [ idx (dim 0) ])
      ~reads:
        [ acc "disp" [ "i" ] "SM" [ idx (dim 0) ];
          acc "disp" [ "i" ] "C" [ idx (dim 0) ]
        ]
      ~compute:(fun v -> (2.0 *. v.(0)) -. v.(1))
      ~ops:2 ()
  in
  let vel =
    Prog.mk_stmt ~name:"vel"
      ~domain:(dom "vel" [ ("i", cst 0, np -$ one) ])
      ~write:(acc "vel" [ "i" ] "VEL" [ idx (dim 0) ])
      ~reads:
        [ acc "vel" [ "i" ] "VEL" [ idx (dim 0) ];
          acc "vel" [ "i" ] "DISP" [ idx (dim 0) ]
        ]
      ~compute:(fun v -> v.(0) +. (0.01 *. v.(1)))
      ~ops:2 ()
  in
  let pos =
    Prog.mk_stmt ~name:"pos"
      ~domain:(dom "pos" [ ("i", cst 0, np -$ one) ])
      ~write:(acc "pos" [ "i" ] "POS" [ idx (dim 0) ])
      ~reads:
        [ acc "pos" [ "i" ] "POS" [ idx (dim 0) ];
          acc "pos" [ "i" ] "VEL" [ idx (dim 0) ]
        ]
      ~compute:(fun v -> v.(0) +. (0.01 *. v.(1)))
      ~ops:2 ()
  in
  Prog.make
    ~name:(if split then "equake_permuted" else "equake")
    ~params:[ ("N", n); ("MAXNZ", maxnz) ]
    ~arrays:
      [ arr "K" [ np; nzp ];
        arr "V" [ np +$ nzp ];
        arr "R" [ np ];
        arr "M" [ np ];
        arr "SM" [ np ];
        arr "C" [ np ];
        arr "DISP" [ np ];
        arr "VEL" [ np ];
        arr "POS" [ np ]
      ]
    ~stmts:[ rinit; rupd; gather; disp; vel; pos ]
    ~live_out:[ "POS" ]

let build ?size () = build_gen ~split:false ?size ()

let build_permuted ?size () = build_gen ~split:true ?size ()
