open Wl

let avg n v =
  let s = ref 0.0 in
  Array.iter (fun x -> s := !s +. x) v;
  !s /. float_of_int n

(* n-tap 1D stencil reads along dimension [along] *)
let taps1d array ~along ~ndims ~n =
  List.init n (fun k ->
      ( array,
        List.init ndims (fun d ->
            if d = along then idx (dim d +$ cst k) else idx (dim d)) ))

(* full 2D stencil reads (n x n) on dims 0,1 *)
let taps2d array ~n =
  List.concat_map
    (fun kh ->
      List.init n (fun kw ->
          (array, [ idx (dim 0 +$ cst kh); idx (dim 1 +$ cst kw) ])))
    (List.init n (fun i -> i))

(* ------------------------------------------------------------------ *)
(* Unsharp Mask: 4 stages                                              *)
(* ------------------------------------------------------------------ *)

let unsharp_mask ?(h = 256) ?(w = 256) () =
  let t = Pipe.create "unsharp_mask" ~params:[ ("H", h); ("W", w) ] in
  let hh = prm "H" and ww = prm "W" in
  Pipe.input t "IMG" [ hh; ww ];
  Pipe.stage t ~name:"blurx" ~out:"BX"
    ~extents:[ hh; ww -$ cst 4 ]
    ~reads:(taps1d "IMG" ~along:1 ~ndims:2 ~n:5)
    ~ops:5 ~compute:(avg 5) ();
  Pipe.stage t ~name:"blury" ~out:"BY"
    ~extents:[ hh -$ cst 4; ww -$ cst 4 ]
    ~reads:(taps1d "BX" ~along:0 ~ndims:2 ~n:5)
    ~ops:5 ~compute:(avg 5) ();
  Pipe.stage t ~name:"sharpen" ~out:"SH"
    ~extents:[ hh -$ cst 4; ww -$ cst 4 ]
    ~reads:
      [ ("IMG", [ idx (dim 0 +$ cst 2); idx (dim 1 +$ cst 2) ]);
        ("BY", [ idx (dim 0); idx (dim 1) ])
      ]
    ~ops:3
    ~compute:(fun v -> v.(0) +. (3.0 *. (v.(0) -. v.(1))))
    ();
  Pipe.stage t ~name:"mask" ~out:"MSK"
    ~extents:[ hh -$ cst 4; ww -$ cst 4 ]
    ~reads:
      [ ("IMG", [ idx (dim 0 +$ cst 2); idx (dim 1 +$ cst 2) ]);
        ("BY", [ idx (dim 0); idx (dim 1) ]);
        ("SH", [ idx (dim 0); idx (dim 1) ])
      ]
    ~ops:3
    ~compute:(fun v -> if Float.abs (v.(0) -. v.(1)) < 0.5 then v.(0) else v.(2))
    ();
  Pipe.finish t ~live_out:[ "MSK" ]

(* ------------------------------------------------------------------ *)
(* Harris corner detection: 11 stages                                  *)
(* ------------------------------------------------------------------ *)

let harris ?(h = 256) ?(w = 256) () =
  let t = Pipe.create "harris" ~params:[ ("H", h); ("W", w) ] in
  let hh = prm "H" and ww = prm "W" in
  Pipe.input t "R" [ hh; ww ];
  Pipe.input t "G" [ hh; ww ];
  Pipe.input t "B" [ hh; ww ];
  Pipe.stage t ~name:"gray" ~out:"GRAY" ~extents:[ hh; ww ]
    ~reads:
      [ ("R", [ idx (dim 0); idx (dim 1) ]);
        ("G", [ idx (dim 0); idx (dim 1) ]);
        ("B", [ idx (dim 0); idx (dim 1) ])
      ]
    ~ops:3
    ~compute:(fun v -> (0.299 *. v.(0)) +. (0.587 *. v.(1)) +. (0.114 *. v.(2)))
    ();
  let sobel name signs =
    (* 3x3 stencil with +/- row or column weights *)
    Pipe.stage t ~name ~out:(String.uppercase_ascii name)
      ~extents:[ hh -$ cst 2; ww -$ cst 2 ]
      ~reads:(taps2d "GRAY" ~n:3) ~ops:9
      ~compute:(fun v ->
        let s = ref 0.0 in
        List.iteri (fun i c -> s := !s +. (c *. v.(i))) signs;
        !s /. 8.0)
      ()
  in
  sobel "ix" [ -1.; 0.; 1.; -2.; 0.; 2.; -1.; 0.; 1. ];
  sobel "iy" [ -1.; -2.; -1.; 0.; 0.; 0.; 1.; 2.; 1. ];
  let prod name a b =
    Pipe.stage t ~name ~out:(String.uppercase_ascii name)
      ~extents:[ hh -$ cst 2; ww -$ cst 2 ]
      ~reads:[ (a, [ idx (dim 0); idx (dim 1) ]); (b, [ idx (dim 0); idx (dim 1) ]) ]
      ~ops:1
      ~compute:(fun v -> v.(0) *. v.(1))
      ()
  in
  prod "ixx" "IX" "IX";
  prod "ixy" "IX" "IY";
  prod "iyy" "IY" "IY";
  let sum33 name src =
    Pipe.stage t ~name ~out:(String.uppercase_ascii name)
      ~extents:[ hh -$ cst 4; ww -$ cst 4 ]
      ~reads:(taps2d src ~n:3) ~ops:9
      ~compute:(fun v -> Array.fold_left ( +. ) 0.0 v)
      ()
  in
  sum33 "sxx" "IXX";
  sum33 "sxy" "IXY";
  sum33 "syy" "IYY";
  Pipe.stage t ~name:"det" ~out:"DET"
    ~extents:[ hh -$ cst 4; ww -$ cst 4 ]
    ~reads:
      [ ("SXX", [ idx (dim 0); idx (dim 1) ]);
        ("SYY", [ idx (dim 0); idx (dim 1) ]);
        ("SXY", [ idx (dim 0); idx (dim 1) ])
      ]
    ~ops:3
    ~compute:(fun v -> (v.(0) *. v.(1)) -. (v.(2) *. v.(2)))
    ();
  Pipe.stage t ~name:"harris" ~out:"HARRIS"
    ~extents:[ hh -$ cst 4; ww -$ cst 4 ]
    ~reads:
      [ ("DET", [ idx (dim 0); idx (dim 1) ]);
        ("SXX", [ idx (dim 0); idx (dim 1) ]);
        ("SYY", [ idx (dim 0); idx (dim 1) ])
      ]
    ~ops:4
    ~compute:(fun v ->
      let tr = v.(1) +. v.(2) in
      v.(0) -. (0.04 *. tr *. tr))
    ();
  Pipe.finish t ~live_out:[ "HARRIS" ]

(* ------------------------------------------------------------------ *)
(* Bilateral grid: grid reduction + 3 blurs + slice                    *)
(* ------------------------------------------------------------------ *)

let bilateral_grid ?(h = 256) ?(w = 256) () =
  (* grid cell 8x8, intensity bins Z = 8 *)
  let gh = h / 8 and gw = w / 8 in
  let t =
    Pipe.create "bilateral_grid"
      ~params:[ ("GH", gh); ("GW", gw); ("Z", 8) ]
  in
  let ghp = prm "GH" and gwp = prm "GW" and z = prm "Z" in
  Pipe.input t "IMG" [ 8 *$ ghp; 8 *$ gwp ];
  (* grid construction: scatter of the 8x8 block into each bin, weighted
     by the distance between the pixel intensity and the bin center *)
  Pipe.reduction t ~name:"grid" ~out:"GRID"
    ~extents:[ ghp; gwp; z ]
    ~red_dims:[ ("dh", cst 8); ("dw", cst 8) ]
    ~reads:[ ("IMG", [ idx ((8 *$ dim 0) +$ dim 3); idx ((8 *$ dim 1) +$ dim 4) ]) ]
    ~ops:4
    ~combine:(fun v ->
      let pixel = v.(1) in
      v.(0) +. (1.0 /. (1.0 +. Float.abs (pixel -. 4.0))))
    ();
  Pipe.stage t ~name:"blurz" ~out:"BZ"
    ~extents:[ ghp; gwp; z -$ cst 2 ]
    ~reads:(taps1d "GRID" ~along:2 ~ndims:3 ~n:3)
    ~ops:3 ~compute:(avg 3) ();
  Pipe.stage t ~name:"blurx" ~out:"BXG"
    ~extents:[ ghp -$ cst 2; gwp; z -$ cst 2 ]
    ~reads:(taps1d "BZ" ~along:0 ~ndims:3 ~n:3)
    ~ops:3 ~compute:(avg 3) ();
  Pipe.stage t ~name:"blury" ~out:"BYG"
    ~extents:[ ghp -$ cst 2; gwp -$ cst 2; z -$ cst 2 ]
    ~reads:(taps1d "BXG" ~along:1 ~ndims:3 ~n:3)
    ~ops:3 ~compute:(avg 3) ();
  (* slice back to full resolution: trilinear-style interpolation of the
     blurred grid at the pixel's cell, probing three intensity bins *)
  Pipe.stage t ~name:"slice" ~out:"OUT"
    ~extents:[ (8 *$ ghp) -$ cst 16; (8 *$ gwp) -$ cst 16 ]
    ~reads:
      [ ("IMG", [ idx (dim 0 +$ cst 8); idx (dim 1 +$ cst 8) ]);
        ("BYG", [ idx ~div:8 (dim 0); idx ~div:8 (dim 1); idx (cst 0) ]);
        ("BYG", [ idx ~div:8 (dim 0); idx ~div:8 (dim 1); idx (cst 2) ]);
        ("BYG", [ idx ~div:8 (dim 0); idx ~div:8 (dim 1); idx (cst 4) ])
      ]
    ~ops:6
    ~compute:(fun v ->
      let a = Float.abs (v.(0) -. 2.0) and b = Float.abs (v.(0) -. 4.0) in
      ((v.(1) *. a) +. (v.(2) *. b) +. v.(3)) /. (a +. b +. 1.0))
    ();
  Pipe.finish t ~live_out:[ "OUT" ]

(* ------------------------------------------------------------------ *)
(* Camera pipeline: 32 stages at half resolution                       *)
(* ------------------------------------------------------------------ *)

let camera_pipeline ?(h2 = 128) ?(w2 = 128) () =
  let t = Pipe.create "camera_pipeline" ~params:[ ("H2", h2); ("W2", w2) ] in
  let hh = prm "H2" and ww = prm "W2" in
  Pipe.input t "RAW" [ 2 *$ hh; 2 *$ ww ];
  (* 1: hot-pixel suppression (5-point stencil at full res) *)
  Pipe.stage t ~name:"denoise" ~out:"DN"
    ~extents:[ (2 *$ hh) -$ cst 4; (2 *$ ww) -$ cst 4 ]
    ~reads:
      [ ("RAW", [ idx (dim 0 +$ cst 2); idx (dim 1 +$ cst 2) ]);
        ("RAW", [ idx (dim 0); idx (dim 1 +$ cst 2) ]);
        ("RAW", [ idx (dim 0 +$ cst 4); idx (dim 1 +$ cst 2) ]);
        ("RAW", [ idx (dim 0 +$ cst 2); idx (dim 1) ]);
        ("RAW", [ idx (dim 0 +$ cst 2); idx (dim 1 +$ cst 4) ])
      ]
    ~ops:6
    ~compute:(fun v ->
      let m = Float.min (Float.min v.(1) v.(2)) (Float.min v.(3) v.(4)) in
      let mx = Float.max (Float.max v.(1) v.(2)) (Float.max v.(3) v.(4)) in
      Float.min (Float.max v.(0) m) mx)
    ();
  (* 2-5: Bayer deinterleave into 4 half-res channels (stride-2 reads) *)
  List.iter
    (fun (name, oh, ow) ->
      Pipe.stage t ~name ~out:(String.uppercase_ascii name)
        ~extents:[ hh -$ cst 2; ww -$ cst 2 ]
        ~reads:[ ("DN", [ idx ((2 *$ dim 0) +$ cst oh); idx ((2 *$ dim 1) +$ cst ow) ]) ]
        ~ops:1
        ~compute:(fun v -> v.(0))
        ())
    [ ("gr", 0, 0); ("rr", 0, 1); ("bb", 1, 0); ("gb", 1, 1) ];
  (* 6-9: green interpolation at the red/blue sites *)
  let interp2 ?(shrink = 4) name a b =
    Pipe.stage t ~name ~out:(String.uppercase_ascii name)
      ~extents:[ hh -$ cst shrink; ww -$ cst shrink ]
      ~reads:
        [ (a, [ idx (dim 0); idx (dim 1) ]);
          (a, [ idx (dim 0 +$ cst 1); idx (dim 1) ]);
          (b, [ idx (dim 0); idx (dim 1) ]);
          (b, [ idx (dim 0); idx (dim 1 +$ cst 1) ])
        ]
      ~ops:4
      ~compute:(fun v -> (v.(0) +. v.(1) +. v.(2) +. v.(3)) /. 4.0)
      ()
  in
  interp2 "g_at_r" "GR" "GB";
  interp2 "g_at_b" "GB" "GR";
  interp2 "g_fill" "GR" "GB";
  interp2 ~shrink:6 "g_avg" "G_AT_R" "G_AT_B";
  (* 10-17: red/blue interpolation (4 directions each) *)
  let rb_interp ?(shrink = 8) name src green =
    Pipe.stage t ~name ~out:(String.uppercase_ascii name)
      ~extents:[ hh -$ cst shrink; ww -$ cst shrink ]
      ~reads:
        [ (src, [ idx (dim 0); idx (dim 1) ]);
          (src, [ idx (dim 0 +$ cst 1); idx (dim 1 +$ cst 1) ]);
          (green, [ idx (dim 0); idx (dim 1) ])
        ]
      ~ops:3
      ~compute:(fun v -> ((v.(0) +. v.(1)) /. 2.0) +. (0.1 *. v.(2)))
      ()
  in
  rb_interp "r_gr" "RR" "G_AVG";
  rb_interp "r_b" "RR" "G_AT_B";
  rb_interp "r_gb" "RR" "G_FILL";
  rb_interp ~shrink:10 "r_final" "R_GR" "G_AVG";
  rb_interp "b_gr" "BB" "G_AVG";
  rb_interp "b_r" "BB" "G_AT_R";
  rb_interp "b_gb" "BB" "G_FILL";
  rb_interp ~shrink:10 "b_final" "B_GR" "G_AVG";
  (* 18-20: demosaiced RGB merge *)
  let merge name srcs =
    Pipe.stage t ~name ~out:(String.uppercase_ascii name)
      ~extents:[ hh -$ cst 10; ww -$ cst 10 ]
      ~reads:(List.map (fun s -> (s, [ idx (dim 0); idx (dim 1) ])) srcs)
      ~ops:2
      ~compute:(fun v -> Array.fold_left ( +. ) 0.0 v /. float_of_int (Array.length v))
      ()
  in
  merge "dem_r" [ "R_FINAL"; "R_B" ];
  merge "dem_g" [ "G_AVG"; "G_FILL" ];
  merge "dem_b" [ "B_FINAL"; "B_R" ];
  (* 21-23: color correction matrix *)
  let ccm name w0 w1 w2 =
    Pipe.stage t ~name ~out:(String.uppercase_ascii name)
      ~extents:[ hh -$ cst 10; ww -$ cst 10 ]
      ~reads:
        [ ("DEM_R", [ idx (dim 0); idx (dim 1) ]);
          ("DEM_G", [ idx (dim 0); idx (dim 1) ]);
          ("DEM_B", [ idx (dim 0); idx (dim 1) ])
        ]
      ~ops:5
      ~compute:(fun v -> (w0 *. v.(0)) +. (w1 *. v.(1)) +. (w2 *. v.(2)))
      ()
  in
  ccm "cc_r" 1.5 (-0.3) (-0.2);
  ccm "cc_g" (-0.2) 1.4 (-0.2);
  ccm "cc_b" (-0.1) (-0.4) 1.5;
  (* 24-26: tone curve *)
  let tone name src =
    Pipe.stage t ~name ~out:(String.uppercase_ascii name)
      ~extents:[ hh -$ cst 10; ww -$ cst 10 ]
      ~reads:[ (src, [ idx (dim 0); idx (dim 1) ]) ]
      ~ops:4
      ~compute:(fun v -> 8.0 *. (v.(0) /. (1.0 +. Float.abs v.(0))))
      ()
  in
  tone "tc_r" "CC_R";
  tone "tc_g" "CC_G";
  tone "tc_b" "CC_B";
  (* 27-29: sharpen each channel (3x3) *)
  let sharp name src =
    Pipe.stage t ~name ~out:(String.uppercase_ascii name)
      ~extents:[ hh -$ cst 12; ww -$ cst 12 ]
      ~reads:(taps2d src ~n:3) ~ops:10
      ~compute:(fun v -> (2.0 *. v.(4)) -. (Array.fold_left ( +. ) 0.0 v /. 9.0))
      ()
  in
  sharp "sh_r" "TC_R";
  sharp "sh_g" "TC_G";
  sharp "sh_b" "TC_B";
  (* 30-32: final gamma per channel *)
  let gamma name src =
    Pipe.stage t ~name ~out:(String.uppercase_ascii name)
      ~extents:[ hh -$ cst 12; ww -$ cst 12 ]
      ~reads:[ (src, [ idx (dim 0); idx (dim 1) ]) ]
      ~ops:2
      ~compute:(fun v -> Float.sqrt (Float.abs v.(0)))
      ()
  in
  gamma "out_r" "SH_R";
  gamma "out_g" "SH_G";
  gamma "out_b" "SH_B";
  Pipe.finish t ~live_out:[ "OUT_R"; "OUT_G"; "OUT_B" ]

(* ------------------------------------------------------------------ *)
(* Local Laplacian filter                                              *)
(* ------------------------------------------------------------------ *)

let local_laplacian ?(h = 256) ?(w = 256) ?(levels = 4) ?(bins = 8) () =
  let t = Pipe.create "local_laplacian" ~params:[ ("H", h); ("W", w) ] in
  let hh = prm "H" and ww = prm "W" in
  Pipe.input t "IMG" [ hh; ww ];
  (* extents per level: level l has size (H >> l) - margins; parameters
     are concrete so we inline the shifts as integer constants. *)
  let lvl_h l = Wl.cst (h lsr l) in
  let lvl_w l = Wl.cst (w lsr l) in
  ignore (hh, ww);
  (* gray + gaussian pyramid over the guide *)
  Pipe.stage t ~name:"gray" ~out:"GP0" ~extents:[ lvl_h 0; lvl_w 0 ]
    ~reads:[ ("IMG", [ idx (dim 0); idx (dim 1) ]) ]
    ~ops:1
    ~compute:(fun v -> v.(0))
    ();
  for l = 1 to levels do
    Pipe.stage t
      ~name:(Printf.sprintf "gpyr%d" l)
      ~out:(Printf.sprintf "GP%d" l)
      ~extents:[ lvl_h l; lvl_w l ]
      ~reads:
        (List.concat_map
           (fun dh ->
             List.init 2 (fun dw ->
                 ( Printf.sprintf "GP%d" (l - 1),
                   [ idx ((2 *$ dim 0) +$ cst dh); idx ((2 *$ dim 1) +$ cst dw) ] )))
           [ 0; 1 ])
      ~ops:4 ~compute:(avg 4) ()
  done;
  (* per-bin remapped images and their pyramids *)
  for j = 0 to bins - 1 do
    let fj = float_of_int j in
    Pipe.stage t
      ~name:(Printf.sprintf "remap%d" j)
      ~out:(Printf.sprintf "RP%d_0" j)
      ~extents:[ lvl_h 0; lvl_w 0 ]
      ~reads:[ ("GP0", [ idx (dim 0); idx (dim 1) ]) ]
      ~ops:4
      ~compute:(fun v ->
        let d = v.(0) -. fj in
        v.(0) +. (d *. Float.exp (-0.5 *. d *. d)))
      ();
    for l = 1 to levels do
      Pipe.stage t
        ~name:(Printf.sprintf "rpyr%d_%d" j l)
        ~out:(Printf.sprintf "RP%d_%d" j l)
        ~extents:[ lvl_h l; lvl_w l ]
        ~reads:
          (List.concat_map
             (fun dh ->
               List.init 2 (fun dw ->
                   ( Printf.sprintf "RP%d_%d" j (l - 1),
                     [ idx ((2 *$ dim 0) +$ cst dh); idx ((2 *$ dim 1) +$ cst dw) ]
                   )))
             [ 0; 1 ])
        ~ops:4 ~compute:(avg 4) ()
    done;
    (* laplacian bands: RP[l] - up(RP[l+1]) *)
    for l = 0 to levels - 1 do
      Pipe.stage t
        ~name:(Printf.sprintf "lpyr%d_%d" j l)
        ~out:(Printf.sprintf "LP%d_%d" j l)
        ~extents:[ 2 *$ lvl_h (l + 1); 2 *$ lvl_w (l + 1) ]
        ~reads:
          [ (Printf.sprintf "RP%d_%d" j l, [ idx (dim 0); idx (dim 1) ]);
            (Printf.sprintf "RP%d_%d" j (l + 1), [ idx ~div:2 (dim 0); idx ~div:2 (dim 1) ])
          ]
        ~ops:1
        ~compute:(fun v -> v.(0) -. v.(1))
        ()
    done
  done;
  (* per-level blend driven by the guide pyramid *)
  for l = 0 to levels - 1 do
    Pipe.stage t
      ~name:(Printf.sprintf "blend%d" l)
      ~out:(Printf.sprintf "BL%d" l)
      ~extents:[ 2 *$ lvl_h (l + 1); 2 *$ lvl_w (l + 1) ]
      ~reads:
        ((Printf.sprintf "GP%d" l, [ idx (dim 0); idx (dim 1) ])
        :: List.init bins (fun j ->
               (Printf.sprintf "LP%d_%d" j l, [ idx (dim 0); idx (dim 1) ])))
      ~ops:(2 * bins)
      ~compute:(fun v ->
        let g = v.(0) in
        let acc = ref 0.0 and wsum = ref 1e-6 in
        for j = 1 to Array.length v - 1 do
          let wgt = 1.0 /. (1.0 +. Float.abs (g -. float_of_int (j - 1))) in
          acc := !acc +. (wgt *. v.(j));
          wsum := !wsum +. wgt
        done;
        !acc /. !wsum)
      ()
  done;
  (* collapse: COL[levels-1] = BL[levels-1]; COL[l] = BL[l] + up(COL[l+1]) *)
  Pipe.stage t
    ~name:(Printf.sprintf "col%d" (levels - 1))
    ~out:(Printf.sprintf "COL%d" (levels - 1))
    ~extents:[ 2 *$ lvl_h levels; 2 *$ lvl_w levels ]
    ~reads:[ (Printf.sprintf "BL%d" (levels - 1), [ idx (dim 0); idx (dim 1) ]) ]
    ~ops:1
    ~compute:(fun v -> v.(0))
    ();
  for l = levels - 2 downto 0 do
    Pipe.stage t
      ~name:(Printf.sprintf "col%d" l)
      ~out:(Printf.sprintf "COL%d" l)
      ~extents:[ 2 *$ lvl_h (l + 1); 2 *$ lvl_w (l + 1) ]
      ~reads:
        [ (Printf.sprintf "BL%d" l, [ idx (dim 0); idx (dim 1) ]);
          (Printf.sprintf "COL%d" (l + 1), [ idx ~div:2 (dim 0); idx ~div:2 (dim 1) ])
        ]
      ~ops:2
      ~compute:(fun v -> v.(0) +. v.(1))
      ()
  done;
  Pipe.finish t ~live_out:[ "COL0" ]

(* ------------------------------------------------------------------ *)
(* Multiscale interpolation                                            *)
(* ------------------------------------------------------------------ *)

let multiscale_interp ?(h = 256) ?(w = 256) ?(levels = 8) () =
  (* the pyramid cannot descend below 4x4 *)
  let max_levels d =
    let rec go l x = if x lsr 1 < 4 then l else go (l + 1) (x lsr 1) in
    go 0 d
  in
  let levels = min levels (min (max_levels h) (max_levels w)) in
  let t = Pipe.create "multiscale_interp" ~params:[ ("H", h); ("W", w) ] in
  Pipe.input t "IMG" [ prm "H"; prm "W" ];
  Pipe.input t "MASK" [ prm "H"; prm "W" ];
  let lvl_h l = Wl.cst (h lsr l) and lvl_w l = Wl.cst (w lsr l) in
  Pipe.stage t ~name:"d0" ~out:"D0" ~extents:[ lvl_h 0; lvl_w 0 ]
    ~reads:
      [ ("IMG", [ idx (dim 0); idx (dim 1) ]);
        ("MASK", [ idx (dim 0); idx (dim 1) ])
      ]
    ~ops:1
    ~compute:(fun v -> v.(0) *. v.(1))
    ();
  for l = 1 to levels do
    (* blur then decimate: two stages per level *)
    Pipe.stage t
      ~name:(Printf.sprintf "blur%d" l)
      ~out:(Printf.sprintf "BD%d" l)
      ~extents:[ lvl_h (l - 1); lvl_w (l - 1) ]
      ~reads:
        [ (Printf.sprintf "D%d" (l - 1), [ idx (dim 0); idx (dim 1) ]);
          (Printf.sprintf "D%d" (l - 1), [ idx (dim 0); idx (dim 1) ]) ]
      ~ops:2 ~compute:(avg 2) ();
    Pipe.stage t
      ~name:(Printf.sprintf "down%d" l)
      ~out:(Printf.sprintf "D%d" l)
      ~extents:[ lvl_h l; lvl_w l ]
      ~reads:
        (List.concat_map
           (fun dh ->
             List.init 2 (fun dw ->
                 ( Printf.sprintf "BD%d" l,
                   [ idx ((2 *$ dim 0) +$ cst dh); idx ((2 *$ dim 1) +$ cst dw) ] )))
           [ 0; 1 ])
      ~ops:4 ~compute:(avg 4) ()
  done;
  Pipe.stage t
    ~name:(Printf.sprintf "u%d" levels)
    ~out:(Printf.sprintf "U%d" levels)
    ~extents:[ lvl_h levels; lvl_w levels ]
    ~reads:[ (Printf.sprintf "D%d" levels, [ idx (dim 0); idx (dim 1) ]) ]
    ~ops:1
    ~compute:(fun v -> v.(0))
    ();
  for l = levels - 1 downto 0 do
    (* upsample then combine with the same-level downsampled data *)
    Pipe.stage t
      ~name:(Printf.sprintf "up%d" l)
      ~out:(Printf.sprintf "UP%d" l)
      ~extents:[ lvl_h l; lvl_w l ]
      ~reads:
        [ (Printf.sprintf "U%d" (l + 1), [ idx ~div:2 (dim 0); idx ~div:2 (dim 1) ]) ]
      ~ops:1
      ~compute:(fun v -> v.(0))
      ();
    Pipe.stage t
      ~name:(Printf.sprintf "comb%d" l)
      ~out:(Printf.sprintf "U%d" l)
      ~extents:[ lvl_h l; lvl_w l ]
      ~reads:
        [ (Printf.sprintf "UP%d" l, [ idx (dim 0); idx (dim 1) ]);
          (Printf.sprintf "D%d" l, [ idx (dim 0); idx (dim 1) ]) ]
      ~ops:2
      ~compute:(fun v -> v.(1) +. (0.5 *. v.(0)))
      ()
  done;
  Pipe.stage t ~name:"norm" ~out:"OUT" ~extents:[ lvl_h 0; lvl_w 0 ]
    ~reads:
      [ ("U0", [ idx (dim 0); idx (dim 1) ]);
        ("MASK", [ idx (dim 0); idx (dim 1) ])
      ]
    ~ops:2
    ~compute:(fun v -> v.(0) /. (v.(1) +. 1.0))
    ();
  Pipe.finish t ~live_out:[ "OUT" ]
