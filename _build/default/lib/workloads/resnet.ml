open Wl

type block = {
  blk_name : string;
  height : int;
  width : int;
  c_in : int;
  c_out : int;
  ksize : int;
}

(* Sixteen blocks sampling the four ResNet-50 stages; spatial extents
   shrink by ksize-1 per block (valid convolutions, no padding). *)
let default_blocks () =
  let mk i h c_in c_out =
    { blk_name = Printf.sprintf "l%d" i; height = h; width = h; c_in; c_out; ksize = 3 }
  in
  let rec chain i h c acc =
    if i >= 16 then List.rev acc
    else begin
      let c_out = if i = 3 || i = 7 || i = 11 then c * 2 else c in
      let c_out = min c_out 16 in
      chain (i + 1) (h - 2) c_out (mk i h c c_out :: acc)
    end
  in
  chain 0 40 4 []

(* A single block as its own operator-group program (the granularity at
   which the AKG flow compiles and fuses operators). *)
let layer ?(with_relu = true) (b : block) =
  let t = Pipe.create ("resnet_" ^ b.blk_name ^ (if with_relu then "" else "_cb")) ~params:[] in
  Pipe.input t "IN0" [ cst (b.height + b.ksize - 1); cst (b.width + b.ksize - 1); cst b.c_in ];
  let weights = "W_" ^ b.blk_name in
  Pipe.array t weights [ cst b.c_out; cst b.ksize; cst b.ksize; cst b.c_in ];
  Pipe.array t ("GAMMA_" ^ b.blk_name) [ cst b.c_out ];
  Pipe.array t ("BETA_" ^ b.blk_name) [ cst b.c_out ];
  let extents = [ cst b.height; cst b.width; cst b.c_out ] in
  Pipe.reduction t ~name:("conv_" ^ b.blk_name) ~out:("CV_" ^ b.blk_name) ~extents
    ~red_dims:[ ("kh", cst b.ksize); ("kw", cst b.ksize); ("ci", cst b.c_in) ]
    ~reads:
      [ ("IN0", [ idx (dim 0 +$ dim 3); idx (dim 1 +$ dim 4); idx (dim 5) ]);
        (weights, [ idx (dim 2); idx (dim 3); idx (dim 4); idx (dim 5) ])
      ]
    ~ops:2
    ~combine:(fun v -> v.(0) +. (v.(1) *. v.(2)))
    ();
  Pipe.stage t ~name:("bn_" ^ b.blk_name) ~out:("BN_" ^ b.blk_name) ~extents
    ~reads:
      [ ("CV_" ^ b.blk_name, [ idx (dim 0); idx (dim 1); idx (dim 2) ]);
        ("GAMMA_" ^ b.blk_name, [ idx (dim 2) ]);
        ("BETA_" ^ b.blk_name, [ idx (dim 2) ])
      ]
    ~ops:2
    ~compute:(fun v -> (v.(1) *. v.(0)) +. v.(2))
    ();
  if with_relu then begin
    Pipe.stage t ~name:("relu_" ^ b.blk_name) ~out:("RL_" ^ b.blk_name) ~extents
      ~reads:[ ("BN_" ^ b.blk_name, [ idx (dim 0); idx (dim 1); idx (dim 2) ]) ]
      ~ops:1
      ~compute:(fun v -> Float.max 0.0 v.(0))
      ()
  end;
  Pipe.finish t
    ~live_out:[ (if with_relu then "RL_" else "BN_") ^ b.blk_name ]

let build ?(blocks = default_blocks ()) () =
  let t = Pipe.create "resnet50_fwd" ~params:[] in
  let in_name = ref "IN0" in
  (match blocks with
  | [] -> invalid_arg "Resnet.build: empty block list"
  | b0 :: _ ->
      Pipe.input t "IN0"
        [ cst (b0.height + b0.ksize - 1); cst (b0.width + b0.ksize - 1); cst b0.c_in ]);
  List.iter
    (fun b ->
      let conv_name = "conv_" ^ b.blk_name in
      let weights = "W_" ^ b.blk_name in
      Pipe.array t weights [ cst b.c_out; cst b.ksize; cst b.ksize; cst b.c_in ];
      Pipe.array t ("GAMMA_" ^ b.blk_name) [ cst b.c_out ];
      Pipe.array t ("BETA_" ^ b.blk_name) [ cst b.c_out ];
      let extents = [ cst b.height; cst b.width; cst b.c_out ] in
      Pipe.reduction t ~name:conv_name ~out:("CV_" ^ b.blk_name) ~extents
        ~red_dims:[ ("kh", cst b.ksize); ("kw", cst b.ksize); ("ci", cst b.c_in) ]
        ~reads:
          [ (!in_name, [ idx (dim 0 +$ dim 3); idx (dim 1 +$ dim 4); idx (dim 5) ]);
            (weights, [ idx (dim 2); idx (dim 3); idx (dim 4); idx (dim 5) ])
          ]
        ~ops:2
        ~combine:(fun v -> v.(0) +. (v.(1) *. v.(2)))
        ();
      Pipe.stage t ~name:("bn_" ^ b.blk_name) ~out:("BN_" ^ b.blk_name) ~extents
        ~reads:
          [ ("CV_" ^ b.blk_name, [ idx (dim 0); idx (dim 1); idx (dim 2) ]);
            ("GAMMA_" ^ b.blk_name, [ idx (dim 2) ]);
            ("BETA_" ^ b.blk_name, [ idx (dim 2) ])
          ]
        ~ops:2
        ~compute:(fun v -> (v.(1) *. v.(0)) +. v.(2))
        ();
      Pipe.stage t ~name:("relu_" ^ b.blk_name) ~out:("RL_" ^ b.blk_name) ~extents
        ~reads:[ ("BN_" ^ b.blk_name, [ idx (dim 0); idx (dim 1); idx (dim 2) ]) ]
        ~ops:1
        ~compute:(fun v -> Float.max 0.0 v.(0))
        ();
      in_name := "RL_" ^ b.blk_name)
    blocks;
  Pipe.finish t ~live_out:[ !in_name ]

let unit_kind name =
  if String.length name >= 5 && String.sub name 0 5 = "conv_" then Npu_model.Cube
  else Npu_model.Vector

let conv_bn_stmts (p : Prog.t) =
  List.filter_map
    (fun (s : Prog.stmt) ->
      let n = s.Prog.stmt_name in
      let pre k = String.length n >= String.length k && String.sub n 0 (String.length k) = k in
      if pre "conv_" || pre "bn_" then Some n else None)
    p.Prog.stmts
