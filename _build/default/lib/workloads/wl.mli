(** Small builder DSL shared by the workload definitions. *)

open Presburger

val dim : ?coef:int -> int -> Aff.t

val cst : int -> Aff.t

val prm : string -> Aff.t

val ( +$ ) : Aff.t -> Aff.t -> Aff.t

val ( -$ ) : Aff.t -> Aff.t -> Aff.t

val ( *$ ) : int -> Aff.t -> Aff.t

val box :
  ?params:string list -> string -> (string * Aff.t * Aff.t) list -> Bset.t
(** [box name [(dim, lo, hi); ...]] with inclusive affine bounds; bounds
    may reference parameters and earlier dimensions (by index). *)

val access :
  ?params:string list -> stmt:string -> dims:string list -> string ->
  Prog.index list -> Prog.access

val arr : string -> Aff.t list -> Prog.array_decl

val idx : ?div:int -> Aff.t -> Prog.index
