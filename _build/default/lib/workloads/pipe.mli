(** Pipeline builder: declarative construction of multi-stage image
    processing / linear algebra programs as {!Prog.t} values.

    Each stage writes one output array over a box domain (one dimension
    per output dimension); reductions add trailing reduction dimensions
    and are lowered to an initialization statement plus an update
    statement, the "consecutive perfect nests" form the rest of the
    system expects. *)

open Presburger

type t

val create : string -> params:(string * int) list -> t

val input : t -> string -> Aff.t list -> unit
(** Declare an input array (written by nobody). *)

val param_names : t -> string list

val stage :
  t -> name:string -> out:string -> extents:Aff.t list ->
  reads:(string * Prog.index list) list -> ?ops:int ->
  compute:(float array -> float) -> unit -> unit
(** Pointwise/stencil stage: domain = box [0, extent) per output
    dimension, write [out[d0]..[dn]]. Read indices are affine (or
    floor-divided) expressions over the stage dimensions. *)

val reduction :
  t -> name:string -> out:string -> extents:Aff.t list ->
  red_dims:(string * Aff.t) list ->
  reads:(string * Prog.index list) list -> ?ops:int -> ?init:float ->
  combine:(float array -> float) -> unit -> unit
(** Reduction stage: adds trailing reduction dimensions with the given
    extents. Lowered to [name_init] (writes [init]) and [name_upd]
    (reads the accumulator as its first read, then the given reads, and
    stores [combine [|acc; v1; ...|]]). *)

val stmt : t -> Prog.stmt -> unit
(** Escape hatch: append a hand-built statement. *)

val array : t -> string -> Aff.t list -> unit

val finish : t -> live_out:string list -> Prog.t

val n_stages : t -> int
