open Wl

let build ?(h = 6) ?(w = 6) ?(kh = 3) ?(kw = 3) () =
  let params = [ "H"; "W"; "KH"; "KW" ] in
  let hp = prm "H" and wp = prm "W" and khp = prm "KH" and kwp = prm "KW" in
  let one = cst 1 in
  (* S0: A[h][w] = Quant(A[h][w]) *)
  let s0_dims = [ "h"; "w" ] in
  let s0 =
    Prog.mk_stmt ~name:"S0"
      ~domain:(box ~params "S0" [ ("h", cst 0, hp -$ one); ("w", cst 0, wp -$ one) ])
      ~write:(access ~params ~stmt:"S0" ~dims:s0_dims "A" [ idx (dim 0); idx (dim 1) ])
      ~reads:[ access ~params ~stmt:"S0" ~dims:s0_dims "A" [ idx (dim 0); idx (dim 1) ] ]
      ~compute:(fun v -> Float.max 0.0 (Float.min 255.0 (Float.round v.(0))))
      ~ops:2 ()
  in
  (* S1: C[h][w] = 0 *)
  let s1_dims = [ "h"; "w" ] in
  let conv_box name =
    box ~params name
      [ ("h", cst 0, hp -$ khp); ("w", cst 0, wp -$ kwp) ]
  in
  let s1 =
    Prog.mk_stmt ~nest:"conv" ~name:"S1" ~domain:(conv_box "S1")
      ~write:(access ~params ~stmt:"S1" ~dims:s1_dims "C" [ idx (dim 0); idx (dim 1) ])
      ~reads:[]
      ~compute:(fun _ -> 0.0)
      ~ops:1 ()
  in
  (* S2: C[h][w] += A[h+kh][w+kw] * B[kh][kw] *)
  let s2_dims = [ "h"; "w"; "kh"; "kw" ] in
  let s2 =
    Prog.mk_stmt ~nest:"conv" ~name:"S2" ~reduction_dims:2
      ~domain:
        (box ~params "S2"
           [ ("h", cst 0, hp -$ khp);
             ("w", cst 0, wp -$ kwp);
             ("kh", cst 0, khp -$ one);
             ("kw", cst 0, kwp -$ one)
           ])
      ~write:(access ~params ~stmt:"S2" ~dims:s2_dims "C" [ idx (dim 0); idx (dim 1) ])
      ~reads:
        [ access ~params ~stmt:"S2" ~dims:s2_dims "C" [ idx (dim 0); idx (dim 1) ];
          access ~params ~stmt:"S2" ~dims:s2_dims "A"
            [ idx (dim 0 +$ dim 2); idx (dim 1 +$ dim 3) ];
          access ~params ~stmt:"S2" ~dims:s2_dims "B" [ idx (dim 2); idx (dim 3) ]
        ]
      ~compute:(fun v -> v.(0) +. (v.(1) *. v.(2)))
      ~ops:2 ()
  in
  (* S3: C[h][w] = ReLU(C[h][w]) *)
  let s3 =
    Prog.mk_stmt ~name:"S3" ~domain:(conv_box "S3")
      ~write:(access ~params ~stmt:"S3" ~dims:s1_dims "C" [ idx (dim 0); idx (dim 1) ])
      ~reads:[ access ~params ~stmt:"S3" ~dims:s1_dims "C" [ idx (dim 0); idx (dim 1) ] ]
      ~compute:(fun v -> Float.max 0.0 v.(0))
      ~ops:1 ()
  in
  Prog.make ~name:"conv2d"
    ~params:[ ("H", h); ("W", w); ("KH", kh); ("KW", kw) ]
    ~arrays:
      [ arr "A" [ prm "H"; prm "W" ];
        arr "B" [ prm "KH"; prm "KW" ];
        arr "C" [ prm "H" -$ prm "KH" +$ cst 1; prm "W" -$ prm "KW" +$ cst 1 ]
      ]
    ~stmts:[ s0; s1; s2; s3 ] ~live_out:[ "C" ]
