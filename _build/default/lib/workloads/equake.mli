(** The SPEC CPU2000 equake kernel (finite element method): a sparse
    matrix-vector product over an unstructured mesh with a
    dynamic-counted inner loop, followed by a gathering statement and a
    chain of affine element-wise nests updating the mesh state.

    The paper's proprietary mesh is substituted by a synthetic banded
    sparse matrix: row [i] has [rowlen i <= MAXNZ] nonzeros at columns
    [i..i+rowlen i - 1] (a dynamic guard models the while loop; the
    affine superset [0 <= j < MAXNZ] is what the polyhedral analysis
    sees, exactly PPCG's dynamic-counted-loop treatment). *)

type size = Test | Train | Ref

val size_nodes : size -> int

val build : ?size:size -> unit -> Prog.t

val build_permuted : ?size:size -> unit -> Prog.t
(** The manually preprocessed variant the paper feeds to PPCG's
    heuristics: the SpMV components are separate nests, so the baseline
    heuristics can explore fusion around the dynamic loop. *)
