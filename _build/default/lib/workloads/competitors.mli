(** Models of the systems the paper compares against.

    These re-implement the *strategies* against our IR rather than the
    original codebases (DESIGN.md):

    - PolyMage: tiling-after-fusion with overlapped tiles whose shapes
      come from rescheduling rather than per-stage memory footprints;
      the paper attributes its losses to over-approximated footprints.
      Modelled by dilating every extension schedule by the producer
      chain depth (each fused stage gets the deepest stage's overlap)
      before clipping to the statement domains.

    - Halide manual schedules: the expert fixes which stages are
      computed inside the consumer's tiles (compute_at) and which at
      root; only computation-space transformations are available, so
      the decisions are a subset of what Algorithm 1 can derive. *)

val polymage : Core.Pipeline.compiled -> Core.Pipeline.compiled
(** Replace every extension schedule by its uniformly dilated
    over-approximation and rebuild the schedule tree. *)

val halide :
  ?tile_size:int -> fused_stages:(string -> bool) -> target:Core.Pipeline.target ->
  Prog.t -> Core.Pipeline.compiled
(** A manual schedule: stages (statements) for which [fused_stages] is
    false are never computed inside consumer tiles. *)

val halide_fused_stages : string -> string -> bool
(** Per-benchmark manual-schedule decisions, keyed by program name then
    statement name (derived from the published Halide schedules: e.g.
    the Harris schedule misses the inlining PolyMage finds). *)
