(** The six PolyMage-benchmark image processing pipelines of Table I.

    The stage graphs are structurally faithful (stencils, reductions,
    pyramids with floor-division down/up-sampling, channel splits and
    joins) at reduced arithmetic complexity; stage counts are close to
    the paper's (small deviations are noted per builder). Stencil taps
    are unrolled into multiple reads, as PolyMage itself does. *)

val unsharp_mask : ?h:int -> ?w:int -> unit -> Prog.t
(** 4 stages: blur_x, blur_y, sharpen, mask. *)

val harris : ?h:int -> ?w:int -> unit -> Prog.t
(** 11 stages: gray, Ix, Iy, Ixx, Ixy, Iyy, Sxx, Sxy, Syy, det, response. *)

val bilateral_grid : ?h:int -> ?w:int -> unit -> Prog.t
(** 7 statements: grid construction (reduction over 8x8 blocks into a
    downsampled grid with an intensity axis), blur z/x/y, slice
    (floor-division accesses back to full resolution). *)

val camera_pipeline : ?h2:int -> ?w2:int -> unit -> Prog.t
(** 32 stages: denoise, Bayer deinterleave (stride-2 accesses), green /
    red / blue demosaic, RGB merge, color correction, tone curve,
    sharpen and combine. Works at half-resolution [h2 x w2]. *)

val local_laplacian : ?h:int -> ?w:int -> ?levels:int -> ?bins:int -> unit -> Prog.t
(** Gaussian pyramid, per-bin remaps and Laplacian pyramids, per-level
    blend, collapse. [levels = 4], [bins = 8] gives 85 stages (the paper
    counts 99 for its settings). *)

val multiscale_interp : ?h:int -> ?w:int -> ?levels:int -> unit -> Prog.t
(** Down-sampling chain, coarse solve, up-sampling interpolation chain.
    [levels = 8] gives 35 stages (paper: 49). *)
