(** The three PolyBench kernels of Table II. *)

val mm2 : ?ni:int -> ?nj:int -> ?nk:int -> ?nl:int -> unit -> Prog.t
(** 2mm: [TMP = alpha*A*B; D = TMP*C + beta*D]. *)

val gemver : ?n:int -> unit -> Prog.t
(** gemver: [Ah = A + u1 v1^T + u2 v2^T; x = beta Ah^T y + z; w = alpha Ah x]. *)

val covariance : ?n:int -> ?m:int -> unit -> Prog.t
(** covariance: column means, centering, covariance matrix. *)
