open Wl

let build ?(n = 256) ?(steps = 4) () =
  let t = Pipe.create "jacobi_unrolled" ~params:[ ("N", n) ] in
  let np = prm "N" in
  Pipe.input t "U0" [ np ];
  for k = 1 to steps do
    (* each step shrinks the valid region by one on each side; domains
       are kept left-aligned (reads at offsets 0,1,2) *)
    Pipe.stage t
      ~name:(Printf.sprintf "step%d" k)
      ~out:(Printf.sprintf "U%d" k)
      ~extents:[ np -$ cst (2 * k) ]
      ~reads:
        (List.map
           (fun o -> (Printf.sprintf "U%d" (k - 1), [ idx (dim 0 +$ cst o) ]))
           [ 0; 1; 2 ])
      ~ops:3
      ~compute:(fun v -> (v.(0) +. v.(1) +. v.(2)) /. 3.0)
      ()
  done;
  Pipe.finish t ~live_out:[ Printf.sprintf "U%d" steps ]
