open Presburger

type t = {
  pname : string;
  params : (string * int) list;
  mutable arrays : Prog.array_decl list;
  mutable stmts : Prog.stmt list;
  mutable stages : int;
}

let create pname ~params = { pname; params; arrays = []; stmts = []; stages = 0 }

let param_names t = List.map fst t.params

let array t name extents =
  if List.exists (fun (a : Prog.array_decl) -> a.Prog.array_name = name) t.arrays
  then ()
  else t.arrays <- t.arrays @ [ { Prog.array_name = name; extents } ]

let input t name extents = array t name extents

let dim_names n = List.init n (fun i -> Printf.sprintf "x%d" i)

(* Box domain [0, extents_i) over n dims, extents affine over params. *)
let box_domain t name extents =
  let params = param_names t in
  let bounds =
    List.mapi
      (fun i e -> (Printf.sprintf "x%d" i, Aff.const 0, Aff.add_const e (-1)))
      extents
  in
  ignore name;
  Wl.box ~params (match bounds with [] -> invalid_arg "box_domain" | _ -> name) bounds

let stage t ~name ~out ~extents ~reads ?(ops = 2) ~compute () =
  array t out extents;
  let n = List.length extents in
  let dims = dim_names n in
  let params = param_names t in
  let write =
    Prog.mk_access ~params ~stmt_name:name ~dims ~array:out
      (List.init n (fun i -> Prog.index (Aff.dim i)))
  in
  let reads =
    List.map
      (fun (arr, idxs) -> Prog.mk_access ~params ~stmt_name:name ~dims ~array:arr idxs)
      reads
  in
  let stmt =
    Prog.mk_stmt ~name ~domain:(box_domain t name extents) ~write ~reads ~compute
      ~ops ()
  in
  t.stmts <- t.stmts @ [ stmt ];
  t.stages <- t.stages + 1

let reduction t ~name ~out ~extents ~red_dims ~reads ?(ops = 2) ?(init = 0.0)
    ~combine () =
  array t out extents;
  let n = List.length extents in
  let params = param_names t in
  let out_dims = dim_names n in
  (* init statement over the output box *)
  let init_name = name ^ "_init" in
  let write_init =
    Prog.mk_access ~params ~stmt_name:init_name ~dims:out_dims ~array:out
      (List.init n (fun i -> Prog.index (Aff.dim i)))
  in
  let init_stmt =
    Prog.mk_stmt ~nest:name ~name:init_name
      ~domain:(box_domain t init_name extents)
      ~write:write_init ~reads:[]
      ~compute:(fun _ -> init)
      ~ops:1 ()
  in
  (* update statement over output box x reduction box *)
  let upd_name = name ^ "_upd" in
  let all_dims = out_dims @ List.map fst red_dims in
  let domain =
    let bounds =
      List.mapi
        (fun i e -> (Printf.sprintf "x%d" i, Aff.const 0, Aff.add_const e (-1)))
        extents
      @ List.map (fun (d, e) -> (d, Aff.const 0, Aff.add_const e (-1))) red_dims
    in
    Wl.box ~params upd_name bounds
  in
  let write_upd =
    Prog.mk_access ~params ~stmt_name:upd_name ~dims:all_dims ~array:out
      (List.init n (fun i -> Prog.index (Aff.dim i)))
  in
  let acc_read =
    Prog.mk_access ~params ~stmt_name:upd_name ~dims:all_dims ~array:out
      (List.init n (fun i -> Prog.index (Aff.dim i)))
  in
  let other_reads =
    List.map
      (fun (arr, idxs) ->
        Prog.mk_access ~params ~stmt_name:upd_name ~dims:all_dims ~array:arr idxs)
      reads
  in
  let upd_stmt =
    Prog.mk_stmt ~nest:name ~name:upd_name ~domain ~write:write_upd
      ~reads:(acc_read :: other_reads) ~compute:combine ~ops
      ~reduction_dims:(List.length red_dims) ()
  in
  t.stmts <- t.stmts @ [ init_stmt; upd_stmt ];
  t.stages <- t.stages + 1

let stmt t s =
  t.stmts <- t.stmts @ [ s ];
  t.stages <- t.stages + 1

let finish t ~live_out =
  let p =
    Prog.make ~name:t.pname ~params:t.params ~arrays:t.arrays ~stmts:t.stmts
      ~live_out
  in
  Prog.validate p;
  p

let n_stages t = t.stages
