(** The paper's running example (Fig. 1): quantization, 2D convolution
    (initialization + reduction) and ReLU over an input image.

    {[
      S0:  A[h][w]  = Quant(A[h][w])            0<=h<H, 0<=w<W
      S1:  C[h][w]  = 0                          0<=h<=H-KH, 0<=w<=W-KW
      S2:  C[h][w] += A[h+kh][w+kw] * B[kh][kw]  0<=kh<KH, 0<=kw<KW
      S3:  C[h][w]  = ReLU(C[h][w])
    ]}

    [C] is live-out; [A] is the intermediate tensor the paper allocates
    on scratchpads after post-tiling fusion. *)

val build : ?h:int -> ?w:int -> ?kh:int -> ?kw:int -> unit -> Prog.t
(** Defaults: H = W = 6, KH = KW = 3 (the worked example of Section III). *)
