(* Image-pipeline example: compile the unsharp-mask pipeline with every
   fusion heuristic and with the paper's post-tiling fusion, execute each
   through the trace-driven CPU model, and compare cache behaviour and
   modelled times.

   Run with: dune exec examples/image_pipeline.exe *)

let () =
  let prog = Polymage.unsharp_mask ~h:128 ~w:128 () in
  Printf.printf "unsharp mask, %d statements, image 128x128\n\n"
    (List.length prog.Prog.stmts);
  let versions =
    [ Exp_util.naive prog;
      Exp_util.heuristic ~target:Core.Pipeline.Cpu Fusion.Minfuse prog;
      Exp_util.heuristic ~target:Core.Pipeline.Cpu Fusion.Smartfuse prog;
      Exp_util.heuristic ~target:Core.Pipeline.Cpu Fusion.Maxfuse prog;
      Exp_util.polymage_version ~tile_sizes:[| 8; 32 |] ~target:Core.Pipeline.Cpu prog;
      Exp_util.ours ~tile_sizes:[| 8; 32 |] ~target:Core.Pipeline.Cpu prog
    ]
  in
  let reference = List.hd versions in
  let rows =
    List.map
      (fun v ->
        let report = Exp_util.cpu_profile prog v in
        let l1_misses =
          match report.Cpu_model.cache with
          | l1 :: _ -> l1.Cache.misses
          | [] -> 0
        in
        let ok = Exp_util.check_against prog reference v in
        [ v.Exp_util.ver_name;
          Printf.sprintf "%.3f" (Exp_util.cpu_time_ms prog v ~threads:1);
          Printf.sprintf "%.3f" (Exp_util.cpu_time_ms prog v ~threads:32);
          string_of_int l1_misses;
          string_of_int report.Cpu_model.dram;
          string_of_int report.Cpu_model.instances;
          (if ok then "ok" else "MISMATCH")
        ])
      versions
  in
  Exp_util.print_table
    ~header:[ "version"; "1t (ms)"; "32t (ms)"; "L1 miss"; "DRAM"; "instances"; "semantics" ]
    rows;
  print_endline
    "\nNote how the fused versions cut DRAM traffic (the intermediate\n\
     blur tensors stay in cache within each tile), and how the paper's\n\
     version keeps 32-thread parallelism while maxfuse does not."
