examples/equake_demo.mli:
