examples/image_pipeline.ml: Cache Core Cpu_model Exp_util Fusion List Polymage Printf Prog
