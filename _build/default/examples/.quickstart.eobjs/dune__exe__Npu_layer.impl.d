examples/npu_layer.ml: Core Exp_util Footprints Fusion List Npu_model Printf Resnet String
