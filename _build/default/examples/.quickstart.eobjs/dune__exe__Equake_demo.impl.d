examples/equake_demo.ml: Ast Build_tree Core Cpu_model Deps Equake Fusion Gen Interp List Printf String
