examples/quickstart.mli:
