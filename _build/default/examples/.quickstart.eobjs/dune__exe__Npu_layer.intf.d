examples/npu_layer.mli:
