examples/quickstart.ml: Array Ast Bset Build_tree Conv2d Core Cpu_model Deps Fusion Gen Imap Interp Iset List Presburger Printf Prog Schedule_tree String
