(* NPU example: one ResNet-50 block (convolution + batch normalization +
   ReLU) compiled for the DaVinci-style accelerator model, comparing the
   smartfuse baseline (which leaves the convolution unfused, paying the
   off-chip round-trip) against the paper's post-tiling fusion (the
   convolution output stays in the Unified Buffer).

   Run with: dune exec examples/npu_layer.exe *)

let () =
  let block = List.hd (Resnet.default_blocks ()) in
  let prog = Resnet.layer block in
  Printf.printf "block %s: %dx%d spatial, %d -> %d channels, %dx%d kernel\n\n"
    block.Resnet.blk_name block.Resnet.height block.Resnet.width
    block.Resnet.c_in block.Resnet.c_out block.Resnet.ksize block.Resnet.ksize;
  let describe label v =
    let cs = Exp_util.clusters prog v in
    Printf.printf "%s: %d operator groups\n" label (List.length cs);
    List.iter
      (fun (c : Footprints.cluster) ->
        let t = Footprints.cluster_traffic prog ~previous:[] c in
        Printf.printf "  [%s] staged=[%s] ddr read %dB write %dB\n"
          (String.concat ", " c.Footprints.stmts)
          (String.concat ", " c.Footprints.staged_arrays)
          t.Footprints.read_bytes t.Footprints.write_bytes)
      cs;
    let t =
      Npu_model.time_ms Npu_model.ascend910 prog ~kind_of:Resnet.unit_kind cs
    in
    Printf.printf "  modelled time: %.3f ms\n\n" t;
    t
  in
  let smart =
    Exp_util.heuristic ~fuse_reductions:false ~target:Core.Pipeline.Npu
      Fusion.Smartfuse prog
  in
  let our =
    Exp_util.ours ~fuse_reductions:false ~tile:8 ~target:Core.Pipeline.Npu prog
  in
  let t_smart = describe "smartfuse (baseline)" smart in
  let t_ours = describe "post-tiling fusion (ours)" our in
  Printf.printf "speedup: %.2fx (paper reports 1.72x on the conv+bn subset)\n"
    (t_smart /. t_ours);
  Printf.printf "semantics identical: %b\n" (Exp_util.check_against prog smart our)
