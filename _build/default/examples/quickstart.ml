(* Quickstart: the paper's running example (Fig. 1) end to end.

   Builds the quantization/convolution/ReLU program, runs the paper's
   flow (conservative start-up fusion, live-out tiling, upwards-exposed
   data, extension schedules, post-tiling fusion), prints the schedule
   tree and the generated code, and checks the transformed program
   against the untransformed one in the interpreter.

   Run with: dune exec examples/quickstart.exe *)

open Presburger

let () =
  (* H = W = 6, KH = KW = 3: the exact sizes of Section III's figures *)
  let prog = Conv2d.build () in
  print_endline "=== 1. the program (Fig. 1a) ===";
  List.iter
    (fun (s : Prog.stmt) ->
      Printf.printf "  %s: domain %s\n" s.Prog.stmt_name (Bset.to_string s.Prog.domain))
    prog.Prog.stmts;

  print_endline "\n=== 2. dependences ===";
  let deps = Deps.compute prog in
  List.iter
    (fun (d : Deps.t) ->
      Printf.printf "  %s %s -> %s on %s\n"
        (match d.Deps.kind with Deps.Raw -> "RAW" | Deps.War -> "WAR" | Deps.Waw -> "WAW")
        d.Deps.src d.Deps.dst d.Deps.array)
    deps;

  print_endline "\n=== 3. the paper's flow (tile 2x2, CPU) ===";
  let c = Core.Pipeline.run ~target:Core.Pipeline.Cpu ~tile_size:2 prog in
  print_endline "start-up (conservative) fusion groups:";
  List.iter
    (fun (g : Fusion.group) ->
      Printf.printf "  { %s }  parallel dims: %d\n"
        (String.concat ", " g.Fusion.stmts)
        (Fusion.n_parallel g))
    c.Core.Pipeline.startup.Fusion.groups;

  (* relation (6): the extension schedule tiling the quantization space *)
  (match c.Core.Pipeline.plan.Core.Post_tiling.roots with
  | [ r ] ->
      List.iter
        (fun (e : Core.Tile_shapes.extension) ->
          Printf.printf "\nextension schedule for space %d (relation (6)):\n  %s\n"
            e.Core.Tile_shapes.space_id
            (Imap.to_string e.Core.Tile_shapes.ext_rel);
          List.iter
            (fun tile ->
              Printf.printf "  tile (%d,%d) computes: %s\n" tile.(0) tile.(1)
                (Iset.to_string
                   (Core.Tile_shapes.footprint_of_tile ~tile prog
                      e.Core.Tile_shapes.ext_rel)))
            [ [| 1; 0 |]; [| 1; 1 |] ])
        r.Core.Post_tiling.tiling.Core.Tile_shapes.extensions
  | _ -> ());

  print_endline "\n=== 4. the post-tiling-fusion schedule tree (Fig. 5) ===";
  print_endline (Schedule_tree.to_string c.Core.Pipeline.tree);

  print_endline "=== 5. generated code ===";
  let ast = Gen.generate prog c.Core.Pipeline.tree in
  print_endline (Ast.to_string ast);

  print_endline "=== 6. semantic check against the untransformed program ===";
  let naive =
    Gen.generate prog
      (Build_tree.initial_tree prog
         (Fusion.schedule prog ~deps ~target_parallelism:1 Fusion.Minfuse))
  in
  let m1 = Cpu_model.run_to_memory prog naive in
  let m2 = Cpu_model.run_to_memory prog ast in
  Printf.printf "  live-out array C identical: %b\n"
    (Interp.arrays_equal m1 m2 "C")
