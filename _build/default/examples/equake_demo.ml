(* equake example: post-tiling fusion around a dynamic counted loop.

   The sparse matrix-vector product's inner while loop (modelled by a
   dynamic guard over an affine superset) cannot be fused through an
   extension schedule, but the gathering statement can: the paper's flow
   fuses it with the follow-up affine nests, exactly the maxfuse result,
   without the manual loop permutation PPCG needs.

   Run with: dune exec examples/equake_demo.exe *)

let () =
  let prog = Equake.build ~size:Equake.Test () in
  let c = Core.Pipeline.run ~target:Core.Pipeline.Cpu prog in
  print_endline "start-up fusion groups (the while loop stays in its nest):";
  List.iter
    (fun (g : Fusion.group) ->
      Printf.printf "  { %s }\n" (String.concat ", " g.Fusion.stmts))
    c.Core.Pipeline.startup.Fusion.groups;
  print_endline "\npartial fusion decided by Algorithm 1:";
  List.iter
    (fun (id, rest) ->
      Printf.printf
        "  space %d is fused only partially; kept in the original nest: %s\n" id
        (String.concat ", " rest))
    c.Core.Pipeline.plan.Core.Post_tiling.residual;
  List.iter
    (fun (r : Core.Post_tiling.root) ->
      List.iter
        (fun (e : Core.Tile_shapes.extension) ->
          Printf.printf "  fused into the live-out tiles: %s\n"
            (String.concat ", " (Core.Tile_shapes.fused_stmts e)))
        r.Core.Post_tiling.tiling.Core.Tile_shapes.extensions)
    c.Core.Pipeline.plan.Core.Post_tiling.roots;
  print_endline "\ngenerated code:";
  let ast = Gen.generate prog c.Core.Pipeline.tree in
  print_endline (Ast.to_string ast);
  let deps = Deps.compute prog in
  let naive =
    Gen.generate prog
      (Build_tree.initial_tree prog
         (Fusion.schedule prog ~deps ~target_parallelism:1 Fusion.Minfuse))
  in
  let m1 = Cpu_model.run_to_memory prog naive in
  let m2 = Cpu_model.run_to_memory prog ast in
  Printf.printf "live-out POS identical: %b\n" (Interp.arrays_equal m1 m2 "POS")
