(* memcomp: command-line driver for the post-tiling-fusion compiler.

   Subcommands:
     list                          available workloads
     compile  -w NAME [options]   run a flow, print schedule tree / code
     run      -w NAME [options]   compile, execute through the CPU model
     compare  -w NAME [options]   all flows side by side *)

open Cmdliner

let prog_of name small =
  let e = Registry.find name in
  if small then e.Registry.small () else e.Registry.build ()

type flow = F_naive | F_heuristic of Fusion.heuristic | F_ours | F_polymage | F_halide

let flow_conv =
  let parse = function
    | "naive" -> Ok F_naive
    | "minfuse" -> Ok (F_heuristic Fusion.Minfuse)
    | "smartfuse" -> Ok (F_heuristic Fusion.Smartfuse)
    | "maxfuse" -> Ok (F_heuristic Fusion.Maxfuse)
    | "hybridfuse" -> Ok (F_heuristic Fusion.Hybridfuse)
    | "ours" -> Ok F_ours
    | "polymage" -> Ok F_polymage
    | "halide" -> Ok F_halide
    | s -> Error (`Msg (Printf.sprintf "unknown flow %s" s))
  in
  let print fmt f =
    Format.pp_print_string fmt
      (match f with
      | F_naive -> "naive"
      | F_heuristic h -> Fusion.heuristic_name h
      | F_ours -> "ours"
      | F_polymage -> "polymage"
      | F_halide -> "halide")
  in
  Arg.conv (parse, print)

let version_of flow ~tile prog =
  match flow with
  | F_naive -> Exp_util.naive prog
  | F_heuristic h -> Exp_util.heuristic ~tile ~target:Core.Pipeline.Cpu h prog
  | F_ours -> Exp_util.ours ~tile ~target:Core.Pipeline.Cpu prog
  | F_polymage -> Exp_util.polymage_version ~tile ~target:Core.Pipeline.Cpu prog
  | F_halide -> Exp_util.halide_version ~tile ~target:Core.Pipeline.Cpu prog

(* --stats / --trace FILE observability flags (plus the MEMCOMP_TRACE
   env fallback). Instrumentation is off unless one of them is given,
   so the default output stays byte-identical. *)
let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print the observability breakdown (per-phase wall times, pass \
           counters, histograms) after the command.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON file of the nested compiler-phase \
           spans (load in about://tracing or Perfetto). The MEMCOMP_TRACE \
           environment variable is used as a fallback destination.")

let obs_begin ?(json = false) ~stats ~trace () =
  let trace =
    match trace with Some _ -> trace | None -> Sys.getenv_opt "MEMCOMP_TRACE"
  in
  (* MEMCOMP_TRACE_CAP bounds the trace ring on any CLI run *)
  Cli_util.apply_trace_cap None;
  if stats || trace <> None then begin
    Obs.reset ();
    Obs.enable ()
  end;
  fun () ->
    (match trace with
    | Some file -> (
        match Obs.write_chrome_trace file with
        | () -> Printf.eprintf "trace written to %s\n%!" file
        | exception Sys_error msg ->
            Printf.eprintf "warning: could not write trace: %s\n%!" msg)
    | None -> ());
    (* with machine-readable output on stdout the human tables go to
       stderr, so piping the JSON stays clean *)
    if stats then
      if json then output_string stderr (Obs.stats_table ())
      else print_string (Obs.stats_table ())

let workload_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload name (see list).")

let tile_arg =
  Arg.(value & opt int 32 & info [ "t"; "tile" ] ~docv:"N" ~doc:"Tile size.")

let small_arg =
  Arg.(value & flag & info [ "small" ] ~doc:"Use the reduced test-size instance.")

let flow_arg =
  Arg.(
    value
    & opt flow_conv F_ours
    & info [ "f"; "flow" ] ~docv:"FLOW"
        ~doc:"naive | minfuse | smartfuse | maxfuse | hybridfuse | ours | polymage | halide.")

(* Shared worker-count knob: --jobs N, with the MEMCOMP_JOBS
   environment variable as fallback, defaulting to 1. *)
let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel runtime (fallback: the \
           MEMCOMP_JOBS environment variable; default 1).")

let resolve_jobs = Cli_util.resolve_jobs

let exit_race = 3
(* distinct exit code when the tile race checker fires *)

let deps_of prog (v : Exp_util.version) =
  match v.Exp_util.flavor with
  | Exp_util.Ours c -> c.Core.Pipeline.deps
  | Exp_util.Naive | Exp_util.Baseline _ -> Deps.compute prog

let run_parallel_report prog (v : Exp_util.version) ~jobs ~race_check =
  let deps = deps_of prog v in
  let r = Runtime.run ~jobs ~race_check prog ~deps v.Exp_util.ast in
  let oracle = Cpu_model.run_to_memory prog v.Exp_util.ast in
  let ok =
    List.for_all
      (fun a -> Interp.arrays_equal oracle r.Runtime.mem a)
      prog.Prog.live_out
  in
  let m = r.Runtime.metrics in
  Printf.printf "  parallel    %d tiles, %d edges, mode %s, %d jobs\n"
    m.Executor.m_tiles r.Runtime.graph.Tile_graph.n_edges
    (Executor.mode_name m.Executor.m_mode)
    m.Executor.m_jobs;
  Printf.printf "  parallel    %.3f ms wall, %d steals, %d barrier waits\n"
    (1e3 *. r.Runtime.wall_s) m.Executor.m_steals m.Executor.m_barrier_waits;
  Printf.printf "  semantics   %s vs sequential oracle\n"
    (if ok then "ok" else "MISMATCH");
  (match m.Executor.m_violations with
  | [] -> if race_check then Printf.printf "  races       none detected\n"
  | vs ->
      Printf.printf "  races       %d violation(s), first: tile %d read cell %d \
                     of incomplete tile %d\n"
        (List.length vs) (List.hd vs).Executor.v_tile
        (List.hd vs).Executor.v_cell (List.hd vs).Executor.v_writer);
  (ok, m.Executor.m_violations <> [])

let list_cmd =
  let doc = "List the available workloads." in
  let run () =
    List.iter
      (fun (e : Registry.entry) ->
        Printf.printf "  %-18s %s\n" e.Registry.reg_name e.Registry.description)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let compile_cmd =
  let doc = "Compile a workload and print the schedule tree and generated code." in
  let show_tree =
    Arg.(value & flag & info [ "tree" ] ~doc:"Print the schedule tree.")
  in
  let run workload tile small flow tree_flag stats trace =
    let finish = obs_begin ~stats ~trace () in
    let prog = prog_of workload small in
    let v = version_of flow ~tile prog in
    Printf.printf "workload %s, flow %s (compiled in %.3fs)\n\n" workload
      v.Exp_util.ver_name v.Exp_util.compile_s;
    (match (tree_flag, v.Exp_util.flavor) with
    | true, Exp_util.Ours c ->
        print_endline (Schedule_tree.to_string c.Core.Pipeline.tree)
    | true, Exp_util.Baseline (b, _) ->
        print_endline (Schedule_tree.to_string b.Core.Pipeline.b_tree)
    | _ -> ());
    print_endline (Ast.to_string v.Exp_util.ast);
    finish ()
  in
  Cmd.v
    (Cmd.info "compile" ~doc)
    Term.(
      const run $ workload_arg $ tile_arg $ small_arg $ flow_arg $ show_tree
      $ stats_arg $ trace_arg)

let run_cmd =
  let doc = "Compile and execute a workload through the trace-driven CPU model." in
  let threads =
    Arg.(value & opt int 32 & info [ "j"; "threads" ] ~docv:"N" ~doc:"Thread count.")
  in
  let run_parallel =
    Arg.(
      value
      & opt ~vopt:(Some 0) (some int) None
      & info [ "run-parallel" ] ~docv:"N"
          ~doc:
            "Also execute the compiled pipeline on the parallel tile-graph \
             runtime with $(docv) worker domains (0 or no value: use the \
             --jobs / MEMCOMP_JOBS knob) and check the result against the \
             sequential interpreter oracle.")
  in
  let race_check =
    Arg.(
      value & flag
      & info [ "race-check" ]
          ~doc:
            "Enable the debug-mode tile race checker during --run-parallel; \
             detected violations exit with code 3.")
  in
  let run workload tile small flow threads par jobs race_check stats trace =
    let finish = obs_begin ~stats ~trace () in
    let prog = prog_of workload small in
    let v = version_of flow ~tile prog in
    let report = Exp_util.cpu_profile prog v in
    Printf.printf "workload %s, flow %s\n" workload v.Exp_util.ver_name;
    Printf.printf "  instances   %d\n" report.Cpu_model.instances;
    Printf.printf "  operations  %d\n" report.Cpu_model.total_ops;
    List.iter
      (fun (l : Cache.level_stats) ->
        Printf.printf "  %-4s hits %d misses %d\n" l.Cache.level l.Cache.hits
          l.Cache.misses)
      report.Cpu_model.cache;
    Printf.printf "  DRAM        %d\n" report.Cpu_model.dram;
    Printf.printf "  modelled    %.3f ms at %d threads\n"
      (Exp_util.cpu_time_ms prog v ~threads)
      threads;
    let status =
      match par with
      | None -> 0
      | Some n ->
          let jobs = if n > 0 then n else resolve_jobs jobs in
          let ok, raced = run_parallel_report prog v ~jobs ~race_check in
          if raced then exit_race else if ok then 0 else 2
    in
    finish ();
    if status <> 0 then Stdlib.exit status
  in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      const run $ workload_arg $ tile_arg $ small_arg $ flow_arg $ threads
      $ run_parallel $ jobs_arg $ race_check $ stats_arg $ trace_arg)

let compare_cmd =
  let doc =
    "Compare all flows on one workload (model times + semantics); exits \
     nonzero if any flow's live-out values mismatch the naive reference."
  in
  let run workload tile small stats trace =
    let finish = obs_begin ~stats ~trace () in
    let prog = prog_of workload small in
    let reference = Exp_util.naive prog in
    let flows =
      [ F_naive; F_heuristic Fusion.Minfuse; F_heuristic Fusion.Smartfuse;
        F_heuristic Fusion.Maxfuse; F_heuristic Fusion.Hybridfuse; F_polymage;
        F_halide; F_ours
      ]
    in
    let mismatches = ref [] in
    let rows =
      List.map
        (fun f ->
          let v = version_of f ~tile prog in
          let ok = Exp_util.check_against prog reference v in
          if not ok then mismatches := v.Exp_util.ver_name :: !mismatches;
          [ v.Exp_util.ver_name;
            Printf.sprintf "%.3f" (Exp_util.cpu_time_ms prog v ~threads:1);
            Printf.sprintf "%.3f" (Exp_util.cpu_time_ms prog v ~threads:32);
            Printf.sprintf "%.2f" v.Exp_util.compile_s;
            (if ok then "ok" else "MISMATCH")
          ])
        flows
    in
    Exp_util.print_table
      ~header:[ "flow"; "1t (ms)"; "32t (ms)"; "compile (s)"; "semantics" ]
      rows;
    finish ();
    if !mismatches <> [] then begin
      Printf.eprintf "compare: semantic mismatch on %s (flows: %s)\n%!" workload
        (String.concat ", " (List.rev !mismatches));
      Stdlib.exit 1
    end
  in
  Cmd.v
    (Cmd.info "compare" ~doc)
    Term.(const run $ workload_arg $ tile_arg $ small_arg $ stats_arg $ trace_arg)

let explain_cmd =
  let doc =
    "Explain how a workload was compiled and where its memory traffic goes: \
     scheduler decision trace (fusion accept/reject with reasons, tile-shape \
     candidates, post-tiling rewrites), polyhedral and measured per-array \
     traffic attribution, reuse-distance histogram, and runtime tile \
     timelines."
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the report as JSON instead of markdown (stdout stays \
                machine-readable; --stats tables go to stderr).")
  in
  let run workload tile small flow jobs json stats trace =
    (* the event log needs Obs enabled regardless of --stats/--trace *)
    let finish = obs_begin ~json ~stats ~trace:None () in
    let prog = prog_of workload small in
    let jobs = resolve_jobs jobs in
    let ex =
      Explain.collect ~tile ~jobs ~workload
        ~make:(fun p -> version_of flow ~tile p)
        prog
    in
    if json then print_endline (Explain.to_json_string ex)
    else print_string (Explain.to_markdown ex);
    (* --trace here writes the merged trace: compiler spans + structured
       decision/timeline events *)
    (match trace with
    | Some file -> (
        match Events.write_chrome_trace file with
        | () -> Printf.eprintf "merged trace written to %s\n%!" file
        | exception Sys_error msg ->
            Printf.eprintf "warning: could not write trace: %s\n%!" msg)
    | None -> ());
    finish ()
  in
  Cmd.v
    (Cmd.info "explain" ~doc)
    Term.(
      const run $ workload_arg $ tile_arg $ small_arg $ flow_arg $ jobs_arg
      $ json_flag $ stats_arg $ trace_arg)

let verify_cmd =
  let doc =
    "Independently verify schedule legality: a static checker re-derives the \
     instance order from the final schedule tree alone and proves every \
     dependence arc covered, then a dynamic shadow run tags each cell with \
     its writer instances and checks def-before-use, recompute idempotence \
     and live-out coverage against the naive reference. Exits 2 on any \
     violation, dumping the offending dependence and schedule path."
  in
  let flow_opt =
    Arg.(
      value
      & opt (some flow_conv) None
      & info [ "f"; "flow" ] ~docv:"FLOW"
          ~doc:
            "Verify a single flow (naive | minfuse | smartfuse | maxfuse | \
             hybridfuse | ours | polymage | halide); default: all of them.")
  in
  let static_only =
    Arg.(
      value & flag
      & info [ "static-only" ]
          ~doc:"Skip the dynamic shadow run (no interpretation).")
  in
  let run workload tile small flow static_only stats trace =
    let finish = obs_begin ~stats ~trace () in
    let prog = prog_of workload small in
    let flows =
      match flow with
      | Some f -> [ f ]
      | None ->
          [ F_naive; F_heuristic Fusion.Minfuse; F_heuristic Fusion.Smartfuse;
            F_heuristic Fusion.Maxfuse; F_heuristic Fusion.Hybridfuse; F_ours;
            F_polymage; F_halide
          ]
    in
    let reference = lazy (Exp_util.naive prog) in
    let failed = ref false in
    List.iter
      (fun f ->
        let v = version_of f ~tile prog in
        let tree = Exp_util.tree_of prog v in
        let rep = Obs.span "verify.static" (fun () -> Legality.check prog tree) in
        Printf.printf
          "flow %-10s static   %d occurrences, %d deps checked, %d inexact: %s\n"
          v.Exp_util.ver_name rep.Legality.rep_occurrences
          rep.Legality.rep_deps_checked rep.Legality.rep_inexact
          (if rep.Legality.rep_violations = [] then "ok" else "VIOLATIONS");
        List.iter
          (fun viol ->
            failed := true;
            Printf.printf "  %s\n" (Legality.violation_string viol))
          rep.Legality.rep_violations;
        if not static_only then begin
          let sh =
            Obs.span "verify.shadow" (fun () ->
                Shadow.validate prog ~ref_ast:(Lazy.force reference).Exp_util.ast
                  ~ast:v.Exp_util.ast)
          in
          Printf.printf
            "flow %-10s shadow   %d reads, %d writes, %d recomputed: %s\n"
            v.Exp_util.ver_name sh.Shadow.sh_reads sh.Shadow.sh_writes
            sh.Shadow.sh_recomputed
            (if sh.Shadow.sh_violations = [] then "ok" else "VIOLATIONS");
          List.iter
            (fun viol ->
              failed := true;
              Printf.printf "  %s\n" (Shadow.violation_string viol))
            sh.Shadow.sh_violations
        end)
      flows;
    finish ();
    if !failed then Stdlib.exit 2
  in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(
      const run $ workload_arg $ tile_arg $ small_arg $ flow_opt $ static_only
      $ stats_arg $ trace_arg)

let tune_cmd =
  let doc =
    "Model-guided autotuning: search the joint space of tile shapes, fusion \
     heuristic and post-tiling knobs, scoring candidates with the analytic \
     machine model (DRAM traffic + staged bytes + tile-level parallelism). \
     Every candidate is checked by the independent legality verifier \
     (illegal configurations are hard-rejected and counted), and results \
     are cached in a content-addressed tuning database so repeat tunes of \
     an unchanged workload answer instantly."
  in
  let workload_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload name (see list).")
  in
  let strategy_conv =
    let parse s =
      match Tuner.strategy_of_string s with
      | Some st -> Ok st
      | None -> Error (`Msg (Printf.sprintf "unknown strategy %s" s))
    in
    let print fmt s = Format.pp_print_string fmt (Tuner.strategy_name s) in
    Arg.conv (parse, print)
  in
  let strategy_arg =
    Arg.(
      value
      & opt strategy_conv Tuner.Greedy
      & info [ "strategy" ] ~docv:"NAME"
          ~doc:"exhaustive | greedy | random (all deterministic under --seed).")
  in
  let budget_arg =
    Arg.(
      value & opt int 48
      & info [ "budget" ] ~docv:"N"
          ~doc:"Maximum candidate evaluations (compile + verify + score).")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "PRNG seed for the random strategy (fallback: the FUZZ_SEED \
             environment variable; default 0).")
  in
  let db_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "db" ] ~docv:"PATH"
          ~doc:
            "Tuning database file (fallback: the MEMCOMP_TUNE_DB environment \
             variable; no default — without it nothing is persisted).")
  in
  let force_arg =
    Arg.(
      value & flag
      & info [ "force" ]
          ~doc:"Re-tune even when the database already has an entry.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the tuning report as JSON instead of markdown.")
  in
  let run workload small strategy budget jobs seed db force json stats trace =
    let finish = obs_begin ~json ~stats ~trace () in
    let prog = prog_of workload small in
    let jobs = resolve_jobs jobs in
    let seed =
      match seed with Some s -> s | None -> Cli_util.seed_env_default ()
    in
    let db_path =
      match db with Some _ -> db | None -> Sys.getenv_opt "MEMCOMP_TUNE_DB"
    in
    match
      Tuner.tune ~strategy ~budget ~jobs ~seed ?db_path ~force prog
    with
    | Error msg ->
        Printf.eprintf "memcomp tune: %s\n%!" msg;
        finish ();
        Stdlib.exit 2
    | Ok r ->
        if json then
          print_endline (Json_util.Json.to_string (Tuner.report_json r))
        else print_string (Tuner.report_markdown r);
        finish ()
  in
  Cmd.v (Cmd.info "tune" ~doc)
    Term.(
      const run $ workload_pos $ small_arg $ strategy_arg $ budget_arg
      $ jobs_arg $ seed_arg $ db_arg $ force_arg $ json_flag $ stats_arg
      $ trace_arg)

let serve_cmd =
  let doc =
    "Run the long-lived compile daemon: POST /compile, GET /metrics \
     (OpenMetrics), /healthz, /buildinfo, per-request Chrome traces at \
     /trace/<req-id>, and the flight recorder's /history, /sketch and \
     /alerts endpoints (continuous self-scrape into an on-disk time-series \
     store with an SLO/anomaly watchdog). Serves on the loopback interface \
     until SIGTERM/SIGINT."
  in
  let port_arg =
    Arg.(
      value & opt int 8080
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:"TCP port to bind on 127.0.0.1 (0 picks a free port).")
  in
  let log_level_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:
            "Structured-log threshold: debug | info | warn | error (fallback: \
             the MEMCOMP_LOG environment variable; default warn). Logs are \
             JSONL on stderr; compile requests carry a correlating req id.")
  in
  let tune_db_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tune-db" ] ~docv:"PATH"
          ~doc:
            "Tuning database backing the \"tuned\" compile flow and \
             GET /tuned/<workload> (fallback: the MEMCOMP_TUNE_DB \
             environment variable).")
  in
  let scrape_interval_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "scrape-interval" ] ~docv:"SECONDS"
          ~doc:
            "Flight-recorder self-scrape period (fallback: the \
             MEMCOMP_SCRAPE_INTERVAL environment variable; default 1.0).")
  in
  let tsdb_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tsdb" ] ~docv:"DIR"
          ~doc:
            "Flight-recorder time-series directory (fallback: the \
             MEMCOMP_TSDB environment variable; default: a fresh temporary \
             directory).")
  in
  let tsdb_retention_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "tsdb-retention" ] ~docv:"SECONDS"
          ~doc:
            "Raw-resolution retention window; points older than this \
             downsample to 10s resolution (and to 60s after 15x this \
             window). Default 600.")
  in
  let tsdb_seg_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "tsdb-seg" ] ~docv:"POINTS"
          ~doc:
            "Points per raw time-series segment before rotation (default \
             2048; smaller segments age into coarser resolutions sooner).")
  in
  let trace_cap_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-cap" ] ~docv:"N"
          ~doc:
            "Bound the in-memory trace-event ring (fallback: the \
             MEMCOMP_TRACE_CAP environment variable).")
  in
  let slo_error_rate_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "slo-error-rate" ] ~docv:"FRACTION"
          ~doc:"Watchdog error-rate threshold per scrape window (default 0.5).")
  in
  let slo_p99_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "slo-p99-ms" ] ~docv:"MS"
          ~doc:"Watchdog p99 compile-latency threshold (default 5000).")
  in
  let run port jobs log_level tune_db scrape_interval tsdb tsdb_retention
      tsdb_seg trace_cap slo_error_rate slo_p99 =
    (match Cli_util.set_log_level log_level with
    | Ok () -> ()
    | Error msg ->
        Printf.eprintf "memcomp serve: %s\n%!" msg;
        Stdlib.exit 2);
    Cli_util.apply_trace_cap trace_cap;
    let tune_db =
      match tune_db with
      | Some _ -> tune_db
      | None -> Sys.getenv_opt "MEMCOMP_TUNE_DB"
    in
    let interval =
      match scrape_interval with
      | Some s -> s
      | None -> (
          match
            Option.bind (Sys.getenv_opt "MEMCOMP_SCRAPE_INTERVAL")
              float_of_string_opt
          with
          | Some s -> s
          | None -> Flight.default_cfg.Flight.fl_interval_s)
    in
    let tsdb_dir =
      match tsdb with Some _ -> tsdb | None -> Sys.getenv_opt "MEMCOMP_TSDB"
    in
    let tsdb_cfg =
      let c =
        match tsdb_retention with
        | None -> Tsdb.default_config
        | Some raw ->
            { Tsdb.default_config with
              Tsdb.ret_raw_s = raw;
              Tsdb.ret_mid_s = 15. *. raw
            }
      in
      match tsdb_seg with
      | Some n -> { c with Tsdb.seg_points = max 16 n }
      | None -> c
    in
    let flight =
      { Flight.fl_interval_s = Float.max 0.01 interval;
        Flight.fl_dir = tsdb_dir;
        Flight.fl_tsdb = tsdb_cfg;
        Flight.fl_rules =
          Watchdog.default_rules ?error_rate:slo_error_rate ?p99_ms:slo_p99 ()
      }
    in
    Server.run ~port ~workers:(resolve_jobs jobs) ?tune_db ~flight ()
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ port_arg $ jobs_arg $ log_level_arg $ tune_db_arg
      $ scrape_interval_arg $ tsdb_arg $ tsdb_retention_arg $ tsdb_seg_arg
      $ trace_cap_arg $ slo_error_rate_arg $ slo_p99_arg)

let top_cmd =
  let doc =
    "Live terminal dashboard over a running serve daemon: request \
     throughput, latency-quantile sparklines from the flight recorder, \
     compile-flow mix, cache hit ratio, process gauges and firing watchdog \
     alerts. --once prints a single frame; --once --json emits a \
     machine-readable document."
  in
  let port_arg =
    Arg.(
      value & opt int 8080
      & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Daemon port on 127.0.0.1.")
  in
  let interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh period (default 1).")
  in
  let once_arg =
    Arg.(value & flag & info [ "once" ] ~doc:"Print one frame and exit.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"With --once: emit JSON instead of the frame.")
  in
  let run port interval once json =
    Stdlib.exit (Top.run ~port ~interval ~once:(once || json) ~json)
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(const run $ port_arg $ interval_arg $ once_arg $ json_arg)

let () =
  let doc =
    "post-tiling fusion: compositing automatic transformations on computations \
     and data (MICRO 2020 reproduction)"
  in
  let info = Cmd.info "memcomp" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; compile_cmd; run_cmd; compare_cmd; explain_cmd;
            verify_cmd; tune_cmd; serve_cmd; top_cmd ]))
