(** Worker-pool executor over a {!Tile_graph.t}, running tile bodies
    on OCaml 5 domains against a shared {!Interp.memory}.

    Never touches [Obs] (which is not thread-safe): all metrics are
    accumulated in per-worker slots and merged after the domains are
    joined; the caller is responsible for reporting them. *)

type mode =
  | Seq  (** sequential in item-id order on the calling domain *)
  | Wavefront
      (** conservative barrier mode: longest-path levels, each level a
          parallel-for with a full barrier after it *)
  | Dag
      (** dependence-aware work stealing over per-worker deques with
          atomic predecessor counters *)

val mode_name : mode -> string

type config = { jobs : int; mode : mode; race_check : bool }

type violation = {
  v_tile : int;  (** the reading tile *)
  v_writer : int;  (** the incomplete producer tile *)
  v_cell : int;  (** element-granular global cell index *)
}

type timeline_entry = {
  tl_tile : int;
  tl_worker : int;
  tl_start_s : float;  (** relative to the executor invocation *)
  tl_dur_s : float;
}

type metrics = {
  m_mode : mode;
  m_jobs : int;
  m_tiles : int;
  m_steals : int;
  m_barrier_waits : int;
  m_busy_s : float array;  (** per-worker busy wall time, seconds *)
  m_instances : int;  (** executed statement instances, summed *)
  m_violations : violation list;
  m_timeline : timeline_entry list;
      (** per-tile execution intervals, sorted by start time; collected
          in per-worker slots (never through [Obs]) and merged after the
          join. Worker busy time is exactly these durations summed per
          worker, in every mode. *)
}

val run : config -> Prog.t -> Tile_graph.t -> Interp.memory -> metrics

val run_sequential :
  ?order:int array ->
  ?race_check:bool ->
  Prog.t -> Tile_graph.t -> Interp.memory -> metrics
(** Execute items one by one in [order] (default: item-id order, the
    original sequential schedule). With [race_check], reads of cells
    whose producer tile has not completed are recorded -- executing a
    deliberately wrong [order] is how the race checker is itself
    tested. *)
