(* Facade: allocate memory, fill it deterministically (same seed as
   the machine models, so results are comparable with [Interp.run] /
   [Cpu_model.run_to_memory]), extract the tile graph, execute it, and
   report runtime.* observability counters from the main thread. *)

type result = {
  mem : Interp.memory;
  graph : Tile_graph.t;
  metrics : Executor.metrics;
  wall_s : float;
}

let default_mode (g : Tile_graph.t) =
  if g.Tile_graph.has_opaque then Executor.Wavefront else Executor.Dag

let run ?(jobs = 1) ?mode ?(race_check = false) ?max_tiles ?split_depth
    ?(seed = 42) (p : Prog.t) ~deps ast =
  Obs.span "runtime.run" @@ fun () ->
  let jobs = max 1 jobs in
  let mem = Interp.alloc p in
  Cpu_model.deterministic_fill ~seed p mem;
  let graph =
    Obs.span "runtime.extract" (fun () ->
        Tile_graph.extract ?max_tiles ?split_depth p ~deps ast)
  in
  let mode = match mode with Some m -> m | None -> default_mode graph in
  let t0 = Unix.gettimeofday () in
  let metrics =
    Obs.span "runtime.execute" (fun () ->
        Executor.run { Executor.jobs; mode; race_check } p graph mem)
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  Log.info ~cat:"runtime" "execute.end"
    [ ("prog", Json_util.S p.Prog.prog_name);
      ("tiles", Json_util.I metrics.Executor.m_tiles);
      ("jobs", Json_util.I jobs);
      ("wall_ms", Json_util.F (1e3 *. wall_s))
    ];
  Obs.add "runtime.tiles" metrics.Executor.m_tiles;
  Obs.add "runtime.edges" graph.Tile_graph.n_edges;
  Obs.add "runtime.steals" metrics.Executor.m_steals;
  Obs.add "runtime.barrier_waits" metrics.Executor.m_barrier_waits;
  Obs.add "runtime.race_violations" (List.length metrics.Executor.m_violations);
  Obs.add "runtime.workers" jobs;
  Obs.add "runtime.busy_us"
    (int_of_float
       (1e6 *. Array.fold_left ( +. ) 0.0 metrics.Executor.m_busy_s));
  Array.iter
    (fun b -> Obs.observe "runtime.worker_busy_us" (1e6 *. b))
    metrics.Executor.m_busy_s;
  (* timeline events carry the executor-relative start; shift to the
     Obs epoch so they interleave correctly with compiler spans *)
  let exec_epoch = Obs.elapsed_s () -. wall_s in
  List.iter
    (fun e ->
      Events.emit ~ts_s:(exec_epoch +. e.Executor.tl_start_s)
        ~dur_s:e.Executor.tl_dur_s ~cat:"runtime" "runtime.tile"
        [ ("tile", Events.I e.Executor.tl_tile);
          ("worker", Events.I e.Executor.tl_worker) ])
    metrics.Executor.m_timeline;
  { mem; graph; metrics; wall_s }
