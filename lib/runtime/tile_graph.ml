(* Tile-graph extraction: split a generated AST at the point-band
   boundary ([Ast.Point]) into per-tile work items and derive
   inter-tile dependence edges.

   Edges combine two sources of information:

   - a cheap interval analysis of each item's array accesses
     (per-(array, read/write) bounding boxes over the item's loop
     ranges), which decides whether two items can touch the same
     cells at all; and
   - the presburger dependence relations of the original program,
     which gate box conflicts at statement-pair granularity: a box
     overlap between items whose statements have no dependence in
     either direction is a false sharing of the over-approximation
     (e.g. idempotent halo recomputation) and produces no edge.

   Items whose accesses cannot be bounded (an index depending on a
   variable we could not resolve) are marked opaque and ordered
   conservatively against every other item, which degrades the graph
   towards a sequence and makes the executor fall back to
   wavefront/barrier execution. *)

type itv = int * int

exception Unanalyzable of string

let itv_add (a, b) (c, d) = (a + c, b + d)

let itv_mul k ((a, b) : itv) = if k >= 0 then (k * a, k * b) else (k * b, k * a)

let rec eval_itv ~params ~env : Ast.expr -> itv = function
  | Ast.Int k -> (k, k)
  | Ast.Var v -> (
      match List.assoc_opt v env with
      | Some i -> i
      | None -> raise (Unanalyzable v))
  | Ast.Param p -> (
      match List.assoc_opt p params with
      | Some x -> (x, x)
      | None -> raise (Unanalyzable p))
  | Ast.Sum es ->
      List.fold_left (fun acc e -> itv_add acc (eval_itv ~params ~env e)) (0, 0) es
  | Ast.Mul (k, e) -> itv_mul k (eval_itv ~params ~env e)
  | Ast.Floor_div (e, d) ->
      let a, b = eval_itv ~params ~env e in
      (Presburger.Vec.floor_div a d, Presburger.Vec.floor_div b d)
  | Ast.Ceil_div (e, d) ->
      let a, b = eval_itv ~params ~env e in
      (Presburger.Vec.ceil_div a d, Presburger.Vec.ceil_div b d)
  | Ast.Min_of es ->
      List.fold_left
        (fun (la, lb) e ->
          let a, b = eval_itv ~params ~env e in
          (min la a, min lb b))
        (max_int, max_int) es
  | Ast.Max_of es ->
      List.fold_left
        (fun (la, lb) e ->
          let a, b = eval_itv ~params ~env e in
          (max la a, max lb b))
        (min_int, min_int) es

type box = itv array

type item = {
  id : int;  (** also the sequential execution order *)
  body : Ast.t;
  env : (string * int) list;  (** enumerated outer loop bindings *)
  kernel : int;  (** enclosing kernel id, -1 outside any kernel *)
  reads : (string, box) Hashtbl.t;
  writes : (string, box) Hashtbl.t;
  stmts : string list;
  opaque : bool;  (** accesses could not be bounded *)
}

type t = {
  items : item array;
  succs : int list array;
  preds : int array;  (** predecessor counts, aligned with [items] *)
  n_edges : int;
  has_opaque : bool;
}

let n_items g = Array.length g.items

let overlap (b1 : box) (b2 : box) =
  Array.length b1 = Array.length b2
  && Array.for_all2 (fun (a, b) (c, d) -> a <= d && c <= b) b1 b2

let merge_box tbl arr (b : box) =
  match Hashtbl.find_opt tbl arr with
  | None -> Hashtbl.replace tbl arr b
  | Some old ->
      Hashtbl.replace tbl arr
        (Array.map2 (fun (a, b) (c, d) -> (min a c, max b d)) old b)

let collect_boxes ~params ~env0 (p : Prog.t) body =
  let reads = Hashtbl.create 8 in
  let writes = Hashtbl.create 8 in
  let stmts = ref [] in
  let box_of_access (args : itv array) (a : Prog.access) : box =
    Array.of_list
      (List.map
         (fun (ix : Prog.index) ->
           let acc =
             List.fold_left
               (fun acc (d, c) ->
                 if d < 0 || d >= Array.length args then
                   raise (Unanalyzable "dim")
                 else itv_add acc (itv_mul c args.(d)))
               (ix.Prog.aff.Presburger.Aff.cst, ix.Prog.aff.Presburger.Aff.cst)
               ix.Prog.aff.Presburger.Aff.dims
           in
           let lo, hi =
             List.fold_left
               (fun acc (pname, c) ->
                 match List.assoc_opt pname params with
                 | Some v -> itv_add acc (c * v, c * v)
                 | None -> raise (Unanalyzable pname))
               acc ix.Prog.aff.Presburger.Aff.params
           in
           if ix.Prog.div = 1 then (lo, hi)
           else
             ( Presburger.Vec.floor_div lo ix.Prog.div,
               Presburger.Vec.floor_div hi ix.Prog.div ))
         a.Prog.indices)
  in
  let rec walk env = function
    | Ast.Nop -> ()
    | Ast.Block ts -> List.iter (walk env) ts
    | Ast.Kernel (_, t) | Ast.Point t -> walk env t
    (* guards only restrict the executed instances, so ignoring them
       keeps the boxes a sound over-approximation *)
    | Ast.If (_, t) -> walk env t
    | Ast.For { var; lb; ub; body; _ } ->
        let llo, _ = eval_itv ~params ~env lb in
        let _, uhi = eval_itv ~params ~env ub in
        walk ((var, (llo, max llo uhi)) :: env) body
    | Ast.Call { stmt; args } ->
        let st = Prog.find_stmt p stmt in
        let args = Array.of_list (List.map (eval_itv ~params ~env) args) in
        if not (List.mem stmt !stmts) then stmts := stmt :: !stmts;
        List.iter
          (fun (r : Prog.access) ->
            merge_box reads r.Prog.array (box_of_access args r))
          st.Prog.reads;
        merge_box writes st.Prog.write.Prog.array
          (box_of_access args st.Prog.write)
  in
  walk env0 body;
  (reads, writes, List.rev !stmts)

let rec contains_point = function
  | Ast.Point _ -> true
  | Ast.For { body; _ } | Ast.If (_, body) | Ast.Kernel (_, body) ->
      contains_point body
  | Ast.Block ts -> List.exists contains_point ts
  | Ast.Call _ | Ast.Nop -> false

let extract ?(max_tiles = 1024) ?(split_depth = 2) (p : Prog.t)
    ~(deps : Deps.t list) ast =
  let params = p.Prog.params in
  let items = ref [] in
  let n = ref 0 in
  let add_item ~kernel ~env body =
    let id = !n in
    incr n;
    let item =
      try
        let env0 = List.map (fun (v, x) -> (v, (x, x))) env in
        let reads, writes, stmts = collect_boxes ~params ~env0 p body in
        { id; body; env; kernel; reads; writes; stmts; opaque = false }
      with Unanalyzable _ ->
        { id;
          body;
          env;
          kernel;
          reads = Hashtbl.create 1;
          writes = Hashtbl.create 1;
          stmts = [];
          opaque = true
        }
    in
    items := item :: !items
  in
  (* [depth] is the remaining fallback-splitting budget for loops that
     contain no point marker (naive or residual code); loops above a
     point marker are always enumerated while the (soft) tile cap
     allows. *)
  let rec walk ~depth env kernel node =
    match node with
    | Ast.Nop -> ()
    | Ast.Block ts -> List.iter (walk ~depth env kernel) ts
    | Ast.Kernel (k, t) -> walk ~depth env k t
    | Ast.Point body -> add_item ~kernel ~env body
    | Ast.If (conds, body) -> (
        match
          List.for_all (fun c -> Ast.eval_expr ~params ~env c >= 0) conds
        with
        | true -> walk ~depth env kernel body
        | false -> ()
        | exception Invalid_argument _ -> add_item ~kernel ~env node)
    | Ast.For { var; lb; ub; body; _ } -> (
        let bounds =
          match (Ast.eval_expr ~params ~env lb, Ast.eval_expr ~params ~env ub)
          with
          | b -> Some b
          | exception Invalid_argument _ -> None
        in
        let has_pt = contains_point body in
        match bounds with
        | Some (lo, hi) when hi < lo -> ()
        | Some (lo, hi)
          when (has_pt || depth > 0) && !n + (hi - lo + 1) <= max_tiles ->
            let depth = if has_pt then depth else depth - 1 in
            for v = lo to hi do
              walk ~depth ((var, v) :: env) kernel body
            done
        | _ -> add_item ~kernel ~env node)
    | Ast.Call _ -> add_item ~kernel ~env node
  in
  walk ~depth:split_depth [] (-1) ast;
  let items = Array.of_list (List.rev !items) in
  let n = Array.length items in
  let dep_pair = Hashtbl.create 32 in
  List.iter
    (fun (d : Deps.t) -> Hashtbl.replace dep_pair (d.Deps.src, d.Deps.dst) ())
    deps;
  let stmt_dep a b =
    List.exists
      (fun s ->
        List.exists
          (fun t -> Hashtbl.mem dep_pair (s, t) || Hashtbl.mem dep_pair (t, s))
          b.stmts)
      a.stmts
  in
  let tbl_conflict w r =
    Hashtbl.fold
      (fun arr box acc ->
        acc
        ||
        match Hashtbl.find_opt r arr with
        | Some box2 -> overlap box box2
        | None -> false)
      w false
  in
  let boxes_conflict a b =
    tbl_conflict a.writes b.reads
    || tbl_conflict a.writes b.writes
    || tbl_conflict b.writes a.reads
  in
  let succs = Array.make n [] in
  let preds = Array.make n 0 in
  let n_edges = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = items.(i) and b = items.(j) in
      let edge =
        if a.opaque || b.opaque then true
        else boxes_conflict a b && stmt_dep a b
      in
      if edge then begin
        succs.(i) <- j :: succs.(i);
        preds.(j) <- preds.(j) + 1;
        incr n_edges
      end
    done;
    succs.(i) <- List.rev succs.(i)
  done;
  { items;
    succs;
    preds;
    n_edges = !n_edges;
    has_opaque = Array.exists (fun it -> it.opaque) items
  }

(* Wavefront levels: longest path from a root. Edges always go from a
   lower id to a higher one, so a single ascending scan settles every
   level before it is read. *)
let levels g =
  let n = Array.length g.items in
  let level = Array.make n 0 in
  for i = 0 to n - 1 do
    List.iter (fun j -> level.(j) <- max level.(j) (level.(i) + 1)) g.succs.(i)
  done;
  level
