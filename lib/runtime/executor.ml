(* Worker-pool executor over a tile graph.

   Three modes:
   - [Seq]: deterministic sequential execution in item-id order on the
     calling domain (the reference against which speedups are
     measured, and the fallback for [jobs = 1]);
   - [Wavefront]: conservative barrier execution -- items are grouped
     into longest-path levels and each level runs as a parallel-for
     with a full barrier between levels;
   - [Dag]: dependence-aware work stealing -- each domain owns a deque
     of ready items, executes from its own bottom and steals from
     other deques' tops, decrementing atomic predecessor counters to
     release successors.

   The executor keeps [Obs] off its hot paths: although Obs is now
   mutex-guarded (domain-safe), taking a global lock per tile would
   serialise the workers, so every metric is accumulated in per-worker
   slots and merged after the domains are joined. Workers only emit
   per-life-cycle [Log.debug] records, which cost nothing below the
   debug threshold. *)

type mode = Seq | Wavefront | Dag

let mode_name = function Seq -> "seq" | Wavefront -> "wavefront" | Dag -> "dag"

type config = { jobs : int; mode : mode; race_check : bool }

type violation = { v_tile : int; v_writer : int; v_cell : int }

type timeline_entry = {
  tl_tile : int;
  tl_worker : int;
  tl_start_s : float;  (** relative to the executor invocation *)
  tl_dur_s : float;
}

type metrics = {
  m_mode : mode;
  m_jobs : int;
  m_tiles : int;
  m_steals : int;
  m_barrier_waits : int;
  m_busy_s : float array;  (** per-worker busy wall time, seconds *)
  m_instances : int;  (** executed statement instances, summed *)
  m_violations : violation list;
  m_timeline : timeline_entry list;
      (** one entry per executed tile, sorted by start time; busy time
          is the same per-tile intervals summed per worker *)
}

(* ------------------------------------------------------------------ *)
(* Hand-rolled work-stealing deque: a mutex-protected circular buffer
   of item ids. The owner pushes and pops at the bottom (LIFO, for
   locality); thieves take from the top (FIFO, oldest work first). *)
module Deque = struct
  type t = {
    mutable buf : int array;
    mutable top : int;  (** next steal position *)
    mutable bot : int;  (** next push position *)
    lock : Mutex.t;
  }

  let create () = { buf = Array.make 64 (-1); top = 0; bot = 0; lock = Mutex.create () }

  let size d = d.bot - d.top

  let grow d =
    let len = Array.length d.buf in
    let nbuf = Array.make (2 * len) (-1) in
    for i = d.top to d.bot - 1 do
      nbuf.(i mod (2 * len)) <- d.buf.(i mod len)
    done;
    d.buf <- nbuf

  let push d v =
    Mutex.lock d.lock;
    if size d = Array.length d.buf then grow d;
    d.buf.(d.bot mod Array.length d.buf) <- v;
    d.bot <- d.bot + 1;
    Mutex.unlock d.lock

  let pop d =
    Mutex.lock d.lock;
    let r =
      if size d > 0 then begin
        d.bot <- d.bot - 1;
        Some d.buf.(d.bot mod Array.length d.buf)
      end
      else None
    in
    Mutex.unlock d.lock;
    r

  let steal d =
    Mutex.lock d.lock;
    let r =
      if size d > 0 then begin
        let v = d.buf.(d.top mod Array.length d.buf) in
        d.top <- d.top + 1;
        Some v
      end
      else None
    in
    Mutex.unlock d.lock;
    r
end

(* ------------------------------------------------------------------ *)
(* Debug-mode race checker: records the last writer tile of every
   memory cell; a read of a cell whose writer is a different tile that
   has not completed is a RAW violation -- the dependence edge that
   should have ordered the two tiles is missing. Writes by several
   tiles to the same cell are legal here (idempotent halo
   recomputation), so only reads are checked. *)
type race_state = {
  writer : int array;  (** per cell, last writer tile id, -1 = input *)
  reader : int array;  (** per cell, last reader tile id, -1 = none *)
  completed : bool Atomic.t array;  (** per tile *)
}

let max_recorded_violations = 1000

let make_race n_tiles mem =
  let cells = max 1 (Interp.address_cells mem) in
  { writer = Array.make cells (-1);
    reader = Array.make cells (-1);
    completed = Array.init (max 1 n_tiles) (fun _ -> Atomic.make false)
  }

let race_observer race cur record ~kernel:_ ~stmt:_ ~addr ~write =
  let cell = addr / Interp.elem_bytes in
  let me = !cur in
  if write then begin
    (* write-side: a cell already read by an id-later tile means that
       reader should have seen this value -- its RAW dependence was
       executed backwards. Any real cell-level RAW implies a tile-graph
       edge ordering the writer first, so this never fires on a valid
       topological order. *)
    let r = race.reader.(cell) in
    if r > me && r <> me then record { v_tile = r; v_writer = me; v_cell = cell };
    race.writer.(cell) <- me
  end
  else begin
    (* read-side: the recorded producer has started but not completed *)
    let w = race.writer.(cell) in
    if w >= 0 && w <> me && not (Atomic.get race.completed.(w)) then
      record { v_tile = me; v_writer = w; v_cell = cell };
    race.reader.(cell) <- me
  end

(* ------------------------------------------------------------------ *)

let finish_metrics ~mode ~jobs ~steals ~barrier_waits ~busy ~tiles ~insts
    ~violations ~timelines =
  { m_mode = mode;
    m_jobs = jobs;
    m_tiles = Array.fold_left ( + ) 0 tiles;
    m_steals = Array.fold_left ( + ) 0 steals;
    m_barrier_waits = barrier_waits;
    m_busy_s = busy;
    m_instances = Array.fold_left ( + ) 0 insts;
    m_violations = List.concat (Array.to_list violations);
    m_timeline =
      List.concat (Array.to_list (Array.map List.rev timelines))
      |> List.sort (fun a b -> compare a.tl_start_s b.tl_start_s)
  }

let run_sequential ?order ?(race_check = false) (p : Prog.t)
    (g : Tile_graph.t) mem =
  let n = Tile_graph.n_items g in
  let order = match order with Some o -> o | None -> Array.init n Fun.id in
  let race = if race_check then Some (make_race n mem) else None in
  let viols = ref [] in
  let cur = ref (-1) in
  let observer =
    Option.map
      (fun r ->
        race_observer r cur (fun v ->
            if List.length !viols < max_recorded_violations then
              viols := v :: !viols))
      race
  in
  let stats, exec = Interp.tile_runner ?observer p mem in
  let busy = Array.make 1 0.0 in
  let timeline = ref [] in
  let run0 = Unix.gettimeofday () in
  Array.iter
    (fun i ->
      let it = g.Tile_graph.items.(i) in
      let t0 = Unix.gettimeofday () in
      cur := i;
      exec ~kernel:it.Tile_graph.kernel ~env:it.Tile_graph.env
        it.Tile_graph.body;
      (match race with
      | Some r -> Atomic.set r.completed.(i) true
      | None -> ());
      let dur = Unix.gettimeofday () -. t0 in
      busy.(0) <- busy.(0) +. dur;
      timeline :=
        { tl_tile = i; tl_worker = 0; tl_start_s = t0 -. run0; tl_dur_s = dur }
        :: !timeline)
    order;
  finish_metrics ~mode:Seq ~jobs:1 ~steals:[| 0 |] ~barrier_waits:0 ~busy
    ~tiles:[| n |] ~insts:[| stats.Interp.instances |]
    ~violations:[| List.rev !viols |] ~timelines:[| !timeline |]

let run_dag ~jobs ~race_check (p : Prog.t) (g : Tile_graph.t) mem =
  let n = Tile_graph.n_items g in
  let preds = Array.map Atomic.make g.Tile_graph.preds in
  let pending = Atomic.make n in
  let deques = Array.init jobs (fun _ -> Deque.create ()) in
  let seeded = ref 0 in
  Array.iteri
    (fun i c ->
      if c = 0 then begin
        Deque.push deques.(!seeded mod jobs) i;
        incr seeded
      end)
    g.Tile_graph.preds;
  let steals = Array.make jobs 0 in
  let busy = Array.make jobs 0.0 in
  let tiles = Array.make jobs 0 in
  let insts = Array.make jobs 0 in
  let violations = Array.make jobs [] in
  let timelines = Array.make jobs [] in
  let race = if race_check then Some (make_race n mem) else None in
  let run0 = Unix.gettimeofday () in
  let worker wid () =
    let cur = ref (-1) in
    let observer =
      Option.map
        (fun r ->
          race_observer r cur (fun v ->
              if List.length violations.(wid) < max_recorded_violations then
                violations.(wid) <- v :: violations.(wid)))
        race
    in
    let stats, exec = Interp.tile_runner ?observer p mem in
    let find () =
      match Deque.pop deques.(wid) with
      | Some i -> Some i
      | None ->
          let rec try_steal k =
            if k >= jobs then None
            else
              match Deque.steal deques.((wid + k) mod jobs) with
              | Some i ->
                  steals.(wid) <- steals.(wid) + 1;
                  Some i
              | None -> try_steal (k + 1)
          in
          try_steal 1
    in
    let idle = ref 0 in
    let rec loop () =
      match find () with
      | Some i ->
          idle := 0;
          let it = g.Tile_graph.items.(i) in
          let t0 = Unix.gettimeofday () in
          cur := i;
          exec ~kernel:it.Tile_graph.kernel ~env:it.Tile_graph.env
            it.Tile_graph.body;
          (match race with
          | Some r -> Atomic.set r.completed.(i) true
          | None -> ());
          let dur = Unix.gettimeofday () -. t0 in
          busy.(wid) <- busy.(wid) +. dur;
          timelines.(wid) <-
            { tl_tile = i; tl_worker = wid; tl_start_s = t0 -. run0; tl_dur_s = dur }
            :: timelines.(wid);
          tiles.(wid) <- tiles.(wid) + 1;
          List.iter
            (fun j ->
              if Atomic.fetch_and_add preds.(j) (-1) = 1 then
                Deque.push deques.(wid) j)
            g.Tile_graph.succs.(i);
          ignore (Atomic.fetch_and_add pending (-1));
          loop ()
      | None ->
          if Atomic.get pending > 0 then begin
            (* back off instead of spinning: on machines with fewer
               cores than workers a hot spin loop starves the domains
               that still hold work *)
            idle := !idle + 1;
            if !idle < 32 then Domain.cpu_relax ()
            else Unix.sleepf 0.0002;
            loop ()
          end
    in
    loop ();
    insts.(wid) <- stats.Interp.instances;
    violations.(wid) <- List.rev violations.(wid);
    if Log.would_log Log.Debug then
      Log.debug ~cat:"runtime" "worker.done"
        [ ("worker", Json_util.I wid); ("tiles", Json_util.I tiles.(wid));
          ("steals", Json_util.I steals.(wid));
          ("busy_ms", Json_util.F (1e3 *. busy.(wid)))
        ]
  in
  let doms = Array.init (jobs - 1) (fun k -> Domain.spawn (worker (k + 1))) in
  worker 0 ();
  Array.iter Domain.join doms;
  finish_metrics ~mode:Dag ~jobs ~steals ~barrier_waits:0 ~busy ~tiles ~insts
    ~violations ~timelines

let run_wavefront ~jobs ~race_check (p : Prog.t) (g : Tile_graph.t) mem =
  let n = Tile_graph.n_items g in
  let level = Tile_graph.levels g in
  let n_levels = 1 + Array.fold_left max (-1) level in
  let buckets = Array.make (max 1 n_levels) [] in
  for i = n - 1 downto 0 do
    buckets.(level.(i)) <- i :: buckets.(level.(i))
  done;
  let steals = Array.make jobs 0 in
  let busy = Array.make jobs 0.0 in
  let tiles = Array.make jobs 0 in
  let insts = Array.make jobs 0 in
  let violations = Array.make jobs [] in
  let timelines = Array.make jobs [] in
  let race = if race_check then Some (make_race n mem) else None in
  let run0 = Unix.gettimeofday () in
  let run_level items =
    let items = Array.of_list items in
    let next = Atomic.make 0 in
    let worker wid () =
      let cur = ref (-1) in
      let observer =
        Option.map
          (fun r ->
            race_observer r cur (fun v ->
                if List.length violations.(wid) < max_recorded_violations then
                  violations.(wid) <- v :: violations.(wid)))
          race
      in
      let stats, exec = Interp.tile_runner ?observer p mem in
      let rec loop () =
        let k = Atomic.fetch_and_add next 1 in
        if k < Array.length items then begin
          let i = items.(k) in
          let it = g.Tile_graph.items.(i) in
          let t0 = Unix.gettimeofday () in
          cur := i;
          exec ~kernel:it.Tile_graph.kernel ~env:it.Tile_graph.env
            it.Tile_graph.body;
          (match race with
          | Some r -> Atomic.set r.completed.(i) true
          | None -> ());
          let dur = Unix.gettimeofday () -. t0 in
          busy.(wid) <- busy.(wid) +. dur;
          timelines.(wid) <-
            { tl_tile = i; tl_worker = wid; tl_start_s = t0 -. run0; tl_dur_s = dur }
            :: timelines.(wid);
          tiles.(wid) <- tiles.(wid) + 1;
          loop ()
        end
      in
      loop ();
      insts.(wid) <- insts.(wid) + stats.Interp.instances
    in
    let w = min jobs (max 1 (Array.length items)) in
    let doms = Array.init (w - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    worker 0 ();
    Array.iter Domain.join doms
  in
  Array.iter (fun b -> if b <> [] then run_level b) buckets;
  let violations = Array.map List.rev violations in
  (* every worker waits at the barrier closing each level *)
  finish_metrics ~mode:Wavefront ~jobs ~steals
    ~barrier_waits:(n_levels * jobs) ~busy ~tiles ~insts ~violations
    ~timelines

let run (cfg : config) (p : Prog.t) (g : Tile_graph.t) mem =
  let jobs = max 1 cfg.jobs in
  match cfg.mode with
  | Seq -> run_sequential ~race_check:cfg.race_check p g mem
  | Wavefront -> run_wavefront ~jobs ~race_check:cfg.race_check p g mem
  | Dag -> run_dag ~jobs ~race_check:cfg.race_check p g mem
