(** Tile-graph extraction: split a generated AST at the point-band
    boundary ({!Ast.Point}) into per-tile work items, and derive
    inter-tile dependence edges from interval analysis of array
    accesses gated by the program's presburger dependence relations.

    The graph is a DAG whose edges always go from a lower item id to a
    higher one (item ids are the sequential execution order), so
    executing items in id order is always a valid schedule. *)

type itv = int * int

exception Unanalyzable of string

val eval_itv :
  params:(string * int) list -> env:(string * itv) list -> Ast.expr -> itv
(** Interval evaluation of an AST expression; raises {!Unanalyzable}
    on unbound variables or parameters. *)

type box = itv array
(** Per-array-dimension inclusive index bounds. *)

type item = {
  id : int;  (** also the sequential execution order *)
  body : Ast.t;
  env : (string * int) list;  (** enumerated outer loop bindings *)
  kernel : int;  (** enclosing kernel id, -1 outside any kernel *)
  reads : (string, box) Hashtbl.t;
  writes : (string, box) Hashtbl.t;
  stmts : string list;
  opaque : bool;  (** accesses could not be bounded *)
}

type t = {
  items : item array;
  succs : int list array;
  preds : int array;  (** predecessor counts, aligned with [items] *)
  n_edges : int;
  has_opaque : bool;
}

val n_items : t -> int

val overlap : box -> box -> bool

val contains_point : Ast.t -> bool

val extract :
  ?max_tiles:int -> ?split_depth:int -> Prog.t -> deps:Deps.t list -> Ast.t -> t
(** Extract the tile graph of an AST. Loops above a point marker are
    enumerated while the item count stays under [max_tiles] (a soft
    cap, default 1024); beyond it whole subtrees coarsen into single
    items. ASTs without point markers fall back to enumerating up to
    [split_depth] outer loop levels (default 2). Items whose accesses
    cannot be bounded become opaque and are ordered against every
    other item. *)

val levels : t -> int array
(** Wavefront level of each item: longest edge path from a root. *)
