(** Parallel tile-graph execution runtime.

    Splits a generated AST at the point-band boundary into per-tile
    work items ({!Tile_graph}), derives inter-tile dependence edges
    from the program's presburger dependences, and executes ready
    tiles across OCaml 5 domains ({!Executor}). The sequential
    interpreter ({!Interp.run} over the same deterministic fill) is
    the semantic oracle: a correct graph makes the parallel result
    bit-identical, because every pair of conflicting tiles stays
    ordered by a sequence-order edge. *)

type result = {
  mem : Interp.memory;
  graph : Tile_graph.t;
  metrics : Executor.metrics;
  wall_s : float;  (** execution wall time (excluding extraction) *)
}

val default_mode : Tile_graph.t -> Executor.mode
(** [Dag] unless the graph has opaque items, then [Wavefront]. *)

val run :
  ?jobs:int ->
  ?mode:Executor.mode ->
  ?race_check:bool ->
  ?max_tiles:int ->
  ?split_depth:int ->
  ?seed:int ->
  Prog.t -> deps:Deps.t list -> Ast.t -> result
(** Allocate memory, fill deterministically (same [seed] default as
    the machine models), extract the tile graph, execute, and emit
    [runtime.*] observability counters (from the calling thread only;
    the executor itself never touches [Obs]). *)
