(** Trace-driven CPU performance model.

    The generated AST is executed once by the interpreter; every memory
    access runs through the LRU cache hierarchy, attributing latency to
    the enclosing kernel region. Thread counts are applied analytically
    on top of the sequential trace: each kernel's cycles are divided by
    [min(threads, parallel iterations of its outermost coincident
    loop)], with a per-kernel fork/join overhead. Vectorizable kernels
    (innermost loop coincident — the ivdep condition of Section V)
    divide their arithmetic cycles by the vector width.

    The model is documented rather than hidden: cache sharing between
    threads and bandwidth contention are not simulated; speedup shapes
    (who wins, where fusion pays) are the reproduced quantity. *)

type config = {
  cores : int;
  cpi : float;  (** cycles per arithmetic operation (scalar) *)
  vector_width : int;
  freq_ghz : float;
  fork_join_cycles : float;  (** per parallel kernel launch *)
  dram_parallelism : int;
      (** memory-level parallelism: DRAM cycles stop scaling with thread
          count beyond this factor (bandwidth saturation) *)
}

val xeon_e5_2683 : config

type kernel_profile = {
  kp_id : int;
  kp_ops : int;
  kp_mem_cycles : int;  (** on-chip cache hit cycles *)
  kp_dram_cycles : int;  (** DRAM access cycles (bandwidth-limited) *)
  kp_par_iters : int;
  kp_vectorizable : bool;
}

type report = {
  kernels : kernel_profile list;
  cache : Cache.level_stats list;
  dram : int;
  instances : int;
  total_ops : int;
}

val deterministic_fill : ?seed:int -> Prog.t -> Interp.memory -> unit
(** Fill every array with deterministic pseudo-random data derived from
    the array name and [seed] (default 42). The same fill is used by
    {!profile}, {!run_to_memory} and the parallel runtime, so their
    results are directly comparable. *)

val profile : ?seed:int -> ?cache:Cache.t -> Prog.t -> Ast.t -> report
(** Allocates memory, fills every array with deterministic pseudo-random
    data, executes the AST through the cache hierarchy (default: the
    scaled Xeon model matching the reduced benchmark extents). *)

val time_ms : ?vectorize:bool -> config -> report -> threads:int -> float
(** [vectorize] overrides the per-kernel ivdep detection: [Some true]
    models hybridfuse's inner-level fusion / icc auto-vectorization,
    [Some false] a plain sequential compile. *)

val run_to_memory : ?seed:int -> Prog.t -> Ast.t -> Interp.memory
(** Execute and return the memory (semantic-comparison oracle). *)
