(** Dynamic shadow validator.

    Interprets a reference (naive) AST and a candidate AST over
    identically-initialized memories, tagging every cell with the
    statement instances that wrote it, and reports semantic-order
    violations observed during the candidate run:

    - def-before-use: the candidate reads a cell it has not yet
      written although the reference defines that cell before any
      read of it;
    - single-assignment per instance: a re-executed instance
      (recomputation under overlapped tiles) must store the same value
      every time;
    - foreign writers: a cell may only be written by instances that
      also wrote it in the reference order;
    - live-out coverage: every live-out cell the reference writes must
      be written by the candidate with the same final writer instance
      (the structural form of the seed-1057 mis-schedule, caught even
      when the values coincidentally agree), and live-out values must
      match. *)

type violation = {
  sv_kind : string;
      (** "read-before-write" | "recompute-divergence" |
          "foreign-writer" | "liveout-missing" | "liveout-writer" |
          "liveout-values" *)
  sv_stmt : string;
  sv_inst : int array;
  sv_array : string;
  sv_cell : int;  (** element-flat index within the array *)
  sv_detail : string;
}

type report = {
  sh_violations : violation list;
  sh_reads : int;  (** candidate reads checked *)
  sh_writes : int;  (** candidate writes checked *)
  sh_recomputed : int;  (** instance re-executions observed *)
}

val validate : Prog.t -> ref_ast:Ast.t -> ast:Ast.t -> report
(** Run both ASTs (inputs filled with {!Cpu_model.deterministic_fill})
    and compare. An empty [sh_violations] means the candidate is
    shadow-clean against the reference. *)

val violation_string : violation -> string
