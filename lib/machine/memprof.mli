(** Memory-hierarchy profiler: an {!Interp} access observer that builds
    reuse-distance histograms and per-array / per-statement traffic
    attribution from the interpreted access trace.

    Reuse distance is measured at cache-line (64 B) granularity: the
    number of {e distinct other} lines touched between two accesses to
    the same line. Distances below a level's capacity in lines predict
    hits at that level; cold (first-touch) accesses are counted apart
    rather than folded into the largest bucket. DRAM attribution is
    sampled through a private {!Cache} instance, so per-array DRAM
    counts sum exactly to the cache's total. *)

type t

(** Attribution counters for one array or statement. [dram] counts
    accesses that missed every cache level. *)
type row = { accesses : int; reads : int; writes : int; dram : int }

val create : ?cache:Cache.t -> Interp.memory -> t
(** Profiler over the given memory layout. [cache] defaults to
    [Cache.scaled_xeon ()]; pass an explicit one to model another
    hierarchy. *)

val observer : t -> kernel:int -> stmt:string -> addr:int -> write:bool -> unit
(** Feed to [Interp.run ~observer]. Not thread-safe: profile through the
    sequential interpreter, never from runtime workers. *)

val per_array : t -> (string * row) list
(** Attribution rows keyed by array name, sorted. *)

val per_stmt : t -> (string * row) list
(** Attribution rows keyed by statement name, sorted. *)

val cache : t -> Cache.t
(** The cache instance the profiler samples through. *)

val total_accesses : t -> int

val cold_misses : t -> int
(** First-touch line accesses (infinite reuse distance). *)

val distinct_lines : t -> int

val reuse_histogram : t -> (int * int) list
(** Non-empty log2 buckets of the global reuse-distance histogram as
    [(bucket, count)]; see {!bucket_bounds} for the distance range a
    bucket covers. Cold accesses are excluded. *)

val reuse_histogram_of : t -> string -> (int * int) list
(** Per-array reuse-distance histogram (distances still measured in the
    global interleaved trace). *)

val bucket_bounds : int -> int * int
(** [(lo, hi)] inclusive distance range of a histogram bucket:
    bucket 0 is distance 0, bucket i covers [2^(i-1), 2^i - 1]. *)
