(* Dynamic shadow validator: runs the reference (naive) AST and a
   candidate AST over identically-initialized memories, tagging every
   cell with the statement instances that wrote it, and checks during
   the candidate's interpretation that

   - no read observes a cell before its definition when the reference
     had defined it before its own reads (def-before-use);
   - a statement instance executed more than once (recomputation under
     overlapped tiles) stores the same value every time
     (single-assignment per instance, up to float tolerance);
   - every cell is only written by instances that also wrote it in the
     reference (no foreign writers);
   - every live-out cell the reference wrote is written by the
     candidate, with the same final writer instance (live-out
     coverage — the structural form of the seed-1057 failure, caught
     even when values coincidentally agree). *)

type violation = {
  sv_kind : string;
      (** "read-before-write" | "recompute-divergence" |
          "foreign-writer" | "liveout-missing" | "liveout-writer" *)
  sv_stmt : string;
  sv_inst : int array;
  sv_array : string;
  sv_cell : int;
  sv_detail : string;
}

type report = {
  sh_violations : violation list;
  sh_reads : int;  (** candidate reads checked *)
  sh_writes : int;  (** candidate writes checked *)
  sh_recomputed : int;  (** instance re-executions observed *)
}

let violation_string v =
  Printf.sprintf "%s: %s[%d] by %s[%s]%s" v.sv_kind v.sv_array v.sv_cell
    v.sv_stmt
    (String.concat "," (List.map string_of_int (Array.to_list v.sv_inst)))
    (if v.sv_detail = "" then "" else " — " ^ v.sv_detail)

(* Per-(array, cell) writer records. Cell counts in the test workloads
   are small, so plain hashtables keyed by (array, cell) suffice. *)
type cell_info = {
  mutable writers : (string * int array) list;  (** distinct instances *)
  mutable last : (string * int array) option;
}

let cell_key array cell = (array, cell)

let observe_run ?check (p : Prog.t) ast =
  let mem = Interp.alloc p in
  Cpu_model.deterministic_fill p mem;
  let cells : (string * int, cell_info) Hashtbl.t = Hashtbl.create 1024 in
  let written : (string * (string * int array), float) Hashtbl.t =
    Hashtbl.create 1024
  in
  (* order of first definition per cell, to know whether the reference
     defined a cell before its own first read of it *)
  let stats = { sh_violations = []; sh_reads = 0; sh_writes = 0; sh_recomputed = 0 } in
  let stats = ref stats in
  let tracer ~stmt ~inst ~array ~cell ~write ~value =
    let key = cell_key array cell in
    if write then begin
      stats := { !stats with sh_writes = (!stats).sh_writes + 1 };
      let info =
        match Hashtbl.find_opt cells key with
        | Some i -> i
        | None ->
            let i = { writers = []; last = None } in
            Hashtbl.replace cells key i;
            i
      in
      let who = (stmt, inst) in
      let wkey = (array, (stmt, inst)) in
      (match Hashtbl.find_opt written wkey with
      | Some prev ->
          stats := { !stats with sh_recomputed = (!stats).sh_recomputed + 1 };
          if Float.abs (prev -. value) > 1e-6 *. (1.0 +. Float.abs prev) then
            stats :=
              { !stats with
                sh_violations =
                  { sv_kind = "recompute-divergence";
                    sv_stmt = stmt;
                    sv_inst = inst;
                    sv_array = array;
                    sv_cell = cell;
                    sv_detail =
                      Printf.sprintf "stored %g then %g" prev value
                  }
                  :: (!stats).sh_violations
              }
      | None -> Hashtbl.replace written wkey value);
      if not (List.mem who info.writers) then
        info.writers <- who :: info.writers;
      info.last <- Some who;
      match check with
      | Some (ref_cells, _) -> (
          (* candidate writers must be reference writers of the cell *)
          match Hashtbl.find_opt ref_cells key with
          | Some (ri : cell_info) when List.mem who ri.writers -> ()
          | _ ->
              stats :=
                { !stats with
                  sh_violations =
                    { sv_kind = "foreign-writer";
                      sv_stmt = stmt;
                      sv_inst = inst;
                      sv_array = array;
                      sv_cell = cell;
                      sv_detail =
                        "instance never wrote this cell in the reference \
                         order"
                    }
                    :: (!stats).sh_violations
                })
      | None -> ()
    end
    else begin
      stats := { !stats with sh_reads = (!stats).sh_reads + 1 };
      match check with
      | Some (ref_cells, ref_read_undef) ->
          if
            (not (Hashtbl.mem cells key))
            && Hashtbl.mem ref_cells key
            && not (Hashtbl.mem ref_read_undef key)
          then
            stats :=
              { !stats with
                sh_violations =
                  { sv_kind = "read-before-write";
                    sv_stmt = stmt;
                    sv_inst = inst;
                    sv_array = array;
                    sv_cell = cell;
                    sv_detail =
                      "reference defines this cell before any read"
                  }
                  :: (!stats).sh_violations
              }
      | None -> ()
    end
  in
  ignore (Interp.run ~tracer p ast mem);
  (mem, cells, !stats)

(* Reference pass additionally records cells read before definition. *)
let reference_run (p : Prog.t) ast =
  let mem = Interp.alloc p in
  Cpu_model.deterministic_fill p mem;
  let cells : (string * int, cell_info) Hashtbl.t = Hashtbl.create 1024 in
  let read_undef : (string * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let tracer ~stmt ~inst ~array ~cell ~write ~value =
    ignore value;
    let key = cell_key array cell in
    if write then begin
      let info =
        match Hashtbl.find_opt cells key with
        | Some i -> i
        | None ->
            let i = { writers = []; last = None } in
            Hashtbl.replace cells key i;
            i
      in
      let who = (stmt, inst) in
      if not (List.mem who info.writers) then
        info.writers <- who :: info.writers;
      info.last <- Some who
    end
    else if not (Hashtbl.mem cells key) then
      Hashtbl.replace read_undef key ()
  in
  ignore (Interp.run ~tracer p ast mem);
  (mem, cells, read_undef)

let validate (p : Prog.t) ~ref_ast ~ast =
  Obs.span "verify.shadow" @@ fun () ->
  let ref_mem, ref_cells, ref_read_undef = reference_run p ref_ast in
  let cand_mem, cand_cells, stats =
    observe_run ~check:(ref_cells, ref_read_undef) p ast
  in
  (* live-out coverage and final-writer agreement *)
  let liveout_violations =
    Hashtbl.fold
      (fun ((array, cell) as key) (ri : cell_info) acc ->
        if List.mem array p.Prog.live_out then
          match Hashtbl.find_opt cand_cells key with
          | None ->
              { sv_kind = "liveout-missing";
                sv_stmt =
                  (match ri.last with Some (s, _) -> s | None -> "?");
                sv_inst =
                  (match ri.last with Some (_, i) -> i | None -> [||]);
                sv_array = array;
                sv_cell = cell;
                sv_detail = "cell written by the reference, never by the \
                             candidate"
              }
              :: acc
          | Some ci ->
              if ci.last <> ri.last then
                { sv_kind = "liveout-writer";
                  sv_stmt =
                    (match ci.last with Some (s, _) -> s | None -> "?");
                  sv_inst =
                    (match ci.last with Some (_, i) -> i | None -> [||]);
                  sv_array = array;
                  sv_cell = cell;
                  sv_detail =
                    (match ri.last with
                    | Some (s, i) ->
                        Printf.sprintf "reference final writer is %s[%s]" s
                          (String.concat ","
                             (List.map string_of_int (Array.to_list i)))
                    | None -> "reference final writer differs")
                }
                :: acc
              else acc
        else acc)
      ref_cells []
  in
  let values_equal =
    List.for_all (fun a -> Interp.arrays_equal ref_mem cand_mem a) p.Prog.live_out
  in
  let value_violation =
    if values_equal then []
    else
      [ { sv_kind = "liveout-values";
          sv_stmt = "";
          sv_inst = [||];
          sv_array = String.concat "," p.Prog.live_out;
          sv_cell = -1;
          sv_detail = "live-out values differ from the reference run"
        }
      ]
  in
  { stats with
    sh_violations =
      List.rev stats.sh_violations @ liveout_violations @ value_violation
  }
