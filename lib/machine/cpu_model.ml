type config = {
  cores : int;
  cpi : float;
  vector_width : int;
  freq_ghz : float;
  fork_join_cycles : float;
  dram_parallelism : int;
}

let xeon_e5_2683 =
  { cores = 32;
    cpi = 1.0;
    vector_width = 8;
    freq_ghz = 2.1;
    fork_join_cycles = 20000.0;
    dram_parallelism = 6
  }

type kernel_profile = {
  kp_id : int;
  kp_ops : int;
  kp_mem_cycles : int;  (** on-chip cache hit cycles *)
  kp_dram_cycles : int;  (** DRAM access cycles (bandwidth-limited) *)
  kp_par_iters : int;
  kp_vectorizable : bool;
}

type report = {
  kernels : kernel_profile list;
  cache : Cache.level_stats list;
  dram : int;
  instances : int;
  total_ops : int;
}

let deterministic_fill ?(seed = 42) (p : Prog.t) mem =
  List.iter
    (fun (a : Prog.array_decl) ->
      let h = Hashtbl.hash (a.Prog.array_name, seed) in
      let counter = ref h in
      Interp.fill mem a.Prog.array_name (fun _ ->
          counter := (!counter * 1103515245) + 12345;
          let v = (!counter lsr 16) land 0xFF in
          float_of_int v /. 32.0))
    p.Prog.arrays

(* Trip count of the outermost loop of a kernel if it is coincident
   (OpenMP parallelizes only the outermost loop; a kernel whose outer
   loop carries dependences runs sequentially, which is exactly how
   maxfuse loses parallelism in the paper). *)
let rec par_iters params = function
  | Ast.For { lb; ub; coincident; _ } ->
      if coincident then begin
        try
          let lo = Ast.eval_expr ~params ~env:[] lb in
          let hi = Ast.eval_expr ~params ~env:[] ub in
          max 1 (hi - lo + 1)
        with Invalid_argument _ -> max_int
      end
      else 1
  | Ast.If (_, body) -> par_iters params body
  | Ast.Block ts ->
      List.fold_left (fun acc t -> max acc (par_iters params t)) 1 ts
  | Ast.Kernel (_, t) | Ast.Point t -> par_iters params t
  | Ast.Call _ | Ast.Nop -> 1

let rec vectorizable = function
  | Ast.For { coincident; body; _ } ->
      let has_inner_for =
        let rec contains_for = function
          | Ast.For _ -> true
          | Ast.If (_, b) -> contains_for b
          | Ast.Block ts -> List.exists contains_for ts
          | Ast.Kernel (_, t) | Ast.Point t -> contains_for t
          | Ast.Call _ | Ast.Nop -> false
        in
        contains_for body
      in
      if has_inner_for then vectorizable body else coincident
  | Ast.If (_, body) -> vectorizable body
  | Ast.Block ts -> List.exists vectorizable ts
  | Ast.Kernel (_, t) | Ast.Point t -> vectorizable t
  | Ast.Call _ | Ast.Nop -> false

let profile ?seed ?cache (p : Prog.t) ast =
  let mem = Interp.alloc p in
  deterministic_fill ?seed p mem;
  let cache = match cache with Some c -> c | None -> Cache.scaled_xeon () in
  let per_kernel_mem : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let per_kernel_dram : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let dram_latency = 200 in
  let observer ~kernel ~stmt:_ ~addr ~write =
    let lat = Cache.access cache ~addr ~write in
    let dram = if lat >= dram_latency then dram_latency else 0 in
    Hashtbl.replace per_kernel_mem kernel
      (lat - dram + Option.value ~default:0 (Hashtbl.find_opt per_kernel_mem kernel));
    if dram > 0 then
      Hashtbl.replace per_kernel_dram kernel
        (dram + Option.value ~default:0 (Hashtbl.find_opt per_kernel_dram kernel))
  in
  let stats = Interp.run ~observer p ast mem in
  let kernel_regions = Ast.kernels ast in
  let kernels =
    List.map
      (fun (id, region) ->
        { kp_id = id;
          kp_ops = Option.value ~default:0 (Hashtbl.find_opt stats.Interp.per_kernel_ops id);
          kp_mem_cycles = Option.value ~default:0 (Hashtbl.find_opt per_kernel_mem id);
          kp_dram_cycles = Option.value ~default:0 (Hashtbl.find_opt per_kernel_dram id);
          kp_par_iters = par_iters p.Prog.params region;
          kp_vectorizable = vectorizable region
        })
      kernel_regions
  in
  (* code outside kernel regions runs sequentially *)
  let outside_ops =
    Option.value ~default:0 (Hashtbl.find_opt stats.Interp.per_kernel_ops (-1))
  in
  let outside_mem =
    Option.value ~default:0 (Hashtbl.find_opt per_kernel_mem (-1))
  in
  let kernels =
    if outside_ops > 0 || outside_mem > 0 then
      { kp_id = -1;
        kp_ops = outside_ops;
        kp_mem_cycles = outside_mem;
        kp_dram_cycles = Option.value ~default:0 (Hashtbl.find_opt per_kernel_dram (-1));
        kp_par_iters = 1;
        kp_vectorizable = false
      }
      :: kernels
    else kernels
  in
  { kernels;
    cache = Cache.stats cache;
    dram = Cache.dram_accesses cache;
    instances = stats.Interp.instances;
    total_ops = stats.Interp.ops
  }

let time_ms ?vectorize cfg report ~threads =
  let total_cycles =
    List.fold_left
      (fun acc k ->
        let vec =
          match vectorize with Some v -> v | None -> k.kp_vectorizable
        in
        let compute =
          let c = float_of_int k.kp_ops *. cfg.cpi in
          if vec then c /. float_of_int cfg.vector_width else c
        in
        let par = max 1 (min threads k.kp_par_iters) in
        (* DRAM traffic scales only up to the memory-level parallelism of
           the socket, not with the thread count *)
        let mem_par = max 1 (min par cfg.dram_parallelism) in
        let scaled =
          ((compute +. float_of_int k.kp_mem_cycles) /. float_of_int par)
          +. (float_of_int k.kp_dram_cycles /. float_of_int mem_par)
        in
        let fork = if threads > 1 && k.kp_par_iters > 1 then cfg.fork_join_cycles else 0.0 in
        acc +. scaled +. fork)
      0.0 report.kernels
  in
  total_cycles /. (cfg.freq_ghz *. 1e6)

let run_to_memory ?seed (p : Prog.t) ast =
  let mem = Interp.alloc p in
  deterministic_fill ?seed p mem;
  ignore (Interp.run p ast mem);
  mem
