type level_config = {
  name : string;
  size_bytes : int;
  line_bytes : int;
  assoc : int;
  latency : int;
}

type level = {
  config : level_config;
  n_sets : int;
  tags : int array;  (** [set * assoc + way], -1 = invalid *)
  ages : int array;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

type t = {
  levels : level list;
  dram_latency : int;
  mutable dram : int;
  mutable cycles : int;
}

type level_stats = { level : string; hits : int; misses : int }

let mk_level config =
  let n_sets = max 1 (config.size_bytes / (config.line_bytes * config.assoc)) in
  { config;
    n_sets;
    tags = Array.make (n_sets * config.assoc) (-1);
    ages = Array.make (n_sets * config.assoc) 0;
    tick = 0;
    hits = 0;
    misses = 0
  }

let create ~levels ~dram_latency =
  { levels = List.map mk_level levels; dram_latency; dram = 0; cycles = 0 }

(* true on hit; on miss the line is installed (write-allocate) *)
let probe level ~line =
  let set = line mod level.n_sets in
  let tag = line / level.n_sets in
  let base = set * level.config.assoc in
  level.tick <- level.tick + 1;
  let rec find w =
    if w >= level.config.assoc then None
    else if level.tags.(base + w) = tag then Some w
    else find (w + 1)
  in
  match find 0 with
  | Some w ->
      level.hits <- level.hits + 1;
      if Obs.is_enabled () then Obs.count ("cache." ^ level.config.name ^ ".hits");
      level.ages.(base + w) <- level.tick;
      true
  | None ->
      level.misses <- level.misses + 1;
      if Obs.is_enabled () then Obs.count ("cache." ^ level.config.name ^ ".misses");
      (* evict LRU way *)
      let victim = ref 0 in
      for w = 1 to level.config.assoc - 1 do
        if level.ages.(base + w) < level.ages.(base + !victim) then victim := w
      done;
      level.tags.(base + !victim) <- tag;
      level.ages.(base + !victim) <- level.tick;
      false

let access t ~addr ~write =
  ignore write;
  Obs.count "cache.accesses";
  let rec go levels =
    match levels with
    | [] ->
        t.dram <- t.dram + 1;
        Obs.count "cache.dram";
        t.dram_latency
    | level :: rest ->
        let line = addr / level.config.line_bytes in
        if probe level ~line then level.config.latency
        else level.config.latency + go rest
  in
  let lat = go t.levels in
  t.cycles <- t.cycles + lat;
  lat

let stats t =
  List.map
    (fun l -> { level = l.config.name; hits = l.hits; misses = l.misses })
    t.levels

let dram_accesses t = t.dram

let total_cycles t = t.cycles

let reset t =
  List.iter
    (fun l ->
      Array.fill l.tags 0 (Array.length l.tags) (-1);
      Array.fill l.ages 0 (Array.length l.ages) 0;
      l.tick <- 0;
      l.hits <- 0;
      l.misses <- 0)
    t.levels;
  t.dram <- 0;
  t.cycles <- 0

let xeon_like () =
  create
    ~levels:
      [ { name = "L1"; size_bytes = 32 * 1024; line_bytes = 64; assoc = 8; latency = 4 };
        { name = "L2"; size_bytes = 1024 * 1024; line_bytes = 64; assoc = 16; latency = 14 };
        { name = "L3"; size_bytes = 4 * 1024 * 1024; line_bytes = 64; assoc = 16; latency = 50 }
      ]
    ~dram_latency:200

(* The benchmark images are run at reduced extents (128^2 rather than
   the paper's 2k-6k); the hierarchy is scaled by the same factor so the
   working-set-to-cache ratios, and hence the fusion/tiling trade-offs,
   are preserved. *)
let scaled_xeon () =
  create
    ~levels:
      [ { name = "L1"; size_bytes = 2 * 1024; line_bytes = 64; assoc = 4; latency = 4 };
        { name = "L2"; size_bytes = 16 * 1024; line_bytes = 64; assoc = 8; latency = 14 };
        { name = "L3"; size_bytes = 64 * 1024; line_bytes = 64; assoc = 16; latency = 50 }
      ]
    ~dram_latency:200
