let elem_bytes = 4

type array_store = {
  data : float array;
  extents : int array;
  strides : int array;  (** row-major *)
  base : int;  (** byte address for cache simulation *)
}

type memory = { arrays : (string, array_store) Hashtbl.t }

let alloc (p : Prog.t) =
  let arrays = Hashtbl.create 16 in
  let next_base = ref 0 in
  List.iter
    (fun (a : Prog.array_decl) ->
      let extents = Array.of_list (Prog.array_extent p a.Prog.array_name) in
      let n = Array.fold_left ( * ) 1 extents in
      let nd = Array.length extents in
      let strides = Array.make nd 1 in
      for d = nd - 2 downto 0 do
        strides.(d) <- strides.(d + 1) * extents.(d + 1)
      done;
      Hashtbl.replace arrays a.Prog.array_name
        { data = Array.make (max n 1) 0.0; extents; strides; base = !next_base };
      (* pad to a cache line *)
      next_base := !next_base + (((n * elem_bytes) + 63) / 64 * 64))
    p.Prog.arrays;
  { arrays }

let store mem name =
  match Hashtbl.find_opt mem.arrays name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Interp: unknown array %s" name)

let base_of mem name = (store mem name).base

let read_array mem name = (store mem name).data

let fill mem name f =
  let s = store mem name in
  let nd = Array.length s.extents in
  let idx = Array.make nd 0 in
  let rec walk d flat =
    if d = nd then s.data.(flat) <- f idx
    else
      for v = 0 to s.extents.(d) - 1 do
        idx.(d) <- v;
        walk (d + 1) (flat + (v * s.strides.(d)))
      done
  in
  walk 0 0

type stats = {
  mutable instances : int;
  mutable ops : int;
  mutable reads : int;
  mutable writes : int;
  per_stmt : (string, int) Hashtbl.t;
  per_kernel_ops : (int, int) Hashtbl.t;
}

type tracer =
  stmt:string ->
  inst:int array ->
  array:string ->
  cell:int ->
  write:bool ->
  value:float ->
  unit

let flat_index (s : array_store) ~array idxs =
  let nd = Array.length s.extents in
  if List.length idxs <> nd then
    invalid_arg (Printf.sprintf "Interp: arity mismatch on %s" array);
  let flat = ref 0 in
  List.iteri
    (fun d v ->
      if v < 0 || v >= s.extents.(d) then
        invalid_arg
          (Printf.sprintf "Interp: out of bounds on %s dim %d: %d (extent %d)"
             array d v s.extents.(d));
      flat := !flat + (v * s.strides.(d)))
    idxs;
  !flat

let address_cells mem =
  Hashtbl.fold
    (fun _ s acc -> max acc ((s.base / elem_bytes) + Array.length s.data))
    mem.arrays 0

let array_spans mem =
  Hashtbl.fold
    (fun name s acc -> (name, s.base, Array.length s.data * elem_bytes) :: acc)
    mem.arrays []
  |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)

(* Core AST walker shared by [run] and [tile_runner]. Builds its own
   statement table and stats record, so each instantiation is
   self-contained: workers of the parallel runtime create one per
   domain and execute tile subtrees against the shared memory without
   touching any global (notably not Obs, which is not thread-safe). *)
let executor ?observer ?tracer (p : Prog.t) mem =
  let stats =
    { instances = 0;
      ops = 0;
      reads = 0;
      writes = 0;
      per_stmt = Hashtbl.create 8;
      per_kernel_ops = Hashtbl.create 8
    }
  in
  let params = p.Prog.params in
  let stmt_tbl = Hashtbl.create 8 in
  List.iter (fun (s : Prog.stmt) -> Hashtbl.replace stmt_tbl s.Prog.stmt_name s) p.Prog.stmts;
  let kernel = ref (-1) in
  let notify ~stmt ~addr ~write =
    match observer with
    | Some f -> f ~kernel:!kernel ~stmt ~addr ~write
    | None -> ()
  in
  let trace ~stmt ~inst ~array ~cell ~write ~value =
    match tracer with
    | Some f -> f ~stmt ~inst ~array ~cell ~write ~value
    | None -> ()
  in
  let exec_call name args =
    let stmt =
      match Hashtbl.find_opt stmt_tbl name with
      | Some s -> s
      | None -> invalid_arg (Printf.sprintf "Interp: unknown statement %s" name)
    in
    let inst = Array.of_list args in
    let proceed = match stmt.Prog.guard with Some g -> g inst | None -> true in
    if proceed then begin
      stats.instances <- stats.instances + 1;
      Hashtbl.replace stats.per_stmt name
        (1 + Option.value ~default:0 (Hashtbl.find_opt stats.per_stmt name));
      let read_value (a : Prog.access) =
        let s = store mem a.Prog.array in
        let idxs =
          List.map (fun ix -> Prog.eval_index_with_params params ix inst) a.Prog.indices
        in
        let flat = flat_index s ~array:a.Prog.array idxs in
        stats.reads <- stats.reads + 1;
        notify ~stmt:name ~addr:(s.base + (flat * elem_bytes)) ~write:false;
        let v = s.data.(flat) in
        trace ~stmt:name ~inst ~array:a.Prog.array ~cell:flat ~write:false
          ~value:v;
        v
      in
      let values = Array.of_list (List.map read_value stmt.Prog.reads) in
      let result = stmt.Prog.compute values in
      let wa = stmt.Prog.write in
      let ws = store mem wa.Prog.array in
      let widxs =
        List.map (fun ix -> Prog.eval_index_with_params params ix inst) wa.Prog.indices
      in
      let wflat = flat_index ws ~array:wa.Prog.array widxs in
      stats.writes <- stats.writes + 1;
      ws.data.(wflat) <- result;
      notify ~stmt:name ~addr:(ws.base + (wflat * elem_bytes)) ~write:true;
      trace ~stmt:name ~inst ~array:wa.Prog.array ~cell:wflat ~write:true
        ~value:result;
      stats.ops <- stats.ops + stmt.Prog.ops;
      Hashtbl.replace stats.per_kernel_ops !kernel
        (stmt.Prog.ops
        + Option.value ~default:0 (Hashtbl.find_opt stats.per_kernel_ops !kernel))
    end
  in
  let rec exec env = function
    | Ast.Nop -> ()
    | Ast.Block ts -> List.iter (exec env) ts
    | Ast.Kernel (k, t) ->
        let saved = !kernel in
        kernel := k;
        exec env t;
        kernel := saved
    | Ast.Point t -> exec env t
    | Ast.If (conds, body) ->
        if
          List.for_all (fun c -> Ast.eval_expr ~params ~env c >= 0) conds
        then exec env body
    | Ast.For { var; lb; ub; body; _ } ->
        let lo = Ast.eval_expr ~params ~env lb in
        let hi = Ast.eval_expr ~params ~env ub in
        for v = lo to hi do
          exec ((var, v) :: env) body
        done
    | Ast.Call { stmt; args } ->
        exec_call stmt (List.map (Ast.eval_expr ~params ~env) args)
  in
  let go ?kernel:(k0 = -1) ~env ast =
    kernel := k0;
    exec env ast
  in
  (stats, go)

let run ?observer ?tracer (p : Prog.t) ast mem =
  Obs.span "interp.run" @@ fun () ->
  let stats, exec = executor ?observer ?tracer p mem in
  exec ~env:[] ast;
  Obs.add "interp.instances" stats.instances;
  Obs.add "interp.reads" stats.reads;
  Obs.add "interp.writes" stats.writes;
  Obs.add "interp.ops" stats.ops;
  stats

let tile_runner ?observer ?tracer (p : Prog.t) mem =
  executor ?observer ?tracer p mem

let arrays_equal ?(eps = 1e-6) m1 m2 name =
  let a = read_array m1 name and b = read_array m2 name in
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps *. (1.0 +. Float.abs x)) a b
