(** Polyhedral traffic/footprint accounting shared by the analytic GPU
    and NPU models.

    A compiled program is summarized as a list of clusters (one per
    generated kernel): the statements it executes, the relation from
    statement instances to the tiles that execute them (so recomputation
    from overlapped tiling is counted), and which arrays are staged in
    on-chip memory (fused intermediates).

    Traffic rules, per cluster and array:
    - reads of an array written by the same cluster are served on-chip;
    - reads of a staged (fused) array are served on-chip;
    - other reads cost one transaction per (tile, element) pair — the
      element is loaded once per tile that needs it (shared-memory /
      scratchpad staging granularity);
    - writes cost one transaction per element, and only arrays that are
      live-out or read by a later cluster are written back. *)

open Presburger

type cluster = {
  stmts : string list;
  inst_tiles : (string * Imap.t) list;
      (** per statement: instances -> tile coordinates executing them;
          an instance mapped to several tiles is recomputed *)
  staged_arrays : string list;
  tile_count : int;
  parallel_tiles : bool;
      (** tiles can run concurrently (the outer band is coincident);
          serialized fusions (maxfuse fallback) occupy a single unit *)
  point_instances : int;  (** executed instances, recomputation included *)
  ops : int;  (** executed operations, recomputation included *)
}

type traffic = {
  read_bytes : int;
  write_bytes : int;
}

val clusters_of_compiled : Core.Pipeline.compiled -> cluster list

val clusters_of_baseline : tile_size:int -> Core.Pipeline.baseline -> cluster list

val cluster_traffic : Prog.t -> previous:cluster list -> cluster -> traffic
(** [previous] is the list of clusters executing before this one (used
    to decide write-back of intermediates read later). The full program
    live-out set always forces write-back. *)

val cluster_traffic_by_array :
  Prog.t -> previous:cluster list -> cluster -> (string * traffic) list
(** {!cluster_traffic} broken down by array (sorted by name). The
    per-array attribution is the primitive the totals are defined over,
    so its components sum to {!cluster_traffic} exactly. *)

val program_traffic_by_array : Prog.t -> cluster list -> (string * traffic) list
(** Per-array program traffic (sorted by name); sums component-wise to
    {!program_traffic} exactly. *)

val staged_bytes : Prog.t -> cluster -> int
(** On-chip bytes needed per tile for the staged arrays (maximum over
    tiles of the staged footprints). *)

val program_traffic : Prog.t -> cluster list -> traffic
(** Total off-chip traffic of an ordered cluster list: sums
    {!cluster_traffic} with the running prefix as [previous], so
    write-back of intermediates read by later clusters is charged
    exactly once. *)

val max_staged_bytes : Prog.t -> cluster list -> int
(** Largest per-tile on-chip staging requirement over the clusters (the
    scratchpad high-water mark, a footprint-volume snapshot metric). *)
