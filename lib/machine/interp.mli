(** Reference interpreter for generated loop ASTs: executes statement
    semantics over concrete float arrays, with bounds checking and an
    access observer for trace-driven machine models.

    Executing the same program under two different schedules and
    comparing the final arrays is the semantic-equivalence oracle used
    throughout the test suite. *)

type memory

val alloc : Prog.t -> memory

val base_of : memory -> string -> int
(** Byte base address of an array (for cache simulation). *)

val elem_bytes : int

val read_array : memory -> string -> float array

val fill : memory -> string -> (int array -> float) -> unit
(** Initialize an array: the function receives the multi-dimensional
    index. *)

type stats = {
  mutable instances : int;  (** executed statement instances *)
  mutable ops : int;  (** arithmetic operations *)
  mutable reads : int;
  mutable writes : int;
  per_stmt : (string, int) Hashtbl.t;
  per_kernel_ops : (int, int) Hashtbl.t;
}

type tracer =
  stmt:string ->
  inst:int array ->
  array:string ->
  cell:int ->
  write:bool ->
  value:float ->
  unit
(** Semantic access hook: statement instance, array name, element-flat
    cell index and the value read or written (writes fire after the
    store). Unlike [observer] it identifies the *instance*, so the
    shadow validator can tag cells with their last writer. The [inst]
    array is fresh per call and safe to retain. *)

val run :
  ?observer:(kernel:int -> stmt:string -> addr:int -> write:bool -> unit) ->
  ?tracer:tracer ->
  Prog.t -> Ast.t -> memory -> stats
(** Raises [Invalid_argument] on out-of-bounds accesses, naming the
    array and index. Kernel id -1 denotes code outside any kernel
    region; [stmt] is the stable statement name executing the access. *)

val address_cells : memory -> int
(** Number of element-granular cells spanned by the allocated address
    space; observer [addr / elem_bytes] always falls below this. Used
    to size the parallel runtime's per-cell race-checker tables. *)

val array_spans : memory -> (string * int * int) list
(** [(name, base_byte, bytes)] per allocated array, sorted by base
    address; lets trace observers attribute a raw address back to the
    array it falls in. *)

val tile_runner :
  ?observer:(kernel:int -> stmt:string -> addr:int -> write:bool -> unit) ->
  ?tracer:tracer ->
  Prog.t ->
  memory ->
  stats * (?kernel:int -> env:(string * int) list -> Ast.t -> unit)
(** A self-contained executor over a shared memory: returns a private
    stats record and a function executing an AST fragment under an
    initial loop-variable environment. Unlike {!run} it never touches
    [Obs] (which is not thread-safe), so each domain of the parallel
    runtime builds its own and runs tile bodies concurrently; the
    caller merges stats after joining. *)

val arrays_equal : ?eps:float -> memory -> memory -> string -> bool
