(* Memory-hierarchy profiler (see memprof.mli).

   Reuse distances come from the classic Fenwick-tree formulation: each
   line's most recent access time holds a mark; on a repeat access the
   number of marks after that time is exactly the number of distinct
   lines touched in between. The tree is indexed by access time and
   grown by doubling, rebuilding from the (much smaller) set of live
   marks. *)

let line_bytes = 64

let n_buckets = 32

type row = { accesses : int; reads : int; writes : int; dram : int }

type mrow = {
  mutable m_accesses : int;
  mutable m_reads : int;
  mutable m_writes : int;
  mutable m_dram : int;
}

type t = {
  pcache : Cache.t;
  spans : (string * int * int) array;  (* (name, base, bytes), sorted by base *)
  arrays : (string, mrow) Hashtbl.t;
  stmts : (string, mrow) Hashtbl.t;
  last : (int, int) Hashtbl.t;  (* line -> time of its current mark *)
  mutable bit : int array;  (* Fenwick tree over access times, 1-based *)
  mutable time : int;
  mutable cold : int;
  hist : int array;
  per_array_hist : (string, int array) Hashtbl.t;
}

let create ?cache mem =
  { pcache = (match cache with Some c -> c | None -> Cache.scaled_xeon ());
    spans = Array.of_list (Interp.array_spans mem);
    arrays = Hashtbl.create 16;
    stmts = Hashtbl.create 16;
    last = Hashtbl.create 4096;
    bit = Array.make 1024 0;
    time = 0;
    cold = 0;
    hist = Array.make n_buckets 0;
    per_array_hist = Hashtbl.create 16
  }

let array_of t addr =
  let n = Array.length t.spans in
  let rec bsearch lo hi =
    if lo > hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let name, base, bytes = t.spans.(mid) in
      if addr < base then bsearch lo (mid - 1)
      else if addr >= base + bytes then bsearch (mid + 1) hi
      else Some name
    end
  in
  bsearch 0 (n - 1)

(* --- Fenwick tree ---------------------------------------------------- *)

let bit_add t i delta =
  let n = Array.length t.bit in
  let i = ref i in
  while !i < n do
    t.bit.(!i) <- t.bit.(!i) + delta;
    i := !i + (!i land - !i)
  done

let bit_sum t i =
  let acc = ref 0 and i = ref i in
  while !i > 0 do
    acc := !acc + t.bit.(!i);
    i := !i - (!i land - !i)
  done;
  !acc

let grow t needed =
  let n = ref (Array.length t.bit) in
  while !n <= needed do
    n := !n * 2
  done;
  t.bit <- Array.make !n 0;
  Hashtbl.iter (fun _ time -> bit_add t time 1) t.last

(* --- histogram ------------------------------------------------------- *)

let bucket_of d =
  if d < 1 then 0
  else begin
    let rec go i x = if x < 2 || i >= n_buckets - 1 then i else go (i + 1) (x / 2) in
    go 1 d
  end

let bucket_bounds = function
  | 0 -> (0, 0)
  | i -> (1 lsl (i - 1), (1 lsl i) - 1)

let row_of tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
      let r = { m_accesses = 0; m_reads = 0; m_writes = 0; m_dram = 0 } in
      Hashtbl.add tbl key r;
      r

let observer t ~kernel:_ ~stmt ~addr ~write =
  (* cache sampling: a DRAM access is visible as a [dram_accesses]
     increment, which keeps per-row DRAM sums exactly equal to the
     cache's own total *)
  let dram_before = Cache.dram_accesses t.pcache in
  let (_ : int) = Cache.access t.pcache ~addr ~write in
  let dram_hit = Cache.dram_accesses t.pcache - dram_before in
  let touch r =
    r.m_accesses <- r.m_accesses + 1;
    if write then r.m_writes <- r.m_writes + 1 else r.m_reads <- r.m_reads + 1;
    r.m_dram <- r.m_dram + dram_hit
  in
  touch (row_of t.stmts stmt);
  let aname = array_of t addr in
  (match aname with Some a -> touch (row_of t.arrays a) | None -> ());
  (* reuse distance at line granularity *)
  let line = addr / line_bytes in
  let now = t.time + 1 in
  t.time <- now;
  if now >= Array.length t.bit then grow t now;
  (match Hashtbl.find_opt t.last line with
  | Some prev ->
      let d = bit_sum t t.time - bit_sum t prev in
      let b = bucket_of d in
      t.hist.(b) <- t.hist.(b) + 1;
      (match aname with
      | Some a ->
          let h =
            match Hashtbl.find_opt t.per_array_hist a with
            | Some h -> h
            | None ->
                let h = Array.make n_buckets 0 in
                Hashtbl.add t.per_array_hist a h;
                h
          in
          h.(b) <- h.(b) + 1
      | None -> ());
      bit_add t prev (-1)
  | None -> t.cold <- t.cold + 1);
  Hashtbl.replace t.last line now;
  bit_add t now 1

let freeze r =
  { accesses = r.m_accesses; reads = r.m_reads; writes = r.m_writes; dram = r.m_dram }

let rows tbl =
  Hashtbl.fold (fun k r acc -> (k, freeze r) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let per_array t = rows t.arrays

let per_stmt t = rows t.stmts

let cache t = t.pcache

let total_accesses t = t.time

let cold_misses t = t.cold

let distinct_lines t = Hashtbl.length t.last

let nonzero hist =
  Array.to_list hist
  |> List.mapi (fun i c -> (i, c))
  |> List.filter (fun (_, c) -> c > 0)

let reuse_histogram t = nonzero t.hist

let reuse_histogram_of t name =
  match Hashtbl.find_opt t.per_array_hist name with
  | Some h -> nonzero h
  | None -> []
