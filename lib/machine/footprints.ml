open Presburger

type cluster = {
  stmts : string list;
  inst_tiles : (string * Imap.t) list;
  staged_arrays : string list;
  tile_count : int;
  parallel_tiles : bool;
      (* tiles can run concurrently (outer band coincident) *)
  point_instances : int;
  ops : int;
}

type traffic = { read_bytes : int; write_bytes : int }

let bound p (m : Imap.t) = Imap.bind_params m p.Prog.params

let written_arrays p (c : cluster) =
  List.map (fun s -> (Prog.find_stmt p s).Prog.write.Prog.array) c.stmts
  |> List.sort_uniq compare


(* One cluster for a plan root: live-out statements via the tiling
   relation, fused intermediates via reversed extension schedules. *)
let cluster_of_root (p : Prog.t) ~spaces (r : Core.Post_tiling.root) =
  let t = r.Core.Post_tiling.tiling in
  let liveout = Core.Spaces.find spaces t.Core.Tile_shapes.liveout_id in
  let live_stmts = liveout.Core.Spaces.group.Fusion.stmts in
  let live_tiles =
    List.map
      (fun s ->
        ( s,
          Imap.of_bmaps
            (List.filter
               (fun piece -> (Bmap.space piece).Space.in_tuple = s)
               (Imap.pieces t.Core.Tile_shapes.tile_rel)) ))
      live_stmts
  in
  let fused =
    List.concat_map
      (fun (e : Core.Tile_shapes.extension) ->
        let space = Core.Spaces.find spaces e.Core.Tile_shapes.space_id in
        List.map
          (fun s ->
            ( s,
              Imap.of_bmaps
                (List.map Bmap.reverse
                   (List.filter
                      (fun piece -> (Bmap.space piece).Space.out_tuple = s)
                      (Imap.pieces e.Core.Tile_shapes.ext_rel))) ))
          space.Core.Spaces.group.Fusion.stmts)
      t.Core.Tile_shapes.extensions
  in
  let staged_arrays =
    List.concat_map
      (fun (e : Core.Tile_shapes.extension) -> e.Core.Tile_shapes.via_arrays)
      t.Core.Tile_shapes.extensions
    |> List.sort_uniq compare
  in
  let inst_tiles =
    List.map (fun (s, m) -> (s, bound p m)) (live_tiles @ fused)
  in
  let tile_count =
    Iset.card (Imap.range (List.assoc (List.hd live_stmts) inst_tiles))
  in
  let point_instances, ops =
    List.fold_left
      (fun (inst, ops) (s, m) ->
        let stmt = Prog.find_stmt p s in
        let n = Imap.card m in
        (inst + n, ops + (n * stmt.Prog.ops)))
      (0, 0) inst_tiles
  in
  { stmts = List.map fst inst_tiles;
    inst_tiles;
    staged_arrays;
    tile_count;
    parallel_tiles = Fusion.n_parallel liveout.Core.Spaces.group >= 1;
    point_instances;
    ops
  }

(* Trivial cluster (no tiling): the whole space is one tile. *)
let cluster_of_space ?only (p : Prog.t) (s : Core.Spaces.t) =
  let stmts =
    match only with
    | None -> s.Core.Spaces.group.Fusion.stmts
    | Some subset ->
        List.filter (fun x -> List.mem x subset) s.Core.Spaces.group.Fusion.stmts
  in
  let inst_tiles =
    List.map
      (fun name ->
        let stmt = Prog.find_stmt p name in
        let dims = (Bset.space stmt.Prog.domain).Space.dims in
        let m =
          Bmap.from_affs ~in_tuple:name ~in_dims:(Array.to_list dims)
            ~out_tuple:("one%" ^ name) []
        in
        let m = Bmap.intersect_domain m stmt.Prog.domain in
        (name, bound p (Imap.of_bmap m)))
      stmts
  in
  let point_instances, ops =
    List.fold_left
      (fun (inst, ops) (name, m) ->
        let stmt = Prog.find_stmt p name in
        let n = Imap.card m in
        (inst + n, ops + (n * stmt.Prog.ops)))
      (0, 0) inst_tiles
  in
  { stmts;
    inst_tiles;
    staged_arrays = [];
    tile_count = 1;
    parallel_tiles = Fusion.n_parallel s.Core.Spaces.group >= 1;
    point_instances;
    ops
  }

(* Cluster for a rectangular-tiled fusion group (the baseline flows). *)
let cluster_of_group (p : Prog.t) ~tile_size (g : Fusion.group) ~name =
  if g.Fusion.band_dims = 0 || not g.Fusion.permutable then
    cluster_of_space p
      { Core.Spaces.id = 0;
        group = g;
        writes = [];
        reads = [];
        live_out = false
      }
  else begin
    let sizes = Array.make g.Fusion.band_dims tile_size in
    let rel = Core.Tile_shapes.tile_relation p g ~name ~tile_sizes:sizes in
    let inst_tiles =
      List.map
        (fun s ->
          ( s,
            bound p
              (Imap.of_bmaps
                 (List.filter
                    (fun piece -> (Bmap.space piece).Space.in_tuple = s)
                    (Imap.pieces rel))) ))
        g.Fusion.stmts
    in
    let tile_count =
      match inst_tiles with
      | (_, m) :: _ -> Iset.card (Imap.range m)
      | [] -> 0
    in
    let point_instances, ops =
      List.fold_left
        (fun (inst, ops) (s, m) ->
          let stmt = Prog.find_stmt p s in
          let n = Imap.card m in
          (inst + n, ops + (n * stmt.Prog.ops)))
        (0, 0) inst_tiles
    in
    { stmts = g.Fusion.stmts;
      inst_tiles;
      staged_arrays = [];
      tile_count;
      parallel_tiles = Fusion.n_parallel g >= 1;
      point_instances;
      ops
    }
  end

(* Arrays written and read only inside one cluster and not live-out are
   promoted to on-chip storage (the shared-memory promotion PPCG applies
   to values private to a kernel). *)
let finalize_staging (p : Prog.t) clusters =
  let accessed_elsewhere c a =
    List.exists
      (fun c' ->
        c' != c
        && List.exists
             (fun s ->
               let stmt = Prog.find_stmt p s in
               stmt.Prog.write.Prog.array = a
               || List.exists (fun (r : Prog.access) -> r.Prog.array = a) stmt.Prog.reads)
             c'.stmts)
      clusters
  in
  List.map
    (fun c ->
      let written = written_arrays p c in
      let read =
        List.concat_map
          (fun s ->
            List.map
              (fun (r : Prog.access) -> r.Prog.array)
              (Prog.find_stmt p s).Prog.reads)
          c.stmts
        |> List.sort_uniq compare
      in
      let private_arrays =
        List.filter
          (fun a ->
            List.mem a read
            && (not (List.mem a p.Prog.live_out))
            && not (accessed_elsewhere c a))
          written
      in
      { c with
        staged_arrays = List.sort_uniq compare (c.staged_arrays @ private_arrays)
      })
    clusters

let clusters_of_compiled_raw (c : Core.Pipeline.compiled) =
  let p = c.Core.Pipeline.prog in
  let spaces = c.Core.Pipeline.spaces in
  let plan = c.Core.Pipeline.plan in
  List.filter_map
    (fun (s : Core.Spaces.t) ->
      if List.mem s.Core.Spaces.id plan.Core.Post_tiling.skipped then None
      else
        match List.assoc_opt s.Core.Spaces.id plan.Core.Post_tiling.residual with
        | Some rest -> Some (cluster_of_space ~only:rest p s)
        | None -> (
            match
              List.find_opt
                (fun (r : Core.Post_tiling.root) ->
                  r.Core.Post_tiling.tiling.Core.Tile_shapes.liveout_id
                  = s.Core.Spaces.id)
                plan.Core.Post_tiling.roots
            with
            | Some r -> Some (cluster_of_root p ~spaces r)
            | None -> Some (cluster_of_space p s)))
    spaces

let clusters_of_compiled c =
  finalize_staging c.Core.Pipeline.prog (clusters_of_compiled_raw c)

let clusters_of_baseline ~tile_size (b : Core.Pipeline.baseline) =
  let p = b.Core.Pipeline.b_prog in
  let cs =
    List.mapi
      (fun i g -> cluster_of_group p ~tile_size g ~name:(Printf.sprintf "TB%d" i))
      b.Core.Pipeline.b_result.Fusion.groups
  in
  finalize_staging p cs

(* ------------------------------------------------------------------ *)
(* Traffic                                                             *)
(* ------------------------------------------------------------------ *)

let elem_bytes = Interp.elem_bytes

(* Transactions for one statement reading/writing array A: one per
   (tile, element) pair. *)
let access_transactions p (c : cluster) stmt_name (acc : Prog.access) =
  let stmt = Prog.find_stmt p stmt_name in
  let inst_tile = List.assoc stmt_name c.inst_tiles in
  (* tile -> elements *)
  let restricted = Bmap.intersect_domain acc.Prog.rel stmt.Prog.domain in
  let rel =
    Imap.apply_range_approx (Imap.reverse inst_tile)
      (Imap.of_bmap (Bmap.bind_params restricted p.Prog.params))
  in
  Imap.card (Imap.coalesce rel)

(* Per-array attribution is the primitive; the totals below are defined
   as sums over it, so per-array traffic always adds up to the program
   totals exactly (the same integer terms, regrouped). *)
let cluster_traffic_by_array (p : Prog.t) ~previous (c : cluster) =
  ignore previous;
  let tbl : (string, int ref * int ref) Hashtbl.t = Hashtbl.create 8 in
  let cell a =
    match Hashtbl.find_opt tbl a with
    | Some c -> c
    | None ->
        let c = (ref 0, ref 0) in
        Hashtbl.add tbl a c;
        c
  in
  let written_here = written_arrays p c in
  List.iter
    (fun stmt_name ->
      let stmt = Prog.find_stmt p stmt_name in
      List.iter
        (fun (acc : Prog.access) ->
          let a = acc.Prog.array in
          if List.mem a written_here || List.mem a c.staged_arrays then ()
          else begin
            let r, _ = cell a in
            r := !r + (elem_bytes * access_transactions p c stmt_name acc)
          end)
        stmt.Prog.reads)
    c.stmts;
  (* write-back: one transaction per element finally written, counting
     each array once even when several statements update it *)
  List.iter
    (fun a ->
      if List.mem a c.staged_arrays then ()
      else begin
        let region =
          Presburger.Iset.of_bsets
            (List.filter_map
               (fun stmt_name ->
                 let stmt = Prog.find_stmt p stmt_name in
                 if stmt.Prog.write.Prog.array = a then begin
                   let restricted =
                     Bmap.intersect_domain stmt.Prog.write.Prog.rel stmt.Prog.domain
                   in
                   Some
                     (Bmap.range_approx (Bmap.bind_params restricted p.Prog.params))
                 end
                 else None)
               c.stmts)
        in
        let _, w = cell a in
        w := !w + (elem_bytes * Presburger.Iset.card region)
      end)
    (written_arrays p c);
  Hashtbl.fold
    (fun a (r, w) acc -> (a, { read_bytes = !r; write_bytes = !w }) :: acc)
    tbl []
  |> List.sort compare

let cluster_traffic (p : Prog.t) ~previous (c : cluster) =
  List.fold_left
    (fun acc (_, t) ->
      { read_bytes = acc.read_bytes + t.read_bytes;
        write_bytes = acc.write_bytes + t.write_bytes
      })
    { read_bytes = 0; write_bytes = 0 }
    (cluster_traffic_by_array p ~previous c)

let program_traffic_by_array (p : Prog.t) clusters =
  let tbl : (string, traffic) Hashtbl.t = Hashtbl.create 8 in
  let rec go prev = function
    | [] -> ()
    | c :: rest ->
        List.iter
          (fun (a, t) ->
            let acc =
              Option.value ~default:{ read_bytes = 0; write_bytes = 0 }
                (Hashtbl.find_opt tbl a)
            in
            Hashtbl.replace tbl a
              { read_bytes = acc.read_bytes + t.read_bytes;
                write_bytes = acc.write_bytes + t.write_bytes
              })
          (cluster_traffic_by_array p ~previous:prev c);
        go (prev @ [ c ]) rest
  in
  go [] clusters;
  Hashtbl.fold (fun a t acc -> (a, t) :: acc) tbl [] |> List.sort compare

let program_traffic (p : Prog.t) clusters =
  List.fold_left
    (fun acc (_, t) ->
      { read_bytes = acc.read_bytes + t.read_bytes;
        write_bytes = acc.write_bytes + t.write_bytes
      })
    { read_bytes = 0; write_bytes = 0 }
    (program_traffic_by_array p clusters)

let staged_bytes (p : Prog.t) (c : cluster) =
  (* maximum over tiles of the staged-array footprints ~ footprint of an
     interior tile; approximate with total staged elements / tile count,
     rounded up, times a safety factor of the overlap (use the max via
     per-array transactions / tiles). *)
  List.fold_left
    (fun acc a ->
      let per_tile =
        List.fold_left
          (fun best stmt_name ->
            let stmt = Prog.find_stmt p stmt_name in
            let reads =
              List.filter (fun (r : Prog.access) -> r.Prog.array = a) stmt.Prog.reads
            in
            List.fold_left
              (fun best r ->
                let tx = access_transactions p c stmt_name r in
                max best ((tx + c.tile_count - 1) / max 1 c.tile_count))
              best reads)
          0 c.stmts
      in
      acc + (per_tile * elem_bytes))
    0 c.staged_arrays

let max_staged_bytes (p : Prog.t) clusters =
  List.fold_left (fun acc c -> max acc (staged_bytes p c)) 0 clusters
