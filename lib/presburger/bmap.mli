(** Basic maps: conjunctions of affine constraints over
    [params; in_dims; out_dims]. Quantifier-free, like {!Bset}. *)

type t = private { space : Space.map_space; cstrs : Cstr.t list }

val make : Space.map_space -> Cstr.t list -> t
(** Constraints are canonicalized at construction, exactly as in
    {!Bset.make}. *)

val universe : Space.map_space -> t

val empty_map : Space.map_space -> t

val n_params : t -> int

val n_in : t -> int

val n_out : t -> int

val width : t -> int

val space : t -> Space.map_space

val add_cstrs : t -> Cstr.t list -> t

val align_params : t -> string array -> t

val unify_params : t -> t -> t * t

val is_empty : t -> bool

val is_subset : t -> t -> bool

val intersect : t -> t -> t

val subtract : t -> t -> t list

val intersect_domain : t -> Bset.t -> t

val intersect_range : t -> Bset.t -> t

val reverse : t -> t

val domain : t -> Bset.t
(** Exact projection of the output dimensions. *)

val range : t -> Bset.t

val range_approx : t -> Bset.t
(** Over-approximating variant of {!range} (rational-shadow fallback);
    never raises {!Fm.Inexact}. *)

val domain_approx : t -> Bset.t

val apply_range : t -> t -> t
(** [apply_range r s = { i -> k : exists j, i->j in r, j->k in s }]; the
    range tuple of [r] must match the domain tuple of [s]. *)

val apply_range_approx : t -> t -> t
(** Like {!apply_range} with a rational-shadow fallback when the middle
    dimensions cannot be eliminated exactly (e.g. the parity constraints
    of down/up-sampling accesses). The result is an over-approximation;
    Algorithm 1 uses it when composing footprints, which can only
    enlarge (never corrupt) the fused instance sets. *)

val apply_set : Bset.t -> t -> Bset.t
(** Image of a set under a map. *)

val preimage_set : Bset.t -> t -> Bset.t
(** [preimage_set s m] = points whose image intersects [s]. *)

val identity : Space.set_space -> t

val from_affs :
  ?params:string list -> in_tuple:string -> in_dims:string list ->
  out_tuple:string -> (string * Aff.t) list -> t
(** Functional map defined by one affine expression per output dimension
    (name, expression over the input dims). *)

val domain_map_cstrs : t -> Cstr.t list
(** The constraints as seen from the flattened set view (for advanced
    clients such as code generation). *)

val to_set_view : t -> Bset.t
(** Flatten to a set over [in_dims @ out_dims] with tuple
    ["in_tuple>out_tuple"] (mechanical; used to reuse set algorithms). *)

val of_set_view : Space.map_space -> Bset.t -> t

val fix_in_dim : t -> int -> int -> t

val fix_out_dim : t -> int -> int -> t

val sample : t -> (int array * int array) option
(** Requires [n_params = 0]. *)

val bind_params : t -> (string * int) list -> t

val insert_out_dims : t -> pos:int -> names:string array -> t

val project_out_dims : t -> first:int -> count:int -> t
(** Exact projection of a slice of the output dimensions. *)

val gist_simplify : t -> t

val simple_hull : t -> t -> t
(** Constraint-wise union hull (isl's simple hull): a sound
    over-approximation of the union of two maps over the same space,
    exact when that union is convex. *)

val to_string : t -> string

val body_string : t -> string
(** The piece body without braces or parameter prefix
    ([S[i] -> A[x] : ...]); used by {!Imap.to_string}. *)
