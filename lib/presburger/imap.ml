type t = Bmap.t list

let empty = []

let of_bmap m = [ m ]

let of_bmaps ms = ms

let pieces t = t

let union a b = a @ b

let union_all ts = List.concat ts

let compatible (a : Bmap.t) (b : Bmap.t) =
  a.Bmap.space.Space.in_tuple = b.Bmap.space.Space.in_tuple
  && a.Bmap.space.Space.out_tuple = b.Bmap.space.Space.out_tuple
  && Bmap.n_in a = Bmap.n_in b
  && Bmap.n_out a = Bmap.n_out b

let intersect a b =
  List.concat_map
    (fun pa ->
      List.filter_map
        (fun pb ->
          if compatible pa pb then
            let i = Bmap.intersect pa pb in
            if Bmap.is_empty i then None else Some i
          else None)
        b)
    a

let subtract a b =
  List.concat_map
    (fun pa ->
      List.fold_left
        (fun pieces pb ->
          if pieces = [] then []
          else if compatible pa pb then
            List.concat_map (fun p -> Bmap.subtract p pb) pieces
          else pieces)
        [ pa ] b)
    a

let is_empty t = List.for_all Bmap.is_empty t

let is_subset a b = is_empty (subtract a b)

let is_equal a b = is_subset a b && is_subset b a

let in_tuples t =
  List.fold_left
    (fun acc (p : Bmap.t) ->
      let tp = p.Bmap.space.Space.in_tuple in
      if List.mem tp acc then acc else acc @ [ tp ])
    [] t

let filter_in_tuple t name =
  List.filter (fun (p : Bmap.t) -> p.Bmap.space.Space.in_tuple = name) t

let filter_out_tuple t name =
  List.filter (fun (p : Bmap.t) -> p.Bmap.space.Space.out_tuple = name) t

let coalesce t =
  let non_empty = List.filter (fun p -> not (Bmap.is_empty p)) t in
  let rec go kept = function
    | [] -> List.rev kept
    | p :: rest ->
        let covered =
          List.exists
            (fun q -> compatible p q && Bmap.is_subset p q)
            (List.rev_append kept rest)
        in
        if covered then go kept rest else go (p :: kept) rest
  in
  go [] non_empty

(* Merge compatible pieces into their simple hulls: used to keep
   footprint relations to one piece per statement pair. Sound
   over-approximation of the union. *)
let hull_compress t =
  let rec insert merged (piece : Bmap.t) =
    match merged with
    | [] -> [ piece ]
    | q :: rest ->
        if compatible piece q then Bmap.simple_hull piece q :: rest
        else q :: insert rest piece
  in
  List.fold_left insert [] t |> List.rev

let domain t = Iset.of_bsets (List.map Bmap.domain t)

let range t = Iset.of_bsets (List.map Bmap.range t)

let reverse t = List.map Bmap.reverse t

let apply_range_gen f r s =
  List.concat_map
    (fun (pr : Bmap.t) ->
      List.filter_map
        (fun (ps : Bmap.t) ->
          if
            pr.Bmap.space.Space.out_tuple = ps.Bmap.space.Space.in_tuple
            && Bmap.n_out pr = Bmap.n_in ps
          then
            let c = f pr ps in
            if Bmap.is_empty c then None else Some c
          else None)
        s)
    r

let apply_range r s = apply_range_gen Bmap.apply_range r s

let apply_range_approx r s = apply_range_gen Bmap.apply_range_approx r s

let apply_set s m =
  Iset.of_bsets
    (List.concat_map
       (fun set_piece ->
         List.filter_map
           (fun (mp : Bmap.t) ->
             if
               mp.Bmap.space.Space.in_tuple = Bset.tuple set_piece
               && Bmap.n_in mp = Bset.n_dims set_piece
             then
               let img = Bmap.apply_set set_piece mp in
               if Bset.is_empty img then None else Some img
             else None)
           m)
       (Iset.pieces s))

let preimage_set s m =
  Iset.of_bsets
    (List.concat_map
       (fun set_piece ->
         List.filter_map
           (fun (mp : Bmap.t) ->
             if
               mp.Bmap.space.Space.out_tuple = Bset.tuple set_piece
               && Bmap.n_out mp = Bset.n_dims set_piece
             then
               let pre = Bmap.preimage_set set_piece mp in
               if Bset.is_empty pre then None else Some pre
             else None)
           m)
       (Iset.pieces s))

let intersect_domain t s =
  List.concat_map
    (fun (mp : Bmap.t) ->
      List.filter_map
        (fun set_piece ->
          if
            mp.Bmap.space.Space.in_tuple = Bset.tuple set_piece
            && Bmap.n_in mp = Bset.n_dims set_piece
          then
            let r = Bmap.intersect_domain mp set_piece in
            if Bmap.is_empty r then None else Some r
          else None)
        (Iset.pieces s))
    t

let intersect_range t s =
  List.concat_map
    (fun (mp : Bmap.t) ->
      List.filter_map
        (fun set_piece ->
          if
            mp.Bmap.space.Space.out_tuple = Bset.tuple set_piece
            && Bmap.n_out mp = Bset.n_dims set_piece
          then
            let r = Bmap.intersect_range mp set_piece in
            if Bmap.is_empty r then None else Some r
          else None)
        (Iset.pieces s))
    t

let identity sp = [ Bmap.identity sp ]

let lex_piece (sp : Space.set_space) ~eq_upto ~strict_at =
  let nd = Array.length sp.dims in
  let np = Array.length sp.params in
  let mspace : Space.map_space =
    { params = sp.params;
      in_tuple = sp.tuple;
      in_dims = sp.dims;
      out_tuple = sp.tuple;
      out_dims = Array.map (fun d -> d ^ "'") sp.dims
    }
  in
  let w = np + nd + nd in
  let eqs =
    List.init eq_upto (fun d ->
        let coef = Array.make w 0 in
        coef.(np + d) <- 1;
        coef.(np + nd + d) <- -1;
        Cstr.eq coef 0)
  in
  let lt =
    let coef = Array.make w 0 in
    coef.(np + strict_at) <- -1;
    coef.(np + nd + strict_at) <- 1;
    Cstr.ge coef (-1)
  in
  Bmap.make mspace (lt :: eqs)

let lex_lt_first (sp : Space.set_space) k =
  List.init k (fun level -> lex_piece sp ~eq_upto:level ~strict_at:level)

let lex_lt sp = lex_lt_first sp (Array.length sp.dims)

let bind_params t values = List.map (fun p -> Bmap.bind_params p values) t

let card t =
  Iset.card (Iset.of_bsets (List.map Bmap.to_set_view t))

(* Same isl-compatible shape as Iset.to_string: one brace pair, ';'
   between pieces, merged parameter prefix. *)
let to_string t =
  match t with
  | [] -> "{ }"
  | pieces ->
      let merged =
        List.fold_left
          (fun acc m -> Space.merge_params acc (Bmap.space m).Space.params)
          [||] pieces
      in
      let pieces = List.map (fun m -> Bmap.align_params m merged) pieces in
      let prefix =
        if Array.length merged = 0 then ""
        else
          Printf.sprintf "[%s] -> " (String.concat ", " (Array.to_list merged))
      in
      Printf.sprintf "%s{ %s }" prefix
        (String.concat " ; " (List.map Bmap.body_string pieces))
