(** Fourier-Motzkin elimination with integer-exactness certification.

    All functions operate on conjunctions of {!Cstr.t} over a flat variable
    space of fixed width. Elimination zeroes the column of the eliminated
    variable but keeps the constraint width unchanged; the caller drops the
    column when removing the dimension from a space.

    Exactness: eliminating a variable is integer-exact when every
    lower/upper bound pair has a unit coefficient on one side, or when the
    real and dark shadows of the pair coincide after normalization (this
    covers the tiling pattern [T*o <= i < T*o + T]). [Inexact] is raised
    when a required elimination cannot be certified, rather than silently
    over-approximating. *)

exception Inexact of string

exception Infeasible
(** Raised internally by some simplifications; public API returns options
    or booleans instead. *)

val false_cstr : int -> Cstr.t
(** A canonical unsatisfiable constraint of the given width ([0 >= 1]). *)

val dedup : Cstr.t list -> Cstr.t list option
(** Cheap syntactic simplification: normalize every constraint, drop
    trivially-true ones and duplicates, keep the tightest of parallel
    inequalities. [None] when a constraint is trivially false or two
    constraints are directly contradictory. The result is in canonical
    order ({!Cstr.compare}: equalities first, then lexicographic), so
    it is independent of the input order. *)

val canonical : nvars:int -> Cstr.t list -> Cstr.t list
(** {!dedup} with contradictions represented as [[false_cstr nvars]]:
    the canonical form used at {!Bset.make}/{!Bmap.make} construction
    and as the hash-consing key of the memo caches ({!Fm_cache}). *)

val box_trivially_empty : nvars:int -> Cstr.t list -> bool
(** Cheap sound emptiness certificate: the per-variable bounds read off
    the single-variable constraints alone contradict ([true] implies
    the system is empty; [false] decides nothing). No elimination. *)

val eliminate : exact:bool -> var:int -> Cstr.t list -> Cstr.t list
(** Existentially project out variable [var]. With [~exact:true], raise
    {!Inexact} when integer exactness cannot be certified; with
    [~exact:false] return the (possibly over-approximate) real shadow. *)

val eliminate_many : exact:bool -> vars:int list -> Cstr.t list -> Cstr.t list

val is_empty : nvars:int -> Cstr.t list -> bool
(** Integer emptiness. When an elimination step cannot be certified exact
    the decision falls back to enumerating the rational relaxation box;
    {!Inexact} is then only raised for unbounded systems. *)

val sample : nvars:int -> Cstr.t list -> int array option
(** An integer point of the system, or [None] if empty. On the exact
    path the point is the lexicographic minimum over bounded dimensions;
    otherwise the same enumeration fallback as {!is_empty} applies. *)

val iter_points_by_enum : nvars:int -> Cstr.t list -> (int array -> unit) -> unit
(** Enumerate every integer point (bounded systems only; the callback
    argument is reused across calls). Complete but potentially slow;
    used as a fallback by counting operations. *)

val bounds_for : var:int -> Cstr.t list -> (int * Cstr.t) list * (int * Cstr.t) list
(** [(lowers, uppers)] for [var]: a lower entry [(a, c)] has
    [c.coef.(var) = a > 0] (reading [a*x >= -rest]); an upper entry
    [(b, c)] has [c.coef.(var) = -b < 0] (reading [b*x <= rest]).
    Equalities appear on both sides. *)

val remove_redundant : nvars:int -> Cstr.t list -> Cstr.t list
(** Feasibility-based redundancy removal: drop every inequality implied by
    the others. Quadratic in the number of constraints; used to simplify
    code-generation guards. *)

val implies : nvars:int -> Cstr.t list -> Cstr.t -> bool
(** [implies sys c] holds when every integer point of [sys] satisfies [c]. *)
