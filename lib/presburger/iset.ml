type t = Bset.t list

let empty = []

let of_bset b = [ b ]

let of_bsets bs = bs

let pieces t = t

let union a b = a @ b

let union_all ts = List.concat ts

let compatible a b =
  Bset.tuple a = Bset.tuple b && Bset.n_dims a = Bset.n_dims b

let intersect a b =
  List.concat_map
    (fun pa ->
      List.filter_map
        (fun pb ->
          if compatible pa pb then
            let i = Bset.intersect pa pb in
            if Bset.is_empty i then None else Some i
          else None)
        b)
    a

let subtract a b =
  List.concat_map
    (fun pa ->
      List.fold_left
        (fun pieces pb ->
          if pieces = [] then []
          else if compatible pa pb then
            List.concat_map (fun p -> Bset.subtract p pb) pieces
          else pieces)
        [ pa ] b)
    a

let is_empty t = List.for_all Bset.is_empty t

let is_subset a b = is_empty (subtract a b)

let is_equal a b = is_subset a b && is_subset b a

let tuples t =
  List.fold_left
    (fun acc p ->
      let tp = Bset.tuple p in
      if List.mem tp acc then acc else acc @ [ tp ])
    [] t

let filter_tuple t name = List.filter (fun p -> Bset.tuple p = name) t

let coalesce t =
  let non_empty = List.filter (fun p -> not (Bset.is_empty p)) t in
  let rec go kept = function
    | [] -> List.rev kept
    | p :: rest ->
        let covered =
          List.exists
            (fun q -> compatible p q && Bset.is_subset p q)
            (List.rev_append kept rest)
        in
        if covered then go kept rest else go (p :: kept) rest
  in
  go [] non_empty

let make_disjoint t =
  List.rev
    (List.fold_left
       (fun acc p ->
         let remaining =
           List.fold_left
             (fun pieces prev ->
               if pieces = [] then []
               else if compatible p prev then
                 List.concat_map (fun q -> Bset.subtract q prev) pieces
               else pieces)
             [ p ] acc
         in
         List.rev_append remaining acc)
       [] t)

let card t =
  List.fold_left (fun acc p -> acc + Bset.card p) 0 (make_disjoint t)

let bind_params t values = List.map (fun p -> Bset.bind_params p values) t

let contains t ~tuple pt =
  List.exists (fun p -> Bset.tuple p = tuple && Bset.contains p pt) t

let sample t =
  List.fold_left
    (fun acc p ->
      match acc with
      | Some _ -> acc
      | None -> (
          match Bset.sample p with
          | Some pt -> Some (Bset.tuple p, pt)
          | None -> None))
    None t

(* Printed in the same isl syntax the parser accepts: one brace pair,
   pieces separated by ';', a single merged parameter prefix. *)
let to_string t =
  match t with
  | [] -> "{ }"
  | pieces ->
      let merged =
        List.fold_left
          (fun acc s -> Space.merge_params acc (Bset.space s).Space.params)
          [||] pieces
      in
      let pieces = List.map (fun s -> Bset.align_params s merged) pieces in
      let prefix =
        if Array.length merged = 0 then ""
        else
          Printf.sprintf "[%s] -> " (String.concat ", " (Array.to_list merged))
      in
      Printf.sprintf "%s{ %s }" prefix
        (String.concat " ; " (List.map Bset.body_string pieces))
