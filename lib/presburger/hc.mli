(** Hash-consing of constraints and constraint systems.

    [intern] maps structurally equal constraint lists to one shared
    {!sys} representative with a unique integer id, so memo tables
    ({!Fm_cache}) can key on an int and structurally equal systems are
    pointer-equal. Ids are never reused, even across {!clear}: a stale
    id cached by a client can never alias a different system. *)

type sys = { sys_id : int; sys_cstrs : Cstr.t list }

val intern : Cstr.t list -> sys
(** The unique representative of a constraint list. Two calls with
    structurally equal lists return the same ([==]) record. O(1) when
    the argument is a registered canonical representative (see
    {!intern_rep}); one structural pass otherwise. *)

val intern_rep : Cstr.t list -> sys
(** Like {!intern}, and additionally registers the representative's
    own list under physical identity, so later {!find_rep}/{!intern}
    calls on it short-circuit. Callers must only pass canonicalized
    lists (Fm.canonical does): {!find_rep} treats registration as a
    proof of canonical form. *)

val find_rep : Cstr.t list -> sys option
(** The system whose [sys_cstrs] IS (pointer-equal to) the argument,
    if it was interned via {!intern_rep}. *)

val cstr : Cstr.t -> Cstr.t
(** The unique representative of a single constraint. *)

val clear : unit -> unit
(** Drop the interning tables (sharing is lost, ids are not reused). *)

val n_interned_cstrs : unit -> int

val n_interned_systems : unit -> int
