(* Hash-consing of constraints and constraint systems.

   Interning maps every structurally equal constraint (and every
   structurally equal constraint list) to one shared representative
   carrying a unique integer id, so downstream memo tables can key on a
   single int and compare systems by pointer equality instead of
   re-hashing whole coefficient matrices on every probe.

   Ids are monotonically increasing and never reused: when the interning
   tables are trimmed (capacity bound) or cleared, stale ids simply stop
   matching anything, which keeps entries cached under an old id from
   ever aliasing a different system.

   A single mutex guards all three tables, so compiles running
   concurrently across domains (the serve daemon) can intern safely;
   uncontended Mutex.lock is cheap relative to the structural hashing a
   probe already does. *)

type sys = { sys_id : int; sys_cstrs : Cstr.t list }

(* Capacity bound: interning tables are dropped wholesale when they
   exceed this many entries, so a pathological compile cannot grow them
   without bound. Sharing is lost for live systems, correctness is not. *)
let max_interned = 1 lsl 17

let mu = Mutex.create ()

let with_lock f =
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      v
  | exception e ->
      Mutex.unlock mu;
      raise e

let cstr_tbl : (Cstr.t, Cstr.t * int) Hashtbl.t = Hashtbl.create 4096

let sys_tbl : (int list, sys) Hashtbl.t = Hashtbl.create 4096

let next_id = ref 0

let fresh_id () =
  incr next_id;
  !next_id

let n_interned_cstrs () = with_lock (fun () -> Hashtbl.length cstr_tbl)

let n_interned_systems () = with_lock (fun () -> Hashtbl.length sys_tbl)

let intern_cstr_unlocked (c : Cstr.t) =
  match Hashtbl.find_opt cstr_tbl c with
  | Some entry -> entry
  | None ->
      if Hashtbl.length cstr_tbl >= max_interned then Hashtbl.reset cstr_tbl;
      let entry = (c, fresh_id ()) in
      Hashtbl.add cstr_tbl c entry;
      entry

let cstr c = with_lock (fun () -> fst (intern_cstr_unlocked c))

(* Physical-identity index of canonical representative lists. Lists
   registered here are exactly the [sys_cstrs] of systems interned via
   {!intern_rep} (i.e. canonicalized by Fm.canonical), so a Bset/Bmap
   whose constraints came out of construction hits this table in O(1)
   and skips both re-canonicalization and per-constraint structural
   hashing. The hash is the (bounded) structural one — deterministic
   for a given list — while equality is pointer equality. *)
module Phys = Hashtbl.Make (struct
  type t = Cstr.t list

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let rep_tbl : sys Phys.t = Phys.create 4096

let find_rep cstrs = with_lock (fun () -> Phys.find_opt rep_tbl cstrs)

let clear () =
  with_lock (fun () ->
      Hashtbl.reset cstr_tbl;
      Hashtbl.reset sys_tbl;
      Phys.reset rep_tbl)

let intern_structural_unlocked cstrs =
  let reps = List.map intern_cstr_unlocked cstrs in
  let key = List.map snd reps in
  match Hashtbl.find_opt sys_tbl key with
  | Some s -> s
  | None ->
      if Hashtbl.length sys_tbl >= max_interned then Hashtbl.reset sys_tbl;
      let s = { sys_id = fresh_id (); sys_cstrs = List.map fst reps } in
      Hashtbl.add sys_tbl key s;
      s

let intern cstrs =
  with_lock (fun () ->
      match Phys.find_opt rep_tbl cstrs with
      | Some s -> s
      | None -> intern_structural_unlocked cstrs)

let intern_rep cstrs =
  with_lock (fun () ->
      match Phys.find_opt rep_tbl cstrs with
      | Some s -> s
      | None ->
          let s = intern_structural_unlocked cstrs in
          if Phys.length rep_tbl >= max_interned then Phys.reset rep_tbl;
          Phys.replace rep_tbl s.sys_cstrs s;
          s)
