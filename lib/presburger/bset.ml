type t = { space : Space.set_space; cstrs : Cstr.t list }

let width_of_space (sp : Space.set_space) =
  Array.length sp.params + Array.length sp.dims

(* Constraint lists are canonicalized at construction (gcd-reduced,
   deduped, sorted by Cstr.compare, contradictions collapsed to the
   canonical false constraint): structurally equal sets print the same
   and hash-cons to the same Fm memo key regardless of how they were
   built. *)
let make space cstrs =
  let w = width_of_space space in
  List.iter (fun c -> assert (Cstr.nvars c = w)) cstrs;
  { space; cstrs = Fm.canonical ~nvars:w cstrs }

let universe space = make space []

let false_of space = Fm.false_cstr (width_of_space space)

let empty_set space = make space [ false_of space ]

let n_params s = Array.length s.space.Space.params

let n_dims s = Array.length s.space.Space.dims

let width s = width_of_space s.space

let space s = s.space

let tuple s = s.space.Space.tuple

let add_cstrs s cstrs = make s.space (cstrs @ s.cstrs)

let align_params s new_params =
  let old_params = s.space.Space.params in
  if old_params = new_params then s
  else begin
    let remap = Space.param_remap ~old_params ~new_params in
    let np_old = Array.length old_params and np_new = Array.length new_params in
    let nd = n_dims s in
    let conv (c : Cstr.t) =
      let coef = Array.make (np_new + nd) 0 in
      Array.iteri (fun i j -> coef.(j) <- c.coef.(i)) remap;
      for d = 0 to nd - 1 do
        coef.(np_new + d) <- c.coef.(np_old + d)
      done;
      { c with coef }
    in
    make { s.space with params = new_params } (List.map conv s.cstrs)
  end

let unify_params a b =
  let merged = Space.merge_params a.space.Space.params b.space.Space.params in
  (align_params a merged, align_params b merged)

let set_tuple s tuple = { s with space = { s.space with Space.tuple } }

let rename_dims s names =
  assert (Array.length names = n_dims s);
  { s with space = { s.space with Space.dims = names } }

let is_empty s =
  Obs.count "bset.is_empty";
  Obs.observe_int "bset.cstrs" (List.length s.cstrs);
  Fm.is_empty ~nvars:(width s) s.cstrs

let intersect a b =
  Obs.count "bset.intersect";
  let a, b = unify_params a b in
  assert (Space.same_set_space a.space b.space);
  let cstrs = a.cstrs @ b.cstrs in
  (* box-hull disjointness: unit bounds of far-apart operands already
     contradict, skip canonicalization of the dead combined system *)
  if Fm.box_trivially_empty ~nvars:(width a) cstrs then begin
    Obs.count "bset.intersect.box_disjoint";
    empty_set a.space
  end
  else make a.space cstrs

let is_subset a b =
  Obs.count "bset.is_subset";
  let a, b = unify_params a b in
  assert (Space.same_set_space a.space b.space);
  List.for_all
    (fun c -> try Fm.implies ~nvars:(width a) a.cstrs c with Fm.Inexact _ -> false)
    b.cstrs

let subtract a b =
  Obs.count "bset.subtract";
  let a, b = unify_params a b in
  assert (Space.same_set_space a.space b.space);
  (* Expand equalities of b into pairs of inequalities so negation is a
     single constraint per step. *)
  let b_ges =
    List.concat_map
      (fun (c : Cstr.t) ->
        match c.Cstr.kind with
        | Cstr.Ge -> [ c ]
        | Cstr.Eq ->
            [ { c with kind = Ge };
              { kind = Ge; coef = Vec.scale (-1) c.coef; cst = -c.cst }
            ])
      b.cstrs
  in
  let rec go acc established = function
    | [] -> List.rev acc
    | c :: rest ->
        let piece =
          make a.space ((Cstr.negate_ge c :: established) @ a.cstrs)
        in
        let acc = if is_empty piece then acc else piece :: acc in
        go acc (c :: established) rest
  in
  go [] [] b_ges

let project_dims_gen ~exact s ~first ~count =
  if count = 0 then s
  else begin
    Obs.count "bset.project";
    assert (first >= 0 && first + count <= n_dims s);
    let np = n_params s in
    let vars = List.init count (fun i -> np + first + i) in
    let cstrs = Fm.eliminate_many ~exact ~vars s.cstrs in
    let cstrs = List.map (fun c -> Cstr.remove_vars c ~pos:(np + first) ~count) cstrs in
    let dims =
      Array.append
        (Array.sub s.space.Space.dims 0 first)
        (Array.sub s.space.Space.dims (first + count)
           (n_dims s - first - count))
    in
    make { s.space with Space.dims } cstrs
  end

let project_dims s ~first ~count = project_dims_gen ~exact:true s ~first ~count

let project_dims_approx s ~first ~count =
  try project_dims s ~first ~count
  with Fm.Inexact _ -> project_dims_gen ~exact:false s ~first ~count

let insert_dims s ~pos ~names =
  let count = Array.length names in
  if count = 0 then s
  else begin
    let np = n_params s in
    let cstrs = List.map (fun c -> Cstr.insert_vars c ~pos:(np + pos) ~count) s.cstrs in
    let dims =
      Array.concat
        [ Array.sub s.space.Space.dims 0 pos;
          names;
          Array.sub s.space.Space.dims pos (n_dims s - pos)
        ]
    in
    make { s.space with Space.dims } cstrs
  end

let bind_params s values =
  let keep_params =
    Array.to_list s.space.Space.params
    |> List.filter (fun p -> not (List.mem_assoc p values))
    |> Array.of_list
  in
  let np_old = Array.length s.space.Space.params in
  let np_new = Array.length keep_params in
  let nd = n_dims s in
  let conv (c : Cstr.t) =
    let coef = Array.make (np_new + nd) 0 in
    let cst = ref c.cst in
    let j = ref 0 in
    Array.iteri
      (fun i p ->
        match List.assoc_opt p values with
        | Some v -> cst := !cst + (c.coef.(i) * v)
        | None ->
            coef.(!j) <- c.coef.(i);
            incr j)
      s.space.Space.params;
    assert (!j = np_new);
    for d = 0 to nd - 1 do
      coef.(np_new + d) <- c.coef.(np_old + d)
    done;
    { c with coef; cst = !cst }
  in
  make { s.space with Space.params = keep_params } (List.map conv s.cstrs)

let affine_on_dim s d k cst kind =
  let coef = Array.make (width s) 0 in
  coef.(n_params s + d) <- k;
  { Cstr.kind; coef; cst }

let fix_dim s d v = add_cstrs s [ affine_on_dim s d 1 (-v) Cstr.Eq ]

let lower_bound_dim s d v = add_cstrs s [ affine_on_dim s d 1 (-v) Cstr.Ge ]

let upper_bound_dim s d v = add_cstrs s [ affine_on_dim s d (-1) v Cstr.Ge ]

let eq_dims s i j =
  let coef = Array.make (width s) 0 in
  coef.(n_params s + i) <- 1;
  coef.(n_params s + j) <- -1;
  add_cstrs s [ { Cstr.kind = Cstr.Eq; coef; cst = 0 } ]

let contains s pt =
  assert (n_params s = 0);
  assert (Array.length pt = n_dims s);
  List.for_all (fun c -> Cstr.holds c pt) s.cstrs

let sample s =
  assert (n_params s = 0);
  Fm.sample ~nvars:(n_dims s) s.cstrs

let dim_bounds s d = Fm.bounds_for ~var:(n_params s + d) s.cstrs

(* Constant per-dimension bounds obtained by projecting away the other
   dimensions. Requires n_params = 0 and boundedness. *)
(* Exact per-dimension min/max by full enumeration; fallback for sets
   whose projections are not certified exact. *)
let bounds_by_enum s =
  let nd = n_dims s in
  let lo = Array.make nd max_int and hi = Array.make nd min_int in
  Fm.iter_points_by_enum ~nvars:nd s.cstrs (fun pt ->
      for d = 0 to nd - 1 do
        if pt.(d) < lo.(d) then lo.(d) <- pt.(d);
        if pt.(d) > hi.(d) then hi.(d) <- pt.(d)
      done);
  Array.init nd (fun d -> (lo.(d), hi.(d)))

let constant_bounds s =
  assert (n_params s = 0);
  let nd = n_dims s in
  try
    Array.init nd (fun d ->
        let others = List.init nd (fun i -> i) |> List.filter (fun i -> i <> d) in
        let cs = Fm.eliminate_many ~exact:true ~vars:others s.cstrs in
        let lowers, uppers = Fm.bounds_for ~var:d cs in
        let lo =
          List.fold_left
            (fun acc (a, (c : Cstr.t)) ->
              let v = Vec.ceil_div (-c.cst) a in
              match acc with None -> Some v | Some w -> Some (max v w))
            None lowers
        in
        let hi =
          List.fold_left
            (fun acc (b, (c : Cstr.t)) ->
              let v = Vec.floor_div c.cst b in
              match acc with None -> Some v | Some w -> Some (min v w))
            None uppers
        in
        match (lo, hi) with
        | Some l, Some h -> (l, h)
        | _ -> invalid_arg "Bset.box_hull: unbounded set")
  with Fm.Inexact _ -> bounds_by_enum s

let box_hull s =
  if is_empty s then Array.make (n_dims s) (0, -1) else constant_bounds s

let box_card s =
  Array.fold_left (fun acc (l, h) -> acc * max 0 (h - l + 1)) 1 (box_hull s)

let is_box s =
  List.for_all
    (fun (c : Cstr.t) ->
      let nonzero = ref 0 in
      for d = 0 to n_dims s - 1 do
        if c.coef.(n_params s + d) <> 0 then incr nonzero
      done;
      !nonzero <= 1)
    s.cstrs

let card_by_enum s =
  let n = ref 0 in
  Fm.iter_points_by_enum ~nvars:(n_dims s) s.cstrs (fun _ -> incr n);
  !n

let card s =
  Obs.count "bset.card";
  assert (n_params s = 0);
  if is_empty s then 0
  else if n_dims s = 0 then 1
  else if is_box s then box_card s
  else begin
    try
    let nd = n_dims s in
    (* proj.(k): constraints over dims < k *)
    let proj = Array.make (nd + 1) [] in
    proj.(nd) <- s.cstrs;
    for k = nd - 1 downto 0 do
      proj.(k) <-
        (match Fm.dedup (Fm.eliminate ~exact:true ~var:k proj.(k + 1)) with
        | None -> [ false_of s.space ]
        | Some c -> c)
    done;
    let pt = Array.make nd 0 in
    let rec count k =
      if k = nd then 1
      else begin
        let lowers, uppers = Fm.bounds_for ~var:k proj.(k + 1) in
        let eval_partial (c : Cstr.t) =
          let acc = ref c.cst in
          for i = 0 to k - 1 do
            acc := !acc + (c.coef.(i) * pt.(i))
          done;
          !acc
        in
        let lo =
          List.fold_left
            (fun acc (a, c) -> max acc (Vec.ceil_div (-eval_partial c) a))
            min_int lowers
        in
        let hi =
          List.fold_left
            (fun acc (b, c) -> min acc (Vec.floor_div (eval_partial c) b))
            max_int uppers
        in
        if lo = min_int || hi = max_int then invalid_arg "Bset.card: unbounded set";
        let total = ref 0 in
        for v = lo to hi do
          pt.(k) <- v;
          total := !total + count (k + 1)
        done;
        !total
      end
    in
    count 0
    with Fm.Inexact _ -> card_by_enum s
  end

let gist_simplify s =
  { s with cstrs = Fm.remove_redundant ~nvars:(width s) s.cstrs }

let var_names s =
  Array.append s.space.Space.params s.space.Space.dims

let body_string s =
  let names = var_names s in
  let dims = String.concat ", " (Array.to_list s.space.Space.dims) in
  let body =
    if s.cstrs = [] then ""
    else
      " : "
      ^ String.concat " and "
          (List.map (fun c -> Cstr.to_string ~names c) s.cstrs)
  in
  Printf.sprintf "%s[%s]%s" s.space.Space.tuple dims body

let to_string s =
  let params =
    if n_params s = 0 then ""
    else
      Printf.sprintf "[%s] -> "
        (String.concat ", " (Array.to_list s.space.Space.params))
  in
  Printf.sprintf "%s{ %s }" params (body_string s)
