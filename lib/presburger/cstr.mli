(** Affine constraints over a flat, positional variable space.

    A constraint [{kind; coef; cst}] denotes [sum_i coef.(i)*x_i + cst >= 0]
    (for [Ge]) or [= 0] (for [Eq]). The engine is purely positional; the
    owning set/map assigns meaning (parameter, input, output) to each
    column. *)

type kind = Eq | Ge

type t = { kind : kind; coef : int array; cst : int }

val nvars : t -> int

val compare : t -> t -> int
(** Total order used to canonicalize constraint systems: equalities sort
    before inequalities, then lexicographic on [coef], then [cst]. *)

val equal : t -> t -> bool

val single_var : t -> int option
(** The index of the only nonzero coefficient, when exactly one
    coefficient is nonzero (the unit-bound shape of box constraints). *)

val eq : int array -> int -> t

val ge : int array -> int -> t

val eval : t -> int array -> int
(** Value of the affine form at a point (ignoring [kind]). *)

val holds : t -> int array -> bool

val negate_ge : t -> t
(** Logical negation of a [Ge] constraint: [not (f >= 0)] is [-f-1 >= 0]. *)

type simplified = Trivial_true | Trivial_false | Keep of t

val simplify : t -> simplified
(** Normalize by the gcd of the coefficients, tightening the constant of
    inequalities ([2x >= 1] becomes [x >= 1]); detect trivially true or
    false constraints (zero coefficient vector). *)

val insert_vars : t -> pos:int -> count:int -> t

val remove_vars : t -> pos:int -> count:int -> t
(** Caller must guarantee the removed columns are zero. *)

val swap_blocks : t -> pos1:int -> len1:int -> pos2:int -> len2:int -> t
(** Exchange two adjacent column blocks: requires [pos2 = pos1 + len1]. *)

val to_string : ?names:string array -> t -> string
