type kind = Eq | Ge

type t = { kind : kind; coef : int array; cst : int }

let nvars c = Array.length c.coef

(* Total order used to canonicalize constraint systems: equalities
   before inequalities, then lexicographic on the coefficient vector,
   then on the constant. Structural, so equal constraints compare 0. *)
let compare (a : t) (b : t) =
  match Stdlib.compare a.kind b.kind with
  | 0 -> (
      match Stdlib.compare a.coef b.coef with
      | 0 -> Stdlib.compare a.cst b.cst
      | c -> c)
  | c -> c

let equal (a : t) (b : t) = a.kind = b.kind && a.cst = b.cst && a.coef = b.coef

(* Number of nonzero coefficients, and the index of the only one when
   there is exactly one — the shape the cheap box fast paths key on. *)
let single_var c =
  let idx = ref (-1) and n = ref 0 in
  Array.iteri
    (fun i a ->
      if a <> 0 then begin
        incr n;
        idx := i
      end)
    c.coef;
  if !n = 1 then Some !idx else None

let eq coef cst = { kind = Eq; coef; cst }

let ge coef cst = { kind = Ge; coef; cst }

let eval c pt =
  let acc = ref c.cst in
  Array.iteri (fun i a -> acc := !acc + (a * pt.(i))) c.coef;
  !acc

let holds c pt =
  let v = eval c pt in
  match c.kind with Eq -> v = 0 | Ge -> v >= 0

let negate_ge c =
  assert (c.kind = Ge);
  { kind = Ge; coef = Vec.scale (-1) c.coef; cst = -c.cst - 1 }

type simplified = Trivial_true | Trivial_false | Keep of t

let simplify c =
  let g = Vec.gcd_array c.coef in
  if g = 0 then
    match c.kind with
    | Eq -> if c.cst = 0 then Trivial_true else Trivial_false
    | Ge -> if c.cst >= 0 then Trivial_true else Trivial_false
  else if g = 1 then Keep c
  else
    match c.kind with
    | Eq ->
        if c.cst mod g <> 0 then Trivial_false
        else Keep { c with coef = Array.map (fun a -> a / g) c.coef; cst = c.cst / g }
    | Ge ->
        (* g*f' + cst >= 0  <=>  f' >= -cst/g  <=>  f' + floor(cst/g) >= 0 *)
        Keep
          { c with
            coef = Array.map (fun a -> a / g) c.coef;
            cst = Vec.floor_div c.cst g
          }

let insert_vars c ~pos ~count = { c with coef = Vec.insert_zeros c.coef ~pos ~count }

let remove_vars c ~pos ~count =
  for i = pos to pos + count - 1 do
    assert (c.coef.(i) = 0)
  done;
  { c with coef = Vec.remove c.coef ~pos ~count }

let swap_blocks c ~pos1 ~len1 ~pos2 ~len2 =
  assert (pos2 = pos1 + len1);
  let n = Array.length c.coef in
  let coef =
    Array.init n (fun i ->
        if i < pos1 || i >= pos2 + len2 then c.coef.(i)
        else if i < pos1 + len2 then c.coef.(pos2 + (i - pos1))
        else c.coef.(pos1 + (i - pos1 - len2)))
  in
  { c with coef }

let to_string ?names c =
  let name i =
    match names with
    | Some a when i < Array.length a -> a.(i)
    | _ -> Printf.sprintf "x%d" i
  in
  let buf = Buffer.create 32 in
  let first = ref true in
  Array.iteri
    (fun i a ->
      if a <> 0 then begin
        if !first then begin
          if a = -1 then Buffer.add_string buf "-"
          else if a <> 1 then Buffer.add_string buf (string_of_int a);
          first := false
        end
        else if a > 0 then begin
          Buffer.add_string buf " + ";
          if a <> 1 then Buffer.add_string buf (string_of_int a)
        end
        else begin
          Buffer.add_string buf " - ";
          if a <> -1 then Buffer.add_string buf (string_of_int (-a))
        end;
        Buffer.add_string buf (name i)
      end)
    c.coef;
  if !first then Buffer.add_string buf (string_of_int c.cst)
  else if c.cst > 0 then Buffer.add_string buf (Printf.sprintf " + %d" c.cst)
  else if c.cst < 0 then Buffer.add_string buf (Printf.sprintf " - %d" (-c.cst));
  Buffer.add_string buf (match c.kind with Eq -> " = 0" | Ge -> " >= 0");
  Buffer.contents buf
