(** Basic sets: conjunctions of affine constraints over [params; dims].

    No existentially quantified dimensions exist in this library: every
    projection is performed exactly (or raises {!Fm.Inexact}), so basic
    sets stay quantifier-free. *)

type t = private { space : Space.set_space; cstrs : Cstr.t list }

val make : Space.set_space -> Cstr.t list -> t
(** Constraints are canonicalized at construction ({!Fm.canonical}:
    gcd-reduced, deduped, sorted, contradictions collapsed to the
    canonical false constraint), so structurally equal sets print
    identically and share Fm memo-cache keys. *)

val universe : Space.set_space -> t

val empty_set : Space.set_space -> t

val n_params : t -> int

val n_dims : t -> int

val width : t -> int
(** [n_params + n_dims], the constraint width. *)

val space : t -> Space.set_space

val tuple : t -> string

val add_cstrs : t -> Cstr.t list -> t

val align_params : t -> string array -> t
(** Re-express the set over the given parameter list, which must contain
    every parameter of the set. *)

val unify_params : t -> t -> t * t

val set_tuple : t -> string -> t

val rename_dims : t -> string array -> t

val is_empty : t -> bool

val is_subset : t -> t -> bool
(** [is_subset a b]: every point of [a] lies in [b] (both basic). *)

val intersect : t -> t -> t

val subtract : t -> t -> t list
(** Difference as a disjoint list of basic sets over [a]'s space. *)

val project_dims : t -> first:int -> count:int -> t
(** Exact existential projection; the dims disappear from the space.
    Raises {!Fm.Inexact} when the projection of the (single) basic set is
    not representable as one basic set. *)

val project_dims_approx : t -> first:int -> count:int -> t
(** Like {!project_dims} but falls back to the rational-shadow
    over-approximation instead of raising. Sound for conservative
    decisions (disjointness implies true disjointness) and for
    upper-bounding footprint volumes. *)

val insert_dims : t -> pos:int -> names:string array -> t

val bind_params : t -> (string * int) list -> t
(** Substitute concrete values for the listed parameters; the bound
    parameters disappear. Unlisted parameters remain. *)

val fix_dim : t -> int -> int -> t
(** [fix_dim s d v] adds the constraint [dim_d = v]. *)

val lower_bound_dim : t -> int -> int -> t
(** Adds [dim_d >= v]. *)

val upper_bound_dim : t -> int -> int -> t
(** Adds [dim_d <= v]. *)

val eq_dims : t -> int -> int -> t
(** Adds [dim_i = dim_j]. *)

val contains : t -> int array -> bool
(** Membership of a dims-length point; requires [n_params = 0]. *)

val sample : t -> int array option
(** A dims-length point, or [None]; requires [n_params = 0]. *)

val card : t -> int
(** Exact number of integer points; requires [n_params = 0] and a bounded
    set. Fast path for box-shaped sets, pruned enumeration otherwise. *)

val box_hull : t -> (int * int) array
(** Per-dimension [lo, hi] bounds of the smallest enclosing box; requires
    [n_params = 0] and boundedness. *)

val box_card : t -> int
(** Number of points of the enclosing box (the over-approximation used by
    the modelled PolyMage strategy). *)

val dim_bounds : t -> int -> (int * Cstr.t) list * (int * Cstr.t) list
(** Lower and upper bound constraints for a dimension, for code
    generation; coefficients as in {!Fm.bounds_for} with the variable
    index offset by the parameter count already applied. *)

val gist_simplify : t -> t
(** Remove redundant constraints (feasibility-based). *)

val to_string : t -> string

val body_string : t -> string
(** The piece body without braces or parameter prefix
    ([S[i, j] : ...]); used by {!Iset.to_string} to print unions in
    parser-compatible syntax. *)
