type t = { space : Space.map_space; cstrs : Cstr.t list }

let width_of_space (sp : Space.map_space) =
  Array.length sp.params + Array.length sp.in_dims + Array.length sp.out_dims

(* Like Bset.make: constraint lists are canonicalized at construction
   so structurally equal maps are pointer-comparable through the Fm
   hash-consing layer and print deterministically. *)
let make space cstrs =
  let w = width_of_space space in
  List.iter (fun c -> assert (Cstr.nvars c = w)) cstrs;
  { space; cstrs = Fm.canonical ~nvars:w cstrs }

let universe space = make space []

let empty_map space = make space [ Fm.false_cstr (width_of_space space) ]

let n_params m = Array.length m.space.Space.params

let n_in m = Array.length m.space.Space.in_dims

let n_out m = Array.length m.space.Space.out_dims

let width m = width_of_space m.space

let space m = m.space

let add_cstrs m cstrs = make m.space (cstrs @ m.cstrs)

(* ------------------------------------------------------------------ *)
(* Set view: reuse Bset algorithms on the flattened space               *)
(* ------------------------------------------------------------------ *)

let view_space (sp : Space.map_space) : Space.set_space =
  { params = sp.params;
    tuple = sp.in_tuple ^ ">" ^ sp.out_tuple;
    dims = Array.append sp.in_dims sp.out_dims
  }

let to_set_view m = Bset.make (view_space m.space) m.cstrs

let of_set_view space (s : Bset.t) =
  let space = { space with Space.params = (Bset.space s).Space.params } in
  assert (Bset.width s = width_of_space space);
  make space s.Bset.cstrs

let domain_map_cstrs m = m.cstrs

let align_params m new_params =
  of_set_view m.space (Bset.align_params (to_set_view m) new_params)

let unify_params a b =
  let merged = Space.merge_params a.space.Space.params b.space.Space.params in
  (align_params a merged, align_params b merged)

let is_empty m = Bset.is_empty (to_set_view m)

let same_map_space (a : Space.map_space) (b : Space.map_space) =
  a.in_tuple = b.in_tuple && a.out_tuple = b.out_tuple
  && Array.length a.in_dims = Array.length b.in_dims
  && Array.length a.out_dims = Array.length b.out_dims

let intersect a b =
  Obs.count "bmap.intersect";
  let a, b = unify_params a b in
  assert (same_map_space a.space b.space);
  of_set_view a.space (Bset.intersect (to_set_view a) (to_set_view b))

let is_subset a b =
  let a, b = unify_params a b in
  assert (same_map_space a.space b.space);
  Bset.is_subset (to_set_view a) (to_set_view b)

let subtract a b =
  let a, b = unify_params a b in
  assert (same_map_space a.space b.space);
  List.map (of_set_view a.space) (Bset.subtract (to_set_view a) (to_set_view b))

(* Lift a set constraint into the map's width, placing the set dims at
   [dim_offset]. Parameter spaces must already agree. *)
let lift_set_cstr ~np ~total_width ~dim_offset ~set_np (c : Cstr.t) =
  let coef = Array.make total_width 0 in
  for p = 0 to set_np - 1 do
    coef.(p) <- c.coef.(p)
  done;
  assert (set_np = np);
  let nd = Cstr.nvars c - set_np in
  for d = 0 to nd - 1 do
    coef.(dim_offset + d) <- c.coef.(set_np + d)
  done;
  { c with coef }

let intersect_domain m (s : Bset.t) =
  let merged = Space.merge_params m.space.Space.params (Bset.space s).Space.params in
  let m = align_params m merged and s = Bset.align_params s merged in
  assert ((Bset.space s).Space.tuple = m.space.Space.in_tuple);
  assert (Bset.n_dims s = n_in m);
  let np = n_params m in
  let lifted =
    List.map
      (lift_set_cstr ~np ~total_width:(width m) ~dim_offset:np ~set_np:np)
      s.Bset.cstrs
  in
  add_cstrs m lifted

let intersect_range m (s : Bset.t) =
  let merged = Space.merge_params m.space.Space.params (Bset.space s).Space.params in
  let m = align_params m merged and s = Bset.align_params s merged in
  assert ((Bset.space s).Space.tuple = m.space.Space.out_tuple);
  assert (Bset.n_dims s = n_out m);
  let np = n_params m in
  let lifted =
    List.map
      (lift_set_cstr ~np ~total_width:(width m) ~dim_offset:(np + n_in m) ~set_np:np)
      s.Bset.cstrs
  in
  add_cstrs m lifted

let reverse m =
  let np = n_params m and ni = n_in m and no = n_out m in
  let cstrs =
    List.map (fun c -> Cstr.swap_blocks c ~pos1:np ~len1:ni ~pos2:(np + ni) ~len2:no) m.cstrs
  in
  make (Space.reverse_map m.space) cstrs

let domain m =
  let v = to_set_view m in
  let s = Bset.project_dims v ~first:(n_in m) ~count:(n_out m) in
  Bset.set_tuple s m.space.Space.in_tuple

let range m =
  let v = to_set_view m in
  let s = Bset.project_dims v ~first:0 ~count:(n_in m) in
  Bset.set_tuple s m.space.Space.out_tuple

let range_approx m =
  let v = to_set_view m in
  let s = Bset.project_dims_approx v ~first:0 ~count:(n_in m) in
  Bset.set_tuple s m.space.Space.out_tuple

let domain_approx m =
  let v = to_set_view m in
  let s = Bset.project_dims_approx v ~first:(n_in m) ~count:(n_out m) in
  Bset.set_tuple s m.space.Space.in_tuple

let apply_range_gen ~exact r s =
  Obs.count "bmap.apply_range";
  let r, s = unify_params r s in
  assert (r.space.Space.out_tuple = s.space.Space.in_tuple);
  assert (n_out r = n_in s);
  let np = n_params r in
  let na = n_in r and nb = n_out r and nc = n_out s in
  let from_r (c : Cstr.t) = Cstr.insert_vars c ~pos:(np + na + nb) ~count:nc in
  let from_s (c : Cstr.t) = Cstr.insert_vars c ~pos:np ~count:na in
  let cstrs = List.map from_r r.cstrs @ List.map from_s s.cstrs in
  let mid = List.init nb (fun i -> np + na + i) in
  let cstrs = Fm.eliminate_many ~exact ~vars:mid cstrs in
  let cstrs = List.map (fun c -> Cstr.remove_vars c ~pos:(np + na) ~count:nb) cstrs in
  make
    { r.space with
      Space.out_tuple = s.space.Space.out_tuple;
      out_dims = s.space.Space.out_dims
    }
    cstrs

let apply_range r s = apply_range_gen ~exact:true r s

let apply_range_approx r s =
  try apply_range_gen ~exact:true r s
  with Fm.Inexact _ -> apply_range_gen ~exact:false r s

let apply_set s m =
  Obs.count "bmap.apply_set";
  let restricted = intersect_domain m s in
  range restricted

let preimage_set s m =
  Obs.count "bmap.preimage_set";
  let restricted = intersect_range m s in
  domain restricted

let identity (sp : Space.set_space) =
  let nd = Array.length sp.dims in
  let np = Array.length sp.params in
  let mspace : Space.map_space =
    { params = sp.params;
      in_tuple = sp.tuple;
      in_dims = sp.dims;
      out_tuple = sp.tuple;
      out_dims = sp.dims
    }
  in
  let cstrs =
    List.init nd (fun d ->
        let coef = Array.make (np + nd + nd) 0 in
        coef.(np + d) <- 1;
        coef.(np + nd + d) <- -1;
        Cstr.eq coef 0)
  in
  make mspace cstrs

let from_affs ?(params = []) ~in_tuple ~in_dims ~out_tuple outs =
  let params = Array.of_list params in
  let in_dims_a = Array.of_list in_dims in
  let out_names = List.map fst outs in
  let sp : Space.map_space =
    { params;
      in_tuple;
      in_dims = in_dims_a;
      out_tuple;
      out_dims = Array.of_list out_names
    }
  in
  let np = Array.length params in
  let ni = Array.length in_dims_a in
  let no = List.length outs in
  let w = np + ni + no in
  let param_index p =
    let rec find i =
      if i >= np then invalid_arg (Printf.sprintf "from_affs: unknown param %s" p)
      else if params.(i) = p then i
      else find (i + 1)
    in
    find 0
  in
  let cstrs =
    List.mapi
      (fun j (_, aff) ->
        let row, cst =
          Aff.to_coef_row ~n_params:np ~param_index ~n_dims:ni ~dim_offset:np
            ~width:w aff
        in
        row.(np + ni + j) <- -1;
        Cstr.eq row cst)
      outs
  in
  make sp cstrs

let affine_on m ~col k cst kind =
  let coef = Array.make (width m) 0 in
  coef.(col) <- k;
  { Cstr.kind; coef; cst }

let fix_in_dim m d v = add_cstrs m [ affine_on m ~col:(n_params m + d) 1 (-v) Cstr.Eq ]

let fix_out_dim m d v =
  add_cstrs m [ affine_on m ~col:(n_params m + n_in m + d) 1 (-v) Cstr.Eq ]

let sample m =
  assert (n_params m = 0);
  match Bset.sample (to_set_view m) with
  | None -> None
  | Some pt ->
      let ni = n_in m in
      Some (Array.sub pt 0 ni, Array.sub pt ni (n_out m))

let bind_params m values =
  let v = Bset.bind_params (to_set_view m) values in
  of_set_view
    { m.space with Space.params = (Bset.space v).Space.params }
    v

let insert_out_dims m ~pos ~names =
  let v = Bset.insert_dims (to_set_view m) ~pos:(n_in m + pos) ~names in
  let out_dims =
    Array.concat
      [ Array.sub m.space.Space.out_dims 0 pos;
        names;
        Array.sub m.space.Space.out_dims pos (n_out m - pos)
      ]
  in
  of_set_view { m.space with Space.out_dims } v

let project_out_dims m ~first ~count =
  let v = Bset.project_dims (to_set_view m) ~first:(n_in m + first) ~count in
  let out_dims =
    Array.append
      (Array.sub m.space.Space.out_dims 0 first)
      (Array.sub m.space.Space.out_dims (first + count) (n_out m - first - count))
  in
  of_set_view { m.space with Space.out_dims } v

let gist_simplify m = of_set_view m.space (Bset.gist_simplify (to_set_view m))

(* Constraint-wise union hull (isl's "simple hull"): keep the
   constraints of each operand that are valid for the other. Sound
   over-approximation of the union; exact when the union is convex
   (e.g. footprints of contiguous stencil taps). *)
let simple_hull a b =
  let a, b = unify_params a b in
  assert (same_map_space a.space b.space);
  let w = width a in
  let keep sys (c : Cstr.t) =
    match c.Cstr.kind with
    | Cstr.Ge -> (
        try if Fm.implies ~nvars:w sys c then [ c ] else []
        with Fm.Inexact _ -> [])
    | Cstr.Eq ->
        let pos = { c with Cstr.kind = Cstr.Ge } in
        let neg =
          { Cstr.kind = Cstr.Ge; coef = Vec.scale (-1) c.Cstr.coef; cst = -c.Cstr.cst }
        in
        List.concat_map
          (fun g -> try if Fm.implies ~nvars:w sys g then [ g ] else [] with Fm.Inexact _ -> [])
          [ pos; neg ]
  in
  let cstrs =
    List.concat_map (keep b.cstrs) a.cstrs @ List.concat_map (keep a.cstrs) b.cstrs
  in
  match Fm.dedup cstrs with
  | None -> empty_map a.space
  | Some cstrs -> make a.space cstrs

let body_string m =
  let names =
    Array.concat [ m.space.Space.params; m.space.Space.in_dims; m.space.Space.out_dims ]
  in
  let ins = String.concat ", " (Array.to_list m.space.Space.in_dims) in
  let outs = String.concat ", " (Array.to_list m.space.Space.out_dims) in
  let body =
    if m.cstrs = [] then ""
    else
      " : "
      ^ String.concat " and " (List.map (fun c -> Cstr.to_string ~names c) m.cstrs)
  in
  Printf.sprintf "%s[%s] -> %s[%s]%s" m.space.Space.in_tuple ins
    m.space.Space.out_tuple outs body

let to_string m =
  let params =
    if n_params m = 0 then ""
    else
      Printf.sprintf "[%s] -> "
        (String.concat ", " (Array.to_list m.space.Space.params))
  in
  Printf.sprintf "%s{ %s }" params (body_string m)
