(** Bounded memo tables for the Fourier-Motzkin hot paths
    ({!Fm.is_empty}, {!Fm.eliminate}, {!Fm.remove_redundant}), keyed on
    hash-consed canonical systems ({!Hc}).

    Each cache is a two-generation table: when the young generation
    reaches the capacity, the old generation is dropped wholesale (a
    deterministic amortized-O(1) FIFO); probes that hit the old
    generation promote the entry. Hits, misses and evictions are kept
    in always-on counters (printed by the test harness on failure) and
    mirrored into Obs counters [fm.cache.<name>.hit/.miss/.evict] plus
    the [fm.cache.hit/.miss/.evict] aggregates, so they appear in
    [bench snapshot] databases and are gated exactly by
    [bench regress].

    Knobs: the [MEMCOMP_FM_CACHE=0] environment variable (or
    {!set_enabled}[ false]) disables memoization — results are then
    recomputed exactly and must be bit-identical, which
    [test/test_props.ml] enforces differentially;
    [MEMCOMP_FM_CACHE_SIZE] (or {!set_capacity}) sets the per-cache
    generation capacity (default 8192 entries). *)

type ('k, 'v) t

val create : string -> ('k, 'v) t
(** A new registered cache; the name keys the stats and Obs counters. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** Memoized call: returns the cached value for the key, or computes,
    stores and returns it. When caching is disabled this is exactly
    [compute ()]. *)

val set_enabled : bool -> unit

val is_enabled : unit -> bool

val set_capacity : int -> unit
(** Per-cache generation capacity; ignored unless positive. *)

val reset : unit -> unit
(** Clear every cache, zero all stats, and drop the {!Hc} interning
    tables. Call between independent measurements (the bench snapshot
    collector does) so cache counters stay per-workload deterministic. *)

val stats_alist : unit -> (string * (int * int * int * int)) list
(** Per-cache [(name, (hits, misses, evicted, live_entries))], sorted
    by name. *)

val stats_table : unit -> string
(** Human-readable table of the same, with hit rates. *)
