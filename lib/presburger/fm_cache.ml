(* Bounded memo tables for the Fourier-Motzkin hot paths.

   Each cache is a two-generation hashtable: inserts go to the young
   generation; when it fills up to the capacity, the old generation is
   dropped and the young one takes its place (a whole-generation FIFO,
   so eviction is O(1) amortized and deterministic). A probe that hits
   the old generation promotes the entry, giving cheap LRU-like
   behaviour without per-entry bookkeeping.

   Statistics (hits / misses / evicted entries) are kept in plain
   mutable ints so they are always available — the test harness prints
   them on failure even when Obs is disabled — and every event is
   mirrored into Obs counters (fm.cache.<name>.hit / .miss / .evict
   plus the fm.cache.hit / fm.cache.miss / fm.cache.evict aggregates)
   so cache behaviour lands in `bench snapshot` databases and is gated
   exactly by `bench regress`.

   Knobs: MEMCOMP_FM_CACHE=0 disables memoization (the exact paths are
   simply recomputed; results are identical by construction, which the
   test_props differential suite enforces), MEMCOMP_FM_CACHE_SIZE sets
   the per-cache generation capacity. Both are also settable
   programmatically. *)

type stats = {
  st_name : string;
  mutable st_hits : int;
  mutable st_misses : int;
  mutable st_evicted : int;
}

type ('k, 'v) t = {
  stats : stats;
  obs_hit : string;
  obs_miss : string;
  obs_evict : string;
  mutable young : ('k, 'v) Hashtbl.t;
  mutable old : ('k, 'v) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Global knobs and registry                                           *)
(* ------------------------------------------------------------------ *)

let env_false = function Some ("0" | "off" | "false" | "no") -> false | _ -> true

let enabled = ref (env_false (Sys.getenv_opt "MEMCOMP_FM_CACHE"))

let default_capacity = 8192

let capacity =
  ref
    (match Sys.getenv_opt "MEMCOMP_FM_CACHE_SIZE" with
    | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> default_capacity)
    | None -> default_capacity)

let set_enabled b = enabled := b

let is_enabled () = !enabled

let set_capacity n = if n > 0 then capacity := n

type registered = {
  r_stats : stats;
  r_clear : unit -> unit;
  r_size : unit -> int;
}

let registry : registered list ref = ref []

let create name =
  let stats = { st_name = name; st_hits = 0; st_misses = 0; st_evicted = 0 } in
  let c =
    { stats;
      obs_hit = "fm.cache." ^ name ^ ".hit";
      obs_miss = "fm.cache." ^ name ^ ".miss";
      obs_evict = "fm.cache." ^ name ^ ".evict";
      young = Hashtbl.create 256;
      old = Hashtbl.create 256
    }
  in
  registry :=
    { r_stats = stats;
      r_clear =
        (fun () ->
          Hashtbl.reset c.young;
          Hashtbl.reset c.old);
      r_size = (fun () -> Hashtbl.length c.young + Hashtbl.length c.old)
    }
    :: !registry;
  c

(* ------------------------------------------------------------------ *)
(* Probe                                                               *)
(* ------------------------------------------------------------------ *)

let hit c =
  c.stats.st_hits <- c.stats.st_hits + 1;
  Obs.count c.obs_hit;
  Obs.count "fm.cache.hit"

let miss c =
  c.stats.st_misses <- c.stats.st_misses + 1;
  Obs.count c.obs_miss;
  Obs.count "fm.cache.miss"

let insert c k v =
  if Hashtbl.length c.young >= !capacity then begin
    let evicted = Hashtbl.length c.old in
    if evicted > 0 then begin
      c.stats.st_evicted <- c.stats.st_evicted + evicted;
      Obs.add c.obs_evict evicted;
      Obs.add "fm.cache.evict" evicted
    end;
    let emptied = c.old in
    Hashtbl.reset emptied;
    c.old <- c.young;
    c.young <- emptied
  end;
  Hashtbl.replace c.young k v

let find_or_add c k compute =
  if not !enabled then compute ()
  else
    match Hashtbl.find_opt c.young k with
    | Some v ->
        hit c;
        v
    | None -> (
        match Hashtbl.find_opt c.old k with
        | Some v ->
            (* promote so a warm entry survives the next rotation *)
            hit c;
            insert c k v;
            v
        | None ->
            miss c;
            let v = compute () in
            insert c k v;
            v)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let reset () =
  List.iter
    (fun r ->
      r.r_clear ();
      r.r_stats.st_hits <- 0;
      r.r_stats.st_misses <- 0;
      r.r_stats.st_evicted <- 0)
    !registry;
  Hc.clear ()

let stats_alist () =
  List.map
    (fun r ->
      (r.r_stats.st_name, (r.r_stats.st_hits, r.r_stats.st_misses, r.r_stats.st_evicted, r.r_size ())))
    !registry
  |> List.sort compare

let stats_table () =
  let rows = stats_alist () in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "== fm memo caches (%s, capacity %d) ==\n"
       (if !enabled then "enabled" else "disabled")
       !capacity);
  let w =
    List.fold_left (fun acc (n, _) -> max acc (String.length n)) 4 rows
  in
  Buffer.add_string b
    (Printf.sprintf "  %-*s %10s %10s %10s %10s %8s\n" w "name" "hits"
       "misses" "evicted" "entries" "hit%");
  List.iter
    (fun (name, (h, m, e, sz)) ->
      let total = h + m in
      Buffer.add_string b
        (Printf.sprintf "  %-*s %10d %10d %10d %10d %7.1f%%\n" w name h m e sz
           (100.0 *. float_of_int h /. float_of_int (max 1 total))))
    rows;
  Buffer.contents b
