(* Bounded memo tables for the Fourier-Motzkin hot paths.

   Each cache is a two-generation hashtable: inserts go to the young
   generation; when it fills up to the capacity, the old generation is
   dropped and the young one takes its place (a whole-generation FIFO,
   so eviction is O(1) amortized and deterministic). A probe that hits
   the old generation promotes the entry, giving cheap LRU-like
   behaviour without per-entry bookkeeping.

   Statistics (hits / misses / evicted entries) are kept in plain
   mutable ints so they are always available — the test harness prints
   them on failure even when Obs is disabled — and every event is
   mirrored into Obs counters (fm.cache.<name>.hit / .miss / .evict
   plus the fm.cache.hit / fm.cache.miss / fm.cache.evict aggregates)
   so cache behaviour lands in `bench snapshot` databases and is gated
   exactly by `bench regress`.

   Knobs: MEMCOMP_FM_CACHE=0 disables memoization (the exact paths are
   simply recomputed; results are identical by construction, which the
   test_props differential suite enforces), MEMCOMP_FM_CACHE_SIZE sets
   the per-cache generation capacity. Both are also settable
   programmatically.

   Domain safety: one mutex guards every cache and the registry.
   [find_or_add] never holds it across [compute] — compute can recurse
   into other caches (the mutex is not reentrant) and can be expensive;
   a concurrent miss on the same key just computes twice and the second
   insert wins, which is correct for these pure memoizations. Obs
   counter mirrors are emitted outside the lock (lock order: Fm_cache
   -> Obs, never the reverse). *)

type stats = {
  st_name : string;
  mutable st_hits : int;
  mutable st_misses : int;
  mutable st_evicted : int;
}

type ('k, 'v) t = {
  stats : stats;
  obs_hit : string;
  obs_miss : string;
  obs_evict : string;
  mutable young : ('k, 'v) Hashtbl.t;
  mutable old : ('k, 'v) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Global knobs and registry                                           *)
(* ------------------------------------------------------------------ *)

let env_false = function Some ("0" | "off" | "false" | "no") -> false | _ -> true

let enabled = ref (env_false (Sys.getenv_opt "MEMCOMP_FM_CACHE"))

let default_capacity = 8192

let capacity =
  ref
    (match Sys.getenv_opt "MEMCOMP_FM_CACHE_SIZE" with
    | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> default_capacity)
    | None -> default_capacity)

let set_enabled b = enabled := b

let is_enabled () = !enabled

let set_capacity n = if n > 0 then capacity := n

type registered = {
  r_stats : stats;
  r_clear : unit -> unit;
  r_size : unit -> int;
}

let registry : registered list ref = ref []

let mu = Mutex.create ()

let with_lock f =
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      v
  | exception e ->
      Mutex.unlock mu;
      raise e

let create name =
  let stats = { st_name = name; st_hits = 0; st_misses = 0; st_evicted = 0 } in
  let c =
    { stats;
      obs_hit = "fm.cache." ^ name ^ ".hit";
      obs_miss = "fm.cache." ^ name ^ ".miss";
      obs_evict = "fm.cache." ^ name ^ ".evict";
      young = Hashtbl.create 256;
      old = Hashtbl.create 256
    }
  in
  with_lock (fun () ->
      registry :=
        { r_stats = stats;
          r_clear =
            (fun () ->
              Hashtbl.reset c.young;
              Hashtbl.reset c.old);
          r_size = (fun () -> Hashtbl.length c.young + Hashtbl.length c.old)
        }
        :: !registry);
  c

(* ------------------------------------------------------------------ *)
(* Probe                                                               *)
(* ------------------------------------------------------------------ *)

(* Runs under the lock; returns the number of entries evicted so the
   caller can mirror them into Obs after unlocking. *)
let insert_unlocked c k v =
  let evicted =
    if Hashtbl.length c.young >= !capacity then begin
      let evicted = Hashtbl.length c.old in
      if evicted > 0 then c.stats.st_evicted <- c.stats.st_evicted + evicted;
      let emptied = c.old in
      Hashtbl.reset emptied;
      c.old <- c.young;
      c.young <- emptied;
      evicted
    end
    else 0
  in
  Hashtbl.replace c.young k v;
  evicted

let mirror_evicted c evicted =
  if evicted > 0 then begin
    Obs.add c.obs_evict evicted;
    Obs.add "fm.cache.evict" evicted
  end

let mirror_hit c =
  Obs.count c.obs_hit;
  Obs.count "fm.cache.hit"

let mirror_miss c =
  Obs.count c.obs_miss;
  Obs.count "fm.cache.miss"

let find_or_add c k compute =
  if not !enabled then compute ()
  else begin
    let probe =
      with_lock (fun () ->
          match Hashtbl.find_opt c.young k with
          | Some v ->
              c.stats.st_hits <- c.stats.st_hits + 1;
              Some (v, 0)
          | None -> (
              match Hashtbl.find_opt c.old k with
              | Some v ->
                  (* promote so a warm entry survives the next rotation *)
                  c.stats.st_hits <- c.stats.st_hits + 1;
                  Some (v, insert_unlocked c k v)
              | None ->
                  c.stats.st_misses <- c.stats.st_misses + 1;
                  None))
    in
    match probe with
    | Some (v, evicted) ->
        mirror_hit c;
        mirror_evicted c evicted;
        v
    | None ->
        mirror_miss c;
        (* computed outside the lock: compute can recurse into caches
           and a concurrent duplicate compute is harmless (pure). *)
        let v = compute () in
        let evicted = with_lock (fun () -> insert_unlocked c k v) in
        mirror_evicted c evicted;
        v
  end

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let reset () =
  with_lock (fun () ->
      List.iter
        (fun r ->
          r.r_clear ();
          r.r_stats.st_hits <- 0;
          r.r_stats.st_misses <- 0;
          r.r_stats.st_evicted <- 0)
        !registry);
  Hc.clear ()

let stats_alist () =
  with_lock (fun () ->
      List.map
        (fun r ->
          (r.r_stats.st_name, (r.r_stats.st_hits, r.r_stats.st_misses, r.r_stats.st_evicted, r.r_size ())))
        !registry)
  |> List.sort compare

let stats_table () =
  let rows = stats_alist () in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "== fm memo caches (%s, capacity %d) ==\n"
       (if !enabled then "enabled" else "disabled")
       !capacity);
  let w =
    List.fold_left (fun acc (n, _) -> max acc (String.length n)) 4 rows
  in
  Buffer.add_string b
    (Printf.sprintf "  %-*s %10s %10s %10s %10s %8s\n" w "name" "hits"
       "misses" "evicted" "entries" "hit%");
  List.iter
    (fun (name, (h, m, e, sz)) ->
      let total = h + m in
      Buffer.add_string b
        (Printf.sprintf "  %-*s %10d %10d %10d %10d %7.1f%%\n" w name h m e sz
           (100.0 *. float_of_int h /. float_of_int (max 1 total))))
    rows;
  Buffer.contents b
