exception Inexact of string

exception Infeasible

(* ------------------------------------------------------------------ *)
(* Syntactic simplification                                            *)
(* ------------------------------------------------------------------ *)

(* Key for grouping parallel constraints: the normalized coefficient
   vector. Equalities are canonicalized so the first nonzero coefficient
   is positive. *)
let canon_eq (c : Cstr.t) =
  let rec first_sign i =
    if i >= Array.length c.coef then 0
    else if c.coef.(i) <> 0 then c.coef.(i)
    else first_sign (i + 1)
  in
  if first_sign 0 < 0 then { c with coef = Vec.scale (-1) c.coef; cst = -c.cst }
  else c

let dedup cstrs =
  (* keys are the coefficient arrays themselves (structural hashing
     handles arrays): no per-constraint list copy on this hot path *)
  let tbl : (Cstr.kind * int array, int) Hashtbl.t = Hashtbl.create 16 in
  let eqs = ref [] and ges = ref [] in
  let contradiction = ref false in
  let visit c =
    match Cstr.simplify c with
    | Cstr.Trivial_true -> ()
    | Cstr.Trivial_false -> contradiction := true
    | Cstr.Keep c -> (
        let c = if c.kind = Eq then canon_eq c else c in
        let key = (c.Cstr.kind, c.coef) in
        match Hashtbl.find_opt tbl key with
        | None ->
            Hashtbl.add tbl key c.cst;
            if c.kind = Eq then eqs := c :: !eqs else ges := c :: !ges
        | Some cst0 -> (
            match c.kind with
            | Eq -> if cst0 <> c.cst then contradiction := true
            | Ge ->
                (* f + cst >= 0: smaller cst is tighter *)
                if c.cst < cst0 then begin
                  Hashtbl.replace tbl key c.cst;
                  ges :=
                    { c with cst = c.cst }
                    :: List.filter
                         (fun (d : Cstr.t) ->
                           d.coef <> c.coef || d.cst <> cst0)
                         !ges
                end))
  in
  List.iter visit cstrs;
  if !contradiction then None
  else
    (* detect f + a >= 0 and -f + b >= 0 with a + b < 0 *)
    let bad =
      List.exists
        (fun (c : Cstr.t) ->
          match Hashtbl.find_opt tbl (Cstr.Ge, Vec.scale (-1) c.coef) with
          | Some cst' -> c.cst + cst' < 0
          | None -> false)
        !ges
    in
    if bad then None
    else
      (* Canonical order: equalities first, then lexicographic on the
         coefficients. Makes dedup's output independent of the input
         order, so memo keys built from it are order-insensitive and
         to_string of equal systems is deterministic. *)
      Some (List.sort Cstr.compare (List.rev_append !eqs !ges))

(* ------------------------------------------------------------------ *)
(* Elimination                                                         *)
(* ------------------------------------------------------------------ *)

(* Substitute variable [var] using equality [eq] (with eq.coef.(var) = c,
   |c| >= 1) into constraint [d]. The result has a zero column at [var].
   For |c| > 1 the substitution scales [d] by |c|, which is sound for both
   kinds. *)
let subst_with_eq ~var (eq : Cstr.t) (d : Cstr.t) : Cstr.t =
  let c = eq.coef.(var) in
  let e = d.coef.(var) in
  if e = 0 then d
  else
    (* |c| * d - sign * e * eq, choosing sign so the var column cancels
       and the multiplier of d stays positive. *)
    let coef = Vec.combine (abs c) d.coef (-e * (if c > 0 then 1 else -1)) eq.coef in
    let cst = (abs c * d.cst) - (e * (if c > 0 then 1 else -1) * eq.cst) in
    assert (coef.(var) = 0);
    { d with coef; cst }

let pair_shadow ~exact ~var (l : Cstr.t) (u : Cstr.t) : Cstr.t =
  let a = l.coef.(var) and b = -u.coef.(var) in
  assert (a > 0 && b > 0);
  let coef = Vec.combine b l.coef a u.coef in
  let cst = (b * l.cst) + (a * u.cst) in
  assert (coef.(var) = 0);
  let real : Cstr.t = { kind = Ge; coef; cst } in
  if (not exact) || a = 1 || b = 1 then real
  else
    let dark = { real with cst = cst - ((a - 1) * (b - 1)) } in
    let same =
      match (Cstr.simplify real, Cstr.simplify dark) with
      | Cstr.Trivial_true, Cstr.Trivial_true -> true
      | Cstr.Keep r, Cstr.Keep d -> r.coef = d.coef && r.cst = d.cst
      | Cstr.Trivial_false, Cstr.Trivial_false -> true
      | _ -> false
    in
    if same then real
    else
      raise
        (Inexact
           (Printf.sprintf "FM pair with coefficients %d,%d on var %d" a b var))

let eliminate_uncached ~exact ~var cstrs =
  (* Prefer an equality mentioning var, the one with the smallest
     |coefficient|. *)
  let eq_candidates =
    List.filter (fun (c : Cstr.t) -> c.kind = Eq && c.coef.(var) <> 0) cstrs
  in
  let best_eq =
    List.fold_left
      (fun acc (c : Cstr.t) ->
        match acc with
        | None -> Some c
        | Some (b : Cstr.t) ->
            if abs c.coef.(var) < abs b.coef.(var) then Some c else acc)
      None eq_candidates
  in
  match best_eq with
  | Some eq ->
      let c = eq.coef.(var) in
      if abs c <> 1 && exact then begin
        (* Exact only if the rest of the equality is divisible by c, in
           which case var = -rest/c is always integral. *)
        let divisible =
          eq.cst mod c = 0
          && Array.for_all
               (fun a -> a mod c = 0)
               (Array.mapi (fun i a -> if i = var then 0 else a) eq.coef)
        in
        if not divisible then
          raise (Inexact (Printf.sprintf "equality coefficient %d on var %d" c var))
      end;
      List.filter_map
        (fun (d : Cstr.t) ->
          if d == eq then None else Some (subst_with_eq ~var eq d))
        cstrs
  | None ->
      let lowers, uppers, neutral =
        List.fold_left
          (fun (lo, up, nu) (c : Cstr.t) ->
            if c.coef.(var) > 0 then (c :: lo, up, nu)
            else if c.coef.(var) < 0 then (lo, c :: up, nu)
            else (lo, up, c :: nu))
          ([], [], []) cstrs
      in
      let pairs =
        List.concat_map
          (fun l -> List.map (fun u -> pair_shadow ~exact ~var l u) uppers)
          lowers
      in
      List.rev_append neutral pairs

let false_cstr n = Cstr.ge (Array.make n 0) (-1)

(* Canonical lists are interned as physical representatives (Hc), so
   re-canonicalizing a list that already came out of here — every
   Bset/Bmap constructor feeds its own output back on the next
   operation — is a single pointer-keyed probe instead of a full
   dedup + sort. *)
let canonical ~nvars cstrs =
  match Hc.find_rep cstrs with
  | Some _ -> cstrs
  | None -> (
      match dedup cstrs with
      | None -> (Hc.intern_rep [ false_cstr nvars ]).Hc.sys_cstrs
      | Some cs -> (Hc.intern_rep cs).Hc.sys_cstrs)

(* ------------------------------------------------------------------ *)
(* Cheap fast paths                                                    *)
(* ------------------------------------------------------------------ *)

(* The origin satisfies every constraint: the system is non-empty
   without any elimination. Catches universe-like systems and the many
   footprint sets whose bounds all start at 0. *)
let sat_at_zero cstrs =
  List.for_all
    (fun (c : Cstr.t) ->
      match c.kind with Cstr.Ge -> c.cst >= 0 | Cstr.Eq -> c.cst = 0)
    cstrs

(* Per-variable bounds read off the single-variable constraints only (a
   sound partial box hull, no elimination): when some variable's unit
   lower bound exceeds its unit upper bound the system is empty. This is
   the disjointness test that makes intersections of far-apart tiles
   cheap — their box constraints contradict directly. *)
let box_trivially_empty ~nvars cstrs =
  let lo = Array.make nvars min_int and hi = Array.make nvars max_int in
  let infeasible = ref false in
  List.iter
    (fun (c : Cstr.t) ->
      match Cstr.single_var c with
      | None -> ()
      | Some v -> (
          let a = c.coef.(v) in
          match c.kind with
          | Cstr.Ge ->
              if a > 0 then lo.(v) <- max lo.(v) (Vec.ceil_div (-c.cst) a)
              else hi.(v) <- min hi.(v) (Vec.floor_div c.cst (-a))
          | Cstr.Eq ->
              if c.cst mod a <> 0 then infeasible := true
              else begin
                let x = -c.cst / a in
                lo.(v) <- max lo.(v) x;
                hi.(v) <- min hi.(v) x
              end))
    cstrs;
  if not !infeasible then
    for v = 0 to nvars - 1 do
      if lo.(v) > hi.(v) then infeasible := true
    done;
  !infeasible

(* ------------------------------------------------------------------ *)
(* Memoized entry points                                               *)
(* ------------------------------------------------------------------ *)

(* Caches are keyed on hash-consed system ids (Hc): structurally equal
   systems share one id, and dedup's canonical ordering makes the id
   insensitive to constraint order. An Inexact outcome is cached like a
   value so repeated failing projections don't redo the pair work. *)

type elim_entry = Elim_ok of Cstr.t list | Elim_inexact of string

let elim_cache : (int * int * bool, elim_entry) Fm_cache.t =
  Fm_cache.create "eliminate"

let empty_cache : (int, bool) Fm_cache.t = Fm_cache.create "is_empty"

let redundant_cache : (int, Cstr.t list) Fm_cache.t =
  Fm_cache.create "remove_redundant"

let eliminate ~exact ~var cstrs =
  Obs.count "fm.eliminate";
  Obs.observe_int "fm.system_size" (List.length cstrs);
  let sys = Hc.intern cstrs in
  match
    Fm_cache.find_or_add elim_cache (sys.Hc.sys_id, var, exact) (fun () ->
        match eliminate_uncached ~exact ~var sys.Hc.sys_cstrs with
        | r -> Elim_ok r
        | exception Inexact msg -> Elim_inexact msg)
  with
  | Elim_ok r -> r
  | Elim_inexact msg -> raise (Inexact msg)

(* Eliminate cheapest-first: variables with a unit-coefficient equality
   are free (substitution is always exact), then pure-inequality
   variables by FM pair count, then non-unit equalities last (their
   exactness depends on divisibility). *)
let eliminate_many ~exact ~vars cstrs =
  let n = match cstrs with c :: _ -> Cstr.nvars c | [] -> 0 in
  let rec go vars cstrs =
    match vars with
    | [] -> cstrs
    | _ ->
        let cost v =
          let unit_eq, any_eq, lo, up =
            List.fold_left
              (fun (ue, ae, lo, up) (c : Cstr.t) ->
                if c.Cstr.kind = Eq && abs c.coef.(v) = 1 then (true, true, lo, up)
                else if c.Cstr.kind = Eq && c.coef.(v) <> 0 then (ue, true, lo, up)
                else if c.coef.(v) > 0 then (ue, ae, lo + 1, up)
                else if c.coef.(v) < 0 then (ue, ae, lo, up + 1)
                else (ue, ae, lo, up))
              (false, false, 0, 0) cstrs
          in
          if unit_eq then -1
          else if any_eq then 1_000_000
          else lo * up
        in
        let v =
          List.fold_left (fun b v -> if cost v < cost b then v else b) (List.hd vars) vars
        in
        let rest = List.filter (fun x -> x <> v) vars in
        match dedup (eliminate ~exact ~var:v cstrs) with
        | None -> [ false_cstr n ]
        | Some c -> go rest c
  in
  go vars cstrs

(* Per-variable constant bounds of the rational relaxation, used by the
   enumeration fallbacks. [None] on a side means unbounded. *)
let rational_box ~nvars cstrs =
  let bound_of v =
    let others = List.init nvars (fun i -> i) |> List.filter (fun i -> i <> v) in
    match dedup (eliminate_many ~exact:false ~vars:others cstrs) with
    | None -> Some (0, -1)
    | Some cs ->
        if List.exists (fun c -> Cstr.simplify c = Cstr.Trivial_false) cs then
          Some (0, -1)
        else begin
          let lowers, uppers =
            List.fold_left
              (fun (lo, up) (c : Cstr.t) ->
                let a = c.Cstr.coef.(v) in
                match c.kind with
                | Cstr.Eq when a <> 0 ->
                    let x = Vec.floor_div (-c.cst) a in
                    ((x :: lo), (x :: up))
                | Cstr.Ge when a > 0 -> (Vec.ceil_div (-c.cst) a :: lo, up)
                | Cstr.Ge when a < 0 -> (lo, Vec.floor_div c.cst (-a) :: up)
                | _ -> (lo, up))
              ([], []) cs
          in
          match (lowers, uppers) with
          | [], _ | _, [] -> None
          | _ ->
              Some
                ( List.fold_left max (List.hd lowers) lowers,
                  List.fold_left min (List.hd uppers) uppers )
        end
  in
  Array.init nvars bound_of

exception Found of int array

(* Complete decision procedure for bounded systems: enumerate the
   rational box. Raises Inexact when some variable is unbounded. *)
let find_point_by_enum ~nvars cstrs =
  let box = rational_box ~nvars cstrs in
  let bounds =
    Array.map
      (function
        | Some b -> b
        | None -> raise (Inexact "enumeration fallback on unbounded system"))
      box
  in
  let pt = Array.make nvars 0 in
  let rec go k =
    if k = nvars then begin
      if List.for_all (fun c -> Cstr.holds c pt) cstrs then raise (Found (Array.copy pt))
    end
    else
      let lo, hi = bounds.(k) in
      for v = lo to hi do
        pt.(k) <- v;
        go (k + 1)
      done
  in
  if nvars = 0 then
    if List.for_all (fun c -> Cstr.holds c [||]) cstrs then Some [||] else None
  else
    try
      go 0;
      None
    with Found p -> Some p

let iter_points_by_enum ~nvars cstrs f =
  let box = rational_box ~nvars cstrs in
  let bounds =
    Array.map
      (function
        | Some b -> b
        | None -> raise (Inexact "enumeration fallback on unbounded system"))
      box
  in
  let pt = Array.make nvars 0 in
  let rec go k =
    if k = nvars then begin
      if List.for_all (fun c -> Cstr.holds c pt) cstrs then f pt
    end
    else
      let lo, hi = bounds.(k) in
      for v = lo to hi do
        pt.(k) <- v;
        go (k + 1)
      done
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Emptiness and sampling                                              *)
(* ------------------------------------------------------------------ *)

let all_vars nvars = List.init nvars (fun i -> i)

let is_empty_slow ~nvars cstrs =
      let residue =
        try `R (eliminate_many ~exact:true ~vars:(all_vars nvars) cstrs)
        with Inexact _ -> (
          (* fall back: the real shadow is an over-approximation, so an
             empty over-approximation certifies emptiness. *)
          match dedup (eliminate_many ~exact:false ~vars:(all_vars nvars) cstrs) with
          | None -> `Empty
          | Some r ->
              if List.exists (fun c -> Cstr.simplify c = Cstr.Trivial_false) r then `Empty
              else `Unknown)
      in
      match residue with
      | `Empty -> true
      | `Unknown -> (
          (* cannot certify exactly; enumerate if bounded, otherwise
             answer "not empty", which is the conservative direction for
             every caller (pieces are kept, subsets and implications are
             denied, fusion of shared spaces is refused). *)
          try find_point_by_enum ~nvars cstrs = None with Inexact _ -> false)
      | `R r ->
          List.exists
            (fun c ->
              match Cstr.simplify c with Cstr.Trivial_false -> true | _ -> false)
            r

let is_empty_canonical ~nvars (sys : Hc.sys) =
  match sys.Hc.sys_cstrs with
  | [] -> false
  | cstrs ->
      (* cheap certificates first; full elimination (memoized) last.
         A canonical contradiction is the lone all-zero constraint with
         negative constant, which box_trivially_empty never sees (no
         nonzero coefficient), so test it directly. *)
      let contradiction =
        match cstrs with
        | [ (c : Cstr.t) ] ->
            c.kind = Cstr.Ge && c.cst < 0
            && Array.for_all (( = ) 0) c.coef
        | _ -> false
      in
      if contradiction then true
      else if sat_at_zero cstrs then false
      else if box_trivially_empty ~nvars cstrs then true
      else
        Fm_cache.find_or_add empty_cache sys.Hc.sys_id (fun () ->
            is_empty_slow ~nvars sys.Hc.sys_cstrs)

let is_empty ~nvars cstrs =
  Obs.count "fm.is_empty";
  match Hc.find_rep cstrs with
  | Some sys -> is_empty_canonical ~nvars sys
  | None -> (
      match dedup cstrs with
      | None -> true
      | Some [] -> false
      | Some cstrs -> is_empty_canonical ~nvars (Hc.intern_rep cstrs))

let bounds_for ~var cstrs =
  List.fold_left
    (fun (lo, up) (c : Cstr.t) ->
      let a = c.Cstr.coef.(var) in
      match c.kind with
      | Cstr.Ge ->
          if a > 0 then ((a, c) :: lo, up)
          else if a < 0 then (lo, (-a, c) :: up)
          else (lo, up)
      | Cstr.Eq ->
          if a = 0 then (lo, up)
          else
            let pos = if a > 0 then c else { c with coef = Vec.scale (-1) c.coef; cst = -c.cst } in
            let neg = { pos with coef = Vec.scale (-1) pos.coef; cst = -pos.cst } in
            ((pos.coef.(var), { pos with kind = Ge }) :: lo,
             (-neg.coef.(var), { neg with kind = Ge }) :: up))
    ([], []) cstrs

let sample_exact ~nvars cstrs =
  match dedup cstrs with
  | None -> None
  | Some cstrs ->
      (* proj.(k): constraints over vars 0..k-1 only *)
      let proj = Array.make (nvars + 1) [] in
      proj.(nvars) <- cstrs;
      (try
         for k = nvars - 1 downto 0 do
           match dedup (eliminate ~exact:true ~var:k proj.(k + 1)) with
           | None -> raise Infeasible
           | Some c -> proj.(k) <- c
         done;
         if
           List.exists
             (fun c -> match Cstr.simplify c with Cstr.Trivial_false -> true | _ -> false)
             proj.(0)
         then None
         else begin
           let pt = Array.make nvars 0 in
           let feasible = ref true in
           for k = 0 to nvars - 1 do
             if !feasible then begin
               let lowers, uppers = bounds_for ~var:k proj.(k + 1) in
               let eval_partial (c : Cstr.t) =
                 let acc = ref c.cst in
                 for i = 0 to k - 1 do
                   acc := !acc + (c.coef.(i) * pt.(i))
                 done;
                 !acc
               in
               let lo =
                 List.fold_left
                   (fun acc (a, c) ->
                     let v = Vec.ceil_div (-eval_partial c) a in
                     match acc with None -> Some v | Some w -> Some (max v w))
                   None lowers
               in
               let hi =
                 List.fold_left
                   (fun acc (b, c) ->
                     let v = Vec.floor_div (eval_partial c) b in
                     match acc with None -> Some v | Some w -> Some (min v w))
                   None uppers
               in
               match (lo, hi) with
               | Some l, Some h -> if l <= h then pt.(k) <- l else feasible := false
               | Some l, None -> pt.(k) <- l
               | None, Some h -> pt.(k) <- h
               | None, None -> pt.(k) <- 0
             end
           done;
           if !feasible && List.for_all (fun c -> Cstr.holds c pt) cstrs then Some pt
           else if not !feasible then None
           else
             (* Exact projections guarantee extension, so reaching here
                indicates a bug rather than infeasibility. *)
             assert false
         end
       with Infeasible -> None)

let sample ~nvars cstrs =
  Obs.count "fm.sample";
  try sample_exact ~nvars cstrs
  with Inexact _ -> find_point_by_enum ~nvars cstrs

(* [c] is syntactically entailed: it appears verbatim in the system, or
   (for an inequality) an equality or tighter inequality on the same
   affine form does. Sound, and avoids the emptiness test entirely for
   the common constraint-reuse shapes of simple_hull and is_subset. *)
let syntactically_implied cstrs (c : Cstr.t) =
  List.exists
    (fun (d : Cstr.t) ->
      d.Cstr.coef = c.Cstr.coef
      &&
      match (d.Cstr.kind, c.Cstr.kind) with
      | Cstr.Eq, Cstr.Eq -> d.cst = c.cst
      | Cstr.Eq, Cstr.Ge | Cstr.Ge, Cstr.Ge -> d.cst <= c.cst
      | Cstr.Ge, Cstr.Eq -> false)
    cstrs

let implies ~nvars cstrs (c : Cstr.t) =
  Obs.count "fm.implies";
  if syntactically_implied cstrs c then true
  else
  match c.Cstr.kind with
  | Cstr.Ge -> is_empty ~nvars (Cstr.negate_ge c :: cstrs)
  | Cstr.Eq ->
      is_empty ~nvars
        ({ Cstr.kind = Ge; coef = Vec.scale (-1) c.coef; cst = -c.cst - 1 } :: cstrs)
      && is_empty ~nvars ({ c with kind = Ge; cst = c.cst - 1 } :: cstrs)
(* f = 0 implied iff both f <= -1 and f >= 1 are infeasible, i.e. f can be
   neither positive nor negative. The two constraints above encode
   -f - 1 >= 0 (f <= -1) and f - 1 >= 0 (f >= 1). *)

let remove_redundant ~nvars cstrs =
  Obs.count "fm.remove_redundant";
  match dedup cstrs with
  | None -> [ false_cstr nvars ]
  | Some [] -> []
  | Some cstrs ->
      let sys = Hc.intern cstrs in
      Fm_cache.find_or_add redundant_cache sys.Hc.sys_id (fun () ->
          let rec go kept = function
            | [] -> List.rev kept
            | (c : Cstr.t) :: rest ->
                let others = List.rev_append kept rest in
                if
                  c.kind = Ge
                  && (try implies ~nvars others c with Inexact _ -> false)
                then go kept rest
                else go (c :: kept) rest
          in
          go [] sys.Hc.sys_cstrs)
