type expr =
  | Int of int
  | Var of string
  | Param of string
  | Sum of expr list
  | Mul of int * expr
  | Floor_div of expr * int
  | Ceil_div of expr * int
  | Min_of of expr list
  | Max_of of expr list

type cond = expr

type t =
  | For of { var : string; lb : expr; ub : expr; coincident : bool; body : t }
  | If of cond list * t
  | Call of { stmt : string; args : expr list }
  | Block of t list
  | Kernel of int * t
  | Point of t
      (** point-band boundary: everything inside executes within a
          single tile of the enclosing tile loops (the unit of work of
          the parallel runtime) *)
  | Nop

let rec eval_expr ~params ~env = function
  | Int k -> k
  | Var v -> (
      match List.assoc_opt v env with
      | Some x -> x
      | None -> invalid_arg (Printf.sprintf "eval_expr: unbound loop var %s" v))
  | Param p -> (
      match List.assoc_opt p params with
      | Some x -> x
      | None -> invalid_arg (Printf.sprintf "eval_expr: unbound param %s" p))
  | Sum es -> List.fold_left (fun acc e -> acc + eval_expr ~params ~env e) 0 es
  | Mul (k, e) -> k * eval_expr ~params ~env e
  | Floor_div (e, d) -> Presburger.Vec.floor_div (eval_expr ~params ~env e) d
  | Ceil_div (e, d) -> Presburger.Vec.ceil_div (eval_expr ~params ~env e) d
  | Min_of es ->
      List.fold_left
        (fun acc e -> min acc (eval_expr ~params ~env e))
        max_int es
  | Max_of es ->
      List.fold_left
        (fun acc e -> max acc (eval_expr ~params ~env e))
        min_int es

let rec simplify_expr e =
  match e with
  | Int _ | Var _ | Param _ -> e
  | Mul (0, _) -> Int 0
  | Mul (1, e) -> simplify_expr e
  | Mul (k, e) -> (
      match simplify_expr e with
      | Int v -> Int (k * v)
      | Mul (k', e') -> Mul (k * k', e')
      | e' -> Mul (k, e'))
  | Floor_div (e, 1) | Ceil_div (e, 1) -> simplify_expr e
  | Floor_div (e, d) -> (
      match simplify_expr e with
      | Int v -> Int (Presburger.Vec.floor_div v d)
      | e' -> Floor_div (e', d))
  | Ceil_div (e, d) -> (
      match simplify_expr e with
      | Int v -> Int (Presburger.Vec.ceil_div v d)
      | e' -> Ceil_div (e', d))
  | Sum es -> (
      let es = List.map simplify_expr es in
      let es =
        List.concat_map (function Sum inner -> inner | e -> [ e ]) es
      in
      let consts, rest = List.partition (function Int _ -> true | _ -> false) es in
      let c = List.fold_left (fun acc e -> match e with Int v -> acc + v | _ -> acc) 0 consts in
      match (rest, c) with
      | [], c -> Int c
      | rest, 0 -> ( match rest with [ e ] -> e | _ -> Sum rest)
      | rest, c -> Sum (rest @ [ Int c ]))
  | Min_of es -> (
      let es = List.map simplify_expr es in
      let es = List.concat_map (function Min_of inner -> inner | e -> [ e ]) es in
      let es = List.sort_uniq compare es in
      match es with [ e ] -> e | _ -> Min_of es)
  | Max_of es -> (
      let es = List.map simplify_expr es in
      let es = List.concat_map (function Max_of inner -> inner | e -> [ e ]) es in
      let es = List.sort_uniq compare es in
      match es with [ e ] -> e | _ -> Max_of es)

let rec expr_to_string e =
  let paren s = "(" ^ s ^ ")" in
  match e with
  | Int k -> string_of_int k
  | Var v -> v
  | Param p -> p
  | Sum es -> (
      match es with
      | [] -> "0"
      | first :: rest ->
          let buf = Buffer.create 32 in
          Buffer.add_string buf (expr_to_string first);
          List.iter
            (fun e ->
              match e with
              | Int k when k < 0 -> Buffer.add_string buf (Printf.sprintf " - %d" (-k))
              | Mul (k, e') when k < 0 ->
                  Buffer.add_string buf
                    (" - " ^ expr_to_string (Mul (-k, e')))
              | _ -> Buffer.add_string buf (" + " ^ expr_to_string e))
            rest;
          paren (Buffer.contents buf))
  | Mul (1, e) -> expr_to_string e
  | Mul (k, e) -> Printf.sprintf "%d * %s" k (expr_to_string e)
  | Floor_div (e, d) -> Printf.sprintf "floord(%s, %d)" (expr_to_string e) d
  | Ceil_div (e, d) -> Printf.sprintf "ceild(%s, %d)" (expr_to_string e) d
  | Min_of es -> "min(" ^ String.concat ", " (List.map expr_to_string es) ^ ")"
  | Max_of es -> "max(" ^ String.concat ", " (List.map expr_to_string es) ^ ")"

let to_string ast =
  let buf = Buffer.create 1024 in
  let pad n = String.make (2 * n) ' ' in
  let rec go depth = function
    | Nop -> ()
    | Block ts -> List.iter (go depth) ts
    | Kernel (k, t) ->
        Buffer.add_string buf (Printf.sprintf "%s// kernel %d\n" (pad depth) k);
        go depth t
    | Point t ->
        Buffer.add_string buf (pad depth ^ "// tile body\n");
        go depth t
    | For { var; lb; ub; coincident; body } ->
        Buffer.add_string buf
          (Printf.sprintf "%sfor (%s = %s; %s <= %s; %s++)%s {\n" (pad depth) var
             (expr_to_string lb) var (expr_to_string ub) var
             (if coincident then " /* parallel */" else ""));
        go (depth + 1) body;
        Buffer.add_string buf (pad depth ^ "}\n")
    | If (conds, body) ->
        Buffer.add_string buf
          (Printf.sprintf "%sif (%s) {\n" (pad depth)
             (String.concat " && "
                (List.map (fun c -> expr_to_string c ^ " >= 0") conds)));
        go (depth + 1) body;
        Buffer.add_string buf (pad depth ^ "}\n")
    | Call { stmt; args } ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s(%s);\n" (pad depth) stmt
             (String.concat ", " (List.map expr_to_string args)))
  in
  go 0 ast;
  Buffer.contents buf

let rec count_loops = function
  | For { body; _ } -> 1 + count_loops body
  | If (_, body) -> count_loops body
  | Block ts -> List.fold_left (fun acc t -> acc + count_loops t) 0 ts
  | Kernel (_, t) | Point t -> count_loops t
  | Call _ | Nop -> 0

let rec count_nodes = function
  | For { body; _ } -> 1 + count_nodes body
  | If (_, body) -> 1 + count_nodes body
  | Block ts -> 1 + List.fold_left (fun acc t -> acc + count_nodes t) 0 ts
  | Kernel (_, t) | Point t -> 1 + count_nodes t
  | Call _ | Nop -> 1

let kernels ast =
  let acc = ref [] in
  let rec go = function
    | Kernel (k, t) -> acc := (k, t) :: !acc
    | For { body; _ } -> go body
    | If (_, body) -> go body
    | Block ts -> List.iter go ts
    | Point t -> go t
    | Call _ | Nop -> ()
  in
  go ast;
  List.rev !acc
