(* Source-code backends. The array indexing of each statement comes from
   its access lists; loop structure and parallelism annotations come
   from the AST. *)

let index_string (acc : Prog.access) =
  let dim_name d = Printf.sprintf "i%d" d in
  let aff_string (a : Presburger.Aff.t) =
    let buf = Buffer.create 16 in
    let first = ref true in
    let term s =
      if !first then first := false else Buffer.add_string buf " + ";
      Buffer.add_string buf s
    in
    List.iter
      (fun (d, c) ->
        if c = 1 then term (dim_name d)
        else if c <> 0 then term (Printf.sprintf "%d*%s" c (dim_name d)))
      a.Presburger.Aff.dims;
    List.iter
      (fun (p, c) ->
        if c = 1 then term p else if c <> 0 then term (Printf.sprintf "%d*%s" c p))
      a.Presburger.Aff.params;
    if a.Presburger.Aff.cst <> 0 || !first then
      term (string_of_int a.Presburger.Aff.cst);
    Buffer.contents buf
  in
  String.concat ""
    (List.map
       (fun (ix : Prog.index) ->
         if ix.Prog.div = 1 then Printf.sprintf "[%s]" (aff_string ix.Prog.aff)
         else Printf.sprintf "[(%s)/%d]" (aff_string ix.Prog.aff) ix.Prog.div)
       acc.Prog.indices)

let statement_macros (p : Prog.t) =
  let buf = Buffer.create 256 in
  List.iter
    (fun (s : Prog.stmt) ->
      let nd = Presburger.Bset.n_dims s.Prog.domain in
      let args = String.concat ", " (List.init nd (fun d -> Printf.sprintf "i%d" d)) in
      let reads =
        String.concat ", "
          (List.map
             (fun (r : Prog.access) -> r.Prog.array ^ index_string r)
             s.Prog.reads)
      in
      Buffer.add_string buf
        (Printf.sprintf "#define %s(%s) %s%s = f_%s(%s)\n" s.Prog.stmt_name args
           s.Prog.write.Prog.array (index_string s.Prog.write) s.Prog.stmt_name
           reads))
    p.Prog.stmts;
  Buffer.contents buf

let scratch_decls staged (p : Prog.t) ~qualifier =
  String.concat ""
    (List.map
       (fun a ->
         let extents = Prog.array_extent p a in
         Printf.sprintf "  %sfloat %s_tile%s;  /* staged intermediate */\n"
           qualifier a
           (String.concat "" (List.map (fun e -> Printf.sprintf "[%d]" e) extents)))
       staged)

(* OpenMP: pragma on the outermost coincident loop of each kernel,
   ivdep on innermost coincident loops. *)
let openmp ?(staged = []) (p : Prog.t) ast =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (statement_macros p);
  Buffer.add_string buf "\nvoid kernel(void) {\n";
  Buffer.add_string buf (scratch_decls staged p ~qualifier:"");
  let pad n = String.make (2 * n) ' ' in
  let rec innermost_parallel = function
    | Ast.For { coincident; body; _ } ->
        let rec has_for = function
          | Ast.For _ -> true
          | Ast.If (_, b) -> has_for b
          | Ast.Block ts -> List.exists has_for ts
          | Ast.Kernel (_, t) | Ast.Point t -> has_for t
          | _ -> false
        in
        if has_for body then innermost_parallel body else coincident
    | Ast.If (_, b) -> innermost_parallel b
    | Ast.Block ts -> List.exists innermost_parallel ts
    | Ast.Point t -> innermost_parallel t
    | _ -> false
  in
  let rec go depth ~outer_done node =
    match node with
    | Ast.Nop -> ()
    | Ast.Block ts -> List.iter (go depth ~outer_done) ts
    | Ast.Kernel (k, t) ->
        Buffer.add_string buf (Printf.sprintf "%s/* kernel %d */\n" (pad depth) k);
        go depth ~outer_done:false t
    | Ast.Point t -> go depth ~outer_done t
    | Ast.If (conds, body) ->
        Buffer.add_string buf
          (Printf.sprintf "%sif (%s) {\n" (pad depth)
             (String.concat " && "
                (List.map (fun c -> Ast.expr_to_string c ^ " >= 0") conds)));
        go (depth + 1) ~outer_done body;
        Buffer.add_string buf (pad depth ^ "}\n")
    | Ast.For ({ var; lb; ub; coincident; body } as f) ->
        if coincident && not outer_done then
          Buffer.add_string buf (pad depth ^ "#pragma omp parallel for\n")
        else if coincident && innermost_parallel (Ast.For f) then
          Buffer.add_string buf (pad depth ^ "#pragma ivdep\n");
        Buffer.add_string buf
          (Printf.sprintf "%sfor (int %s = %s; %s <= %s; %s++) {\n" (pad depth)
             var (Ast.expr_to_string lb) var (Ast.expr_to_string ub) var);
        go (depth + 1) ~outer_done:true body;
        Buffer.add_string buf (pad depth ^ "}\n")
    | Ast.Call { stmt; args } ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s(%s);\n" (pad depth) stmt
             (String.concat ", " (List.map Ast.expr_to_string args)))
  in
  go 1 ~outer_done:false ast;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* CUDA: per kernel region, map the leading coincident loops to block
   and thread indices. *)
let cuda ?(staged = []) (p : Prog.t) ast =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (statement_macros p);
  let pad n = String.make (2 * n) ' ' in
  let emit_kernel (k, body) =
    Buffer.add_string buf (Printf.sprintf "\n__global__ void kernel%d(void) {\n" k);
    Buffer.add_string buf (scratch_decls staged p ~qualifier:"__shared__ ");
    let grid = [ "blockIdx.x"; "blockIdx.y" ] in
    let threads = [ "threadIdx.x"; "threadIdx.y"; "threadIdx.z" ] in
    let rec go depth ~grid ~threads node =
      match node with
      | Ast.Nop -> ()
      | Ast.Block ts -> List.iter (go depth ~grid ~threads) ts
      | Ast.Kernel (_, t) | Ast.Point t -> go depth ~grid ~threads t
      | Ast.If (conds, body) ->
          Buffer.add_string buf
            (Printf.sprintf "%sif (%s) {\n" (pad depth)
               (String.concat " && "
                  (List.map (fun c -> Ast.expr_to_string c ^ " >= 0") conds)));
          go (depth + 1) ~grid ~threads body;
          Buffer.add_string buf (pad depth ^ "}\n")
      | Ast.For { var; lb; ub; coincident; body } -> (
          match (coincident, grid, threads) with
          | true, g :: grest, _ ->
              Buffer.add_string buf
                (Printf.sprintf "%sint %s = %s + (%s);  /* block-mapped */\n"
                   (pad depth) var g (Ast.expr_to_string lb));
              ignore ub;
              go depth ~grid:grest ~threads body
          | true, [], t :: trest ->
              Buffer.add_string buf
                (Printf.sprintf "%sint %s = %s + (%s);  /* thread-mapped */\n"
                   (pad depth) var t (Ast.expr_to_string lb));
              go depth ~grid:[] ~threads:trest body
          | _ ->
              Buffer.add_string buf
                (Printf.sprintf "%sfor (int %s = %s; %s <= %s; %s++) {\n"
                   (pad depth) var (Ast.expr_to_string lb) var
                   (Ast.expr_to_string ub) var);
              go (depth + 1) ~grid ~threads body;
              Buffer.add_string buf (pad depth ^ "}\n"))
      | Ast.Call { stmt; args } ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s(%s);\n" (pad depth) stmt
               (String.concat ", " (List.map Ast.expr_to_string args)))
    in
    go 1 ~grid ~threads body;
    Buffer.add_string buf "}\n"
  in
  (match Ast.kernels ast with
  | [] -> emit_kernel (0, ast)
  | ks -> List.iter emit_kernel ks);
  Buffer.contents buf

(* CCE: DaVinci-style operator groups with explicit buffer transfers. *)
let cce ?(staged = []) ~kind_of (p : Prog.t) ast =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "/* CCE operator groups (DaVinci) */\n";
  let emit_kernel (k, body) =
    Buffer.add_string buf (Printf.sprintf "\noperator_group g%d {\n" k);
    List.iter
      (fun a -> Buffer.add_string buf (Printf.sprintf "  alloc UB %s_tile;\n" a))
      staged;
    let rec stmts_of = function
      | Ast.Call { stmt; _ } -> [ stmt ]
      | Ast.If (_, b) | Ast.For { body = b; _ } | Ast.Kernel (_, b) | Ast.Point b
        ->
          stmts_of b
      | Ast.Block ts -> List.concat_map stmts_of ts
      | Ast.Nop -> []
    in
    let stmts = List.sort_uniq compare (stmts_of body) in
    List.iter
      (fun s ->
        let st = Prog.find_stmt p s in
        let unit = match kind_of s with `Cube -> "CUBE" | `Vector -> "VECTOR" in
        List.iter
          (fun (r : Prog.access) ->
            if not (List.mem r.Prog.array staged) then
              Buffer.add_string buf
                (Printf.sprintf "  dma DDR -> %s : %s;\n"
                   (if unit = "CUBE" then "L1/L0A" else "UB")
                   r.Prog.array))
          st.Prog.reads;
        Buffer.add_string buf (Printf.sprintf "  exec %s on %s;\n" s unit);
        if not (List.mem st.Prog.write.Prog.array staged) then
          Buffer.add_string buf
            (Printf.sprintf "  dma %s -> DDR : %s;\n"
               (if unit = "CUBE" then "L0C" else "UB")
               st.Prog.write.Prog.array))
      stmts;
    Buffer.add_string buf "}\n"
  in
  (match Ast.kernels ast with
  | [] -> emit_kernel (0, ast)
  | ks -> List.iter emit_kernel ks);
  Buffer.contents buf
