open Presburger

(* Per-statement constraint system over [params; lvars; stmt_dims]. *)
type stmt_state = { stmt : Prog.stmt; sys : Cstr.t list }

type ctx = {
  prog : Prog.t;
  params : string array;
  lvars : string array;  (** loop variables, outermost first *)
  sched_vars : (string * string array) list;  (** band tuple -> lvar names *)
  enforced : Cstr.t list;  (** over [params; lvars] *)
  counter : int ref;
  kernel_counter : int ref;
}

let np ctx = Array.length ctx.params

let nl ctx = Array.length ctx.lvars

let fresh_lvar ctx =
  let v = Printf.sprintf "c%d" !(ctx.counter) in
  incr ctx.counter;
  v

(* Lift a constraint of a basic map into a statement system. [in_cols]
   and [out_cols] give, for each input/output dimension of the map, the
   destination column (relative to the full system width). *)
let lift_map_cstr ~from_params ~ctx ~width ~in_cols ~out_cols (c : Cstr.t) =
  let npf = Array.length from_params in
  let ni = Array.length in_cols and no = Array.length out_cols in
  assert (Cstr.nvars c = npf + ni + no);
  let out = Array.make width 0 in
  Array.iteri
    (fun i p ->
      let j =
        match Array.find_index (( = ) p) ctx.params with
        | Some j -> j
        | None -> invalid_arg ("Gen: unknown parameter " ^ p)
      in
      out.(j) <- c.coef.(i))
    from_params;
  Array.iteri (fun i col -> out.(col) <- out.(col) + c.coef.(npf + i)) in_cols;
  Array.iteri (fun i col -> out.(col) <- out.(col) + c.coef.(npf + ni + i)) out_cols;
  { c with coef = out }

let insert_lvar_cols ctx states =
  (* a new lvar column is appended after existing lvars, i.e. at position
     np + nl, in every statement system (before its dims) and in the
     enforced set (at the end). *)
  let pos = np ctx + nl ctx in
  List.map
    (fun st -> { st with sys = List.map (fun c -> Cstr.insert_vars c ~pos ~count:1) st.sys })
    states

let row_to_expr ctx row cst =
  let terms = ref [] in
  Array.iteri
    (fun i c -> if c <> 0 then terms := Ast.Mul (c, Ast.Param ctx.params.(i)) :: !terms)
    (Array.sub row 0 (np ctx));
  Array.iteri
    (fun i c ->
      if c <> 0 then terms := Ast.Mul (c, Ast.Var ctx.lvars.(i)) :: !terms)
    (Array.sub row (np ctx) (nl ctx));
  if cst <> 0 || !terms = [] then terms := Ast.Int cst :: !terms;
  Ast.simplify_expr (Ast.Sum (List.rev !terms))

(* Bounds of loop-variable column [col] from a system restricted to
   [params; lvars] (no statement dims). *)
let bounds_exprs ctx col cstrs =
  let lowers, uppers = Fm.bounds_for ~var:col cstrs in
  let lower_of (a, (c : Cstr.t)) =
    (* a*v + rest >= 0  ->  v >= ceil(-rest / a) *)
    let row = Array.copy c.Cstr.coef in
    row.(col) <- 0;
    let e = row_to_expr ctx (Vec.scale (-1) row) (-c.Cstr.cst) in
    if a = 1 then e else Ast.simplify_expr (Ast.Ceil_div (e, a))
  in
  let upper_of (b, (c : Cstr.t)) =
    (* -b*v + rest >= 0 -> v <= floor(rest / b) *)
    let row = Array.copy c.Cstr.coef in
    row.(col) <- 0;
    let e = row_to_expr ctx row c.Cstr.cst in
    if b = 1 then e else Ast.simplify_expr (Ast.Floor_div (e, b))
  in
  (List.map lower_of lowers, List.map upper_of uppers)

let project_to_lvars ~upto ctx (st : stmt_state) =
  (* eliminate statement dims and lvars with index > upto *)
  let nd = Bset.n_dims st.stmt.Prog.domain in
  let base = np ctx + nl ctx in
  let dim_vars = List.init nd (fun i -> base + i) in
  let later = List.init (nl ctx - upto - 1) (fun i -> np ctx + upto + 1 + i) in
  let vars = dim_vars @ later in
  let cstrs =
    try Fm.eliminate_many ~exact:true ~vars st.sys
    with Fm.Inexact _ -> Fm.eliminate_many ~exact:false ~vars st.sys
  in
  match Fm.dedup cstrs with None -> [ Fm.false_cstr (base + nd) ] | Some c -> c

(* Solve each statement dimension as an affine expression of lvars and
   params, using the unit-coefficient equalities of the system. *)
let solve_dims ctx (st : stmt_state) =
  let nd = Bset.n_dims st.stmt.Prog.domain in
  let base = np ctx + nl ctx in
  List.init nd (fun d ->
      let col = base + d in
      let eq =
        List.find_opt
          (fun (c : Cstr.t) ->
            c.Cstr.kind = Cstr.Eq
            && abs c.coef.(col) = 1
            && List.for_all
                 (fun d' -> d' = d || c.coef.(base + d') = 0)
                 (List.init nd (fun i -> i)))
          st.sys
      in
      match eq with
      | None ->
          invalid_arg
            (Printf.sprintf "Gen: dimension %d of %s not determined at leaf" d
               st.stmt.Prog.stmt_name)
      | Some c ->
          (* coef(col)*d + rest + cst = 0 -> d = -+ (rest + cst) *)
          let sign = -c.coef.(col) in
          let row = Array.copy c.coef in
          row.(col) <- 0;
          row_to_expr ctx (Vec.scale sign row) (sign * c.Cstr.cst))

let guard_conds ctx (st : stmt_state) =
  let nd = Bset.n_dims st.stmt.Prog.domain in
  let base = np ctx + nl ctx in
  let vars = List.init nd (fun i -> base + i) in
  let residual =
    try Fm.eliminate_many ~exact:true ~vars st.sys
    with Fm.Inexact _ -> Fm.eliminate_many ~exact:false ~vars st.sys
  in
  let residual = match Fm.dedup residual with None -> [ Fm.false_cstr base ] | Some c -> c in
  let width = base in
  (* constraints over parameters alone are loop-invariant facts; the
     generated code is specialized to the program's bound sizes (as the
     paper's evaluation fixes tile sizes and extents), so they are
     checked once here rather than guarded per instance *)
  let param_only (c : Cstr.t) =
    let ok = ref true in
    for i = np ctx to width - 1 do
      if c.coef.(i) <> 0 then ok := false
    done;
    !ok
  in
  let holds_under_binding (c : Cstr.t) =
    let v = ref c.Cstr.cst in
    Array.iteri
      (fun i p ->
        match List.assoc_opt p ctx.prog.Prog.params with
        | Some x -> v := !v + (c.coef.(i) * x)
        | None -> ())
      ctx.params;
    match c.Cstr.kind with Cstr.Eq -> !v = 0 | Cstr.Ge -> !v >= 0
  in
  let needed =
    List.filter
      (fun (c : Cstr.t) ->
        let c = { c with coef = Array.sub c.coef 0 width } in
        if param_only c && holds_under_binding c then false
        else
          not
            (try Fm.implies ~nvars:width ctx.enforced c with Fm.Inexact _ -> false))
      residual
  in
  List.concat_map
    (fun (c : Cstr.t) ->
      let row = Array.sub c.coef 0 width in
      match c.Cstr.kind with
      | Cstr.Ge -> [ row_to_expr ctx row c.Cstr.cst ]
      | Cstr.Eq ->
          [ row_to_expr ctx row c.Cstr.cst;
            row_to_expr ctx (Vec.scale (-1) row) (-c.Cstr.cst)
          ])
    needed

let leaf_code ctx active =
  let order s =
    Prog.stmt_index ctx.prog s.stmt.Prog.stmt_name
  in
  let active = List.sort (fun a b -> compare (order a) (order b)) active in
  let stmts =
    List.map
      (fun st ->
        let args = solve_dims ctx st in
        let conds = guard_conds ctx st in
        let call = Ast.Call { stmt = st.stmt.Prog.stmt_name; args } in
        if conds = [] then call else Ast.If (conds, call))
      active
  in
  match stmts with [] -> Ast.Nop | [ s ] -> s | _ -> Ast.Block stmts

let rec gen ctx active (node : Schedule_tree.t) : Ast.t =
  match node with
  | Schedule_tree.Leaf -> leaf_code ctx active
  | Schedule_tree.Domain (dom, child) ->
      let active =
        List.map
          (fun piece ->
            let stmt = Prog.find_stmt ctx.prog (Bset.tuple piece) in
            let aligned = Bset.align_params piece (Array.of_list (Prog.param_names ctx.prog)) in
            { stmt; sys = aligned.Bset.cstrs })
          (Iset.pieces dom)
      in
      gen ctx active child
  | Schedule_tree.Filter (f, child) ->
      let names = Iset.tuples f in
      let active =
        List.filter (fun st -> List.mem st.stmt.Prog.stmt_name names) active
      in
      if active = [] then Ast.Nop else gen ctx active child
  | Schedule_tree.Sequence cs ->
      let parts = List.map (gen ctx active) cs in
      Ast.Block (List.filter (fun p -> p <> Ast.Nop) parts)
  | Schedule_tree.Mark ("skipped", _) -> Ast.Nop
  | Schedule_tree.Mark (m, child)
    when m = "kernel" || String.starts_with ~prefix:"kernel:" m ->
      (* "kernel:<n>" pins the kernel id to the scheduler's space id so
         every phase names the same entity; a bare "kernel" mark falls
         back to generation order. *)
      let id =
        match String.index_opt m ':' with
        | Some i -> (
            match int_of_string_opt (String.sub m (i + 1) (String.length m - i - 1)) with
            | Some n -> n
            | None -> !(ctx.kernel_counter))
        | None -> !(ctx.kernel_counter)
      in
      incr ctx.kernel_counter;
      Ast.Kernel (id, gen ctx active child)
  | Schedule_tree.Mark ("point", child) -> (
      match gen ctx active child with
      | Ast.Nop -> Ast.Nop
      | body -> Ast.Point body)
  | Schedule_tree.Mark (_, child) -> gen ctx active child
  | Schedule_tree.Extension (ext, child) ->
      let new_states =
        List.map
          (fun piece ->
            let sp = Bmap.space piece in
            let stmt = Prog.find_stmt ctx.prog sp.Space.out_tuple in
            let tile_lvars =
              match List.assoc_opt sp.Space.in_tuple ctx.sched_vars with
              | Some vs -> vs
              | None ->
                  invalid_arg
                    ("Gen: extension over unknown schedule tuple " ^ sp.Space.in_tuple)
            in
            let nd = Bset.n_dims stmt.Prog.domain in
            let width = np ctx + nl ctx + nd in
            let in_cols =
              Array.map
                (fun v ->
                  match Array.find_index (( = ) v) ctx.lvars with
                  | Some i -> np ctx + i
                  | None -> assert false)
                tile_lvars
            in
            let out_cols = Array.init nd (fun d -> np ctx + nl ctx + d) in
            let lifted =
              List.map
                (lift_map_cstr ~from_params:sp.Space.params ~ctx ~width ~in_cols
                   ~out_cols)
                piece.Bmap.cstrs
            in
            (* also enforce the statement's own domain *)
            let dom =
              Bset.align_params stmt.Prog.domain
                (Array.of_list (Prog.param_names ctx.prog))
            in
            let dom_cstrs =
              List.map
                (fun (c : Cstr.t) ->
                  let row = Array.make width 0 in
                  Array.blit c.coef 0 row 0 (np ctx);
                  Array.blit c.coef (np ctx) row (np ctx + nl ctx) nd;
                  { c with coef = row })
                dom.Bset.cstrs
            in
            { stmt; sys = lifted @ dom_cstrs })
          (Imap.pieces ext)
      in
      gen ctx (active @ new_states) child
  | Schedule_tree.Band (band, child) ->
      gen_band ctx active band child

and gen_band ctx active band child =
  let pieces = Imap.pieces band.Schedule_tree.partial in
  let n = band.Schedule_tree.n_members in
  let schedules_someone =
    List.exists
      (fun st ->
        List.exists
          (fun p -> (Bmap.space p).Space.in_tuple = st.stmt.Prog.stmt_name)
          pieces)
      active
  in
  if n = 0 || not schedules_someone then gen ctx active child
  else begin
    (* introduce n new loop variables *)
    let new_names = Array.init n (fun _ -> fresh_lvar ctx) in
    let base_nl = nl ctx in
    let states = ref active in
    let ctx = ref ctx in
    Array.iter
      (fun name ->
        states := insert_lvar_cols !ctx !states;
        ctx :=
          { !ctx with
            lvars = Array.append !ctx.lvars [| name |];
            enforced =
              List.map
                (fun c -> Cstr.insert_vars c ~pos:(Array.length c.Cstr.coef) ~count:1)
                !ctx.enforced
          })
      new_names;
    let ctx = !ctx in
    (* attach each piece's constraints to its statement's system *)
    let out_tuple = ref None in
    let scheduled = Hashtbl.create 8 in
    let states =
      List.map
        (fun st ->
          match
            List.find_opt
              (fun p -> (Bmap.space p).Space.in_tuple = st.stmt.Prog.stmt_name)
              pieces
          with
          | None -> st
          | Some piece ->
              let sp = Bmap.space piece in
              out_tuple := Some sp.Space.out_tuple;
              Hashtbl.replace scheduled st.stmt.Prog.stmt_name ();
              let nd = Bset.n_dims st.stmt.Prog.domain in
              let width = np ctx + nl ctx + nd in
              let in_cols = Array.init nd (fun d -> np ctx + nl ctx + d) in
              let out_cols =
                Array.init n (fun j -> np ctx + base_nl + j)
              in
              let lifted =
                List.map
                  (lift_map_cstr ~from_params:sp.Space.params ~ctx ~width ~in_cols
                     ~out_cols)
                  piece.Bmap.cstrs
              in
              { st with sys = lifted @ st.sys })
        !states
    in
    let ctx =
      match !out_tuple with
      | Some t -> { ctx with sched_vars = (t, new_names) :: ctx.sched_vars }
      | None -> ctx
    in
    (* build loops outermost-first *)
    let rec build j ctx =
      if j = n then gen ctx states child
      else begin
        let col = np ctx + base_nl + j in
        let contributing =
          List.filter (fun st -> Hashtbl.mem scheduled st.stmt.Prog.stmt_name) states
        in
        let per_stmt =
          List.map
            (fun st ->
              let projected = project_to_lvars ~upto:(base_nl + j) ctx st in
              (st, projected, bounds_exprs ctx col projected))
            contributing
        in
        let lbs = List.map (fun (_, _, (lo, _)) -> Ast.Max_of lo) per_stmt in
        let ubs = List.map (fun (_, _, (_, up)) -> Ast.Min_of up) per_stmt in
        let lb = Ast.simplify_expr (Ast.Min_of lbs) in
        let ub = Ast.simplify_expr (Ast.Max_of ubs) in
        let ctx =
          (* constraints shared by every contributing statement's
             projection are guaranteed by the emitted loop bounds; record
             them so leaf guards can be pruned. Projections have their
             statement-dim columns zeroed, so truncating to
             [params; lvars] is lossless. *)
          let width = np ctx + nl ctx in
          (* only constraints mentioning the new loop variable are
             enforced by its bounds; constraints purely over outer
             variables are NOT (the loop runs regardless of them). *)
          let normalize (c : Cstr.t) =
            if c.Cstr.coef.(col) = 0 then None
            else
              match
                Cstr.simplify { c with Cstr.coef = Array.sub c.Cstr.coef 0 width }
              with
              | Cstr.Keep c -> Some c
              | Cstr.Trivial_true | Cstr.Trivial_false -> None
          in
          let truncated =
            List.map
              (fun (_, projected, _) -> List.filter_map normalize projected)
              per_stmt
          in
          match truncated with
          | [] -> ctx
          | first :: rest ->
              let common =
                List.filter
                  (fun c -> List.for_all (fun other -> List.mem c other) rest)
                  first
              in
              { ctx with enforced = common @ ctx.enforced }
        in
        Obs.count "codegen.loops";
        Ast.For
          { var = new_names.(j);
            lb;
            ub;
            coincident = band.Schedule_tree.coincident.(j);
            body = build (j + 1) ctx
          }
      end
    in
    build 0 ctx
  end

let generate (p : Prog.t) tree =
  Obs.span "codegen.generate" @@ fun () ->
  let ctx =
    { prog = p;
      params = Array.of_list (Prog.param_names p);
      lvars = [||];
      sched_vars = [];
      enforced = [];
      counter = ref 0;
      kernel_counter = ref 0
    }
  in
  gen ctx [] tree
