(** Structured event log: typed, ring-buffered records that capture
    {e decisions} (fusion accept/reject, tile-shape choice, post-tiling
    rewrites) and {e samples} (runtime tile timelines) rather than
    aggregate counters.

    Events carry a name, a category, a timestamp on the {!Obs} trace
    clock, an optional duration, and a payload of typed key/values.
    Recording is gated on [Obs.is_enabled] and bounded by a ring
    buffer, so instrumented paths are safe to leave in hot code. The
    ring is guarded by a mutex, so concurrent domains can emit safely.

    When the recording domain has a request-correlation id set (see
    {!Obs.set_request_id}), [emit] tags the event with a ["req"] arg so
    per-request traces can be carved out of the shared ring.

    Exporters: JSONL (one event per line, round-trippable with
    {!of_jsonl}) and a Chrome trace that merges structured events with
    the {!Obs} span intervals in timestamp order. *)

(** Payload value: string, int, float or bool (an alias of
    {!Json_util.value}). Ints and floats stay distinct through a JSONL
    round-trip. *)
type value = Json_util.value = S of string | I of int | F of float | B of bool

type t = {
  seq : int;  (** global emission index; counts events later dropped *)
  ts_s : float;  (** seconds since the [Obs.reset] epoch *)
  dur_s : float;  (** 0 for instantaneous events *)
  cat : string;  (** category, e.g. ["fusion"], ["runtime"] *)
  name : string;  (** dotted event name, e.g. ["fusion.reject"] *)
  args : (string * value) list;
}

(** {1 Lifecycle} *)

val reset : unit -> unit
(** Drop all recorded events and the emission counter. Capacity is
    kept. Also runs automatically as part of [Obs.reset] (registered
    via [Obs.on_reset]), atomically with the Obs registries. *)

val set_capacity : int -> unit
(** Resize the ring buffer (clamped to >= 1). Discards recorded events
    and resets the emission counter. Default capacity: 65536. *)

val capacity : unit -> int

(** {1 Recording} *)

val emit :
  ?ts_s:float -> ?dur_s:float -> ?cat:string -> string -> (string * value) list -> unit
(** [emit name args] records an event stamped [Obs.elapsed_s ()] (or
    the explicit [ts_s]). No-op while [Obs] is disabled. When the ring
    is full the oldest event is dropped. If the recording domain has a
    request id set, a [("req", S id)] arg is appended unless the caller
    already supplied one. *)

(** {1 Inspection} *)

val recorded : ?req:string -> unit -> t list
(** Retained events, oldest first. [?req] restricts to events tagged
    with that request id. *)

val emitted : unit -> int
(** Total events emitted since the last reset, including dropped. *)

val dropped : unit -> int
(** Events lost to ring-buffer overflow. *)

val find : t -> string -> value option
(** Payload lookup by key. *)

val value_to_string : value -> string
(** Human-readable rendering (no quotes around strings). *)

(** {1 Exporters} *)

val to_jsonl : unit -> string
(** One JSON object per line:
    [{"seq":..,"ts":..,"dur":..,"cat":..,"name":..,"args":{..}}]. *)

val of_jsonl : string -> (t list, string) result
(** Parse [to_jsonl] output back into events. Int/float payload values
    survive the round trip exactly. *)

val write_jsonl : string -> unit

val chrome_trace : ?req:string -> unit -> string
(** Chrome trace_event JSON merging [Obs] span intervals (tid 1) with
    structured events (tid 2, instant ["i"] or complete ["X"] when a
    duration is present), in non-decreasing timestamp order, plus the
    final [Obs] counters ["C"] event. [?req] restricts both stores to
    one request's records. *)

val write_chrome_trace : string -> unit
