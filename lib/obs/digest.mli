(** Streaming quantile sketch: a fixed-size merging digest over
    adaptive value intervals ("centroids"), dependency-free and
    mergeable.

    The digest keeps at most [capacity] centroids; each centroid is a
    value interval [[c_min, c_max]] with an occupancy count and value
    sum. While the observation count is at most [capacity] every
    centroid is a singleton and quantiles are {b exact} (identical to
    linear interpolation over the sorted sample array). Beyond that,
    compression repeatedly merges the adjacent centroid pair of least
    combined occupancy: among the [k-1] adjacent pairs of [k] centroids
    the minimum combined count is at most [2n/(k-1)], so every centroid
    a compression step ever creates holds at most [ceil (2n /
    capacity)] observations.

    Rank-error certificate: intervals of a single add-stream stay
    pairwise disjoint (a new value strictly inside an existing interval
    is absorbed into it, and only adjacent intervals merge), so the
    value returned for a target rank lies in the one centroid covering
    that rank and its true rank is off by at most that centroid's
    occupancy. {!rank_error} computes this bound from the live centroid
    layout — max occupancy plus, after cross-digest {!merge}s (which
    can overlap intervals), the occupancy of overlapping neighbours.
    Tests validate estimates against sorted-array ground truth within
    exactly this bound.

    Not thread-safe: guard a shared digest with a mutex (the serve
    daemon does). Queries flush an internal insert buffer, so they
    mutate the representation but never the distribution. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 128, clamped to at least 8) bounds the number
    of retained centroids, i.e. the memory, and sets the accuracy:
    rank error is O(n/capacity) for n observations. *)

val add : t -> float -> unit
(** Observe one value. Non-finite values are ignored. *)

val add_list : t -> float list -> unit

val of_list : ?capacity:int -> float list -> t

val merge : t -> t -> t
(** [merge a b] is a fresh digest over the union of both observation
    streams (inputs are not mutated); its capacity is the larger of
    the two. Merged intervals may overlap, which {!rank_error}
    accounts for. *)

val count : t -> int
(** Number of observations. *)

val sum : t -> float

val minimum : t -> float option

val maximum : t -> float option

val mean : t -> float option

val trimmed_mean : t -> float
(** Mean after dropping one minimum and one maximum sample — exactly
    the bench harness's trimmed mean ([(sum - min - max) / (n - 2)]
    for [n >= 3], the plain mean for [1 <= n <= 2], [0.] when empty).
    Exact up to float addition order: min, max and sum are tracked
    exactly. *)

val quantile : t -> float -> float option
(** [quantile t q] for [0 <= q <= 1]: the estimated value of (0-based,
    real) rank [q * (count - 1)], linearly interpolated inside and
    between centroids. [None] on the empty digest. [quantile t 0.] and
    [quantile t 1.] are the exact minimum and maximum; estimates are
    monotone in [q]. *)

val quantiles : t -> float list -> float list
(** Batch {!quantile} on a non-empty digest ([[]] when empty). *)

val rank_error : t -> int
(** Certified rank-error bound for the current layout: every
    {!quantile} estimate's true rank differs from its target rank by
    at most this many positions (0 while the digest is exact). *)

val centroids : t -> int
(** Number of live centroids (at most the capacity). *)

val capacity : t -> int
