(* SLO / anomaly rule engine (see watchdog.mli). *)

type cmp = Above | Below

type kind =
  | Slo of { threshold : float; cmp : cmp }
  | Anomaly of { window : int; sigma : float; min_samples : int }

type rule = {
  r_name : string;
  r_metric : string;
  r_kind : kind;
  r_fire_ticks : int;
  r_clear_ticks : int;
  r_help : string;
}

type alert = {
  a_rule : string;
  a_metric : string;
  a_value : float;
  a_since : float;
  a_detail : string;
}

type event = Fired of alert | Cleared of alert

type rule_state = {
  rs_rule : rule;
  mutable rs_breach : int;  (* consecutive breaching ticks *)
  mutable rs_ok : int;  (* consecutive healthy ticks *)
  mutable rs_alert : alert option;  (* Some while firing *)
  (* rolling history for anomaly rules, newest first *)
  mutable rs_hist : float list;
  mutable rs_nhist : int;
}

type t = rule_state list

let default_rules ?(error_rate = 0.5) ?(p99_ms = 5000.)
    ?(rss_bytes = 6. *. 1024. *. 1024. *. 1024.) () =
  let slo name metric threshold help =
    { r_name = name;
      r_metric = metric;
      r_kind = Slo { threshold; cmp = Above };
      r_fire_ticks = 2;
      r_clear_ticks = 2;
      r_help = help
    }
  in
  let anomaly name metric help =
    { r_name = name;
      r_metric = metric;
      r_kind = Anomaly { window = 120; sigma = 6.0; min_samples = 40 };
      r_fire_ticks = 2;
      r_clear_ticks = 2;
      r_help = help
    }
  in
  [ slo "slo-error-rate" "http.error_rate" error_rate
      "fraction of HTTP requests answered with status >= 400";
    slo "slo-p99-compile-ms" "http.latency_ms.compile.p99" p99_ms
      "p99 latency of POST /compile over the last scrape window";
    slo "slo-rss-bytes" "process.rss_bytes" rss_bytes
      "resident set size of the serve daemon";
    anomaly "anomaly-cache-hit-ratio" "fm.cache.hit_ratio"
      "footprint-model cache hit ratio drifted from its rolling mean";
    anomaly "anomaly-dram-per-request" "machine.dram_per_request"
      "modeled DRAM traffic per compile request drifted from its rolling mean";
    anomaly "anomaly-steal-rate" "runtime.steal_rate"
      "work-steals per executed tile drifted from its rolling mean"
  ]

let create rules =
  List.map
    (fun r ->
      { rs_rule = r;
        rs_breach = 0;
        rs_ok = 0;
        rs_alert = None;
        rs_hist = [];
        rs_nhist = 0
      })
    rules

let rules (t : t) = List.map (fun rs -> rs.rs_rule) t

let firing (t : t) = List.filter_map (fun rs -> rs.rs_alert) t

(* Breach verdict for one sample; [None] means "cannot judge yet"
   (anomaly warmup), which holds state like a missing metric does. *)
let judge rs v =
  match rs.rs_rule.r_kind with
  | Slo { threshold; cmp } ->
      let breach =
        match cmp with Above -> v > threshold | Below -> v < threshold
      in
      let detail =
        Printf.sprintf "%s %.6g %s threshold %.6g" rs.rs_rule.r_metric v
          (match cmp with Above -> ">" | Below -> "<")
          threshold
      in
      Some (breach, detail)
  | Anomaly { sigma; min_samples; _ } ->
      if rs.rs_nhist < min_samples then None
      else begin
        let n = float_of_int rs.rs_nhist in
        let mean = List.fold_left ( +. ) 0.0 rs.rs_hist /. n in
        let var =
          List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0.0 rs.rs_hist
          /. n
        in
        (* floor σ at 1% of |mean| so constant histories don't alert *)
        let sd = Float.max (sqrt var) (Float.max (0.01 *. Float.abs mean) 1e-9) in
        let dev = Float.abs (v -. mean) /. sd in
        Some
          ( dev > sigma,
            Printf.sprintf "%s %.6g deviates %.2fσ from rolling mean %.6g"
              rs.rs_rule.r_metric v dev mean )
      end

let push_history rs v =
  match rs.rs_rule.r_kind with
  | Slo _ -> ()
  | Anomaly { window; _ } ->
      rs.rs_hist <- v :: rs.rs_hist;
      rs.rs_nhist <- rs.rs_nhist + 1;
      if rs.rs_nhist > window then begin
        (* drop the oldest (last) element *)
        rs.rs_hist <- List.filteri (fun i _ -> i < window) rs.rs_hist;
        rs.rs_nhist <- window
      end

let tick (t : t) ~now ~lookup =
  List.filter_map
    (fun rs ->
      match lookup rs.rs_rule.r_metric with
      | None -> None
      | Some v -> (
          let verdict = judge rs v in
          push_history rs v;
          match verdict with
          | None -> None
          | Some (breach, detail) ->
              if breach then begin
                rs.rs_breach <- rs.rs_breach + 1;
                rs.rs_ok <- 0
              end
              else begin
                rs.rs_ok <- rs.rs_ok + 1;
                rs.rs_breach <- 0
              end;
              (match rs.rs_alert with
              | None when rs.rs_breach >= rs.rs_rule.r_fire_ticks ->
                  let a =
                    { a_rule = rs.rs_rule.r_name;
                      a_metric = rs.rs_rule.r_metric;
                      a_value = v;
                      a_since = now;
                      a_detail = detail
                    }
                  in
                  rs.rs_alert <- Some a;
                  Some (Fired a)
              | Some a when rs.rs_ok >= rs.rs_rule.r_clear_ticks ->
                  rs.rs_alert <- None;
                  Some (Cleared { a with a_value = v; a_detail = detail })
              | Some a ->
                  (* keep the alert's last-seen sample fresh *)
                  rs.rs_alert <- Some { a with a_value = v; a_detail = detail };
                  None
              | None -> None)))
    t
