(** OpenMetrics v1 text exposition of the {!Obs} registries, served at
    the daemon's [GET /metrics].

    Every Obs counter becomes its own counter family
    ([memcomp_<name>_total] with dots mapped to underscores), span
    aggregates become two labeled families ([memcomp_span_calls_total]
    / [memcomp_span_seconds_total] with a [span] label), and every
    histogram becomes a [memcomp_<name>] histogram family with
    cumulative [le] buckets (powers of two, then [+Inf]), [_count] and
    [_sum]. Output is deterministic (sorted) and ends with the
    mandatory [# EOF] terminator. *)

type mtype = Counter | Gauge

type family = {
  fam_name : string;  (** full exposition name, e.g. ["memcomp_uptime_seconds"] *)
  fam_help : string;
  fam_type : mtype;
  fam_samples : ((string * string) list * float) list;
      (** (labels, value) pairs; counters get a [_total] suffix *)
}

val sanitize : string -> string
(** Map a dotted Obs name onto the metric-name alphabet
    ([a-zA-Z0-9_:]); every other byte becomes ['_']. *)

val escape_label : string -> string
(** OpenMetrics label-value escaping: backslash, double-quote and
    newline only (narrower than JSON). Also used by {!Tsdb} tests to
    pin the shared label round-trip contract. *)

val unescape_label : string -> string
(** Inverse of {!escape_label}: [unescape_label (escape_label s) = s]
    for every [s]. Unknown escape pairs pass through verbatim. *)

val render : ?extra:family list -> unit -> string
(** Render the full exposition. [?extra] families (the daemon's process
    gauges and request-latency summaries) are emitted first, in the
    given order. *)

val parse_counters : string -> (string * int) list
(** Scrape-side helper: unlabeled [<family>_total] samples from an
    exposition as [(family_without_suffix, value)], in document order.
    Used by the bench load generator and tests to compare two scrapes
    and to check counters against [Obs.counters_alist]. *)

val parse_gauges : string -> (string * float) list
(** Scrape-side helper: unlabeled non-counter samples (the daemon's
    process gauges) as [(full_name, value)], in document order. Used
    by [memcomp top]. *)
