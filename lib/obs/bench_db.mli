(** [BENCH_<label>.json] snapshot databases and the metric-by-metric
    regression diff behind [bench/main.exe regress].

    A database is a labelled, timestamped list of {!Snapshot.t} (one per
    workload x flow). {!diff} pairs two databases by workload x flow,
    flattens each snapshot into named scalar metrics, and classifies
    every delta:

    - {e time} metrics (compile wall time, span totals) are ratio-gated
      with a noise floor — both sides are clamped up to
      [time_floor_s] first, so sub-floor jitter never gates;
    - {e counter} metrics (pass counters, cache hits/misses, traffic
      bytes, AST sizes) compare exactly: the compiler is deterministic,
      any increase is a regression and any decrease an improvement.
      Intentional changes are absorbed by refreshing the baseline;
    - {e noisy} metrics (work-stealing counts, per-worker busy time,
      measured speedup) are inherently nondeterministic: they are
      recorded in snapshots for inspection but never gate;
    - a workload x flow pair present in the base but missing from the
      candidate is a regression; a pair only in the candidate is
      reported as added but does not gate;
    - missing-metric direction is explicit: a time/counter metric
      present in the base but absent from the candidate is classified
      {!Removed} and fails the gate (lost coverage), a metric only in
      the candidate is {!Added} and never gates, and {!Noisy} metrics
      may come and go freely. *)

type t = { label : string; created : string; snapshots : Snapshot.t list }

val schema_version : int
(** Version of the database file format (checked by {!load}). *)

val make : label:string -> Snapshot.t list -> t
(** Stamp a database with the current UTC time. *)

val save : string -> t -> unit

val load : string -> (t, string) result

(** {1 Diff} *)

type kind = Time | Counter | Noisy

val noisy_counters : string list
(** Obs counter names classified {!Noisy} (e.g. [runtime.steals]). *)

type classification = Improved | Unchanged | Regressed | Added | Removed

type delta = {
  d_workload : string;
  d_flow : string;
  d_metric : string;
  d_kind : kind;
  d_base : float;
  d_cand : float;
  d_class : classification;
}

type thresholds = {
  max_time_ratio : float;  (** time metric regresses beyond this ratio *)
  time_floor_s : float;  (** noise floor: shorter times never gate *)
}

val default_thresholds : thresholds
(** [{ max_time_ratio = 2.0; time_floor_s = 0.1 }] *)

val classify_time : thresholds -> base:float -> cand:float -> classification

val classify_counter : base:int -> cand:int -> classification

val diff : ?thresholds:thresholds -> base:t -> cand:t -> unit -> delta list

val regressions : delta list -> delta list
(** The gating deltas: everything classified {!Regressed}, plus
    non-{!Noisy} metrics classified {!Removed}. *)

val gate : delta list -> int
(** [0] when {!regressions} is empty, [1] otherwise — the exit-code
    contract of [bench/main.exe regress]. *)

(** {1 Rendering} *)

val summary_table : delta list -> string
(** Human-readable diff: one row per non-unchanged metric plus a
    summary count line. *)

val deltas_json : ?thresholds:thresholds -> delta list -> string
(** Machine-readable diff (thresholds, summary counts, non-unchanged
    deltas) for the [--json] flag. *)
