(* On-disk time-series store (see tsdb.mli).

   A point is one JSONL line {"ts","m","l","c","s","mn","mx"}; segment
   files are named seg-<level>-<index>.jsonl. The store keeps no index
   in memory beyond the active raw writer: queries re-read segments,
   which keeps recovery trivial (the files are the state) at sizes the
   flight recorder produces. Compaction moves whole aged segments to
   the next level, so levels never overlap in the points they hold. *)

open Json_util

type point = {
  p_ts : float;
  p_count : int;
  p_sum : float;
  p_min : float;
  p_max : float;
}

type res = Raw | R10 | R60 | Auto

let res_of_string = function
  | "raw" -> Some Raw
  | "10s" -> Some R10
  | "60s" | "1m" -> Some R60
  | "auto" -> Some Auto
  | _ -> None

let res_to_string = function
  | Raw -> "raw"
  | R10 -> "10s"
  | R60 -> "60s"
  | Auto -> "auto"

type config = {
  seg_points : int;
  ret_raw_s : float;
  ret_mid_s : float;
  max_coarse_segments : int;
}

let default_config =
  { seg_points = 2048;
    ret_raw_s = 600.;
    ret_mid_s = 3600.;
    max_coarse_segments = 64
  }

type record = {
  r_metric : string;
  r_labels : (string * string) list;  (* sorted by key *)
  r_point : point;
}

type t = {
  t_dir : string;
  t_cfg : config;
  mutable t_next_idx : int array;  (* per level *)
  mutable t_active : (string * out_channel) option;  (* level-0 writer *)
  mutable t_active_count : int;
  mutable t_active_max_ts : float;
}

let schema_version = 1

let levels = 3

let bucket_of_level = function 1 -> 10. | 2 -> 60. | _ -> 1.

let seg_name level idx = Printf.sprintf "seg-%d-%06d.jsonl" level idx

let parse_seg_name name =
  try Scanf.sscanf name "seg-%d-%d.jsonl%!" (fun l i -> Some (l, i))
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let segments_of_level t level =
  Sys.readdir t.t_dir |> Array.to_list
  |> List.filter_map (fun name ->
         match parse_seg_name name with
         | Some (l, i) when l = level -> Some (i, Filename.concat t.t_dir name)
         | _ -> None)
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Line codec                                                          *)
(* ------------------------------------------------------------------ *)

let record_to_line r =
  let p = r.r_point in
  Json.to_string
    (Json.Obj
       [ ("ts", Json.Num p.p_ts);
         ("m", Json.Str r.r_metric);
         ("l", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) r.r_labels));
         ("c", Json.Num (float_of_int p.p_count));
         ("s", Json.Num p.p_sum);
         ("mn", Json.Num p.p_min);
         ("mx", Json.Num p.p_max)
       ])

let record_of_line line =
  match Json.parse line with
  | Error _ -> None
  | Ok j -> (
      let num k = match Json.member k j with Some (Json.Num f) -> Some f | _ -> None in
      match (num "ts", Json.member "m" j, num "c", num "s", num "mn", num "mx") with
      | Some ts, Some (Json.Str m), Some c, Some s, Some mn, Some mx ->
          let labels =
            match Json.member "l" j with
            | Some (Json.Obj kvs) ->
                List.filter_map
                  (fun (k, v) ->
                    match v with Json.Str s -> Some (k, s) | _ -> None)
                  kvs
            | _ -> []
          in
          Some
            { r_metric = m;
              r_labels = List.sort compare labels;
              r_point =
                { p_ts = ts;
                  p_count = int_of_float c;
                  p_sum = s;
                  p_min = mn;
                  p_max = mx
                }
            }
      | _ -> None)

(* Read a segment: the records of its longest valid-JSONL prefix and
   that prefix's byte length (shorter than the file when the tail is a
   partial or corrupt line). *)
let load_segment path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let recs = ref [] and ok_len = ref 0 and pos = ref 0 and stop = ref false in
  while (not !stop) && !pos < len do
    match String.index_from_opt s !pos '\n' with
    | None -> stop := true
    | Some nl -> (
        match record_of_line (String.sub s !pos (nl - !pos)) with
        | Some r ->
            recs := r :: !recs;
            ok_len := nl + 1;
            pos := nl + 1
        | None -> stop := true)
  done;
  (List.rev !recs, !ok_len, len)

(* ------------------------------------------------------------------ *)
(* Open / recovery                                                     *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let open_db ?(config = default_config) dir =
  try
    mkdir_p dir;
    let meta = Filename.concat dir "meta.json" in
    let check_meta () =
      match Json.parse (read_file meta) with
      | Ok j -> (
          match Json.member "schema" j with
          | Some (Json.Num v) when int_of_float v = schema_version -> Ok ()
          | Some (Json.Num v) ->
              Error
                (Printf.sprintf "tsdb: unsupported schema %d (expected %d)"
                   (int_of_float v) schema_version)
          | _ -> Error "tsdb: meta.json lacks a schema field")
      | Error e -> Error ("tsdb: bad meta.json: " ^ e)
    in
    let meta_ok =
      if Sys.file_exists meta then check_meta ()
      else begin
        write_file meta
          (Json.to_string
             (Json.Obj [ ("schema", Json.Num (float_of_int schema_version)) ])
          ^ "\n");
        Ok ()
      end
    in
    match meta_ok with
    | Error e -> Error e
    | Ok () ->
        let t =
          { t_dir = dir;
            t_cfg = config;
            t_next_idx = Array.make levels 0;
            t_active = None;
            t_active_count = 0;
            t_active_max_ts = neg_infinity
          }
        in
        (* truncated-tail recovery + next segment indices *)
        for level = 0 to levels - 1 do
          List.iter
            (fun (idx, path) ->
              let _, ok_len, len = load_segment path in
              if ok_len < len then write_file path (String.sub (read_file path) 0 ok_len);
              if idx >= t.t_next_idx.(level) then t.t_next_idx.(level) <- idx + 1)
            (segments_of_level t level)
        done;
        Ok t
  with Sys_error e | Unix.Unix_error (_, e, _) -> Error ("tsdb: " ^ e)

let dir t = t.t_dir

(* ------------------------------------------------------------------ *)
(* Append                                                              *)
(* ------------------------------------------------------------------ *)

let seal_active t =
  match t.t_active with
  | None -> ()
  | Some (_, oc) ->
      close_out oc;
      t.t_active <- None;
      t.t_active_count <- 0;
      t.t_active_max_ts <- neg_infinity

let fresh_segment t level =
  let idx = t.t_next_idx.(level) in
  t.t_next_idx.(level) <- idx + 1;
  Filename.concat t.t_dir (seg_name level idx)

let active_channel t =
  match t.t_active with
  | Some (_, oc) -> oc
  | None ->
      let path = fresh_segment t 0 in
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      t.t_active <- Some (path, oc);
      oc

let append t ~metric ?(labels = []) point =
  let oc = active_channel t in
  output_string oc
    (record_to_line
       { r_metric = metric; r_labels = List.sort compare labels; r_point = point });
  output_char oc '\n';
  flush oc;
  t.t_active_count <- t.t_active_count + 1;
  t.t_active_max_ts <- Float.max t.t_active_max_ts point.p_ts;
  if t.t_active_count >= t.t_cfg.seg_points then seal_active t

let observe t ~ts ~metric ?labels v =
  append t ~metric ?labels
    { p_ts = ts; p_count = 1; p_sum = v; p_min = v; p_max = v }

(* ------------------------------------------------------------------ *)
(* Compaction                                                          *)
(* ------------------------------------------------------------------ *)

(* Aggregate records into [width]-second buckets keyed by
   (metric, labels, bucket start); count/sum add and min/max combine,
   so every bucket conserves what it replaces. *)
let downsample width recs =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun r ->
      let b = Float.of_int (int_of_float (Float.floor (r.r_point.p_ts /. width))) *. width in
      let key = (r.r_metric, r.r_labels, b) in
      match Hashtbl.find_opt tbl key with
      | None ->
          Hashtbl.add tbl key
            { r with r_point = { r.r_point with p_ts = b } };
          order := key :: !order
      | Some agg ->
          let p = agg.r_point and q = r.r_point in
          Hashtbl.replace tbl key
            { agg with
              r_point =
                { p_ts = b;
                  p_count = p.p_count + q.p_count;
                  p_sum = p.p_sum +. q.p_sum;
                  p_min = Float.min p.p_min q.p_min;
                  p_max = Float.max p.p_max q.p_max
                }
            })
    recs;
  List.rev_map (Hashtbl.find tbl) !order
  |> List.sort (fun a b -> compare (a.r_point.p_ts, a.r_metric) (b.r_point.p_ts, b.r_metric))

let write_segment t level recs =
  if recs <> [] then begin
    let path = fresh_segment t level in
    let oc = open_out_bin path in
    List.iter
      (fun r ->
        output_string oc (record_to_line r);
        output_char oc '\n')
      recs;
    close_out oc
  end

(* Move every sealed [level] segment whose newest point is older than
   [cutoff] into [level + 1], downsampled to that level's bucket. *)
let compact_level t ~level ~cutoff =
  let active_path = match t.t_active with Some (p, _) -> Some p | None -> None in
  List.iter
    (fun (_, path) ->
      if Some path <> active_path then begin
        let recs, _, _ = load_segment path in
        let newest =
          List.fold_left (fun acc r -> Float.max acc r.r_point.p_ts) neg_infinity recs
        in
        if newest < cutoff then begin
          write_segment t (level + 1) (downsample (bucket_of_level (level + 1)) recs);
          Sys.remove path
        end
      end)
    (segments_of_level t level)

let compact t ~now =
  (* seal an idle active segment so it can age out *)
  if t.t_active_count > 0 && t.t_active_max_ts < now -. t.t_cfg.ret_raw_s then
    seal_active t;
  compact_level t ~level:0 ~cutoff:(now -. t.t_cfg.ret_raw_s);
  compact_level t ~level:1 ~cutoff:(now -. t.t_cfg.ret_mid_s);
  let coarse = segments_of_level t 2 in
  let excess = List.length coarse - t.t_cfg.max_coarse_segments in
  if excess > 0 then
    List.iteri (fun i (_, path) -> if i < excess then Sys.remove path) coarse

(* ------------------------------------------------------------------ *)
(* Query                                                               *)
(* ------------------------------------------------------------------ *)

let levels_of_res = function
  | Raw -> [ 0 ]
  | R10 -> [ 1 ]
  | R60 -> [ 2 ]
  | Auto -> [ 0; 1; 2 ]

let all_records t res =
  List.concat_map
    (fun level ->
      List.concat_map
        (fun (_, path) ->
          let recs, _, _ = load_segment path in
          recs)
        (segments_of_level t level))
    (levels_of_res res)

let query t ~metric ?(labels = []) ?(since = neg_infinity) ~res () =
  let wanted = List.sort compare labels in
  all_records t res
  |> List.filter (fun r ->
         r.r_metric = metric
         && r.r_point.p_ts >= since
         && List.for_all
              (fun (k, v) -> List.assoc_opt k r.r_labels = Some v)
              wanted)
  |> List.map (fun r -> r.r_point)
  |> List.sort (fun a b -> compare a.p_ts b.p_ts)

let metric_names t =
  all_records t Auto
  |> List.map (fun r -> r.r_metric)
  |> List.sort_uniq compare

let close t = seal_active t
