(** Shared JSON primitives for the observability layer: the single
    string escaper used by every JSON producer in the tree, the typed
    payload value shared by {!Events} and {!Log}, and the minimal JSON
    document parser/printer (formerly private to {!Snapshot}). *)

val escape : string -> string
(** Escape a string for embedding in a JSON string literal. *)

(** Payload value: string, int, float or bool. Ints and floats stay
    distinct through a JSONL round-trip ([F 5.] prints as ["5.0"]). *)
type value = S of string | I of int | F of float | B of bool

val float_repr : float -> string
(** Exact ([%.17g]) float rendering that always carries a ['.'] or
    exponent; nan/inf render as quoted strings. *)

val value_json : value -> string
(** JSON rendering of a payload value. *)

val value_to_string : value -> string
(** Human-readable rendering (no quotes around strings). *)

(** Minimal JSON documents — parser and printer sufficient for the
    snapshot schema and the serve daemon's request bodies. Floats print
    with [%.17g] so every finite double round-trips exactly. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string

  val parse : string -> (t, string) result

  val member : string -> t -> t option
  (** Field access on [Obj]; [None] on other constructors. *)
end
