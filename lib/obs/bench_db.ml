(* BENCH_<label>.json databases: a labelled list of snapshots plus a
   metric-by-metric diff with per-kind thresholds, powering the
   [bench/main.exe regress] CI gate.

   Classification rules:
   - Time metrics (compile wall time, span totals) are ratio-gated with
     a noise floor: both sides are clamped up to [time_floor_s] before
     comparing, so sub-floor jitter can never trip the gate, and a
     metric regresses only when it exceeds [max_time_ratio] times the
     (clamped) base.
   - Counter metrics (pass counters, cache hits/misses, traffic bytes,
     AST sizes) are exact: the compiler is deterministic, so any drift
     is a real behaviour change. An increase classifies as regressed, a
     decrease as improved; intentional changes are absorbed by
     refreshing the committed baseline.
   - A workload x flow present in the base but missing from the
     candidate (e.g. a flow that now crashes) regresses; a pair only in
     the candidate is reported as added but does not gate.
   - The same direction rule holds metric by metric: a time or counter
     metric present in the base but absent from the candidate is
     reported as removed AND fails the gate (silently lost coverage),
     while a metric only in the candidate is added and never gates.
     Noisy metrics (the optional speedup field) may come and go. *)

type t = { label : string; created : string; snapshots : Snapshot.t list }

(* v2: snapshots may carry the optional speedup field and runtime.*
   counters; v1 files still load (the additions are optional). *)
let schema_version = 2

let min_schema_version = 1

let iso8601 time =
  let tm = Unix.gmtime time in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let make ~label snapshots =
  { label; created = iso8601 (Unix.time ()); snapshots }

(* ------------------------------------------------------------------ *)
(* Load / save                                                         *)
(* ------------------------------------------------------------------ *)

let to_json db =
  Snapshot.Json.Obj
    [ ("schema_version", Snapshot.Json.Num (float_of_int schema_version));
      ("label", Snapshot.Json.Str db.label);
      ("created", Snapshot.Json.Str db.created);
      ( "snapshots",
        Snapshot.Json.Arr (List.map Snapshot.to_json db.snapshots) )
    ]

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let of_json j =
  let field name =
    match Snapshot.Json.member name j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let* version_j = field "schema_version" in
  let* version =
    match version_j with
    | Snapshot.Json.Num f -> Ok (int_of_float f)
    | _ -> Error "field \"schema_version\" is not a number"
  in
  if version < min_schema_version || version > schema_version then
    Error
      (Printf.sprintf "unsupported schema_version %d (supported: %d-%d)" version
         min_schema_version schema_version)
  else
    let* label_j = field "label" in
    let* label =
      match label_j with
      | Snapshot.Json.Str s -> Ok s
      | _ -> Error "field \"label\" is not a string"
    in
    let created =
      match Snapshot.Json.member "created" j with
      | Some (Snapshot.Json.Str s) -> s
      | _ -> ""
    in
    let* snaps_j = field "snapshots" in
    let* snapshots =
      match snaps_j with
      | Snapshot.Json.Arr l ->
          List.fold_left
            (fun acc s ->
              let* acc = acc in
              let* snap = Snapshot.of_json s in
              Ok (snap :: acc))
            (Ok []) l
          |> Result.map List.rev
      | _ -> Error "field \"snapshots\" is not an array"
    in
    Ok { label; created; snapshots }

let save path db =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Snapshot.Json.to_string (to_json db));
      output_char oc '\n')

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> (
      match Snapshot.Json.parse text with
      | Error msg -> Error (Printf.sprintf "%s: invalid JSON: %s" path msg)
      | Ok j -> (
          match of_json j with
          | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
          | Ok db -> Ok db))

(* ------------------------------------------------------------------ *)
(* Diff and classification                                             *)
(* ------------------------------------------------------------------ *)

type kind = Time | Counter | Noisy

type classification = Improved | Unchanged | Regressed | Added | Removed

type delta = {
  d_workload : string;
  d_flow : string;
  d_metric : string;
  d_kind : kind;
  d_base : float;
  d_cand : float;
  d_class : classification;
}

type thresholds = { max_time_ratio : float; time_floor_s : float }

let default_thresholds = { max_time_ratio = 2.0; time_floor_s = 0.1 }

let classify_time th ~base ~cand =
  let b = Float.max base th.time_floor_s in
  let c = Float.max cand th.time_floor_s in
  if c > b *. th.max_time_ratio then Regressed
  else if b > c *. th.max_time_ratio then Improved
  else Unchanged

let classify_counter ~base ~cand =
  if cand > base then Regressed else if cand < base then Improved else Unchanged

(* Metrics that are inherently nondeterministic across runs -- work-
   stealing counts, per-worker busy time, measured wall-clock speedup.
   They are recorded for inspection but never gate. *)
let noisy_counters =
  [ "runtime.steals"; "runtime.barrier_waits"; "runtime.busy_us" ]

let counter_kind name = if List.mem name noisy_counters then Noisy else Counter

(* Flatten a snapshot into named scalar metrics. Span wall times are
   Time metrics; span call counts, like everything else, are exact. *)
let metrics_of (s : Snapshot.t) : (string * kind * float) list =
  let i v = float_of_int v in
  [ ("compile_s", Time, s.Snapshot.compile_s) ]
  @ List.concat_map
      (fun (sp : Snapshot.span) ->
        [ ("span." ^ sp.Snapshot.sp_name ^ ".total_s", Time, sp.Snapshot.sp_total_s);
          ("span." ^ sp.Snapshot.sp_name ^ ".calls", Counter, i sp.Snapshot.sp_calls)
        ])
      s.Snapshot.spans
  @ List.map
      (fun (name, v) -> ("counter." ^ name, counter_kind name, i v))
      s.Snapshot.counters
  @ List.concat_map
      (fun (l : Snapshot.cache_level) ->
        [ ("cache." ^ l.Snapshot.cl_name ^ ".hits", Counter, i l.Snapshot.cl_hits);
          ("cache." ^ l.Snapshot.cl_name ^ ".misses", Counter, i l.Snapshot.cl_misses)
        ])
      s.Snapshot.cache_levels
  @ [ ("cache.dram", Counter, i s.Snapshot.dram_accesses);
      ("traffic.read_bytes", Counter, i s.Snapshot.traffic.Snapshot.tr_read_bytes);
      ("traffic.write_bytes", Counter, i s.Snapshot.traffic.Snapshot.tr_write_bytes);
      ("traffic.staged_bytes", Counter, i s.Snapshot.traffic.Snapshot.tr_staged_bytes);
      ("ast.loops", Counter, i s.Snapshot.ast.Snapshot.ast_loops);
      ("ast.kernels", Counter, i s.Snapshot.ast.Snapshot.ast_kernels);
      ("ast.nodes", Counter, i s.Snapshot.ast.Snapshot.ast_nodes)
    ]
  @ (match s.Snapshot.speedup with
    | Some f -> [ ("speedup", Noisy, f) ]
    | None -> [])

let diff_snapshots th (base : Snapshot.t) (cand : Snapshot.t) =
  let mk metric kind b c cls =
    { d_workload = base.Snapshot.workload;
      d_flow = base.Snapshot.flow;
      d_metric = metric;
      d_kind = kind;
      d_base = b;
      d_cand = c;
      d_class = cls
    }
  in
  let bm = metrics_of base and cm = metrics_of cand in
  let cand_tbl = Hashtbl.create 64 in
  List.iter (fun (name, kind, v) -> Hashtbl.replace cand_tbl name (kind, v)) cm;
  let matched =
    List.map
      (fun (name, kind, b) ->
        match Hashtbl.find_opt cand_tbl name with
        | None -> mk name kind b 0.0 Removed
        | Some (_, c) ->
            Hashtbl.remove cand_tbl name;
            let cls =
              match kind with
              | Time -> classify_time th ~base:b ~cand:c
              | Counter ->
                  classify_counter ~base:(int_of_float b) ~cand:(int_of_float c)
              | Noisy -> Unchanged
            in
            mk name kind b c cls)
      bm
  in
  let added =
    List.filter_map
      (fun (name, kind, c) ->
        if Hashtbl.mem cand_tbl name then Some (mk name kind 0.0 c Added)
        else None)
      cm
  in
  matched @ added

let diff ?(thresholds = default_thresholds) ~base ~cand () =
  let key (s : Snapshot.t) = (s.Snapshot.workload, s.Snapshot.flow) in
  let cand_tbl = Hashtbl.create 32 in
  List.iter (fun s -> Hashtbl.replace cand_tbl (key s) s) cand.snapshots;
  let matched =
    List.concat_map
      (fun (b : Snapshot.t) ->
        match Hashtbl.find_opt cand_tbl (key b) with
        | Some c ->
            Hashtbl.remove cand_tbl (key b);
            diff_snapshots thresholds b c
        | None ->
            (* the whole pair vanished from the candidate: gate *)
            [ { d_workload = b.Snapshot.workload;
                d_flow = b.Snapshot.flow;
                d_metric = "snapshot.present";
                d_kind = Counter;
                d_base = 1.0;
                d_cand = 0.0;
                d_class = Regressed
              } ])
      base.snapshots
  in
  let added =
    List.filter_map
      (fun (c : Snapshot.t) ->
        if Hashtbl.mem cand_tbl (key c) then
          Some
            { d_workload = c.Snapshot.workload;
              d_flow = c.Snapshot.flow;
              d_metric = "snapshot.present";
              d_kind = Counter;
              d_base = 0.0;
              d_cand = 1.0;
              d_class = Added
            }
        else None)
      cand.snapshots
  in
  matched @ added

(* A delta gates when it is a plain regression, or when a gating-kind
   metric silently vanished from the candidate: a counter or time
   metric present in the base but absent in the candidate means lost
   coverage (an instrumented path no longer runs, a span renamed), and
   letting it "pass" would hide exactly the drift the gate exists to
   catch. Direction matters: [Removed] gates, [Added] never does, and a
   [Noisy] metric (e.g. the optional speedup field) may come and go. *)
let gates d =
  match d.d_class with
  | Regressed -> true
  | Removed -> d.d_kind <> Noisy
  | Improved | Unchanged | Added -> false

let regressions deltas = List.filter gates deltas

let gate deltas = if regressions deltas = [] then 0 else 1

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let class_name = function
  | Improved -> "improved"
  | Unchanged -> "unchanged"
  | Regressed -> "REGRESSED"
  | Added -> "added"
  | Removed -> "removed"

let kind_name = function
  | Time -> "time"
  | Counter -> "counter"
  | Noisy -> "noisy"

let value_str kind v =
  match kind with
  | Time -> Printf.sprintf "%.4f" v
  | Counter -> Printf.sprintf "%.0f" v
  | Noisy -> Printf.sprintf "%.4g" v

let summary_table deltas =
  let b = Buffer.create 2048 in
  let interesting = List.filter (fun d -> d.d_class <> Unchanged) deltas in
  let count cls = List.length (List.filter (fun d -> d.d_class = cls) deltas) in
  if interesting = [] then
    Buffer.add_string b "all metrics unchanged within thresholds\n"
  else begin
    let rows =
      List.map
        (fun d ->
          [ d.d_workload;
            d.d_flow;
            d.d_metric;
            value_str d.d_kind d.d_base;
            value_str d.d_kind d.d_cand;
            class_name d.d_class
          ])
        interesting
    in
    let header = [ "workload"; "flow"; "metric"; "base"; "cand"; "class" ] in
    let all = header :: rows in
    let widths =
      List.fold_left
        (fun acc row ->
          List.mapi
            (fun i cell -> max (List.nth acc i) (String.length cell))
            row)
        (List.map (fun _ -> 0) header)
        all
    in
    let emit row =
      List.iteri
        (fun i cell ->
          Buffer.add_string b
            (Printf.sprintf "%s%-*s" (if i > 0 then "  " else "  ")
               (List.nth widths i) cell))
        row;
      Buffer.add_char b '\n'
    in
    emit header;
    emit (List.map (fun w -> String.make w '-') widths);
    List.iter emit rows
  end;
  Buffer.add_string b
    (Printf.sprintf
       "%d metrics compared: %d improved, %d unchanged, %d regressed, %d \
        added, %d removed\n"
       (List.length deltas) (count Improved) (count Unchanged) (count Regressed)
       (count Added) (count Removed));
  Buffer.contents b

let deltas_json ?(thresholds = default_thresholds) deltas =
  let open Snapshot.Json in
  let count cls = List.length (List.filter (fun d -> d.d_class = cls) deltas) in
  let delta_obj d =
    Obj
      [ ("workload", Str d.d_workload);
        ("flow", Str d.d_flow);
        ("metric", Str d.d_metric);
        ("kind", Str (kind_name d.d_kind));
        ("base", Num d.d_base);
        ("cand", Num d.d_cand);
        ("class", Str (String.lowercase_ascii (class_name d.d_class)))
      ]
  in
  to_string
    (Obj
       [ ("schema_version", Num (float_of_int schema_version));
         ( "thresholds",
           Obj
             [ ("max_time_ratio", Num thresholds.max_time_ratio);
               ("time_floor_s", Num thresholds.time_floor_s)
             ] );
         ( "summary",
           Obj
             [ ("compared", Num (float_of_int (List.length deltas)));
               ("improved", Num (float_of_int (count Improved)));
               ("unchanged", Num (float_of_int (count Unchanged)));
               ("regressed", Num (float_of_int (count Regressed)));
               ("added", Num (float_of_int (count Added)));
               ("removed", Num (float_of_int (count Removed)))
             ] );
         ( "deltas",
           Arr
             (List.filter_map
                (fun d ->
                  if d.d_class = Unchanged then None else Some (delta_obj d))
                deltas) )
       ])
