(* Shared JSON primitives for the observability layer.

   One escaper for every JSON producer in the tree (Obs exporters,
   Events JSONL, Snapshot files, the log and OpenMetrics renderers, the
   serve daemon), one typed payload value, and the minimal JSON
   document parser/printer that used to live inside Snapshot. Keeping
   them here, below Obs in the dependency graph, means every module
   escapes strings byte-identically. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Typed payload values (shared by Events and Log)                     *)
(* ------------------------------------------------------------------ *)

type value = S of string | I of int | F of float | B of bool

(* Floats always carry a '.' or exponent so a raw-token parser can tell
   them from ints; "%.17g" keeps the round trip exact. *)
let float_repr f =
  if Float.is_nan f then "\"nan\""
  else if f = infinity then "\"inf\""
  else if f = neg_infinity then "\"-inf\""
  else begin
    let s = Printf.sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"
  end

let value_json = function
  | S s -> Printf.sprintf "\"%s\"" (escape s)
  | I i -> string_of_int i
  | F f -> float_repr f
  | B b -> string_of_bool b

let value_to_string = function
  | S s -> s
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%g" f
  | B b -> string_of_bool b

(* ------------------------------------------------------------------ *)
(* Minimal JSON documents: enough for the snapshot schema and the      *)
(* serve daemon's request bodies; exact float round-trip via %.17g.    *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  (* %.17g round-trips every finite double exactly; integral values
     print without an exponent so counters stay readable. *)
  let num_to_string f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f

  let rec add buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool true -> Buffer.add_string buf "true"
    | Bool false -> Buffer.add_string buf "false"
    | Num f -> Buffer.add_string buf (num_to_string f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | Arr l ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            add buf v)
          l;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            add buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string j =
    let b = Buffer.create 1024 in
    add b j;
    Buffer.contents b

  exception Bad of string

  let parse_exn (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some d when d = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let hex_digit c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail "bad \\u escape"
    in
    let add_utf8 b code =
      if code < 0x80 then Buffer.add_char b (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
      end
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
            advance ();
            (match peek () with
            | Some '"' -> Buffer.add_char b '"'; advance ()
            | Some '\\' -> Buffer.add_char b '\\'; advance ()
            | Some '/' -> Buffer.add_char b '/'; advance ()
            | Some 'b' -> Buffer.add_char b '\b'; advance ()
            | Some 'f' -> Buffer.add_char b '\012'; advance ()
            | Some 'n' -> Buffer.add_char b '\n'; advance ()
            | Some 'r' -> Buffer.add_char b '\r'; advance ()
            | Some 't' -> Buffer.add_char b '\t'; advance ()
            | Some 'u' ->
                advance ();
                let code = ref 0 in
                for _ = 1 to 4 do
                  match peek () with
                  | Some c ->
                      code := (!code * 16) + hex_digit c;
                      advance ()
                  | None -> fail "truncated \\u escape"
                done;
                add_utf8 b !code
            | _ -> fail "bad escape");
            go ()
        | Some c ->
            Buffer.add_char b c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> num_char c | None -> false) do
        advance ()
      done;
      let text = String.sub s start (!pos - start) in
      match float_of_string_opt text with
      | Some f -> Num f
      | None -> fail (Printf.sprintf "bad number %S" text)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let key = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((key, v) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((key, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            members []
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elems (v :: acc)
              | Some ']' ->
                  advance ();
                  Arr (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            elems []
          end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('0' .. '9' | '-') -> parse_number ()
      | _ -> fail "unexpected character"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let parse s = try Ok (parse_exn s) with Bad msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end
