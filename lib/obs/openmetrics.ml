(* OpenMetrics v1 text exposition of the Obs registries (see
   openmetrics.mli).

   Layout is deterministic so scrapes are diffable and the golden test
   can pin exact text: caller-supplied gauge/counter families first (in
   the given order — the daemon's process gauges), then every Obs
   counter as its own counter family (sorted by name), then the two
   labeled span families, then every histogram (sorted by name), then
   the mandatory "# EOF" terminator. *)

type mtype = Counter | Gauge

type family = {
  fam_name : string;  (* full exposition name, e.g. "memcomp_uptime_seconds" *)
  fam_help : string;
  fam_type : mtype;
  fam_samples : ((string * string) list * float) list;
}

let prefix = "memcomp_"

(* Metric names admit [a-zA-Z0-9_:] only; dotted Obs names map onto
   underscores ("fm.eliminate" -> "fm_eliminate"). *)
let sanitize s =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
    s

(* Label values escape only backslash, double-quote and newline (the
   OpenMetrics rules — narrower than JSON escaping). *)
let escape_label s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let labels_text = function
  | [] -> ""
  | kvs ->
      let b = Buffer.create 64 in
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "%s=\"%s\"" k (escape_label v)))
        kvs;
      Buffer.add_char b '}';
      Buffer.contents b

let type_text = function Counter -> "counter" | Gauge -> "gauge"

let add_meta b name help typ =
  Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name (escape_label help));
  Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name (type_text typ))

let add_family b f =
  add_meta b f.fam_name f.fam_help f.fam_type;
  let suffix = match f.fam_type with Counter -> "_total" | Gauge -> "" in
  List.iter
    (fun (labels, v) ->
      Buffer.add_string b
        (Printf.sprintf "%s%s%s %s\n" f.fam_name suffix (labels_text labels) (number v)))
    f.fam_samples

let render ?(extra = []) () =
  let b = Buffer.create 8192 in
  List.iter (add_family b) extra;
  (* Obs counters: one single-sample counter family each. *)
  List.iter
    (fun (name, v) ->
      add_family b
        { fam_name = prefix ^ sanitize name;
          fam_help = Printf.sprintf "Obs counter %s" name;
          fam_type = Counter;
          fam_samples = [ ([], float_of_int v) ]
        })
    (Obs.counters_alist ());
  (* Span aggregates: two labeled counter families. *)
  let spans = List.sort compare (Obs.spans_alist ()) in
  if spans <> [] then begin
    add_family b
      { fam_name = prefix ^ "span_calls";
        fam_help = "Completed calls per Obs span";
        fam_type = Counter;
        fam_samples =
          List.map (fun (n, (calls, _, _)) -> ([ ("span", n) ], float_of_int calls)) spans
      };
    add_family b
      { fam_name = prefix ^ "span_seconds";
        fam_help = "Cumulative wall seconds per Obs span";
        fam_type = Counter;
        fam_samples = List.map (fun (n, (_, total, _)) -> ([ ("span", n) ], total)) spans
      }
  end;
  (* Histograms: cumulative le-buckets up to the highest occupied one,
     then the mandatory +Inf bucket, _count and _sum. *)
  List.iter
    (fun (name, (count, sum, _, _)) ->
      let fam = prefix ^ sanitize name in
      Buffer.add_string b (Printf.sprintf "# HELP %s Obs histogram %s\n" fam name);
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" fam);
      (match Obs.histogram_buckets name with
      | None -> ()
      | Some occ ->
          let last =
            let l = ref 0 in
            Array.iteri (fun i c -> if c > 0 then l := i) occ;
            !l
          in
          let cum = ref 0 in
          for i = 0 to min last (Obs.n_buckets - 2) do
            cum := !cum + occ.(i);
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" fam
                 (number (Obs.bucket_le i))
                 !cum)
          done;
          Buffer.add_string b (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" fam count));
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" fam count);
      Buffer.add_string b (Printf.sprintf "%s_sum %s\n" fam (number sum)))
    (Obs.histograms_alist ());
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

(* --------------------------------------------------------------- *)
(* Scrape-side helper: extract "<family>_total" counter samples      *)
(* (unlabeled) from an exposition — used by the bench load generator *)
(* and tests to check counters against Obs.counters_alist.           *)
(* --------------------------------------------------------------- *)

let unescape_label s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | '\\' -> Buffer.add_char b '\\'
       | 'n' -> Buffer.add_char b '\n'
       | '"' -> Buffer.add_char b '"'
       | c ->
           Buffer.add_char b '\\';
           Buffer.add_char b c);
       i := !i + 2
     end
     else begin
       Buffer.add_char b s.[!i];
       incr i
     end)
  done;
  Buffer.contents b

let parse_counters text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.index_opt line ' ' with
           | None -> None
           | Some sp ->
               let name = String.sub line 0 sp in
               let v = String.sub line (sp + 1) (String.length line - sp - 1) in
               if
                 String.length name > 6
                 && String.sub name (String.length name - 6) 6 = "_total"
                 && not (String.contains name '{')
               then
                 match float_of_string_opt v with
                 | Some f when Float.is_integer f ->
                     Some (String.sub name 0 (String.length name - 6), int_of_float f)
                 | _ -> None
               else None)

let parse_gauges text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.index_opt line ' ' with
           | None -> None
           | Some sp ->
               let name = String.sub line 0 sp in
               let v = String.sub line (sp + 1) (String.length line - sp - 1) in
               let is_counter =
                 String.length name > 6
                 && String.sub name (String.length name - 6) 6 = "_total"
               in
               if is_counter || String.contains name '{' then None
               else
                 match float_of_string_opt v with
                 | Some f -> Some (name, f)
                 | None -> None)
