(** Shared CLI/environment knob resolution used by the drivers
    ([bin/memcomp.ml], [bench/main.ml]) and the test harness.

    Three knobs recur across every executable in the tree, each with a
    command-line spelling that wins over an environment fallback:

    - worker count: [--jobs N] over [MEMCOMP_JOBS], default 1;
    - fuzz seed: [--seed N] over [FUZZ_SEED], default 0;
    - log threshold: [--log-level L] over [MEMCOMP_LOG], default warn;
    - trace ring capacity: [--trace-cap N] over [MEMCOMP_TRACE_CAP],
      default the {!Obs} built-in ring size.

    This module is the single home of those precedence rules, so a new
    subcommand (e.g. [memcomp tune]) inherits them by construction. *)

val resolve_jobs : ?default:int -> int option -> int
(** [resolve_jobs flag] is the worker-domain count: the flag value when
    given, else [MEMCOMP_JOBS] when it parses as an integer, else
    [default] (1). Always at least 1. *)

val seed_env_default : ?default:int -> unit -> int
(** The [FUZZ_SEED] environment value when it parses as an integer,
    else [default] (0). *)

val seed_from_argv : ?default:int -> string array -> int * string array
(** Strip [--seed N] from an argv (so Alcotest or another parser never
    sees it) and return the effective seed: the last [--seed] flag wins
    over the [FUZZ_SEED] environment variable, which wins over
    [default]. Returns the stripped argv alongside. *)

val shrink_from_argv : ?argv:string array -> unit -> bool * string array
(** Strip [--shrink] from an argv and return whether shrinking is
    requested: the flag, or a non-empty/non-false [FUZZ_SHRINK]
    environment value. Compose with {!seed_from_argv} by passing its
    returned argv. *)

val resolve_trace_cap : int option -> int option
(** Trace-ring capacity: the [--trace-cap N] flag value when given,
    else [MEMCOMP_TRACE_CAP] when it parses as an integer, else [None]
    (leave [Obs]'s default in place). Clamped to at least 0. *)

val apply_trace_cap : int option -> unit
(** {!resolve_trace_cap}, applied via [Obs.set_trace_capacity] when a
    cap is configured. Call once at executable start-up, before
    tracing begins. *)

val set_log_level : string option -> (unit, string) result
(** Apply the structured-log threshold: the flag value when given
    (rejecting unknown level names with an error message), else leave
    {!Log}'s own [MEMCOMP_LOG] initialisation in place. *)
