(* Shared CLI/env knob precedence rules (see cli_util.mli). Formerly
   duplicated across bin/memcomp.ml, bench/main.ml and test/harness.ml;
   keep behaviour changes here so every executable agrees. *)

let int_env name =
  match Sys.getenv_opt name with
  | Some s -> int_of_string_opt s
  | None -> None

let resolve_jobs ?(default = 1) = function
  | Some n -> max 1 n
  | None -> (
      match int_env "MEMCOMP_JOBS" with
      | Some n -> max 1 n
      | None -> max 1 default)

let seed_env_default ?(default = 0) () =
  match int_env "FUZZ_SEED" with Some n -> n | None -> default

let seed_from_argv ?(default = 0) argv =
  let env_seed = seed_env_default ~default () in
  let rec strip acc seed = function
    | [] -> (seed, List.rev acc)
    | "--seed" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n -> strip acc n rest
        | None -> strip acc seed rest)
    | a :: rest -> strip (a :: acc) seed rest
  in
  let seed, args = strip [] env_seed (Array.to_list argv) in
  (seed, Array.of_list args)

let shrink_from_argv ?(argv = Sys.argv) () =
  let env =
    match Sys.getenv_opt "FUZZ_SHRINK" with
    | Some ("" | "0" | "false" | "no") | None -> false
    | Some _ -> true
  in
  let rec strip acc on = function
    | [] -> (on, List.rev acc)
    | "--shrink" :: rest -> strip acc true rest
    | a :: rest -> strip (a :: acc) on rest
  in
  let on, args = strip [] env (Array.to_list argv) in
  (on, Array.of_list args)

let resolve_trace_cap flag =
  let cap =
    match flag with Some n -> Some n | None -> int_env "MEMCOMP_TRACE_CAP"
  in
  Option.map (max 0) cap

let apply_trace_cap flag =
  match resolve_trace_cap flag with
  | Some cap -> Obs.set_trace_capacity cap
  | None -> ()

let set_log_level = function
  | None -> Ok ()
  | Some s -> (
      match Log.level_of_string s with
      | Ok l ->
          Log.set_level l;
          Ok ()
      | Error msg -> Error msg)
