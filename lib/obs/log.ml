(* Leveled structured JSONL logging (see log.mli).

   One line per record: {"ts":..,"level":..,"cat":..,"msg":..,
   "req":..?,"args":{..}}. Unlike Obs/Events, logging is not gated on
   Obs.is_enabled — it has its own level threshold, initialised from
   MEMCOMP_LOG and overridable per run (--log-level). The default sink
   writes to stderr; the serve daemon and tests install their own. *)

type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" | "warning" -> Ok Warn
  | "error" -> Ok Error
  | other -> Error (Printf.sprintf "unknown log level %S (expected debug|info|warn|error)" other)

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

(* Default threshold: warn, so batch CLI runs stay quiet unless asked.
   MEMCOMP_LOG=<level> raises or lowers it before any line is emitted. *)
let threshold =
  ref
    (match Sys.getenv_opt "MEMCOMP_LOG" with
    | Some s -> ( match level_of_string s with Ok l -> l | Error _ -> Warn)
    | None -> Warn)

let set_level l = threshold := l

let current_level () = !threshold

let would_log l = severity l >= severity !threshold

(* The sink receives one fully-rendered line (no trailing newline).
   Serialised by a mutex so concurrent domains never interleave bytes
   of two records. *)
let mu = Mutex.create ()

let default_sink line =
  prerr_string line;
  prerr_newline ()

let sink = ref default_sink

let set_sink f = sink := f

let reset_sink () = sink := default_sink

let render level ?(cat = "main") msg args =
  let b = Buffer.create 160 in
  Buffer.add_string b
    (Printf.sprintf "{\"ts\":%.6f,\"level\":\"%s\",\"cat\":\"%s\",\"msg\":\"%s\""
       (Unix.gettimeofday ()) (level_to_string level) (Json_util.escape cat)
       (Json_util.escape msg));
  (match Obs.request_id () with
  | Some id -> Buffer.add_string b (Printf.sprintf ",\"req\":\"%s\"" (Json_util.escape id))
  | None -> ());
  if args <> [] then begin
    Buffer.add_string b ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "\"%s\":%s" (Json_util.escape k) (Json_util.value_json v)))
      args;
    Buffer.add_char b '}'
  end;
  Buffer.add_char b '}';
  Buffer.contents b

let log level ?cat msg args =
  if would_log level then begin
    let line = render level ?cat msg args in
    Mutex.lock mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mu)
      (fun () -> !sink line)
  end

let debug ?cat msg args = log Debug ?cat msg args

let info ?cat msg args = log Info ?cat msg args

let warn ?cat msg args = log Warn ?cat msg args

let error ?cat msg args = log Error ?cat msg args
