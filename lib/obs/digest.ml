(* Streaming quantile sketch (see digest.mli).

   Representation: a sorted list of centroids — disjoint value
   intervals [c_min, c_max] with an occupancy count and value sum —
   plus an unsorted insert buffer so [add] is O(1). Flushing sorts the
   buffer and weaves it through the centroid list: a value strictly
   inside an existing interval is absorbed (intervals stay disjoint),
   anything else becomes a singleton. When more than [capacity]
   centroids exist, compression repeatedly merges the adjacent pair of
   least combined occupancy; among k centroids the minimal adjacent
   pair holds at most 2n/(k-1) observations (the k-1 pair sums add up
   to at most 2n), so no compression step ever creates a centroid
   heavier than ceil(2n/capacity).

   The rank-error certificate in [rank_error] follows from
   disjointness: the estimate for a target rank is interpolated inside
   the unique centroid covering that rank, so its true rank is off by
   at most that centroid's occupancy; after cross-digest merges
   (which may overlap intervals) the occupancy of overlapping
   neighbours is added in. *)

type centroid = {
  mutable c_min : float;
  mutable c_max : float;
  mutable c_count : int;
  mutable c_sum : float;
}

type t = {
  cap : int;
  mutable cs : centroid list;  (* sorted by c_min *)
  mutable ncs : int;
  mutable n : int;
  mutable buf : float list;  (* pending, unsorted *)
  mutable nbuf : int;
}

let create ?(capacity = 128) () =
  { cap = max 8 capacity; cs = []; ncs = 0; n = 0; buf = []; nbuf = 0 }

let capacity t = t.cap

let count t = t.n

let singleton v = { c_min = v; c_max = v; c_count = 1; c_sum = v }

(* Merge right centroid [b] into left centroid [a] (they are adjacent
   in c_min order, so the union interval is [a.c_min, max of maxes]). *)
let absorb_right a b =
  a.c_max <- Float.max a.c_max b.c_max;
  a.c_count <- a.c_count + b.c_count;
  a.c_sum <- a.c_sum +. b.c_sum

let compress t =
  if t.ncs > t.cap then begin
    let arr = Array.of_list t.cs in
    let len = ref (Array.length arr) in
    while !len > t.cap do
      let best = ref 0 and best_w = ref max_int in
      for i = 0 to !len - 2 do
        let w = arr.(i).c_count + arr.(i + 1).c_count in
        if w < !best_w then begin
          best := i;
          best_w := w
        end
      done;
      absorb_right arr.(!best) arr.(!best + 1);
      for i = !best + 1 to !len - 2 do
        arr.(i) <- arr.(i + 1)
      done;
      decr len
    done;
    t.cs <- Array.to_list (Array.sub arr 0 !len);
    t.ncs <- !len
  end

(* Weave the sorted pending values through the sorted centroid list:
   absorb values landing inside an existing interval, keep everything
   else as a singleton. *)
let flush t =
  if t.nbuf > 0 then begin
    let vs = List.sort Float.compare t.buf in
    t.buf <- [];
    t.nbuf <- 0;
    let rec weave acc cs vs =
      match (cs, vs) with
      | cs, [] -> List.rev_append acc cs
      | [], v :: vs -> weave (singleton v :: acc) [] vs
      | (c :: cs' as cs), v :: vs' ->
          if v < c.c_min then weave (singleton v :: acc) cs vs'
          else if v <= c.c_max then begin
            c.c_count <- c.c_count + 1;
            c.c_sum <- c.c_sum +. v;
            weave acc cs vs'
          end
          else weave (c :: acc) cs' vs
    in
    t.cs <- weave [] t.cs vs;
    t.ncs <- List.length t.cs;
    compress t
  end

let add t v =
  if Float.is_finite v then begin
    t.buf <- v :: t.buf;
    t.nbuf <- t.nbuf + 1;
    t.n <- t.n + 1;
    if t.nbuf >= t.cap then flush t
  end

let add_list t vs = List.iter (add t) vs

let of_list ?capacity vs =
  let t = create ?capacity () in
  add_list t vs;
  t

let merge a b =
  flush a;
  flush b;
  let t = create ~capacity:(max a.cap b.cap) () in
  let copy c = { c with c_min = c.c_min } in
  let rec weave acc xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> List.rev_append acc (List.map copy rest)
    | x :: xs', y :: ys' ->
        if x.c_min <= y.c_min then weave (copy x :: acc) xs' ys
        else weave (copy y :: acc) xs ys'
  in
  t.cs <- weave [] a.cs b.cs;
  t.ncs <- a.ncs + b.ncs;
  t.n <- a.n + b.n;
  compress t;
  t

let sum t =
  flush t;
  List.fold_left (fun acc c -> acc +. c.c_sum) 0.0 t.cs

let minimum t =
  flush t;
  match t.cs with [] -> None | c :: _ -> Some c.c_min

let maximum t =
  flush t;
  match t.cs with
  | [] -> None
  | cs -> Some (List.fold_left (fun acc c -> Float.max acc c.c_max) neg_infinity cs)

let mean t = if t.n = 0 then None else Some (sum t /. float_of_int t.n)

let trimmed_mean t =
  if t.n = 0 then 0.0
  else if t.n <= 2 then sum t /. float_of_int t.n
  else
    match (minimum t, maximum t) with
    | Some mn, Some mx -> (sum t -. mn -. mx) /. float_of_int (t.n - 2)
    | _ -> 0.0

let quantile t q =
  flush t;
  if t.n = 0 then None
  else begin
    let r = Float.max 0.0 (Float.min 1.0 q) *. float_of_int (t.n - 1) in
    (* centroid covering 0-based ranks [base, base + count - 1]; a
       fractional rank between two centroids interpolates across the
       one-position gap between the left end value and the right start *)
    let rec go base prev = function
      | [] -> ( match prev with Some (_, v) -> v | None -> 0.0)
      | c :: rest ->
          let lo = float_of_int base
          and hi = float_of_int (base + c.c_count - 1) in
          if r < lo then
            match prev with
            | Some (pr, pv) -> pv +. ((c.c_min -. pv) *. (r -. pr) /. (lo -. pr))
            | None -> c.c_min
          else if r <= hi then
            if c.c_count = 1 then c.c_sum
            else c.c_min +. ((c.c_max -. c.c_min) *. (r -. lo) /. (hi -. lo))
          else go (base + c.c_count) (Some (hi, c.c_max)) rest
    in
    Some (go 0 None t.cs)
  end

let quantiles t qs =
  if t.n = 0 then []
  else List.map (fun q -> match quantile t q with Some v -> v | None -> 0.0) qs

let rank_error t =
  flush t;
  let cs = Array.of_list t.cs in
  let k = Array.length cs in
  let worst = ref 0 in
  for j = 0 to k - 1 do
    let c = cs.(j) in
    let own = if c.c_min = c.c_max then 0 else c.c_count - 1 in
    let overlap = ref 0 in
    for i = 0 to k - 1 do
      if i <> j && cs.(i).c_min < c.c_max && cs.(i).c_max > c.c_min then
        overlap := !overlap + cs.(i).c_count
    done;
    if own + !overlap > !worst then worst := own + !overlap
  done;
  !worst

let centroids t =
  flush t;
  t.ncs
