(* Compiler-wide observability: hierarchical timed spans, monotonic
   counters and log-scale histograms, with three exporters (human stats
   table, machine JSON, Chrome trace_event JSON).

   Everything is off by default: each entry point starts with a single
   flag load and branch, so instrumented hot paths (FM elimination,
   cache probes, ...) pay essentially nothing when observability is
   disabled.

   Domain safety: all registries (counters, span stats, histograms and
   the span-event ring) live behind one mutex, so compiles running
   concurrently across OCaml 5 domains — the serve daemon's normal
   operating mode — accumulate exact totals. Span nesting depth and
   the request-correlation id are domain-local (DLS), so spans nest
   per domain and every recorded span/event can be attributed to the
   request its domain was serving.

   Counter naming scheme: dotted lowercase [layer.entity[.metric]],
   e.g. "fm.eliminate", "bmap.apply_range", "cache.L1.hits",
   "pipeline.search_steps". Span names follow the same scheme and
   nest naturally ("pipeline.compile" > "pipeline.deps" >
   "deps.compute" > ...). *)

let enabled = ref false

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type span_stat = {
  mutable calls : int;
  mutable total_s : float;
  mutable max_s : float;
}

let n_buckets = 32

type histogram = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
      (* bucket 0: v < 1; bucket i >= 1: 2^(i-1) <= v < 2^i (log2 scale) *)
}

type event = {
  ev_name : string;
  ev_start_s : float;  (* relative to the epoch set by [reset] *)
  ev_dur_s : float;
  ev_depth : int;
  ev_req : string option;  (* request id of the recording domain *)
}

(* One mutex guards every registry below. Lock order: this mutex may be
   held while reset hooks run (so hooks must not call back into Obs),
   and is never taken while another observability lock is held. *)
let mu = Mutex.create ()

let with_lock f =
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      v
  | exception e ->
      Mutex.unlock mu;
      raise e

let counters : (string, int ref) Hashtbl.t = Hashtbl.create 64

let span_stats : (string, span_stat) Hashtbl.t = Hashtbl.create 64

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 64

(* Completed spans in completion order, kept in a bounded ring so a
   long-running daemon keeps the newest intervals instead of going
   silent once full. *)
let events : event Queue.t = Queue.create ()

let max_events = ref 1_000_000

let set_trace_capacity n =
  with_lock (fun () ->
      max_events := max 1 n;
      while Queue.length events > !max_events do
        ignore (Queue.pop events)
      done)

(* Span nesting depth is domain-local: concurrent requests nest their
   own spans without seeing each other's depth. *)
let depth_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

(* Request-correlation id: set around each served request; attached to
   every span interval and structured event recorded by this domain,
   and to every log line. *)
let req_key : string option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let request_id () = !(Domain.DLS.get req_key)

let set_request_id r = Domain.DLS.get req_key := r

let with_request_id id f =
  let r = Domain.DLS.get req_key in
  let old = !r in
  r := Some id;
  Fun.protect ~finally:(fun () -> r := old) f

let now () = Unix.gettimeofday ()

let epoch = ref (now ())

(* Reset hooks let sibling modules (Events) clear their buffers inside
   the same critical section, so a reset between requests cannot leak a
   prior request's trace into the next scrape. Hooks must not call back
   into Obs. *)
let reset_hooks : (unit -> unit) list ref = ref []

let on_reset f = reset_hooks := f :: !reset_hooks

let reset () =
  with_lock (fun () ->
      Hashtbl.reset counters;
      Hashtbl.reset span_stats;
      Hashtbl.reset histograms;
      Queue.clear events;
      epoch := now ();
      List.iter (fun f -> f ()) !reset_hooks);
  Domain.DLS.get depth_key := 0

let elapsed_s () = now () -. !epoch

let enable () = enabled := true

let disable () = enabled := false

let is_enabled () = !enabled

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let add name n =
  if !enabled then
    with_lock (fun () ->
        match Hashtbl.find_opt counters name with
        | Some r -> r := !r + n
        | None -> Hashtbl.add counters name (ref n))

let count name = add name 1

let counter_value name =
  with_lock (fun () ->
      match Hashtbl.find_opt counters name with Some r -> !r | None -> 0)

let counters_alist () =
  with_lock (fun () ->
      Hashtbl.fold (fun name r acc -> (name, !r) :: acc) counters [])
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let bucket_of v =
  if v < 1.0 then 0
  else begin
    let rec go i x = if x < 2.0 || i >= n_buckets - 1 then i else go (i + 1) (x /. 2.0) in
    go 1 v
  end

(* Upper bound of bucket [i] ([infinity] for the last, which absorbs
   every larger value); used by the OpenMetrics exposition. *)
let bucket_le i = if i >= n_buckets - 1 then infinity else Float.of_int (1 lsl i)

let observe name v =
  if !enabled then
    with_lock (fun () ->
        let h =
          match Hashtbl.find_opt histograms name with
          | Some h -> h
          | None ->
              let h =
                { h_count = 0;
                  h_sum = 0.0;
                  h_min = infinity;
                  h_max = neg_infinity;
                  h_buckets = Array.make n_buckets 0
                }
              in
              Hashtbl.add histograms name h;
              h
        in
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum +. v;
        if v < h.h_min then h.h_min <- v;
        if v > h.h_max then h.h_max <- v;
        let b = bucket_of v in
        h.h_buckets.(b) <- h.h_buckets.(b) + 1)

let observe_int name v = observe name (float_of_int v)

let histogram_summary name =
  with_lock (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> Some (h.h_count, h.h_sum, h.h_min, h.h_max)
      | None -> None)

let histogram_buckets name =
  with_lock (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> Some (Array.copy h.h_buckets)
      | None -> None)

let histograms_alist () =
  with_lock (fun () ->
      Hashtbl.fold
        (fun name h acc -> (name, (h.h_count, h.h_sum, h.h_min, h.h_max)) :: acc)
        histograms [])
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let record_span name start_abs dur ~depth ~req =
  with_lock (fun () ->
      (match Hashtbl.find_opt span_stats name with
      | Some s ->
          s.calls <- s.calls + 1;
          s.total_s <- s.total_s +. dur;
          if dur > s.max_s then s.max_s <- dur
      | None ->
          Hashtbl.add span_stats name { calls = 1; total_s = dur; max_s = dur });
      Queue.push
        { ev_name = name;
          ev_start_s = start_abs -. !epoch;
          ev_dur_s = dur;
          ev_depth = depth;
          ev_req = req
        }
        events;
      if Queue.length events > !max_events then ignore (Queue.pop events))

let span name f =
  if not !enabled then f ()
  else begin
    let d = Domain.DLS.get depth_key in
    let start = now () in
    incr d;
    let finish () =
      decr d;
      record_span name start (now () -. start) ~depth:!d ~req:(request_id ())
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let span_calls name =
  with_lock (fun () ->
      match Hashtbl.find_opt span_stats name with Some s -> s.calls | None -> 0)

let span_total_s name =
  with_lock (fun () ->
      match Hashtbl.find_opt span_stats name with
      | Some s -> s.total_s
      | None -> 0.0)

let spans_alist () =
  with_lock (fun () ->
      Hashtbl.fold
        (fun name s acc -> (name, (s.calls, s.total_s, s.max_s)) :: acc)
        span_stats [])
  |> List.sort (fun (na, (_, ta, _)) (nb, (_, tb, _)) ->
         match compare tb ta with 0 -> compare na nb | c -> c)

let recorded_events ?req () =
  with_lock (fun () ->
      Queue.fold
        (fun acc e ->
          match req with
          | Some r when e.ev_req <> Some r -> acc
          | _ -> e :: acc)
        [] events)
  |> List.rev

let trace_events ?req () =
  List.map
    (fun e -> (e.ev_name, e.ev_start_s, e.ev_dur_s, e.ev_depth))
    (recorded_events ?req ())

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let stats_table () =
  let b = Buffer.create 4096 in
  let spans = spans_alist () in
  if spans <> [] then begin
    Buffer.add_string b "== spans (wall time per pass) ==\n";
    let w =
      List.fold_left (fun acc (n, _) -> max acc (String.length n)) 4 spans
    in
    Buffer.add_string b
      (Printf.sprintf "  %-*s %10s %12s %12s %12s\n" w "name" "calls"
         "total ms" "mean us" "max us");
    List.iter
      (fun (name, (calls, total, mx)) ->
        Buffer.add_string b
          (Printf.sprintf "  %-*s %10d %12.3f %12.1f %12.1f\n" w name calls
             (total *. 1e3)
             (total /. float_of_int (max 1 calls) *. 1e6)
             (mx *. 1e6)))
      spans
  end;
  let cs = counters_alist () in
  if cs <> [] then begin
    Buffer.add_string b "== counters ==\n";
    let w = List.fold_left (fun acc (n, _) -> max acc (String.length n)) 4 cs in
    List.iter
      (fun (name, v) -> Buffer.add_string b (Printf.sprintf "  %-*s %12d\n" w name v))
      cs
  end;
  let hs = histograms_alist () in
  if hs <> [] then begin
    Buffer.add_string b "== histograms ==\n";
    let w = List.fold_left (fun acc (n, _) -> max acc (String.length n)) 4 hs in
    Buffer.add_string b
      (Printf.sprintf "  %-*s %10s %12s %10s %10s %10s\n" w "name" "count" "sum"
         "min" "mean" "max");
    List.iter
      (fun (name, (count, sum, mn, mx)) ->
        Buffer.add_string b
          (Printf.sprintf "  %-*s %10d %12.0f %10.1f %10.1f %10.1f\n" w name
             count sum mn
             (sum /. float_of_int (max 1 count))
             mx))
      hs
  end;
  if spans = [] && cs = [] && hs = [] then
    Buffer.add_string b "(no observability data recorded)\n";
  Buffer.contents b

let escape_json = Json_util.escape

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let stats_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"spans\":{";
  List.iteri
    (fun i (name, (calls, total, mx)) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\"%s\":{\"calls\":%d,\"total_s\":%s,\"max_s\":%s}"
           (escape_json name) calls (json_float total) (json_float mx)))
    (spans_alist ());
  Buffer.add_string b "},\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (escape_json name) v))
    (counters_alist ());
  Buffer.add_string b "},\"histograms\":{";
  List.iteri
    (fun i (name, (count, sum, mn, mx)) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\"%s\":{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s}"
           (escape_json name) count (json_float sum) (json_float mn)
           (json_float mx)))
    (histograms_alist ());
  Buffer.add_string b "}}";
  Buffer.contents b

(* Chrome trace_event format: complete ("X") events with microsecond
   timestamps, loadable in about://tracing or https://ui.perfetto.dev.
   Counters ride along as one final "C" event so they are visible in the
   trace viewer too. *)
let chrome_trace () =
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\"traceEvents\":[";
  Buffer.add_string b
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"memcomp\"}}";
  let last_ts = ref 0.0 in
  List.iter
    (fun e ->
      let ts = e.ev_start_s *. 1e6 in
      if ts +. (e.ev_dur_s *. 1e6) > !last_ts then
        last_ts := ts +. (e.ev_dur_s *. 1e6);
      Buffer.add_string b
        (Printf.sprintf
           ",{\"name\":\"%s\",\"cat\":\"pass\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"depth\":%d}}"
           (escape_json e.ev_name) ts (e.ev_dur_s *. 1e6) e.ev_depth))
    (recorded_events ());
  let cs = counters_alist () in
  if cs <> [] then begin
    Buffer.add_string b
      (Printf.sprintf
         ",{\"name\":\"counters\",\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":%.3f,\"args\":{"
         !last_ts);
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":%d" (escape_json name) v))
      cs;
    Buffer.add_string b "}}"
  end;
  Buffer.add_string b "]}";
  Buffer.contents b

let write_chrome_trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_trace ()))
