(* Compiler-wide observability: hierarchical timed spans, monotonic
   counters and log-scale histograms, with three exporters (human stats
   table, machine JSON, Chrome trace_event JSON).

   Everything is off by default: each entry point starts with a single
   flag load and branch, so instrumented hot paths (FM elimination,
   cache probes, ...) pay essentially nothing when observability is
   disabled.

   Counter naming scheme: dotted lowercase [layer.entity[.metric]],
   e.g. "fm.eliminate", "bmap.apply_range", "cache.L1.hits",
   "pipeline.search_steps". Span names follow the same scheme and
   nest naturally ("pipeline.compile" > "pipeline.deps" >
   "deps.compute" > ...). *)

let enabled = ref false

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type span_stat = {
  mutable calls : int;
  mutable total_s : float;
  mutable max_s : float;
}

let n_buckets = 32

type histogram = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
      (* bucket 0: v < 1; bucket i >= 1: 2^(i-1) <= v < 2^i (log2 scale) *)
}

type event = {
  ev_name : string;
  ev_start_s : float;  (* relative to the epoch set by [reset] *)
  ev_dur_s : float;
  ev_depth : int;
}

let counters : (string, int ref) Hashtbl.t = Hashtbl.create 64

let span_stats : (string, span_stat) Hashtbl.t = Hashtbl.create 64

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 64

(* Completed spans in reverse completion order, capped so a runaway
   compile cannot exhaust memory through its own instrumentation. *)
let events : event list ref = ref []

let n_events = ref 0

let max_events = 1_000_000

let depth = ref 0

let now () = Unix.gettimeofday ()

let epoch = ref (now ())

let reset () =
  Hashtbl.reset counters;
  Hashtbl.reset span_stats;
  Hashtbl.reset histograms;
  events := [];
  n_events := 0;
  depth := 0;
  epoch := now ()

let elapsed_s () = now () -. !epoch

let enable () = enabled := true

let disable () = enabled := false

let is_enabled () = !enabled

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let add name n =
  if !enabled then
    match Hashtbl.find_opt counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.add counters name (ref n)

let count name = add name 1

let counter_value name =
  match Hashtbl.find_opt counters name with Some r -> !r | None -> 0

let counters_alist () =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) counters []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let bucket_of v =
  if v < 1.0 then 0
  else begin
    let rec go i x = if x < 2.0 || i >= n_buckets - 1 then i else go (i + 1) (x /. 2.0) in
    go 1 v
  end

let observe name v =
  if !enabled then begin
    let h =
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
          let h =
            { h_count = 0;
              h_sum = 0.0;
              h_min = infinity;
              h_max = neg_infinity;
              h_buckets = Array.make n_buckets 0
            }
          in
          Hashtbl.add histograms name h;
          h
    in
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let b = bucket_of v in
    h.h_buckets.(b) <- h.h_buckets.(b) + 1
  end

let observe_int name v = observe name (float_of_int v)

let histogram_summary name =
  match Hashtbl.find_opt histograms name with
  | Some h -> Some (h.h_count, h.h_sum, h.h_min, h.h_max)
  | None -> None

let histograms_alist () =
  Hashtbl.fold
    (fun name h acc -> (name, (h.h_count, h.h_sum, h.h_min, h.h_max)) :: acc)
    histograms []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let record_span name start_abs dur =
  (match Hashtbl.find_opt span_stats name with
  | Some s ->
      s.calls <- s.calls + 1;
      s.total_s <- s.total_s +. dur;
      if dur > s.max_s then s.max_s <- dur
  | None -> Hashtbl.add span_stats name { calls = 1; total_s = dur; max_s = dur });
  if !n_events < max_events then begin
    events :=
      { ev_name = name;
        ev_start_s = start_abs -. !epoch;
        ev_dur_s = dur;
        ev_depth = !depth
      }
      :: !events;
    incr n_events
  end

let span name f =
  if not !enabled then f ()
  else begin
    let start = now () in
    incr depth;
    let finish () =
      decr depth;
      record_span name start (now () -. start)
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let span_calls name =
  match Hashtbl.find_opt span_stats name with Some s -> s.calls | None -> 0

let span_total_s name =
  match Hashtbl.find_opt span_stats name with Some s -> s.total_s | None -> 0.0

let spans_alist () =
  Hashtbl.fold
    (fun name s acc -> (name, (s.calls, s.total_s, s.max_s)) :: acc)
    span_stats []
  |> List.sort (fun (_, (_, ta, _)) (_, (_, tb, _)) -> compare tb ta)

let trace_events () =
  List.rev_map (fun e -> (e.ev_name, e.ev_start_s, e.ev_dur_s, e.ev_depth)) !events

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let stats_table () =
  let b = Buffer.create 4096 in
  let spans = spans_alist () in
  if spans <> [] then begin
    Buffer.add_string b "== spans (wall time per pass) ==\n";
    let w =
      List.fold_left (fun acc (n, _) -> max acc (String.length n)) 4 spans
    in
    Buffer.add_string b
      (Printf.sprintf "  %-*s %10s %12s %12s %12s\n" w "name" "calls"
         "total ms" "mean us" "max us");
    List.iter
      (fun (name, (calls, total, mx)) ->
        Buffer.add_string b
          (Printf.sprintf "  %-*s %10d %12.3f %12.1f %12.1f\n" w name calls
             (total *. 1e3)
             (total /. float_of_int (max 1 calls) *. 1e6)
             (mx *. 1e6)))
      spans
  end;
  let cs = counters_alist () in
  if cs <> [] then begin
    Buffer.add_string b "== counters ==\n";
    let w = List.fold_left (fun acc (n, _) -> max acc (String.length n)) 4 cs in
    List.iter
      (fun (name, v) -> Buffer.add_string b (Printf.sprintf "  %-*s %12d\n" w name v))
      cs
  end;
  let hs = histograms_alist () in
  if hs <> [] then begin
    Buffer.add_string b "== histograms ==\n";
    let w = List.fold_left (fun acc (n, _) -> max acc (String.length n)) 4 hs in
    Buffer.add_string b
      (Printf.sprintf "  %-*s %10s %12s %10s %10s %10s\n" w "name" "count" "sum"
         "min" "mean" "max");
    List.iter
      (fun (name, (count, sum, mn, mx)) ->
        Buffer.add_string b
          (Printf.sprintf "  %-*s %10d %12.0f %10.1f %10.1f %10.1f\n" w name
             count sum mn
             (sum /. float_of_int (max 1 count))
             mx))
      hs
  end;
  if spans = [] && cs = [] && hs = [] then
    Buffer.add_string b "(no observability data recorded)\n";
  Buffer.contents b

let escape_json s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let stats_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"spans\":{";
  List.iteri
    (fun i (name, (calls, total, mx)) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\"%s\":{\"calls\":%d,\"total_s\":%s,\"max_s\":%s}"
           (escape_json name) calls (json_float total) (json_float mx)))
    (spans_alist ());
  Buffer.add_string b "},\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (escape_json name) v))
    (counters_alist ());
  Buffer.add_string b "},\"histograms\":{";
  List.iteri
    (fun i (name, (count, sum, mn, mx)) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\"%s\":{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s}"
           (escape_json name) count (json_float sum) (json_float mn)
           (json_float mx)))
    (histograms_alist ());
  Buffer.add_string b "}}";
  Buffer.contents b

(* Chrome trace_event format: complete ("X") events with microsecond
   timestamps, loadable in about://tracing or https://ui.perfetto.dev.
   Counters ride along as one final "C" event so they are visible in the
   trace viewer too. *)
let chrome_trace () =
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\"traceEvents\":[";
  Buffer.add_string b
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"memcomp\"}}";
  let last_ts = ref 0.0 in
  List.iter
    (fun e ->
      let ts = e.ev_start_s *. 1e6 in
      if ts +. (e.ev_dur_s *. 1e6) > !last_ts then
        last_ts := ts +. (e.ev_dur_s *. 1e6);
      Buffer.add_string b
        (Printf.sprintf
           ",{\"name\":\"%s\",\"cat\":\"pass\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"depth\":%d}}"
           (escape_json e.ev_name) ts (e.ev_dur_s *. 1e6) e.ev_depth))
    (List.rev !events);
  let cs = counters_alist () in
  if cs <> [] then begin
    Buffer.add_string b
      (Printf.sprintf
         ",{\"name\":\"counters\",\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":%.3f,\"args\":{"
         !last_ts);
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":%d" (escape_json name) v))
      cs;
    Buffer.add_string b "}}"
  end;
  Buffer.add_string b "]}";
  Buffer.contents b

let write_chrome_trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_trace ()))
