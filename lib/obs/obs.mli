(** Compiler-wide observability: hierarchical timed spans, monotonic
    counters and log-scale histograms, plus exporters (human-readable
    stats table, machine-readable JSON, Chrome trace_event JSON).

    Disabled by default; when disabled every entry point is a single
    flag check, so instrumentation in hot paths is essentially free.

    Domain-safe: all registries are guarded by one mutex, so compiles
    running concurrently across OCaml 5 domains (the serve daemon, the
    parallel runtime) accumulate exact totals. Span nesting depth and
    the request-correlation id are domain-local.

    Naming scheme: dotted lowercase [layer.entity[.metric]], e.g.
    ["fm.eliminate"], ["bmap.apply_range"], ["cache.L1.hits"],
    ["pipeline.search_steps"]. *)

(** {1 Lifecycle} *)

val enable : unit -> unit
(** Turn recording on. Does not clear previously recorded data. *)

val disable : unit -> unit
(** Turn recording off; recorded data is kept until [reset]. *)

val is_enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded spans, counters, histograms and trace events,
    restart the trace clock epoch, and run every hook registered with
    {!on_reset} — all inside one critical section, so a reset between
    requests cannot leak a prior request's data into the next scrape. *)

val on_reset : (unit -> unit) -> unit
(** Register a hook run (inside the registry lock) at every {!reset}.
    Hooks must not call back into [Obs]. Used by {!Events} to clear its
    ring atomically with the registries here. *)

val elapsed_s : unit -> float
(** Seconds since the trace clock epoch set by [reset]. Timestamps on
    structured events (see {!Events}) use this clock so they line up
    with span intervals in a merged Chrome trace. *)

(** {1 Request correlation} *)

val set_request_id : string option -> unit
(** Set (or clear) the current domain's request-correlation id. Spans
    and structured events recorded while it is set are tagged with it,
    as are {!Log} lines. *)

val request_id : unit -> string option

val with_request_id : string -> (unit -> 'a) -> 'a
(** [with_request_id id f] runs [f] with the id set, restoring the
    previous id afterwards (also on exception). *)

(** {1 Recording} *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a named timed span. Spans nest per
    domain: a span started inside another is recorded at depth+1 and
    contained within the parent's interval in the Chrome trace.
    Exceptions propagate; the span is still closed. When disabled this
    is exactly [f ()]. *)

val count : string -> unit
(** Increment a named monotonic counter by one. *)

val add : string -> int -> unit
(** Increment a named monotonic counter by [n]. *)

val observe : string -> float -> unit
(** Record a value into a named log2-bucketed histogram. *)

val observe_int : string -> int -> unit

(** {1 Inspection} *)

val counter_value : string -> int
(** Current value of a counter; 0 when never incremented. *)

val counters_alist : unit -> (string * int) list
(** All counters, sorted by name. *)

val span_calls : string -> int

val span_total_s : string -> float

val spans_alist : unit -> (string * (int * float * float)) list
(** All spans as [(name, (calls, total_s, max_s))], sorted by
    descending total time. *)

val histogram_summary : string -> (int * float * float * float) option
(** [(count, sum, min, max)] of a histogram, if it was ever observed. *)

val histograms_alist : unit -> (string * (int * float * float * float)) list

val histogram_buckets : string -> int array option
(** Per-bucket occupancy (a copy). Bucket 0 holds values < 1; bucket
    [i >= 1] holds [2^(i-1) <= v < 2^i]; the last bucket absorbs every
    larger value. Consumed by the OpenMetrics exposition. *)

val n_buckets : int
(** Number of histogram buckets (32). *)

val bucket_le : int -> float
(** Upper bound of bucket [i]; [infinity] for the last bucket. *)

val set_trace_capacity : int -> unit
(** Bound the span-interval ring (default 1_000_000). When full the
    oldest interval is dropped, so a long-running daemon keeps the
    newest spans. Aggregate span stats are unaffected. *)

val trace_events : ?req:string -> unit -> (string * float * float * int) list
(** Completed span intervals as [(name, start_s, dur_s, depth)] in
    completion order, with [start_s] relative to the epoch. [?req]
    restricts to intervals recorded under that request id. Consumed by
    {!Events.chrome_trace} to merge spans and structured events. *)

(** {1 Exporters} *)

val escape_json : string -> string
(** Escape a string for embedding in a JSON string literal (alias of
    {!Json_util.escape}). *)

val stats_table : unit -> string
(** Human-readable per-phase time / counter / histogram breakdown. *)

val stats_json : unit -> string
(** Machine-readable JSON:
    [{"spans": {...}, "counters": {...}, "histograms": {...}}]. *)

val chrome_trace : unit -> string
(** Chrome trace_event JSON (complete ["X"] events, plus counters as a
    single ["C"] event), loadable in about://tracing or Perfetto. *)

val write_chrome_trace : string -> unit
(** Write [chrome_trace ()] to a file. *)
