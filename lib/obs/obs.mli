(** Compiler-wide observability: hierarchical timed spans, monotonic
    counters and log-scale histograms, plus exporters (human-readable
    stats table, machine-readable JSON, Chrome trace_event JSON).

    Disabled by default; when disabled every entry point is a single
    flag check, so instrumentation in hot paths is essentially free.

    Naming scheme: dotted lowercase [layer.entity[.metric]], e.g.
    ["fm.eliminate"], ["bmap.apply_range"], ["cache.L1.hits"],
    ["pipeline.search_steps"]. *)

(** {1 Lifecycle} *)

val enable : unit -> unit
(** Turn recording on. Does not clear previously recorded data. *)

val disable : unit -> unit
(** Turn recording off; recorded data is kept until [reset]. *)

val is_enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded spans, counters, histograms and trace events, and
    restart the trace clock epoch. *)

val elapsed_s : unit -> float
(** Seconds since the trace clock epoch set by [reset]. Timestamps on
    structured events (see {!Events}) use this clock so they line up
    with span intervals in a merged Chrome trace. *)

(** {1 Recording} *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a named timed span. Spans nest: a
    span started inside another is recorded at depth+1 and contained
    within the parent's interval in the Chrome trace. Exceptions
    propagate; the span is still closed. When disabled this is exactly
    [f ()]. *)

val count : string -> unit
(** Increment a named monotonic counter by one. *)

val add : string -> int -> unit
(** Increment a named monotonic counter by [n]. *)

val observe : string -> float -> unit
(** Record a value into a named log2-bucketed histogram. *)

val observe_int : string -> int -> unit

(** {1 Inspection} *)

val counter_value : string -> int
(** Current value of a counter; 0 when never incremented. *)

val counters_alist : unit -> (string * int) list
(** All counters, sorted by name. *)

val span_calls : string -> int

val span_total_s : string -> float

val spans_alist : unit -> (string * (int * float * float)) list
(** All spans as [(name, (calls, total_s, max_s))], sorted by
    descending total time. *)

val histogram_summary : string -> (int * float * float * float) option
(** [(count, sum, min, max)] of a histogram, if it was ever observed. *)

val histograms_alist : unit -> (string * (int * float * float * float)) list

val trace_events : unit -> (string * float * float * int) list
(** Completed span intervals as [(name, start_s, dur_s, depth)] in
    completion order, with [start_s] relative to the epoch. Consumed by
    {!Events.chrome_trace} to merge spans and structured events. *)

(** {1 Exporters} *)

val escape_json : string -> string
(** Escape a string for embedding in a JSON string literal (shared by
    the exporters here and in {!Events}). *)

val stats_table : unit -> string
(** Human-readable per-phase time / counter / histogram breakdown. *)

val stats_json : unit -> string
(** Machine-readable JSON:
    [{"spans": {...}, "counters": {...}, "histograms": {...}}]. *)

val chrome_trace : unit -> string
(** Chrome trace_event JSON (complete ["X"] events, plus counters as a
    single ["C"] event), loadable in about://tracing or Perfetto. *)

val write_chrome_trace : string -> unit
(** Write [chrome_trace ()] to a file. *)
