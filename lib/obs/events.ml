(* Structured event log (see events.mli). A fixed-size ring keeps the
   newest events; [seq] keeps a global emission index so consumers can
   detect gaps after overflow. Timestamps share the Obs epoch so a
   merged Chrome trace lines spans and events up on one clock.

   Domain safety: the ring lives behind its own mutex. Lock order is
   Obs -> Events (Obs runs our reset hook while holding its lock); no
   code path here takes the Obs lock while holding ours — emit only
   calls lock-free Obs reads, and chrome_trace snapshots the two stores
   sequentially. *)

type value = Json_util.value = S of string | I of int | F of float | B of bool

type t = {
  seq : int;
  ts_s : float;
  dur_s : float;
  cat : string;
  name : string;
  args : (string * value) list;
}

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)
(* ------------------------------------------------------------------ *)

let default_capacity = 65_536

let mu = Mutex.create ()

let with_lock f =
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      v
  | exception e ->
      Mutex.unlock mu;
      raise e

let cap = ref default_capacity

let buf : t option array ref = ref [||]

let start = ref 0 (* index of the oldest retained event *)

let len = ref 0

let total = ref 0

let reset_unlocked () =
  buf := [||];
  start := 0;
  len := 0;
  total := 0

let reset () = with_lock reset_unlocked

(* Clear the ring atomically with the Obs registries, so a reset
   between requests cannot leak a prior request's events. *)
let () = Obs.on_reset reset_unlocked

let set_capacity n =
  with_lock (fun () ->
      cap := max 1 n;
      reset_unlocked ())

let capacity () = !cap

let emit ?ts_s ?(dur_s = 0.0) ?(cat = "event") name args =
  if Obs.is_enabled () then begin
    (* Tag with the serving request id unless the caller already did. *)
    let args =
      match Obs.request_id () with
      | Some id when not (List.mem_assoc "req" args) -> args @ [ ("req", S id) ]
      | _ -> args
    in
    let ts = match ts_s with Some t -> t | None -> Obs.elapsed_s () in
    with_lock (fun () ->
        let e = { seq = !total; ts_s = ts; dur_s; cat; name; args } in
        if Array.length !buf <> !cap then begin
          buf := Array.make !cap None;
          start := 0;
          len := 0
        end;
        let b = !buf in
        if !len < !cap then begin
          b.((!start + !len) mod !cap) <- Some e;
          incr len
        end
        else begin
          b.(!start) <- Some e;
          start := (!start + 1) mod !cap
        end;
        incr total)
  end

let find e key = List.assoc_opt key e.args

let recorded ?req () =
  let all =
    with_lock (fun () ->
        let b = !buf in
        let n = Array.length b in
        let rec go i acc =
          if i < 0 then acc
          else
            match b.((!start + i) mod n) with
            | Some e -> go (i - 1) (e :: acc)
            | None -> go (i - 1) acc
        in
        if n = 0 then [] else go (!len - 1) [])
  in
  match req with
  | None -> all
  | Some r -> List.filter (fun e -> find e "req" = Some (S r)) all

let emitted () = !total

let dropped () = !total - !len

let value_to_string = Json_util.value_to_string

(* ------------------------------------------------------------------ *)
(* JSONL                                                               *)
(* ------------------------------------------------------------------ *)

let float_repr = Json_util.float_repr

let value_json = Json_util.value_json

let event_json b (e : t) =
  Buffer.add_string b
    (Printf.sprintf "{\"seq\":%d,\"ts\":%s,\"dur\":%s,\"cat\":\"%s\",\"name\":\"%s\",\"args\":{"
       e.seq (float_repr e.ts_s) (float_repr e.dur_s) (Json_util.escape e.cat)
       (Json_util.escape e.name));
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%s" (Json_util.escape k) (value_json v)))
    e.args;
  Buffer.add_string b "}}"

let to_jsonl () =
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
      event_json b e;
      Buffer.add_char b '\n')
    (recorded ());
  Buffer.contents b

let write_jsonl path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl ()))

(* --- parsing --------------------------------------------------------- *)

(* Minimal JSON parser that keeps the raw token for numbers, so int and
   float payload values stay distinct ("5" vs "5.0"). *)
type jv = Jstr of string | Jnum of string | Jbool of bool | Jnull | Jobj of (string * jv) list | Jarr of jv list

exception Parse_error of string

let parse_json_line (s : string) : jv =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> incr pos
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> incr pos
      | Some '\\' ->
          incr pos;
          (match peek () with
          | Some '"' -> Buffer.add_char b '"'; incr pos
          | Some '\\' -> Buffer.add_char b '\\'; incr pos
          | Some '/' -> Buffer.add_char b '/'; incr pos
          | Some 'n' -> Buffer.add_char b '\n'; incr pos
          | Some 'r' -> Buffer.add_char b '\r'; incr pos
          | Some 't' -> Buffer.add_char b '\t'; incr pos
          | Some 'b' -> Buffer.add_char b '\b'; incr pos
          | Some 'f' -> Buffer.add_char b '\012'; incr pos
          | Some 'u' ->
              incr pos;
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
              | Some _ -> Buffer.add_char b '?'
              | None -> fail "bad \\u escape");
              pos := !pos + 4
          | _ -> fail "bad escape");
          go ()
      | Some c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Jobj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                Jobj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Jarr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elems (v :: acc)
            | Some ']' ->
                incr pos;
                Jarr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
        end
    | Some 't' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "true" then begin
          pos := !pos + 4;
          Jbool true
        end
        else fail "bad literal"
    | Some 'f' ->
        if !pos + 5 <= n && String.sub s !pos 5 = "false" then begin
          pos := !pos + 5;
          Jbool false
        end
        else fail "bad literal"
    | Some 'n' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "null" then begin
          pos := !pos + 4;
          Jnull
        end
        else fail "bad literal"
    | Some ('0' .. '9' | '-') ->
        let first = !pos in
        let num_char = function
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false
        in
        while (match peek () with Some c -> num_char c | None -> false) do
          incr pos
        done;
        let text = String.sub s first (!pos - first) in
        if float_of_string_opt text = None then fail "bad number";
        Jnum text
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let value_of_jv = function
  | Jstr s -> Ok (S s)
  | Jbool b -> Ok (B b)
  | Jnum text -> (
      match int_of_string_opt text with
      | Some i -> Ok (I i)
      | None -> Ok (F (float_of_string text)))
  | _ -> Error "unsupported payload value"

let event_of_jv = function
  | Jobj fields ->
      let str k = match List.assoc_opt k fields with Some (Jstr s) -> Some s | _ -> None in
      let num k =
        match List.assoc_opt k fields with
        | Some (Jnum t) -> float_of_string_opt t
        | _ -> None
      in
      let args =
        match List.assoc_opt "args" fields with
        | Some (Jobj kvs) ->
            List.fold_right
              (fun (k, jv) acc ->
                match (acc, value_of_jv jv) with
                | Error _, _ -> acc
                | _, Error e -> Error e
                | Ok rest, Ok v -> Ok ((k, v) :: rest))
              kvs (Ok [])
        | Some _ -> Error "args is not an object"
        | None -> Ok []
      in
      (match (num "seq", num "ts", str "name", args) with
      | Some seq, Some ts, Some name, Ok args ->
          Ok
            { seq = int_of_float seq;
              ts_s = ts;
              dur_s = (match num "dur" with Some d -> d | None -> 0.0);
              cat = (match str "cat" with Some c -> c | None -> "event");
              name;
              args
            }
      | _, _, _, Error e -> Error e
      | _ -> Error "missing seq/ts/name")
  | _ -> Error "event line is not an object"

let of_jsonl text =
  let lines = String.split_on_char '\n' text in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let line = String.trim line in
        if line = "" then go (i + 1) acc rest
        else begin
          match
            try event_of_jv (parse_json_line line)
            with Parse_error m -> Error m
          with
          | Ok e -> go (i + 1) (e :: acc) rest
          | Error m -> Error (Printf.sprintf "line %d: %s" i m)
        end
  in
  go 1 [] lines

(* ------------------------------------------------------------------ *)
(* Chrome trace merge                                                  *)
(* ------------------------------------------------------------------ *)

(* Spans render on tid 1 exactly as in [Obs.chrome_trace]; structured
   events on tid 2 as instant ("i") events, or complete ("X") when they
   carry a duration. Everything except the leading metadata event is
   sorted by timestamp so trace consumers see one merged timeline.
   [?req] restricts both stores to one request's records — the payload
   of the serve daemon's [GET /trace/<req-id>]. *)
let chrome_trace ?req () =
  let rows = ref [] in
  let push ts rendered = rows := (ts, List.length !rows, rendered) :: !rows in
  List.iter
    (fun (name, start_s, dur_s, depth) ->
      let ts = start_s *. 1e6 in
      push ts
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"pass\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"depth\":%d}}"
           (Json_util.escape name) ts (dur_s *. 1e6) depth))
    (Obs.trace_events ?req ());
  List.iter
    (fun (e : t) ->
      let ts = e.ts_s *. 1e6 in
      let args = Buffer.create 64 in
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char args ',';
          Buffer.add_string args
            (Printf.sprintf "\"%s\":%s" (Json_util.escape k) (value_json v)))
        e.args;
      let rendered =
        if e.dur_s > 0.0 then
          Printf.sprintf
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":%.3f,\"dur\":%.3f,\"args\":{%s}}"
            (Json_util.escape e.name) (Json_util.escape e.cat) ts (e.dur_s *. 1e6)
            (Buffer.contents args)
        else
          Printf.sprintf
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"pid\":1,\"tid\":2,\"ts\":%.3f,\"s\":\"t\",\"args\":{%s}}"
            (Json_util.escape e.name) (Json_util.escape e.cat) ts
            (Buffer.contents args)
      in
      push ts rendered)
    (recorded ?req ());
  let sorted =
    List.sort
      (fun (ta, ia, _) (tb, ib, _) ->
        match compare ta tb with 0 -> compare ia ib | c -> c)
      (List.rev !rows)
  in
  let last_ts =
    List.fold_left (fun acc (ts, _, _) -> max acc ts) 0.0 sorted
  in
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\"traceEvents\":[";
  Buffer.add_string b
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"memcomp\"}}";
  List.iter
    (fun (_, _, rendered) ->
      Buffer.add_char b ',';
      Buffer.add_string b rendered)
    sorted;
  let cs = Obs.counters_alist () in
  if cs <> [] then begin
    Buffer.add_string b
      (Printf.sprintf
         ",{\"name\":\"counters\",\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":%.3f,\"args\":{"
         last_ts);
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":%d" (Json_util.escape name) v))
      cs;
    Buffer.add_string b "}}"
  end;
  Buffer.add_string b "]}";
  Buffer.contents b

let write_chrome_trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_trace ()))
