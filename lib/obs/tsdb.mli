(** Append-only, schema-versioned on-disk time-series store with
    ring-bounded retention and resolution downsampling.

    Layout: a directory holding [meta.json] (schema version) and
    numbered JSONL segment files [seg-<level>-<index>.jsonl], one JSON
    object per line. Level 0 holds raw points; {!compact} moves whole
    aged level-0 segments into 10-second buckets at level 1, aged
    level-1 segments into 60-second buckets at level 2, and bounds
    level 2 as a ring by deleting the oldest segments. A point lives in
    exactly one level, so the union of all levels is a complete,
    non-overlapping history and downsampling conserves counts and sums
    (each bucket aggregates count/sum/min/max of the points it
    replaces).

    Durability: every appended line is flushed; {!open_db} recovers a
    store whose process died mid-append by truncating each segment to
    its longest valid-JSONL prefix. Unknown schema versions are
    refused, not guessed at.

    Not thread-safe: guard a shared store with a mutex (the flight
    recorder does). *)

type point = {
  p_ts : float;  (** unix seconds; for downsampled points, bucket start *)
  p_count : int;
  p_sum : float;
  p_min : float;
  p_max : float;
}

(** Query resolution: one level, or the union of all levels ([Auto] —
    the complete history, oldest data coarsest). *)
type res = Raw | R10 | R60 | Auto

val res_of_string : string -> res option
(** Accepts ["raw"], ["10s"], ["60s"]/["1m"], ["auto"]. *)

val res_to_string : res -> string

type config = {
  seg_points : int;  (** rotate the active raw segment after this many points *)
  ret_raw_s : float;  (** raw points older than this downsample to 10s *)
  ret_mid_s : float;  (** 10s points older than this downsample to 60s *)
  max_coarse_segments : int;  (** ring bound on 60s-level segments *)
}

val default_config : config
(** [{ seg_points = 2048; ret_raw_s = 600.; ret_mid_s = 3600.;
      max_coarse_segments = 64 }] *)

type t

val open_db : ?config:config -> string -> (t, string) result
(** Open (creating the directory and [meta.json] if needed) and run
    truncated-tail recovery on every segment. Appends go to a fresh
    raw segment. *)

val dir : t -> string

val observe :
  t -> ts:float -> metric:string -> ?labels:(string * string) list ->
  float -> unit
(** Append a single raw observation (a count-1 point). *)

val append :
  t -> metric:string -> ?labels:(string * string) list -> point -> unit
(** Append a pre-aggregated raw point. *)

val compact : t -> now:float -> unit
(** Apply retention: seal an idle active segment, downsample aged
    segments level by level, enforce the coarse-level ring bound.
    Cheap when nothing has aged; call it every scrape tick. *)

val query :
  t -> metric:string -> ?labels:(string * string) list ->
  ?since:float -> res:res -> unit -> point list
(** Points of [metric] whose labels contain all of [labels] (default:
    any) and whose [p_ts >= since] (default: all), sorted by
    timestamp. *)

val metric_names : t -> string list
(** Distinct metric names across all levels, sorted. *)

val close : t -> unit
