(* Perf snapshots: one typed record per workload x flow, covering the
   compile-side signals (wall time, per-pass span totals, obs counters)
   and the machine-model signals (simulated cache hits/misses, footprint
   traffic volumes, generated-AST size), with a versioned JSON
   (de)serialization that needs no external dependencies.

   A snapshot is pure data: the metric values from lib/machine and
   lib/codegen are computed by the collector (bench/main.ml) and passed
   in, so this module stays at the bottom of the dependency graph next
   to Obs. Only [capture] reads live Obs state.

   The counters map carries whatever Obs counters the run recorded —
   since PR 3 that includes the Fm memo-cache mirror counters
   (fm.cache.<name>.hit/.miss/.evict and the fm.cache.hit/.miss/.evict
   aggregates), so cache effectiveness is snapshotted and regression-
   gated alongside the pass counters. The collector resets the caches
   per workload x flow to keep them deterministic. *)

(* ------------------------------------------------------------------ *)
(* JSON documents come from the shared observability JSON layer.       *)
(* ------------------------------------------------------------------ *)

module Json = Json_util.Json

(* ------------------------------------------------------------------ *)
(* Snapshot record                                                     *)
(* ------------------------------------------------------------------ *)

(* v2: adds the optional [speedup] field (parallel-runtime wall-clock
   ratio vs one worker); absent in v1 files, which still parse.
   v3: adds the optional [attribution] field (per-array polyhedral
   traffic); absent in v1/v2 files, which still parse. *)
let schema_version = 3

type span = { sp_name : string; sp_calls : int; sp_total_s : float }

type cache_level = { cl_name : string; cl_hits : int; cl_misses : int }

type traffic = {
  tr_read_bytes : int;
  tr_write_bytes : int;
  tr_staged_bytes : int;
}

type ast_stats = { ast_loops : int; ast_kernels : int; ast_nodes : int }

type t = {
  workload : string;
  flow : string;
  compile_s : float;
  spans : span list;
  counters : (string * int) list;
  cache_levels : cache_level list;
  dram_accesses : int;
  traffic : traffic;
  ast : ast_stats;
  speedup : float option;
      (* parallel runtime wall-clock speedup vs one worker; None when
         the collector did not run the parallel runtime *)
  attribution : (string * int * int) list option;
      (* per-array (name, read_bytes, write_bytes) polyhedral traffic;
         components sum to [traffic] exactly *)
}

let capture ?speedup ?attribution ~workload ~flow ~compile_s ~cache_levels
    ~dram_accesses ~traffic ~ast () =
  let spans =
    Obs.spans_alist ()
    |> List.map (fun (name, (calls, total_s, _max_s)) ->
           { sp_name = name; sp_calls = calls; sp_total_s = total_s })
    |> List.sort (fun a b -> compare a.sp_name b.sp_name)
  in
  { workload;
    flow;
    compile_s;
    spans;
    counters = Obs.counters_alist ();
    cache_levels;
    dram_accesses;
    traffic;
    ast;
    speedup;
    attribution
  }

(* ------------------------------------------------------------------ *)
(* JSON (de)serialization                                              *)
(* ------------------------------------------------------------------ *)

let num i = Json.Num (float_of_int i)

let to_json s =
  let base =
    [ ("workload", Json.Str s.workload);
      ("flow", Json.Str s.flow);
      ("compile_s", Json.Num s.compile_s);
      ( "spans",
        Json.Obj
          (List.map
             (fun sp ->
               ( sp.sp_name,
                 Json.Obj
                   [ ("calls", num sp.sp_calls);
                     ("total_s", Json.Num sp.sp_total_s)
                   ] ))
             s.spans) );
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, num v)) s.counters));
      ( "cache",
        Json.Obj
          [ ( "levels",
              Json.Arr
                (List.map
                   (fun l ->
                     Json.Obj
                       [ ("name", Json.Str l.cl_name);
                         ("hits", num l.cl_hits);
                         ("misses", num l.cl_misses)
                       ])
                   s.cache_levels) );
            ("dram", num s.dram_accesses)
          ] );
      ( "traffic",
        Json.Obj
          [ ("read_bytes", num s.traffic.tr_read_bytes);
            ("write_bytes", num s.traffic.tr_write_bytes);
            ("staged_bytes", num s.traffic.tr_staged_bytes)
          ] );
      ( "ast",
        Json.Obj
          [ ("loops", num s.ast.ast_loops);
            ("kernels", num s.ast.ast_kernels);
            ("nodes", num s.ast.ast_nodes)
          ] )
    ]
  in
  Json.Obj
    (base
    @ (match s.speedup with
      | Some f -> [ ("speedup", Json.Num f) ]
      | None -> [])
    @
    match s.attribution with
    | Some rows ->
        [ ( "attribution",
            Json.Arr
              (List.map
                 (fun (name, r, w) ->
                   Json.Obj
                     [ ("array", Json.Str name);
                       ("read_bytes", num r);
                       ("write_bytes", num w)
                     ])
                 rows) )
        ]
    | None -> [])

let to_string s = Json.to_string (to_json s)

(* of_json: spelled with a tiny error monad so every failure names the
   missing/ill-typed field. *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_str name = function
  | Json.Str s -> Ok s
  | _ -> Error (Printf.sprintf "field %S is not a string" name)

let as_num name = function
  | Json.Num f -> Ok f
  | _ -> Error (Printf.sprintf "field %S is not a number" name)

let as_int name j =
  let* f = as_num name j in
  Ok (int_of_float f)

let str_field name j =
  let* v = field name j in
  as_str name v

let num_field name j =
  let* v = field name j in
  as_num name v

let int_field name j =
  let* v = field name j in
  as_int name v

let of_json j =
  let* workload = str_field "workload" j in
  let* flow = str_field "flow" j in
  let* compile_s = num_field "compile_s" j in
  let* spans_j = field "spans" j in
  let* spans =
    match spans_j with
    | Json.Obj fields ->
        List.fold_left
          (fun acc (name, v) ->
            let* acc = acc in
            let* calls = int_field "calls" v in
            let* total_s = num_field "total_s" v in
            Ok ({ sp_name = name; sp_calls = calls; sp_total_s = total_s } :: acc))
          (Ok []) fields
        |> Result.map List.rev
    | _ -> Error "field \"spans\" is not an object"
  in
  let* counters_j = field "counters" j in
  let* counters =
    match counters_j with
    | Json.Obj fields ->
        List.fold_left
          (fun acc (name, v) ->
            let* acc = acc in
            let* n = as_int name v in
            Ok ((name, n) :: acc))
          (Ok []) fields
        |> Result.map List.rev
    | _ -> Error "field \"counters\" is not an object"
  in
  let* cache_j = field "cache" j in
  let* levels_j = field "levels" cache_j in
  let* cache_levels =
    match levels_j with
    | Json.Arr ls ->
        List.fold_left
          (fun acc l ->
            let* acc = acc in
            let* name = str_field "name" l in
            let* hits = int_field "hits" l in
            let* misses = int_field "misses" l in
            Ok ({ cl_name = name; cl_hits = hits; cl_misses = misses } :: acc))
          (Ok []) ls
        |> Result.map List.rev
    | _ -> Error "field \"cache.levels\" is not an array"
  in
  let* dram_accesses = int_field "dram" cache_j in
  let* traffic_j = field "traffic" j in
  let* read_bytes = int_field "read_bytes" traffic_j in
  let* write_bytes = int_field "write_bytes" traffic_j in
  let* staged_bytes = int_field "staged_bytes" traffic_j in
  let* ast_j = field "ast" j in
  let* loops = int_field "loops" ast_j in
  let* kernels = int_field "kernels" ast_j in
  let* nodes = int_field "nodes" ast_j in
  let* speedup =
    match Json.member "speedup" j with
    | None | Some Json.Null -> Ok None
    | Some v ->
        let* f = as_num "speedup" v in
        Ok (Some f)
  in
  let* attribution =
    match Json.member "attribution" j with
    | None | Some Json.Null -> Ok None
    | Some (Json.Arr rows) ->
        List.fold_left
          (fun acc r ->
            let* acc = acc in
            let* name = str_field "array" r in
            let* rd = int_field "read_bytes" r in
            let* wr = int_field "write_bytes" r in
            Ok ((name, rd, wr) :: acc))
          (Ok []) rows
        |> Result.map (fun l -> Some (List.rev l))
    | Some _ -> Error "field \"attribution\" is not an array"
  in
  Ok
    { workload;
      flow;
      compile_s;
      spans;
      counters;
      cache_levels;
      dram_accesses;
      traffic =
        { tr_read_bytes = read_bytes;
          tr_write_bytes = write_bytes;
          tr_staged_bytes = staged_bytes
        };
      ast = { ast_loops = loops; ast_kernels = kernels; ast_nodes = nodes };
      speedup;
      attribution
    }

let of_string s =
  let* j = Json.parse s in
  of_json j
