(** Perf snapshots: one typed record per {e workload x flow}, with
    versioned, dependency-free JSON (de)serialization.

    A snapshot freezes the signals the regression gate compares:
    compile wall time, per-pass span totals and call counts (from
    {!Obs}), every obs counter, the simulated LRU cache hits/misses and
    DRAM accesses, polyhedral footprint traffic volumes, and
    generated-AST size statistics. Machine-model and AST numbers are
    computed by the collector ([bench/main.exe snapshot]) and passed in;
    only {!capture} reads live {!Obs} state, keeping this module at the
    bottom of the dependency graph. *)

(** Minimal JSON values — parser and printer sufficient for the
    snapshot schema. Floats print with [%.17g] so every finite double
    round-trips exactly. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string

  val parse : string -> (t, string) result

  val member : string -> t -> t option
  (** Field access on [Obj]; [None] on other constructors. *)
end

val schema_version : int
(** Version of the snapshot JSON schema; bumped on incompatible field
    changes. Stored at the {!Bench_db} file level. *)

type span = { sp_name : string; sp_calls : int; sp_total_s : float }

type cache_level = { cl_name : string; cl_hits : int; cl_misses : int }

type traffic = {
  tr_read_bytes : int;  (** off-chip bytes read (per footprint model) *)
  tr_write_bytes : int;  (** off-chip bytes written back *)
  tr_staged_bytes : int;  (** max on-chip bytes staged per tile *)
}

type ast_stats = { ast_loops : int; ast_kernels : int; ast_nodes : int }

type t = {
  workload : string;
  flow : string;
  compile_s : float;  (** wall-clock of the whole compilation flow *)
  spans : span list;  (** per-pass totals, sorted by name *)
  counters : (string * int) list;  (** all obs counters, sorted by name *)
  cache_levels : cache_level list;
  dram_accesses : int;
  traffic : traffic;
  ast : ast_stats;
  speedup : float option;
      (** parallel-runtime wall-clock speedup vs one worker (schema v2,
          optional: [None] when the collector did not run the parallel
          runtime, and for every v1 file) *)
  attribution : (string * int * int) list option;
      (** per-array [(name, read_bytes, write_bytes)] polyhedral traffic
          (schema v3, optional); components sum to [traffic] exactly.
          [None] for the naive flow and for pre-v3 files. *)
}

val capture :
  ?speedup:float ->
  ?attribution:(string * int * int) list ->
  workload:string ->
  flow:string ->
  compile_s:float ->
  cache_levels:cache_level list ->
  dram_accesses:int ->
  traffic:traffic ->
  ast:ast_stats ->
  unit ->
  t
(** Build a snapshot from the current {!Obs} state (spans and counters
    recorded since the last [Obs.reset]) plus the supplied machine-model
    and AST metrics. Call while observability is still enabled. *)

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result

val to_string : t -> string

val of_string : string -> (t, string) result
