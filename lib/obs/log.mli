(** Leveled structured logging: one JSON object per line
    ([{"ts":..,"level":..,"cat":..,"msg":..,"req":..?,"args":{..}}]).

    Independent of [Obs.enable]: records pass a level threshold only,
    so operational logs flow even when profiling is off. The threshold
    is initialised from the [MEMCOMP_LOG] environment variable
    (debug|info|warn|error; default warn) and can be overridden with
    {!set_level} (the CLI's [--log-level]).

    If the emitting domain has a request-correlation id set
    ({!Obs.set_request_id}), every line carries a ["req"] field, so one
    id links a request's log lines, its {!Events} decision trace, and
    its Chrome trace.

    Sink writes are serialised by a mutex: concurrent domains never
    interleave bytes of two records. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string

val level_of_string : string -> (level, string) result
(** Case-insensitive; accepts ["warning"] for [Warn]. *)

val set_level : level -> unit
(** Records strictly below this level are dropped. *)

val current_level : unit -> level

val would_log : level -> bool
(** [true] when a record at this level would pass the threshold. Use to
    skip expensive payload construction. *)

val set_sink : (string -> unit) -> unit
(** Install a sink receiving one rendered line per record (no trailing
    newline). Default sink: stderr, line-buffered. *)

val reset_sink : unit -> unit
(** Restore the stderr sink. *)

(** {1 Emitting} *)

val debug : ?cat:string -> string -> (string * Json_util.value) list -> unit

val info : ?cat:string -> string -> (string * Json_util.value) list -> unit

val warn : ?cat:string -> string -> (string * Json_util.value) list -> unit

val error : ?cat:string -> string -> (string * Json_util.value) list -> unit
