(** SLO / anomaly rule engine, evaluated once per scrape tick.

    Pure state machine: the caller supplies the clock and a metric
    [lookup] each {!tick}, so every transition is deterministic and
    unit-testable. Each rule watches one metric and is either a static
    SLO threshold or a rolling mean/σ anomaly detector. A rule fires
    after [r_fire_ticks] consecutive breaching samples and clears
    after [r_clear_ticks] consecutive healthy ones, which debounces
    single-tick spikes in both directions. A tick on which the metric
    is absent ([lookup] returns [None]) holds the rule's state
    unchanged — absence of traffic is not evidence of health or
    breach. *)

type cmp = Above | Below

type kind =
  | Slo of { threshold : float; cmp : cmp }
      (** breach when the sample is strictly beyond [threshold] *)
  | Anomaly of { window : int; sigma : float; min_samples : int }
      (** breach when the sample deviates from the rolling mean of the
          last [window] samples by more than [sigma] effective standard
          deviations; never breaches before [min_samples] history.
          The effective σ has a floor of 1% of |mean| so a
          near-constant history does not alert on noise. *)

type rule = {
  r_name : string;
  r_metric : string;
  r_kind : kind;
  r_fire_ticks : int;
  r_clear_ticks : int;
  r_help : string;
}

type alert = {
  a_rule : string;
  a_metric : string;
  a_value : float;  (** last sample observed for the rule *)
  a_since : float;  (** tick time at which the rule fired *)
  a_detail : string;  (** human-readable breach description *)
}

type event = Fired of alert | Cleared of alert

val default_rules :
  ?error_rate:float -> ?p99_ms:float -> ?rss_bytes:float -> unit -> rule list
(** The serve daemon's rule set: SLO rules on [http.error_rate]
    (default threshold 0.5), [http.latency_ms.compile.p99] (default
    5000 ms) and [process.rss_bytes] (default 6 GiB), each firing
    after 2 breaching ticks; anomaly rules (window 120, 6σ, 40-sample
    warmup) on [fm.cache.hit_ratio], [machine.dram_per_request] and
    [runtime.steal_rate]. Defaults are deliberately conservative: an
    idle or lightly-loaded daemon must never fire. *)

type t

val create : rule list -> t

val tick : t -> now:float -> lookup:(string -> float option) -> event list
(** Evaluate every rule against the current samples; returns the
    fire/clear transitions of this tick (usually none). *)

val firing : t -> alert list
(** Currently-firing alerts, ordered by rule declaration. *)

val rules : t -> rule list
