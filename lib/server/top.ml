(* Live dashboard over the serve daemon's public endpoints (see
   top.mli). *)

open Json_util

type snapshot = {
  sn_port : int;
  sn_counters : (string * float) list;
  sn_gauges : (string * float) list;  (* full exposition names *)
  sn_firing : (string * string) list;  (* rule, detail *)
  sn_req_deltas : float list;  (* delta.http.requests, oldest first *)
  sn_req_span_s : float;  (* wall span covered by sn_req_deltas *)
  sn_latency : (string * float list) list;  (* quantile metric -> series *)
  sn_sketch : Json.t option;  (* /sketch/compile, when compiles happened *)
}

let fetch ~port path =
  match Httpd.request ~port path with
  | Ok (200, body) -> Ok body
  | Ok (status, _) -> Error (Printf.sprintf "GET %s: status %d" path status)
  | Error e -> Error (Printf.sprintf "GET %s: %s" path e)

let fetch_json ~port path =
  match fetch ~port path with
  | Error e -> Error e
  | Ok body -> (
      match Json.parse body with
      | Ok j -> Ok j
      | Error e -> Error (Printf.sprintf "GET %s: bad JSON: %s" path e))

let points_of_history j =
  match Json.member "points" j with
  | Some (Json.Arr ps) ->
      List.filter_map
        (fun p ->
          match (Json.member "ts" p, Json.member "sum" p) with
          | Some (Json.Num ts), Some (Json.Num sum) -> Some (ts, sum)
          | _ -> None)
        ps
  | _ -> []

(* tail of a series: the dashboard shows recent behaviour *)
let last n xs =
  let len = List.length xs in
  if len <= n then xs else List.filteri (fun i _ -> i >= len - n) xs

let width = 48

let snapshot ~port =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let* counters_j = fetch_json ~port "/counters" in
  let counters =
    match counters_j with
    | Json.Obj kvs ->
        List.filter_map
          (fun (k, v) -> match v with Json.Num f -> Some (k, f) | _ -> None)
          kvs
    | _ -> []
  in
  let* metrics = fetch ~port "/metrics" in
  let gauges = Openmetrics.parse_gauges metrics in
  (* flight-recorder endpoints may be disabled: degrade, don't fail *)
  let firing =
    match fetch_json ~port "/alerts" with
    | Ok j -> (
        match Json.member "firing" j with
        | Some (Json.Arr al) ->
            List.filter_map
              (fun a ->
                match (Json.member "rule" a, Json.member "detail" a) with
                | Some (Json.Str r), Some (Json.Str d) -> Some (r, d)
                | _ -> None)
              al
        | _ -> [])
    | Error _ -> []
  in
  let history metric =
    (* auto: the full retention-compacted series, oldest data coarsest *)
    match fetch_json ~port ("/history/" ^ metric ^ "?res=auto") with
    | Ok j -> last width (points_of_history j)
    | Error _ -> []
  in
  let req = history "delta.http.requests" in
  let span =
    match (req, List.rev req) with
    | (t0, _) :: _, (t1, _) :: _ when t1 > t0 -> t1 -. t0
    | _ -> 0.
  in
  let latency =
    List.filter_map
      (fun q ->
        let metric = "http.latency_ms.compile." ^ q in
        match history metric with
        | [] -> None
        | pts -> Some (q, List.map snd pts))
      [ "p50"; "p95"; "p99" ]
  in
  let sketch =
    match fetch_json ~port "/sketch/compile" with Ok j -> Some j | Error _ -> None
  in
  Ok
    { sn_port = port;
      sn_counters = counters;
      sn_gauges = gauges;
      sn_firing = firing;
      sn_req_deltas = List.map snd req;
      sn_req_span_s = span;
      sn_latency = latency;
      sn_sketch = sketch
    }

(* --------------------------------------------------------------- *)
(* Rendering                                                        *)
(* --------------------------------------------------------------- *)

let blocks = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline vs =
  match vs with
  | [] -> ""
  | vs ->
      let lo = List.fold_left Float.min infinity vs in
      let hi = List.fold_left Float.max neg_infinity vs in
      let b = Buffer.create (List.length vs * 3) in
      List.iter
        (fun v ->
          let i =
            if hi <= lo then 0
            else
              min (Array.length blocks - 1)
                (int_of_float ((v -. lo) /. (hi -. lo) *. 7.99))
          in
          Buffer.add_string b blocks.(i))
        vs;
      Buffer.contents b

let counter sn name =
  match List.assoc_opt name sn.sn_counters with Some v -> v | None -> 0.

let gauge sn name = List.assoc_opt name sn.sn_gauges

let human_bytes v =
  if v >= 1073741824. then Printf.sprintf "%.1f GiB" (v /. 1073741824.)
  else if v >= 1048576. then Printf.sprintf "%.1f MiB" (v /. 1048576.)
  else Printf.sprintf "%.0f KiB" (v /. 1024.)

let flow_mix sn =
  let prefix = "http.compile.flow." in
  let n = String.length prefix in
  List.filter_map
    (fun (k, v) ->
      if String.length k > n && String.sub k 0 n = prefix then
        Some (String.sub k n (String.length k - n), v)
      else None)
    sn.sn_counters

let render sn =
  let b = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let requests = counter sn "http.requests" in
  let errors = counter sn "http.errors" in
  let rate =
    if sn.sn_req_span_s > 0. then
      List.fold_left ( +. ) 0. sn.sn_req_deltas /. sn.sn_req_span_s
    else 0.
  in
  let uptime =
    match gauge sn "memcomp_uptime_seconds" with Some v -> v | None -> 0.
  in
  let rss =
    match gauge sn "memcomp_process_resident_bytes" with Some v -> v | None -> 0.
  in
  let inflight =
    match gauge sn "memcomp_jobs_in_flight" with Some v -> v | None -> 0.
  in
  let hit = counter sn "fm.cache.hit" and miss = counter sn "fm.cache.miss" in
  line "memcomp top — 127.0.0.1:%d   uptime %.0fs   rss %s   inflight %.0f"
    sn.sn_port uptime (human_bytes rss) inflight;
  line "requests %.0f (%.1f req/s)   errors %.0f (%.1f%%)   cache hit %s"
    requests rate errors
    (if requests > 0. then 100. *. errors /. requests else 0.)
    (if hit +. miss > 0. then
       Printf.sprintf "%.1f%%" (100. *. hit /. (hit +. miss))
     else "n/a");
  if sn.sn_req_deltas <> [] then
    line "req/tick  %s  last %.0f" (sparkline sn.sn_req_deltas)
      (List.nth sn.sn_req_deltas (List.length sn.sn_req_deltas - 1));
  List.iter
    (fun (q, vs) ->
      line "%-4s ms   %s  last %.2f" q (sparkline vs)
        (List.nth vs (List.length vs - 1)))
    sn.sn_latency;
  (match flow_mix sn with
  | [] -> ()
  | mix ->
      let total = List.fold_left (fun acc (_, v) -> acc +. v) 0. mix in
      line "flows     %s"
        (String.concat "  "
           (List.map
              (fun (f, v) -> Printf.sprintf "%s %.0f%%" f (100. *. v /. total))
              mix)));
  (match sn.sn_firing with
  | [] -> line "watchdog  ok"
  | firing ->
      line "watchdog  %d FIRING" (List.length firing);
      List.iter (fun (r, d) -> line "  ! %-24s %s" r d) firing);
  Buffer.contents b

let render_json sn =
  let num_obj kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) kvs) in
  Json.Obj
    [ ("port", Json.Num (float_of_int sn.sn_port));
      ("counters", num_obj sn.sn_counters);
      ("gauges", num_obj sn.sn_gauges);
      ( "req_per_s",
        Json.Num
          (if sn.sn_req_span_s > 0. then
             List.fold_left ( +. ) 0. sn.sn_req_deltas /. sn.sn_req_span_s
           else 0.) );
      ( "latency",
        Json.Obj
          (List.map
             (fun (q, vs) -> (q, Json.Arr (List.map (fun v -> Json.Num v) vs)))
             sn.sn_latency) );
      ("flows", num_obj (flow_mix sn));
      ( "firing",
        Json.Arr
          (List.map
             (fun (r, d) ->
               Json.Obj [ ("rule", Json.Str r); ("detail", Json.Str d) ])
             sn.sn_firing) );
      ( "sketch_compile",
        match sn.sn_sketch with Some j -> j | None -> Json.Null )
    ]

let run ~port ~interval ~once ~json =
  if once then
    match snapshot ~port with
    | Error e ->
        Printf.eprintf "memcomp top: %s\n%!" e;
        1
    | Ok sn ->
        if json then print_endline (Json.to_string (render_json sn))
        else print_string (render sn);
        0
  else begin
    (* live loop until interrupted; a transient fetch error (daemon
       restarting) shows in place of the frame instead of exiting *)
    let continue = ref true in
    Sys.set_signal Sys.sigint
      (Sys.Signal_handle (fun _ -> continue := false));
    while !continue do
      let frame =
        match snapshot ~port with
        | Ok sn -> render sn
        | Error e -> Printf.sprintf "memcomp top: %s (retrying)\n" e
      in
      print_string ("\x1b[2J\x1b[H" ^ frame);
      flush stdout;
      try Unix.sleepf interval with Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    print_newline ();
    0
  end
