(** Flight recorder: the daemon's continuous self-scrape loop.

    A dedicated domain samples the {!Obs} registries every
    [fl_interval_s] seconds into an on-disk {!Tsdb} store and evaluates
    the {!Watchdog} rules against the same samples. Per tick it
    records:

    - ["counter.<name>"]: every Obs counter, cumulative;
    - ["delta.<name>"]: the counter's increase since the previous tick
      (omitted when zero, so idle series stay compact); the first tick
      records the full value, which keeps the invariant that the
      delta-series sums equal the latest cumulative point;
    - ["http.latency_ms.<endpoint>.p50/.p95/.p99"]: quantiles of the
      per-endpoint latency {!Digest} over the last window (the window
      digest resets each tick; a cumulative digest backs [/sketch]);
    - gauges from the embedding server (RSS, uptime, in-flight) and
      ["watchdog.firing"];
    - derived ratios when their denominators moved:
      ["http.error_rate"], ["fm.cache.hit_ratio"],
      ["machine.dram_per_request"], ["runtime.steal_rate"].

    The tick path never increments Obs counters — the daemon's
    exact-scrape instrumentation contract survives with the recorder
    running. The single exception is [watchdog.alerts_fired], bumped
    only on a rule's fire transition (alerts also emit structured
    {!Log} records). {!Tsdb.compact} runs every tick, so retention is
    continuously enforced. *)

type cfg = {
  fl_interval_s : float;  (** seconds between ticks (default 1.0) *)
  fl_dir : string option;
      (** tsdb directory; [None] creates a fresh temporary directory *)
  fl_tsdb : Tsdb.config;
  fl_rules : Watchdog.rule list;
}

val default_cfg : cfg
(** 1 s interval, temporary directory, {!Tsdb.default_config},
    {!Watchdog.default_rules}. *)

type t

val start : ?gauges:(unit -> (string * float) list) -> cfg -> (t, string) result
(** Open the store and launch the scrape domain. [gauges] supplies the
    embedding process's gauge samples each tick. *)

val stop : t -> unit
(** Stop the scrape domain (joining it), run one final tick, close the
    store. Idempotent. *)

val observe_latency : t -> endpoint:string -> float -> unit
(** Feed one request latency (ms) into the endpoint's window and
    cumulative digests; called by the server's request handler. *)

val tick : t -> now:float -> unit
(** One scrape tick at an explicit clock — the domain loop's body,
    exposed so tests can drive deterministic time. *)

val firing : t -> Watchdog.alert list

val alerts_json : t -> Json_util.Json.t
(** The [/alerts] body: currently-firing alerts plus a bounded recent
    fire/clear event history. *)

val sketch_json : t -> string -> Json_util.Json.t option
(** The [/sketch/<endpoint>] body: count, min/max/mean, p50/p90/p95/p99
    and the certified {!Digest.rank_error} of the endpoint's cumulative
    latency digest; [None] for an endpoint that served no request. *)

val history :
  t -> metric:string -> ?since:float -> res:Tsdb.res -> unit -> Tsdb.point list

val metric_names : t -> string list

val dir : t -> string
(** The tsdb directory (for logs and tests). *)
