(** Bounded archive of per-request Chrome traces, keyed by request id.

    The shared Obs/Events rings overwrite old entries; the daemon
    snapshots each request's merged trace here right after the request
    completes, so [GET /trace/<req-id>] keeps resolving after the rings
    move on. FIFO-bounded (default 256 traces). *)

val add : string -> string -> unit
(** [add req_id trace_json] archives (or replaces) a trace. *)

val find : string -> string option

val size : unit -> int

val set_capacity : int -> unit
(** Clamp to >= 1; evicts oldest entries if shrinking. *)

val clear : unit -> unit
