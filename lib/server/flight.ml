(* Flight recorder (see flight.mli). *)

open Json_util

type cfg = {
  fl_interval_s : float;
  fl_dir : string option;
  fl_tsdb : Tsdb.config;
  fl_rules : Watchdog.rule list;
}

let default_cfg =
  { fl_interval_s = 1.0;
    fl_dir = None;
    fl_tsdb = Tsdb.default_config;
    fl_rules = Watchdog.default_rules ()
  }

type endpoint_digests = {
  mutable ed_window : Digest.t;  (* resets every tick *)
  ed_total : Digest.t;  (* backs /sketch *)
}

type t = {
  cfg : cfg;
  mu : Mutex.t;
  tsdb : Tsdb.t;
  dog : Watchdog.t;
  gauges : unit -> (string * float) list;
  endpoints : (string, endpoint_digests) Hashtbl.t;
  mutable prev_counters : (string * int) list;
  mutable events : (float * Watchdog.event) list;  (* newest first, bounded *)
  stop_flag : bool Atomic.t;
  mutable domain : unit Domain.t option;
  mutable stopped : bool;
}

let max_events = 256

let dir t = Tsdb.dir t.tsdb

let observe_latency t ~endpoint ms =
  Mutex.protect t.mu (fun () ->
      let ed =
        match Hashtbl.find_opt t.endpoints endpoint with
        | Some ed -> ed
        | None ->
            let ed =
              { ed_window = Digest.create (); ed_total = Digest.create () }
            in
            Hashtbl.add t.endpoints endpoint ed;
            ed
      in
      Digest.add ed.ed_window ms;
      Digest.add ed.ed_total ms)

(* ------------------------------------------------------------------ *)
(* The tick                                                            *)
(* ------------------------------------------------------------------ *)

let alert_fields (a : Watchdog.alert) =
  [ ("rule", Json.Str a.Watchdog.a_rule);
    ("metric", Json.Str a.Watchdog.a_metric);
    ("value", Json.Num a.Watchdog.a_value);
    ("since", Json.Num a.Watchdog.a_since);
    ("detail", Json.Str a.Watchdog.a_detail)
  ]

let tick_locked t ~now =
  let put metric v = Tsdb.observe t.tsdb ~ts:now ~metric v in
  (* the samples the watchdog judges this tick *)
  let latest = Hashtbl.create 32 in
  let sample metric v =
    put metric v;
    Hashtbl.replace latest metric v
  in
  (* counters: cumulative always, deltas only when they moved *)
  let counters = Obs.counters_alist () in
  let delta name v =
    v
    - (match List.assoc_opt name t.prev_counters with Some p -> p | None -> 0)
  in
  List.iter
    (fun (name, v) ->
      put ("counter." ^ name) (float_of_int v);
      let d = delta name v in
      if d <> 0 then sample ("delta." ^ name) (float_of_int d))
    counters;
  let d name = delta name (match List.assoc_opt name counters with Some v -> v | None -> 0) in
  let ratio metric num den =
    if den > 0 then sample metric (float_of_int num /. float_of_int den)
  in
  ratio "http.error_rate" (d "http.errors") (d "http.requests");
  ratio "fm.cache.hit_ratio" (d "fm.cache.hit")
    (d "fm.cache.hit" + d "fm.cache.miss");
  ratio "machine.dram_per_request" (d "cache.dram") (d "pipeline.compile_requests");
  ratio "runtime.steal_rate" (d "runtime.steals") (d "runtime.tiles");
  t.prev_counters <- counters;
  (* per-endpoint latency quantiles over the window just ended *)
  Hashtbl.iter
    (fun endpoint ed ->
      if Digest.count ed.ed_window > 0 then begin
        List.iter2
          (fun suffix q ->
            match Digest.quantile ed.ed_window q with
            | Some v ->
                sample (Printf.sprintf "http.latency_ms.%s.%s" endpoint suffix) v
            | None -> ())
          [ "p50"; "p95"; "p99" ] [ 0.5; 0.95; 0.99 ];
        ed.ed_window <- Digest.create ()
      end)
    t.endpoints;
  (* process gauges from the embedding server *)
  List.iter (fun (name, v) -> sample name v) (t.gauges ());
  (* watchdog: judge this tick's samples, record transitions *)
  let events =
    Watchdog.tick t.dog ~now ~lookup:(fun m -> Hashtbl.find_opt latest m)
  in
  List.iter
    (fun ev ->
      t.events <- (now, ev) :: t.events;
      match ev with
      | Watchdog.Fired a ->
          Obs.count "watchdog.alerts_fired";
          Log.warn ~cat:"watchdog" "alert.fired"
            [ ("rule", S a.Watchdog.a_rule);
              ("metric", S a.Watchdog.a_metric);
              ("value", F a.Watchdog.a_value);
              ("detail", S a.Watchdog.a_detail)
            ]
      | Watchdog.Cleared a ->
          Log.info ~cat:"watchdog" "alert.cleared"
            [ ("rule", S a.Watchdog.a_rule); ("metric", S a.Watchdog.a_metric) ])
    events;
  (if List.length t.events > max_events then
     t.events <- List.filteri (fun i _ -> i < max_events) t.events);
  put "watchdog.firing" (float_of_int (List.length (Watchdog.firing t.dog)));
  Tsdb.compact t.tsdb ~now

let tick t ~now = Mutex.protect t.mu (fun () -> tick_locked t ~now)

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let loop t =
  let next = ref (Unix.gettimeofday () +. t.cfg.fl_interval_s) in
  while not (Atomic.get t.stop_flag) do
    (try Unix.sleepf (Float.min 0.05 t.cfg.fl_interval_s)
     with Unix.Unix_error (Unix.EINTR, _, _) -> ());
    let now = Unix.gettimeofday () in
    if now >= !next && not (Atomic.get t.stop_flag) then begin
      tick t ~now;
      next := now +. t.cfg.fl_interval_s
    end
  done

let start ?(gauges = fun () -> []) cfg =
  let dir =
    match cfg.fl_dir with
    | Some d -> d
    | None -> Filename.temp_dir "memcomp-flight-" ".tsdb"
  in
  match Tsdb.open_db ~config:cfg.fl_tsdb dir with
  | Error e -> Error e
  | Ok tsdb ->
      let t =
        { cfg;
          mu = Mutex.create ();
          tsdb;
          dog = Watchdog.create cfg.fl_rules;
          gauges;
          endpoints = Hashtbl.create 8;
          prev_counters = [];
          events = [];
          stop_flag = Atomic.make false;
          domain = None;
          stopped = false
        }
      in
      t.domain <- Some (Domain.spawn (fun () -> loop t));
      Ok t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stop_flag true;
    (match t.domain with Some d -> Domain.join d | None -> ());
    t.domain <- None;
    tick t ~now:(Unix.gettimeofday ());
    Mutex.protect t.mu (fun () -> Tsdb.close t.tsdb)
  end

(* ------------------------------------------------------------------ *)
(* Queries (served by the daemon's endpoints)                          *)
(* ------------------------------------------------------------------ *)

let firing t = Mutex.protect t.mu (fun () -> Watchdog.firing t.dog)

let alerts_json t =
  Mutex.protect t.mu (fun () ->
      Json.Obj
        [ ( "firing",
            Json.Arr
              (List.map
                 (fun a -> Json.Obj (alert_fields a))
                 (Watchdog.firing t.dog)) );
          ( "history",
            Json.Arr
              (List.map
                 (fun (ts, ev) ->
                   let kind, a =
                     match ev with
                     | Watchdog.Fired a -> ("fired", a)
                     | Watchdog.Cleared a -> ("cleared", a)
                   in
                   Json.Obj
                     (("ts", Json.Num ts) :: ("event", Json.Str kind)
                     :: alert_fields a))
                 t.events) )
        ])

let sketch_json t endpoint =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.endpoints endpoint with
      | None -> None
      | Some ed ->
          let dg = ed.ed_total in
          let q p = match Digest.quantile dg p with Some v -> v | None -> 0. in
          let opt = function Some v -> Json.Num v | None -> Json.Null in
          Some
            (Json.Obj
               [ ("endpoint", Json.Str endpoint);
                 ("count", Json.Num (float_of_int (Digest.count dg)));
                 ("min", opt (Digest.minimum dg));
                 ("max", opt (Digest.maximum dg));
                 ("mean", opt (Digest.mean dg));
                 ("p50", Json.Num (q 0.5));
                 ("p90", Json.Num (q 0.9));
                 ("p95", Json.Num (q 0.95));
                 ("p99", Json.Num (q 0.99));
                 ("rank_error", Json.Num (float_of_int (Digest.rank_error dg)));
                 ("centroids", Json.Num (float_of_int (Digest.centroids dg)))
               ]))

let history t ~metric ?since ~res () =
  Mutex.protect t.mu (fun () -> Tsdb.query t.tsdb ~metric ?since ~res ())

let metric_names t = Mutex.protect t.mu (fun () -> Tsdb.metric_names t.tsdb)
