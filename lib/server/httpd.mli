(** Minimal dependency-free HTTP/1.1 server on OCaml 5 domains.

    One accept domain multiplexes the listening socket (with a 250 ms
    [select] tick so {!stop} is noticed promptly) and hands accepted
    connections to a fixed pool of worker domains; the handler runs on
    a worker. One connection per request ([Connection: close]); bodies
    require [Content-Length] (no chunked encoding).

    Binds the loopback interface only — the daemon is a local service,
    not an internet-facing one. *)

type request = {
  meth : string;  (** e.g. ["GET"], ["POST"] *)
  path : string;  (** raw request target, e.g. ["/metrics"] *)
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

type response = {
  status : int;
  content_type : string;
  body : string;
  extra_headers : (string * string) list;
}

val response :
  ?status:int ->
  ?content_type:string ->
  ?headers:(string * string) list ->
  string ->
  response
(** Build a response; defaults: 200, [text/plain; charset=utf-8]. *)

type t

val start : ?workers:int -> port:int -> (request -> response) -> t
(** Bind loopback [port] (0 picks a free port — see {!port}) and serve
    on [workers] (default 4) worker domains. Handler exceptions become
    500 responses; malformed requests 400. *)

val port : t -> int
(** The actually-bound port (useful after [~port:0]). *)

val stop : t -> unit
(** Stop accepting, drain queued connections, join all domains, and
    close the listening socket. Idempotence is not required of callers;
    call once. *)

(** {1 Client helper}

    A tiny blocking HTTP client for the load generator and tests. *)

val request :
  ?meth:string -> ?body:string -> port:int -> string -> (int * string, string) result
(** [request ~port path] connects to loopback [port], performs the
    request, and returns [(status, body)], or [Error] on connection
    failure. *)
