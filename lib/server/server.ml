(* The memcomp compile daemon (see server.mli).

   Endpoints:
     POST /compile         workload+flow+tile JSON -> generated code JSON
                           (flow "tuned" applies the tuning database)
     GET  /metrics         OpenMetrics exposition of the Obs registries
     GET  /healthz         liveness probe (503 while the watchdog fires)
     GET  /buildinfo       version / toolchain / workload inventory
     GET  /trace/<req-id>  archived per-request Chrome trace
     GET  /tuned/<name>    stored tuning-database entries for a workload
     GET  /history/<m>     flight-recorder time series (?since=&res=)
     GET  /sketch/<ep>     cumulative latency-digest quantiles
     GET  /alerts          firing watchdog rules + recent transitions

   Instrumentation contract (the bench load generator relies on it):
   the per-endpoint request counters (http.requests, http.<endpoint>)
   are incremented on arrival, BEFORE the handler runs — so a /metrics
   scrape always includes its own request — while the latency
   histograms are observed after the handler returns. Between two
   otherwise idle scrapes the only counters that move are
   http.requests and http.metrics, each by exactly one.

   Compile requests get a request id (r000001, ...) that links the
   JSONL log lines, the Events decision trace, and the archived Chrome
   trace served at /trace/<id>. *)

open Json_util

type state = {
  started : float;
  inflight : int Atomic.t;
  req_counter : int Atomic.t;
  tune_db : Tune_db.t;  (* loaded once at startup; content-addressed *)
  mutable flight : Flight.t option;  (* self-scrape loop, when enabled *)
}

type t = { st : state; httpd : Httpd.t }

let port t = Httpd.port t.httpd

(* ------------------------------------------------------------------ *)
(* Compile flows (mirrors the CLI's flow table)                        *)
(* ------------------------------------------------------------------ *)

type flow =
  | Flow_naive
  | Flow_heuristic of Fusion.heuristic
  | Flow_ours
  | Flow_polymage
  | Flow_halide
  | Flow_tuned  (* apply the best stored configuration for the program *)

let flow_of_string = function
  | "naive" -> Some Flow_naive
  | "minfuse" -> Some (Flow_heuristic Fusion.Minfuse)
  | "smartfuse" -> Some (Flow_heuristic Fusion.Smartfuse)
  | "maxfuse" -> Some (Flow_heuristic Fusion.Maxfuse)
  | "hybridfuse" -> Some (Flow_heuristic Fusion.Hybridfuse)
  | "ours" -> Some Flow_ours
  | "polymage" -> Some Flow_polymage
  | "halide" -> Some Flow_halide
  | "tuned" -> Some Flow_tuned
  | _ -> None

(* flow "tuned" with no stored entry for the program: a client error
   (404), not a compiler failure *)
exception Tuned_miss of string

(* Returns the compiled version and, for the tuned flow, the applied
   configuration. Lookup is content-addressed, exactly as `memcomp
   tune --db` stores it, so a stale database entry (program or space
   changed since tuning) misses instead of misapplying. *)
let version_of st flow ~tile prog =
  match flow with
  | Flow_naive -> (Exp_util.naive prog, None)
  | Flow_heuristic h ->
      (Exp_util.heuristic ~tile ~target:Core.Pipeline.Cpu h prog, None)
  | Flow_ours -> (Exp_util.ours ~tile ~target:Core.Pipeline.Cpu prog, None)
  | Flow_polymage ->
      (Exp_util.polymage_version ~tile ~target:Core.Pipeline.Cpu prog, None)
  | Flow_halide ->
      (Exp_util.halide_version ~tile ~target:Core.Pipeline.Cpu prog, None)
  | Flow_tuned -> (
      let sp = Search_space.make prog in
      let key = Tune_db.key ~target:"cpu" prog sp in
      match Tune_db.find st.tune_db key with
      | Some e ->
          Obs.count "tuner.serve_hits";
          ( Evaluator.version_of ~target:Core.Pipeline.Cpu prog
              e.Tune_db.en_best,
            Some e.Tune_db.en_best )
      | None ->
          Obs.count "tuner.serve_misses";
          raise
            (Tuned_miss
               (Printf.sprintf
                  "no tuned configuration for workload %S (key %s); run \
                   `memcomp tune %s --db <db>` and restart with --tune-db"
                  prog.Prog.prog_name key prog.Prog.prog_name)))

(* ------------------------------------------------------------------ *)
(* Process gauges                                                      *)
(* ------------------------------------------------------------------ *)

let page_size = 4096

let rss_bytes () =
  match open_in "/proc/self/statm" with
  | exception _ -> 0
  | ic -> (
      let close () = try close_in ic with _ -> () in
      match input_line ic with
      | exception _ ->
          close ();
          0
      | line -> (
          close ();
          match String.split_on_char ' ' line with
          | _ :: resident :: _ -> (
              match int_of_string_opt resident with
              | Some pages -> pages * page_size
              | None -> 0)
          | _ -> 0))

let process_families st =
  let open Openmetrics in
  [ { fam_name = "memcomp_uptime_seconds";
      fam_help = "Seconds since the daemon started";
      fam_type = Gauge;
      fam_samples = [ ([], Unix.gettimeofday () -. st.started) ]
    };
    { fam_name = "memcomp_process_resident_bytes";
      fam_help = "Resident set size of the daemon process";
      fam_type = Gauge;
      fam_samples = [ ([], float_of_int (rss_bytes ())) ]
    };
    { fam_name = "memcomp_jobs_in_flight";
      fam_help = "Compile requests currently executing";
      fam_type = Gauge;
      fam_samples = [ ([], float_of_int (Atomic.get st.inflight)) ]
    }
  ]

(* ------------------------------------------------------------------ *)
(* Handlers                                                            *)
(* ------------------------------------------------------------------ *)

let json_response ?(status = 200) fields =
  Httpd.response ~status ~content_type:"application/json"
    (Json.to_string (Json.Obj fields) ^ "\n")

let error_response status msg = json_response ~status [ ("error", Json.Str msg) ]

(* 503 + the firing rules while any watchdog rule is active: a load
   balancer or orchestrator sees SLO breaches without parsing metrics. *)
let handle_healthz st =
  match Option.map Flight.firing st.flight with
  | None | Some [] -> Httpd.response "ok\n"
  | Some alerts ->
      json_response ~status:503
        [ ("status", Json.Str "degraded");
          ( "firing",
            Json.Arr
              (List.map (fun a -> Json.Str a.Watchdog.a_rule) alerts) )
        ]

let handle_buildinfo () =
  json_response
    [ ("name", Json.Str "memcomp");
      ("version", Json.Str "1.0");
      ("ocaml", Json.Str Sys.ocaml_version);
      ("os_type", Json.Str Sys.os_type);
      ("word_size", Json.Num (float_of_int Sys.word_size));
      ("pid", Json.Num (float_of_int (Unix.getpid ())));
      ("workloads", Json.Num (float_of_int (List.length Registry.all)))
    ]

let watchdog_families st =
  match st.flight with
  | None -> []
  | Some fl ->
      let open Openmetrics in
      [ { fam_name = "memcomp_watchdog_firing";
          fam_help = "Watchdog rules currently firing";
          fam_type = Gauge;
          fam_samples = [ ([], float_of_int (List.length (Flight.firing fl))) ]
        }
      ]

let handle_metrics st =
  Httpd.response
    ~content_type:"application/openmetrics-text; version=1.0.0; charset=utf-8"
    (Openmetrics.render ~extra:(process_families st @ watchdog_families st) ())

(* Raw Obs counters as JSON — the load generator cross-checks the
   /metrics exposition against this (the daemon's internal truth). *)
let handle_counters () =
  json_response
    (List.map (fun (n, v) -> (n, Json.Num (float_of_int v))) (Obs.counters_alist ()))

let handle_trace path =
  let id = String.sub path 7 (String.length path - 7) in
  match Trace_store.find id with
  | Some trace -> Httpd.response ~content_type:"application/json" trace
  | None -> error_response 404 (Printf.sprintf "no archived trace for request %S" id)

(* All stored tuning entries for a workload name. A workload can have
   several (small vs full instance, different spaces), each under its
   own content-addressed key. *)
let handle_tuned st path =
  let name = String.sub path 7 (String.length path - 7) in
  match
    List.filter
      (fun (e : Tune_db.entry) -> e.Tune_db.en_workload = name)
      (Tune_db.entries st.tune_db)
  with
  | [] ->
      error_response 404
        (Printf.sprintf "no tuned configuration for workload %S" name)
  | entries ->
      json_response
        [ ("workload", Json.Str name);
          ("entries", Json.Arr (List.map Tune_db.entry_to_json entries))
        ]

(* ------------------------------------------------------------------ *)
(* Flight-recorder endpoints                                           *)
(* ------------------------------------------------------------------ *)

(* "/history/x?since=1&res=raw" -> ("/history/x", [("since","1"); ("res","raw")]) *)
let split_query path =
  match String.index_opt path '?' with
  | None -> (path, [])
  | Some i ->
      let p = String.sub path 0 i in
      let q = String.sub path (i + 1) (String.length path - i - 1) in
      let params =
        String.split_on_char '&' q
        |> List.filter_map (fun kv ->
               if kv = "" then None
               else
                 match String.index_opt kv '=' with
                 | None -> Some (kv, "")
                 | Some j ->
                     Some
                       ( String.sub kv 0 j,
                         String.sub kv (j + 1) (String.length kv - j - 1) ))
      in
      (p, params)

let with_flight st f =
  match st.flight with
  | Some fl -> f fl
  | None -> error_response 404 "flight recorder disabled"

let handle_alerts st =
  with_flight st (fun fl ->
      Httpd.response ~content_type:"application/json"
        (Json.to_string (Flight.alerts_json fl) ^ "\n"))

let handle_sketch st path =
  with_flight st (fun fl ->
      let endpoint = String.sub path 8 (String.length path - 8) in
      match Flight.sketch_json fl endpoint with
      | Some j ->
          Httpd.response ~content_type:"application/json" (Json.to_string j ^ "\n")
      | None ->
          error_response 404
            (Printf.sprintf "no latency sketch for endpoint %S" endpoint))

let handle_history st path params =
  with_flight st (fun fl ->
      let metric = String.sub path 9 (String.length path - 9) in
      let since =
        match List.assoc_opt "since" params with
        | Some s -> float_of_string_opt s
        | None -> Some neg_infinity
      in
      let res =
        match List.assoc_opt "res" params with
        | Some s -> Tsdb.res_of_string s
        | None -> Some Tsdb.Auto
      in
      match (since, res) with
      | None, _ -> error_response 400 "bad since= parameter (want a number)"
      | _, None -> error_response 400 "bad res= parameter (want raw|10s|60s|auto)"
      | Some since, Some res ->
          let points = Flight.history fl ~metric ~since ~res () in
          json_response
            [ ("metric", Json.Str metric);
              ("res", Json.Str (Tsdb.res_to_string res));
              ( "points",
                Json.Arr
                  (List.map
                     (fun (p : Tsdb.point) ->
                       Json.Obj
                         [ ("ts", Json.Num p.Tsdb.p_ts);
                           ("count", Json.Num (float_of_int p.Tsdb.p_count));
                           ("sum", Json.Num p.Tsdb.p_sum);
                           ("min", Json.Num p.Tsdb.p_min);
                           ("max", Json.Num p.Tsdb.p_max)
                         ])
                     points) )
            ])

let member_string key default body =
  match Json.member key body with
  | Some (Json.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" key)
  | None -> ( match default with Some d -> Ok d | None -> Error (Printf.sprintf "missing field %S" key))

let member_int key default body =
  match Json.member key body with
  | Some (Json.Num f) when Float.is_integer f -> Ok (int_of_float f)
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" key)
  | None -> Ok default

let member_bool key default body =
  match Json.member key body with
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" key)
  | None -> Ok default

let handle_compile st (r : Httpd.request) =
  let ( let* ) x f = match x with Ok v -> f v | Error msg -> error_response 400 msg in
  let* body =
    match Json.parse r.body with
    | Ok b -> Ok b
    | Error msg -> Error (Printf.sprintf "bad JSON body: %s" msg)
  in
  let* workload = member_string "workload" None body in
  let* flow_name = member_string "flow" (Some "ours") body in
  let* tile = member_int "tile" 32 body in
  let* small = member_bool "small" true body in
  let* flow =
    match flow_of_string flow_name with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "unknown flow %S" flow_name)
  in
  (* validated flows only, so the counter-name space stays bounded *)
  Obs.count ("http.compile.flow." ^ flow_name);
  let* entry =
    match List.find_opt (fun e -> e.Registry.reg_name = workload) Registry.all with
    | Some e -> Ok e
    | None -> Error (Printf.sprintf "unknown workload %S" workload)
  in
  let id = Printf.sprintf "r%06d" (Atomic.fetch_and_add st.req_counter 1 + 1) in
  Atomic.incr st.inflight;
  Fun.protect
    ~finally:(fun () -> Atomic.decr st.inflight)
    (fun () ->
      Obs.with_request_id id (fun () ->
          Log.info ~cat:"server" "compile.begin"
            [ ("workload", S workload); ("flow", S flow_name); ("tile", I tile);
              ("small", B small)
            ];
          match
            Obs.span "http.compile" (fun () ->
                let prog = if small then entry.Registry.small () else entry.Registry.build () in
                let v = version_of st flow ~tile prog in
                (prog, v))
          with
          | _prog, (v, tuned) ->
              Obs.count "pipeline.compile_requests";
              Trace_store.add id (Events.chrome_trace ~req:id ());
              Log.info ~cat:"server" "compile.end"
                [ ("workload", S workload); ("flow", S flow_name);
                  ("compile_s", F v.Exp_util.compile_s)
                ];
              json_response
                ([ ("req", Json.Str id);
                   ("workload", Json.Str workload);
                   ("flow", Json.Str v.Exp_util.ver_name);
                   ("tile", Json.Num (float_of_int tile));
                   ("small", Json.Bool small);
                   ("compile_s", Json.Num v.Exp_util.compile_s);
                   ("budget_exceeded", Json.Bool v.Exp_util.budget_exceeded);
                   ("trace", Json.Str ("/trace/" ^ id));
                   ("code", Json.Str (Ast.to_string v.Exp_util.ast))
                 ]
                @
                match tuned with
                | Some c ->
                    [ ("tuned", Search_space.candidate_to_json c) ]
                | None -> [])
          | exception Tuned_miss msg ->
              Trace_store.add id (Events.chrome_trace ~req:id ());
              Log.info ~cat:"server" "compile.tuned_miss"
                [ ("workload", S workload) ];
              error_response 404 msg
          | exception e ->
              Trace_store.add id (Events.chrome_trace ~req:id ());
              Log.error ~cat:"server" "compile.fail"
                [ ("workload", S workload); ("error", S (Printexc.to_string e)) ];
              error_response 500 (Printexc.to_string e)))

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)
(* ------------------------------------------------------------------ *)

let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

let endpoint_of meth path =
  match (meth, path) with
  | "POST", "/compile" -> "compile"
  | "GET", "/metrics" -> "metrics"
  | "GET", "/counters" -> "counters"
  | "GET", "/healthz" -> "healthz"
  | "GET", "/buildinfo" -> "buildinfo"
  | "GET", "/alerts" -> "alerts"
  | "GET", p when has_prefix "/trace/" p -> "trace"
  | "GET", p when has_prefix "/tuned/" p -> "tuned"
  | "GET", p when has_prefix "/history/" p -> "history"
  | "GET", p when has_prefix "/sketch/" p -> "sketch"
  | _ -> "other"

let handler st (r : Httpd.request) =
  let path, params = split_query r.path in
  let endpoint = endpoint_of r.meth path in
  (* counters first (a /metrics scrape includes its own request),
     latency observation and the error counter after the handler *)
  Obs.count "http.requests";
  Obs.count ("http." ^ endpoint);
  let t0 = Unix.gettimeofday () in
  let resp =
    match endpoint with
    | "compile" -> handle_compile st r
    | "metrics" -> handle_metrics st
    | "counters" -> handle_counters ()
    | "healthz" -> handle_healthz st
    | "buildinfo" -> handle_buildinfo ()
    | "alerts" -> handle_alerts st
    | "trace" -> handle_trace path
    | "tuned" -> handle_tuned st path
    | "history" -> handle_history st path params
    | "sketch" -> handle_sketch st path
    | _ ->
        if r.meth <> "GET" && r.meth <> "POST" then
          error_response 405 (Printf.sprintf "method %s not allowed" r.meth)
        else error_response 404 (Printf.sprintf "no route for %s %s" r.meth r.path)
  in
  if resp.Httpd.status >= 400 then Obs.count "http.errors";
  let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  Obs.observe ("http.latency_ms." ^ endpoint) ms;
  (match st.flight with
  | Some fl -> Flight.observe_latency fl ~endpoint ms
  | None -> ());
  Log.debug ~cat:"http" "request"
    [ ("method", S r.meth); ("path", S r.path); ("status", I resp.Httpd.status);
      ("ms", F ms)
    ];
  resp

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let create ?(port = 8080) ?(workers = 4) ?tune_db ?flight () =
  (* the daemon's whole point is live telemetry: recording is on *)
  Obs.reset ();
  Obs.enable ();
  let tune_db =
    match tune_db with
    | None -> Tune_db.empty
    | Some path -> (
        match Tune_db.load path with
        | Ok db ->
            Log.info ~cat:"server" "tune_db.loaded"
              [ ("path", S path); ("entries", I (List.length (Tune_db.entries db))) ];
            db
        | Error msg ->
            (* a bad database must not take the daemon down *)
            Log.warn ~cat:"server" "tune_db.unreadable"
              [ ("path", S path); ("error", S msg) ];
            Tune_db.empty)
  in
  let st =
    { started = Unix.gettimeofday ();
      inflight = Atomic.make 0;
      req_counter = Atomic.make 0;
      tune_db;
      flight = None
    }
  in
  (match flight with
  | None -> ()
  | Some cfg -> (
      let gauges () =
        [ ("process.rss_bytes", float_of_int (rss_bytes ()));
          ("process.uptime_s", Unix.gettimeofday () -. st.started);
          ("process.inflight", float_of_int (Atomic.get st.inflight))
        ]
      in
      match Flight.start ~gauges cfg with
      | Ok fl ->
          st.flight <- Some fl;
          Log.info ~cat:"server" "flight.started"
            [ ("dir", S (Flight.dir fl));
              ("interval_s", F cfg.Flight.fl_interval_s)
            ]
      | Error msg ->
          (* an unopenable tsdb must not take the daemon down *)
          Log.warn ~cat:"server" "flight.unavailable" [ ("error", S msg) ]));
  { st; httpd = Httpd.start ~workers ~port (fun r -> handler st r) }

let flight t = t.st.flight

let stop t =
  Httpd.stop t.httpd;
  match t.st.flight with Some fl -> Flight.stop fl | None -> ()

let run ?(port = 8080) ?(workers = 4) ?tune_db ?(flight = Flight.default_cfg)
    () =
  let stop_requested = Atomic.make false in
  let on_signal _ = Atomic.set stop_requested true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  let t = create ~port ~workers ?tune_db ~flight () in
  Log.info ~cat:"server" "listening"
    [ ("port", I (Httpd.port t.httpd)); ("workers", I workers) ];
  Printf.printf "memcomp serve: listening on 127.0.0.1:%d (%d workers)\n%!"
    (Httpd.port t.httpd) workers;
  while not (Atomic.get stop_requested) do
    try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  Log.info ~cat:"server" "shutdown" [];
  Printf.printf "memcomp serve: shutting down\n%!";
  stop t
