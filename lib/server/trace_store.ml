(* Bounded per-request trace archive.

   The Obs/Events rings are shared and eventually overwrite old
   entries, so the daemon snapshots each request's merged Chrome trace
   right after the request completes and parks it here, keyed by
   request id. GET /trace/<req-id> then serves the archived copy even
   long after the rings have moved on. FIFO-bounded so a long-running
   daemon holds the newest [capacity] traces. *)

let mu = Mutex.create ()

let capacity = ref 256

let order : string Queue.t = Queue.create ()

let tbl : (string, string) Hashtbl.t = Hashtbl.create 64

let with_lock f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let set_capacity n =
  with_lock (fun () ->
      capacity := max 1 n;
      while Queue.length order > !capacity do
        Hashtbl.remove tbl (Queue.pop order)
      done)

let add id trace =
  with_lock (fun () ->
      if not (Hashtbl.mem tbl id) then Queue.push id order;
      Hashtbl.replace tbl id trace;
      while Queue.length order > !capacity do
        Hashtbl.remove tbl (Queue.pop order)
      done)

let find id = with_lock (fun () -> Hashtbl.find_opt tbl id)

let size () = with_lock (fun () -> Hashtbl.length tbl)

let clear () =
  with_lock (fun () ->
      Queue.clear order;
      Hashtbl.reset tbl)
