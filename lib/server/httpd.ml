(* Minimal dependency-free HTTP/1.1 server on OCaml 5 domains (see
   httpd.mli).

   Shape: one accept domain multiplexes the listening socket with
   [Unix.select] (250 ms tick, so a stop request is noticed promptly),
   pushing accepted connections onto a mutex/condition queue drained by
   a fixed pool of worker domains. Every response carries
   "Connection: close" — one connection per request keeps the framing
   trivial and is plenty for a compile daemon whose requests cost
   milliseconds to minutes.

   This is intentionally a subset of HTTP/1.1: request bodies require
   Content-Length (no chunked encoding), and headers are capped at 64
   KiB. Enough for the compile daemon and its load generator. *)

type request = {
  meth : string;
  path : string;
  headers : (string * string) list;  (* header names lowercased *)
  body : string;
}

type response = {
  status : int;
  content_type : string;
  body : string;
  extra_headers : (string * string) list;
}

let response ?(status = 200) ?(content_type = "text/plain; charset=utf-8")
    ?(headers = []) body =
  { status; content_type; body; extra_headers = headers }

let reason_of = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

(* ------------------------------------------------------------------ *)
(* Wire reading/writing                                                *)
(* ------------------------------------------------------------------ *)

let max_head_bytes = 64 * 1024

let max_body_bytes = 16 * 1024 * 1024

exception Bad_request of string

let read_until_blank_line fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    let head = Buffer.contents buf in
    match String.index_opt head '\r' with
    | _ when String.length head > max_head_bytes -> raise (Bad_request "headers too large")
    | _ -> (
        (* look for the header terminator in what we have so far *)
        let idx =
          let rec find i =
            if i + 3 >= String.length head then None
            else if String.sub head i 4 = "\r\n\r\n" then Some i
            else find (i + 1)
          in
          find 0
        in
        match idx with
        | Some i ->
            (String.sub head 0 i, String.sub head (i + 4) (String.length head - i - 4))
        | None ->
            let n = Unix.read fd chunk 0 (Bytes.length chunk) in
            if n = 0 then raise (Bad_request "connection closed mid-headers");
            Buffer.add_subbytes buf chunk 0 n;
            go ())
  in
  go ()

let read_exactly fd already n =
  if n > max_body_bytes then raise (Bad_request "body too large");
  let out = Buffer.create n in
  Buffer.add_string out already;
  let chunk = Bytes.create 4096 in
  while Buffer.length out < n do
    let k = Unix.read fd chunk 0 (min (Bytes.length chunk) (n - Buffer.length out)) in
    if k = 0 then raise (Bad_request "connection closed mid-body");
    Buffer.add_subbytes out chunk 0 k
  done;
  Buffer.contents out

let parse_request fd =
  let head, rest = read_until_blank_line fd in
  match String.split_on_char '\n' head |> List.map (fun l -> String.trim l) with
  | [] -> raise (Bad_request "empty request")
  | request_line :: header_lines ->
      let meth, path =
        match String.split_on_char ' ' request_line with
        | meth :: path :: _ -> (meth, path)
        | _ -> raise (Bad_request "malformed request line")
      in
      let headers =
        List.filter_map
          (fun line ->
            match String.index_opt line ':' with
            | None -> None
            | Some i ->
                Some
                  ( String.lowercase_ascii (String.sub line 0 i),
                    String.trim (String.sub line (i + 1) (String.length line - i - 1)) ))
          header_lines
      in
      let body =
        match List.assoc_opt "content-length" headers with
        | None -> ""
        | Some l -> (
            match int_of_string_opt l with
            | Some n when n >= 0 -> read_exactly fd rest n
            | _ -> raise (Bad_request "bad content-length"))
      in
      { meth; path; headers; body }

let write_all fd s =
  let n = String.length s in
  let b = Bytes.of_string s in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let write_response fd (r : response) =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n%s\r\n"
      r.status (reason_of r.status) r.content_type (String.length r.body)
      (String.concat ""
         (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) r.extra_headers))
  in
  write_all fd (head ^ r.body)

(* ------------------------------------------------------------------ *)
(* Server                                                              *)
(* ------------------------------------------------------------------ *)

(* Shared between the accept domain and the workers. *)
type shared = {
  listen_fd : Unix.file_descr;
  srv_port : int;
  stop : bool Atomic.t;
  qmu : Mutex.t;
  qcond : Condition.t;
  queue : Unix.file_descr Queue.t;
}

type t = {
  sh : shared;
  accept_domain : unit Domain.t;
  workers : unit Domain.t list;
}

let port t = t.sh.srv_port

let handle_connection handler conn =
  let resp =
    match parse_request conn with
    | req -> (
        try handler req
        with e ->
          response ~status:500
            (Printf.sprintf "internal error: %s\n" (Printexc.to_string e)))
    | exception Bad_request msg -> response ~status:400 (msg ^ "\n")
    | exception _ -> response ~status:400 "malformed request\n"
  in
  (try write_response conn resp with _ -> ());
  (try Unix.close conn with _ -> ())

let worker_loop sh handler =
  let rec go () =
    let job =
      Mutex.lock sh.qmu;
      let rec wait () =
        if Atomic.get sh.stop && Queue.is_empty sh.queue then None
        else if Queue.is_empty sh.queue then begin
          Condition.wait sh.qcond sh.qmu;
          wait ()
        end
        else Some (Queue.pop sh.queue)
      in
      let j = wait () in
      Mutex.unlock sh.qmu;
      j
    in
    match job with
    | None -> ()
    | Some conn ->
        handle_connection handler conn;
        go ()
  in
  go ()

let accept_loop sh =
  let rec go () =
    if not (Atomic.get sh.stop) then begin
      (match Unix.select [ sh.listen_fd ] [] [] 0.25 with
      | [ _ ], _, _ -> (
          match Unix.accept sh.listen_fd with
          | conn, _ ->
              Mutex.lock sh.qmu;
              Queue.push conn sh.queue;
              Condition.signal sh.qcond;
              Mutex.unlock sh.qmu
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> ())
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
    else begin
      (* wake every worker so they can observe the stop flag and drain *)
      Mutex.lock sh.qmu;
      Condition.broadcast sh.qcond;
      Mutex.unlock sh.qmu
    end
  in
  go ()

let start ?(workers = 4) ~port handler =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 128;
  let srv_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let sh =
    { listen_fd = fd;
      srv_port;
      stop = Atomic.make false;
      qmu = Mutex.create ();
      qcond = Condition.create ();
      queue = Queue.create ()
    }
  in
  { sh;
    accept_domain = Domain.spawn (fun () -> accept_loop sh);
    workers =
      List.init (max 1 workers) (fun _ ->
          Domain.spawn (fun () -> worker_loop sh handler))
  }

let stop t =
  Atomic.set t.sh.stop true;
  Domain.join t.accept_domain;
  Mutex.lock t.sh.qmu;
  Condition.broadcast t.sh.qcond;
  Mutex.unlock t.sh.qmu;
  List.iter Domain.join t.workers;
  (try Unix.close t.sh.listen_fd with _ -> ())

(* ------------------------------------------------------------------ *)
(* Client helper (used by the bench load generator and tests)          *)
(* ------------------------------------------------------------------ *)

let read_to_eof fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 8192 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
  in
  go ();
  Buffer.contents buf

let request ?(meth = "GET") ?(body = "") ~port path =
  match
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        let head =
          Printf.sprintf
            "%s %s HTTP/1.1\r\nHost: 127.0.0.1:%d\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
            meth path port (String.length body)
        in
        write_all fd (head ^ body);
        let raw = read_to_eof fd in
        (* split status line / headers / body *)
        let hdr_end =
          let rec find i =
            if i + 3 >= String.length raw then raise (Bad_request "truncated response")
            else if String.sub raw i 4 = "\r\n\r\n" then i
            else find (i + 1)
          in
          find 0
        in
        let head_text = String.sub raw 0 hdr_end in
        let body_text = String.sub raw (hdr_end + 4) (String.length raw - hdr_end - 4) in
        let status =
          match String.split_on_char ' ' head_text with
          | _ :: code :: _ -> ( match int_of_string_opt code with Some c -> c | None -> 0)
          | _ -> 0
        in
        (status, body_text))
  with
  | r -> Ok r
  | exception e -> Error (Printexc.to_string e)
