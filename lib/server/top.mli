(** [memcomp top]: live terminal dashboard over a running serve
    daemon, built from the daemon's own public endpoints ([/counters],
    [/metrics], [/alerts], [/history], [/sketch]) — no private
    channel, so anything the dashboard shows is scriptable too.

    Renders request throughput and per-tick latency-quantile
    sparklines (from the flight recorder's [/history] series), the
    compile-flow request mix, cache hit ratio, process gauges and any
    firing watchdog alerts. [--once] prints a single frame and exits;
    [--once --json] emits one machine-readable JSON document. *)

type snapshot

val snapshot : port:int -> (snapshot, string) result
(** Poll the daemon once. [Error] when it is unreachable or answers
    with a non-200 status. *)

val sparkline : float list -> string
(** Unicode block-element sparkline (min..max scaled); [""] on empty
    input. Exposed for tests. *)

val render : snapshot -> string
(** One plain-text dashboard frame (no cursor control). *)

val render_json : snapshot -> Json_util.Json.t

val run : port:int -> interval:float -> once:bool -> json:bool -> int
(** Drive the dashboard: a single frame ([once]) or a live loop
    (clearing the screen between frames, until interrupted). Returns
    the process exit code — 1 when [once] and the daemon is
    unreachable. *)
