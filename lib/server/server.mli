(** The memcomp compile daemon: a long-running HTTP service exposing
    the compiler behind [POST /compile] with live, scrapeable telemetry.

    Endpoints (loopback only):
    - [POST /compile] — JSON body
      [{"workload": .., "flow"?: .., "tile"?: .., "small"?: ..}];
      responds with the generated code, compile time, and the
      request id linking logs / decision trace / Chrome trace.
      Flow ["tuned"] applies the best stored configuration from the
      tuning database (content-addressed lookup, so a stale entry
      misses rather than misapplies); a miss is a 404.
    - [GET /tuned/<workload>] — every stored tuning-database entry for
      that workload name (404 when there is none).
    - [GET /metrics] — OpenMetrics exposition of every Obs counter,
      span and histogram, plus process gauges (uptime, RSS, jobs in
      flight) and per-endpoint latency histograms.
    - [GET /counters] — raw Obs counters as JSON (the internal truth
      the load generator cross-checks /metrics against).
    - [GET /healthz] — liveness probe; 503 with the firing rule names
      while any {!Watchdog} rule is active.
    - [GET /buildinfo]
    - [GET /trace/<req-id>] — archived merged Chrome trace of that
      compile request.
    - [GET /history/<metric>?since=&res=] — flight-recorder time
      series ([res] one of [raw|10s|60s|auto]).
    - [GET /sketch/<endpoint>] — cumulative latency-digest quantiles
      with their certified rank-error bound.
    - [GET /alerts] — firing watchdog alerts plus recent fire/clear
      transitions.

    Instrumentation contract: per-endpoint request counters increment
    on arrival (a /metrics scrape includes its own request); latency
    histograms are observed after the handler. Between two otherwise
    idle scrapes only [http.requests] and [http.metrics] move, each by
    exactly one — the load generator relies on this to check scraped
    counters against the daemon's internals. *)

type t

val create :
  ?port:int -> ?workers:int -> ?tune_db:string -> ?flight:Flight.cfg ->
  unit -> t
(** Enable Obs recording and start serving on loopback [port] (default
    8080; 0 picks a free port) with [workers] worker domains (default
    4). [tune_db] is the tuning-database file backing the ["tuned"]
    flow and [/tuned/<workload>]; an unreadable database logs a
    warning and serves as empty. [flight] enables the flight recorder
    (off by default here; [run] turns it on) — an unopenable tsdb logs
    a warning and serves without it. Returns immediately; use from
    tests or embedders. *)

val port : t -> int

val flight : t -> Flight.t option
(** The running flight recorder, when enabled. *)

val stop : t -> unit

val run :
  ?port:int -> ?workers:int -> ?tune_db:string -> ?flight:Flight.cfg ->
  unit -> unit
(** [create] with the flight recorder on (default
    {!Flight.default_cfg}), then block until SIGTERM or SIGINT, then
    [stop]. The CLI entry point ([memcomp serve]). *)
