(** The memcomp compile daemon: a long-running HTTP service exposing
    the compiler behind [POST /compile] with live, scrapeable telemetry.

    Endpoints (loopback only):
    - [POST /compile] — JSON body
      [{"workload": .., "flow"?: .., "tile"?: .., "small"?: ..}];
      responds with the generated code, compile time, and the
      request id linking logs / decision trace / Chrome trace.
    - [GET /metrics] — OpenMetrics exposition of every Obs counter,
      span and histogram, plus process gauges (uptime, RSS, jobs in
      flight) and per-endpoint latency histograms.
    - [GET /counters] — raw Obs counters as JSON (the internal truth
      the load generator cross-checks /metrics against).
    - [GET /healthz], [GET /buildinfo]
    - [GET /trace/<req-id>] — archived merged Chrome trace of that
      compile request.

    Instrumentation contract: per-endpoint request counters increment
    on arrival (a /metrics scrape includes its own request); latency
    histograms are observed after the handler. Between two otherwise
    idle scrapes only [http.requests] and [http.metrics] move, each by
    exactly one — the load generator relies on this to check scraped
    counters against the daemon's internals. *)

type t

val create : ?port:int -> ?workers:int -> unit -> t
(** Enable Obs recording and start serving on loopback [port] (default
    8080; 0 picks a free port) with [workers] worker domains (default
    4). Returns immediately; use from tests or embedders. *)

val port : t -> int

val stop : t -> unit

val run : ?port:int -> ?workers:int -> unit -> unit
(** [create], then block until SIGTERM or SIGINT, then [stop]. The CLI
    entry point ([memcomp serve]). *)
