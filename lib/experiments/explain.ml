(* memcomp explain: see explain.mli. *)

type t = {
  ex_workload : string;
  ex_flow : string;
  ex_tile : int;
  ex_jobs : int;
  ex_compile_s : float;
  ex_events : Events.t list;
  ex_attribution : (string * Footprints.traffic) list option;
  ex_traffic : Footprints.traffic option;
  ex_prof : Memprof.t;
  ex_metrics : Executor.metrics;
  ex_wall_s : float;
}

let deps_of prog (v : Exp_util.version) =
  match v.Exp_util.flavor with
  | Exp_util.Ours c -> c.Core.Pipeline.deps
  | Exp_util.Naive | Exp_util.Baseline _ -> Deps.compute prog

let collect ?(tile = 32) ?(jobs = 1) ~workload ~make prog =
  Obs.reset ();
  Events.reset ();
  Obs.enable ();
  let v = make prog in
  (* measured attribution: profile the compiled AST through the
     sequential interpreter *)
  let mem = Interp.alloc prog in
  Cpu_model.deterministic_fill ~seed:42 prog mem;
  let prof = Memprof.create mem in
  let (_ : Interp.stats) =
    Interp.run ~observer:(Memprof.observer prof) prog v.Exp_util.ast mem
  in
  (* polyhedral attribution (undefined for the naive flow) *)
  let attribution, traffic =
    match v.Exp_util.flavor with
    | Exp_util.Naive -> (None, None)
    | Exp_util.Baseline _ | Exp_util.Ours _ ->
        let cs = Exp_util.clusters prog v in
        ( Some (Footprints.program_traffic_by_array prog cs),
          Some (Footprints.program_traffic prog cs) )
  in
  (* runtime timelines (also emits runtime.tile events) *)
  let deps = deps_of prog v in
  let r = Runtime.run ~jobs prog ~deps v.Exp_util.ast in
  { ex_workload = workload;
    ex_flow = v.Exp_util.ver_name;
    ex_tile = tile;
    ex_jobs = jobs;
    ex_compile_s = v.Exp_util.compile_s;
    ex_events = Events.recorded ();
    ex_attribution = attribution;
    ex_traffic = traffic;
    ex_prof = prof;
    ex_metrics = r.Runtime.metrics;
    ex_wall_s = r.Runtime.wall_s
  }

(* --- markdown -------------------------------------------------------- *)

let md_table buf ~header rows =
  let line cells =
    Buffer.add_string buf "| ";
    Buffer.add_string buf (String.concat " | " cells);
    Buffer.add_string buf " |\n"
  in
  line header;
  line (List.map (fun _ -> "---") header);
  List.iter line rows;
  Buffer.add_char buf '\n'

let arg_str e key =
  match Events.find e key with Some v -> Events.value_to_string v | None -> ""

let rest_args e skip =
  e.Events.args
  |> List.filter (fun (k, _) -> not (List.mem k skip))
  |> List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (Events.value_to_string v))
  |> String.concat ", "

let cat_events t cat = List.filter (fun e -> e.Events.cat = cat) t.ex_events

let bucket_label b =
  let lo, hi = Memprof.bucket_bounds b in
  if lo = hi then string_of_int lo else Printf.sprintf "%d-%d" lo hi

let to_markdown t =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "# explain: %s (flow %s, tile %d)\n\n" t.ex_workload t.ex_flow t.ex_tile;
  pf "compiled in %.3f s; %d structured events recorded (%d dropped)\n\n"
    t.ex_compile_s (Events.emitted ()) (Events.dropped ());

  pf "## Fusion decisions\n\n";
  (match cat_events t "fusion" with
  | [] -> pf "(none recorded)\n\n"
  | es ->
      md_table buf ~header:[ "verdict"; "prev"; "next"; "reason"; "detail" ]
        (List.map
           (fun e ->
             [ (if e.Events.name = "fusion.accept" then "accept" else "reject");
               arg_str e "prev"; arg_str e "next"; arg_str e "reason";
               rest_args e [ "heuristic"; "prev"; "next"; "reason" ]
             ])
           es));

  pf "## Tile-shape choice\n\n";
  let tiling = cat_events t "tiling" in
  (match List.filter (fun e -> e.Events.name = "tile_shape.candidate") tiling with
  | [] -> pf "(no candidates recorded)\n\n"
  | cands ->
      md_table buf
        ~header:
          [ "space"; "candidate"; "sizes"; "points/tile"; "est bytes/tile";
            "chosen" ]
        (List.map
           (fun e ->
             [ arg_str e "space"; arg_str e "which"; arg_str e "sizes";
               arg_str e "points_per_tile"; arg_str e "est_bytes_per_tile";
               (if arg_str e "chosen" = "true" then "yes" else "") ])
           cands));
  (match
     List.filter (fun e -> e.Events.name <> "tile_shape.candidate") tiling
   with
  | [] -> ()
  | es ->
      pf "extension-schedule decisions:\n\n";
      List.iter
        (fun e -> pf "- %s: %s\n" e.Events.name (rest_args e []))
        es;
      pf "\n");

  pf "## Post-tiling rewrites\n\n";
  (match cat_events t "post_tiling" with
  | [] -> pf "(none)\n\n"
  | es ->
      List.iter (fun e -> pf "- %s: %s\n" e.Events.name (rest_args e [])) es;
      pf "\n");

  pf "## Per-array traffic attribution\n\n";
  (match t.ex_attribution with
  | None -> pf "(polyhedral attribution unavailable for this flow)\n\n"
  | Some rows ->
      let total =
        match t.ex_traffic with
        | Some tr -> tr
        | None -> { Footprints.read_bytes = 0; write_bytes = 0 }
      in
      md_table buf ~header:[ "array"; "read bytes"; "write bytes" ]
        (List.map
           (fun (a, (tr : Footprints.traffic)) ->
             [ a; string_of_int tr.Footprints.read_bytes;
               string_of_int tr.Footprints.write_bytes ])
           rows
        @ [ [ "**total**"; string_of_int total.Footprints.read_bytes;
              string_of_int total.Footprints.write_bytes ] ]));

  pf "## Measured memory profile (interpreted trace)\n\n";
  md_table buf ~header:[ "array"; "accesses"; "reads"; "writes"; "DRAM" ]
    (List.map
       (fun (a, (r : Memprof.row)) ->
         [ a; string_of_int r.Memprof.accesses; string_of_int r.Memprof.reads;
           string_of_int r.Memprof.writes; string_of_int r.Memprof.dram ])
       (Memprof.per_array t.ex_prof));
  md_table buf ~header:[ "statement"; "accesses"; "reads"; "writes"; "DRAM" ]
    (List.map
       (fun (s, (r : Memprof.row)) ->
         [ s; string_of_int r.Memprof.accesses; string_of_int r.Memprof.reads;
           string_of_int r.Memprof.writes; string_of_int r.Memprof.dram ])
       (Memprof.per_stmt t.ex_prof));
  List.iter
    (fun (l : Cache.level_stats) ->
      pf "- %s: %d hits, %d misses\n" l.Cache.level l.Cache.hits l.Cache.misses)
    (Cache.stats (Memprof.cache t.ex_prof));
  pf "- DRAM accesses: %d\n\n" (Cache.dram_accesses (Memprof.cache t.ex_prof));

  pf "## Reuse-distance histogram (64 B lines)\n\n";
  md_table buf ~header:[ "distance"; "count" ]
    (List.map
       (fun (b, c) -> [ bucket_label b; string_of_int c ])
       (Memprof.reuse_histogram t.ex_prof));
  pf "cold (first-touch) accesses: %d over %d distinct lines, %d accesses total\n\n"
    (Memprof.cold_misses t.ex_prof)
    (Memprof.distinct_lines t.ex_prof)
    (Memprof.total_accesses t.ex_prof);

  pf "## Runtime\n\n";
  let m = t.ex_metrics in
  pf "mode %s, %d jobs, %d tiles, %d steals, %d barrier waits, %.3f ms wall\n\n"
    (Executor.mode_name m.Executor.m_mode)
    m.Executor.m_jobs m.Executor.m_tiles m.Executor.m_steals
    m.Executor.m_barrier_waits (1e3 *. t.ex_wall_s);
  md_table buf ~header:[ "worker"; "busy ms"; "tiles" ]
    (Array.to_list
       (Array.mapi
          (fun w b ->
            let tiles =
              List.length
                (List.filter
                   (fun e -> e.Executor.tl_worker = w)
                   m.Executor.m_timeline)
            in
            [ string_of_int w; Printf.sprintf "%.3f" (1e3 *. b);
              string_of_int tiles ])
          m.Executor.m_busy_s));
  Buffer.contents buf

(* --- JSON ------------------------------------------------------------ *)

let json_of_value = function
  | Events.S s -> Snapshot.Json.Str s
  | Events.I i -> Snapshot.Json.Num (float_of_int i)
  | Events.F f -> Snapshot.Json.Num f
  | Events.B b -> Snapshot.Json.Bool b

let json_of_event (e : Events.t) =
  Snapshot.Json.Obj
    [ ("seq", Snapshot.Json.Num (float_of_int e.Events.seq));
      ("ts", Snapshot.Json.Num e.Events.ts_s);
      ("dur", Snapshot.Json.Num e.Events.dur_s);
      ("cat", Snapshot.Json.Str e.Events.cat);
      ("name", Snapshot.Json.Str e.Events.name);
      ("args", Snapshot.Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) e.Events.args))
    ]

let json_of_row (name, (r : Memprof.row)) =
  Snapshot.Json.Obj
    [ ("name", Snapshot.Json.Str name);
      ("accesses", Snapshot.Json.Num (float_of_int r.Memprof.accesses));
      ("reads", Snapshot.Json.Num (float_of_int r.Memprof.reads));
      ("writes", Snapshot.Json.Num (float_of_int r.Memprof.writes));
      ("dram", Snapshot.Json.Num (float_of_int r.Memprof.dram))
    ]

let json_of_hist h =
  Snapshot.Json.Arr
    (List.map
       (fun (b, c) ->
         let lo, hi = Memprof.bucket_bounds b in
         Snapshot.Json.Obj
           [ ("bucket", Snapshot.Json.Num (float_of_int b));
             ("lo", Snapshot.Json.Num (float_of_int lo));
             ("hi", Snapshot.Json.Num (float_of_int hi));
             ("count", Snapshot.Json.Num (float_of_int c))
           ])
       h)

let to_json t =
  let open Snapshot.Json in
  let num i = Num (float_of_int i) in
  let attribution =
    match t.ex_attribution with
    | None -> Null
    | Some rows ->
        Arr
          (List.map
             (fun (a, (tr : Footprints.traffic)) ->
               Obj
                 [ ("array", Str a);
                   ("read_bytes", num tr.Footprints.read_bytes);
                   ("write_bytes", num tr.Footprints.write_bytes)
                 ])
             rows)
  in
  let m = t.ex_metrics in
  Obj
    [ ("workload", Str t.ex_workload);
      ("flow", Str t.ex_flow);
      ("tile", num t.ex_tile);
      ("jobs", num t.ex_jobs);
      ("compile_s", Num t.ex_compile_s);
      ("events", Arr (List.map json_of_event t.ex_events));
      ("attribution", attribution);
      ("profile",
        Obj
          [ ("arrays", Arr (List.map json_of_row (Memprof.per_array t.ex_prof)));
            ("stmts", Arr (List.map json_of_row (Memprof.per_stmt t.ex_prof)));
            ("reuse_histogram", json_of_hist (Memprof.reuse_histogram t.ex_prof));
            ("cold_misses", num (Memprof.cold_misses t.ex_prof));
            ("distinct_lines", num (Memprof.distinct_lines t.ex_prof));
            ("total_accesses", num (Memprof.total_accesses t.ex_prof));
            ("dram_accesses", num (Cache.dram_accesses (Memprof.cache t.ex_prof)));
            ("cache_levels",
              Arr
                (List.map
                   (fun (l : Cache.level_stats) ->
                     Obj
                       [ ("level", Str l.Cache.level);
                         ("hits", num l.Cache.hits);
                         ("misses", num l.Cache.misses)
                       ])
                   (Cache.stats (Memprof.cache t.ex_prof))))
          ]);
      ("runtime",
        Obj
          [ ("mode", Str (Executor.mode_name m.Executor.m_mode));
            ("jobs", num m.Executor.m_jobs);
            ("tiles", num m.Executor.m_tiles);
            ("steals", num m.Executor.m_steals);
            ("barrier_waits", num m.Executor.m_barrier_waits);
            ("wall_s", Num t.ex_wall_s);
            ("busy_s",
              Arr (Array.to_list (Array.map (fun b -> Num b) m.Executor.m_busy_s)));
            ("timeline",
              Arr
                (List.map
                   (fun e ->
                     Obj
                       [ ("tile", num e.Executor.tl_tile);
                         ("worker", num e.Executor.tl_worker);
                         ("start_s", Num e.Executor.tl_start_s);
                         ("dur_s", Num e.Executor.tl_dur_s)
                       ])
                   m.Executor.m_timeline))
          ])
    ]

let to_json_string t = Snapshot.Json.to_string (to_json t)
