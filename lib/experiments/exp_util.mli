(** Shared plumbing for the experiment drivers (bench/main.ml): version
    compilation, profiling, table rendering. *)

type flavor =
  | Naive
  | Baseline of Core.Pipeline.baseline * int  (** tile size used *)
  | Ours of Core.Pipeline.compiled

type version = {
  ver_name : string;
  uid : int;
  ast : Ast.t;
  flavor : flavor;
  compile_s : float;  (** wall-clock of the compilation flow *)
  budget_exceeded : bool;
}

val naive : Prog.t -> version
(** Sequential, untiled, unfused (the PolyMage "naive" baseline and the
    PPCG input). *)

val heuristic :
  ?tile:int -> ?max_steps:int -> ?fuse_reductions:bool ->
  target:Core.Pipeline.target -> Fusion.heuristic -> Prog.t -> version

val ours :
  ?tile:int -> ?tile_sizes:int array -> ?startup:Fusion.heuristic ->
  ?fuse_reductions:bool -> ?recompute_limit:float ->
  target:Core.Pipeline.target -> Prog.t -> version

val polymage_version :
  ?tile:int -> ?tile_sizes:int array -> target:Core.Pipeline.target ->
  Prog.t -> version
(** Ours with the dilated (over-approximated) extension schedules. *)

val halide_version :
  ?tile:int -> ?tile_sizes:int array -> target:Core.Pipeline.target ->
  Prog.t -> version
(** The per-benchmark manual schedule from {!Competitors}. *)

val tree_of : Prog.t -> version -> Schedule_tree.t
(** The schedule tree the version's AST was generated from (recomputed
    for the naive flow, whose constructor discards it). *)

val check_against : Prog.t -> version -> version -> bool
(** Semantic equivalence of live-out arrays (interpreter oracle). *)

val cpu_profile : Prog.t -> version -> Cpu_model.report
(** Trace-driven profile, cached per (program name, version name). *)

val cpu_time_ms : ?vectorize:bool -> Prog.t -> version -> threads:int -> float

val clusters : Prog.t -> version -> Footprints.cluster list
(** Polyhedral cluster summaries for the analytic models (not available
    for the naive version). *)

val gpu_time_ms : Prog.t -> version -> float

val print_table : header:string list -> string list list -> unit
(** Aligned plain-text table. *)

val section : string -> unit

val time_it : (unit -> 'a) -> 'a * float
