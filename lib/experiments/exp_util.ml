type flavor =
  | Naive
  | Baseline of Core.Pipeline.baseline * int  (* tile size used *)
  | Ours of Core.Pipeline.compiled

type version = {
  ver_name : string;
  uid : int;
  ast : Ast.t;
  flavor : flavor;
  compile_s : float;
  budget_exceeded : bool;
}

(* Atomic: versions are built concurrently by the serve daemon's worker
   domains, and a duplicated uid would alias profile-cache entries. *)
let next_uid =
  let c = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add c 1 + 1

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let naive (p : Prog.t) =
  let (ast, compile_s) =
    time_it (fun () ->
        let deps = Deps.compute p in
        let r = Fusion.schedule p ~deps ~target_parallelism:1 Fusion.Minfuse in
        Gen.generate p (Build_tree.initial_tree p r))
  in
  { ver_name = "naive"; uid = next_uid (); ast; flavor = Naive; compile_s; budget_exceeded = false }

let heuristic ?(tile = 32) ?max_steps ?fuse_reductions ~target h (p : Prog.t) =
  let ((b, ast), compile_s) =
    time_it (fun () ->
        let b =
          Core.Pipeline.run_heuristic ~tile_size:tile ?max_steps ?fuse_reductions
            ~target h p
        in
        (b, Gen.generate p b.Core.Pipeline.b_tree))
  in
  { ver_name = Fusion.heuristic_name h;
    uid = next_uid ();
    ast;
    flavor = Baseline (b, tile);
    compile_s;
    budget_exceeded = b.Core.Pipeline.b_result.Fusion.budget_exceeded
  }

let sizes_for ?tile_sizes ~tile () =
  match tile_sizes with
  | None -> None
  | Some sizes ->
      Some
        (fun (s : Core.Spaces.t) ->
          let bd = s.Core.Spaces.group.Fusion.band_dims in
          Array.init bd (fun d ->
              if d < Array.length sizes then sizes.(d)
              else if Array.length sizes > 0 then sizes.(Array.length sizes - 1)
              else tile))

let ours ?(tile = 32) ?tile_sizes ?(startup = Fusion.Smartfuse) ?fuse_reductions
    ?recompute_limit ~target (p : Prog.t) =
  let ((c, ast), compile_s) =
    time_it (fun () ->
        let c =
          Core.Pipeline.run ~startup ~tile_size:tile
            ?tile_sizes_for:(sizes_for ?tile_sizes ~tile ()) ?fuse_reductions
            ?recompute_limit ~target p
        in
        (c, Gen.generate p c.Core.Pipeline.tree))
  in
  { ver_name = "ours"; uid = next_uid (); ast; flavor = Ours c; compile_s; budget_exceeded = false }

let polymage_version ?(tile = 32) ?tile_sizes ~target (p : Prog.t) =
  let ((c, ast), compile_s) =
    time_it (fun () ->
        let c =
          Core.Pipeline.run ~tile_size:tile
            ?tile_sizes_for:(sizes_for ?tile_sizes ~tile ()) ~target p
        in
        let c = Competitors.polymage c in
        (c, Gen.generate p c.Core.Pipeline.tree))
  in
  { ver_name = "polymage"; uid = next_uid (); ast; flavor = Ours c; compile_s; budget_exceeded = false }

let halide_version ?(tile = 32) ?tile_sizes ~target (p : Prog.t) =
  let ((c, ast), compile_s) =
    time_it (fun () ->
        let c =
          Core.Pipeline.run ~tile_size:tile
            ?tile_sizes_for:(sizes_for ?tile_sizes ~tile ())
            ~fusable:(fun (s : Core.Spaces.t) ->
              List.for_all
                (Competitors.halide_fused_stages p.Prog.prog_name)
                s.Core.Spaces.group.Fusion.stmts)
            ~target p
        in
        (c, Gen.generate p c.Core.Pipeline.tree))
  in
  { ver_name = "halide"; uid = next_uid (); ast; flavor = Ours c; compile_s; budget_exceeded = false }

(* The schedule tree a version's AST was generated from. The naive
   constructor discards its tree, so it is recomputed here — the naive
   flow is deterministic and cheap (no tiling search). *)
let tree_of (p : Prog.t) v =
  match v.flavor with
  | Naive ->
      let deps = Deps.compute p in
      let r = Fusion.schedule p ~deps ~target_parallelism:1 Fusion.Minfuse in
      Build_tree.initial_tree p r
  | Baseline (b, _) -> b.Core.Pipeline.b_tree
  | Ours c -> c.Core.Pipeline.tree

let check_against (p : Prog.t) v1 v2 =
  let m1 = Cpu_model.run_to_memory p v1.ast in
  let m2 = Cpu_model.run_to_memory p v2.ast in
  List.for_all (fun a -> Interp.arrays_equal m1 m2 a) p.Prog.live_out

(* ------------------------------------------------------------------ *)
(* Profiles and models                                                 *)
(* ------------------------------------------------------------------ *)

let profile_cache : (int, Cpu_model.report) Hashtbl.t = Hashtbl.create 32

(* Guards the table only: profiling runs outside the lock (it can take
   seconds; a duplicated concurrent profile is pure and harmless). *)
let profile_mu = Mutex.create ()

let cpu_profile (p : Prog.t) v =
  ignore p.Prog.prog_name;
  let key = v.uid in
  let cached =
    Mutex.lock profile_mu;
    let r = Hashtbl.find_opt profile_cache key in
    Mutex.unlock profile_mu;
    r
  in
  match cached with
  | Some r ->
      Obs.count "exp.profile_cache.hits";
      r
  | None ->
      Obs.count "exp.profile_cache.misses";
      let r = Obs.span "exp.cpu_profile" (fun () -> Cpu_model.profile p v.ast) in
      Mutex.lock profile_mu;
      Hashtbl.replace profile_cache key r;
      Mutex.unlock profile_mu;
      r

let cpu_time_ms ?vectorize (p : Prog.t) v ~threads =
  Cpu_model.time_ms ?vectorize Cpu_model.xeon_e5_2683 (cpu_profile p v) ~threads

let clusters (_p : Prog.t) v =
  match v.flavor with
  | Naive -> invalid_arg "Exp_util.clusters: naive version has no clusters"
  | Baseline (b, tile) -> Footprints.clusters_of_baseline ~tile_size:tile b
  | Ours c -> Footprints.clusters_of_compiled c

let gpu_time_ms (p : Prog.t) v =
  Gpu_model.time_ms Gpu_model.quadro_p6000 p (clusters p v)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let print_table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let widths =
    Array.init cols (fun c ->
        List.fold_left
          (fun acc row ->
            match List.nth_opt row c with
            | Some cell -> max acc (String.length cell)
            | None -> acc)
          0 all)
  in
  let print_row row =
    let cells =
      List.mapi (fun c cell -> Printf.sprintf "%-*s" widths.(c) cell) row
    in
    print_endline ("  " ^ String.concat "  " cells)
  in
  print_row header;
  print_row (List.init cols (fun c -> String.make widths.(c) '-'));
  List.iter print_row rows

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')
