(** [memcomp explain]: one-stop report tying the scheduler's decision
    trace to measured memory-hierarchy behavior.

    {!collect} compiles a workload with the structured event log
    enabled (fusion accept/reject, tile-shape candidates, post-tiling
    rewrites), profiles the compiled AST through the sequential
    interpreter with a {!Memprof} observer (reuse-distance histograms,
    per-array / per-statement attribution), computes the polyhedral
    per-array traffic attribution, and executes the tile graph on the
    parallel runtime for per-tile timelines. The result renders as
    markdown ({!to_markdown}) or JSON ({!to_json_string}). *)

type t = {
  ex_workload : string;
  ex_flow : string;
  ex_tile : int;
  ex_jobs : int;
  ex_compile_s : float;
  ex_events : Events.t list;
      (** every structured event recorded during collection, oldest
          first: compile-time decisions plus runtime.tile samples *)
  ex_attribution : (string * Footprints.traffic) list option;
      (** polyhedral per-array traffic; [None] for the naive flow
          (no cluster summary) *)
  ex_traffic : Footprints.traffic option;
  ex_prof : Memprof.t;
  ex_metrics : Executor.metrics;
  ex_wall_s : float;
}

val collect :
  ?tile:int ->
  ?jobs:int ->
  workload:string ->
  make:(Prog.t -> Exp_util.version) ->
  Prog.t ->
  t
(** Resets and enables [Obs] and [Events], then compiles, profiles and
    executes. [make] builds the version under [Obs] instrumentation
    (e.g. [Exp_util.ours ~tile ~target:Cpu]). *)

val to_markdown : t -> string

val to_json : t -> Snapshot.Json.t

val to_json_string : t -> string
