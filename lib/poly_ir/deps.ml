open Presburger

type kind = Raw | War | Waw

type t = {
  kind : kind;
  src : string;
  dst : string;
  array : string;
  rel : Imap.t;
}

let restrict (s : Prog.stmt) (a : Prog.access) =
  Bmap.intersect_domain a.Prog.rel s.Prog.domain

(* Same-element relation between a source access and a destination
   access: src instance -> dst instance. *)
let same_element (src_stmt : Prog.stmt) (src_acc : Prog.access)
    (dst_stmt : Prog.stmt) (dst_acc : Prog.access) =
  let src_rel = restrict src_stmt src_acc in
  let dst_rel = restrict dst_stmt dst_acc in
  Bmap.apply_range src_rel (Bmap.reverse dst_rel)

let dep_pieces ~same_stmt (src_stmt : Prog.stmt) src_acc dst_stmt dst_acc =
  Obs.count "deps.pair_tests";
  let base = same_element src_stmt src_acc dst_stmt dst_acc in
  if Bmap.is_empty base then []
  else if not same_stmt then [ base ]
  else
    let order = Imap.lex_lt (Bset.space src_stmt.Prog.domain) in
    List.filter_map
      (fun piece ->
        let i = Bmap.intersect base piece in
        if Bmap.is_empty i then None else Some i)
      (Imap.pieces order)

let compute (p : Prog.t) =
  Obs.span "deps.compute" @@ fun () ->
  let stmts = Array.of_list p.Prog.stmts in
  let n = Array.length stmts in
  let deps = ref [] in
  let add kind src dst array pieces =
    if pieces <> [] then begin
      Obs.count "deps.edges";
      (match kind with
      | Raw -> Obs.count "deps.raw"
      | War -> Obs.count "deps.war"
      | Waw -> Obs.count "deps.waw");
      deps :=
        { kind;
          src = src.Prog.stmt_name;
          dst = dst.Prog.stmt_name;
          array;
          rel = Imap.of_bmaps pieces
        }
        :: !deps
    end
  in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let si = stmts.(i) and sj = stmts.(j) in
      let same = i = j in
      (* RAW: si writes, sj reads *)
      List.iter
        (fun (r : Prog.access) ->
          if r.Prog.array = si.Prog.write.Prog.array then
            add Raw si sj r.Prog.array
              (dep_pieces ~same_stmt:same si si.Prog.write sj r))
        sj.Prog.reads;
      (* WAR: si reads, sj writes *)
      List.iter
        (fun (r : Prog.access) ->
          if r.Prog.array = sj.Prog.write.Prog.array then
            add War si sj r.Prog.array
              (dep_pieces ~same_stmt:same si r sj sj.Prog.write))
        si.Prog.reads;
      (* WAW *)
      if si.Prog.write.Prog.array = sj.Prog.write.Prog.array then
        add Waw si sj si.Prog.write.Prog.array
          (dep_pieces ~same_stmt:same si si.Prog.write sj sj.Prog.write)
    done
  done;
  List.rev !deps

let raw_edges deps =
  List.fold_left
    (fun acc d ->
      if d.kind = Raw && d.src <> d.dst && not (List.mem (d.src, d.dst) acc) then
        acc @ [ (d.src, d.dst) ]
      else acc)
    [] deps

let between deps ~src ~dst =
  List.filter (fun d -> d.src = src && d.dst = dst) deps

let delta_bounds (p : Prog.t) (piece : Bmap.t) ~src_dim ~dst_dim =
  let piece = Bmap.bind_params piece p.Prog.params in
  let np = Bmap.n_params piece in
  let ni = Bmap.n_in piece and no = Bmap.n_out piece in
  let w = np + ni + no in
  (* Append a fresh variable t with t = dst_dim - src_dim, then eliminate
     everything else and read constant bounds on t. *)
  let cstrs =
    List.map (fun c -> Cstr.insert_vars c ~pos:w ~count:1) (Bmap.domain_map_cstrs piece)
  in
  let teq =
    let coef = Array.make (w + 1) 0 in
    coef.(w) <- 1;
    coef.(np + ni + dst_dim) <- -1;
    coef.(np + src_dim) <- 1;
    Cstr.eq coef 0
  in
  let vars = List.init w (fun i -> i) in
  let residue =
    try Fm.eliminate_many ~exact:true ~vars (teq :: cstrs)
    with Fm.Inexact _ -> Fm.eliminate_many ~exact:false ~vars (teq :: cstrs)
  in
  let lowers, uppers = Fm.bounds_for ~var:w residue in
  let lo =
    List.fold_left
      (fun acc (a, (c : Cstr.t)) ->
        let v = Vec.ceil_div (-c.Cstr.cst) a in
        match acc with None -> Some v | Some x -> Some (max x v))
      None lowers
  in
  let hi =
    List.fold_left
      (fun acc (b, (c : Cstr.t)) ->
        let v = Vec.floor_div c.Cstr.cst b in
        match acc with None -> Some v | Some x -> Some (min x v))
      None uppers
  in
  (lo, hi)

let sccs (p : Prog.t) deps =
  let names = List.map (fun s -> s.Prog.stmt_name) p.Prog.stmts in
  let n = List.length names in
  let index name = Prog.stmt_index p name in
  let succ = Array.make n [] in
  List.iter
    (fun d ->
      let i = index d.src and j = index d.dst in
      if i <> j && not (List.mem j succ.(i)) then succ.(i) <- j :: succ.(i))
    deps;
  (* Tarjan *)
  let idx = Array.make n (-1) and low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] and counter = ref 0 in
  let comps = ref [] in
  let rec strongconnect v =
    idx.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if idx.(w) < 0 then begin
          strongconnect w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) idx.(w))
      succ.(v);
    if low.(v) = idx.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> assert false
      in
      comps := pop [] :: !comps
    end
  in
  for v = 0 to n - 1 do
    if idx.(v) < 0 then strongconnect v
  done;
  (* Order the components topologically, breaking ties by textual order
     (Kahn's algorithm, always emitting the ready component whose first
     statement appears earliest). The stable order matters downstream:
     fusion merges adjacent groups, so independent nests must not
     interleave with a producer-consumer chain. *)
  let comps = Array.of_list (List.map (List.sort compare) !comps) in
  let nc = Array.length comps in
  let comp_of = Array.make n (-1) in
  Array.iteri (fun ci members -> List.iter (fun v -> comp_of.(v) <- ci) members) comps;
  let indegree = Array.make nc 0 in
  let comp_succ = Array.make nc [] in
  Array.iteri
    (fun v ws ->
      List.iter
        (fun w ->
          let cv = comp_of.(v) and cw = comp_of.(w) in
          if cv <> cw && not (List.mem cw comp_succ.(cv)) then begin
            comp_succ.(cv) <- cw :: comp_succ.(cv);
            indegree.(cw) <- indegree.(cw) + 1
          end)
        ws)
    succ;
  let emitted = Array.make nc false in
  let order = ref [] in
  for _ = 1 to nc do
    let best = ref (-1) in
    for ci = nc - 1 downto 0 do
      if (not emitted.(ci)) && indegree.(ci) = 0 then
        if !best < 0 || List.hd comps.(ci) < List.hd comps.(!best) then best := ci
    done;
    assert (!best >= 0);
    emitted.(!best) <- true;
    List.iter (fun cw -> indegree.(cw) <- indegree.(cw) - 1) comp_succ.(!best);
    order := !best :: !order
  done;
  let name_of i = List.nth names i in
  List.rev_map (fun ci -> List.map name_of comps.(ci)) !order
