open Presburger

type root = { tiling : Tile_shapes.tiling; fused_ids : int list }

type plan = {
  roots : root list;
  skipped : int list;  (* fully fused spaces: original subtree suppressed *)
  residual : (int * string list) list;
      (* partially fused spaces: statements still executed in the
         original nest (unfused producers of dynamically guarded code) *)
  standalone : int list;
}

(* Over-approximated instance set of an extension; used only for the
   shared-space disjointness test, where over-approximation is
   conservative (a spurious overlap prevents fusion, never causing
   redundant computation). *)
let ext_range (p : Prog.t) (e : Tile_shapes.extension) =
  Iset.of_bsets
    (List.map
       (fun piece -> Bset.bind_params (Bmap.range_approx piece) p.Prog.params)
       (Imap.pieces e.Tile_shapes.ext_rel))

let tilable (s : Spaces.t) ~parallelism_cap =
  let g = s.Spaces.group in
  g.Fusion.band_dims > 0 && g.Fusion.permutable
  && min (Fusion.n_parallel g) parallelism_cap >= 1

(* Remove a space's extension from a tiling, cascading to extensions
   that were derived through it. *)
let rec unfuse_from (t : Tile_shapes.tiling) id =
  let removed, kept =
    List.partition
      (fun (e : Tile_shapes.extension) ->
        e.Tile_shapes.space_id = id || List.mem id e.Tile_shapes.parents)
      t.Tile_shapes.extensions
  in
  let t = { t with Tile_shapes.extensions = kept } in
  List.fold_left
    (fun t (e : Tile_shapes.extension) ->
      if e.Tile_shapes.space_id = id then t
      else unfuse_from t e.Tile_shapes.space_id)
    t removed

let plan ?(fusable = fun (_ : Spaces.t) -> true) ?recompute_limit (p : Prog.t)
    ~spaces ~tile_sizes_for ~parallelism_cap =
  Obs.span "post_tiling.plan" @@ fun () ->
  let liveouts = List.filter (fun (s : Spaces.t) -> s.Spaces.live_out) spaces in
  let fused_status = Hashtbl.create 16 in
  (* claimed space -> list of liveout ids that fused it *)
  let tilings : (int, Tile_shapes.tiling) Hashtbl.t = Hashtbl.create 8 in
  let standalone = ref [] in
  let processed_roots = ref [] in
  let is_claimed id = Hashtbl.mem fused_status id in
  let run_root (s : Spaces.t) =
    Obs.count "post_tiling.roots_run";
    processed_roots := !processed_roots @ [ s.Spaces.id ];
    if not (tilable s ~parallelism_cap) then begin
      Obs.count "post_tiling.standalone";
      Events.emit ~cat:"post_tiling" "post_tiling.standalone"
        [ ("space", Events.I s.Spaces.id);
          ("stmts", Events.S (String.concat "+" s.Spaces.group.Fusion.stmts));
          ("reason", Events.S "untilable")
        ];
      standalone := !standalone @ [ s.Spaces.id ]
    end
    else begin
      (* shared intermediates are deliberately offered to every root
         (Algorithm 3 computes one extension schedule per use and then
         tests their intersection); only spaces already scheduled as
         roots are excluded *)
      let intermediates =
        Spaces.producer_closure spaces s
        |> List.filter (fun (c : Spaces.t) ->
               fusable c && not (List.mem c.Spaces.id !processed_roots))
      in
      let tiling =
        Tile_shapes.construct ?recompute_limit p ~liveout:s ~intermediates
          ~tile_sizes:(tile_sizes_for s) ~parallelism_cap
      in
      Hashtbl.replace tilings s.Spaces.id tiling;
      List.iter
        (fun (e : Tile_shapes.extension) ->
          let prev =
            Option.value ~default:[]
              (Hashtbl.find_opt fused_status e.Tile_shapes.space_id)
          in
          Hashtbl.replace fused_status e.Tile_shapes.space_id
            (prev @ [ s.Spaces.id ]))
        tiling.Tile_shapes.extensions
    end
  in
  List.iter run_root liveouts;
  (* Fixpoint: resolve shared spaces (ranges must be disjoint across the
     roots that fused them) and consumer coverage (every consumer of a
     fused space must itself be covered by the fusion), then promote
     still-unclaimed spaces to roots. *)
  let unfuse_everywhere id =
    Obs.count "post_tiling.unfuse";
    Hashtbl.iter
      (fun root_id t ->
        let t' = unfuse_from t id in
        if
          List.length t'.Tile_shapes.extensions
          <> List.length t.Tile_shapes.extensions
        then Hashtbl.replace tilings root_id t')
      (Hashtbl.copy tilings);
    (* rebuild fused_status from the tilings *)
    Hashtbl.reset fused_status;
    Hashtbl.iter
      (fun root_id (t : Tile_shapes.tiling) ->
        List.iter
          (fun (e : Tile_shapes.extension) ->
            let prev =
              Option.value ~default:[]
                (Hashtbl.find_opt fused_status e.Tile_shapes.space_id)
            in
            Hashtbl.replace fused_status e.Tile_shapes.space_id (prev @ [ root_id ]))
          t.Tile_shapes.extensions)
      tilings
  in
  let shared_ok id root_ids =
    match root_ids with
    | [] | [ _ ] -> true
    | _ ->
        let ranges =
          List.map
            (fun rid ->
              let t = Hashtbl.find tilings rid in
              let e =
                List.find
                  (fun (e : Tile_shapes.extension) -> e.Tile_shapes.space_id = id)
                  t.Tile_shapes.extensions
              in
              ext_range p e)
            root_ids
        in
        let rec disjoint = function
          | [] | [ _ ] -> true
          | r :: rest ->
              List.for_all (fun r' -> Iset.is_empty (Iset.intersect r r')) rest
              && disjoint rest
        in
        disjoint ranges
  in
  let fused_stmts_of id root_ids =
    List.concat_map
      (fun rid ->
        let t = Hashtbl.find tilings rid in
        List.concat_map
          (fun (e : Tile_shapes.extension) ->
            if e.Tile_shapes.space_id = id then Tile_shapes.fused_stmts e else [])
          t.Tile_shapes.extensions)
      root_ids
    |> List.sort_uniq compare
  in
  let coverage_ok id root_ids =
    let space = Spaces.find spaces id in
    let fused = fused_stmts_of id root_ids in
    let fused_arrays =
      List.map (fun st -> (Prog.find_stmt p st).Prog.write.Prog.array) fused
      |> List.sort_uniq compare
    in
    (* a residual statement must not read an array computed only inside
       the consumer tiles *)
    let residual =
      List.filter (fun st -> not (List.mem st fused)) space.Spaces.group.Fusion.stmts
    in
    let residual_ok =
      List.for_all
        (fun st ->
          List.for_all
            (fun (r : Prog.access) -> not (List.mem r.Prog.array fused_arrays))
            (Prog.find_stmt p st).Prog.reads)
        residual
    in
    (* Coverage is a statement-level property: a consumer space may be
       only partially fused, in which case its residual statements still
       execute in the original nest and read arrays globally. Checking
       "the consumer space has an extension in the root" is too weak —
       the extension may recompute a different statement of that space
       while the actual consumer statement stays residual (seed-1057
       mis-schedule: {s1;s2} space had s2 fused, so the fully-fused
       producer of s1's input was skipped even though s1 ran residually
       against never-computed data). *)
    let stmt_roots st =
      (* roots in whose tiles statement [st] executes: its own space
         when scheduled as a root, plus every root that fused it *)
      Hashtbl.fold
        (fun rid (t : Tile_shapes.tiling) acc ->
          let own =
            List.mem st (Spaces.find spaces rid).Spaces.group.Fusion.stmts
          in
          let in_ext =
            List.exists
              (fun (e : Tile_shapes.extension) ->
                List.mem st (Tile_shapes.fused_stmts e))
              t.Tile_shapes.extensions
          in
          if own || in_ext then rid :: acc else acc)
        tilings []
    in
    let consumer_stmts =
      List.concat_map
        (fun (c : Spaces.t) ->
          if c.Spaces.id = id then []
          else
            List.filter
              (fun st ->
                List.exists
                  (fun (r : Prog.access) -> List.mem r.Prog.array fused_arrays)
                  (Prog.find_stmt p st).Prog.reads)
              c.Spaces.group.Fusion.stmts)
        spaces
    in
    residual_ok
    && List.for_all
         (fun st ->
           match stmt_roots st with
           | [] -> false
           | roots -> List.for_all (fun r -> List.mem r root_ids) roots)
         consumer_stmts
  in
  let rec fixpoint () =
    let offender =
      Hashtbl.fold
        (fun id root_ids acc ->
          match acc with
          | Some _ -> acc
          | None ->
              if not (shared_ok id root_ids) then
                Some (id, "shared_overlap", root_ids)
              else if not (coverage_ok id root_ids) then
                Some (id, "consumer_coverage", root_ids)
              else None)
        fused_status None
    in
    match offender with
    | Some (id, predicate, root_ids) ->
        Events.emit ~cat:"post_tiling" "post_tiling.unfuse"
          [ ("space", Events.I id);
            ("failed_predicate", Events.S predicate);
            ("roots", Events.S (String.concat "+" (List.map string_of_int root_ids)))
          ];
        unfuse_everywhere id;
        fixpoint ()
    | None ->
        (* promote unclaimed, unprocessed intermediates to roots *)
        let unclaimed =
          List.filter
            (fun (s : Spaces.t) ->
              (not s.Spaces.live_out)
              && (not (is_claimed s.Spaces.id))
              && not (List.mem s.Spaces.id !processed_roots))
            spaces
        in
        (* only promote spaces none of whose consumers is still unclaimed
           (work sinks-first so producers can fuse into promoted roots) *)
        let promotable =
          List.filter
            (fun (s : Spaces.t) ->
              List.for_all
                (fun (c : Spaces.t) ->
                  is_claimed c.Spaces.id || List.mem c.Spaces.id !processed_roots)
                (Spaces.consumers spaces s))
            unclaimed
        in
        match promotable with
        | [] ->
            (* no progress possible; schedule any remaining unclaimed
               spaces standalone *)
            List.iter
              (fun (s : Spaces.t) ->
                processed_roots := !processed_roots @ [ s.Spaces.id ];
                standalone := !standalone @ [ s.Spaces.id ])
              unclaimed
        | _ :: _ ->
            Obs.add "post_tiling.promotions" (List.length promotable);
            Events.emit ~cat:"post_tiling" "post_tiling.promote"
              [ ( "spaces",
                  Events.S
                    (String.concat "+"
                       (List.map
                          (fun (s : Spaces.t) -> string_of_int s.Spaces.id)
                          promotable)) )
              ];
            List.iter run_root promotable;
            fixpoint ()
  in
  fixpoint ();
  let roots =
    List.filter_map
      (fun rid ->
        match Hashtbl.find_opt tilings rid with
        | Some t ->
            Some
              { tiling = t;
                fused_ids =
                  List.map
                    (fun (e : Tile_shapes.extension) -> e.Tile_shapes.space_id)
                    t.Tile_shapes.extensions
              }
        | None -> None)
      !processed_roots
  in
  let skipped, residual =
    Hashtbl.fold
      (fun id root_ids (sk, res) ->
        let fused = fused_stmts_of id root_ids in
        let space = Spaces.find spaces id in
        let rest =
          List.filter (fun st -> not (List.mem st fused)) space.Spaces.group.Fusion.stmts
        in
        if rest = [] then (id :: sk, res) else (sk, (id, rest) :: res))
      fused_status ([], [])
  in
  { roots;
    skipped = List.sort compare skipped;
    residual = List.sort compare residual;
    standalone = List.sort compare !standalone
  }

let fused_into plan id =
  List.filter_map
    (fun r -> if List.mem id r.fused_ids then Some r.tiling else None)
    plan.roots

(* ------------------------------------------------------------------ *)
(* Algorithm 2: tree construction                                      *)
(* ------------------------------------------------------------------ *)

let tile_band_of (t : Tile_shapes.tiling) (liveout : Spaces.t) =
  let g = liveout.Spaces.group in
  let coincident = Array.sub g.Fusion.coincident 0 g.Fusion.band_dims in
  Schedule_tree.mk_band ~partial:t.Tile_shapes.tile_rel
    ~permutable:g.Fusion.permutable ~coincident

let root_subtree (p : Prog.t) ~spaces (r : root) =
  let liveout = Spaces.find spaces r.tiling.Tile_shapes.liveout_id in
  let g = liveout.Spaces.group in
  let point_band =
    Build_tree.group_band p g ~name:(Build_tree.band_name liveout.Spaces.id)
  in
  let point_subtree =
    let inner =
      match g.Fusion.stmts with
      | [ s ] -> Build_tree.inner_of_stmt p g s
      | stmts ->
          Schedule_tree.Sequence
            (List.map
               (fun s ->
                 Schedule_tree.Filter
                   (Build_tree.stmt_filter p [ s ], Build_tree.inner_of_stmt p g s))
               stmts)
    in
    Schedule_tree.Band (point_band, inner)
  in
  let body =
    match r.tiling.Tile_shapes.extensions with
    | [] -> point_subtree
    | exts ->
        let ext_union =
          Imap.union_all (List.map (fun (e : Tile_shapes.extension) -> e.Tile_shapes.ext_rel) exts)
        in
        let children =
          List.map
            (fun (e : Tile_shapes.extension) ->
              let space = Spaces.find spaces e.Tile_shapes.space_id in
              Build_tree.group_subtree ~only:(Tile_shapes.fused_stmts e) p
                space.Spaces.group
                ~name:(Build_tree.band_name space.Spaces.id))
            exts
          @ [ Schedule_tree.Filter
                (Build_tree.stmt_filter p g.Fusion.stmts, point_subtree)
            ]
        in
        Schedule_tree.Extension (ext_union, Schedule_tree.Sequence children)
  in
  (* "kernel:<space-id>" makes the generated [Ast.Kernel] id equal the
     scheduler-side space id, so decision-trace events and interp-side
     attribution name the same entity. *)
  Schedule_tree.Filter
    ( Build_tree.stmt_filter p g.Fusion.stmts,
      Schedule_tree.Mark
        ( Printf.sprintf "kernel:%d" liveout.Spaces.id,
          Schedule_tree.Band
            (tile_band_of r.tiling liveout, Schedule_tree.Mark ("point", body))
        ) )

let to_tree (p : Prog.t) ~spaces (pl : plan) =
  Obs.span "post_tiling.to_tree" @@ fun () ->
  let domain =
    Build_tree.stmt_filter p (List.map (fun s -> s.Prog.stmt_name) p.Prog.stmts)
  in
  let subtree_for (s : Spaces.t) =
    if List.mem s.Spaces.id pl.skipped then
      Schedule_tree.Mark
        ( "skipped",
          Build_tree.group_subtree p s.Spaces.group
            ~name:(Build_tree.band_name s.Spaces.id) )
    else
      match List.assoc_opt s.Spaces.id pl.residual with
      | Some rest ->
          Schedule_tree.Mark
            ( Printf.sprintf "kernel:%d" s.Spaces.id,
              Build_tree.group_subtree ~only:rest p s.Spaces.group
                ~name:(Build_tree.band_name s.Spaces.id) )
      | None -> (
      match List.find_opt (fun r -> r.tiling.Tile_shapes.liveout_id = s.Spaces.id) pl.roots with
      | Some r -> root_subtree p ~spaces r
      | None ->
          Schedule_tree.Mark
            ( Printf.sprintf "kernel:%d" s.Spaces.id,
              Build_tree.group_subtree p s.Spaces.group
                ~name:(Build_tree.band_name s.Spaces.id) ))
  in
  let children = List.map subtree_for spaces in
  match children with
  | [ single ] -> Schedule_tree.Domain (domain, single)
  | _ -> Schedule_tree.Domain (domain, Schedule_tree.Sequence children)
