type target = Cpu | Gpu | Npu

let parallelism_cap = function Cpu -> 1 | Gpu -> 2 | Npu -> 2

type compiled = {
  prog : Prog.t;
  deps : Deps.t list;
  spaces : Spaces.t list;
  plan : Post_tiling.plan;
  tree : Schedule_tree.t;
  startup : Fusion.result;
  search_steps : int;
}

let default_sizes ~tile_size (s : Spaces.t) =
  Array.make s.Spaces.group.Fusion.band_dims tile_size

(* Advisory tile-shape trace for [memcomp explain]: for every live-out
   space, log the halved/configured/doubled size candidates with the
   per-tile iteration count and a data-footprint estimate (4 bytes per
   element across the arrays the group touches). Only the configured
   sizes are acted on, so compilation is unchanged. *)
let emit_tile_shape_trace p spaces tile_sizes_for =
  if Obs.is_enabled () then
    List.iter
      (fun (s : Spaces.t) ->
        if s.Spaces.live_out && s.Spaces.group.Fusion.band_dims > 0 then begin
          let g = s.Spaces.group in
          let arrays =
            List.sort_uniq compare
              (List.concat_map
                 (fun name ->
                   let st = Prog.find_stmt p name in
                   st.Prog.write.Prog.array
                   :: List.map (fun (a : Prog.access) -> a.Prog.array) st.Prog.reads)
                 g.Fusion.stmts)
          in
          let chosen = tile_sizes_for s in
          let candidate label scale =
            let sizes = Array.map (fun v -> max 1 (scale v)) chosen in
            let points = Array.fold_left ( * ) 1 sizes in
            Events.emit ~cat:"tiling" "tile_shape.candidate"
              [ ("space", Events.I s.Spaces.id);
                ("which", Events.S label);
                ( "sizes",
                  Events.S
                    (String.concat "x"
                       (List.map string_of_int (Array.to_list sizes))) );
                ("points_per_tile", Events.I points);
                ("est_bytes_per_tile", Events.I (points * 4 * List.length arrays));
                ("chosen", Events.B (label = "configured"))
              ]
          in
          candidate "halved" (fun v -> v / 2);
          candidate "configured" (fun v -> v);
          candidate "doubled" (fun v -> v * 2)
        end)
      spaces

(* The start-up fusion defaults to Smartfuse: our IR splits imperfect
   nests into consecutive perfect nests, so the nest-level "minfuse"
   grouping the paper starts from (which keeps an initialization
   statement with its reduction) corresponds to the
   parallelism-preserving heuristic at statement granularity. *)
let run ?(startup = Fusion.Smartfuse) ?(tile_size = 32) ?tile_sizes_for
    ?fuse_reductions ?fusable ?recompute_limit ~target prog =
  Obs.span "pipeline.compile" @@ fun () ->
  Obs.count "pipeline.compiles";
  Obs.count "pipeline.runs";
  Log.info ~cat:"pipeline" "compile.begin"
    [ ("prog", Json_util.S prog.Prog.prog_name); ("flow", Json_util.S "ours");
      ("tile", Json_util.I tile_size)
    ];
  let deps = Obs.span "pipeline.deps" (fun () -> Deps.compute prog) in
  let cap = parallelism_cap target in
  let result =
    Obs.span "pipeline.startup_fusion" (fun () ->
        Fusion.schedule ?fuse_reductions prog ~deps ~target_parallelism:cap
          startup)
  in
  let spaces = Spaces.of_result prog result in
  let tile_sizes_for =
    match tile_sizes_for with
    | Some f -> f
    | None -> default_sizes ~tile_size
  in
  emit_tile_shape_trace prog spaces tile_sizes_for;
  let plan =
    Obs.span "pipeline.post_tiling" (fun () ->
        Post_tiling.plan prog ~spaces ~tile_sizes_for ~parallelism_cap:cap
          ?fusable ?recompute_limit)
  in
  let tree =
    Obs.span "pipeline.tree" (fun () -> Post_tiling.to_tree prog ~spaces plan)
  in
  Obs.add "pipeline.search_steps" result.Fusion.search_steps;
  Obs.add "pipeline.fusion_groups" (List.length result.Fusion.groups);
  Obs.add "pipeline.fused_spaces"
    (List.length (List.concat_map (fun r -> r.Post_tiling.fused_ids) plan.Post_tiling.roots));
  { prog;
    deps;
    spaces;
    plan;
    tree;
    startup = result;
    search_steps = result.Fusion.search_steps
  }

type baseline = {
  b_prog : Prog.t;
  b_result : Fusion.result;
  b_tree : Schedule_tree.t;
}

(* Rectangular tiling-after-fusion: tile every permutable group band.
   The rewrite is top-down and only touches the outer (group) band of
   each fusion group; inner per-statement bands stay untiled. *)
let tiled_tree (p : Prog.t) (r : Fusion.result) ~tile_size =
  let open Schedule_tree in
  (* "kernel:<i>" carries the fusion-group index into the generated
     AST's [Kernel] id (stable entity naming; see post_tiling.ml). *)
  let tile_group i = function
    | Filter (f, Band (b, child)) when b.permutable && b.n_members > 0 ->
        let sizes = Array.make b.n_members tile_size in
        let tile, point = tile_band b ~tile_sizes:sizes ~prefix:"T_" in
        Filter
          ( f,
            Mark
              ( Printf.sprintf "kernel:%d" i,
                Band (tile, Mark ("point", Band (point, child))) ) )
    | other -> other
  in
  match Build_tree.initial_tree p r with
  | Domain (d, Sequence cs) -> Domain (d, Sequence (List.mapi tile_group cs))
  | Domain (d, single) -> Domain (d, tile_group 0 single)
  | other -> other

let run_heuristic ?(tile_size = 32) ?max_steps ?fuse_reductions ~target
    heuristic prog =
  Obs.span "pipeline.compile_heuristic" @@ fun () ->
  Obs.count "pipeline.runs";
  Log.info ~cat:"pipeline" "compile.begin"
    [ ("prog", Json_util.S prog.Prog.prog_name);
      ("flow", Json_util.S (Fusion.heuristic_name heuristic));
      ("tile", Json_util.I tile_size)
    ];
  let deps = Obs.span "pipeline.deps" (fun () -> Deps.compute prog) in
  let cap = parallelism_cap target in
  let result =
    Obs.span "pipeline.startup_fusion" (fun () ->
        Fusion.schedule ?max_steps ?fuse_reductions prog ~deps
          ~target_parallelism:cap heuristic)
  in
  let tree =
    Obs.span "pipeline.tree" (fun () -> tiled_tree prog result ~tile_size)
  in
  Obs.add "pipeline.search_steps" result.Fusion.search_steps;
  Obs.add "pipeline.fusion_groups" (List.length result.Fusion.groups);
  { b_prog = prog; b_result = result; b_tree = tree }
