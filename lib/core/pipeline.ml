type target = Cpu | Gpu | Npu

let parallelism_cap = function Cpu -> 1 | Gpu -> 2 | Npu -> 2

type compiled = {
  prog : Prog.t;
  deps : Deps.t list;
  spaces : Spaces.t list;
  plan : Post_tiling.plan;
  tree : Schedule_tree.t;
  startup : Fusion.result;
  search_steps : int;
}

let default_sizes ~tile_size (s : Spaces.t) =
  Array.make s.Spaces.group.Fusion.band_dims tile_size

(* The start-up fusion defaults to Smartfuse: our IR splits imperfect
   nests into consecutive perfect nests, so the nest-level "minfuse"
   grouping the paper starts from (which keeps an initialization
   statement with its reduction) corresponds to the
   parallelism-preserving heuristic at statement granularity. *)
let run ?(startup = Fusion.Smartfuse) ?(tile_size = 32) ?tile_sizes_for
    ?fuse_reductions ?fusable ?recompute_limit ~target prog =
  Obs.span "pipeline.compile" @@ fun () ->
  Obs.count "pipeline.compiles";
  let deps = Obs.span "pipeline.deps" (fun () -> Deps.compute prog) in
  let cap = parallelism_cap target in
  let result =
    Obs.span "pipeline.startup_fusion" (fun () ->
        Fusion.schedule ?fuse_reductions prog ~deps ~target_parallelism:cap
          startup)
  in
  let spaces = Spaces.of_result prog result in
  let tile_sizes_for =
    match tile_sizes_for with
    | Some f -> f
    | None -> default_sizes ~tile_size
  in
  let plan =
    Obs.span "pipeline.post_tiling" (fun () ->
        Post_tiling.plan prog ~spaces ~tile_sizes_for ~parallelism_cap:cap
          ?fusable ?recompute_limit)
  in
  let tree =
    Obs.span "pipeline.tree" (fun () -> Post_tiling.to_tree prog ~spaces plan)
  in
  Obs.add "pipeline.search_steps" result.Fusion.search_steps;
  Obs.add "pipeline.fusion_groups" (List.length result.Fusion.groups);
  Obs.add "pipeline.fused_spaces"
    (List.length (List.concat_map (fun r -> r.Post_tiling.fused_ids) plan.Post_tiling.roots));
  { prog;
    deps;
    spaces;
    plan;
    tree;
    startup = result;
    search_steps = result.Fusion.search_steps
  }

type baseline = {
  b_prog : Prog.t;
  b_result : Fusion.result;
  b_tree : Schedule_tree.t;
}

(* Rectangular tiling-after-fusion: tile every permutable group band.
   The rewrite is top-down and only touches the outer (group) band of
   each fusion group; inner per-statement bands stay untiled. *)
let tiled_tree (p : Prog.t) (r : Fusion.result) ~tile_size =
  let open Schedule_tree in
  let tile_group = function
    | Filter (f, Band (b, child)) when b.permutable && b.n_members > 0 ->
        let sizes = Array.make b.n_members tile_size in
        let tile, point = tile_band b ~tile_sizes:sizes ~prefix:"T_" in
        Filter
          (f, Mark ("kernel", Band (tile, Mark ("point", Band (point, child)))))
    | other -> other
  in
  match Build_tree.initial_tree p r with
  | Domain (d, Sequence cs) -> Domain (d, Sequence (List.map tile_group cs))
  | Domain (d, single) -> Domain (d, tile_group single)
  | other -> other

let run_heuristic ?(tile_size = 32) ?max_steps ?fuse_reductions ~target
    heuristic prog =
  Obs.span "pipeline.compile_heuristic" @@ fun () ->
  let deps = Obs.span "pipeline.deps" (fun () -> Deps.compute prog) in
  let cap = parallelism_cap target in
  let result =
    Obs.span "pipeline.startup_fusion" (fun () ->
        Fusion.schedule ?max_steps ?fuse_reductions prog ~deps
          ~target_parallelism:cap heuristic)
  in
  let tree =
    Obs.span "pipeline.tree" (fun () -> tiled_tree prog result ~tile_size)
  in
  Obs.add "pipeline.search_steps" result.Fusion.search_steps;
  Obs.add "pipeline.fusion_groups" (List.length result.Fusion.groups);
  { b_prog = prog; b_result = result; b_tree = tree }
