open Presburger

type extension = {
  space_id : int;
  ext_rel : Imap.t;
  via_arrays : string list;
  parents : int list;
}

type tiling = {
  liveout_id : int;
  tile_space : string;
  tile_sizes : int array;
  tile_rel : Imap.t;
  m : int;
  extensions : extension list;
  untiled : int list;
}

let tile_relation (p : Prog.t) (g : Fusion.group) ~name ~tile_sizes =
  let band = Build_tree.group_band p g ~name:(name ^ "_b") in
  let pieces =
    List.map
      (fun piece ->
        let sp = Bmap.space piece in
        let fd =
          Schedule_tree.floor_div_map ~tuple_in:sp.Space.out_tuple
            ~dims:sp.Space.out_dims ~tuple_out:name ~tile_sizes
        in
        Bmap.apply_range piece fd)
      (Imap.pieces band.Schedule_tree.partial)
  in
  Imap.of_bmaps pieces

(* Read accesses of the statements of a space, restricted to their
   domains, grouped by array. *)
let restricted_reads (p : Prog.t) (space : Spaces.t) =
  List.concat_map
    (fun sname ->
      let s = Prog.find_stmt p sname in
      List.map
        (fun (a : Prog.access) ->
          (a.Prog.array, Bmap.intersect_domain a.Prog.rel s.Prog.domain))
        s.Prog.reads)
    space.Spaces.group.Fusion.stmts

let footprint_of_tile ~tile (p : Prog.t) rel =
  let fixed =
    Imap.pieces rel
    |> List.map (fun piece ->
           let piece = Bmap.bind_params piece p.Prog.params in
           let piece =
             Array.to_list tile
             |> List.mapi (fun d v -> (d, v))
             |> List.fold_left (fun m (d, v) -> Bmap.fix_in_dim m d v) piece
           in
           Bmap.range piece)
  in
  Iset.of_bsets fixed

(* Cheap estimate of the recomputation a fused statement incurs under an
   extension schedule: sample an interior tile, multiply its box
   footprint by the tile count, compare with the statement's domain
   size. The guard models the cost model the paper's AKG implementation
   couples with Algorithm 1 (and the paper's own caveat about chains of
   reductions): fusion that recomputes a producer almost wholesale in
   every tile is rejected. *)
let recompute_ratio (p : Prog.t) (stmt : Prog.stmt) ext_s =
  try
    let total =
      List.fold_left
        (fun acc piece ->
          let piece = Bmap.bind_params piece p.Prog.params in
          let tiles_box = Bset.box_hull (Bmap.domain_approx piece) in
          let tile_count =
            Array.fold_left (fun a (l, h) -> a * max 0 (h - l + 1)) 1 tiles_box
          in
          if tile_count = 0 then acc
          else begin
            let fixed = ref piece in
            Array.iteri
              (fun d (l, h) -> fixed := Bmap.fix_in_dim !fixed d ((l + h) / 2))
              tiles_box;
            let per_tile = Bset.box_card (Bmap.range_approx !fixed) in
            acc + (per_tile * tile_count)
          end)
        0 (Imap.pieces ext_s)
    in
    float_of_int total /. float_of_int (max 1 (Prog.domain_card p stmt))
  with Fm.Inexact _ | Invalid_argument _ -> 1.0

(* f maps: per upwards-exposed array, the relation (4) from tile
   coordinates to the data elements the tile needs. *)
module Fmap = Map.Make (String)

let construct ?(recompute_limit = 4.0) (p : Prog.t) ~(liveout : Spaces.t)
    ~intermediates ~tile_sizes ~parallelism_cap =
  Obs.span "tile_shapes.construct" @@ fun () ->
  let g = liveout.Spaces.group in
  assert (Array.length tile_sizes = g.Fusion.band_dims);
  let tile_space = Printf.sprintf "T%d" liveout.Spaces.id in
  let tile_rel = tile_relation p g ~name:tile_space ~tile_sizes in
  let m = min (Fusion.n_parallel g) parallelism_cap in
  (* Upwards exposed data of the live-out space: its reads of arrays
     written by intermediate spaces, composed with the reverse tiling
     relation (relation (4)). *)
  let written_by_intermediate a =
    List.exists (fun (s : Spaces.t) -> List.mem a s.Spaces.writes) intermediates
  in
  let rev_tile = Imap.reverse tile_rel in
  let add_f fmap (array, rel_pieces, parents) =
    let prev_rel, prev_parents =
      match Fmap.find_opt array fmap with
      | Some (r, ps) -> (r, ps)
      | None -> (Imap.empty, [])
    in
    Fmap.add array
      ( Imap.hull_compress (Imap.union prev_rel rel_pieces),
        prev_parents @ List.filter (fun x -> not (List.mem x prev_parents)) parents )
      fmap
  in
  let initial_f =
    List.fold_left
      (fun fmap (array, read_rel) ->
        if written_by_intermediate array then
          add_f fmap
            ( array,
            Imap.hull_compress
              (Imap.apply_range_approx rev_tile (Imap.of_bmap read_rel)),
            [ -1 ] )
        else fmap)
      Fmap.empty (restricted_reads p liveout)
  in
  (* Worklist over intermediate spaces (lines 9-16 of Algorithm 1): a
     space is processed once some array it writes has a footprint
     relation; its extension schedule then exposes the data it reads. *)
  let rec loop fmap pending extensions untiled =
    (* ready: some written array already has a footprint relation, and no
       still-pending space reads this space's arrays (all consumers have
       contributed their upwards-exposed data, so the extension schedule
       covers every in-tile use). *)
    let ready =
      List.find_opt
        (fun (s : Spaces.t) ->
          List.exists (fun a -> Fmap.mem a fmap) s.Spaces.writes
          && not
               (List.exists
                  (fun (q : Spaces.t) ->
                    q.Spaces.id <> s.Spaces.id
                    && List.exists (fun a -> List.mem a q.Spaces.reads) s.Spaces.writes)
                  pending))
        pending
    in
    match ready with
    | None -> (List.rev extensions, untiled @ List.map (fun (s : Spaces.t) -> s.Spaces.id) pending)
    | Some space ->
        let pending = List.filter (fun (s : Spaces.t) -> s.Spaces.id <> space.Spaces.id) pending in
        let n = Fusion.n_parallel space.Spaces.group in
        if m > n then begin
          (* the m > n guard: fusing would destroy the live-out space's
             parallelism; reject (line 8). *)
          Obs.count "tile_shapes.parallelism_reject";
          Events.emit ~cat:"tiling" "tile_shapes.reject"
            [ ("liveout", Events.I liveout.Spaces.id);
              ("space", Events.I space.Spaces.id);
              ("stmts", Events.S (String.concat "+" space.Spaces.group.Fusion.stmts));
              ("reason", Events.S "parallelism");
              ("liveout_parallel", Events.I m);
              ("space_parallel", Events.I n)
            ];
          loop fmap pending extensions (space.Spaces.id :: untiled)
        end
        else begin
          let via_arrays, parents =
            List.fold_left
              (fun (arrays, parents) a ->
                match Fmap.find_opt a fmap with
                | Some (_, ps) ->
                    ( a :: arrays,
                      parents @ List.filter (fun x -> not (List.mem x parents)) ps )
                | None -> (arrays, parents))
              ([], []) space.Spaces.writes
          in
          (* Lines 9-16 of Algorithm 1: a statement-level worklist inside
             the space. Each statement's extension schedule composes the
             footprint of the array it writes with its reversed write
             access (relation (6)); its reads then expose data produced
             by statements not yet handled (in this space or pending
             spaces), extending f. Statements are processed
             consumers-first so the footprints are complete. *)
          let written_by name = (Prog.find_stmt p name).Prog.write.Prog.array in
          let reads_of name =
            List.map (fun (a : Prog.access) -> a.Prog.array)
              (Prog.find_stmt p name).Prog.reads
          in
          let rec stmt_loop fmap remaining blocked ext_pieces =
            match remaining with
            | [] -> (fmap, ext_pieces)
            | _ ->
                (* [blocked] holds statements left unfused (dynamic
                   guards): anything they read must also stay unfused,
                   since the skipped original would otherwise compute
                   their inputs too late. *)
                let consumer_of name q =
                  q <> name && List.mem (written_by name) (reads_of q)
                in
                let ready_stmt =
                  let candidate name =
                    Fmap.mem (written_by name) fmap
                    && (not (List.exists (consumer_of name) remaining))
                    && not (List.exists (consumer_of name) blocked)
                  in
                  match List.find_opt candidate remaining with
                  | Some s -> Some s
                  | None ->
                      (* cycle fallback: any unblocked statement with a
                         footprint *)
                      List.find_opt
                        (fun s ->
                          Fmap.mem (written_by s) fmap
                          && not (List.exists (consumer_of s) blocked))
                        remaining
                in
                (match ready_stmt with
                | None -> (fmap, ext_pieces)
                | Some name when (Prog.find_stmt p name).Prog.guard <> None ->
                    (* dynamically guarded (while-loop) statement: its
                       trip count is opaque, so it is never fused through
                       an extension schedule; it stays in the original
                       nest together with its exclusive producers (the
                       paper's equake case). *)
                    Obs.count "tile_shapes.guard_blocked";
                    Events.emit ~cat:"tiling" "tile_shapes.reject"
                      [ ("liveout", Events.I liveout.Spaces.id);
                        ("space", Events.I space.Spaces.id);
                        ("stmt", Events.S name);
                        ("reason", Events.S "dynamic_guard")
                      ];
                    stmt_loop fmap
                      (List.filter (fun s -> s <> name) remaining)
                      (name :: blocked) ext_pieces
                | Some name ->
                    let stmt = Prog.find_stmt p name in
                    let write_rel =
                      Bmap.intersect_domain stmt.Prog.write.Prog.rel stmt.Prog.domain
                    in
                    let f, _ = Fmap.find (written_by name) fmap in
                    let ext_s =
                      Imap.hull_compress
                        (Imap.apply_range_approx f
                           (Imap.of_bmap (Bmap.reverse write_rel)))
                    in
                    let ratio = recompute_ratio p stmt ext_s in
                    if ratio > recompute_limit then begin
                      (* fusing this statement would recompute it nearly
                         wholesale in every tile: reject (cost model) *)
                      Obs.count "tile_shapes.recompute_reject";
                      Events.emit ~cat:"tiling" "tile_shapes.reject"
                        [ ("liveout", Events.I liveout.Spaces.id);
                          ("space", Events.I space.Spaces.id);
                          ("stmt", Events.S name);
                          ("reason", Events.S "recompute_cost");
                          ("ratio", Events.F ratio);
                          ("limit", Events.F recompute_limit)
                        ];
                      stmt_loop fmap
                        (List.filter (fun s -> s <> name) remaining)
                        (name :: blocked) ext_pieces
                    end
                    else begin
                    let remaining = List.filter (fun s -> s <> name) remaining in
                    (* expose the data this statement reads *)
                    let fmap =
                      List.fold_left
                        (fun fmap (r : Prog.access) ->
                          let produced_later =
                            List.exists (fun s -> written_by s = r.Prog.array) remaining
                            || List.exists
                                 (fun (s : Spaces.t) ->
                                   List.mem r.Prog.array s.Spaces.writes)
                                 pending
                          in
                          if produced_later && r.Prog.array <> written_by name then begin
                            let read_rel =
                              Bmap.intersect_domain r.Prog.rel stmt.Prog.domain
                            in
                            let tile_to_data =
                              Imap.hull_compress
                                (Imap.apply_range_approx ext_s
                                   (Imap.of_bmap read_rel))
                            in
                            if Imap.is_empty tile_to_data then fmap
                            else add_f fmap (r.Prog.array, tile_to_data, [ space.Spaces.id ])
                          end
                          else fmap)
                        fmap stmt.Prog.reads
                    in
                    stmt_loop fmap remaining blocked (ext_pieces @ Imap.pieces ext_s)
                    end)
          in
          let fmap, ext_pieces =
            stmt_loop fmap space.Spaces.group.Fusion.stmts [] []
          in
          if ext_pieces = [] then begin
            Obs.count "tile_shapes.untiled";
            Events.emit ~cat:"tiling" "tile_shapes.reject"
              [ ("liveout", Events.I liveout.Spaces.id);
                ("space", Events.I space.Spaces.id);
                ("stmts", Events.S (String.concat "+" space.Spaces.group.Fusion.stmts));
                ("reason", Events.S "no_extension_schedule")
              ];
            loop fmap pending extensions (space.Spaces.id :: untiled)
          end
          else begin
            Obs.count "tile_shapes.extensions";
            Events.emit ~cat:"tiling" "tile_shapes.extend"
              [ ("liveout", Events.I liveout.Spaces.id);
                ("space", Events.I space.Spaces.id);
                ("stmts", Events.S (String.concat "+" space.Spaces.group.Fusion.stmts));
                ("via", Events.S (String.concat "+" via_arrays))
              ];
            let ext_rel = Imap.coalesce (Imap.of_bmaps ext_pieces) in
            let extension =
              { space_id = space.Spaces.id; ext_rel; via_arrays; parents }
            in
            loop fmap pending (extension :: extensions) untiled
          end
        end
  in
  let extensions, untiled = loop initial_f intermediates [] [] in
  let extensions =
    List.sort (fun a b -> compare a.space_id b.space_id) extensions
  in
  { liveout_id = liveout.Spaces.id;
    tile_space;
    tile_sizes;
    tile_rel;
    m;
    extensions;
    untiled
  }

let fused_stmts (e : extension) =
  List.fold_left
    (fun acc piece ->
      let t = (Bmap.space piece).Space.out_tuple in
      if List.mem t acc then acc else acc @ [ t ])
    []
    (Imap.pieces e.ext_rel)
