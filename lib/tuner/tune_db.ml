(* Content-addressed on-disk tuning database (see tune_db.mli). *)

open Json_util

type entry = {
  en_workload : string;
  en_key : string;
  en_created : string;
  en_strategy : string;
  en_seed : int;
  en_budget : int;
  en_best : Search_space.candidate;
  en_best_score : Evaluator.score;
  en_default : Search_space.candidate;
  en_default_score : Evaluator.score;
  en_evaluated : int;
  en_illegal : int;
  en_failed : int;
  en_pruned : int;
  en_trajectory : (string * float) list;
}

(* key -> entry, kept sorted for deterministic serialization *)
type t = (string * entry) list

let schema_version = 1

let empty = []

(* ------------------------------------------------------------------ *)
(* Content addressing                                                  *)
(* ------------------------------------------------------------------ *)

let prog_canonical (p : Prog.t) =
  let b = Buffer.create 1024 in
  Buffer.add_string b p.Prog.prog_name;
  List.iter
    (fun (n, v) -> Buffer.add_string b (Printf.sprintf ";param %s=%d" n v))
    p.Prog.params;
  List.iter
    (fun (a : Prog.array_decl) ->
      Buffer.add_string b
        (Printf.sprintf ";array %s[%s]" a.Prog.array_name
           (String.concat ","
              (List.map string_of_int
                 (Prog.array_extent p a.Prog.array_name)))))
    p.Prog.arrays;
  List.iter
    (fun (s : Prog.stmt) ->
      Buffer.add_string b
        (Printf.sprintf ";stmt %s nest=%s dom=%s ops=%d red=%d guard=%b"
           s.Prog.stmt_name s.Prog.nest
           (Presburger.Bset.to_string s.Prog.domain)
           s.Prog.ops s.Prog.reduction_dims
           (s.Prog.guard <> None));
      Buffer.add_string b
        (Printf.sprintf " w:%s=%s" s.Prog.write.Prog.array
           (Presburger.Bmap.to_string s.Prog.write.Prog.rel));
      List.iter
        (fun (a : Prog.access) ->
          Buffer.add_string b
            (Printf.sprintf " r:%s=%s" a.Prog.array
               (Presburger.Bmap.to_string a.Prog.rel)))
        s.Prog.reads)
    p.Prog.stmts;
  Buffer.add_string b (";liveout " ^ String.concat "," p.Prog.live_out);
  Buffer.contents b

let prog_digest p = Stdlib.Digest.to_hex (Stdlib.Digest.string (prog_canonical p))

let key ~target p sp =
  let raw =
    Printf.sprintf "%s|%s|%s" (prog_digest p) (Search_space.signature sp)
      target
  in
  Stdlib.Digest.to_hex (Stdlib.Digest.string raw)

(* ------------------------------------------------------------------ *)
(* Entries                                                             *)
(* ------------------------------------------------------------------ *)

let iso8601 time =
  let tm = Unix.gmtime time in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let make_entry ~workload ~key ~strategy ~seed ~budget ~best ~default
    ~evaluated ~illegal ~failed ~pruned ~trajectory =
  let best_c, best_s = best in
  let default_c, default_s = default in
  { en_workload = workload;
    en_key = key;
    en_created = iso8601 (Unix.time ());
    en_strategy = strategy;
    en_seed = seed;
    en_budget = budget;
    en_best = best_c;
    en_best_score = best_s;
    en_default = default_c;
    en_default_score = default_s;
    en_evaluated = evaluated;
    en_illegal = illegal;
    en_failed = failed;
    en_pruned = pruned;
    en_trajectory = trajectory
  }

let find (db : t) k = List.assoc_opt k db

let add (db : t) e =
  List.sort (fun (a, _) (b, _) -> compare a b)
    ((e.en_key, e) :: List.remove_assoc e.en_key db)

let entries (db : t) = List.map snd db

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let entry_to_json e =
  Json.Obj
    [ ("workload", Json.Str e.en_workload);
      ("key", Json.Str e.en_key);
      ("created", Json.Str e.en_created);
      ("strategy", Json.Str e.en_strategy);
      ("seed", Json.Num (float_of_int e.en_seed));
      ("budget", Json.Num (float_of_int e.en_budget));
      ("best", Search_space.candidate_to_json e.en_best);
      ("best_score", Evaluator.score_to_json e.en_best_score);
      ("default", Search_space.candidate_to_json e.en_default);
      ("default_score", Evaluator.score_to_json e.en_default_score);
      ("evaluated", Json.Num (float_of_int e.en_evaluated));
      ("illegal", Json.Num (float_of_int e.en_illegal));
      ("failed", Json.Num (float_of_int e.en_failed));
      ("pruned", Json.Num (float_of_int e.en_pruned));
      ( "trajectory",
        Json.Arr
          (List.map
             (fun (name, cost) ->
               Json.Obj [ ("candidate", Json.Str name); ("cost", Json.Num cost) ])
             e.en_trajectory) )
    ]

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let entry_of_json j =
  let str k =
    match Json.member k j with
    | Some (Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "entry: missing %s" k)
  in
  let int k =
    match Json.member k j with
    | Some (Json.Num f) -> Ok (int_of_float f)
    | _ -> Error (Printf.sprintf "entry: missing %s" k)
  in
  let sub k parse =
    match Json.member k j with
    | Some v -> parse v
    | None -> Error (Printf.sprintf "entry: missing %s" k)
  in
  let* workload = str "workload" in
  let* key = str "key" in
  let* created = str "created" in
  let* strategy = str "strategy" in
  let* seed = int "seed" in
  let* budget = int "budget" in
  let* best = sub "best" Search_space.candidate_of_json in
  let* best_score = sub "best_score" Evaluator.score_of_json in
  let* default = sub "default" Search_space.candidate_of_json in
  let* default_score = sub "default_score" Evaluator.score_of_json in
  let* evaluated = int "evaluated" in
  let* illegal = int "illegal" in
  let* failed = int "failed" in
  let* pruned = int "pruned" in
  let* trajectory =
    match Json.member "trajectory" j with
    | Some (Json.Arr l) ->
        List.fold_left
          (fun acc p ->
            let* acc = acc in
            match (Json.member "candidate" p, Json.member "cost" p) with
            | Some (Json.Str n), Some (Json.Num c) -> Ok ((n, c) :: acc)
            | _ -> Error "entry: malformed trajectory point")
          (Ok []) l
        |> Result.map List.rev
    | _ -> Error "entry: missing trajectory"
  in
  Ok
    { en_workload = workload;
      en_key = key;
      en_created = created;
      en_strategy = strategy;
      en_seed = seed;
      en_budget = budget;
      en_best = best;
      en_best_score = best_score;
      en_default = default;
      en_default_score = default_score;
      en_evaluated = evaluated;
      en_illegal = illegal;
      en_failed = failed;
      en_pruned = pruned;
      en_trajectory = trajectory
    }

let to_json (db : t) =
  Json.Obj
    [ ("schema_version", Json.Num (float_of_int schema_version));
      ("entries", Json.Arr (List.map (fun (_, e) -> entry_to_json e) db))
    ]

let of_json j =
  let* version =
    match Json.member "schema_version" j with
    | Some (Json.Num f) -> Ok (int_of_float f)
    | _ -> Error "tune_db: missing schema_version"
  in
  if version <> schema_version then
    Error
      (Printf.sprintf "tune_db: unsupported schema_version %d (expected %d)"
         version schema_version)
  else
    let* entries =
      match Json.member "entries" j with
      | Some (Json.Arr l) ->
          List.fold_left
            (fun acc ej ->
              let* acc = acc in
              let* e = entry_of_json ej in
              Ok ((e.en_key, e) :: acc))
            (Ok []) l
          |> Result.map List.rev
      | _ -> Error "tune_db: missing entries"
    in
    Ok (List.sort (fun (a, _) (b, _) -> compare a b) entries)

let load path =
  if not (Sys.file_exists path) then Ok empty
  else
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    if String.trim text = "" then Ok empty
    else
      let* j =
        match Json.parse text with
        | Ok j -> Ok j
        | Error msg -> Error (Printf.sprintf "tune_db %s: %s" path msg)
      in
      of_json j

let save path (db : t) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json db));
      output_char oc '\n')
