(** Candidate enumeration for the autotuner: the joint space of
    {e tile sizes per band dimension} (power-of-two ladders),
    {e fusion heuristic} (minfuse/smartfuse/maxfuse/ours) and
    {e post-tiling knobs} (reduction fusion, recompute limit).

    Candidates are pruned by a footprint bound before any compilation:
    a candidate whose estimated per-tile staging requirement exceeds
    the modeled scratchpad is never evaluated. The estimate is the
    clamped tile volume times the element size times the number of
    stageable (intermediate) arrays — the same first-order model the
    pipeline's advisory tile-shape trace uses — so it scales with the
    quantity {!Footprints.staged_bytes} measures exactly after
    compilation. *)

type flow = Minfuse | Smartfuse | Maxfuse | Ours

val flow_name : flow -> string

val flow_of_string : string -> flow option

val all_flows : flow list

type candidate = {
  cd_flow : flow;
  cd_tiles : int array;
      (** per band dimension; heuristic flows use [cd_tiles.(0)]
          uniformly (their tiling is rectangular with one edge) *)
  cd_fuse_reductions : bool;  (** start-up fusion knob *)
  cd_recompute_limit : float;
      (** post-tiling knob (Algorithm 1's tolerated recomputation
          ratio); only meaningful for the [Ours] flow *)
}

val candidate_name : candidate -> string
(** Stable compact id, e.g. ["ours/32x32/fr1/rl4"]. *)

val candidate_to_json : candidate -> Json_util.Json.t

val candidate_of_json : Json_util.Json.t -> (candidate, string) result

type t = {
  dims : int;  (** tile-vector length: deepest statement domain, capped *)
  ladder : int list;  (** power-of-two tile edges, ascending *)
  recompute_ladder : float list;  (** recompute-limit values for [Ours] *)
  flows : flow list;
  scratchpad_bytes : int;  (** staging budget for the footprint bound *)
  elem_bytes : int;
  max_extent : int;  (** largest concrete array extent (clamps tiles) *)
  stageable_arrays : int;  (** intermediate arrays, >= 1 for the bound *)
}

val make :
  ?ladder:int list -> ?recompute_ladder:float list -> ?flows:flow list ->
  ?scratchpad_bytes:int -> ?elem_bytes:int -> Prog.t -> t
(** Derive a space from a program. Defaults: ladder [8..128], recompute
    ladder [2; 4; 8], all four flows, 128 KiB scratchpad, 4-byte
    elements. *)

val default_candidate : t -> candidate
(** The pipeline's own defaults: [Ours], every tile edge 32 (clamped
    into the ladder's range), reduction fusion on, recompute limit 4 —
    the configuration every other flow in the tree compiles with. *)

val footprint_estimate : t -> int array -> int
(** Estimated staged bytes per tile for a tile-size vector: the product
    of extent-clamped tile edges times [elem_bytes] times
    [stageable_arrays]. *)

val fits : t -> candidate -> bool
(** The footprint bound: [footprint_estimate <= scratchpad_bytes].
    Candidates of heuristic flows are bounded too (the bound models the
    on-chip budget a tile of that shape would need to stage its
    working set, whether or not the flow stages anything). *)

val enumerate : t -> candidate list * int
(** All candidates passing {!fits}, deterministic order, the default
    candidate first; also returns how many candidates the footprint
    bound pruned. Heuristic flows enumerate uniform tile vectors only
    (their single tile edge), [Ours] enumerates the full cartesian
    ladder over [dims] dimensions times the post-tiling knobs. *)

val neighbors : t -> candidate -> candidate list
(** Coordinate-descent moves from a candidate: step one tile dimension
    up/down the ladder, switch the flow, toggle reduction fusion, step
    the recompute limit — one axis at a time. Pruned by {!fits};
    deterministic order; never contains the candidate itself. *)

val signature : t -> string
(** Canonical one-line description of the space and its cost-model
    constants (part of the tuning-database key). *)
