(* Search strategies and tuning reports (see tuner.mli). *)

open Json_util

type strategy = Exhaustive | Greedy | Random

let strategy_name = function
  | Exhaustive -> "exhaustive"
  | Greedy -> "greedy"
  | Random -> "random"

let strategy_of_string = function
  | "exhaustive" -> Some Exhaustive
  | "greedy" -> Some Greedy
  | "random" -> Some Random
  | _ -> None

type result = {
  r_entry : Tune_db.entry;
  r_cached : bool;
  r_space : int;
}

(* ------------------------------------------------------------------ *)
(* Search bookkeeping                                                  *)
(* ------------------------------------------------------------------ *)

type acc = {
  mutable evaluated : int;
  mutable illegal : int;
  mutable failed : int;
  mutable default_score : Evaluator.score option;
      (* once set, candidates modeling more DRAM traffic than the
         default are ineligible as "best": the search minimizes total
         cost within the region that does not regress off-chip traffic
         (the paper's primary metric) *)
  mutable best : (Search_space.candidate * Evaluator.score) option;
  mutable trajectory : (string * float) list;  (* reversed *)
  seen : (string, unit) Hashtbl.t;
}

let new_acc () =
  { evaluated = 0;
    illegal = 0;
    failed = 0;
    default_score = None;
    best = None;
    trajectory = [];
    seen = Hashtbl.create 64
  }

let record acc (c, outcome) =
  acc.evaluated <- acc.evaluated + 1;
  match outcome with
  | Evaluator.Illegal msg ->
      acc.illegal <- acc.illegal + 1;
      Events.emit ~cat:"tuner" "tune.illegal"
        [ ("candidate", S (Search_space.candidate_name c)); ("reason", S msg) ]
  | Evaluator.Failed msg ->
      acc.failed <- acc.failed + 1;
      Events.emit ~cat:"tuner" "tune.failed"
        [ ("candidate", S (Search_space.candidate_name c)); ("reason", S msg) ]
  | Evaluator.Scored s ->
      let eligible =
        match acc.default_score with
        | None -> true
        | Some d -> s.Evaluator.sc_dram_bytes <= d.Evaluator.sc_dram_bytes
      in
      let better =
        eligible
        &&
        match acc.best with
        | None -> true
        | Some (_, b) -> Evaluator.compare_scores s b < 0
      in
      if better then begin
        acc.best <- Some (c, s);
        acc.trajectory <-
          (Search_space.candidate_name c, Evaluator.cost s) :: acc.trajectory;
        Events.emit ~cat:"tuner" "tune.improved"
          [ ("candidate", S (Search_space.candidate_name c));
            ("cost", F (Evaluator.cost s))
          ]
      end

(* Evaluate at most [budget - evaluated] unseen candidates, in order. *)
let eval_batch acc ~jobs ~budget ~target p cands =
  let fresh =
    List.filter
      (fun c ->
        let k = Search_space.candidate_name c in
        if Hashtbl.mem acc.seen k then false
        else begin
          Hashtbl.add acc.seen k ();
          true
        end)
      cands
  in
  let room = budget - acc.evaluated in
  let fresh = List.filteri (fun i _ -> i < room) fresh in
  if fresh = [] then []
  else begin
    let results = Evaluator.evaluate ~jobs ~target p fresh in
    List.iter (record acc) results;
    results
  end

let scored_of results =
  List.filter_map
    (function c, Evaluator.Scored s -> Some (c, s) | _ -> None)
    results

(* ------------------------------------------------------------------ *)
(* Strategies                                                          *)
(* ------------------------------------------------------------------ *)

let run_exhaustive acc ~jobs ~budget ~target p cands =
  ignore (eval_batch acc ~jobs ~budget ~target p cands)

(* Coordinate descent: move to the best improving neighbor, stop when a
   whole neighborhood fails to improve (or the budget runs out). *)
let run_greedy acc ~jobs ~budget ~target p sp default_scored =
  let rec descend (current, current_score) =
    if acc.evaluated >= budget then ()
    else
      let moves = Search_space.neighbors sp current in
      let results = eval_batch acc ~jobs ~budget ~target p moves in
      match scored_of results with
      | [] -> ()
      | scored ->
          let best =
            List.fold_left
              (fun b x ->
                match b with
                | None -> Some x
                | Some (_, bs) ->
                    if Evaluator.compare_scores (snd x) bs < 0 then Some x
                    else b)
              None scored
          in
          (match best with
          | Some (c, s) when Evaluator.compare_scores s current_score < 0 ->
              descend (c, s)
          | _ -> ())
  in
  descend default_scored

(* Deterministic Fisher-Yates under the given PRNG state. *)
let shuffle st arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let run_random acc ~jobs ~budget ~seed ~target p cands =
  let st = Random.State.make [| seed; 0x7e5 |] in
  let arr = Array.of_list cands in
  shuffle st arr;
  ignore (eval_batch acc ~jobs ~budget ~target p (Array.to_list arr))

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let target_name = function
  | Core.Pipeline.Cpu -> "cpu"
  | Core.Pipeline.Gpu -> "gpu"
  | Core.Pipeline.Npu -> "npu"

let tune ?(strategy = Greedy) ?(budget = 48) ?(jobs = 1) ?(seed = 0) ?space
    ?db_path ?(force = false) ?(target = Core.Pipeline.Cpu) (p : Prog.t) =
  let sp =
    match space with Some sp -> sp | None -> Search_space.make p
  in
  let budget = max 1 budget in
  let key = Tune_db.key ~target:(target_name target) p sp in
  let db =
    match db_path with
    | None -> Ok Tune_db.empty
    | Some path -> Tune_db.load path
  in
  match db with
  | Error msg -> Error msg
  | Ok db -> (
      match (Tune_db.find db key, force) with
      | Some entry, false ->
          Obs.count "tuner.db_hit";
          Events.emit ~cat:"tuner" "tune.db_hit"
            [ ("workload", S p.Prog.prog_name); ("key", S key) ];
          let space_n = fst (Search_space.enumerate sp) |> List.length in
          Ok { r_entry = entry; r_cached = true; r_space = space_n }
      | _ ->
          if db_path <> None then Obs.count "tuner.db_miss";
          Obs.count "tuner.tunes";
          let cands, pruned = Search_space.enumerate sp in
          Obs.add "tuner.pruned" pruned;
          Events.emit ~cat:"tuner" "tune.begin"
            [ ("workload", S p.Prog.prog_name);
              ("strategy", S (strategy_name strategy));
              ("budget", I budget);
              ("space", I (List.length cands));
              ("pruned", I pruned)
            ];
          let acc = new_acc () in
          let default = Search_space.default_candidate sp in
          let default_r =
            eval_batch acc ~jobs ~budget ~target p [ default ]
          in
          (match scored_of default_r with
          | [] ->
              let reason =
                match default_r with
                | [ (_, Evaluator.Illegal m) ] -> "illegal: " ^ m
                | [ (_, Evaluator.Failed m) ] -> "failed: " ^ m
                | _ -> "not evaluated"
              in
              Error
                (Printf.sprintf "default configuration %s did not score (%s)"
                   (Search_space.candidate_name default)
                   reason)
          | (dc, ds) :: _ ->
              acc.default_score <- Some ds;
              (match strategy with
              | Exhaustive -> run_exhaustive acc ~jobs ~budget ~target p cands
              | Greedy -> run_greedy acc ~jobs ~budget ~target p sp (dc, ds)
              | Random -> run_random acc ~jobs ~budget ~seed ~target p cands);
              let best_c, best_s =
                match acc.best with Some b -> b | None -> (dc, ds)
              in
              let entry =
                Tune_db.make_entry ~workload:p.Prog.prog_name ~key
                  ~strategy:(strategy_name strategy) ~seed ~budget
                  ~best:(best_c, best_s) ~default:(dc, ds)
                  ~evaluated:acc.evaluated ~illegal:acc.illegal
                  ~failed:acc.failed ~pruned
                  ~trajectory:(List.rev acc.trajectory)
              in
              Events.emit ~cat:"tuner" "tune.end"
                [ ("workload", S p.Prog.prog_name);
                  ("best", S (Search_space.candidate_name best_c));
                  ("cost", F (Evaluator.cost best_s));
                  ("evaluated", I acc.evaluated);
                  ("illegal", I acc.illegal)
                ];
              (match db_path with
              | Some path -> Tune_db.save path (Tune_db.add db entry)
              | None -> ());
              Ok
                { r_entry = entry;
                  r_cached = false;
                  r_space = List.length cands
                }))

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

let pct_delta ~base ~cand =
  if base = 0.0 then 0.0 else (cand -. base) /. base *. 100.0

let report_markdown r =
  let e = r.r_entry in
  let b = Buffer.create 1024 in
  let bs = e.Tune_db.en_best_score and ds = e.Tune_db.en_default_score in
  let cost_b = Evaluator.cost bs and cost_d = Evaluator.cost ds in
  Buffer.add_string b (Printf.sprintf "# tune %s\n\n" e.Tune_db.en_workload);
  Buffer.add_string b
    (Printf.sprintf "- strategy: %s, budget %d, seed %d%s\n"
       e.Tune_db.en_strategy e.Tune_db.en_budget e.Tune_db.en_seed
       (if r.r_cached then " (answered from tuning database)" else ""));
  Buffer.add_string b
    (Printf.sprintf
       "- space: %d candidates after footprint pruning (%d pruned)\n"
       r.r_space e.Tune_db.en_pruned);
  Buffer.add_string b
    (Printf.sprintf "- evaluated: %d (illegal rejected: %d, failed: %d)\n\n"
       e.Tune_db.en_evaluated e.Tune_db.en_illegal e.Tune_db.en_failed);
  Buffer.add_string b
    "| config | cost (bytes) | DRAM bytes | staged bytes | parallelism |\n\
     |---|---|---|---|---|\n";
  let row tag (c : Search_space.candidate) (s : Evaluator.score) =
    Buffer.add_string b
      (Printf.sprintf "| %s %s | %.0f | %d | %d | %.1f |\n" tag
         (Search_space.candidate_name c)
         (Evaluator.cost s) s.Evaluator.sc_dram_bytes
         s.Evaluator.sc_staged_bytes s.Evaluator.sc_parallelism)
  in
  row "default" e.Tune_db.en_default ds;
  row "best" e.Tune_db.en_best bs;
  Buffer.add_string b
    (Printf.sprintf "\ncost delta vs default: %+.1f%% (DRAM %+.1f%%)\n"
       (pct_delta ~base:cost_d ~cand:cost_b)
       (pct_delta
          ~base:(float_of_int ds.Evaluator.sc_dram_bytes)
          ~cand:(float_of_int bs.Evaluator.sc_dram_bytes)));
  if e.Tune_db.en_trajectory <> [] then begin
    Buffer.add_string b "\ntrajectory (best-so-far):\n";
    List.iter
      (fun (name, cost) ->
        Buffer.add_string b (Printf.sprintf "  %12.0f  %s\n" cost name))
      e.Tune_db.en_trajectory
  end;
  Buffer.contents b

let report_json r =
  let e = r.r_entry in
  let extra =
    [ ("cached", Json.Bool r.r_cached);
      ("space_candidates", Json.Num (float_of_int r.r_space));
      ("cost_default", Json.Num (Evaluator.cost e.Tune_db.en_default_score));
      ("cost_best", Json.Num (Evaluator.cost e.Tune_db.en_best_score));
      ( "cost_delta_pct",
        Json.Num
          (pct_delta
             ~base:(Evaluator.cost e.Tune_db.en_default_score)
             ~cand:(Evaluator.cost e.Tune_db.en_best_score)) )
    ]
  in
  match Tune_db.entry_to_json e with
  | Json.Obj fields -> Json.Obj (fields @ extra)
  | j -> j
