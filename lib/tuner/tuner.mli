(** Model-guided autotuning: search the joint space of tile shapes,
    fusion heuristic and post-tiling knobs ({!Search_space}), scoring
    every candidate with the machine model ({!Evaluator}) and caching
    results in a content-addressed database ({!Tune_db}).

    Every strategy evaluates the pipeline's default configuration
    first, so the reported best is never worse than the default under
    the model; in addition, a candidate only becomes "best" when it
    does not model more DRAM traffic than the default — the search
    minimizes total cost (DRAM + staged bytes) within the region that
    does not regress off-chip traffic, the paper's primary metric.
    Every candidate passes the independent legality verifier before it
    is scored (illegal candidates are hard-rejected and counted). All
    strategies are deterministic: exhaustive and greedy by
    construction, random under a fixed [seed]. *)

type strategy = Exhaustive | Greedy | Random

val strategy_name : strategy -> string

val strategy_of_string : string -> strategy option

type result = {
  r_entry : Tune_db.entry;  (** the outcome (best, default, counts) *)
  r_cached : bool;  (** answered from the database, nothing evaluated *)
  r_space : int;  (** candidates surviving the footprint bound *)
}

val tune :
  ?strategy:strategy ->
  ?budget:int ->
  ?jobs:int ->
  ?seed:int ->
  ?space:Search_space.t ->
  ?db_path:string ->
  ?force:bool ->
  ?target:Core.Pipeline.target ->
  Prog.t ->
  (result, string) Stdlib.result
(** Tune one program. Defaults: [Greedy], budget 48 evaluations, 1 job,
    seed 0, space derived by {!Search_space.make}, no database, CPU
    target. With [db_path], a stored entry under the same
    content-addressed key answers instantly unless [force] re-tunes
    (the fresh entry then replaces the stored one). [Error] only when
    the default configuration itself fails to compile or verify. *)

val report_markdown : result -> string
(** Human-readable tuning report: chosen vs default configuration,
    modeled cost deltas, reject counts and the search trajectory. *)

val report_json : result -> Json_util.Json.t
(** The same report as one JSON object (stable field names; used by
    [memcomp tune --json] and the CI smoke gate). *)
