(** Candidate evaluation for the autotuner.

    Each candidate is compiled through the full pipeline (the paper's
    flow for [Ours], tiling-after-fusion for the heuristic flows),
    checked by the independent static legality verifier
    ({!Legality.check}; any violation is a hard reject), and scored by
    the machine model: off-chip DRAM traffic and per-tile staged bytes
    from {!Footprints}, plus an estimated tile-level parallelism from
    the {!Tile_graph} wavefront levels of the generated AST.

    Evaluation of a candidate list can fan out across OCaml 5 domains
    (the [jobs] knob); each evaluation is pure and independent, so the
    result list is deterministic and order-preserving regardless of
    [jobs]. *)

type score = {
  sc_dram_bytes : int;  (** program off-chip traffic, read + write *)
  sc_staged_bytes : int;  (** scratchpad high-water mark per tile *)
  sc_tiles : int;  (** tile-graph items of the generated AST *)
  sc_wavefronts : int;  (** wavefront levels (critical path, tiles) *)
  sc_parallelism : float;  (** tiles / wavefronts: mean ready width *)
}

val cost : score -> float
(** The scalar objective: DRAM traffic plus staged bytes (bytes). *)

val compare_scores : score -> score -> int
(** Total order on scores: by {!cost}, then DRAM traffic, then staged
    bytes, then descending parallelism — so arg-min is deterministic. *)

val score_to_json : score -> Json_util.Json.t

val score_of_json : Json_util.Json.t -> (score, string) result

val version_of :
  target:Core.Pipeline.target -> Prog.t -> Search_space.candidate ->
  Exp_util.version
(** Compile one candidate through its flow, without verification or
    scoring (how a consumer applies a stored tuned configuration). *)

type outcome =
  | Scored of score
  | Illegal of string  (** static legality violation (hard reject) *)
  | Failed of string  (** compilation raised *)

val evaluate_one :
  ?verify:bool -> target:Core.Pipeline.target -> Prog.t ->
  Search_space.candidate -> outcome
(** Compile, verify ([verify] defaults to [true]) and score one
    candidate. Never raises: a raising compilation is [Failed]. *)

val evaluate :
  ?jobs:int -> ?verify:bool -> target:Core.Pipeline.target -> Prog.t ->
  Search_space.candidate list ->
  (Search_space.candidate * outcome) list
(** Evaluate a batch, preserving input order. [jobs] > 1 fans the batch
    out over that many domains (worker-pool pattern: one atomic work
    index, domains drain it). *)
