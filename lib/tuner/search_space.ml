(* Candidate enumeration and footprint pruning (see search_space.mli). *)

type flow = Minfuse | Smartfuse | Maxfuse | Ours

let flow_name = function
  | Minfuse -> "minfuse"
  | Smartfuse -> "smartfuse"
  | Maxfuse -> "maxfuse"
  | Ours -> "ours"

let flow_of_string = function
  | "minfuse" -> Some Minfuse
  | "smartfuse" -> Some Smartfuse
  | "maxfuse" -> Some Maxfuse
  | "ours" -> Some Ours
  | _ -> None

let all_flows = [ Minfuse; Smartfuse; Maxfuse; Ours ]

type candidate = {
  cd_flow : flow;
  cd_tiles : int array;
  cd_fuse_reductions : bool;
  cd_recompute_limit : float;
}

let candidate_name c =
  Printf.sprintf "%s/%s/fr%d/rl%g" (flow_name c.cd_flow)
    (String.concat "x" (List.map string_of_int (Array.to_list c.cd_tiles)))
    (if c.cd_fuse_reductions then 1 else 0)
    c.cd_recompute_limit

let candidate_to_json c =
  let open Json_util.Json in
  Obj
    [ ("flow", Str (flow_name c.cd_flow));
      ( "tiles",
        Arr (List.map (fun t -> Num (float_of_int t)) (Array.to_list c.cd_tiles))
      );
      ("fuse_reductions", Bool c.cd_fuse_reductions);
      ("recompute_limit", Num c.cd_recompute_limit)
    ]

let candidate_of_json j =
  let open Json_util.Json in
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let* flow =
    match member "flow" j with
    | Some (Str s) -> (
        match flow_of_string s with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "unknown flow %S" s))
    | _ -> Error "candidate: missing flow"
  in
  let* tiles =
    match member "tiles" j with
    | Some (Arr l) ->
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            match v with
            | Num f when Float.is_integer f -> Ok (int_of_float f :: acc)
            | _ -> Error "candidate: non-integer tile size")
          (Ok []) l
        |> Result.map (fun l -> Array.of_list (List.rev l))
    | _ -> Error "candidate: missing tiles"
  in
  let* fr =
    match member "fuse_reductions" j with
    | Some (Bool b) -> Ok b
    | _ -> Error "candidate: missing fuse_reductions"
  in
  let* rl =
    match member "recompute_limit" j with
    | Some (Num f) -> Ok f
    | _ -> Error "candidate: missing recompute_limit"
  in
  Ok { cd_flow = flow; cd_tiles = tiles; cd_fuse_reductions = fr; cd_recompute_limit = rl }

type t = {
  dims : int;
  ladder : int list;
  recompute_ladder : float list;
  flows : flow list;
  scratchpad_bytes : int;
  elem_bytes : int;
  max_extent : int;
  stageable_arrays : int;
}

let default_ladder = [ 8; 16; 32; 64; 128 ]

let default_recompute_ladder = [ 2.0; 4.0; 8.0 ]

let make ?(ladder = default_ladder) ?(recompute_ladder = default_recompute_ladder)
    ?(flows = all_flows) ?(scratchpad_bytes = 128 * 1024) ?(elem_bytes = 4)
    (p : Prog.t) =
  let dims =
    List.fold_left
      (fun acc (s : Prog.stmt) ->
        max acc (Presburger.Bset.n_dims s.Prog.domain))
      1 p.Prog.stmts
    |> min 3
  in
  let max_extent =
    List.fold_left
      (fun acc (a : Prog.array_decl) ->
        List.fold_left max acc (Prog.array_extent p a.Prog.array_name))
      1 p.Prog.arrays
  in
  let stageable_arrays = max 1 (List.length (Prog.intermediate_arrays p)) in
  { dims;
    ladder = List.sort_uniq compare ladder;
    recompute_ladder = List.sort_uniq compare recompute_ladder;
    flows;
    scratchpad_bytes;
    elem_bytes;
    max_extent;
    stageable_arrays
  }

let clamp_to_ladder sp v =
  (* nearest ladder rung, biased low on ties; the default tile edge 32
     maps onto whatever ladder the space was built with *)
  match sp.ladder with
  | [] -> v
  | l ->
      List.fold_left
        (fun best r -> if abs (r - v) < abs (best - v) then r else best)
        (List.hd l) l

let default_candidate sp =
  { cd_flow = (if List.mem Ours sp.flows then Ours else List.hd sp.flows);
    cd_tiles = Array.make sp.dims (clamp_to_ladder sp 32);
    cd_fuse_reductions = true;
    cd_recompute_limit = 4.0
  }

let footprint_estimate sp tiles =
  let points =
    Array.fold_left (fun acc t -> acc * max 1 (min t sp.max_extent)) 1 tiles
  in
  points * sp.elem_bytes * sp.stageable_arrays

let fits sp c = footprint_estimate sp c.cd_tiles <= sp.scratchpad_bytes

(* Cartesian product over [dims] copies of the ladder, lexicographic. *)
let tile_vectors sp =
  let rec go d =
    if d = 0 then [ [] ]
    else
      let rest = go (d - 1) in
      List.concat_map (fun t -> List.map (fun v -> t :: v) rest) sp.ladder
  in
  List.map Array.of_list (go sp.dims)

let raw_enumerate sp =
  List.concat_map
    (fun flow ->
      let vectors =
        match flow with
        | Ours -> tile_vectors sp
        | Minfuse | Smartfuse | Maxfuse ->
            (* one tile edge: uniform vectors only, no duplicates *)
            List.map (fun t -> Array.make sp.dims t) sp.ladder
      in
      let limits =
        match flow with Ours -> sp.recompute_ladder | _ -> [ 4.0 ]
      in
      List.concat_map
        (fun tiles ->
          List.concat_map
            (fun rl ->
              List.map
                (fun fr ->
                  { cd_flow = flow;
                    cd_tiles = tiles;
                    cd_fuse_reductions = fr;
                    cd_recompute_limit = rl
                  })
                [ true; false ])
            limits)
        vectors)
    sp.flows

let enumerate sp =
  let raw = raw_enumerate sp in
  let kept, pruned = List.partition (fits sp) raw in
  let default = default_candidate sp in
  let kept =
    if List.exists (fun c -> c = default) kept then
      default :: List.filter (fun c -> c <> default) kept
    else if fits sp default then default :: kept
    else kept
  in
  (kept, List.length pruned)

let neighbors sp c =
  let ladder = Array.of_list sp.ladder in
  let rung v =
    let r = ref (-1) in
    Array.iteri (fun i x -> if x = v then r := i) ladder;
    !r
  in
  let tile_moves =
    List.concat
      (List.init (Array.length c.cd_tiles) (fun d ->
           let r = rung c.cd_tiles.(d) in
           let step dir =
             let r' = r + dir in
             if r < 0 || r' < 0 || r' >= Array.length ladder then None
             else begin
               let tiles = Array.copy c.cd_tiles in
               tiles.(d) <- ladder.(r');
               (* heuristic flows tile with one edge: keep vectors uniform *)
               (match c.cd_flow with
               | Ours -> ()
               | Minfuse | Smartfuse | Maxfuse ->
                   Array.fill tiles 0 (Array.length tiles) ladder.(r'));
               Some { c with cd_tiles = tiles }
             end
           in
           List.filter_map step [ -1; 1 ]))
  in
  let flow_moves =
    List.filter_map
      (fun f ->
        if f = c.cd_flow then None
        else
          Some
            { c with
              cd_flow = f;
              (* entering a heuristic flow collapses the vector onto its
                 first edge; leaving one keeps the uniform vector *)
              cd_tiles =
                (match f with
                | Ours -> c.cd_tiles
                | _ -> Array.make (Array.length c.cd_tiles) c.cd_tiles.(0))
            })
      sp.flows
  in
  let fr_moves = [ { c with cd_fuse_reductions = not c.cd_fuse_reductions } ] in
  let rl_moves =
    match c.cd_flow with
    | Ours ->
        let rungs = Array.of_list sp.recompute_ladder in
        let r = ref (-1) in
        Array.iteri (fun i x -> if x = c.cd_recompute_limit then r := i) rungs;
        List.filter_map
          (fun dir ->
            let r' = !r + dir in
            if !r < 0 || r' < 0 || r' >= Array.length rungs then None
            else Some { c with cd_recompute_limit = rungs.(r') })
          [ -1; 1 ]
    | _ -> []
  in
  let moves = tile_moves @ flow_moves @ fr_moves @ rl_moves in
  let seen = Hashtbl.create 16 in
  List.filter
    (fun m ->
      let k = candidate_name m in
      if m = c || Hashtbl.mem seen k || not (fits sp m) then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    moves

let signature sp =
  Printf.sprintf
    "dims=%d ladder=%s rl=%s flows=%s scratchpad=%d elem=%d max_extent=%d \
     stageable=%d"
    sp.dims
    (String.concat "," (List.map string_of_int sp.ladder))
    (String.concat "," (List.map (Printf.sprintf "%g") sp.recompute_ladder))
    (String.concat "," (List.map flow_name sp.flows))
    sp.scratchpad_bytes sp.elem_bytes sp.max_extent sp.stageable_arrays
